//! Minimal JSON support — no external dependencies.
//!
//! Just enough for the telemetry export format: objects, arrays, strings,
//! integer numbers (kept as their literal text so `u128` sums survive a
//! round trip exactly), booleans and null.

use std::collections::BTreeMap;

/// A parsed JSON value. Numbers keep their literal text so arbitrarily
/// large integers round-trip without precision loss.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, stored as its literal token.
    Number(String),
    /// A string (unescaped).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object. `BTreeMap` keeps key order deterministic.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Borrow as an object map.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as an array.
    pub fn as_array(&self) -> Option<&Vec<JsonValue>> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// Parse the number token as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// Parse the number token as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Number(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// Parse the number token as `u128`.
    pub fn as_u128(&self) -> Option<u128> {
        match self {
            JsonValue::Number(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// Parse the number token as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => n.parse().ok(),
            _ => None,
        }
    }
}

/// Escape and quote a string for JSON output.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parse a JSON document. Rejects trailing garbage.
pub fn parse(s: &str) -> Result<JsonValue, String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(JsonValue::String(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        map.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'[')?;
    let mut arr = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(arr));
    }
    loop {
        arr.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(arr));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let cp = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(cp).ok_or("bad \\u codepoint")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (keys/values are valid UTF-8
                // since the input is a &str).
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    if *pos == start {
        return Err(format!("expected number at byte {start}"));
    }
    let tok = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    // Validate it parses as a float at minimum.
    tok.parse::<f64>().map_err(|_| format!("bad number '{tok}'"))?;
    Ok(JsonValue::Number(tok.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":"x"}],"c":true,"d":null,"e":-7}"#).unwrap();
        let o = v.as_object().unwrap();
        let arr = o["a"].as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[2].as_object().unwrap()["b"].as_str(), Some("x"));
        assert_eq!(o["c"], JsonValue::Bool(true));
        assert_eq!(o["d"], JsonValue::Null);
        assert_eq!(o["e"].as_i64(), Some(-7));
    }

    #[test]
    fn big_integers_survive() {
        let v = parse(&format!("{{\"s\":{}}}", u128::MAX)).unwrap();
        assert_eq!(v.as_object().unwrap()["s"].as_u128(), Some(u128::MAX));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "a \"quoted\" \\ back\nnew\ttab\u{1}ctl";
        let doc = format!("{{{}:1}}", quote(original));
        let v = parse(&doc).unwrap();
        let (k, _) = v.as_object().unwrap().iter().next().unwrap();
        assert_eq!(k, original);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}x").is_err());
        assert!(parse("nope").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_passthrough() {
        let v = parse("{\"k\":\"héllo ☃\"}").unwrap();
        assert_eq!(v.as_object().unwrap()["k"].as_str(), Some("héllo ☃"));
    }
}

//! Event tracing and gauge time-series sampling.
//!
//! Aggregates (histograms, stall totals) answer *how much*; they cannot
//! answer *which* NAND program or cache drain made one specific commit slow.
//! This module adds the causal layer:
//!
//! * [`TraceBuf`] — a bounded, overwrite-on-full ring buffer of timestamped
//!   events. Each event is `Begin`/`End`/`Instant` ([`Phase`]), stamped with
//!   virtual [`Nanos`], an interned category and name, and the [`TraceId`]
//!   of the host operation it belongs to. Export to Chrome trace-event JSON
//!   ([`TraceBuf::to_chrome_json`]) loads directly in Perfetto or
//!   `chrome://tracing`: one track (`tid`) per trace-ID, so a single
//!   commit's causal chain — engine → WAL → volume → device cache → NAND —
//!   reads top to bottom.
//! * [`Sampler`] — snapshots every named gauge on a virtual-time cadence
//!   into per-gauge time-series, for plotting how cache occupancy, GC debt,
//!   capacitor reserve or dirty-page counts evolve across a burst.
//! * [`validate_chrome_json`] — schema/consistency checker used by the CI
//!   smoke step: every `B` must have an `E`, timestamps must be monotone
//!   per track, and every event must carry the full Chrome field set.
//!
//! # Span semantics under asynchronous completion
//!
//! The simulated device acknowledges cached writes *before* the NAND
//! programs they cause have finished; a child event can therefore carry a
//! later timestamp than its parent's return. Begin/End pairs are matched in
//! **emission order** per track (nesting is correct by construction: each
//! layer emits `B` before calling down and `E` after returning), and export
//! clamps timestamps monotone per track. A parent span consequently
//! stretches to cover its asynchronous children — it shows the operation's
//! **causal extent**, not the host-visible latency (which lives in the
//! histograms). See DESIGN.md.

use crate::json::{self, JsonValue};
use simkit::Nanos;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt::Write as _;

/// Identity of one host-level operation (put/commit/get/…). `0` means
/// "outside any traced operation" and renders as the background track.
pub type TraceId = u64;

/// Event phase, mirroring the Chrome trace-event `ph` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Duration begin (`"B"`).
    Begin,
    /// Duration end (`"E"`).
    End,
    /// Instantaneous event (`"i"`).
    Instant,
}

impl Phase {
    /// The Chrome trace-event `ph` code.
    pub fn code(self) -> char {
        match self {
            Phase::Begin => 'B',
            Phase::End => 'E',
            Phase::Instant => 'i',
        }
    }
}

/// One recorded event. Category and name are indices into the owning
/// [`TraceBuf`]'s intern table, keeping events 4 words each.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Virtual timestamp.
    pub ts: Nanos,
    /// Owning operation (Chrome `tid`).
    pub trace: TraceId,
    /// Begin / End / Instant.
    pub ph: Phase,
    /// Interned category index.
    pub cat: u32,
    /// Interned name index.
    pub name: u32,
}

/// Bounded, overwrite-on-full event ring with string interning.
///
/// When the ring is full the **oldest** event is dropped and the drop
/// counter advances; recording never fails and never reallocates past the
/// configured capacity.
#[derive(Debug, Clone)]
pub struct TraceBuf {
    cap: usize,
    events: VecDeque<Event>,
    names: Vec<String>,
    intern: HashMap<String, u32>,
    recorded: u64,
    dropped: u64,
}

impl TraceBuf {
    /// Ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        Self {
            cap,
            events: VecDeque::with_capacity(cap.min(1 << 16)),
            names: Vec::new(),
            intern: HashMap::new(),
            recorded: 0,
            dropped: 0,
        }
    }

    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&i) = self.intern.get(s) {
            return i;
        }
        let i = self.names.len() as u32;
        self.names.push(s.to_string());
        self.intern.insert(s.to_string(), i);
        i
    }

    /// Append one event, evicting the oldest if the ring is full.
    pub fn push(&mut self, ts: Nanos, trace: TraceId, ph: Phase, cat: &str, name: &str) {
        let cat = self.intern(cat);
        let name = self.intern(name);
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(Event { ts, trace, ph, cat, name });
        self.recorded += 1;
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total events ever recorded (including since-dropped ones).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drop buffered events (intern table and counters survive).
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Resolve an interned index back to its string.
    pub fn name(&self, idx: u32) -> &str {
        &self.names[idx as usize]
    }

    /// Iterate buffered events oldest-first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Export as Chrome trace-event JSON (Perfetto / `chrome://tracing`).
    ///
    /// Guarantees on the output, regardless of ring wraparound:
    /// * every `B` has a matching `E` on its track — an unmatched `Begin`
    ///   (operation still open when the trace stopped) is **closed at
    ///   end-of-trace**, not dropped;
    /// * an orphan `E` whose `B` was overwritten by the ring is skipped;
    /// * timestamps are monotone non-decreasing per track (asynchronous
    ///   completions are clamped; see module docs).
    pub fn to_chrome_json(&self) -> String {
        struct Out {
            name: u32,
            cat: u32,
            ph: char,
            ts: Nanos,
            tid: TraceId,
        }
        #[derive(Default)]
        struct Track {
            open: Vec<usize>, // indices into `out` of unmatched Begins
            last_ts: Nanos,
        }
        let mut out: Vec<Out> = Vec::with_capacity(self.events.len());
        let mut tracks: BTreeMap<TraceId, Track> = BTreeMap::new();
        let mut max_ts: Nanos = 0;
        for ev in &self.events {
            let tr = tracks.entry(ev.trace).or_default();
            let ts = ev.ts.max(tr.last_ts);
            tr.last_ts = ts;
            max_ts = max_ts.max(ts);
            match ev.ph {
                Phase::Begin => {
                    tr.open.push(out.len());
                    out.push(Out { name: ev.name, cat: ev.cat, ph: 'B', ts, tid: ev.trace });
                }
                Phase::End => {
                    // Emission-order matching: this E closes the innermost
                    // open B on its track. If there is none, its B was
                    // evicted by the ring — drop the orphan.
                    if tr.open.pop().is_some() {
                        out.push(Out { name: ev.name, cat: ev.cat, ph: 'E', ts, tid: ev.trace });
                    }
                }
                Phase::Instant => {
                    out.push(Out { name: ev.name, cat: ev.cat, ph: 'i', ts, tid: ev.trace });
                }
            }
        }
        // Close still-open spans at end-of-trace, innermost first.
        let closers: Vec<Out> = tracks
            .iter()
            .flat_map(|(tid, tr)| {
                tr.open.iter().rev().map(|&i| Out {
                    name: out[i].name,
                    cat: out[i].cat,
                    ph: 'E',
                    ts: max_ts,
                    tid: *tid,
                })
            })
            .collect();
        out.extend(closers);

        let mut s = String::with_capacity(out.len() * 96 + 64);
        s.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        for (i, e) in out.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            // Chrome `ts` is in microseconds; keep nanosecond precision as
            // a three-digit fraction.
            let _ = write!(
                s,
                "{{\"name\":{},\"cat\":{},\"ph\":\"{}\",\"ts\":{}.{:03},\"pid\":1,\"tid\":{}}}",
                json::quote(&self.names[e.name as usize]),
                json::quote(&self.names[e.cat as usize]),
                e.ph,
                e.ts / 1000,
                e.ts % 1000,
                e.tid
            );
        }
        s.push_str("]}");
        s
    }
}

/// Result of [`validate_chrome_json`]: counts over a structurally valid
/// trace document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCheck {
    /// Total events in the document.
    pub events: usize,
    /// Duration-begin events (each verified to have a matching end).
    pub begins: usize,
    /// Instant events.
    pub instants: usize,
    /// Distinct tracks (`tid` values).
    pub tracks: usize,
}

/// The Chrome trace-event fields every exported event must carry. Golden:
/// checked by `tests/trace_golden.rs` and the CI smoke step.
pub const CHROME_EVENT_FIELDS: [&str; 6] = ["name", "cat", "ph", "ts", "pid", "tid"];

/// Validate a Chrome trace-event JSON document produced by
/// [`TraceBuf::to_chrome_json`] (or any conforming tool): every event
/// carries [`CHROME_EVENT_FIELDS`], every `B` has a matching `E` on its
/// track, and timestamps are monotone non-decreasing per track.
pub fn validate_chrome_json(doc: &str) -> Result<TraceCheck, String> {
    let v = json::parse(doc)?;
    let obj = v.as_object().ok_or("trace: expected top-level object")?;
    let evs = obj
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or("trace: missing traceEvents array")?;
    let mut open: HashMap<u64, Vec<String>> = HashMap::new();
    let mut last_ts: HashMap<u64, f64> = HashMap::new();
    let mut begins = 0usize;
    let mut instants = 0usize;
    for (i, e) in evs.iter().enumerate() {
        let o = e.as_object().ok_or(format!("event {i}: expected object"))?;
        for field in CHROME_EVENT_FIELDS {
            if !o.contains_key(field) {
                return Err(format!("event {i}: missing field \"{field}\""));
            }
        }
        let name = o["name"].as_str().ok_or(format!("event {i}: name not a string"))?;
        o["cat"].as_str().ok_or(format!("event {i}: cat not a string"))?;
        let ph = o["ph"].as_str().ok_or(format!("event {i}: ph not a string"))?;
        let ts = o["ts"].as_f64().ok_or(format!("event {i}: ts not a number"))?;
        let tid = o["tid"].as_u64().ok_or(format!("event {i}: tid not a u64"))?;
        let last = last_ts.entry(tid).or_insert(ts);
        if ts < *last {
            return Err(format!("event {i} ({name}): ts {ts} < previous {last} on tid {tid}"));
        }
        *last = ts;
        match ph {
            "B" => {
                begins += 1;
                open.entry(tid).or_default().push(name.to_string());
            }
            "E" => {
                if open.entry(tid).or_default().pop().is_none() {
                    return Err(format!("event {i} ({name}): E without open B on tid {tid}"));
                }
            }
            "i" => instants += 1,
            other => return Err(format!("event {i} ({name}): unknown ph \"{other}\"")),
        }
    }
    for (tid, stack) in &open {
        if let Some(name) = stack.last() {
            return Err(format!("unclosed B ({name}) on tid {tid}"));
        }
    }
    Ok(TraceCheck { events: evs.len(), begins, instants, tracks: last_ts.len() })
}

/// One gauge's sampled series. `start` is the index into the sampler's
/// shared timestamp vector at which this gauge first existed: a gauge
/// created mid-run has **no** points before `start` (absent, not zero).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Series {
    /// Index of the first sample in [`Sampler::times`] this series covers.
    pub start: usize,
    /// One value per sample from `start` onward.
    pub values: Vec<i64>,
}

/// Snapshots every named gauge on a virtual-time cadence.
///
/// Drive it with [`Sampler::sample_if_due`] from any point that observes
/// the virtual clock (the engine and docstore tick it once per operation),
/// and close the run with [`Sampler::finish`], which always takes a final
/// sample — so a zero-duration run, or a cadence longer than the run,
/// still yields at least one point per gauge.
#[derive(Debug, Clone, Default)]
pub struct Sampler {
    cadence: Nanos,
    next_due: Nanos,
    times: Vec<Nanos>,
    series: BTreeMap<String, Series>,
}

impl Sampler {
    /// Sampler firing every `cadence` virtual nanoseconds (minimum 1). The
    /// first `sample_if_due` call always fires.
    pub fn new(cadence: Nanos) -> Self {
        Self { cadence: cadence.max(1), next_due: 0, times: Vec::new(), series: BTreeMap::new() }
    }

    /// Configured cadence.
    pub fn cadence(&self) -> Nanos {
        self.cadence
    }

    /// Take a sample iff `now` has reached the next due time. Returns
    /// whether a sample was taken.
    pub fn sample_if_due(&mut self, now: Nanos, gauges: &BTreeMap<String, i64>) -> bool {
        if now < self.next_due {
            return false;
        }
        self.take(now, gauges);
        true
    }

    /// Unconditionally take a final sample at `now` (deduplicated if the
    /// last sample already landed on `now`).
    pub fn finish(&mut self, now: Nanos, gauges: &BTreeMap<String, i64>) {
        if self.times.last() == Some(&now) {
            return;
        }
        self.take(now, gauges);
    }

    fn take(&mut self, now: Nanos, gauges: &BTreeMap<String, i64>) {
        self.times.push(now);
        let idx = self.times.len() - 1;
        for (k, &v) in gauges {
            match self.series.get_mut(k) {
                Some(s) => s.values.push(v),
                None => {
                    // Gauge born mid-run: series begins at this sample.
                    self.series.insert(k.clone(), Series { start: idx, values: vec![v] });
                }
            }
        }
        self.next_due = now.saturating_add(self.cadence);
    }

    /// Number of samples taken.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when no samples were taken.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Sample timestamps, oldest first.
    pub fn times(&self) -> &[Nanos] {
        &self.times
    }

    /// All series, keyed by gauge name.
    pub fn series(&self) -> &BTreeMap<String, Series> {
        &self.series
    }

    /// Drop all samples (cadence survives; the next sample fires
    /// immediately).
    pub fn clear(&mut self) {
        self.times.clear();
        self.series.clear();
        self.next_due = 0;
    }

    /// Export as CSV: header `t_ns,<gauge>,…`; one row per sample. Cells
    /// before a mid-run gauge's first sample are empty, not zero.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str("t_ns");
        for name in self.series.keys() {
            out.push(',');
            out.push_str(name);
        }
        out.push('\n');
        for (i, t) in self.times.iter().enumerate() {
            let _ = write!(out, "{t}");
            for s in self.series.values() {
                out.push(',');
                if i >= s.start {
                    let _ = write!(out, "{}", s.values[i - s.start]);
                }
            }
            out.push('\n');
        }
        out
    }

    /// JSON object form, embedded in the registry export as `"series"`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"cadence\":{},\"times\":[", self.cadence);
        for (i, t) in self.times.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{t}");
        }
        out.push_str("],\"gauges\":{");
        for (i, (k, s)) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{{\"start\":{},\"values\":[", json::quote(k), s.start);
            for (j, v) in s.values.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{v}");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Rebuild from the output of [`Sampler::to_json`]; exact round-trip.
    pub fn from_json_value(v: &JsonValue) -> Result<Self, String> {
        let obj = v.as_object().ok_or("series: expected object")?;
        let cadence =
            obj.get("cadence").and_then(|v| v.as_u64()).ok_or("series: missing cadence")?;
        let mut s = Sampler::new(cadence);
        if let Some(times) = obj.get("times").and_then(|v| v.as_array()) {
            for t in times {
                s.times.push(t.as_u64().ok_or("series: time not a u64")?);
            }
        }
        if let Some(gs) = obj.get("gauges").and_then(|v| v.as_object()) {
            for (k, g) in gs {
                let go = g.as_object().ok_or("series: gauge not an object")?;
                let start = go.get("start").and_then(|v| v.as_u64()).ok_or("series: no start")?;
                let mut values = Vec::new();
                if let Some(vs) = go.get("values").and_then(|v| v.as_array()) {
                    for v in vs {
                        values.push(v.as_i64().ok_or("series: value not an i64")?);
                    }
                }
                s.series.insert(k.clone(), Series { start: start as usize, values });
            }
        }
        s.next_due = s.times.last().map_or(0, |t| t.saturating_add(s.cadence));
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gauges(pairs: &[(&str, i64)]) -> BTreeMap<String, i64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn ring_wraparound_drops_oldest_and_counts() {
        let mut b = TraceBuf::new(3);
        for i in 0..5u64 {
            b.push(i * 10, 1, Phase::Instant, "t", &format!("e{i}"));
        }
        assert_eq!(b.len(), 3);
        assert_eq!(b.capacity(), 3);
        assert_eq!(b.recorded(), 5);
        assert_eq!(b.dropped(), 2);
        let names: Vec<&str> = b.events().map(|e| b.name(e.name)).collect();
        assert_eq!(names, ["e2", "e3", "e4"], "oldest events must be the ones dropped");
    }

    #[test]
    fn unmatched_begin_closed_at_end_of_trace() {
        let mut b = TraceBuf::new(16);
        b.push(10, 1, Phase::Begin, "t", "outer");
        b.push(20, 1, Phase::Begin, "t", "inner");
        b.push(30, 1, Phase::Instant, "t", "tick");
        // Trace stops with both spans open.
        let doc = b.to_chrome_json();
        let chk = validate_chrome_json(&doc).expect("valid");
        assert_eq!(chk.begins, 2);
        assert_eq!(chk.instants, 1);
        assert_eq!(chk.events, 5, "two closing E events synthesised at end-of-trace");
        // Closers land at the max timestamp.
        assert!(doc.matches("\"ph\":\"E\",\"ts\":0.030").count() == 2, "doc: {doc}");
    }

    #[test]
    fn orphan_end_from_wraparound_is_dropped() {
        let mut b = TraceBuf::new(2);
        b.push(10, 1, Phase::Begin, "t", "a");
        b.push(20, 1, Phase::Instant, "t", "x"); // evicts nothing yet
        b.push(30, 1, Phase::End, "t", "a"); // evicts the Begin
        assert_eq!(b.dropped(), 1);
        let doc = b.to_chrome_json();
        let chk = validate_chrome_json(&doc).expect("orphan E must not corrupt the trace");
        assert_eq!(chk.begins, 0);
        assert_eq!(chk.events, 1, "only the instant survives");
    }

    #[test]
    fn async_children_clamped_monotone_per_track() {
        let mut b = TraceBuf::new(16);
        // Parent acks at 50 but its async child completes at 80: the E for
        // the parent is emitted after the child's E with a smaller ts.
        b.push(10, 7, Phase::Begin, "t", "parent");
        b.push(20, 7, Phase::Begin, "t", "child");
        b.push(80, 7, Phase::End, "t", "child");
        b.push(50, 7, Phase::End, "t", "parent"); // clamped up to 80
        let doc = b.to_chrome_json();
        validate_chrome_json(&doc).expect("monotone after clamping");
        assert!(doc.contains("\"ph\":\"E\",\"ts\":0.080,\"pid\":1,\"tid\":7"));
    }

    #[test]
    fn tracks_are_independent() {
        let mut b = TraceBuf::new(16);
        b.push(100, 1, Phase::Begin, "t", "op1");
        b.push(10, 2, Phase::Begin, "t", "op2"); // earlier ts, other track: fine
        b.push(15, 2, Phase::End, "t", "op2");
        b.push(110, 1, Phase::End, "t", "op1");
        let chk = validate_chrome_json(&b.to_chrome_json()).expect("valid");
        assert_eq!(chk.tracks, 2);
        assert_eq!(chk.begins, 2);
    }

    #[test]
    fn validator_rejects_bad_documents() {
        assert!(validate_chrome_json("{}").is_err(), "no traceEvents");
        assert!(validate_chrome_json(
            r#"{"traceEvents":[{"name":"x","cat":"t","ph":"B","ts":1,"pid":1}]}"#
        )
        .is_err());
        assert!(validate_chrome_json(
            r#"{"traceEvents":[{"name":"x","cat":"t","ph":"E","ts":1,"pid":1,"tid":1}]}"#
        )
        .is_err());
        assert!(validate_chrome_json(
            r#"{"traceEvents":[
                {"name":"a","cat":"t","ph":"i","ts":5,"pid":1,"tid":1},
                {"name":"b","cat":"t","ph":"i","ts":4,"pid":1,"tid":1}]}"#
        )
        .is_err());
        assert!(validate_chrome_json(
            r#"{"traceEvents":[{"name":"x","cat":"t","ph":"Q","ts":1,"pid":1,"tid":1}]}"#
        )
        .is_err());
    }

    #[test]
    fn sampler_zero_duration_run_yields_one_sample() {
        let mut s = Sampler::new(1_000_000);
        s.finish(0, &gauges(&[("g", 42)]));
        assert_eq!(s.len(), 1);
        assert_eq!(s.times(), &[0]);
        assert_eq!(s.series()["g"].values, [42]);
        let csv = s.to_csv();
        assert_eq!(csv, "t_ns,g\n0,42\n");
    }

    #[test]
    fn sampler_cadence_longer_than_run() {
        let mut s = Sampler::new(1_000_000_000);
        let g = gauges(&[("depth", 3)]);
        assert!(s.sample_if_due(0, &g), "first sample always fires");
        assert!(!s.sample_if_due(500, &g));
        assert!(!s.sample_if_due(9_000, &g));
        s.finish(9_000, &g);
        assert_eq!(s.len(), 2, "start + final sample despite huge cadence");
        assert_eq!(s.times(), &[0, 9_000]);
    }

    #[test]
    fn sampler_finish_dedupes_same_instant() {
        let mut s = Sampler::new(10);
        let g = gauges(&[("g", 1)]);
        assert!(s.sample_if_due(100, &g));
        s.finish(100, &g);
        assert_eq!(s.len(), 1, "finish at the same instant must not duplicate");
    }

    #[test]
    fn gauge_created_mid_run_starts_at_first_sample() {
        let mut s = Sampler::new(10);
        s.sample_if_due(0, &gauges(&[("early", 1)]));
        s.sample_if_due(10, &gauges(&[("early", 2)]));
        s.sample_if_due(20, &gauges(&[("early", 3), ("late", 100)]));
        s.finish(25, &gauges(&[("early", 4), ("late", 101)]));
        let late = &s.series()["late"];
        assert_eq!(late.start, 2, "late gauge's series starts at its first sample");
        assert_eq!(late.values, [100, 101]);
        assert_eq!(s.series()["early"].values, [1, 2, 3, 4]);
        // CSV: absent cells are empty, not zero.
        let csv = s.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "t_ns,early,late");
        assert_eq!(lines[1], "0,1,");
        assert_eq!(lines[2], "10,2,");
        assert_eq!(lines[3], "20,3,100");
        assert_eq!(lines[4], "25,4,101");
    }

    #[test]
    fn sampler_json_round_trips_exactly() {
        let mut s = Sampler::new(7);
        s.sample_if_due(0, &gauges(&[("a", -5)]));
        s.sample_if_due(7, &gauges(&[("a", 6), ("b", 9)]));
        s.finish(11, &gauges(&[("a", 7), ("b", 10)]));
        let j1 = s.to_json();
        let back = Sampler::from_json_value(&json::parse(&j1).unwrap()).unwrap();
        assert_eq!(back.to_json(), j1);
        assert_eq!(back.series()["b"].start, 1);
        assert_eq!(back.cadence(), 7);
    }

    #[test]
    fn chrome_export_is_parseable_json_with_schema_fields() {
        let mut b = TraceBuf::new(8);
        b.push(1_234_567, 3, Phase::Begin, "engine", "engine.commit");
        b.push(1_500_000, 3, Phase::End, "engine", "engine.commit");
        let doc = b.to_chrome_json();
        let v = json::parse(&doc).expect("well-formed JSON");
        let o = v.as_object().unwrap();
        assert_eq!(o["displayTimeUnit"].as_str(), Some("ns"));
        let ev = &o["traceEvents"].as_array().unwrap()[0];
        let eo = ev.as_object().unwrap();
        for f in CHROME_EVENT_FIELDS {
            assert!(eo.contains_key(f), "missing {f}");
        }
        // Microsecond ts with nanosecond fraction.
        assert_eq!(eo["ts"].as_f64(), Some(1234.567));
    }
}

//! Per-layer latency telemetry for the DuraSSD reproduction.
//!
//! The paper's central claims (Tables 1–5, Figs 5–6) are about *where the
//! host stalls*: FLUSH CACHE latency, fsync tail latency, and commit-time
//! variance between a durable-cache SSD and volatile-cache baselines. Coarse
//! cumulative counters cannot express a p99 or attribute a stall to a layer,
//! so this crate provides the measurement substrate used by every layer of
//! the stack:
//!
//! * [`Histogram`] — HDR-style log-bucketed latency histogram (power-of-two
//!   buckets with 16 linear sub-buckets each) with p50/p90/p99/p999/max.
//! * [`Registry`] — named histograms, counters, and gauges plus per-kind
//!   stall totals.
//! * [`Telemetry`] — a cheaply clonable handle (`Rc<RefCell<Registry>>`; the
//!   simulation is single-threaded virtual time) that layers embed.
//! * [`Span`] — a scope recorder keyed on virtual [`Nanos`]: open at `now`,
//!   close at the operation's virtual completion time.
//! * [`Stall`] — the stall taxonomy: every nanosecond the host blocks is
//!   tagged `media`, `flush_cache`, `gc`, `wal_fsync`, or `pool_eviction`.
//! * [`SegKind`] / [`OpBreakdown`] — the per-operation latency anatomy:
//!   each host op carries a segment breakdown (queueing wait vs service per
//!   resource) that sums exactly to its wall latency, plus per-kind
//!   histograms and a bounded tail-outlier capturer (see [`anatomy`](crate)
//!   module docs).
//! * JSON export/import ([`Telemetry::to_json`], [`Registry::from_json`]) —
//!   hand-rolled, no external dependencies, exact round-trip.
//!
//! # Stall attribution
//!
//! Lower layers (the volume) observe raw device time but do not know *why*
//! the host is waiting; upper layers (WAL, buffer pool) know why but not how
//! long the device took. The registry therefore keeps a small **context
//! stack**: when the WAL flushes its buffer it pushes [`Stall::WalFsync`],
//! so every media/flush nanosecond the volume reports underneath is
//! re-attributed to `wal_fsync` instead of double-counted as generic media
//! time. The invariant is that each blocked nanosecond lands in exactly one
//! bucket.

use simkit::Nanos;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

mod anatomy;
mod hist;
mod json;
mod trace;

pub use anatomy::{Anatomy, OpBreakdown, OutlierCap, SegKind, N_SEG};
pub use hist::Histogram;
pub use json::{parse as parse_json, JsonValue};
pub use trace::{
    validate_chrome_json, Event, Phase, Sampler, Series, TraceBuf, TraceCheck, TraceId,
    CHROME_EVENT_FIELDS,
};

/// Why the host is blocked — the paper's stall taxonomy.
///
/// Every nanosecond of host-visible blocking is attributed to exactly one of
/// these causes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stall {
    /// Raw media/interconnect service time of reads and writes.
    Media,
    /// Waiting for a FLUSH CACHE (write-barrier) to drain the device cache.
    FlushCache,
    /// Waiting for FTL garbage collection that delayed a host command.
    Gc,
    /// Waiting for a WAL buffer flush + fsync at commit time.
    WalFsync,
    /// Waiting for a dirty-victim eviction write in the buffer pool.
    PoolEviction,
}

impl Stall {
    /// All kinds, in display order.
    pub const ALL: [Stall; 5] =
        [Stall::Media, Stall::FlushCache, Stall::Gc, Stall::WalFsync, Stall::PoolEviction];

    /// Stable snake_case name used in JSON and reports.
    pub fn name(self) -> &'static str {
        match self {
            Stall::Media => "media",
            Stall::FlushCache => "flush_cache",
            Stall::Gc => "gc",
            Stall::WalFsync => "wal_fsync",
            Stall::PoolEviction => "pool_eviction",
        }
    }

    fn index(self) -> usize {
        match self {
            Stall::Media => 0,
            Stall::FlushCache => 1,
            Stall::Gc => 2,
            Stall::WalFsync => 3,
            Stall::PoolEviction => 4,
        }
    }
}

impl fmt::Display for Stall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Totals (in nanoseconds of host blocking) per stall kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallTotals {
    /// Raw media service time.
    pub media: Nanos,
    /// FLUSH CACHE drain time.
    pub flush_cache: Nanos,
    /// GC-induced delay.
    pub gc: Nanos,
    /// WAL fsync waits.
    pub wal_fsync: Nanos,
    /// Buffer-pool eviction writes.
    pub pool_eviction: Nanos,
}

impl StallTotals {
    /// Sum over all kinds.
    pub fn total(&self) -> Nanos {
        self.media + self.flush_cache + self.gc + self.wal_fsync + self.pool_eviction
    }

    /// Value for one kind.
    pub fn get(&self, kind: Stall) -> Nanos {
        match kind {
            Stall::Media => self.media,
            Stall::FlushCache => self.flush_cache,
            Stall::Gc => self.gc,
            Stall::WalFsync => self.wal_fsync,
            Stall::PoolEviction => self.pool_eviction,
        }
    }
}

/// A point-in-time copy of a registry's counters (see
/// [`Registry::snapshot`]): the start or end edge of a measurement window.
#[derive(Debug, Clone, Default)]
pub struct CounterSnapshot {
    counters: BTreeMap<String, u64>,
}

impl CounterSnapshot {
    /// Value of `name` at snapshot time (0 if the counter did not exist).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Per-counter increase from `self` (the earlier edge) to `later`.
    /// Counters born inside the window count from zero; counters that did
    /// not move are omitted.
    pub fn delta(&self, later: &CounterSnapshot) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for (name, &v) in &later.counters {
            let d = v.saturating_sub(self.counter(name));
            if d > 0 {
                out.insert(name.clone(), d);
            }
        }
        out
    }
}

/// The backing store for one telemetry domain: named histograms, counters,
/// gauges, per-kind stall totals, the stall-attribution context stack, and
/// (when enabled) the event-trace ring, trace-ID stack and gauge sampler.
#[derive(Debug, Default, Clone)]
pub struct Registry {
    hists: BTreeMap<String, Histogram>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    stalls: [Nanos; 5],
    context: Vec<Stall>,
    trace: Option<TraceBuf>,
    trace_stack: Vec<TraceId>,
    next_trace: u64,
    sampler: Option<Sampler>,
    anatomy: Option<Anatomy>,
}

impl Registry {
    /// Fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one latency sample into the named histogram.
    ///
    /// Steady-state recording is allocation-free: the name is only turned
    /// into an owned `String` the first time it is seen.
    pub fn record(&mut self, name: &str, ns: Nanos) {
        if let Some(h) = self.hists.get_mut(name) {
            h.record(ns);
        } else {
            self.hists.entry(name.to_string()).or_default().record(ns);
        }
    }

    /// Add to a named counter (allocation-free after the first sample).
    pub fn incr(&mut self, name: &str, by: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += by;
        } else {
            self.counters.insert(name.to_string(), by);
        }
    }

    /// Set a named gauge (allocation-free after the first sample).
    pub fn set_gauge(&mut self, name: &str, value: i64) {
        if let Some(g) = self.gauges.get_mut(name) {
            *g = value;
        } else {
            self.gauges.insert(name.to_string(), value);
        }
    }

    /// Attribute `ns` nanoseconds of host blocking. If an attribution
    /// context is active (e.g. the WAL is inside a commit flush), the time
    /// is charged to the innermost context instead of `kind`, so a
    /// nanosecond is never double-counted.
    pub fn stall(&mut self, kind: Stall, ns: Nanos) {
        let attributed = *self.context.last().unwrap_or(&kind);
        self.stalls[attributed.index()] += ns;
    }

    /// Attribute `ns` to `kind` unconditionally, ignoring the context stack.
    pub fn stall_exact(&mut self, kind: Stall, ns: Nanos) {
        self.stalls[kind.index()] += ns;
    }

    /// Push an attribution context (see [`Registry::stall`]).
    pub fn push_context(&mut self, kind: Stall) {
        self.context.push(kind);
    }

    /// Pop the innermost attribution context.
    pub fn pop_context(&mut self) {
        self.context.pop();
    }

    /// Per-kind stall totals.
    pub fn stall_totals(&self) -> StallTotals {
        StallTotals {
            media: self.stalls[0],
            flush_cache: self.stalls[1],
            gc: self.stalls[2],
            wal_fsync: self.stalls[3],
            pool_eviction: self.stalls[4],
        }
    }

    /// Named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// Named counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Point-in-time copy of every named counter. Counters are cumulative;
    /// to measure a steady-state window (excluding warm-up), snapshot at
    /// the window edges and diff with [`CounterSnapshot::delta`].
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot { counters: self.counters.clone() }
    }

    /// Named gauge, if set.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Names of all histograms with at least one sample.
    pub fn histogram_names(&self) -> Vec<String> {
        self.hists.keys().cloned().collect()
    }

    /// Start recording trace events into a ring of `capacity` events.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.trace = Some(TraceBuf::new(capacity));
    }

    /// True once [`Registry::enable_tracing`] was called.
    pub fn tracing_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// The trace ring, if tracing is enabled.
    pub fn trace_buf(&self) -> Option<&TraceBuf> {
        self.trace.as_ref()
    }

    /// Open a host-operation scope: allocates a fresh [`TraceId`], pushes
    /// it on the trace-ID stack (every event emitted underneath — WAL,
    /// volume, device, NAND — inherits it), and records the opening
    /// `Begin`. When anatomy is enabled, also opens an attribution frame
    /// (see [`Registry::begin_frame`]). Pair with [`Registry::end_op`].
    /// Returns 0 (no trace-ID) when tracing is disabled; the anatomy frame
    /// opens regardless.
    pub fn begin_op(&mut self, cat: &str, name: &str, ts: Nanos) -> TraceId {
        let mut id = 0;
        if let Some(t) = self.trace.as_mut() {
            self.next_trace += 1;
            id = self.next_trace;
            self.trace_stack.push(id);
            t.push(ts, id, Phase::Begin, cat, name);
        }
        self.begin_frame(name, ts);
        id
    }

    /// Close the innermost host-operation scope opened by
    /// [`Registry::begin_op`]: closes the anatomy frame (if enabled), then
    /// pops the trace-ID and records the `End` event.
    pub fn end_op(&mut self, cat: &str, name: &str, ts: Nanos) {
        self.end_frame(name, ts);
        if let Some(t) = self.trace.as_mut() {
            let id = self.trace_stack.pop().unwrap_or(0);
            t.push(ts, id, Phase::End, cat, name);
        }
    }

    /// The trace-ID of the operation currently in scope (0 if none).
    pub fn current_trace(&self) -> TraceId {
        *self.trace_stack.last().unwrap_or(&0)
    }

    /// Record a `Begin` event under the current trace-ID. No-op when
    /// tracing is disabled — returns before any name interning or
    /// trace-stack work happens.
    pub fn trace_begin(&mut self, cat: &str, name: &str, ts: Nanos) {
        let Some(t) = self.trace.as_mut() else { return };
        let id = *self.trace_stack.last().unwrap_or(&0);
        t.push(ts, id, Phase::Begin, cat, name);
    }

    /// Record an `End` event under the current trace-ID.
    pub fn trace_end(&mut self, cat: &str, name: &str, ts: Nanos) {
        let Some(t) = self.trace.as_mut() else { return };
        let id = *self.trace_stack.last().unwrap_or(&0);
        t.push(ts, id, Phase::End, cat, name);
    }

    /// Record an `Instant` event under the current trace-ID.
    pub fn trace_instant(&mut self, cat: &str, name: &str, ts: Nanos) {
        let Some(t) = self.trace.as_mut() else { return };
        let id = *self.trace_stack.last().unwrap_or(&0);
        t.push(ts, id, Phase::Instant, cat, name);
    }

    /// Start sampling all gauges every `cadence` virtual nanoseconds.
    pub fn enable_sampling(&mut self, cadence: Nanos) {
        self.sampler = Some(Sampler::new(cadence));
    }

    /// Tick the sampler at virtual time `now` (no-op unless sampling is
    /// enabled and the cadence has elapsed). The engine and docstore call
    /// this once per operation, so bench bins never need loop access.
    pub fn sample(&mut self, now: Nanos) {
        if let Some(s) = self.sampler.as_mut() {
            s.sample_if_due(now, &self.gauges);
        }
    }

    /// Take the final sample at end-of-run (always fires; see
    /// [`Sampler::finish`]).
    pub fn finish_sampling(&mut self, now: Nanos) {
        if let Some(s) = self.sampler.as_mut() {
            s.finish(now, &self.gauges);
        }
    }

    /// The gauge sampler, if sampling is enabled.
    pub fn sampler(&self) -> Option<&Sampler> {
        self.sampler.as_ref()
    }

    /// Start per-operation latency-anatomy tracking, capturing the `k`
    /// slowest ops per name in the tail-outlier capturer. Until this is
    /// called, every frame/segment hook is a free no-op.
    pub fn enable_anatomy(&mut self, k: usize) {
        self.anatomy = Some(Anatomy::new(k));
    }

    /// True once [`Registry::enable_anatomy`] was called.
    pub fn anatomy_enabled(&self) -> bool {
        self.anatomy.is_some()
    }

    /// Open an attribution frame for op `name` at `ts` without emitting
    /// any trace event (used for device-level ops that are not trace
    /// scopes, and by [`Registry::begin_op`] for ops that are). The frame
    /// inherits the current trace-ID. No-op when anatomy is disabled.
    pub fn begin_frame(&mut self, name: &str, ts: Nanos) {
        let trace = *self.trace_stack.last().unwrap_or(&0);
        if let Some(a) = self.anatomy.as_mut() {
            a.begin(name, ts, trace);
        }
    }

    /// Close the innermost attribution frame at `ts`: audits the
    /// conservation identity, sweeps the unattributed remainder into
    /// [`SegKind::Host`] (recording it in the `seg.host` histogram), and
    /// offers the breakdown to the outlier capturer. No-op when anatomy is
    /// disabled or no frame is open.
    pub fn end_frame(&mut self, name: &str, ts: Nanos) {
        let host = match self.anatomy.as_mut() {
            Some(a) => a.end(name, ts),
            None => None,
        };
        if let Some(host) = host {
            if host > 0 {
                self.record(SegKind::Host.hist_name(), host);
            }
        }
    }

    /// Charge `ns` nanoseconds of causally attributed segment `kind` into
    /// every open frame and the per-kind `seg.<label>` histogram. A charge
    /// with no open frame (background work outside any host op) is
    /// dropped; zero-length charges are free no-ops.
    pub fn seg(&mut self, kind: SegKind, ns: Nanos) {
        if ns == 0 {
            return;
        }
        let charged = match self.anatomy.as_mut() {
            Some(a) => a.charge(kind, ns),
            None => false,
        };
        if charged {
            self.record(kind.hist_name(), ns);
        }
    }

    /// Ops whose claimed segments exceeded wall latency (must stay 0; the
    /// anatomy conservation audit).
    pub fn anatomy_violations(&self) -> u64 {
        self.anatomy.as_ref().map_or(0, |a| a.violations())
    }

    /// The most recently closed per-op breakdown, if anatomy is enabled
    /// and at least one frame has closed.
    pub fn last_breakdown(&self) -> Option<&OpBreakdown> {
        self.anatomy.as_ref().and_then(|a| a.last())
    }

    /// Number of attribution frames currently open.
    pub fn frame_depth(&self) -> usize {
        self.anatomy.as_ref().map_or(0, |a| a.depth())
    }

    /// The tail-outlier capturer, if anatomy is enabled.
    pub fn outliers(&self) -> Option<&OutlierCap> {
        self.anatomy.as_ref().map(|a| a.outliers())
    }

    /// Drop all recorded data (contexts are preserved; tracing and
    /// sampling stay enabled but their buffers empty).
    pub fn reset(&mut self) {
        self.hists.clear();
        self.counters.clear();
        self.gauges.clear();
        self.stalls = [0; 5];
        if let Some(t) = &mut self.trace {
            t.clear();
        }
        if let Some(s) = &mut self.sampler {
            s.clear();
        }
        if let Some(a) = &mut self.anatomy {
            a.clear();
        }
    }

    /// Serialise the registry to a JSON object. Histograms are exported
    /// with their raw (index, count) bucket list so the export is lossless.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push('{');
        out.push_str("\"stalls\":{");
        for (i, kind) in Stall::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", kind.name(), self.stalls[kind.index()]));
        }
        out.push_str("},\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", json::quote(k), v));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", json::quote(k), v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", json::quote(k), h.to_json()));
        }
        out.push('}');
        if let Some(s) = &self.sampler {
            out.push_str(",\"series\":");
            out.push_str(&s.to_json());
        }
        out.push('}');
        out
    }

    /// Rebuild a registry from the output of [`Registry::to_json`].
    /// `from_json(to_json(r)).to_json() == to_json(r)` holds exactly.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let v = json::parse(s)?;
        let obj = v.as_object().ok_or("registry: expected object")?;
        let mut reg = Registry::new();
        if let Some(stalls) = obj.get("stalls").and_then(|v| v.as_object()) {
            for kind in Stall::ALL {
                if let Some(n) = stalls.get(kind.name()).and_then(|v| v.as_u64()) {
                    reg.stalls[kind.index()] = n;
                }
            }
        }
        if let Some(cs) = obj.get("counters").and_then(|v| v.as_object()) {
            for (k, v) in cs {
                reg.counters.insert(k.clone(), v.as_u64().ok_or("counter: expected u64")?);
            }
        }
        if let Some(gs) = obj.get("gauges").and_then(|v| v.as_object()) {
            for (k, v) in gs {
                reg.gauges.insert(k.clone(), v.as_i64().ok_or("gauge: expected i64")?);
            }
        }
        if let Some(hs) = obj.get("histograms").and_then(|v| v.as_object()) {
            for (k, v) in hs {
                reg.hists.insert(k.clone(), Histogram::from_json_value(v)?);
            }
        }
        if let Some(sv) = obj.get("series") {
            reg.sampler = Some(Sampler::from_json_value(sv)?);
        }
        Ok(reg)
    }
}

/// Cheaply clonable handle to a shared [`Registry`]. The simulation runs on
/// a single thread in virtual time, so interior mutability via `RefCell` is
/// sufficient (and keeps recording on the hot path allocation-free for
/// existing names).
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Rc<RefCell<Registry>>,
}

impl Telemetry {
    /// Fresh handle with an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one latency sample into the named histogram.
    pub fn record(&self, name: &str, ns: Nanos) {
        self.inner.borrow_mut().record(name, ns);
    }

    /// Add to a named counter.
    pub fn incr(&self, name: &str, by: u64) {
        self.inner.borrow_mut().incr(name, by);
    }

    /// Set a named gauge.
    pub fn set_gauge(&self, name: &str, value: i64) {
        self.inner.borrow_mut().set_gauge(name, value);
    }

    /// Attribute host blocking time (context-aware; see [`Registry::stall`]).
    pub fn stall(&self, kind: Stall, ns: Nanos) {
        self.inner.borrow_mut().stall(kind, ns);
    }

    /// Attribute host blocking time to `kind` regardless of context.
    pub fn stall_exact(&self, kind: Stall, ns: Nanos) {
        self.inner.borrow_mut().stall_exact(kind, ns);
    }

    /// Push a stall-attribution context; pair with [`Telemetry::pop_context`].
    pub fn push_context(&self, kind: Stall) {
        self.inner.borrow_mut().push_context(kind);
    }

    /// Pop the innermost stall-attribution context.
    pub fn pop_context(&self) {
        self.inner.borrow_mut().pop_context();
    }

    /// Open a [`Span`] at virtual time `start`; close it with
    /// [`Span::finish`] at the operation's virtual completion time.
    pub fn span(&self, name: &str, start: Nanos) -> Span {
        Span { tel: self.clone(), name: name.to_string(), start }
    }

    /// Per-kind stall totals.
    pub fn stall_totals(&self) -> StallTotals {
        self.inner.borrow().stall_totals()
    }

    /// Clone of the named histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.inner.borrow().histogram(name).cloned()
    }

    /// Named counter value.
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.borrow().counter(name)
    }

    /// Copy of every counter, for steady-state delta windows (see
    /// [`Registry::snapshot`]).
    pub fn snapshot(&self) -> CounterSnapshot {
        self.inner.borrow().snapshot()
    }

    /// Named gauge value.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.inner.borrow().gauge(name)
    }

    /// Names of all histograms with samples.
    pub fn histogram_names(&self) -> Vec<String> {
        self.inner.borrow().histogram_names()
    }

    /// Start recording trace events into a ring of `capacity` events.
    pub fn enable_tracing(&self, capacity: usize) {
        self.inner.borrow_mut().enable_tracing(capacity);
    }

    /// True once tracing was enabled on this domain.
    pub fn tracing_enabled(&self) -> bool {
        self.inner.borrow().tracing_enabled()
    }

    /// Open a host-operation trace scope (see [`Registry::begin_op`]).
    pub fn begin_op(&self, cat: &str, name: &str, ts: Nanos) -> TraceId {
        self.inner.borrow_mut().begin_op(cat, name, ts)
    }

    /// Close the innermost host-operation trace scope.
    pub fn end_op(&self, cat: &str, name: &str, ts: Nanos) {
        self.inner.borrow_mut().end_op(cat, name, ts);
    }

    /// Trace-ID of the operation currently in scope (0 if none).
    pub fn current_trace(&self) -> TraceId {
        self.inner.borrow().current_trace()
    }

    /// Record a `Begin` trace event under the current trace-ID.
    pub fn trace_begin(&self, cat: &str, name: &str, ts: Nanos) {
        self.inner.borrow_mut().trace_begin(cat, name, ts);
    }

    /// Record an `End` trace event under the current trace-ID.
    pub fn trace_end(&self, cat: &str, name: &str, ts: Nanos) {
        self.inner.borrow_mut().trace_end(cat, name, ts);
    }

    /// Record an `Instant` trace event under the current trace-ID.
    pub fn trace_instant(&self, cat: &str, name: &str, ts: Nanos) {
        self.inner.borrow_mut().trace_instant(cat, name, ts);
    }

    /// Export the trace ring as Chrome trace-event JSON, if tracing is
    /// enabled.
    pub fn trace_chrome_json(&self) -> Option<String> {
        self.inner.borrow().trace_buf().map(|t| t.to_chrome_json())
    }

    /// `(recorded, dropped)` event totals of the trace ring, if enabled.
    pub fn trace_counts(&self) -> Option<(u64, u64)> {
        self.inner.borrow().trace_buf().map(|t| (t.recorded(), t.dropped()))
    }

    /// Start sampling all gauges every `cadence` virtual nanoseconds.
    pub fn enable_sampling(&self, cadence: Nanos) {
        self.inner.borrow_mut().enable_sampling(cadence);
    }

    /// Tick the sampler at virtual time `now` (cadence-gated no-op).
    pub fn sample(&self, now: Nanos) {
        self.inner.borrow_mut().sample(now);
    }

    /// Take the final sample at end-of-run.
    pub fn finish_sampling(&self, now: Nanos) {
        self.inner.borrow_mut().finish_sampling(now);
    }

    /// Export the sampled gauge series as CSV, if sampling is enabled.
    pub fn series_csv(&self) -> Option<String> {
        self.inner.borrow().sampler().map(|s| s.to_csv())
    }

    /// Start per-op latency anatomy (top-`k` tail outliers per op name).
    pub fn enable_anatomy(&self, k: usize) {
        self.inner.borrow_mut().enable_anatomy(k);
    }

    /// True once anatomy was enabled on this domain.
    pub fn anatomy_enabled(&self) -> bool {
        self.inner.borrow().anatomy_enabled()
    }

    /// Open an attribution frame (see [`Registry::begin_frame`]).
    pub fn begin_frame(&self, name: &str, ts: Nanos) {
        self.inner.borrow_mut().begin_frame(name, ts);
    }

    /// Close the innermost attribution frame (see [`Registry::end_frame`]).
    pub fn end_frame(&self, name: &str, ts: Nanos) {
        self.inner.borrow_mut().end_frame(name, ts);
    }

    /// Charge an attributed latency segment (see [`Registry::seg`]).
    pub fn seg(&self, kind: SegKind, ns: Nanos) {
        self.inner.borrow_mut().seg(kind, ns);
    }

    /// Conservation-audit counter: ops that over-claimed segments.
    pub fn anatomy_violations(&self) -> u64 {
        self.inner.borrow().anatomy_violations()
    }

    /// Clone of the most recently closed per-op breakdown.
    pub fn last_breakdown(&self) -> Option<OpBreakdown> {
        self.inner.borrow().last_breakdown().cloned()
    }

    /// Number of attribution frames currently open.
    pub fn frame_depth(&self) -> usize {
        self.inner.borrow().frame_depth()
    }

    /// Retained tail outliers for one op name, slowest first.
    pub fn outliers_for(&self, name: &str) -> Vec<OpBreakdown> {
        self.inner.borrow().outliers().map_or_else(Vec::new, |o| o.for_op(name).to_vec())
    }

    /// JSON export of the tail-outlier capturer (written next to the
    /// Chrome trace), if anatomy is enabled.
    pub fn outliers_json(&self) -> Option<String> {
        self.inner.borrow().outliers().map(|o| o.to_json())
    }

    /// Drop all recorded data.
    pub fn reset(&self) {
        self.inner.borrow_mut().reset();
    }

    /// Run `f` with direct access to the registry.
    pub fn with<T>(&self, f: impl FnOnce(&Registry) -> T) -> T {
        f(&self.inner.borrow())
    }

    /// JSON export of the whole registry (lossless; see
    /// [`Registry::from_json`]).
    pub fn to_json(&self) -> String {
        self.inner.borrow().to_json()
    }
}

/// An open measurement scope keyed on virtual time. Created by
/// [`Telemetry::span`]; call [`Span::finish`] with the virtual completion
/// time to record `end - start` into the named histogram.
#[derive(Debug)]
pub struct Span {
    tel: Telemetry,
    name: String,
    start: Nanos,
}

impl Span {
    /// Close the span at virtual time `end` and record its duration.
    /// Returns `end` so call sites can thread the clock through.
    pub fn finish(self, end: Nanos) -> Nanos {
        self.tel.record(&self.name, end.saturating_sub(self.start));
        end
    }

    /// The span's opening time.
    pub fn start(&self) -> Nanos {
        self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let t = Telemetry::new();
        t.incr("ops", 3);
        t.incr("ops", 2);
        t.set_gauge("depth", -4);
        assert_eq!(t.counter("ops"), 5);
        assert_eq!(t.gauge("depth"), Some(-4));
        assert_eq!(t.counter("missing"), 0);
        assert_eq!(t.gauge("missing"), None);
    }

    #[test]
    fn counter_snapshot_deltas_bound_a_window() {
        let t = Telemetry::new();
        t.incr("warmup_only", 7);
        t.incr("ops", 10);
        let start = t.snapshot();
        t.incr("ops", 5);
        t.incr("born_in_window", 2);
        let end = t.snapshot();
        // Snapshots are frozen copies: later increments don't leak in.
        t.incr("ops", 100);
        let d = start.delta(&end);
        assert_eq!(d.get("ops"), Some(&5));
        assert_eq!(d.get("born_in_window"), Some(&2));
        // Unchanged counters are omitted from the delta entirely.
        assert!(!d.contains_key("warmup_only"));
        assert_eq!(start.counter("ops"), 10);
        assert_eq!(end.counter("ops"), 15);
        assert_eq!(end.counter("never_seen"), 0);
    }

    #[test]
    fn spans_record_durations() {
        let t = Telemetry::new();
        let sp = t.span("wal.commit", 100);
        assert_eq!(sp.start(), 100);
        let end = sp.finish(350);
        assert_eq!(end, 350);
        let h = t.histogram("wal.commit").unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 250);
    }

    #[test]
    fn stall_attribution_respects_context() {
        let t = Telemetry::new();
        t.stall(Stall::Media, 100);
        t.push_context(Stall::WalFsync);
        t.stall(Stall::Media, 40); // re-attributed
        t.stall(Stall::FlushCache, 60); // re-attributed
        t.pop_context();
        t.stall(Stall::FlushCache, 7);
        t.stall_exact(Stall::Gc, 5);
        let s = t.stall_totals();
        assert_eq!(s.media, 100);
        assert_eq!(s.wal_fsync, 100);
        assert_eq!(s.flush_cache, 7);
        assert_eq!(s.gc, 5);
        assert_eq!(s.pool_eviction, 0);
        assert_eq!(s.total(), 212);
    }

    #[test]
    fn nested_contexts_use_innermost() {
        let t = Telemetry::new();
        t.push_context(Stall::WalFsync);
        t.push_context(Stall::PoolEviction);
        t.stall(Stall::Media, 10);
        t.pop_context();
        t.stall(Stall::Media, 5);
        t.pop_context();
        let s = t.stall_totals();
        assert_eq!(s.pool_eviction, 10);
        assert_eq!(s.wal_fsync, 5);
        assert_eq!(s.media, 0);
    }

    #[test]
    fn shared_handle_sees_all_writes() {
        let a = Telemetry::new();
        let b = a.clone();
        a.incr("x", 1);
        b.incr("x", 1);
        assert_eq!(a.counter("x"), 2);
    }

    #[test]
    fn json_round_trips_exactly() {
        let t = Telemetry::new();
        t.incr("engine.commits", 42);
        t.set_gauge("pool.dirty", 17);
        t.set_gauge("neg", -3);
        for v in [0u64, 1, 5, 1000, 123_456_789, u64::MAX] {
            t.record("dev.write", v);
        }
        t.record("odd \"name\" \\ here", 77);
        t.stall(Stall::FlushCache, 1234);
        t.stall(Stall::Media, 9);
        let j1 = t.to_json();
        let reg = Registry::from_json(&j1).expect("parse back");
        let j2 = reg.to_json();
        assert_eq!(j1, j2, "round trip must be lossless");
        assert_eq!(reg.counter("engine.commits"), 42);
        assert_eq!(reg.gauge("neg"), Some(-3));
        assert_eq!(reg.stall_totals().flush_cache, 1234);
        let h = reg.histogram("dev.write").unwrap();
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn op_scopes_assign_trace_ids_and_nest() {
        let t = Telemetry::new();
        // Disabled: begin_op is a free no-op returning 0.
        assert_eq!(t.begin_op("engine", "engine.put", 0), 0);
        assert_eq!(t.current_trace(), 0);
        t.enable_tracing(1024);
        let id1 = t.begin_op("engine", "engine.put", 10);
        assert_eq!(id1, 1);
        assert_eq!(t.current_trace(), id1);
        t.trace_begin("wal", "wal.append", 12);
        t.trace_end("wal", "wal.append", 20);
        t.end_op("engine", "engine.put", 25);
        assert_eq!(t.current_trace(), 0);
        let id2 = t.begin_op("engine", "engine.commit", 30);
        assert_eq!(id2, 2, "each op gets a fresh trace-ID");
        t.end_op("engine", "engine.commit", 40);
        let doc = t.trace_chrome_json().unwrap();
        let chk = validate_chrome_json(&doc).expect("valid chrome trace");
        assert_eq!(chk.begins, 3);
        assert_eq!(chk.tracks, 2);
        // The wal event inherited op 1's trace-ID.
        assert!(doc.contains(
            "\"name\":\"wal.append\",\"cat\":\"wal\",\"ph\":\"B\",\"ts\":0.012,\"pid\":1,\"tid\":1"
        ));
        assert_eq!(t.trace_counts(), Some((6, 0)));
    }

    #[test]
    fn registry_json_round_trips_with_series() {
        let t = Telemetry::new();
        t.enable_sampling(100);
        t.set_gauge("pool.dirty_pages", 5);
        t.sample(0);
        t.set_gauge("pool.dirty_pages", 9);
        t.set_gauge("ssd.cache_occupancy", 3);
        t.sample(150);
        t.finish_sampling(220);
        t.incr("ops", 2);
        let j1 = t.to_json();
        assert!(j1.contains("\"series\":{"), "series section must be exported");
        let reg = Registry::from_json(&j1).expect("parse back");
        assert_eq!(reg.to_json(), j1, "series round trip must be lossless");
        let s = reg.sampler().unwrap();
        assert_eq!(s.times(), &[0, 150, 220]);
        assert_eq!(s.series()["ssd.cache_occupancy"].start, 1);
    }

    #[test]
    fn sampling_is_cadence_gated() {
        let t = Telemetry::new();
        t.sample(0); // no-op before enable
        t.enable_sampling(1_000);
        t.set_gauge("g", 1);
        t.sample(0);
        t.sample(10); // below cadence: skipped
        t.sample(999);
        t.sample(1_000);
        t.finish_sampling(1_500);
        let csv = t.series_csv().unwrap();
        assert_eq!(csv, "t_ns,g\n0,1\n1000,1\n1500,1\n");
    }

    #[test]
    fn reset_clears_trace_and_series_but_keeps_them_enabled() {
        let t = Telemetry::new();
        t.enable_tracing(64);
        t.enable_sampling(10);
        t.set_gauge("g", 1);
        let id = t.begin_op("engine", "op", 0);
        t.end_op("engine", "op", 5);
        t.sample(0);
        t.reset();
        assert!(t.tracing_enabled());
        assert_eq!(t.trace_counts().map(|(r, _)| r), Some(2), "counters survive reset");
        let doc = t.trace_chrome_json().unwrap();
        assert_eq!(validate_chrome_json(&doc).unwrap().events, 0);
        assert!(t.series_csv().unwrap().lines().count() == 1, "header only");
        // Trace-IDs keep advancing; no reuse after reset.
        t.set_gauge("g", 2);
        assert!(t.begin_op("engine", "op", 10) > id);
    }

    #[test]
    fn anatomy_frames_ride_op_scopes_and_conserve() {
        let t = Telemetry::new();
        // Disabled: all hooks are free no-ops.
        t.begin_frame("engine.commit", 0);
        t.seg(SegKind::WalFsync, 10);
        t.end_frame("engine.commit", 100);
        assert!(t.last_breakdown().is_none());
        assert_eq!(t.anatomy_violations(), 0);

        t.enable_anatomy(4);
        // Frames open via begin_op even with tracing disabled (trace-ID 0).
        assert_eq!(t.begin_op("engine", "engine.commit", 1_000), 0);
        assert_eq!(t.frame_depth(), 1);
        t.begin_frame("dev.log.write", 1_100);
        t.seg(SegKind::MediaProgram, 300);
        t.seg(SegKind::NcqWait, 50);
        t.end_frame("dev.log.write", 1_500);
        let dev = t.last_breakdown().unwrap();
        assert_eq!(dev.wall, 400);
        assert_eq!(dev.seg(SegKind::MediaProgram), 300);
        assert_eq!(dev.seg(SegKind::Host), 50, "400 - 350 attributed");
        assert!(dev.is_conserved());
        t.seg(SegKind::WalFsync, 200);
        t.end_op("engine", "engine.commit", 2_000);
        let op = t.last_breakdown().unwrap();
        assert_eq!(op.name, "engine.commit");
        assert_eq!(op.wall, 1_000);
        // Child's segments rolled up into the enclosing commit frame.
        assert_eq!(op.seg(SegKind::MediaProgram), 300);
        assert_eq!(op.seg(SegKind::WalFsync), 200);
        assert!(op.is_conserved());
        assert_eq!(t.anatomy_violations(), 0);
        assert_eq!(t.frame_depth(), 0);
        // Per-kind histograms recorded on every charge + host remainders.
        assert_eq!(t.histogram("seg.media_program").unwrap().count(), 1);
        assert_eq!(t.histogram("seg.wal_fsync").unwrap().count(), 1);
        assert_eq!(t.histogram("seg.host").unwrap().count(), 2);
        // Both closed frames were offered to the outlier capturer.
        assert_eq!(t.outliers_for("engine.commit").len(), 1);
        assert_eq!(t.outliers_for("dev.log.write").len(), 1);
        assert!(t.outliers_json().unwrap().contains("\"engine.commit\""));
    }

    #[test]
    fn anatomy_frames_inherit_trace_ids() {
        let t = Telemetry::new();
        t.enable_tracing(256);
        t.enable_anatomy(2);
        let id = t.begin_op("doc", "doc.set", 10);
        t.begin_frame("dev.doc.write", 20);
        t.end_frame("dev.doc.write", 30);
        assert_eq!(t.last_breakdown().unwrap().trace, id, "frame carries op trace-ID");
        t.end_op("doc", "doc.set", 40);
        assert_eq!(t.last_breakdown().unwrap().trace, id);
        // Frames emit no trace events: only the op's Begin/End pair exists.
        assert_eq!(t.trace_counts(), Some((2, 0)));
    }

    #[test]
    fn outlier_capturer_agrees_with_exact_hist_extremes() {
        // The histogram's exact min/max (not log-bucket approximations)
        // cross-check the tail capturer: the slowest retained outlier must
        // be *the* max the op histogram observed.
        let t = Telemetry::new();
        t.enable_anatomy(3);
        let walls = [700u64, 23, 9_999, 140, 3, 9_999, 512];
        let mut now = 0;
        for w in walls {
            t.begin_frame("doc.set", now);
            t.end_frame("doc.set", now + w);
            t.record("doc.set", w);
            now += w;
        }
        let h = t.histogram("doc.set").unwrap();
        assert_eq!(h.max(), 9_999);
        assert_eq!(h.min(), 3);
        let top = t.outliers_for("doc.set");
        assert_eq!(top[0].wall, h.max(), "slowest outlier is the exact hist max");
        assert_eq!(top.len(), 3);
        assert!(top.iter().all(|b| b.wall >= 512), "top-3 of the wall list");
        // Every retained wall really was observed by the histogram.
        assert!(top.iter().all(|b| b.wall >= h.min() && b.wall <= h.max()));
    }

    #[test]
    fn anatomy_json_export_is_unchanged() {
        // Anatomy state lives outside the registry JSON (outliers export
        // separately), so the exact round-trip contract is unaffected.
        let t = Telemetry::new();
        t.incr("ops", 1);
        let before = t.to_json();
        t.enable_anatomy(4);
        assert_eq!(t.to_json(), before);
        let reg = Registry::from_json(&before).expect("parse back");
        assert_eq!(reg.to_json(), before);
    }

    #[test]
    fn reset_clears_anatomy_but_keeps_it_enabled() {
        let t = Telemetry::new();
        t.enable_anatomy(3);
        t.begin_frame("op", 0);
        t.seg(SegKind::Xfer, 10);
        t.end_frame("op", 50);
        assert!(t.last_breakdown().is_some());
        t.reset();
        assert!(t.anatomy_enabled());
        assert!(t.last_breakdown().is_none());
        assert_eq!(t.anatomy_violations(), 0);
        assert!(t.outliers_for("op").is_empty());
        t.begin_frame("op2", 100);
        t.end_frame("op2", 130);
        assert_eq!(t.last_breakdown().unwrap().wall, 30);
    }

    #[test]
    fn reset_clears_everything() {
        let t = Telemetry::new();
        t.incr("a", 1);
        t.record("h", 10);
        t.stall(Stall::Gc, 5);
        t.reset();
        assert_eq!(t.counter("a"), 0);
        assert!(t.histogram("h").is_none());
        assert_eq!(t.stall_totals().total(), 0);
    }
}

//! Latency anatomy: per-operation critical-path attribution.
//!
//! The stall taxonomy in [`crate::Stall`] answers "where did the run block,
//! in aggregate"; it cannot answer "why was *this* p999 commit slow". This
//! module adds the per-operation counterpart: every host operation opens a
//! **frame**, layers underneath charge causally attributed **segments**
//! (queueing wait vs service time per resource) into every open frame, and
//! closing the frame yields an [`OpBreakdown`] that satisfies a hard
//! **conservation identity**:
//!
//! ```text
//!   sum(segments) == wall latency          (exactly, in virtual nanoseconds)
//! ```
//!
//! The identity holds by construction: any nanosecond no layer claimed is
//! swept into the [`SegKind::Host`] remainder when the frame closes, and a
//! frame whose claimed segments *exceed* its wall time (an attribution bug —
//! some layer double-charged or charged outside its causal window) trips a
//! `violations` counter that tests and the simtest fuzzer assert stays zero.
//! This mirrors the write-provenance byte conservation audit in
//! `Ssd::check_invariants`: bytes there, nanoseconds here.
//!
//! Frames nest (an `engine.commit` frame encloses the `dev.log.write` frames
//! of the WAL appends it forced), and a segment charge lands in **every**
//! open frame: the charged window is inside the child's wall and the child's
//! wall is inside the parent's, so the parent's identity still holds — its
//! own `host` remainder simply shrinks. Only the innermost frame's remainder
//! is *computed*; parents absorb their children's totals transparently.
//!
//! On top of the per-op breakdowns sit two aggregate views:
//!
//! * per-segment-kind latency **histograms** (`seg.<label>`) recorded into
//!   the owning registry on every charge, so a report can show the full
//!   distribution of e.g. `flush_cache` segment durations, and
//! * a bounded **tail-outlier capturer** ([`OutlierCap`]): the top-K slowest
//!   operations per op name, each with its full segment breakdown and
//!   trace-ID, exported as JSON next to the Chrome trace so a tail sample in
//!   a report is one Perfetto click away from its causal decomposition.
//!
//! Everything here is opt-in (`enable_anatomy`): when disabled, the frame
//! and segment hooks return before any allocation or arithmetic, preserving
//! the zero-cost steady state of domains that never asked for anatomy.

use crate::json;
use simkit::Nanos;
use std::collections::BTreeMap;

use crate::trace::TraceId;

/// Number of segment kinds (length of [`SegKind::ALL`]).
pub const N_SEG: usize = 12;

/// Causally attributed latency segment kinds — the anatomy taxonomy.
///
/// Each kind is either *queueing wait* (time a command sat behind other work
/// on a shared resource) or *service* (time the resource actively spent on
/// this command). The split is explicit in the naming: `ChannelWait` /
/// `NcqWait` / `CacheAdmit` / `GcWait` / `HddDestage` are waits,
/// `MediaRead` / `MediaProgram` / `Xfer` / `MapPersist` are service,
/// `WalFsync` / `FlushCache` are host-visible durability waits, and `Host`
/// is fixed per-op overhead plus any unattributed remainder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SegKind {
    /// Wait for a NAND channel/plane to free up (queueing behind other
    /// media commands, including programs issued by background drain).
    ChannelWait,
    /// Wait for the host interface (SATA NCQ / dispatch pipe) to accept
    /// the command.
    NcqWait,
    /// Wait for a free write-cache slot when the cache is full (admission
    /// stall while the drain engine frees slots).
    CacheAdmit,
    /// Wait caused by FTL garbage collection preempting the command.
    GcWait,
    /// Wait for a WAL buffer flush + fsync at commit time.
    WalFsync,
    /// Persisting the logical-to-physical mapping journal.
    MapPersist,
    /// Wait for the HDD cache to destage dirty sectors (admission or
    /// explicit flush destage).
    HddDestage,
    /// NAND read service time (cell read + bus transfer).
    MediaRead,
    /// NAND program service time (bus transfer + cell program).
    MediaProgram,
    /// Host-visible FLUSH CACHE / write-barrier drain time.
    FlushCache,
    /// Host-interface data transfer service time.
    Xfer,
    /// Fixed host/firmware overhead plus unattributed remainder (computed
    /// at frame close; never charged explicitly by layers).
    Host,
}

impl SegKind {
    /// All kinds, in display order.
    pub const ALL: [SegKind; N_SEG] = [
        SegKind::ChannelWait,
        SegKind::NcqWait,
        SegKind::CacheAdmit,
        SegKind::GcWait,
        SegKind::WalFsync,
        SegKind::MapPersist,
        SegKind::HddDestage,
        SegKind::MediaRead,
        SegKind::MediaProgram,
        SegKind::FlushCache,
        SegKind::Xfer,
        SegKind::Host,
    ];

    /// Stable snake_case label used in JSON and reports.
    pub fn label(self) -> &'static str {
        match self {
            SegKind::ChannelWait => "channel_wait",
            SegKind::NcqWait => "ncq_wait",
            SegKind::CacheAdmit => "cache_admit",
            SegKind::GcWait => "gc_wait",
            SegKind::WalFsync => "wal_fsync",
            SegKind::MapPersist => "map_persist",
            SegKind::HddDestage => "hdd_destage",
            SegKind::MediaRead => "media_read",
            SegKind::MediaProgram => "media_program",
            SegKind::FlushCache => "flush_cache",
            SegKind::Xfer => "xfer",
            SegKind::Host => "host",
        }
    }

    /// Name of the per-kind segment-duration histogram in the registry.
    pub fn hist_name(self) -> &'static str {
        match self {
            SegKind::ChannelWait => "seg.channel_wait",
            SegKind::NcqWait => "seg.ncq_wait",
            SegKind::CacheAdmit => "seg.cache_admit",
            SegKind::GcWait => "seg.gc_wait",
            SegKind::WalFsync => "seg.wal_fsync",
            SegKind::MapPersist => "seg.map_persist",
            SegKind::HddDestage => "seg.hdd_destage",
            SegKind::MediaRead => "seg.media_read",
            SegKind::MediaProgram => "seg.media_program",
            SegKind::FlushCache => "seg.flush_cache",
            SegKind::Xfer => "seg.xfer",
            SegKind::Host => "seg.host",
        }
    }

    /// Dense index into a per-kind array (matches [`SegKind::ALL`] order).
    pub fn index(self) -> usize {
        match self {
            SegKind::ChannelWait => 0,
            SegKind::NcqWait => 1,
            SegKind::CacheAdmit => 2,
            SegKind::GcWait => 3,
            SegKind::WalFsync => 4,
            SegKind::MapPersist => 5,
            SegKind::HddDestage => 6,
            SegKind::MediaRead => 7,
            SegKind::MediaProgram => 8,
            SegKind::FlushCache => 9,
            SegKind::Xfer => 10,
            SegKind::Host => 11,
        }
    }
}

/// An open per-operation attribution frame (one entry of the frame stack).
#[derive(Debug, Clone)]
struct Frame {
    name: String,
    start: Nanos,
    trace: TraceId,
    segs: [Nanos; N_SEG],
}

/// The closed, conserved breakdown of one host operation: wall latency and
/// its exact decomposition into attributed segments.
///
/// Invariant (checked by [`OpBreakdown::is_conserved`], enforced at frame
/// close): `segments().sum() == wall`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpBreakdown {
    /// Operation name (histogram name of the op, e.g. `engine.commit`).
    pub name: String,
    /// Virtual time the operation started.
    pub start: Nanos,
    /// End-to-end virtual-time latency.
    pub wall: Nanos,
    /// Trace-ID of the op scope (0 when tracing was disabled), linking the
    /// breakdown to its span in the Chrome trace.
    pub trace: TraceId,
    /// Attributed nanoseconds per [`SegKind`], indexed by `SegKind::index`.
    pub segs: [Nanos; N_SEG],
}

impl OpBreakdown {
    /// Attributed time of one segment kind.
    pub fn seg(&self, kind: SegKind) -> Nanos {
        self.segs[kind.index()]
    }

    /// Sum over all segments (equals `wall` when conserved).
    pub fn total(&self) -> Nanos {
        self.segs.iter().sum()
    }

    /// The conservation identity: segments sum exactly to wall latency.
    pub fn is_conserved(&self) -> bool {
        self.total() == self.wall
    }

    /// Fraction of wall latency attributed to `kind` (0.0 when wall is 0).
    pub fn frac(&self, kind: SegKind) -> f64 {
        if self.wall == 0 {
            0.0
        } else {
            self.seg(kind) as f64 / self.wall as f64
        }
    }

    /// JSON object: name, trace, start, wall and the non-zero segments.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"name\":{},\"trace\":{},\"start\":{},\"wall\":{},\"segments\":{{",
            json::quote(&self.name),
            self.trace,
            self.start,
            self.wall
        );
        let mut first = true;
        for kind in SegKind::ALL {
            let v = self.seg(kind);
            if v == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{}\":{}", kind.label(), v));
        }
        out.push_str("}}");
        out
    }
}

/// Bounded tail-outlier capture: the top-K slowest operations per op name,
/// each with its full segment breakdown. Memory is bounded at
/// `K × distinct op names` breakdowns regardless of run length.
#[derive(Debug, Clone)]
pub struct OutlierCap {
    k: usize,
    per_op: BTreeMap<String, Vec<OpBreakdown>>,
}

impl OutlierCap {
    /// Capture the `k` slowest ops per name.
    pub fn new(k: usize) -> Self {
        Self { k: k.max(1), per_op: BTreeMap::new() }
    }

    /// Capacity per op name.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Offer a closed breakdown; retained iff it ranks in the top-K wall
    /// latencies for its op name. The per-name list stays sorted slowest
    /// first, so insertion is a short shift in a K-length vector.
    pub fn offer(&mut self, bd: &OpBreakdown) {
        if let Some(v) = self.per_op.get_mut(&bd.name) {
            if v.len() >= self.k && bd.wall <= v.last().map_or(0, |b| b.wall) {
                return; // fast path: slower than every retained outlier
            }
            let pos = v.partition_point(|b| b.wall >= bd.wall);
            v.insert(pos, bd.clone());
            v.truncate(self.k);
        } else {
            self.per_op.insert(bd.name.clone(), vec![bd.clone()]);
        }
    }

    /// The retained outliers for one op name, slowest first.
    pub fn for_op(&self, name: &str) -> &[OpBreakdown] {
        self.per_op.get(name).map_or(&[], |v| v.as_slice())
    }

    /// All op names with at least one retained outlier.
    pub fn op_names(&self) -> Vec<String> {
        self.per_op.keys().cloned().collect()
    }

    /// Drop all retained outliers (capacity unchanged).
    pub fn clear(&mut self) {
        self.per_op.clear();
    }

    /// JSON document: `{"k":K,"ops":{"<name>":[<breakdown>...]}}`, written
    /// next to the Chrome trace by bench bins.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"k\":{},\"ops\":{{", self.k);
        for (i, (name, v)) in self.per_op.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:[", json::quote(name)));
            for (j, bd) in v.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&bd.to_json());
            }
            out.push(']');
        }
        out.push_str("}}");
        out
    }
}

/// Per-registry anatomy state: the open-frame stack, the most recent closed
/// breakdown (for audits), the conservation-violation counter, and the
/// tail-outlier capturer.
#[derive(Debug, Clone)]
pub struct Anatomy {
    frames: Vec<Frame>,
    last: Option<OpBreakdown>,
    violations: u64,
    outliers: OutlierCap,
}

impl Anatomy {
    /// Fresh anatomy state capturing the `k` slowest ops per name.
    pub fn new(k: usize) -> Self {
        Self { frames: Vec::new(), last: None, violations: 0, outliers: OutlierCap::new(k) }
    }

    /// Open a frame for the named op at `ts` under trace-ID `trace`.
    pub fn begin(&mut self, name: &str, ts: Nanos, trace: TraceId) {
        self.frames.push(Frame { name: name.to_string(), start: ts, trace, segs: [0; N_SEG] });
    }

    /// Charge `ns` of `kind` into every open frame. Returns `true` if at
    /// least one frame was charged (the caller then records the per-kind
    /// histogram sample).
    pub fn charge(&mut self, kind: SegKind, ns: Nanos) -> bool {
        if self.frames.is_empty() {
            return false;
        }
        for f in &mut self.frames {
            f.segs[kind.index()] += ns;
        }
        true
    }

    /// Close the innermost frame at `ts`: compute wall, audit the
    /// conservation identity, sweep the unattributed remainder into
    /// [`SegKind::Host`], and offer the breakdown to the outlier capturer.
    /// Returns the host remainder (for histogram recording), or `None` if
    /// no frame was open.
    pub fn end(&mut self, name: &str, ts: Nanos) -> Option<Nanos> {
        let mut f = self.frames.pop()?;
        debug_assert_eq!(f.name, name, "anatomy frame stack mismatch");
        let wall = ts.saturating_sub(f.start);
        let covered: Nanos = f.segs.iter().sum();
        if covered > wall {
            // Over-attribution: some layer charged outside its causal
            // window. Count it; the breakdown keeps the raw segments so
            // the bug is visible in the outlier export.
            self.violations += 1;
        }
        let host = wall.saturating_sub(covered);
        f.segs[SegKind::Host.index()] += host;
        let bd = OpBreakdown { name: f.name, start: f.start, wall, trace: f.trace, segs: f.segs };
        self.outliers.offer(&bd);
        self.last = Some(bd);
        Some(host)
    }

    /// Number of frames currently open.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Ops whose claimed segments exceeded their wall time (must be 0).
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// The most recently closed breakdown, if any.
    pub fn last(&self) -> Option<&OpBreakdown> {
        self.last.as_ref()
    }

    /// The tail-outlier capturer.
    pub fn outliers(&self) -> &OutlierCap {
        &self.outliers
    }

    /// Drop all recorded state (open frames, last breakdown, violation
    /// count, outliers); anatomy stays enabled.
    pub fn clear(&mut self) {
        self.frames.clear();
        self.last = None;
        self.violations = 0;
        self.outliers.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bd(name: &str, wall: Nanos) -> OpBreakdown {
        let mut segs = [0; N_SEG];
        segs[SegKind::Host.index()] = wall;
        OpBreakdown { name: name.to_string(), start: 0, wall, trace: 0, segs }
    }

    #[test]
    fn taxonomy_is_dense_and_stable() {
        assert_eq!(SegKind::ALL.len(), N_SEG);
        for (i, k) in SegKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i, "index must match ALL order");
            assert_eq!(k.hist_name(), format!("seg.{}", k.label()));
        }
    }

    #[test]
    fn frame_close_sweeps_remainder_and_conserves() {
        let mut a = Anatomy::new(4);
        a.begin("op", 100, 7);
        assert!(a.charge(SegKind::MediaRead, 30));
        assert!(a.charge(SegKind::NcqWait, 20));
        let host = a.end("op", 180).unwrap();
        assert_eq!(host, 30, "180-100 wall minus 50 attributed");
        let b = a.last().unwrap();
        assert_eq!(b.wall, 80);
        assert_eq!(b.trace, 7);
        assert_eq!(b.seg(SegKind::MediaRead), 30);
        assert_eq!(b.seg(SegKind::Host), 30);
        assert!(b.is_conserved());
        assert_eq!(a.violations(), 0);
    }

    #[test]
    fn nested_frames_each_conserve() {
        let mut a = Anatomy::new(4);
        a.begin("outer", 0, 1);
        a.charge(SegKind::WalFsync, 10);
        a.begin("inner", 50, 2);
        a.charge(SegKind::MediaProgram, 25); // lands in both frames
        a.end("inner", 80);
        let inner = a.last().unwrap().clone();
        a.end("outer", 200);
        let outer = a.last().unwrap();
        assert_eq!(inner.wall, 30);
        assert_eq!(inner.seg(SegKind::MediaProgram), 25);
        assert_eq!(inner.seg(SegKind::Host), 5);
        assert!(inner.is_conserved());
        assert_eq!(outer.wall, 200);
        assert_eq!(outer.seg(SegKind::MediaProgram), 25);
        assert_eq!(outer.seg(SegKind::WalFsync), 10);
        assert_eq!(outer.seg(SegKind::Host), 165);
        assert!(outer.is_conserved());
        assert_eq!(a.violations(), 0);
        assert_eq!(a.depth(), 0);
    }

    #[test]
    fn over_attribution_counts_a_violation() {
        let mut a = Anatomy::new(4);
        a.begin("op", 0, 0);
        a.charge(SegKind::Xfer, 500);
        a.end("op", 100); // wall 100 < claimed 500
        assert_eq!(a.violations(), 1);
        let b = a.last().unwrap();
        assert_eq!(b.seg(SegKind::Host), 0, "no negative remainder");
        assert!(!b.is_conserved());
    }

    #[test]
    fn charge_outside_any_frame_is_dropped() {
        let mut a = Anatomy::new(4);
        assert!(!a.charge(SegKind::MediaRead, 99));
        a.begin("op", 0, 0);
        a.end("op", 10);
        assert_eq!(a.last().unwrap().seg(SegKind::MediaRead), 0);
    }

    #[test]
    fn outlier_cap_keeps_top_k_sorted() {
        let mut cap = OutlierCap::new(3);
        for wall in [50, 10, 99, 5, 70, 99, 20] {
            cap.offer(&bd("engine.commit", wall));
        }
        cap.offer(&bd("doc.set", 1));
        let top: Vec<Nanos> = cap.for_op("engine.commit").iter().map(|b| b.wall).collect();
        assert_eq!(top, vec![99, 99, 70], "slowest first, duplicates kept");
        assert_eq!(cap.for_op("doc.set").len(), 1);
        assert_eq!(cap.for_op("missing").len(), 0);
        assert_eq!(cap.op_names(), vec!["doc.set".to_string(), "engine.commit".to_string()]);
    }

    #[test]
    fn outlier_json_shape() {
        let mut cap = OutlierCap::new(2);
        let mut b = bd("doc.set", 40);
        b.trace = 9;
        b.start = 5;
        b.segs = [0; N_SEG];
        b.segs[SegKind::FlushCache.index()] = 30;
        b.segs[SegKind::Host.index()] = 10;
        cap.offer(&b);
        let j = cap.to_json();
        assert_eq!(
            j,
            "{\"k\":2,\"ops\":{\"doc.set\":[{\"name\":\"doc.set\",\"trace\":9,\
             \"start\":5,\"wall\":40,\"segments\":{\"flush_cache\":30,\"host\":10}}]}}"
        );
    }

    #[test]
    fn breakdown_frac_and_total() {
        let mut b = bd("op", 200);
        b.segs = [0; N_SEG];
        b.segs[SegKind::FlushCache.index()] = 150;
        b.segs[SegKind::Host.index()] = 50;
        assert_eq!(b.total(), 200);
        assert!((b.frac(SegKind::FlushCache) - 0.75).abs() < 1e-12);
        let z = OpBreakdown { name: "z".into(), start: 0, wall: 0, trace: 0, segs: [0; N_SEG] };
        assert_eq!(z.frac(SegKind::Host), 0.0);
    }

    #[test]
    fn clear_resets_state_but_keeps_capacity() {
        let mut a = Anatomy::new(2);
        a.begin("op", 0, 0);
        a.charge(SegKind::Xfer, 10);
        a.end("op", 5); // violation
        a.begin("dangling", 0, 0);
        a.clear();
        assert_eq!(a.depth(), 0);
        assert_eq!(a.violations(), 0);
        assert!(a.last().is_none());
        assert!(a.outliers().op_names().is_empty());
        assert_eq!(a.outliers().k(), 2);
    }
}

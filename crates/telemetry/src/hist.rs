//! HDR-style log-bucketed latency histogram.
//!
//! Values are bucketed by power-of-two magnitude with [`SUB_BUCKETS`] linear
//! sub-buckets per magnitude, giving a worst-case relative quantile error of
//! `1/SUB_BUCKETS` (6.25%) while covering the full `u64` range in under a
//! thousand buckets. Values below [`SUB_BUCKETS`] are recorded exactly.

use simkit::Nanos;

use crate::json::JsonValue;

/// log2 of the number of linear sub-buckets per power-of-two magnitude.
const SUB_BITS: u32 = 4;
/// Number of linear sub-buckets per power-of-two magnitude.
const SUB_BUCKETS: u64 = 1 << SUB_BITS;
/// Total bucket count: values `0..16` exact, then 60 magnitudes × 16.
const NBUCKETS: usize = ((64 - SUB_BITS as usize) * SUB_BUCKETS as usize) + SUB_BUCKETS as usize;

/// Log-bucketed latency histogram with exact count/sum/min/max and
/// approximate (≤ 6.25% relative error) percentiles.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Index of the bucket holding `v`.
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // >= SUB_BITS
    let group = (exp - SUB_BITS + 1) as usize;
    let sub = ((v >> (exp - SUB_BITS)) & (SUB_BUCKETS - 1)) as usize;
    (group << SUB_BITS) + sub
}

/// Largest value that falls into bucket `idx` (inclusive upper bound).
fn bucket_high(idx: usize) -> u64 {
    if idx < SUB_BUCKETS as usize {
        return idx as u64;
    }
    let group = (idx >> SUB_BITS) as u32; // >= 1
    let exp = group - 1 + SUB_BITS;
    let sub = (idx as u64) & (SUB_BUCKETS - 1);
    let width = 1u64 << (exp - SUB_BITS);
    let low = (1u64 << exp) + sub * width;
    low + (width - 1)
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self { counts: vec![0; NBUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Record one sample.
    pub fn record(&mut self, v: Nanos) {
        self.record_n(v, 1);
    }

    /// Record `n` identical samples.
    pub fn record_n(&mut self, v: Nanos, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(v)] += n;
        self.count += n;
        self.sum += v as u128 * n as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Exact smallest sample (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value at percentile `p` in `[0, 100]`: the upper bound of the bucket
    /// containing the sample of that rank, clamped to the exact min/max.
    /// Monotone in `p`. Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= rank {
                return bucket_high(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.percentile(90.0)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.percentile(99.9)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(index, count)` pairs.
    pub fn buckets(&self) -> Vec<(usize, u64)> {
        self.counts.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| (i, c)).collect()
    }

    /// JSON object with summary fields plus the raw sparse bucket list, so
    /// the encoding is lossless.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str(&format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{},\"buckets\":[",
            self.count,
            self.sum,
            self.min(),
            self.max,
            self.p50(),
            self.p90(),
            self.p99(),
            self.p999(),
        ));
        for (i, (idx, c)) in self.buckets().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{idx},{c}]"));
        }
        out.push_str("]}");
        out
    }

    /// Rebuild from the JSON produced by [`Histogram::to_json`].
    pub(crate) fn from_json_value(v: &JsonValue) -> Result<Self, String> {
        let obj = v.as_object().ok_or("histogram: expected object")?;
        let mut h = Histogram::new();
        h.count = obj.get("count").and_then(|v| v.as_u64()).ok_or("histogram: count")?;
        h.sum = obj.get("sum").and_then(|v| v.as_u128()).ok_or("histogram: sum")?;
        let min = obj.get("min").and_then(|v| v.as_u64()).ok_or("histogram: min")?;
        h.min = if h.count == 0 { u64::MAX } else { min };
        h.max = obj.get("max").and_then(|v| v.as_u64()).ok_or("histogram: max")?;
        let buckets = obj.get("buckets").and_then(|v| v.as_array()).ok_or("histogram: buckets")?;
        for b in buckets {
            let pair = b.as_array().ok_or("histogram: bucket pair")?;
            if pair.len() != 2 {
                return Err("histogram: bucket pair arity".into());
            }
            let idx = pair[0].as_u64().ok_or("histogram: bucket idx")? as usize;
            let c = pair[1].as_u64().ok_or("histogram: bucket count")?;
            if idx >= NBUCKETS {
                return Err(format!("histogram: bucket idx {idx} out of range"));
            }
            h.counts[idx] = c;
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn small_values_are_exact() {
        // Values 0..16 land in dedicated unit buckets: percentiles exact.
        let mut h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        assert_eq!(h.percentile(100.0), 15);
        // Rank of p50 over 16 samples is the 8th = value 7.
        assert_eq!(h.p50(), 7);
        assert_eq!(h.percentile(0.0), 0);
    }

    #[test]
    fn boundary_values_zero_one_and_u64_max() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.sum(), u64::MAX as u128 + 1);
        // u64::MAX must land in the last bucket and come back intact.
        assert_eq!(bucket_index(u64::MAX), NBUCKETS - 1);
        assert_eq!(bucket_high(NBUCKETS - 1), u64::MAX);
        assert_eq!(h.percentile(100.0), u64::MAX);
    }

    #[test]
    fn bucket_bounds_contain_their_values() {
        // Every probe value must map to a bucket whose [low, high] range
        // contains it, and bucket highs must be monotone in index.
        let probes: Vec<u64> = (0..64)
            .flat_map(|e| {
                let b = 1u64 << e;
                [b.saturating_sub(1), b, b.saturating_add(1), b.saturating_add(b / 3)]
            })
            .chain([0, 1, 2, 15, 16, 17, 100, 1000, u64::MAX])
            .collect();
        for &v in &probes {
            let idx = bucket_index(v);
            assert!(
                bucket_high(idx) >= v,
                "value {v} above bucket {idx} high {}",
                bucket_high(idx)
            );
            if idx > 0 {
                assert!(bucket_high(idx - 1) < v, "value {v} not below bucket {}", idx - 1);
            }
        }
        for i in 1..NBUCKETS {
            assert!(bucket_high(i) > bucket_high(i - 1), "non-monotone at {i}");
        }
    }

    #[test]
    fn percentiles_are_monotone_and_bounded() {
        let mut h = Histogram::new();
        let mut x = 1u64;
        for i in 0..10_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            h.record((x >> 20) % (1 + i));
        }
        let mut prev = 0;
        for p in [0.0, 1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0] {
            let v = h.percentile(p);
            assert!(v >= prev, "p{p} = {v} < previous {prev}");
            assert!(v >= h.min() && v <= h.max());
            prev = v;
        }
    }

    #[test]
    fn percentile_relative_error_is_bounded() {
        let mut h = Histogram::new();
        // All mass at one large value: every percentile must return a value
        // within one sub-bucket (6.25%) of it.
        let v = 123_456_789u64;
        for _ in 0..1000 {
            h.record(v);
        }
        for p in [1.0, 50.0, 99.0, 99.9] {
            let got = h.percentile(p);
            // Clamped to exact max here since all samples equal.
            assert_eq!(got, v);
        }
        // Two distinct values in the same magnitude stay distinguishable
        // when a sub-bucket apart.
        let mut h2 = Histogram::new();
        h2.record_n(1 << 20, 99);
        h2.record_n((1 << 20) + (1 << 17), 1); // one sub-bucket up
        assert!(h2.percentile(99.95) > h2.percentile(10.0));
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut c = Histogram::new();
        for v in [3u64, 900, 17, 1 << 30] {
            a.record(v);
            c.record(v);
        }
        for v in [0u64, 5_000_000, u64::MAX] {
            b.record(v);
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.sum(), c.sum());
        assert_eq!(a.min(), c.min());
        assert_eq!(a.max(), c.max());
        for p in [10.0, 50.0, 90.0, 99.0] {
            assert_eq!(a.percentile(p), c.percentile(p));
        }
    }
}

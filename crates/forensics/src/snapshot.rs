//! Device postmortem and recovery snapshots.
//!
//! A power cut destroys exactly the state these structs capture: the dirty
//! write-cache slots and their owners, how far each channel had drained, how
//! big the emergency dump was against the capacitor budget, which mapping
//! entries the FTL had not yet journalled, and which NAND pages were shorn
//! mid-program. Devices fill a [`DevicePostmortem`] *inside* `power_cut`
//! (before any state is discarded) and a [`RecoverySnap`] inside `reboot`,
//! and expose both through the [`Forensic`] trait so the reconciler can
//! attribute every lost acknowledgement to the layer that dropped it.

use crate::ledger::Ledger;
use simkit::Nanos;

/// One dirty (or draining) write-cache slot at the instant of the cut.
#[derive(Clone, Debug)]
pub struct CacheSlotSnap {
    /// Logical page owning the slot.
    pub lpn: u64,
    /// Whether a drain to NAND was already in flight for this slot.
    pub draining: bool,
    /// Virtual time the host ack for this slot became (or becomes) visible.
    pub ackable_at: Nanos,
}

/// Outcome of the capacitor-powered emergency dump (§3.3).
#[derive(Clone, Copy, Debug)]
pub struct DumpOutcome {
    /// Bytes the dump had to persist (cache payload + mapping delta).
    pub bytes: u64,
    /// Capacitor energy budget expressed in writable bytes.
    pub budget_bytes: u64,
    /// Whether the dump fit the budget. When `false` the dump failed and the
    /// device degraded to volatile behaviour — a reportable forensic finding
    /// (it used to be a process abort).
    pub within_budget: bool,
}

/// Everything a device knew at the instant power was cut.
#[derive(Clone, Debug, Default)]
pub struct DevicePostmortem {
    /// Device family: `"ssd"` or `"hdd"`.
    pub device: String,
    /// Cache protection at the cut: `"capacitor-backed"`, `"volatile"`, or
    /// `"hdd-write-cache"`.
    pub protection: String,
    /// Virtual time of the cut (after clamping to the last host command).
    pub cut_at: Nanos,
    /// Dirty/draining cache slots with their owner LBAs, pre-discard.
    pub dirty_slots: Vec<CacheSlotSnap>,
    /// How many acked dirty slots were destroyed (volatile caches; 0 when
    /// the dump succeeded).
    pub discarded_dirty_slots: u64,
    /// Per-channel (plane) drain position: the virtual time each channel's
    /// in-flight program would have completed.
    pub channel_drain_positions: Vec<Nanos>,
    /// Emergency dump outcome; `None` on devices without a capacitor.
    pub dump: Option<DumpOutcome>,
    /// FTL mapping entries not yet journalled at the cut: `(lpn, old_slot)`
    /// pairs, `old_slot == None` for pages mapped for the first time.
    pub unpersisted_map: Vec<(u64, Option<u64>)>,
    /// How many of those entries were rolled back to pre-cut translations
    /// (volatile path / failed dump; 0 when the dump preserved them).
    pub rolled_back_map_entries: u64,
    /// NAND pages shorn by in-flight programs at the cut.
    pub nand_shorn_pages: u64,
    /// Host writes rolled back because their transfer had not completed
    /// (correct atomic behaviour, not a durability loss).
    pub aborted_inflight_writes: u64,
}

/// What recovery found when the device came back.
#[derive(Clone, Debug, Default)]
pub struct RecoverySnap {
    /// Device family: `"ssd"` or `"hdd"`.
    pub device: String,
    /// Virtual time the device was ready to serve the host again.
    pub ready_at: Nanos,
    /// Cache slots re-queued for drain from the emergency dump.
    pub requeued_slots: u64,
    /// Whether state was restored from an emergency dump (DuraSSD path).
    pub recovered_via_dump: bool,
    /// Whether recovery was a bare consistency scan with nothing to restore
    /// (volatile devices).
    pub scan_only: bool,
}

/// Durability-relevant device health counters, surfaced next to the stall
/// breakdown in the experiment binaries (`bench::ssd_health_line`).
#[derive(Clone, Copy, Debug, Default)]
pub struct DeviceHealth {
    /// Host reads that found a shorn/corrupt page after recovery.
    pub shorn_reads: u64,
    /// Emergency capacitor dumps performed.
    pub dumps: u64,
    /// Emergency dumps abandoned because they exceeded the capacitor budget.
    pub dump_over_budget: u64,
    /// Bytes written by the largest emergency dump.
    pub max_dump_bytes: u64,
    /// Recovery runs at reboot.
    pub recoveries: u64,
    /// Acked 4KB slots destroyed by power cuts (zero on DuraSSD).
    pub lost_acked_slots: u64,
    /// Logical pages received from the host (WAF denominator).
    pub host_pages_written: u64,
    /// Logical-page-sized media writes (WAF numerator: NAND programs for
    /// SSDs, platter writes for HDDs).
    pub media_pages_written: u64,
    /// Host page overwrites coalesced in the write cache — media programs
    /// the cache absorbed.
    pub absorbed_overwrites: u64,
    /// Wear-leveling spread: `max - min` per-block erase count.
    pub wear_spread: u32,
}

/// Devices that can testify about a power cut. Implemented by the SSD and
/// HDD models; the campaign driver bounds its device type parameters on
/// `BlockDevice + Forensic` to collect snapshots between `crash` and
/// `recover`.
pub trait Forensic {
    /// The postmortem captured by the most recent `power_cut`, if any.
    fn postmortem(&self) -> Option<&DevicePostmortem>;
    /// Take ownership of the postmortem (clears the stored copy).
    fn take_postmortem(&mut self) -> Option<DevicePostmortem>;
    /// The snapshot captured by the most recent `reboot`, if any.
    fn recovery_snap(&self) -> Option<&RecoverySnap>;
    /// Attach a durability ledger so the device can log ack evidence
    /// (atomic-write acks, FLUSH CACHE completions). Default: devices
    /// without device-level evidence ignore the ledger.
    fn attach_ledger(&mut self, _ledger: Ledger) {}
    /// Durability-relevant health counters, if the device tracks them.
    fn health(&self) -> Option<DeviceHealth> {
        None
    }
}

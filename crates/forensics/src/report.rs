//! Campaign report: the machine-readable artifact of a crash campaign.
//!
//! One [`CampaignReport`] aggregates the [`CutReport`]s of every
//! device × configuration × cut-point trial into a single self-describing
//! JSON document (schema tag [`SCHEMA`]), written by `crashmatrix --json`.
//! Structural validation of the emitted document lives with the other
//! report gates in `bench::schema` (`check_forensics_report`), which
//! `crashmatrix --check` runs in-process.

use crate::reconcile::CutReport;
use crate::snapshot::DevicePostmortem;

/// Schema tag stamped into every report; bump on incompatible changes.
pub const SCHEMA: &str = "durassd.forensics.v1";

/// How many dirty-slot LPNs / mapping entries a postmortem lists verbatim in
/// the JSON before switching to counts only (keeps reports bounded).
const SNAPSHOT_LIST_CAP: usize = 64;

/// The aggregated result of a seeded crash campaign.
#[derive(Clone, Debug, Default)]
pub struct CampaignReport {
    /// RNG seed that chose the cut points.
    pub seed: u64,
    /// Workload size (units attempted per trial).
    pub keys: u64,
    /// Cut points per configuration.
    pub cuts: u64,
    /// One row per device × configuration × cut.
    pub rows: Vec<CutReport>,
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn postmortem_json(p: &DevicePostmortem) -> String {
    let mut o = String::from("{");
    o.push_str(&format!("\"device\":{},", esc(&p.device)));
    o.push_str(&format!("\"protection\":{},", esc(&p.protection)));
    o.push_str(&format!("\"cut_at\":{},", p.cut_at));
    o.push_str(&format!("\"dirty_slots\":{},", p.dirty_slots.len()));
    let lpns: Vec<String> = p
        .dirty_slots
        .iter()
        .take(SNAPSHOT_LIST_CAP)
        .map(|s| {
            format!(
                "{{\"lpn\":{},\"draining\":{},\"ackable_at\":{}}}",
                s.lpn, s.draining, s.ackable_at
            )
        })
        .collect();
    o.push_str(&format!("\"dirty_slot_sample\":[{}],", lpns.join(",")));
    o.push_str(&format!("\"discarded_dirty_slots\":{},", p.discarded_dirty_slots));
    let drains: Vec<String> = p.channel_drain_positions.iter().map(|t| t.to_string()).collect();
    o.push_str(&format!("\"channel_drain_positions\":[{}],", drains.join(",")));
    match &p.dump {
        Some(d) => o.push_str(&format!(
            "\"dump\":{{\"bytes\":{},\"budget_bytes\":{},\"within_budget\":{}}},",
            d.bytes, d.budget_bytes, d.within_budget
        )),
        None => o.push_str("\"dump\":null,"),
    }
    o.push_str(&format!("\"unpersisted_map_entries\":{},", p.unpersisted_map.len()));
    let umap: Vec<String> = p
        .unpersisted_map
        .iter()
        .take(SNAPSHOT_LIST_CAP)
        .map(|(lpn, old)| match old {
            Some(s) => format!("{{\"lpn\":{lpn},\"old_slot\":{s}}}"),
            None => format!("{{\"lpn\":{lpn},\"old_slot\":null}}"),
        })
        .collect();
    o.push_str(&format!("\"unpersisted_map_sample\":[{}],", umap.join(",")));
    o.push_str(&format!("\"rolled_back_map_entries\":{},", p.rolled_back_map_entries));
    o.push_str(&format!("\"nand_shorn_pages\":{},", p.nand_shorn_pages));
    o.push_str(&format!("\"aborted_inflight_writes\":{}", p.aborted_inflight_writes));
    o.push('}');
    o
}

fn row_json(r: &CutReport) -> String {
    let mut o = String::from("{");
    o.push_str(&format!("\"label\":{},", esc(&r.label)));
    o.push_str(&format!("\"cut_at_op\":{},", r.cut_at_op));
    o.push_str(&format!("\"cut_phase\":{},", esc(&r.cut_phase)));
    o.push_str(&format!("\"cut_at_ns\":{},", r.cut_at_ns));
    o.push_str(&format!(
        "\"tally\":{{\"survived\":{},\"acked_lost\":{},\"torn\":{},\"stale\":{},\"never_acked\":{}}},",
        r.tally.survived, r.tally.acked_lost, r.tally.torn, r.tally.stale, r.tally.never_acked
    ));
    o.push_str(&format!("\"durable\":{},", r.durable));
    o.push_str(&format!("\"verdict\":{},", esc(&r.verdict)));
    let losses: Vec<String> = r
        .losses
        .iter()
        .map(|f| {
            let mut l = String::from("{");
            l.push_str(&format!("\"unit\":{},", esc(&f.unit)));
            l.push_str(&format!("\"kind\":{},", esc(f.kind.as_str())));
            l.push_str(&format!("\"classification\":{},", esc(f.classification.as_str())));
            match f.contract {
                Some(c) => l.push_str(&format!("\"contract\":{},", esc(c.as_str()))),
                None => l.push_str("\"contract\":null,"),
            }
            match f.acked_at {
                Some(t) => l.push_str(&format!("\"acked_at\":{t},")),
                None => l.push_str("\"acked_at\":null,"),
            }
            let layer = f.layer.map(|x| x.as_str()).unwrap_or("unattributed");
            l.push_str(&format!("\"layer\":{},", esc(layer)));
            l.push_str(&format!("\"evidence\":{}", esc(&f.evidence)));
            l.push('}');
            l
        })
        .collect();
    o.push_str(&format!("\"losses\":[{}],", losses.join(",")));
    let pms: Vec<String> = r.postmortems.iter().map(postmortem_json).collect();
    o.push_str(&format!("\"postmortems\":[{}],", pms.join(",")));
    let recs: Vec<String> = r
        .recoveries
        .iter()
        .map(|s| {
            format!(
                "{{\"device\":{},\"ready_at\":{},\"requeued_slots\":{},\"recovered_via_dump\":{},\"scan_only\":{}}}",
                esc(&s.device), s.ready_at, s.requeued_slots, s.recovered_via_dump, s.scan_only
            )
        })
        .collect();
    o.push_str(&format!("\"recoveries\":[{}],", recs.join(",")));
    let ev: Vec<String> = r
        .ack_evidence
        .iter()
        .map(|(k, row)| {
            let contract = row.last_contract.map(|c| esc(c.as_str())).unwrap_or("null".into());
            format!(
                "{}:{{\"count\":{},\"first_at\":{},\"last_at\":{},\"last_contract\":{},\"last_detail\":{}}}",
                esc(k.as_str()), row.count, row.first_at, row.last_at, contract, row.last_detail
            )
        })
        .collect();
    o.push_str(&format!("\"ack_evidence\":{{{}}}", ev.join(",")));
    o.push('}');
    o
}

impl CampaignReport {
    /// Serialize to the `durassd.forensics.v1` JSON document.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self.rows.iter().map(row_json).collect();
        format!(
            "{{\"schema\":{},\"seed\":{},\"keys\":{},\"cuts\":{},\"rows\":[{}]}}",
            esc(SCHEMA),
            self.seed,
            self.keys,
            self.cuts,
            rows.join(",")
        )
    }

    /// Total acked-lost units across rows whose label contains `needle`.
    pub fn acked_lost_for(&self, needle: &str) -> u64 {
        self.rows.iter().filter(|r| r.label.contains(needle)).map(|r| r.tally.acked_lost).sum()
    }

    /// One-line summary per configuration label (rows share labels across
    /// cut points): `label → worst verdict`.
    pub fn summary_lines(&self) -> Vec<String> {
        let mut labels: Vec<&str> = Vec::new();
        for r in &self.rows {
            if !labels.contains(&r.label.as_str()) {
                labels.push(&r.label);
            }
        }
        labels
            .into_iter()
            .map(|l| {
                let rows: Vec<&CutReport> = self.rows.iter().filter(|r| r.label == l).collect();
                let lost: u64 = rows.iter().map(|r| r.tally.acked_lost).sum();
                let torn: u64 = rows.iter().map(|r| r.tally.torn).sum();
                let stale: u64 = rows.iter().map(|r| r.tally.stale).sum();
                let verdict = if lost + torn + stale == 0 {
                    format!("SAFE across {} cut(s)", rows.len())
                } else {
                    format!(
                        "{lost} acked-lost, {torn} torn, {stale} stale across {} cut(s)",
                        rows.len()
                    )
                };
                format!("{l:<34} {verdict}")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::{AckContract, Ledger, UnitKind};
    use crate::reconcile::{reconcile, Probe, ProbeResult};
    use crate::snapshot::{CacheSlotSnap, DumpOutcome, RecoverySnap};

    fn sample_report() -> CampaignReport {
        let l = Ledger::new(AckContract::VolatileAck);
        l.pend(UnitKind::RelstoreCommit, b"k0", Ledger::digest(b"v0"), 5);
        l.pend(UnitKind::RelstoreCommit, b"k1", Ledger::digest(b"v1"), 6);
        l.ack_all_pending(9, false);
        l.pend(UnitKind::RelstoreCommit, b"k2", Ledger::digest(b"v2"), 12);
        let pm = DevicePostmortem {
            device: "ssd".into(),
            protection: "volatile".into(),
            cut_at: 20,
            dirty_slots: vec![CacheSlotSnap { lpn: 3, draining: true, ackable_at: 8 }],
            discarded_dirty_slots: 1,
            channel_drain_positions: vec![0, 15],
            dump: Some(DumpOutcome { bytes: 4096, budget_bytes: 8192, within_budget: true }),
            unpersisted_map: vec![(3, None), (4, Some(9))],
            rolled_back_map_entries: 2,
            nand_shorn_pages: 1,
            aborted_inflight_writes: 1,
        };
        let rec = RecoverySnap {
            device: "ssd".into(),
            ready_at: 500,
            requeued_slots: 0,
            recovered_via_dump: false,
            scan_only: true,
        };
        let probes = vec![
            Probe::new(b"k0", ProbeResult::Value(Ledger::digest(b"v0"))),
            Probe::new(b"k1", ProbeResult::Missing),
            Probe::new(b"k2", ProbeResult::Missing),
        ];
        let row = reconcile(
            "engine SSD-A OFF/OFF",
            2,
            "after-commit",
            20,
            &l,
            &probes,
            vec![pm],
            vec![rec],
        );
        CampaignReport { seed: 7, keys: 3, cuts: 1, rows: vec![row] }
    }

    #[test]
    fn report_json_round_trips() {
        let rep = sample_report();
        let doc = rep.to_json();
        let v = telemetry::parse_json(&doc).unwrap();
        let o = v.as_object().unwrap();
        assert_eq!(o["schema"].as_str(), Some(SCHEMA));
        let row = o["rows"].as_array().unwrap()[0].as_object().unwrap();
        assert_eq!(row["tally"].as_object().unwrap()["acked_lost"].as_u64(), Some(1));
        assert_eq!(row["tally"].as_object().unwrap()["never_acked"].as_u64(), Some(1));
        let losses = row["losses"].as_array().unwrap();
        assert_eq!(losses.len(), 2);
        let first = losses[0].as_object().unwrap();
        assert_eq!(first["classification"].as_str(), Some("acked-lost"));
        assert_eq!(first["layer"].as_str(), Some("cache-slot"));
        assert_eq!(first["contract"].as_str(), Some("volatile"));
        let pm = row["postmortems"].as_array().unwrap()[0].as_object().unwrap();
        assert_eq!(pm["dirty_slots"].as_u64(), Some(1));
        assert_eq!(
            pm["dump"].as_object().unwrap()["within_budget"],
            telemetry::JsonValue::Bool(true)
        );
        assert_eq!(pm["rolled_back_map_entries"].as_u64(), Some(2));
        assert_eq!(rep.acked_lost_for("SSD-A"), 1);
        assert_eq!(rep.acked_lost_for("DuraSSD"), 0);
        assert_eq!(rep.summary_lines().len(), 1);
    }
}

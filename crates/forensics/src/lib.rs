//! Durability ledger and power-cut forensics for the DuraSSD reproduction.
//!
//! The paper's central claim (§3.2–§3.4, §5) is about *which acknowledged
//! writes survive a power cut*. Aggregate `lost/corrupt` counters can say
//! *that* a configuration loses data; this crate exists to say *which* write
//! was lost, *where* in the stack the durability contract was broken, and
//! *why* DuraSSD's capacitor dump saved the equivalent write. Three pieces:
//!
//! * [`Ledger`] — a shadow record of every durably-acknowledged unit
//!   (relational commits, document updates, and the WAL-flush / device-flush
//!   acknowledgements that justify them), tagged with its
//!   [`AckContract`] and virtual ack timestamp.
//! * [`DevicePostmortem`] / [`RecoverySnap`] — snapshots captured *inside*
//!   `power_cut` and `reboot` by devices implementing [`Forensic`]: dirty
//!   cache slots with owner LBAs, per-channel drain positions, the emergency
//!   dump outcome against the capacitor budget, unpersisted FTL mapping
//!   entries, and shorn NAND pages.
//! * [`reconcile`] — classifies every probed unit
//!   (`survived | acked-lost | torn | stale | never-acked`), attributes each
//!   loss to the layer that dropped it, and rolls trials up into a
//!   [`CampaignReport`] with a per-configuration verdict (the CI gate over
//!   the emitted JSON lives in `bench::schema::check_forensics_report`).

mod ledger;
mod reconcile;
mod report;
mod snapshot;

pub use ledger::{AckContract, EvidenceKind, EvidenceRow, Ledger, LedgerEntry, UnitKind};
pub use reconcile::{
    reconcile, Classification, CutReport, LossLayer, Probe, ProbeResult, Tally, UnitFinding,
};
pub use report::{CampaignReport, SCHEMA};
pub use snapshot::{
    CacheSlotSnap, DeviceHealth, DevicePostmortem, DumpOutcome, Forensic, RecoverySnap,
};

//! The reconciler: ledger × post-recovery probes × postmortems → findings.
//!
//! After recovery the campaign driver re-reads every unit the workload
//! attempted and hands the observed digests here. Classification is a pure
//! function of the ledger's version history for the unit:
//!
//! | probe result              | vs. ledger                         | class |
//! |---------------------------|------------------------------------|-------|
//! | value == latest acked     |                                    | `survived` |
//! | value == older acked      | newer acked version vanished       | `stale` |
//! | value == pending (unacked)| write survived without an ack      | `survived` |
//! | value matches nothing     | content from no recorded version   | `torn` |
//! | read error                | page shorn / unreadable            | `torn` |
//! | missing, unit was acked   | acknowledged write lost            | `acked-lost` |
//! | missing, never acked      | loss the contract permits          | `never-acked` |
//!
//! Losses are then attributed to the layer that dropped them using the
//! device postmortems as evidence (dirty cache slots discarded → cache
//! slot; shorn NAND pages → channel queue; rolled-back mapping entries →
//! lazy FTL map; HDD cache pages cleared → HDD write cache).

use simkit::Nanos;

use crate::ledger::{AckContract, EvidenceKind, EvidenceRow, Ledger, UnitKind};
use crate::snapshot::{DevicePostmortem, RecoverySnap};

/// What the post-recovery probe observed for one unit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProbeResult {
    /// A value was read back; this is its [`Ledger::digest`].
    Value(u64),
    /// The unit is gone (key missing / tombstoned away).
    Missing,
    /// The read failed structurally (shorn page, checksum mismatch).
    ReadError(String),
}

/// One probed unit.
#[derive(Clone, Debug)]
pub struct Probe {
    /// Printable unit identifier — must match [`Ledger::unit_name`] of the
    /// key used when the unit was recorded.
    pub unit: String,
    /// What recovery handed back.
    pub result: ProbeResult,
}

impl Probe {
    /// Convenience constructor from the raw key bytes.
    pub fn new(key: &[u8], result: ProbeResult) -> Self {
        Probe { unit: Ledger::unit_name(key), result }
    }
}

/// Final classification of one unit after reconciliation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Classification {
    /// The latest acknowledged version (or an un-acked write) was read back.
    Survived,
    /// An acknowledged unit is gone — the durability contract was broken.
    AckedLost,
    /// Content matching no recorded version, or a structural read failure.
    Torn,
    /// An *older* acknowledged version was read back; the newer ack vanished.
    Stale,
    /// A never-acknowledged intent is gone — a loss the contract permits.
    NeverAcked,
}

impl Classification {
    /// Stable string used in the forensic JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Classification::Survived => "survived",
            Classification::AckedLost => "acked-lost",
            Classification::Torn => "torn",
            Classification::Stale => "stale",
            Classification::NeverAcked => "never-acked",
        }
    }
}

/// The layer a loss is attributed to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LossLayer {
    /// An acknowledged dirty slot discarded from a volatile device cache.
    CacheSlot,
    /// An in-flight channel program shorn mid-page at the cut.
    ChannelQueue,
    /// A mapping entry the lazy FTL had not journalled; rollback re-exposed
    /// the pre-cut translation.
    LazyFtlMap,
    /// A page cleared from the HDD's volatile write cache.
    HddWriteCache,
    /// The write never left the host (WAL buffer / un-synced frame) when
    /// power failed.
    HostInFlight,
    /// No postmortem evidence points at a specific layer.
    Unattributed,
}

impl LossLayer {
    /// Stable string used in the forensic JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            LossLayer::CacheSlot => "cache-slot",
            LossLayer::ChannelQueue => "channel-queue",
            LossLayer::LazyFtlMap => "lazy-ftl-map",
            LossLayer::HddWriteCache => "hdd-write-cache",
            LossLayer::HostInFlight => "host-in-flight",
            LossLayer::Unattributed => "unattributed",
        }
    }
}

/// One reconciled unit: classification plus, for losses, the attribution.
#[derive(Clone, Debug)]
pub struct UnitFinding {
    /// Printable unit identifier.
    pub unit: String,
    /// What kind of unit it was.
    pub kind: UnitKind,
    /// The verdict for this unit.
    pub classification: Classification,
    /// Contract behind the (latest) acknowledgement, if any was given.
    pub contract: Option<AckContract>,
    /// When the latest acknowledgement was given, if any.
    pub acked_at: Option<Nanos>,
    /// For losses: the layer that dropped the unit.
    pub layer: Option<LossLayer>,
    /// Human-readable justification citing the postmortem evidence.
    pub evidence: String,
}

/// Counts per classification.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Tally {
    pub survived: u64,
    pub acked_lost: u64,
    pub torn: u64,
    pub stale: u64,
    pub never_acked: u64,
}

impl Tally {
    /// Whether every *acknowledged* unit kept its promise.
    pub fn durable(&self) -> bool {
        self.acked_lost == 0 && self.torn == 0 && self.stale == 0
    }
}

/// The full forensic result of one cut: tallies, loss rows, snapshots.
#[derive(Clone, Debug)]
pub struct CutReport {
    /// Configuration label, e.g. `"engine DuraSSD OFF/OFF"`.
    pub label: String,
    /// Operation index at which power was cut.
    pub cut_at_op: u64,
    /// `"after-put"`, `"after-commit"`, or `"end"`.
    pub cut_phase: String,
    /// Virtual time of the cut.
    pub cut_at_ns: Nanos,
    /// Counts per classification.
    pub tally: Tally,
    /// Every non-`survived` unit, with layer attribution and evidence.
    pub losses: Vec<UnitFinding>,
    /// Device postmortems captured inside `power_cut`.
    pub postmortems: Vec<DevicePostmortem>,
    /// Recovery snapshots captured inside `reboot`.
    pub recoveries: Vec<RecoverySnap>,
    /// Aggregate lower-level acknowledgement evidence from the ledger.
    pub ack_evidence: Vec<(EvidenceKind, EvidenceRow)>,
    /// Whether every acknowledged unit survived.
    pub durable: bool,
    /// One-line human verdict.
    pub verdict: String,
}

/// Per-unit view assembled from the ledger.
struct UnitView {
    kind: UnitKind,
    /// Acked versions in ack order: (digest, acked_at, contract).
    acked: Vec<(u64, Nanos, AckContract)>,
    /// Digests of never-acked intents.
    pending: Vec<u64>,
}

fn attribute(class: Classification, acked: bool, pms: &[DevicePostmortem]) -> (LossLayer, String) {
    let shorn: u64 = pms.iter().map(|p| p.nand_shorn_pages).sum();
    let rolled: u64 = pms.iter().map(|p| p.rolled_back_map_entries).sum();
    let ssd_discarded: u64 =
        pms.iter().filter(|p| p.device == "ssd").map(|p| p.discarded_dirty_slots).sum();
    let hdd_discarded: u64 =
        pms.iter().filter(|p| p.device == "hdd").map(|p| p.discarded_dirty_slots).sum();
    match class {
        Classification::NeverAcked => (
            LossLayer::HostInFlight,
            "no acknowledgement recorded before the cut — loss permitted by contract".into(),
        ),
        Classification::Torn if shorn > 0 => (
            LossLayer::ChannelQueue,
            format!("{shorn} NAND page(s) shorn by in-flight channel programs at the cut"),
        ),
        Classification::Torn => {
            (LossLayer::Unattributed, "value matches no recorded version".into())
        }
        Classification::Stale if rolled > 0 => (
            LossLayer::LazyFtlMap,
            format!("{rolled} unpersisted mapping entr(ies) rolled back to pre-cut translations"),
        ),
        Classification::Stale if ssd_discarded > 0 => (
            LossLayer::CacheSlot,
            format!("{ssd_discarded} acked dirty slot(s) discarded from the volatile cache"),
        ),
        Classification::Stale => {
            (LossLayer::Unattributed, "an older acknowledged version reappeared".into())
        }
        // AckedLost (and any other loss reaching here):
        _ if hdd_discarded > 0 && ssd_discarded == 0 => (
            LossLayer::HddWriteCache,
            format!("{hdd_discarded} acked page(s) cleared from the HDD write cache"),
        ),
        _ if ssd_discarded > 0 => (
            LossLayer::CacheSlot,
            format!("{ssd_discarded} acked dirty slot(s) discarded from the volatile cache"),
        ),
        _ if rolled > 0 => (
            LossLayer::LazyFtlMap,
            format!("{rolled} unpersisted mapping entr(ies) rolled back at the cut"),
        ),
        _ => (
            LossLayer::Unattributed,
            if acked {
                "acknowledged unit missing with no device-side evidence".into()
            } else {
                "unit missing with no device-side evidence".into()
            },
        ),
    }
}

/// Reconcile one cut: classify every probed unit against the ledger and
/// attribute losses using the device postmortems.
#[allow(clippy::too_many_arguments)]
pub fn reconcile(
    label: &str,
    cut_at_op: u64,
    cut_phase: &str,
    cut_at_ns: Nanos,
    ledger: &Ledger,
    probes: &[Probe],
    postmortems: Vec<DevicePostmortem>,
    recoveries: Vec<RecoverySnap>,
) -> CutReport {
    use std::collections::BTreeMap;
    let mut units: BTreeMap<String, UnitView> = BTreeMap::new();
    for e in ledger.entries() {
        let v = units.entry(e.unit.clone()).or_insert(UnitView {
            kind: e.kind,
            acked: Vec::new(),
            pending: Vec::new(),
        });
        match (e.acked_at, e.contract) {
            (Some(t), Some(c)) => v.acked.push((e.digest, t, c)),
            _ => v.pending.push(e.digest),
        }
    }

    let mut tally = Tally::default();
    let mut losses = Vec::new();
    for p in probes {
        let Some(v) = units.get(&p.unit) else { continue };
        let latest = v.acked.last().copied();
        let (class, note) = match &p.result {
            ProbeResult::Value(d) if latest.map(|(ld, _, _)| ld == *d).unwrap_or(false) => {
                (Classification::Survived, String::new())
            }
            ProbeResult::Value(d) if v.acked.iter().any(|(ad, _, _)| ad == d) => {
                (Classification::Stale, String::new())
            }
            ProbeResult::Value(d) if v.pending.contains(d) => {
                (Classification::Survived, "unacknowledged write survived".to_string())
            }
            ProbeResult::Value(_) => (Classification::Torn, String::new()),
            ProbeResult::ReadError(e) => (Classification::Torn, format!("read error: {e}")),
            ProbeResult::Missing if latest.is_some() => (Classification::AckedLost, String::new()),
            ProbeResult::Missing => (Classification::NeverAcked, String::new()),
        };
        match class {
            Classification::Survived => tally.survived += 1,
            Classification::AckedLost => tally.acked_lost += 1,
            Classification::Torn => tally.torn += 1,
            Classification::Stale => tally.stale += 1,
            Classification::NeverAcked => tally.never_acked += 1,
        }
        if class != Classification::Survived {
            let (layer, mut evidence) = attribute(class, latest.is_some(), &postmortems);
            if !note.is_empty() {
                evidence = format!("{note}; {evidence}");
            }
            losses.push(UnitFinding {
                unit: p.unit.clone(),
                kind: v.kind,
                classification: class,
                contract: latest.map(|(_, _, c)| c),
                acked_at: latest.map(|(_, t, _)| t),
                layer: Some(layer),
                evidence,
            });
        }
    }

    let durable = tally.durable();
    let verdict = if durable {
        format!("SAFE — all {} acknowledged unit(s) recovered", tally.survived)
    } else {
        format!(
            "ACKED DATA LOSS — {} acked-lost, {} torn, {} stale of {} probed unit(s)",
            tally.acked_lost,
            tally.torn,
            tally.stale,
            probes.len()
        )
    };
    CutReport {
        label: label.to_string(),
        cut_at_op,
        cut_phase: cut_phase.to_string(),
        cut_at_ns,
        tally,
        losses,
        postmortems,
        recoveries,
        ack_evidence: ledger.evidence_rows(),
        durable,
        verdict,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::CacheSlotSnap;

    fn ssd_pm(discarded: u64, shorn: u64, rolled: u64) -> DevicePostmortem {
        DevicePostmortem {
            device: "ssd".into(),
            protection: "volatile".into(),
            cut_at: 1_000,
            dirty_slots: (0..discarded)
                .map(|i| CacheSlotSnap { lpn: i, draining: false, ackable_at: 10 })
                .collect(),
            discarded_dirty_slots: discarded,
            channel_drain_positions: vec![0; 4],
            dump: None,
            unpersisted_map: (0..rolled).map(|i| (i, None)).collect(),
            rolled_back_map_entries: rolled,
            nand_shorn_pages: shorn,
            aborted_inflight_writes: 0,
        }
    }

    fn acked_ledger(keys: &[&[u8]], vals: &[&[u8]]) -> Ledger {
        let l = Ledger::new(AckContract::VolatileAck);
        for (k, v) in keys.iter().zip(vals) {
            l.pend(UnitKind::RelstoreCommit, k, Ledger::digest(v), 10);
        }
        l.ack_all_pending(20, false);
        l
    }

    #[test]
    fn survived_and_acked_lost_with_cache_attribution() {
        let l = acked_ledger(&[b"a", b"b"], &[b"va", b"vb"]);
        let probes = vec![
            Probe::new(b"a", ProbeResult::Value(Ledger::digest(b"va"))),
            Probe::new(b"b", ProbeResult::Missing),
        ];
        let r = reconcile("t", 2, "end", 1_000, &l, &probes, vec![ssd_pm(1, 0, 0)], vec![]);
        assert_eq!(r.tally, Tally { survived: 1, acked_lost: 1, ..Default::default() });
        assert!(!r.durable);
        assert_eq!(r.losses.len(), 1);
        assert_eq!(r.losses[0].classification, Classification::AckedLost);
        assert_eq!(r.losses[0].layer, Some(LossLayer::CacheSlot));
        assert_eq!(r.losses[0].contract, Some(AckContract::VolatileAck));
        assert!(r.losses[0].evidence.contains("volatile cache"), "{}", r.losses[0].evidence);
    }

    #[test]
    fn torn_from_read_error_attributes_channel_queue() {
        let l = acked_ledger(&[b"a"], &[b"va"]);
        let probes = vec![Probe::new(b"a", ProbeResult::ReadError("shorn page".into()))];
        let r = reconcile("t", 1, "end", 1_000, &l, &probes, vec![ssd_pm(0, 2, 0)], vec![]);
        assert_eq!(r.tally.torn, 1);
        assert_eq!(r.losses[0].layer, Some(LossLayer::ChannelQueue));
        assert!(r.losses[0].evidence.contains("shorn"), "{}", r.losses[0].evidence);
        // Torn also covers "value matches no recorded version".
        let probes = vec![Probe::new(b"a", ProbeResult::Value(12345))];
        let r = reconcile("t", 1, "end", 1_000, &l, &probes, vec![ssd_pm(0, 0, 0)], vec![]);
        assert_eq!(r.tally.torn, 1);
        assert_eq!(r.losses[0].layer, Some(LossLayer::Unattributed));
    }

    #[test]
    fn stale_attributes_lazy_ftl_map() {
        let l = Ledger::new(AckContract::VolatileAck);
        l.pend(UnitKind::RelstoreCommit, b"a", Ledger::digest(b"v1"), 10);
        l.ack_all_pending(20, false);
        l.pend(UnitKind::RelstoreCommit, b"a", Ledger::digest(b"v2"), 30);
        l.ack_all_pending(40, false);
        // Recovery handed back v1: the v2 ack vanished.
        let probes = vec![Probe::new(b"a", ProbeResult::Value(Ledger::digest(b"v1")))];
        let r = reconcile("t", 2, "end", 1_000, &l, &probes, vec![ssd_pm(0, 0, 3)], vec![]);
        assert_eq!(r.tally.stale, 1);
        assert_eq!(r.losses[0].classification, Classification::Stale);
        assert_eq!(r.losses[0].layer, Some(LossLayer::LazyFtlMap));
        assert!(r.losses[0].evidence.contains("unpersisted mapping"), "{}", r.losses[0].evidence);
    }

    #[test]
    fn never_acked_is_expected_loss_not_violation() {
        let l = Ledger::new(AckContract::DurableCacheAck);
        l.pend(UnitKind::RelstoreCommit, b"a", Ledger::digest(b"v"), 10);
        // No ack before the cut.
        let probes = vec![Probe::new(b"a", ProbeResult::Missing)];
        let r = reconcile("t", 1, "after-put", 1_000, &l, &probes, vec![], vec![]);
        assert_eq!(r.tally.never_acked, 1);
        assert!(r.durable, "never-acked does not break durability");
        assert_eq!(r.losses[0].layer, Some(LossLayer::HostInFlight));
        // An unacked write that *survived* is counted as survived.
        let probes = vec![Probe::new(b"a", ProbeResult::Value(Ledger::digest(b"v")))];
        let r = reconcile("t", 1, "after-put", 1_000, &l, &probes, vec![], vec![]);
        assert_eq!(r.tally.survived, 1);
    }

    #[test]
    fn hdd_losses_attribute_write_cache() {
        let l = acked_ledger(&[b"a"], &[b"va"]);
        let pm = DevicePostmortem {
            device: "hdd".into(),
            protection: "hdd-write-cache".into(),
            discarded_dirty_slots: 5,
            ..Default::default()
        };
        let probes = vec![Probe::new(b"a", ProbeResult::Missing)];
        let r = reconcile("t", 1, "end", 1_000, &l, &probes, vec![pm], vec![]);
        assert_eq!(r.losses[0].layer, Some(LossLayer::HddWriteCache));
    }

    #[test]
    fn probe_of_unrecorded_unit_is_ignored() {
        let l = acked_ledger(&[b"a"], &[b"va"]);
        let probes = vec![Probe::new(b"zz", ProbeResult::Missing)];
        let r = reconcile("t", 1, "end", 1_000, &l, &probes, vec![], vec![]);
        assert_eq!(r.tally, Tally::default());
    }
}

//! The durability ledger: a shadow record of every durably-acknowledged unit.
//!
//! Storage layers do not *know* whether their acknowledgements will survive a
//! power cut — that is exactly the gap the paper exploits (§3.2: an fsync ack
//! from a volatile write cache is a promise the device cannot keep). The
//! ledger records, for every acknowledged unit, *which contract* backed the
//! acknowledgement and *when* (virtual time) it was given, so that after a
//! crash the reconciler can say precisely which promises were broken and by
//! which layer.
//!
//! Two granularities are recorded:
//!
//! * **App-level units** ([`LedgerEntry`]) — one entry per relational commit
//!   record or document update, carrying a value digest so the post-recovery
//!   probe can distinguish `survived` from `stale` from `torn`.
//! * **Evidence rows** ([`EvidenceRow`]) — aggregate counters for the
//!   lower-level acknowledgements that *justify* the app-level acks (WAL
//!   flush completions, device FLUSH CACHE acks, per-command atomic-write
//!   acks). These are unbounded in number, so only `{count, first, last}`
//!   is kept per kind.
//!
//! The ledger is a shared `Rc<RefCell<..>>` handle (the same pattern as
//! [`telemetry::Telemetry`]): the campaign driver creates one per trial,
//! attaches it to the engine / document store (which forward it to the WAL
//! and volumes), and reads it back after recovery. When no ledger is
//! attached, every recording call is skipped — the hot paths stay free.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use simkit::Nanos;

/// The durability contract behind an acknowledgement (§2.1/§3.2 of the
/// paper): what the acknowledging layer believed made the write safe.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AckContract {
    /// Acknowledged only after an explicit flush barrier (FLUSH CACHE /
    /// fsync with barriers on) completed. Safe on every device.
    FlushBarrierAck,
    /// Acknowledged from a capacitor-backed durable cache — DuraSSD's
    /// contract: the ack is durable *without* a barrier.
    DurableCacheAck,
    /// Acknowledged from a volatile cache with barriers off. No durability
    /// promise: the ack can be revoked by a power cut.
    VolatileAck,
}

impl AckContract {
    /// Stable string used in the forensic JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            AckContract::FlushBarrierAck => "flush-barrier",
            AckContract::DurableCacheAck => "durable-cache",
            AckContract::VolatileAck => "volatile",
        }
    }
}

/// What kind of app-level unit a ledger entry records.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnitKind {
    /// One key/value made durable by a relational-engine commit.
    RelstoreCommit,
    /// One document update made durable by a docstore header sync.
    DocstoreUpdate,
}

impl UnitKind {
    /// Stable string used in the forensic JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            UnitKind::RelstoreCommit => "relstore-commit",
            UnitKind::DocstoreUpdate => "docstore-update",
        }
    }
}

/// Lower-level acknowledgement kinds recorded as aggregate evidence.
#[derive(Clone, Copy, PartialEq, Eq, Debug, PartialOrd, Ord)]
pub enum EvidenceKind {
    /// A WAL buffer flush reported durable (detail = the durable LSN).
    WalFlush,
    /// A device FLUSH CACHE command acknowledged (detail = flush ordinal).
    DeviceFlush,
    /// A device write command acknowledged atomically (detail = LPN).
    AtomicWriteAck,
    /// A filesystem-level fsync acknowledged by the volume (detail = fsync
    /// ordinal). With barriers off this is the exact moment a volatile
    /// cache's broken promise is made: the host is told "durable" while the
    /// device was never asked to flush.
    FsyncAck,
    /// An engine checkpoint completed — data pages flushed, catalog written,
    /// checkpoint markers logged (detail = the checkpoint's Begin LSN).
    Checkpoint,
}

impl EvidenceKind {
    /// Stable string used in the forensic JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            EvidenceKind::WalFlush => "wal-flush",
            EvidenceKind::DeviceFlush => "device-flush",
            EvidenceKind::AtomicWriteAck => "atomic-write-ack",
            EvidenceKind::FsyncAck => "fsync-ack",
            EvidenceKind::Checkpoint => "checkpoint",
        }
    }
}

/// One acknowledged (or still-pending) app-level unit.
#[derive(Clone, Debug)]
pub struct LedgerEntry {
    /// Monotone sequence number in issue order.
    pub seq: u64,
    /// What layer produced the unit.
    pub kind: UnitKind,
    /// Printable unit identifier (lossy UTF-8 of the key).
    pub unit: String,
    /// Digest of the value as written (see [`Ledger::digest`]).
    pub digest: u64,
    /// Virtual time the write was issued.
    pub issued_at: Nanos,
    /// Virtual time the unit was acknowledged durable; `None` while pending.
    pub acked_at: Option<Nanos>,
    /// The contract behind the acknowledgement; `None` while pending.
    pub contract: Option<AckContract>,
}

/// Aggregate record of one evidence kind.
#[derive(Clone, Debug, Default)]
pub struct EvidenceRow {
    /// How many acknowledgements of this kind were recorded.
    pub count: u64,
    /// Virtual time of the first acknowledgement.
    pub first_at: Nanos,
    /// Virtual time of the most recent acknowledgement.
    pub last_at: Nanos,
    /// Contract behind the most recent acknowledgement.
    pub last_contract: Option<AckContract>,
    /// Kind-specific detail of the most recent ack (LSN, LPN, ordinal).
    pub last_detail: u64,
}

struct Inner {
    device_contract: AckContract,
    next_seq: u64,
    entries: Vec<LedgerEntry>,
    pending: Vec<usize>,
    evidence: BTreeMap<EvidenceKind, EvidenceRow>,
}

/// Shared handle to the durability ledger (clone freely; all clones record
/// into the same books).
#[derive(Clone)]
pub struct Ledger(Rc<RefCell<Inner>>);

impl Ledger {
    /// A fresh ledger for one crash trial. `device_contract` is the contract
    /// the *device cache* offers for barrierless acknowledgements — the
    /// campaign driver knows the device profile and picks
    /// [`AckContract::DurableCacheAck`] for DuraSSD and
    /// [`AckContract::VolatileAck`] for volatile-cache devices and disks.
    pub fn new(device_contract: AckContract) -> Self {
        Ledger(Rc::new(RefCell::new(Inner {
            device_contract,
            next_seq: 0,
            entries: Vec::new(),
            pending: Vec::new(),
            evidence: BTreeMap::new(),
        })))
    }

    /// The contract backing barrierless acknowledgements on this device.
    pub fn device_contract(&self) -> AckContract {
        self.0.borrow().device_contract
    }

    /// FNV-1a digest of a value as written. Both the recording layer and the
    /// post-recovery probe use this, so digests compare across the crash.
    pub fn digest(bytes: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Printable unit identifier for a key (lossy UTF-8, control bytes
    /// replaced) so reports stay human-readable for binary keys.
    pub fn unit_name(key: &[u8]) -> String {
        key.iter()
            .map(|&b| if (0x20..0x7f).contains(&b) { b as char } else { '.' })
            .collect::<String>()
    }

    /// Record a write *intent*: the unit was issued but not yet acknowledged.
    /// Returns the entry's sequence number.
    pub fn pend(&self, kind: UnitKind, key: &[u8], digest: u64, issued_at: Nanos) -> u64 {
        let mut s = self.0.borrow_mut();
        let seq = s.next_seq;
        s.next_seq += 1;
        let idx = s.entries.len();
        s.entries.push(LedgerEntry {
            seq,
            kind,
            unit: Self::unit_name(key),
            digest,
            issued_at,
            acked_at: None,
            contract: None,
        });
        s.pending.push(idx);
        seq
    }

    /// Acknowledge every pending unit as durable at `acked_at`. `barriered`
    /// says whether the acknowledging layer issued an explicit flush barrier
    /// for this ack; if not, the device's own contract applies.
    pub fn ack_all_pending(&self, acked_at: Nanos, barriered: bool) {
        let mut s = self.0.borrow_mut();
        let contract = if barriered { AckContract::FlushBarrierAck } else { s.device_contract };
        let pending = std::mem::take(&mut s.pending);
        for idx in pending {
            let e = &mut s.entries[idx];
            e.acked_at = Some(acked_at);
            e.contract = Some(contract);
        }
    }

    /// Record a lower-level acknowledgement as aggregate evidence.
    pub fn evidence(&self, kind: EvidenceKind, detail: u64, at: Nanos, barriered: bool) {
        let mut s = self.0.borrow_mut();
        let contract = if barriered { AckContract::FlushBarrierAck } else { s.device_contract };
        let row = s.evidence.entry(kind).or_default();
        if row.count == 0 {
            row.first_at = at;
        }
        row.count += 1;
        row.last_at = at;
        row.last_contract = Some(contract);
        row.last_detail = detail;
    }

    /// Snapshot of every entry (issue order).
    pub fn entries(&self) -> Vec<LedgerEntry> {
        self.0.borrow().entries.clone()
    }

    /// Number of acknowledged entries.
    pub fn acked_count(&self) -> u64 {
        self.0.borrow().entries.iter().filter(|e| e.acked_at.is_some()).count() as u64
    }

    /// Number of still-pending (never acknowledged) entries.
    pub fn pending_count(&self) -> u64 {
        self.0.borrow().pending.len() as u64
    }

    /// Snapshot of the evidence rows, keyed by kind.
    pub fn evidence_rows(&self) -> Vec<(EvidenceKind, EvidenceRow)> {
        self.0.borrow().evidence.iter().map(|(k, v)| (*k, v.clone())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pend_then_ack_assigns_contract_and_timestamp() {
        let l = Ledger::new(AckContract::DurableCacheAck);
        l.pend(UnitKind::RelstoreCommit, b"k1", Ledger::digest(b"v1"), 10);
        l.pend(UnitKind::RelstoreCommit, b"k2", Ledger::digest(b"v2"), 11);
        assert_eq!(l.pending_count(), 2);
        l.ack_all_pending(50, false);
        assert_eq!(l.pending_count(), 0);
        assert_eq!(l.acked_count(), 2);
        let es = l.entries();
        assert!(es.iter().all(|e| e.acked_at == Some(50)));
        assert!(es.iter().all(|e| e.contract == Some(AckContract::DurableCacheAck)));
        // A barriered ack upgrades the contract regardless of the device.
        l.pend(UnitKind::RelstoreCommit, b"k3", Ledger::digest(b"v3"), 60);
        l.ack_all_pending(70, true);
        assert_eq!(l.entries()[2].contract, Some(AckContract::FlushBarrierAck));
    }

    #[test]
    fn evidence_rows_aggregate() {
        let l = Ledger::new(AckContract::VolatileAck);
        l.evidence(EvidenceKind::WalFlush, 7, 100, true);
        l.evidence(EvidenceKind::WalFlush, 9, 200, true);
        l.evidence(EvidenceKind::AtomicWriteAck, 42, 150, false);
        let rows = l.evidence_rows();
        assert_eq!(rows.len(), 2);
        let wal = rows.iter().find(|(k, _)| *k == EvidenceKind::WalFlush).unwrap();
        assert_eq!(wal.1.count, 2);
        assert_eq!((wal.1.first_at, wal.1.last_at, wal.1.last_detail), (100, 200, 9));
        assert_eq!(wal.1.last_contract, Some(AckContract::FlushBarrierAck));
        let aw = rows.iter().find(|(k, _)| *k == EvidenceKind::AtomicWriteAck).unwrap();
        assert_eq!(aw.1.last_contract, Some(AckContract::VolatileAck));
    }

    #[test]
    fn digest_and_unit_name() {
        assert_ne!(Ledger::digest(b"a"), Ledger::digest(b"b"));
        assert_eq!(Ledger::digest(b"same"), Ledger::digest(b"same"));
        assert_eq!(Ledger::unit_name(b"key01"), "key01");
        assert_eq!(Ledger::unit_name(&[0x01, b'x', 0xff]), ".x.");
    }
}

//! fio-style raw-device micro-benchmark (Tables 1 and 2).
//!
//! Issues page-aligned random reads or writes straight at a [`Volume`], with
//! a configurable number of closed-loop jobs, page size, and an fsync after
//! every N writes — the exact parameter grid of the paper's Table 1
//! ("# of Writes per Fsync" 1..256 and none) and Table 2 (page size 4/8/16KB,
//! 1 or 128 threads).

use simkit::dist::rng;
use simkit::dist::Rng;
use simkit::{ClosedLoop, DriverReport, Nanos};
use storage::device::BlockDevice;
use storage::volume::Volume;

/// Operation direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FioOp {
    /// Random reads.
    Read,
    /// Random writes.
    Write,
}

/// Benchmark specification.
#[derive(Debug, Clone, Copy)]
pub struct FioSpec {
    /// Read or write.
    pub op: FioOp,
    /// I/O unit in bytes (4096, 8192, 16384).
    pub block_size: usize,
    /// Number of I/O units the target region spans.
    pub span_blocks: u64,
    /// `Some(n)`: each job fsyncs after every `n` writes; `None`: no fsync.
    pub fsync_every: Option<u32>,
    /// Closed-loop jobs.
    pub jobs: usize,
    /// Total operations across all jobs.
    pub total_ops: u64,
    /// RNG seed.
    pub seed: u64,
}

impl FioSpec {
    /// Table 1 shape: 4KB random writes over the span.
    pub fn random_write_4k(span_blocks: u64, fsync_every: Option<u32>, total_ops: u64) -> Self {
        Self {
            op: FioOp::Write,
            block_size: 4096,
            span_blocks,
            fsync_every,
            jobs: 1,
            total_ops,
            seed: 0x5EED,
        }
    }
}

/// Run the micro-benchmark against a mounted volume. The volume's barrier
/// policy decides whether fsync reaches the device (the "NoBarrier" row).
pub fn run<D: BlockDevice>(vol: &mut Volume<D>, spec: &FioSpec, start: Nanos) -> DriverReport {
    let pages_per_block = (spec.block_size / storage::device::LOGICAL_PAGE) as u64;
    assert!(pages_per_block >= 1);
    assert!(
        spec.span_blocks * pages_per_block <= vol.capacity_pages(),
        "span exceeds device capacity"
    );
    let mut rngs: Vec<_> = (0..spec.jobs).map(|j| rng(spec.seed ^ (j as u64) << 32)).collect();
    let mut since_sync = vec![0u32; spec.jobs];
    let mut wbuf = vec![0u8; spec.block_size];
    let mut rbuf = vec![0u8; spec.block_size];
    let mut counter = 0u64;
    let mut driver = ClosedLoop::new(spec.jobs, start);
    driver.run(spec.total_ops, |job, now| {
        let block = rngs[job].gen_range(0..spec.span_blocks);
        let lpn = block * pages_per_block;
        match spec.op {
            FioOp::Read => {
                vol.read(lpn, pages_per_block as u32, &mut rbuf, now).expect("in-range read")
            }
            FioOp::Write => {
                counter += 1;
                wbuf[..8].copy_from_slice(&counter.to_le_bytes());
                let mut t = vol.write(lpn, &wbuf, now).expect("in-range write");
                if let Some(n) = spec.fsync_every {
                    since_sync[job] += 1;
                    if since_sync[job] >= n {
                        since_sync[job] = 0;
                        t = vol.fsync(t).expect("device reachable");
                    }
                }
                t
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use storage::testdev::MemDevice;

    fn volume() -> Volume<MemDevice> {
        Volume::new(MemDevice::new(4096), true)
    }

    #[test]
    fn write_spec_runs_and_counts() {
        let mut vol = volume();
        let spec = FioSpec::random_write_4k(1024, Some(4), 100);
        let rep = run(&mut vol, &spec, 0);
        assert_eq!(rep.ops, 100);
        assert!(rep.throughput() > 0.0);
        assert_eq!(vol.device_stats().writes, 100);
        // 100 writes, fsync every 4 → 25 flushes.
        assert_eq!(vol.device_stats().flushes, 25);
    }

    #[test]
    fn no_fsync_means_no_flushes() {
        let mut vol = volume();
        let spec = FioSpec::random_write_4k(1024, None, 50);
        run(&mut vol, &spec, 0);
        assert_eq!(vol.device_stats().flushes, 0);
    }

    #[test]
    fn nobarrier_swallows_fsync() {
        let mut vol = Volume::new(MemDevice::new(4096), false);
        let spec = FioSpec::random_write_4k(1024, Some(1), 50);
        run(&mut vol, &spec, 0);
        assert_eq!(vol.device_stats().flushes, 0);
        assert_eq!(vol.fsync_count(), 50);
    }

    #[test]
    fn reads_with_large_blocks_and_many_jobs() {
        let mut vol = volume();
        let spec = FioSpec {
            op: FioOp::Read,
            block_size: 16384,
            span_blocks: 256,
            fsync_every: None,
            jobs: 8,
            total_ops: 200,
            seed: 7,
        };
        let rep = run(&mut vol, &spec, 0);
        assert_eq!(rep.ops, 200);
        assert_eq!(vol.device_stats().reads, 200);
    }

    #[test]
    fn fsync_frequency_monotonically_helps_on_flushy_device() {
        // On MemDevice flush costs 100us, write 20us: fewer fsyncs => more
        // IOPS. The real Table 1 shape test lives in the bench crate.
        let mut t_per: Vec<f64> = Vec::new();
        for every in [1u32, 8, 64] {
            let mut vol = volume();
            let spec = FioSpec::random_write_4k(1024, Some(every), 200);
            let rep = run(&mut vol, &spec, 0);
            t_per.push(rep.throughput());
        }
        assert!(t_per[0] < t_per[1] && t_per[1] < t_per[2], "{t_per:?}");
    }

    #[test]
    #[should_panic(expected = "span exceeds device capacity")]
    fn oversized_span_rejected() {
        let mut vol = volume();
        let spec = FioSpec::random_write_4k(1 << 40, None, 1);
        run(&mut vol, &spec, 0);
    }

    #[test]
    fn throughput_is_deterministic_across_runs() {
        let go = || {
            let mut vol = volume();
            let spec = FioSpec::random_write_4k(1024, Some(8), 300);
            run(&mut vol, &spec, 0).throughput()
        };
        assert_eq!(go(), go());
    }
}

//! YCSB workload-A on the document store (Table 5).
//!
//! Workload-A is the only YCSB workload with writes: 50% reads / 50%
//! updates over a zipfian key distribution with ~1KB records. The paper also
//! measures a 100%-update variant; the Couchbase knob under test is
//! `batch_size` (fsync every k updates).

use crate::cpu::CpuModel;
use docstore::DocStore;
use simkit::dist::Rng;
use simkit::dist::{rng, ScrambledZipfian};
use simkit::{ClosedLoop, DriverReport, Nanos};
use storage::device::BlockDevice;

/// Workload specification.
#[derive(Debug, Clone, Copy)]
pub struct YcsbSpec {
    /// Number of records loaded before the measured phase.
    pub records: u64,
    /// Value size in bytes (YCSB default: 10 fields × 100B ≈ 1KB).
    pub value_size: usize,
    /// Fraction of operations that are updates (0.5 for workload-A, 1.0 for
    /// the paper's 100%-update variant).
    pub update_fraction: f64,
    /// Operations in the measured phase.
    pub ops: u64,
    /// Closed-loop clients (the paper runs a single thread).
    pub clients: usize,
    /// RNG seed.
    pub seed: u64,
    /// Client-side software cost per operation (ns); Couchbase's managed
    /// cache path is ~100-200us per op.
    pub cpu_per_op: u64,
}

impl YcsbSpec {
    /// Workload-A defaults at a given scale.
    pub fn workload_a(records: u64, ops: u64) -> Self {
        Self {
            records,
            value_size: 1000,
            update_fraction: 0.5,
            ops,
            clients: 1,
            seed: 0xCB,
            cpu_per_op: 120_000,
        }
    }
}

fn key_of(i: u64) -> Vec<u8> {
    format!("user{:012}", i).into_bytes()
}

fn value_of(size: usize, tag: u64) -> Vec<u8> {
    let mut v = vec![b'v'; size];
    v[..8].copy_from_slice(&tag.to_le_bytes());
    v
}

/// Load the initial records. Returns the completion time.
pub fn load<D: BlockDevice>(store: &mut DocStore<D>, spec: &YcsbSpec, now: Nanos) -> Nanos {
    let mut t = now;
    for i in 0..spec.records {
        t = store.set(&key_of(i), &value_of(spec.value_size, i), t);
    }
    store.commit_header(t)
}

/// Run the measured phase; returns the driver report (ops/s = the paper's
/// OPS metric).
pub fn run<D: BlockDevice>(store: &mut DocStore<D>, spec: &YcsbSpec, start: Nanos) -> DriverReport {
    let chooser = ScrambledZipfian::new(spec.records);
    let mut rngs: Vec<_> = (0..spec.clients).map(|c| rng(spec.seed ^ (c as u64) << 40)).collect();
    let mut cpu = CpuModel::new(spec.clients.max(1), spec.cpu_per_op);
    let mut driver = ClosedLoop::new(spec.clients, start);
    let mut op_no = 0u64;
    driver.run(spec.ops, |client, now| {
        let r = &mut rngs[client];
        let key = key_of(chooser.sample(r));
        op_no += 1;
        let t0 = cpu.charge(now);
        if r.gen_bool(spec.update_fraction) {
            store.set(&key, &value_of(spec.value_size, op_no), t0)
        } else {
            store.get(&key, t0).done
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use docstore::DocStoreConfig;
    use storage::testdev::MemDevice;

    fn store(batch: u32) -> DocStore<MemDevice> {
        DocStore::create(
            MemDevice::new(32 * 1024),
            DocStoreConfig {
                batch_size: batch,
                barriers: true,
                file_blocks: 32 * 1024,
                auto_compact_pct: 0,
                checkpoint_every_n_commits: 8,
            },
        )
    }

    #[test]
    fn load_then_run_completes() {
        let mut s = store(10);
        let spec = YcsbSpec { records: 200, ops: 300, ..YcsbSpec::workload_a(200, 300) };
        let t = load(&mut s, &spec, 0);
        assert_eq!(s.stats().sets, 200);
        let rep = run(&mut s, &spec, t);
        assert_eq!(rep.ops, 300);
        let st = s.stats();
        // Roughly half the measured ops are updates.
        let updates = st.sets - 200;
        assert!(updates > 100 && updates < 200, "updates = {updates}");
        assert!(st.gets > 100);
    }

    #[test]
    fn pure_update_variant() {
        let mut s = store(1);
        let mut spec = YcsbSpec::workload_a(100, 150);
        spec.update_fraction = 1.0;
        let t = load(&mut s, &spec, 0);
        let rep = run(&mut s, &spec, t);
        assert_eq!(rep.ops, 150);
        assert_eq!(s.stats().sets, 250);
        assert_eq!(s.stats().gets, 0);
    }

    #[test]
    fn batch_one_is_slower_than_batch_100() {
        let run_with = |batch: u32| {
            let mut s = store(batch);
            let spec = YcsbSpec { records: 100, ops: 200, ..YcsbSpec::workload_a(100, 200) };
            let t = load(&mut s, &spec, 0);
            run(&mut s, &spec, t).throughput()
        };
        let slow = run_with(1);
        let fast = run_with(100);
        assert!(fast > slow, "batch=100 ({fast}) must beat batch=1 ({slow})");
    }
}

//! LinkBench: Facebook's social-graph benchmark (paper §4.1, Fig. 5/6,
//! Table 3), implemented directly against the `relstore` engine the way
//! LinkBench's MySQL driver exercises InnoDB.
//!
//! The schema is the standard three tables:
//!
//! * `node(id) -> payload` — graph objects,
//! * `link(id1, type, id2) -> payload` — edges,
//! * `count(id1, type) -> n` — edge counts (LinkBench maintains these
//!   transactionally with the links, which is what makes `ADD_LINK` and
//!   `DELETE_LINK` multi-write transactions).
//!
//! The operation mix is LinkBench's Facebook-default mix (≈69% reads / 31%
//! writes — the paper: "read intensive with just about 30% writes").
//! Per-operation latencies are captured per type, which is exactly the shape
//! of the paper's Table 3.

use crate::cpu::CpuModel;
use relstore::{Engine, TreeId};
use simkit::dist::Rng;
use simkit::dist::{rng, PowerLaw, ScrambledZipfian};
use simkit::stats::{LatencyStats, Summary};
use simkit::{clock, ClosedLoop, Nanos};
use storage::device::BlockDevice;

/// The ten LinkBench operation types (Table 3 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpType {
    /// Read a node.
    GetNode,
    /// Read a link count.
    CountLink,
    /// Range-read the links of a node.
    GetLinkList,
    /// Read several specific links.
    MultigetLink,
    /// Insert a node.
    AddNode,
    /// Delete a node.
    DeleteNode,
    /// Update a node payload.
    UpdateNode,
    /// Insert a link (updates the count too).
    AddLink,
    /// Delete a link (updates the count too).
    DeleteLink,
    /// Update a link payload.
    UpdateLink,
}

/// All operation types in Table 3 order.
pub const OP_TYPES: [OpType; 10] = [
    OpType::GetNode,
    OpType::CountLink,
    OpType::GetLinkList,
    OpType::MultigetLink,
    OpType::AddNode,
    OpType::DeleteNode,
    OpType::UpdateNode,
    OpType::AddLink,
    OpType::DeleteLink,
    OpType::UpdateLink,
];

impl OpType {
    /// Facebook-default mix weight (percent).
    pub fn weight(self) -> f64 {
        match self {
            OpType::GetNode => 12.9,
            OpType::CountLink => 4.9,
            OpType::GetLinkList => 50.7,
            OpType::MultigetLink => 0.5,
            OpType::AddNode => 2.6,
            OpType::DeleteNode => 1.0,
            OpType::UpdateNode => 7.4,
            OpType::AddLink => 9.0,
            OpType::DeleteLink => 3.0,
            OpType::UpdateLink => 8.0,
        }
    }

    /// Whether the operation writes.
    pub fn is_write(self) -> bool {
        matches!(
            self,
            OpType::AddNode
                | OpType::DeleteNode
                | OpType::UpdateNode
                | OpType::AddLink
                | OpType::DeleteLink
                | OpType::UpdateLink
        )
    }

    /// Table 3 row label.
    pub fn label(self) -> &'static str {
        match self {
            OpType::GetNode => "Get Node",
            OpType::CountLink => "Count Link",
            OpType::GetLinkList => "Get Link List",
            OpType::MultigetLink => "Multiget Link",
            OpType::AddNode => "ADD Node",
            OpType::DeleteNode => "Delete Node",
            OpType::UpdateNode => "Update Node",
            OpType::AddLink => "Add Link",
            OpType::DeleteLink => "Delete Link",
            OpType::UpdateLink => "Update Link",
        }
    }
}

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct LinkBenchSpec {
    /// Initial graph size in nodes.
    pub nodes: u64,
    /// Link types (LinkBench default: 2).
    pub link_types: u32,
    /// Maximum initial links per node (power-law distributed).
    pub max_links: u64,
    /// Node payload bytes.
    pub node_payload: usize,
    /// Link payload bytes.
    pub link_payload: usize,
    /// Concurrent clients (paper: 128).
    pub clients: usize,
    /// Warm-up operations (discarded).
    pub warmup_ops: u64,
    /// Measured operations.
    pub ops: u64,
    /// RNG seed.
    pub seed: u64,
    /// Host cores (paper: 32).
    pub cores: usize,
    /// Software (CPU/latch) cost per operation in ns — roughly a MySQL
    /// core-millisecond at the paper's scale.
    pub cpu_per_op: u64,
}

impl LinkBenchSpec {
    /// A scaled-down default proportional to the paper's setup.
    pub fn scaled(nodes: u64, ops: u64) -> Self {
        Self {
            nodes,
            link_types: 2,
            max_links: 32,
            node_payload: 120,
            link_payload: 96,
            clients: 128,
            warmup_ops: ops / 10,
            ops,
            seed: 0x11bb,
            cores: 32,
            cpu_per_op: 550_000,
        }
    }
}

/// The graph store handles.
pub struct Graph {
    /// Node tree id.
    pub nodes: TreeId,
    /// Link tree id.
    pub links: TreeId,
    /// Count tree id.
    pub counts: TreeId,
    /// Next node id to allocate.
    pub next_id: u64,
}

fn node_key(id: u64) -> Vec<u8> {
    let mut k = Vec::with_capacity(9);
    k.push(b'n');
    k.extend_from_slice(&id.to_be_bytes());
    k
}

fn link_key(id1: u64, typ: u32, id2: u64) -> Vec<u8> {
    let mut k = Vec::with_capacity(21);
    k.push(b'l');
    k.extend_from_slice(&id1.to_be_bytes());
    k.extend_from_slice(&typ.to_be_bytes());
    k.extend_from_slice(&id2.to_be_bytes());
    k
}

fn link_prefix(id1: u64, typ: u32) -> Vec<u8> {
    let mut k = Vec::with_capacity(13);
    k.push(b'l');
    k.extend_from_slice(&id1.to_be_bytes());
    k.extend_from_slice(&typ.to_be_bytes());
    k
}

fn count_key(id1: u64, typ: u32) -> Vec<u8> {
    let mut k = Vec::with_capacity(13);
    k.push(b'c');
    k.extend_from_slice(&id1.to_be_bytes());
    k.extend_from_slice(&typ.to_be_bytes());
    k
}

fn payload(size: usize, tag: u64) -> Vec<u8> {
    let mut p = vec![b'p'; size];
    p[..8].copy_from_slice(&tag.to_le_bytes());
    p
}

/// Load the initial graph; returns the handles and the completion time.
/// Finishes with a checkpoint so recovery tests and measurement start from
/// a clean slate.
pub fn load<D: BlockDevice, L: BlockDevice>(
    engine: &mut Engine<D, L>,
    spec: &LinkBenchSpec,
    now: Nanos,
) -> (Graph, Nanos) {
    let (nodes, t) = engine.create_tree(now).into_parts();
    let (links, t) = engine.create_tree(t).into_parts();
    let (counts, mut t) = engine.create_tree(t).into_parts();
    let mut r = rng(spec.seed);
    let fanout = PowerLaw::new(1, spec.max_links.max(2), 2.2);
    for id in 0..spec.nodes {
        t = engine.put(nodes, &node_key(id), &payload(spec.node_payload, id), t);
        let typ = r.gen_range(0..spec.link_types);
        let n = fanout.sample(&mut r).min(spec.nodes);
        for _ in 0..n {
            let id2 = r.gen_range(0..spec.nodes);
            t = engine.put(links, &link_key(id, typ, id2), &payload(spec.link_payload, id2), t);
        }
        t = engine.put(counts, &count_key(id, typ), &n.to_le_bytes(), t);
        if id % 256 == 255 {
            t = engine.commit(t);
            if engine.needs_checkpoint() {
                t = engine.checkpoint(t);
            }
        }
    }
    t = engine.commit(t);
    t = engine.checkpoint(t);
    (Graph { nodes, links, counts, next_id: spec.nodes }, t)
}

/// Result of a LinkBench run.
pub struct LinkBenchReport {
    /// Measured operations.
    pub ops: u64,
    /// Elapsed virtual time of the measured phase.
    pub elapsed: Nanos,
    /// Operations (transactions) per second — the paper's TPS.
    pub tps: f64,
    /// Per-type latency summaries (Table 3 rows), in [`OP_TYPES`] order.
    pub per_type: Vec<(OpType, Summary)>,
}

struct Mixer {
    cdf: Vec<(f64, OpType)>,
}

impl Mixer {
    fn new() -> Self {
        let total: f64 = OP_TYPES.iter().map(|o| o.weight()).sum();
        let mut acc = 0.0;
        let cdf = OP_TYPES
            .iter()
            .map(|&o| {
                acc += o.weight() / total;
                (acc, o)
            })
            .collect();
        Self { cdf }
    }

    fn pick<R: Rng>(&self, r: &mut R) -> OpType {
        let x: f64 = r.gen();
        for &(c, o) in &self.cdf {
            if x <= c {
                return o;
            }
        }
        OpType::GetLinkList
    }
}

/// Execute one operation; returns the completion time.
#[allow(clippy::too_many_arguments)]
fn run_op<D: BlockDevice, L: BlockDevice, R: Rng>(
    engine: &mut Engine<D, L>,
    g: &mut Graph,
    spec: &LinkBenchSpec,
    chooser: &ScrambledZipfian,
    r: &mut R,
    op: OpType,
    now: Nanos,
) -> Nanos {
    let id = chooser.sample(r);
    let typ = r.gen_range(0..spec.link_types);
    match op {
        OpType::GetNode => engine.get(g.nodes, &node_key(id), now).done,
        OpType::CountLink => engine.get(g.counts, &count_key(id, typ), now).done,
        OpType::GetLinkList => {
            // Range over this node's links of one type (LinkBench caps the
            // returned list; typical lists are short).
            let prefix = link_prefix(id, typ);
            let (rows, t) = engine.scan(g.links, &prefix, 20, now).into_parts();
            // Discard rows beyond the prefix (scan is a range, not a filter).
            let _ = rows.iter().take_while(|(k, _)| k.starts_with(&prefix)).count();
            t
        }
        OpType::MultigetLink => {
            let mut t = now;
            for _ in 0..3 {
                let id2 = chooser.sample(r);
                t = engine.get(g.links, &link_key(id, typ, id2), t).done;
            }
            t
        }
        OpType::AddNode => {
            let new_id = g.next_id;
            g.next_id += 1;
            let t =
                engine.put(g.nodes, &node_key(new_id), &payload(spec.node_payload, new_id), now);
            engine.commit(t)
        }
        OpType::DeleteNode => {
            let (_, t) = engine.delete(g.nodes, &node_key(id), now).into_parts();
            engine.commit(t)
        }
        OpType::UpdateNode => {
            let t = engine.put(g.nodes, &node_key(id), &payload(spec.node_payload, id ^ 1), now);
            engine.commit(t)
        }
        OpType::AddLink => {
            let id2 = chooser.sample(r);
            let t =
                engine.put(g.links, &link_key(id, typ, id2), &payload(spec.link_payload, id2), now);
            // Transactionally bump the count.
            let (cur, t) = engine.get(g.counts, &count_key(id, typ), t).into_parts();
            let n =
                cur.map(|v| u64::from_le_bytes(v[..8].try_into().unwrap_or_default())).unwrap_or(0);
            let t = engine.put(g.counts, &count_key(id, typ), &(n + 1).to_le_bytes(), t);
            engine.commit(t)
        }
        OpType::DeleteLink => {
            let id2 = chooser.sample(r);
            let (existed, t) = engine.delete(g.links, &link_key(id, typ, id2), now).into_parts();
            let mut t = t;
            if existed {
                let (cur, t2) = engine.get(g.counts, &count_key(id, typ), t).into_parts();
                let n = cur
                    .map(|v| u64::from_le_bytes(v[..8].try_into().unwrap_or_default()))
                    .unwrap_or(1);
                t = engine.put(g.counts, &count_key(id, typ), &(n - 1).to_le_bytes(), t2);
            }
            engine.commit(t)
        }
        OpType::UpdateLink => {
            let id2 = chooser.sample(r);
            let t = engine.put(
                g.links,
                &link_key(id, typ, id2),
                &payload(spec.link_payload, !id2),
                now,
            );
            engine.commit(t)
        }
    }
}

/// Run the benchmark (warm-up + measured phase).
pub fn run<D: BlockDevice, L: BlockDevice>(
    engine: &mut Engine<D, L>,
    g: &mut Graph,
    spec: &LinkBenchSpec,
    start: Nanos,
) -> LinkBenchReport {
    let chooser = ScrambledZipfian::new(spec.nodes);
    let mixer = Mixer::new();
    let mut rngs: Vec<_> =
        (0..spec.clients).map(|c| rng(spec.seed ^ 0x9E37 ^ ((c as u64) << 24))).collect();
    let mut cpu = CpuModel::new(spec.cores, spec.cpu_per_op);
    let mut driver = ClosedLoop::new(spec.clients, start);
    // Warm-up: fill the buffer pool (paper: 600s warm-up).
    driver.warmup(spec.warmup_ops, |client, now| {
        let op = mixer.pick(&mut rngs[client]);
        let t0 = cpu.charge(now);
        let t = run_op(engine, g, spec, &chooser, &mut rngs[client], op, t0);
        if engine.needs_checkpoint() {
            engine.checkpoint(t)
        } else {
            t
        }
    });
    engine.reset_pool_stats();
    let mut per_type: Vec<LatencyStats> =
        (0..OP_TYPES.len()).map(|_| LatencyStats::new()).collect();
    let rep = driver.run(spec.ops, |client, now| {
        let op = mixer.pick(&mut rngs[client]);
        let t0 = cpu.charge(now);
        let done = run_op(engine, g, spec, &chooser, &mut rngs[client], op, t0);
        let idx = OP_TYPES.iter().position(|&o| o == op).expect("known op");
        per_type[idx].record(done - now);
        if engine.needs_checkpoint() {
            engine.checkpoint(done)
        } else {
            done
        }
    });
    LinkBenchReport {
        ops: rep.ops,
        elapsed: rep.elapsed(),
        tps: clock::per_sec(rep.ops, rep.elapsed()),
        per_type: OP_TYPES
            .iter()
            .zip(per_type.iter_mut())
            .map(|(&o, s)| (o, s.summary()))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::EngineConfig;
    use storage::testdev::MemDevice;

    fn engine() -> Engine<MemDevice, MemDevice> {
        let cfg = EngineConfig {
            full_page_writes: false,
            data_pages: 16 * 1024,
            buffer_pool_bytes: 256 * 4096,
            log_file_blocks: 2048,
            ..EngineConfig::mysql_like(4096)
        };
        Engine::create(MemDevice::new(64 * 1024), MemDevice::new(16 * 1024), cfg, 0).value
    }

    #[test]
    fn mix_weights_normalise() {
        let m = Mixer::new();
        assert!((m.cdf.last().unwrap().0 - 1.0).abs() < 1e-9);
        // Sampled frequencies roughly match weights.
        let mut r = rng(1);
        let mut gll = 0u32;
        for _ in 0..4000 {
            if m.pick(&mut r) == OpType::GetLinkList {
                gll += 1;
            }
        }
        let frac = gll as f64 / 4000.0;
        assert!((frac - 0.504).abs() < 0.05, "GetLinkList frac {frac}");
    }

    #[test]
    fn write_fraction_is_about_thirty_percent() {
        let total: f64 = OP_TYPES.iter().map(|o| o.weight()).sum();
        let writes: f64 = OP_TYPES.iter().filter(|o| o.is_write()).map(|o| o.weight()).sum();
        let frac = writes / total;
        assert!((frac - 0.31).abs() < 0.02, "write fraction {frac}");
    }

    #[test]
    fn load_and_run_small_graph() {
        let mut e = engine();
        let mut spec = LinkBenchSpec::scaled(300, 500);
        spec.clients = 8;
        spec.warmup_ops = 50;
        let (mut g, t) = load(&mut e, &spec, 0);
        assert_eq!(g.next_id, 300);
        let rep = run(&mut e, &mut g, &spec, t);
        assert_eq!(rep.ops, 500);
        assert!(rep.tps > 0.0);
        // All ten types appear in the report.
        assert_eq!(rep.per_type.len(), 10);
        let sampled: u64 = rep.per_type.iter().map(|(_, s)| s.count).sum();
        assert_eq!(sampled, 500);
        // Reads were served.
        let (v, _) = e.get(g.nodes, &node_key(5), rep.elapsed).into_parts();
        assert!(v.is_some());
    }

    #[test]
    fn add_link_maintains_count() {
        let mut e = engine();
        let spec = LinkBenchSpec::scaled(50, 10);
        let (mut g, t) = load(&mut e, &spec, 0);
        let chooser = ScrambledZipfian::new(spec.nodes);
        let mut r = rng(9);
        let mut t = t;
        for _ in 0..20 {
            t = run_op(&mut e, &mut g, &spec, &chooser, &mut r, OpType::AddLink, t);
        }
        // Counts exist and are consistent with at least one link each.
        let (rows, _) = e.scan(g.counts, b"c", 1000, t).into_parts();
        assert!(!rows.is_empty());
    }
}

//! TPC-C on the `relstore` engine (paper §4.3.2, Table 4).
//!
//! Implements the five standard transaction types with the standard mix
//! (New-Order 45%, Payment 43%, Order-Status 4%, Delivery 4%, Stock-Level
//! 4%) over the nine-table warehouse schema, scaled down for simulation.
//! Throughput is reported as **tpmC** — New-Order transactions per virtual
//! minute — matching Table 4's metric.
//!
//! Row payloads use fixed layouts with filler bytes sized roughly like the
//! spec's rows; the quantities that transactions actually read-modify-write
//! (`d_next_o_id`, stock quantities, balances, YTD sums) are real fields.

use crate::cpu::CpuModel;
use relstore::{Engine, TreeId};
use simkit::dist::rng;
use simkit::dist::Rng;
use simkit::{ClosedLoop, Nanos, SECS};
use storage::device::BlockDevice;

/// Workload parameters (scaled-down TPC-C).
#[derive(Debug, Clone, Copy)]
pub struct TpccSpec {
    /// Warehouses (the paper uses 1000; scale down proportionally).
    pub warehouses: u32,
    /// Districts per warehouse (spec: 10).
    pub districts: u32,
    /// Customers per district (spec: 3000; scaled).
    pub customers: u32,
    /// Items (spec: 100k; scaled).
    pub items: u32,
    /// Concurrent terminals.
    pub clients: usize,
    /// Warm-up transactions (discarded).
    pub warmup_txns: u64,
    /// Measured transactions.
    pub txns: u64,
    /// RNG seed.
    pub seed: u64,
    /// Host cores.
    pub cores: usize,
    /// Software cost per transaction (ns). TPC-C transactions touch tens of
    /// rows; a commercial engine spends several core-ms on one.
    pub cpu_per_txn: u64,
}

impl TpccSpec {
    /// A scaled configuration with spec-shaped ratios.
    pub fn scaled(warehouses: u32, txns: u64) -> Self {
        Self {
            warehouses,
            districts: 10,
            customers: 120,
            items: 2000,
            clients: 32,
            warmup_txns: txns / 10,
            txns,
            seed: 0x7bcc,
            cores: 32,
            cpu_per_txn: 5_500_000,
        }
    }
}

/// Table handles.
pub struct TpccDb {
    warehouse: TreeId,
    district: TreeId,
    customer: TreeId,
    item: TreeId,
    stock: TreeId,
    orders: TreeId,
    new_order: TreeId,
    order_line: TreeId,
    history: TreeId,
    next_h_id: u64,
}

/// Per-run counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct TpccReportCounts {
    /// Committed New-Order transactions (the tpmC numerator).
    pub new_orders: u64,
    /// Payment transactions.
    pub payments: u64,
    /// Order-status transactions.
    pub order_status: u64,
    /// Delivery transactions.
    pub deliveries: u64,
    /// Stock-level transactions.
    pub stock_levels: u64,
}

/// Run report.
#[derive(Debug, Clone, Copy)]
pub struct TpccReport {
    /// Transaction counters by type.
    pub counts: TpccReportCounts,
    /// Virtual duration of the measured phase.
    pub elapsed: Nanos,
    /// Virtual time of the last completion (timeline continuation point
    /// for callers that keep simulating, e.g. the trace recorder).
    pub finished_at: Nanos,
    /// New-Order transactions per virtual minute.
    pub tpmc: f64,
}

// ---- keys ------------------------------------------------------------------

fn k_w(w: u32) -> Vec<u8> {
    w.to_be_bytes().to_vec()
}

fn k_d(w: u32, d: u32) -> Vec<u8> {
    let mut k = w.to_be_bytes().to_vec();
    k.extend_from_slice(&d.to_be_bytes());
    k
}

fn k_c(w: u32, d: u32, c: u32) -> Vec<u8> {
    let mut k = k_d(w, d);
    k.extend_from_slice(&c.to_be_bytes());
    k
}

fn k_i(i: u32) -> Vec<u8> {
    i.to_be_bytes().to_vec()
}

fn k_s(w: u32, i: u32) -> Vec<u8> {
    let mut k = w.to_be_bytes().to_vec();
    k.extend_from_slice(&i.to_be_bytes());
    k
}

fn k_o(w: u32, d: u32, o: u32) -> Vec<u8> {
    let mut k = k_d(w, d);
    k.extend_from_slice(&o.to_be_bytes());
    k
}

fn k_ol(w: u32, d: u32, o: u32, l: u32) -> Vec<u8> {
    let mut k = k_o(w, d, o);
    k.extend_from_slice(&l.to_be_bytes());
    k
}

// ---- rows ------------------------------------------------------------------

fn row(fixed: &[u8], filler: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(fixed.len() + filler);
    v.extend_from_slice(fixed);
    v.extend(std::iter::repeat_n(b'f', filler));
    v
}

fn district_row(next_o_id: u32, ytd: u64) -> Vec<u8> {
    let mut fixed = next_o_id.to_le_bytes().to_vec();
    fixed.extend_from_slice(&ytd.to_le_bytes());
    row(&fixed, 84)
}

fn district_next_o_id(r: &[u8]) -> u32 {
    u32::from_le_bytes(r[..4].try_into().expect("district row"))
}

fn district_ytd(r: &[u8]) -> u64 {
    u64::from_le_bytes(r[4..12].try_into().expect("district row"))
}

fn stock_row(qty: i32, ytd: u32) -> Vec<u8> {
    let mut fixed = qty.to_le_bytes().to_vec();
    fixed.extend_from_slice(&ytd.to_le_bytes());
    row(&fixed, 280)
}

fn stock_qty(r: &[u8]) -> i32 {
    i32::from_le_bytes(r[..4].try_into().expect("stock row"))
}

fn stock_ytd(r: &[u8]) -> u32 {
    u32::from_le_bytes(r[4..8].try_into().expect("stock row"))
}

fn customer_row(balance: i64) -> Vec<u8> {
    row(&balance.to_le_bytes(), 440)
}

fn customer_balance(r: &[u8]) -> i64 {
    i64::from_le_bytes(r[..8].try_into().expect("customer row"))
}

fn warehouse_row(ytd: u64) -> Vec<u8> {
    row(&ytd.to_le_bytes(), 81)
}

fn warehouse_ytd(r: &[u8]) -> u64 {
    u64::from_le_bytes(r[..8].try_into().expect("warehouse row"))
}

/// Populate the database; ends with a checkpoint.
pub fn load<D: BlockDevice, L: BlockDevice>(
    engine: &mut Engine<D, L>,
    spec: &TpccSpec,
    now: Nanos,
) -> (TpccDb, Nanos) {
    let (warehouse, t) = engine.create_tree(now).into_parts();
    let (district, t) = engine.create_tree(t).into_parts();
    let (customer, t) = engine.create_tree(t).into_parts();
    let (item, t) = engine.create_tree(t).into_parts();
    let (stock, t) = engine.create_tree(t).into_parts();
    let (orders, t) = engine.create_tree(t).into_parts();
    let (new_order, t) = engine.create_tree(t).into_parts();
    let (order_line, t) = engine.create_tree(t).into_parts();
    let (history, mut t) = engine.create_tree(t).into_parts();
    for i in 0..spec.items {
        t = engine.put(item, &k_i(i), &row(&i.to_le_bytes(), 60), t);
        if i % 512 == 511 {
            t = engine.commit(t);
        }
    }
    for w in 0..spec.warehouses {
        t = engine.put(warehouse, &k_w(w), &warehouse_row(0), t);
        for i in 0..spec.items {
            t = engine.put(stock, &k_s(w, i), &stock_row(100, 0), t);
            if i % 512 == 511 {
                t = engine.commit(t);
                if engine.needs_checkpoint() {
                    t = engine.checkpoint(t);
                }
            }
        }
        for d in 0..spec.districts {
            t = engine.put(district, &k_d(w, d), &district_row(1, 0), t);
            for c in 0..spec.customers {
                t = engine.put(customer, &k_c(w, d, c), &customer_row(-10), t);
            }
            t = engine.commit(t);
            if engine.needs_checkpoint() {
                t = engine.checkpoint(t);
            }
        }
    }
    t = engine.commit(t);
    t = engine.checkpoint(t);
    let db = TpccDb {
        warehouse,
        district,
        customer,
        item,
        stock,
        orders,
        new_order,
        order_line,
        history,
        next_h_id: 0,
    };
    (db, t)
}

fn new_order<D: BlockDevice, L: BlockDevice, R: Rng>(
    e: &mut Engine<D, L>,
    db: &mut TpccDb,
    spec: &TpccSpec,
    r: &mut R,
    now: Nanos,
) -> Nanos {
    let w = r.gen_range(0..spec.warehouses);
    let d = r.gen_range(0..spec.districts);
    let c = r.gen_range(0..spec.customers);
    let (_, t) = e.get(db.warehouse, &k_w(w), now).into_parts();
    let (drow, t) = e.get(db.district, &k_d(w, d), t).into_parts();
    let drow = drow.expect("district loaded");
    let o_id = district_next_o_id(&drow);
    let mut t = e.put(db.district, &k_d(w, d), &district_row(o_id + 1, district_ytd(&drow)), t);
    let (_, t2) = e.get(db.customer, &k_c(w, d, c), t).into_parts();
    t = t2;
    let ol_cnt = r.gen_range(5..=15u32);
    let mut fixed = c.to_le_bytes().to_vec();
    fixed.push(ol_cnt as u8);
    t = e.put(db.orders, &k_o(w, d, o_id), &row(&fixed, 20), t);
    t = e.put(db.new_order, &k_o(w, d, o_id), &[1u8], t);
    for l in 0..ol_cnt {
        let i = r.gen_range(0..spec.items);
        let (_, t2) = e.get(db.item, &k_i(i), t).into_parts();
        let (srow, t3) = e.get(db.stock, &k_s(w, i), t2).into_parts();
        let srow = srow.expect("stock loaded");
        let qty = stock_qty(&srow);
        let new_qty = if qty > 10 { qty - r.gen_range(1..=10) } else { qty + 91 };
        t = e.put(db.stock, &k_s(w, i), &stock_row(new_qty, stock_ytd(&srow) + 1), t3);
        let mut lf = i.to_le_bytes().to_vec();
        lf.push(r.gen_range(1..=10u32) as u8);
        t = e.put(db.order_line, &k_ol(w, d, o_id, l), &row(&lf, 40), t);
    }
    e.commit(t)
}

fn payment<D: BlockDevice, L: BlockDevice, R: Rng>(
    e: &mut Engine<D, L>,
    db: &mut TpccDb,
    spec: &TpccSpec,
    r: &mut R,
    now: Nanos,
) -> Nanos {
    let w = r.gen_range(0..spec.warehouses);
    let d = r.gen_range(0..spec.districts);
    let c = r.gen_range(0..spec.customers);
    let amount = r.gen_range(1..=5000i64);
    let (wrow, t) = e.get(db.warehouse, &k_w(w), now).into_parts();
    let wrow = wrow.expect("warehouse loaded");
    let t = e.put(db.warehouse, &k_w(w), &warehouse_row(warehouse_ytd(&wrow) + amount as u64), t);
    let (drow, t) = e.get(db.district, &k_d(w, d), t).into_parts();
    let drow = drow.expect("district loaded");
    let t = e.put(
        db.district,
        &k_d(w, d),
        &district_row(district_next_o_id(&drow), district_ytd(&drow) + amount as u64),
        t,
    );
    let (crow, t) = e.get(db.customer, &k_c(w, d, c), t).into_parts();
    let crow = crow.expect("customer loaded");
    let t = e.put(db.customer, &k_c(w, d, c), &customer_row(customer_balance(&crow) - amount), t);
    db.next_h_id += 1;
    let t = e.put(db.history, &db.next_h_id.to_be_bytes(), &row(&amount.to_le_bytes(), 24), t);
    e.commit(t)
}

fn order_status<D: BlockDevice, L: BlockDevice, R: Rng>(
    e: &mut Engine<D, L>,
    db: &mut TpccDb,
    spec: &TpccSpec,
    r: &mut R,
    now: Nanos,
) -> Nanos {
    let w = r.gen_range(0..spec.warehouses);
    let d = r.gen_range(0..spec.districts);
    let c = r.gen_range(0..spec.customers);
    let (_, t) = e.get(db.customer, &k_c(w, d, c), now).into_parts();
    // Latest order of the district, then its lines.
    let (drow, t) = e.get(db.district, &k_d(w, d), t).into_parts();
    let next = drow.map(|x| district_next_o_id(&x)).unwrap_or(1);
    if next <= 1 {
        return t;
    }
    let o = next - 1;
    let (_, t) = e.get(db.orders, &k_o(w, d, o), t).into_parts();
    let (_, t) = e.scan(db.order_line, &k_ol(w, d, o, 0), 15, t).into_parts();
    t
}

fn delivery<D: BlockDevice, L: BlockDevice, R: Rng>(
    e: &mut Engine<D, L>,
    db: &mut TpccDb,
    spec: &TpccSpec,
    r: &mut R,
    now: Nanos,
) -> Nanos {
    let w = r.gen_range(0..spec.warehouses);
    let mut t = now;
    for d in 0..spec.districts {
        // Oldest undelivered order in the district.
        let (rows, t2) = e.scan(db.new_order, &k_o(w, d, 0), 1, t).into_parts();
        t = t2;
        let Some((key, _)) = rows.into_iter().next() else { continue };
        if key.len() != 12 || key[..8] != k_d(w, d)[..] {
            continue; // scan ran past the district
        }
        let (_, t2) = e.delete(db.new_order, &key, t).into_parts();
        t = t2;
        let (orow, t2) = e.get(db.orders, &key, t).into_parts();
        t = t2;
        if let Some(mut orow) = orow {
            if orow.len() > 5 {
                orow[5] = 1; // carrier assigned
            }
            t = e.put(db.orders, &key, &orow, t);
        }
        let c = r.gen_range(0..spec.customers);
        let (crow, t2) = e.get(db.customer, &k_c(w, d, c), t).into_parts();
        t = t2;
        if let Some(crow) = crow {
            t = e.put(db.customer, &k_c(w, d, c), &customer_row(customer_balance(&crow) + 10), t);
        }
    }
    e.commit(t)
}

fn stock_level<D: BlockDevice, L: BlockDevice, R: Rng>(
    e: &mut Engine<D, L>,
    db: &mut TpccDb,
    spec: &TpccSpec,
    r: &mut R,
    now: Nanos,
) -> Nanos {
    let w = r.gen_range(0..spec.warehouses);
    let d = r.gen_range(0..spec.districts);
    let threshold = r.gen_range(10..=20);
    let (drow, t) = e.get(db.district, &k_d(w, d), now).into_parts();
    let next = drow.map(|x| district_next_o_id(&x)).unwrap_or(1);
    let from = next.saturating_sub(20).max(1);
    let (lines, mut t) = e.scan(db.order_line, &k_ol(w, d, from, 0), 100, t).into_parts();
    let mut checked = 0;
    for (k, v) in lines {
        if k.len() != 16 || k[..8] != k_d(w, d)[..] {
            break;
        }
        let item = u32::from_le_bytes(v[..4].try_into().unwrap_or_default());
        let (srow, t2) = e.get(db.stock, &k_s(w, item % spec.items), t).into_parts();
        t = t2;
        if let Some(srow) = srow {
            if stock_qty(&srow) < threshold {
                checked += 1;
            }
        }
    }
    let _ = checked;
    t
}

/// Run the benchmark and report tpmC.
pub fn run<D: BlockDevice, L: BlockDevice>(
    engine: &mut Engine<D, L>,
    db: &mut TpccDb,
    spec: &TpccSpec,
    start: Nanos,
) -> TpccReport {
    let mut rngs: Vec<_> = (0..spec.clients).map(|c| rng(spec.seed ^ ((c as u64) << 17))).collect();
    let mut counts = TpccReportCounts::default();
    let mut cpu = CpuModel::new(spec.cores, spec.cpu_per_txn);
    let mut driver = ClosedLoop::new(spec.clients, start);
    let txn = |e: &mut Engine<D, L>,
               db: &mut TpccDb,
               counts: Option<&mut TpccReportCounts>,
               r: &mut simkit::dist::SimRng,
               now: Nanos| {
        let x = r.gen_range(0..100u32);
        let (done, kind) = if x < 45 {
            (new_order(e, db, spec, r, now), 0)
        } else if x < 88 {
            (payment(e, db, spec, r, now), 1)
        } else if x < 92 {
            (order_status(e, db, spec, r, now), 2)
        } else if x < 96 {
            (delivery(e, db, spec, r, now), 3)
        } else {
            (stock_level(e, db, spec, r, now), 4)
        };
        if let Some(c) = counts {
            match kind {
                0 => c.new_orders += 1,
                1 => c.payments += 1,
                2 => c.order_status += 1,
                3 => c.deliveries += 1,
                _ => c.stock_levels += 1,
            }
        }
        if e.needs_checkpoint() {
            e.checkpoint(done)
        } else {
            done
        }
    };
    driver.warmup(spec.warmup_txns, |client, now| {
        let mut r = rngs[client].clone();
        let t0 = cpu.charge(now);
        let t = txn(engine, db, None, &mut r, t0);
        rngs[client] = r;
        t
    });
    engine.reset_pool_stats();
    let rep = driver.run(spec.txns, |client, now| {
        let mut r = rngs[client].clone();
        let t0 = cpu.charge(now);
        let t = txn(engine, db, Some(&mut counts), &mut r, t0);
        rngs[client] = r;
        t
    });
    let elapsed = rep.elapsed();
    let minutes = elapsed as f64 / (60.0 * SECS as f64);
    TpccReport {
        counts,
        elapsed,
        finished_at: rep.finished_at,
        tpmc: if minutes > 0.0 { counts.new_orders as f64 / minutes } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::EngineConfig;
    use storage::testdev::MemDevice;

    fn engine() -> Engine<MemDevice, MemDevice> {
        let cfg = EngineConfig {
            data_pages: 32 * 1024,
            buffer_pool_bytes: 512 * 4096,
            log_file_blocks: 4096,
            ..EngineConfig::mysql_like(4096)
        };
        Engine::create(MemDevice::new(160 * 1024), MemDevice::new(32 * 1024), cfg, 0).value
    }

    fn tiny_spec() -> TpccSpec {
        TpccSpec {
            warehouses: 2,
            districts: 3,
            customers: 20,
            items: 50,
            clients: 4,
            warmup_txns: 10,
            txns: 120,
            seed: 42,
            cores: 8,
            cpu_per_txn: 100_000,
        }
    }

    #[test]
    fn load_and_run_counts_transactions() {
        let mut e = engine();
        let spec = tiny_spec();
        let (mut db, t) = load(&mut e, &spec, 0);
        let rep = run(&mut e, &mut db, &spec, t);
        let total = rep.counts.new_orders
            + rep.counts.payments
            + rep.counts.order_status
            + rep.counts.deliveries
            + rep.counts.stock_levels;
        assert_eq!(total, 120);
        assert!(rep.counts.new_orders > 30, "mix ~45% new-order: {:?}", rep.counts);
        assert!(rep.counts.payments > 30);
        assert!(rep.tpmc > 0.0);
    }

    #[test]
    fn new_order_advances_district_counter() {
        let mut e = engine();
        let spec = tiny_spec();
        let (mut db, t) = load(&mut e, &spec, 0);
        let mut r = rng(1);
        let mut t = t;
        for _ in 0..5 {
            t = new_order(&mut e, &mut db, &spec, &mut r, t);
        }
        // Some district's next_o_id grew beyond 1.
        let mut grew = false;
        for w in 0..spec.warehouses {
            for d in 0..spec.districts {
                let (row, t2) = e.get(db.district, &k_d(w, d), t).into_parts();
                t = t2;
                if district_next_o_id(&row.unwrap()) > 1 {
                    grew = true;
                }
            }
        }
        assert!(grew);
    }

    #[test]
    fn payment_moves_money() {
        let mut e = engine();
        let spec = tiny_spec();
        let (mut db, t) = load(&mut e, &spec, 0);
        let mut r = rng(2);
        let t = payment(&mut e, &mut db, &spec, &mut r, t);
        let mut total_ytd = 0u64;
        let mut t = t;
        for w in 0..spec.warehouses {
            let (row, t2) = e.get(db.warehouse, &k_w(w), t).into_parts();
            t = t2;
            total_ytd += warehouse_ytd(&row.unwrap());
        }
        assert!(total_ytd > 0, "payment must add to some warehouse YTD");
    }

    #[test]
    fn delivery_consumes_new_orders() {
        let mut e = engine();
        let spec = tiny_spec();
        let (mut db, t) = load(&mut e, &spec, 0);
        let mut r = rng(3);
        let mut t = t;
        for _ in 0..6 {
            t = new_order(&mut e, &mut db, &spec, &mut r, t);
        }
        let (before, t2) = e.scan(db.new_order, &[], 1000, t).into_parts();
        // Deliver from every warehouse (random w inside, run a few times).
        let mut t = t2;
        for _ in 0..6 {
            t = delivery(&mut e, &mut db, &spec, &mut r, t);
        }
        let (after, _) = e.scan(db.new_order, &[], 1000, t).into_parts();
        assert!(after.len() < before.len(), "{} -> {}", before.len(), after.len());
    }
}

//! Host CPU model for the database drivers.
//!
//! The paper's host is a 32-core Xeon; at the throughput levels of Fig. 5 a
//! MySQL operation costs roughly a core-millisecond of software time
//! (parsing, handler calls, latching), which is what bounds the OFF/OFF
//! configurations. The simulated engines execute in zero virtual time, so
//! the drivers charge an explicit per-operation CPU cost against a pool of
//! cores. Without this, barrier-free configurations run unboundedly fast
//! and the paper's crossovers disappear.

use simkit::{MultiServer, Nanos};

/// A pool of CPU cores with a fixed per-operation software cost.
pub struct CpuModel {
    cores: MultiServer,
    per_op: Nanos,
}

impl CpuModel {
    /// `cores` cores, `per_op` nanoseconds of software time per operation.
    pub fn new(cores: usize, per_op: Nanos) -> Self {
        Self { cores: MultiServer::new(cores), per_op }
    }

    /// Charge one operation's software time starting at `now`; returns when
    /// the CPU work completes (I/O then starts).
    pub fn charge(&mut self, now: Nanos) -> Nanos {
        if self.per_op == 0 {
            return now;
        }
        self.cores.acquire(now, self.per_op)
    }

    /// The configured per-operation cost.
    pub fn per_op(&self) -> Nanos {
        self.per_op
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cores_bound_throughput() {
        let mut cpu = CpuModel::new(2, 100);
        // Four simultaneous ops on two cores: two waves.
        let mut dones: Vec<Nanos> = (0..4).map(|_| cpu.charge(0)).collect();
        dones.sort_unstable();
        assert_eq!(dones, vec![100, 100, 200, 200]);
    }

    #[test]
    fn zero_cost_is_free() {
        let mut cpu = CpuModel::new(1, 0);
        assert_eq!(cpu.charge(77), 77);
    }
}

//! Workload generators and closed-loop drivers for every benchmark in the
//! paper's evaluation:
//!
//! * [`fio`] — the raw-device micro-benchmark behind Tables 1 and 2
//!   (random reads/writes, page-size and fsync-frequency sweeps).
//! * [`linkbench`] — the Facebook social-graph benchmark behind Fig. 5,
//!   Fig. 6 and Table 3, running on the `relstore` engine.
//! * [`ycsb`] — YCSB workload-A behind Table 5, running on `docstore`.
//! * [`tpcc`] — the TPC-C benchmark behind Table 4, running on `relstore`
//!   in its commercial-DBMS configuration.

pub mod cpu;
pub mod fio;
pub mod linkbench;
pub mod tpcc;
pub mod ycsb;

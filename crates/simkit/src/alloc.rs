//! A counting wrapper around the system allocator.
//!
//! The perf harness and the zero-allocation regression tests both need to
//! know how many heap allocations a stretch of code performed. Rust allows
//! exactly one `#[global_allocator]` per binary, so this module only
//! *defines* the wrapper; each binary that wants counting registers it
//! itself:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: simkit::alloc::CountingAlloc = simkit::alloc::CountingAlloc::new();
//! ```
//!
//! Counters are global `AtomicU64`s with relaxed ordering — cheap enough to
//! leave on permanently (one uncontended atomic add per malloc), and exact
//! for the single-threaded simulations this repo runs.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// System-allocator wrapper that counts every allocation.
///
/// Register with `#[global_allocator]` in binaries that measure allocator
/// traffic; the counter accessors below work (returning zeros) even when it
/// is not registered, so library code can call them unconditionally.
pub struct CountingAlloc;

impl CountingAlloc {
    /// A new wrapper (const so it can be a `static`).
    #[allow(clippy::new_without_default)]
    pub const fn new() -> Self {
        CountingAlloc
    }
}

// SAFETY: defers all allocation to `System`; only adds relaxed counter
// increments, which cannot violate the GlobalAlloc contract.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc is morally an alloc (it may move and always costs a
        // trip through the allocator), so count it as one.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Total heap allocations since process start (0 if the wrapper is not the
/// registered global allocator).
pub fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Total heap deallocations since process start.
pub fn dealloc_count() -> u64 {
    DEALLOCS.load(Ordering::Relaxed)
}

/// Total bytes requested from the allocator since process start.
pub fn alloc_bytes() -> u64 {
    BYTES.load(Ordering::Relaxed)
}

/// Allocation-count delta across a closure: `(result, allocations)`.
///
/// The measurement brackets exactly the closure body; the closure's return
/// value is produced *inside* the bracket, so returning a heap value counts
/// its allocation (return `()` or a scalar for a pure measurement).
pub fn count_allocs<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = alloc_count();
    let out = f();
    (out, alloc_count() - before)
}

/// Peak resident set size of this process in bytes, read from
/// `/proc/self/status` (`VmHWM`). Returns 0 on platforms without procfs.
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: the wrapper is not registered as the global allocator in the
    // library test binary, so the counters stay at zero here; the real
    // counting behaviour is exercised by the root `zero_alloc` integration
    // test and the `perf` bench bin, which do register it.
    #[test]
    fn counters_are_monotone_and_safe_to_read() {
        let a = alloc_count();
        let d = dealloc_count();
        let b = alloc_bytes();
        let v: Vec<u8> = vec![0u8; 4096];
        drop(v);
        assert!(alloc_count() >= a);
        assert!(dealloc_count() >= d);
        assert!(alloc_bytes() >= b);
    }

    #[test]
    fn count_allocs_brackets_closure() {
        let ((), n) = count_allocs(|| {
            let _ = 1 + 1;
        });
        // Not registered ⇒ no counting; registered ⇒ an empty closure still
        // performs zero allocations. Either way this is 0.
        assert_eq!(n, 0);
    }

    #[test]
    fn rss_reads_without_panicking() {
        // On Linux this is nonzero; elsewhere it degrades to 0.
        let _ = peak_rss_bytes();
    }
}

//! [`Timed<T>`] — a value paired with the virtual time it became available.
//!
//! Every layer of the simulation returns "result + completion time". Tuples
//! `(T, Nanos)` worked but read poorly at call sites (`r.1`, `r.0`) and made
//! it too easy to swap the fields when both were integers. `Timed<T>` names
//! the two halves and provides the small combinator set the engines need.

use crate::clock::Nanos;

/// A value that became available at virtual time `done`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timed<T> {
    /// The result of the operation.
    pub value: T,
    /// Virtual time at which the operation completed.
    pub done: Nanos,
}

impl<T> Timed<T> {
    /// Pair `value` with its completion time.
    pub fn new(value: T, done: Nanos) -> Self {
        Self { value, done }
    }

    /// Discard the timestamp, keeping the value.
    pub fn into_inner(self) -> T {
        self.value
    }

    /// Transform the value, keeping the timestamp.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Timed<U> {
        Timed { value: f(self.value), done: self.done }
    }

    /// Split into `(value, done)` — the old tuple shape, for destructuring.
    pub fn into_parts(self) -> (T, Nanos) {
        (self.value, self.done)
    }

    /// Borrow the value.
    pub fn as_ref(&self) -> Timed<&T> {
        Timed { value: &self.value, done: self.done }
    }
}

impl<T> From<(T, Nanos)> for Timed<T> {
    fn from((value, done): (T, Nanos)) -> Self {
        Self { value, done }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let t = Timed::new(41, 7);
        assert_eq!(t.value, 41);
        assert_eq!(t.done, 7);
        assert_eq!(t.map(|v| v + 1).value, 42);
        assert_eq!(t.into_inner(), 41);
    }

    #[test]
    fn parts_round_trip() {
        let t: Timed<&str> = ("x", 9).into();
        assert_eq!(t.into_parts(), ("x", 9));
    }

    #[test]
    fn as_ref_borrows() {
        let t = Timed::new(String::from("v"), 3);
        assert_eq!(t.as_ref().value, "v");
        assert_eq!(t.as_ref().done, 3);
        assert_eq!(t.done, 3);
    }
}

//! Self-contained deterministic pseudo-random number generation.
//!
//! The simulation must build offline, so instead of the `rand` crate this
//! module provides a small xoshiro256**-based generator seeded through
//! SplitMix64, together with an [`Rng`] trait mirroring the subset of the
//! `rand::Rng` API the workload generators actually use (`gen`, `gen_range`,
//! `gen_bool`).
//!
//! Everything here is deterministic under a fixed seed, which is what the
//! benchmarks need: two runs with the same seed replay the exact same
//! operation stream in virtual time.

/// Uniform sampling support for `gen_range`-style range arguments.
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Types that can be drawn uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw a value from the generator's natural distribution for this type
    /// (uniform over the domain; `[0, 1)` for floats).
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// Minimal random-number-generator trait (API-compatible subset of
/// `rand::Rng` for the call sites in this repository).
pub trait Rng {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Draw a value of type `T` (`u64`, `u32`, `f64` in `[0,1)`, `bool`, ...).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Uniform sample from a `start..end` or `start..=end` range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p` in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::draw(self) < p
    }
}

impl Standard for u64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for u16 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for bool {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! impl_unsigned_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_unsigned_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_signed_range!(i32, i64);

/// xoshiro256** generator — fast, tiny state, excellent statistical quality
/// for simulation workloads (not cryptographic).
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Seed via SplitMix64 so nearby integer seeds give unrelated streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = move || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self { s: [next(), next(), next(), next()] }
    }
}

impl Rng for SimRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(1);
        let mut c = SimRng::seed_from_u64(2);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SimRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(5u32..=7);
            assert!((5..=7).contains(&w));
            let s = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&s));
        }
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = SimRng::seed_from_u64(9);
        let mut sum = 0.0;
        const N: usize = 20_000;
        for _ in 0..N {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / N as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SimRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        let mut r = SimRng::seed_from_u64(5);
        let _ = r.gen_range(5u32..5);
    }
}

//! Virtual time representation.
//!
//! Every component in the simulation exchanges timestamps as plain
//! nanosecond counts ([`Nanos`]). There is deliberately no global mutable
//! clock: a component receives "now" as an argument and returns the virtual
//! time at which its operation completes, which keeps every model a pure
//! state machine and makes the whole stack trivially deterministic.

/// Virtual time in nanoseconds since the start of a simulation run.
pub type Nanos = u64;

/// One microsecond in [`Nanos`].
pub const MICROS: Nanos = 1_000;
/// One millisecond in [`Nanos`].
pub const MILLIS: Nanos = 1_000_000;
/// One second in [`Nanos`].
pub const SECS: Nanos = 1_000_000_000;

/// Convert a microsecond count to [`Nanos`].
#[inline]
pub const fn us(v: u64) -> Nanos {
    v * MICROS
}

/// Convert a millisecond count to [`Nanos`].
#[inline]
pub const fn ms(v: u64) -> Nanos {
    v * MILLIS
}

/// Convert a second count to [`Nanos`].
#[inline]
pub const fn secs(v: u64) -> Nanos {
    v * SECS
}

/// Render a duration human-readably (for report binaries).
pub fn fmt_dur(n: Nanos) -> String {
    if n >= SECS {
        format!("{:.3}s", n as f64 / SECS as f64)
    } else if n >= MILLIS {
        format!("{:.3}ms", n as f64 / MILLIS as f64)
    } else if n >= MICROS {
        format!("{:.3}us", n as f64 / MICROS as f64)
    } else {
        format!("{n}ns")
    }
}

/// Events (operations) per virtual second, given a count and an elapsed
/// virtual duration. Returns 0.0 for an empty interval.
pub fn per_sec(count: u64, elapsed: Nanos) -> f64 {
    if elapsed == 0 {
        return 0.0;
    }
    count as f64 * SECS as f64 / elapsed as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        assert_eq!(us(3), 3_000);
        assert_eq!(ms(3), 3_000_000);
        assert_eq!(secs(3), 3_000_000_000);
    }

    #[test]
    fn formats_each_scale() {
        assert_eq!(fmt_dur(12), "12ns");
        assert_eq!(fmt_dur(us(12)), "12.000us");
        assert_eq!(fmt_dur(ms(12)), "12.000ms");
        assert_eq!(fmt_dur(secs(2) + MILLIS * 500), "2.500s");
    }

    #[test]
    fn rate_computation() {
        assert_eq!(per_sec(100, SECS), 100.0);
        assert_eq!(per_sec(100, SECS / 2), 200.0);
        assert_eq!(per_sec(100, 0), 0.0);
    }
}

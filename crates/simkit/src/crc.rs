//! CRC-32 (IEEE, reflected) for torn-write detection in log records and
//! append-only store headers.

/// Lazily built 256-entry table for the reflected IEEE polynomial.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB88320 ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        t
    })
}

/// CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![7u8; 64];
        let a = crc32(&data);
        data[20] ^= 0x10;
        assert_ne!(a, crc32(&data));
    }
}

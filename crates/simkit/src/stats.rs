//! Latency and counter statistics.
//!
//! [`LatencyStats`] keeps every sample (the experiments here run at most a
//! few million operations per cell, so exact percentiles are affordable and
//! simpler to reason about than a sketch). [`Summary`] is the paper's Table 3
//! row shape: mean / P25 / P50 / P75 / P99 / max.

use crate::clock::Nanos;

/// Exact-sample latency collector.
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    samples: Vec<Nanos>,
    sorted: bool,
}

impl LatencyStats {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one latency sample.
    pub fn record(&mut self, v: Nanos) {
        self.samples.push(v);
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Merge another collector's samples into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// The `p`-th percentile (0.0..=100.0) using nearest-rank. Returns 0 when
    /// empty.
    pub fn percentile(&mut self, p: f64) -> Nanos {
        if self.samples.is_empty() {
            return 0;
        }
        self.ensure_sorted();
        let n = self.samples.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        self.samples[rank.clamp(1, n) - 1]
    }

    /// Arithmetic mean. Returns 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|&v| v as f64).sum::<f64>() / self.samples.len() as f64
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> Nanos {
        self.samples.iter().copied().max().unwrap_or(0)
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> Nanos {
        self.samples.iter().copied().min().unwrap_or(0)
    }

    /// Produce the Table 3 row shape.
    pub fn summary(&mut self) -> Summary {
        Summary {
            count: self.len() as u64,
            mean: self.mean(),
            p25: self.percentile(25.0),
            p50: self.percentile(50.0),
            p75: self.percentile(75.0),
            p99: self.percentile(99.0),
            max: self.max(),
        }
    }
}

/// Latency distribution summary: the row shape of the paper's Table 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: u64,
    /// Mean latency in nanoseconds.
    pub mean: f64,
    /// 25th percentile.
    pub p25: Nanos,
    /// Median.
    pub p50: Nanos,
    /// 75th percentile.
    pub p75: Nanos,
    /// 99th percentile.
    pub p99: Nanos,
    /// Maximum.
    pub max: Nanos,
}

impl Summary {
    /// Format the summary in milliseconds, like the paper's Table 3.
    pub fn fmt_ms(&self) -> String {
        const MS: f64 = 1_000_000.0;
        format!(
            "mean {:>8.1} | p25 {:>8.1} | p50 {:>8.1} | p75 {:>8.1} | p99 {:>8.1} | max {:>9.1}",
            self.mean / MS,
            self.p25 as f64 / MS,
            self.p50 as f64 / MS,
            self.p75 as f64 / MS,
            self.p99 as f64 / MS,
            self.max as f64 / MS,
        )
    }
}

/// A simple monotonic event counter with a name, for device statistics.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Add `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value
    }

    /// Reset to zero.
    pub fn reset(&mut self) {
        self.value = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let mut s = LatencyStats::new();
        for v in 1..=100 {
            s.record(v);
        }
        assert_eq!(s.percentile(50.0), 50);
        assert_eq!(s.percentile(99.0), 99);
        assert_eq!(s.percentile(100.0), 100);
        assert_eq!(s.percentile(1.0), 1);
        assert_eq!(s.min(), 1);
        assert_eq!(s.max(), 100);
        assert!((s.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_zero() {
        let mut s = LatencyStats::new();
        assert_eq!(s.percentile(50.0), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn single_sample() {
        let mut s = LatencyStats::new();
        s.record(42);
        assert_eq!(s.percentile(0.1), 42);
        assert_eq!(s.percentile(99.9), 42);
        let sum = s.summary();
        assert_eq!(sum.count, 1);
        assert_eq!(sum.p50, 42);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = LatencyStats::new();
        let mut b = LatencyStats::new();
        a.record(1);
        b.record(3);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.max(), 3);
    }

    #[test]
    fn counter_ops() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn summary_formats_in_ms() {
        let mut s = LatencyStats::new();
        s.record(1_500_000); // 1.5ms
        s.record(2_500_000);
        let line = s.summary().fmt_ms();
        assert!(line.contains("mean"), "{line}");
        assert!(line.contains("2.5"), "{line}");
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut s = LatencyStats::new();
        for v in [5u64, 1, 9, 3, 7, 2, 8, 4, 6] {
            s.record(v * 1000);
        }
        let sum = s.summary();
        assert!(sum.p25 <= sum.p50 && sum.p50 <= sum.p75 && sum.p75 <= sum.p99);
        assert!(sum.p99 <= sum.max);
    }
}

//! Closed-loop multi-client simulation driver.
//!
//! The paper's benchmarks (fio with N jobs, LinkBench with 128 client
//! threads, a single-threaded YCSB loader) are all *closed loops*: each
//! client issues its next operation as soon as the previous one completes.
//!
//! [`ClosedLoop`] reproduces that in virtual time. Each client carries its
//! own clock; the driver keeps clients in a min-heap keyed by clock and
//! always advances the globally-earliest one, so all mutations of shared
//! state (devices, buffer pools) happen in virtual-time order — a
//! conservative discrete-event simulation without explicit events.

use crate::clock::{per_sec, Nanos};
use crate::stats::LatencyStats;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Outcome of a closed-loop run.
#[derive(Debug, Clone)]
pub struct DriverReport {
    /// Total operations completed.
    pub ops: u64,
    /// Virtual time at which the measured phase started.
    pub started_at: Nanos,
    /// Virtual time of the last completion.
    pub finished_at: Nanos,
    /// Per-operation latency samples.
    pub latency: LatencyStats,
}

impl DriverReport {
    /// Elapsed virtual time of the measured phase.
    pub fn elapsed(&self) -> Nanos {
        self.finished_at.saturating_sub(self.started_at)
    }

    /// Operations per virtual second.
    pub fn throughput(&self) -> f64 {
        per_sec(self.ops, self.elapsed())
    }
}

/// Closed-loop driver over `clients` logical clients.
pub struct ClosedLoop {
    heap: BinaryHeap<Reverse<(Nanos, usize)>>,
    clients: usize,
}

impl ClosedLoop {
    /// Create a driver with `clients` clients all starting at `start`.
    pub fn new(clients: usize, start: Nanos) -> Self {
        assert!(clients > 0, "need at least one client");
        let mut heap = BinaryHeap::with_capacity(clients);
        for id in 0..clients {
            heap.push(Reverse((start, id)));
        }
        Self { heap, clients }
    }

    /// Number of clients.
    pub fn clients(&self) -> usize {
        self.clients
    }

    /// Run until `total_ops` operations have completed.
    ///
    /// `op` is called as `op(client_id, now)` and must return the virtual
    /// time at which that client's operation completes (≥ `now`). The
    /// returned report covers all `total_ops` operations.
    pub fn run<F>(&mut self, total_ops: u64, mut op: F) -> DriverReport
    where
        F: FnMut(usize, Nanos) -> Nanos,
    {
        let started_at = self.heap.peek().map(|Reverse((t, _))| *t).unwrap_or(0);
        let mut latency = LatencyStats::new();
        let mut finished_at = started_at;
        for _ in 0..total_ops {
            let Reverse((now, id)) = self.heap.pop().expect("heap never empties");
            let done = op(id, now);
            debug_assert!(done >= now, "operation completed before it started");
            latency.record(done - now);
            finished_at = finished_at.max(done);
            self.heap.push(Reverse((done, id)));
        }
        DriverReport { ops: total_ops, started_at, finished_at, latency }
    }

    /// Run a warm-up phase of `ops` operations whose latencies are discarded,
    /// leaving the clients' clocks advanced.
    pub fn warmup<F>(&mut self, ops: u64, op: F)
    where
        F: FnMut(usize, Nanos) -> Nanos,
    {
        let _ = self.run(ops, op);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_client_sequential() {
        let mut d = ClosedLoop::new(1, 0);
        let rep = d.run(10, |_, now| now + 100);
        assert_eq!(rep.ops, 10);
        assert_eq!(rep.finished_at, 1000);
        assert_eq!(rep.throughput(), 1e7);
    }

    #[test]
    fn clients_advance_in_time_order() {
        // Two clients sharing a single-server resource: total time is the
        // sum of all service times, and the order of arrivals is by clock.
        let mut d = ClosedLoop::new(2, 0);
        let mut server = crate::resource::Timeline::new();
        let rep = d.run(10, |_, now| server.acquire(now, 50));
        assert_eq!(rep.finished_at, 500);
        // Each op waits for the queue: mean latency exceeds service time.
        assert!(rep.latency.mean() >= 50.0);
    }

    #[test]
    fn parallel_resource_scales() {
        let mut d = ClosedLoop::new(4, 0);
        let mut pool = crate::resource::MultiServer::new(4);
        let rep = d.run(40, |_, now| pool.acquire(now, 100));
        // 4 clients on 4 servers: perfect overlap, 10 rounds of 100.
        assert_eq!(rep.finished_at, 1000);
    }

    #[test]
    fn warmup_advances_clocks() {
        let mut d = ClosedLoop::new(1, 0);
        d.warmup(5, |_, now| now + 10);
        let rep = d.run(1, |_, now| now + 10);
        assert_eq!(rep.started_at, 50);
        assert_eq!(rep.finished_at, 60);
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn zero_clients_rejected() {
        ClosedLoop::new(0, 0);
    }

    #[test]
    fn report_metrics_are_consistent() {
        let mut d = ClosedLoop::new(3, 1000);
        let rep = d.run(9, |_, now| now + 50);
        assert_eq!(rep.started_at, 1000);
        assert_eq!(rep.ops, 9);
        assert_eq!(rep.elapsed(), rep.finished_at - rep.started_at);
        assert_eq!(rep.latency.len(), 9);
        assert_eq!(rep.latency.max(), 50);
    }

    #[test]
    fn interleaving_is_deterministic() {
        let order = || {
            let mut d = ClosedLoop::new(4, 0);
            let mut seen = Vec::new();
            d.run(16, |c, now| {
                seen.push(c);
                now + (c as u64 + 1) * 10
            });
            seen
        };
        assert_eq!(order(), order());
    }
}

//! Resource timelines: the building block of the device models.
//!
//! A [`Timeline`] models a single server (a disk arm, a NAND plane, a SATA
//! link). Because the closed-loop driver interleaves many clients, requests
//! reach a resource *out of order in virtual time* (client A may schedule
//! work at `t+2ms` before client B asks for the same resource at `t+1µs`).
//! A naive `busy_until` cursor would make B queue behind A's future work —
//! a phantom queue that throttles the whole simulation. The timeline is
//! therefore **work-conserving**: it keeps the set of busy intervals and
//! backfills a request into the earliest gap that fits at or after its
//! arrival.
//!
//! A [`MultiServer`] models a pool of `k` identical servers where a request
//! takes the earliest-fitting server.

use crate::clock::Nanos;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// How far in the past intervals are retained. Arrivals may precede the
/// newest seen arrival by at most the longest in-flight operation; 10s of
/// virtual slack is far beyond anything the device models schedule.
const PURGE_HORIZON: Nanos = 10_000_000_000;

/// A single-server resource with gap backfill.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// Sorted, disjoint busy intervals `(start, end)`.
    intervals: VecDeque<(Nanos, Nanos)>,
    /// Total busy time accumulated, for utilisation reporting.
    busy_time: Nanos,
    /// Latest arrival observed (purge watermark).
    max_arrival: Nanos,
}

impl Timeline {
    /// Create an idle timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserve the server for `service` time for a request arriving at
    /// `now`: the earliest gap that fits, never before `now`. Returns the
    /// completion time.
    pub fn acquire(&mut self, now: Nanos, service: Nanos) -> Nanos {
        self.max_arrival = self.max_arrival.max(now);
        // Drop ancient intervals.
        let horizon = self.max_arrival.saturating_sub(PURGE_HORIZON);
        while let Some(&(_, e)) = self.intervals.front() {
            if e < horizon {
                self.intervals.pop_front();
            } else {
                break;
            }
        }
        self.busy_time += service;
        if service == 0 {
            return now;
        }
        // Find the earliest gap of length `service` at or after `now`.
        //
        // Intervals ending at or before `now` cannot influence the
        // placement; the deque is sorted and disjoint, so they form a
        // prefix that a binary search skips in O(log n). Only the (usually
        // tiny) suffix of still-relevant intervals is walked — without the
        // skip, a busy resource retaining a full purge window of history
        // pays a linear scan on every request, which dominated the bench
        // wall clock.
        let mut start = now;
        let skip = self.intervals.partition_point(|&(_, e)| e <= start);
        let mut pos = self.intervals.len();
        for i in skip..self.intervals.len() {
            let (s, e) = self.intervals[i];
            if s >= start + service {
                // Gap before this interval fits.
                pos = i;
                break;
            }
            start = e;
        }
        let end = start + service;
        // Insert (start, end) at `pos`, merging with neighbours that touch.
        if pos < self.intervals.len() {
            self.intervals.insert(pos, (start, end));
        } else {
            self.intervals.push_back((start, end));
        }
        self.coalesce_around(pos);
        end
    }

    fn coalesce_around(&mut self, pos: usize) {
        // Merge with previous neighbour.
        let mut i = pos;
        if i > 0 && self.intervals[i - 1].1 >= self.intervals[i].0 {
            let (s0, e0) = self.intervals[i - 1];
            let (_, e1) = self.intervals[i];
            self.intervals[i - 1] = (s0, e0.max(e1));
            self.intervals.remove(i);
            i -= 1;
        }
        // Merge with next neighbour.
        if i + 1 < self.intervals.len() && self.intervals[i].1 >= self.intervals[i + 1].0 {
            let (s0, e0) = self.intervals[i];
            let (_, e1) = self.intervals[i + 1];
            self.intervals[i] = (s0, e0.max(e1));
            self.intervals.remove(i + 1);
        }
    }

    /// The time at which all currently queued work is done.
    pub fn busy_until(&self) -> Nanos {
        self.intervals.back().map(|&(_, e)| e).unwrap_or(0)
    }

    /// Total service time this resource has performed.
    pub fn busy_time(&self) -> Nanos {
        self.busy_time
    }

    /// Nanoseconds of already-accepted work still pending at virtual time
    /// `t` — the queue backlog a command arriving now would wait behind
    /// (plus its own service). Zero when the resource is idle at `t`.
    pub fn backlog_at(&self, t: Nanos) -> Nanos {
        self.busy_until().saturating_sub(t)
    }

    /// Number of disjoint busy intervals still open at or after `t` — a
    /// lower bound on the commands outstanding (contiguous commands
    /// coalesce into one interval), used as a cheap occupancy gauge.
    pub fn intervals_after(&self, t: Nanos) -> usize {
        let cut = self.intervals.partition_point(|&(_, e)| e <= t);
        self.intervals.len() - cut
    }

    /// Drop intervals that end at or before `t`: no future request will
    /// arrive earlier (the caller's arrival watermark). Keeps the interval
    /// list proportional to in-flight work.
    pub fn purge_before(&mut self, t: Nanos) {
        while let Some(&(_, e)) = self.intervals.front() {
            if e <= t {
                self.intervals.pop_front();
            } else {
                break;
            }
        }
    }

    /// Forget any queued work (used when a power cut wipes device state).
    pub fn reset(&mut self) {
        self.intervals.clear();
        self.busy_time = 0;
        self.max_arrival = 0;
    }
}

/// A pool of `k` identical servers; each request is dispatched to the
/// server that can complete it earliest (approximated by earliest-free).
#[derive(Debug, Clone)]
pub struct MultiServer {
    free_at: BinaryHeap<Reverse<Nanos>>,
    servers: usize,
    busy_time: Nanos,
}

impl MultiServer {
    /// Create a pool with `servers` identical servers, all idle.
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "a server pool needs at least one server");
        let mut free_at = BinaryHeap::with_capacity(servers);
        for _ in 0..servers {
            free_at.push(Reverse(0));
        }
        Self { free_at, servers, busy_time: 0 }
    }

    /// Number of servers in the pool.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Dispatch a request arriving at `now` with the given `service` time to
    /// the earliest-free server; returns the completion time.
    pub fn acquire(&mut self, now: Nanos, service: Nanos) -> Nanos {
        let Reverse(free) = self.free_at.pop().expect("pool is never empty");
        let start = free.max(now);
        let done = start + service;
        self.free_at.push(Reverse(done));
        self.busy_time += service;
        done
    }

    /// The earliest time at which any server is free.
    pub fn earliest_free(&self) -> Nanos {
        self.free_at.peek().map(|Reverse(t)| *t).unwrap_or(0)
    }

    /// The time at which *all* servers are free (i.e. all queued work done).
    pub fn all_free(&self) -> Nanos {
        self.free_at.iter().map(|Reverse(t)| *t).max().unwrap_or(0)
    }

    /// Total service time performed across the pool.
    pub fn busy_time(&self) -> Nanos {
        self.busy_time
    }

    /// Drop all queued work and return every server to idle.
    pub fn reset(&mut self) {
        self.free_at.clear();
        for _ in 0..self.servers {
            self.free_at.push(Reverse(0));
        }
        self.busy_time = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_serialises_requests() {
        let mut t = Timeline::new();
        assert_eq!(t.acquire(0, 10), 10);
        // Arrives while busy: queued behind.
        assert_eq!(t.acquire(5, 10), 20);
        // Arrives after idle period: starts immediately.
        assert_eq!(t.acquire(100, 10), 110);
        assert_eq!(t.busy_time(), 30);
    }

    #[test]
    fn timeline_backfills_gaps() {
        let mut t = Timeline::new();
        assert_eq!(t.acquire(0, 10), 10);
        // Future-scheduled work leaves a gap...
        assert_eq!(t.acquire(50, 10), 60);
        // ...that a later-arriving but virtually-earlier request fills.
        assert_eq!(t.acquire(20, 10), 30);
        // A request that does not fit in the remaining gaps queues at the end.
        assert_eq!(t.acquire(25, 30), 90);
        // A small one still fits in the first open gap (10..15).
        assert_eq!(t.acquire(0, 5), 15);
        assert_eq!(t.busy_until(), 90);
    }

    #[test]
    fn timeline_zero_service_is_free() {
        let mut t = Timeline::new();
        t.acquire(0, 100);
        assert_eq!(t.acquire(50, 0), 50);
    }

    #[test]
    fn timeline_merges_adjacent_intervals() {
        let mut t = Timeline::new();
        t.acquire(0, 10);
        t.acquire(10, 10);
        t.acquire(20, 10);
        // All merged: a request at 5 queues to the very end.
        assert_eq!(t.acquire(5, 5), 35);
    }

    #[test]
    fn timeline_backlog_and_occupancy() {
        let mut t = Timeline::new();
        assert_eq!(t.backlog_at(0), 0);
        assert_eq!(t.intervals_after(0), 0);
        t.acquire(0, 10); // [0,10)
        t.acquire(0, 10); // queued: [10,20)
        t.acquire(50, 5); // disjoint future work: [50,55)
        assert_eq!(t.backlog_at(0), 55, "all accepted work pending at t=0");
        assert_eq!(t.backlog_at(20), 35, "gap counts toward completion time");
        assert_eq!(t.backlog_at(55), 0);
        assert_eq!(t.backlog_at(1_000), 0);
        // Two disjoint intervals at t=0 (the first two coalesced).
        assert_eq!(t.intervals_after(0), 2);
        assert_eq!(t.intervals_after(20), 1);
        assert_eq!(t.intervals_after(55), 0);
        // Wait derivation: start = end - service >= arrival, so the caller
        // can split any acquire into (queue wait, service) exactly.
        let arrival = 3;
        let service = 7;
        let end = t.acquire(arrival, service);
        assert!(end - service >= arrival);
        let wait = end - service - arrival;
        assert_eq!(wait + service, end - arrival, "wait/service decomposition is exact");
    }

    #[test]
    fn timeline_reset() {
        let mut t = Timeline::new();
        t.acquire(0, 50);
        t.reset();
        assert_eq!(t.busy_until(), 0);
        assert_eq!(t.acquire(0, 10), 10);
    }

    #[test]
    fn timeline_no_phantom_queue_ratchet() {
        // The regression that motivated gap backfill: a stream of requests
        // each scheduled slightly in the future must not ratchet the queue.
        let mut t = Timeline::new();
        let mut total_wait = 0i64;
        for i in 0..1000u64 {
            let now = i * 100; // arrivals every 100ns
            let future = now + 2_000; // work scheduled 2us ahead
            let done = t.acquire(future, 10);
            total_wait += (done - future - 10) as i64;
        }
        // Utilisation is 10%: waits should be almost zero.
        assert!(total_wait < 1000, "phantom queueing detected: {total_wait}");
    }

    #[test]
    fn multiserver_parallelism() {
        let mut m = MultiServer::new(2);
        assert_eq!(m.acquire(0, 10), 10);
        assert_eq!(m.acquire(0, 10), 10); // second server
        assert_eq!(m.acquire(0, 10), 20); // queues behind the earliest
        assert_eq!(m.all_free(), 20);
        assert_eq!(m.earliest_free(), 10);
    }

    #[test]
    fn multiserver_prefers_earliest_free() {
        let mut m = MultiServer::new(2);
        m.acquire(0, 100); // server A busy till 100
        m.acquire(0, 10); // server B busy till 10
                          // Arriving at 50: should take server B (free at 10), not A.
        assert_eq!(m.acquire(50, 5), 55);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        MultiServer::new(0);
    }

    mod proptests {
        use super::*;
        use crate::rng::Rng;
        use crate::SimRng;

        /// Core invariants of the work-conserving timeline: every
        /// reservation starts at or after its arrival, reservations never
        /// overlap, and total busy time is conserved.
        #[test]
        fn reservations_never_overlap() {
            let mut r = SimRng::seed_from_u64(0x71ED);
            for _ in 0..256 {
                let reqs: Vec<(u64, u64)> = (0..r.gen_range(1..200usize))
                    .map(|_| (r.gen_range(0u64..100_000), r.gen_range(1u64..5_000)))
                    .collect();
                let mut t = Timeline::new();
                let mut granted: Vec<(u64, u64)> = Vec::new();
                let mut total = 0u64;
                for (now, service) in reqs {
                    let end = t.acquire(now, service);
                    let start = end - service;
                    assert!(start >= now, "start {start} before arrival {now}");
                    granted.push((start, end));
                    total += service;
                }
                granted.sort_unstable();
                for w in granted.windows(2) {
                    assert!(w[0].1 <= w[1].0, "overlap: {:?} vs {:?}", w[0], w[1]);
                }
                assert_eq!(t.busy_time(), total);
            }
        }

        /// Purging behind a watermark never affects reservations at or
        /// after it.
        #[test]
        fn purge_preserves_future_consistency() {
            let mut r = SimRng::seed_from_u64(0x9C6E);
            for _ in 0..256 {
                let reqs: Vec<(u64, u64)> = (0..r.gen_range(1..100usize))
                    .map(|_| (r.gen_range(0u64..50_000), r.gen_range(1u64..2_000)))
                    .collect();
                let watermark = r.gen_range(0u64..50_000);
                let mut a = Timeline::new();
                let mut b = Timeline::new();
                // Same stream into both; purge one mid-way.
                let half = reqs.len() / 2;
                for (now, s) in &reqs[..half] {
                    a.acquire(*now, *s);
                    b.acquire(*now, *s);
                }
                a.purge_before(
                    watermark.min(reqs[..half].iter().map(|(n, _)| *n).min().unwrap_or(0)),
                );
                for (now, s) in &reqs[half..] {
                    // Arrivals at/after every prior arrival's minimum are
                    // unaffected by a purge below that minimum.
                    let ea = a.acquire(*now, *s);
                    let eb = b.acquire(*now, *s);
                    assert_eq!(ea, eb);
                }
            }
        }
    }
}

//! Fixed-size page-buffer slab: the zero-copy backbone of the simulator.
//!
//! Every layer of the stack moves data in fixed-size pages (4KB logical
//! slots, 8KB NAND pages). Before this module existed each crossing
//! heap-allocated a fresh `Box<[u8]>`/`Vec<u8>` and the bench wall-clock was
//! dominated by allocator traffic rather than the discrete-event model. A
//! [`BufPool`] keeps returned buffers on a free list so steady-state
//! operation performs **zero** heap allocations per I/O; the
//! counting-allocator regression test in the repo root pins that down.
//!
//! ## Lease model
//!
//! [`BufPool::checkout`] hands out a [`PageBuf`] — an owning, `Deref<[u8]>`
//! lease. Dropping the lease returns the underlying buffer to the pool
//! automatically (RAII), so the common paths cannot leak or double-return.
//! Layers that need to store raw buffers (e.g. inside a struct that must not
//! carry the pool handle) can use the low-level [`PageBuf::into_box`] /
//! [`BufPool::recycle`] pair; that path is guarded in debug builds:
//!
//! * **poisoning** — every buffer returned to the pool is filled with
//!   `0xDB`, so a use-after-return shows up as garbage data immediately
//!   instead of silently reading stale page contents;
//! * **double-return detection** — `recycle` panics if the pool already
//!   holds more buffers than were ever checked out, or if the exact buffer
//!   (by address) is already on the free list.
//!
//! The pool is intentionally *elastic*: `checkout` on an empty free list
//! allocates (cold path / warmup), and the free list is unbounded — sizing
//! is governed by the natural high-water mark of the layer that owns the
//! pool. All pools are single-threaded (`Rc`), matching the simulator.

use std::cell::{Cell, RefCell};
use std::mem::ManuallyDrop;
use std::rc::Rc;

/// Debug-build poison byte written over returned buffers.
pub const POISON: u8 = 0xDB;

#[derive(Default)]
struct PoolStats {
    checkouts: Cell<u64>,
    fresh: Cell<u64>,
}

struct PoolInner {
    /// Fixed buffer size in bytes; every checkout and recycle must match.
    size: usize,
    free: RefCell<Vec<Box<[u8]>>>,
    /// Buffers currently leased out (checked out and not yet returned).
    outstanding: Cell<usize>,
    stats: PoolStats,
}

impl PoolInner {
    fn give_back(&self, mut buf: Box<[u8]>) {
        assert_eq!(buf.len(), self.size, "buffer of wrong size returned to pool");
        if cfg!(debug_assertions) {
            let already = self.outstanding.get() == 0;
            assert!(!already, "double return: pool has no outstanding leases");
            let ptr = buf.as_ptr();
            let dup = self.free.borrow().iter().any(|b| std::ptr::eq(b.as_ptr(), ptr));
            assert!(!dup, "double return: buffer is already on the pool free list");
            buf.fill(POISON);
        }
        self.outstanding.set(self.outstanding.get() - 1);
        self.free.borrow_mut().push(buf);
    }
}

/// A slab of interchangeable fixed-size byte buffers.
///
/// Cloning the handle is cheap (`Rc`); all clones share one free list.
#[derive(Clone)]
pub struct BufPool {
    inner: Rc<PoolInner>,
}

impl std::fmt::Debug for BufPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufPool")
            .field("size", &self.inner.size)
            .field("free", &self.inner.free.borrow().len())
            .field("outstanding", &self.inner.outstanding.get())
            .finish()
    }
}

impl BufPool {
    /// A pool of `size`-byte buffers with an empty free list.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "zero-size pool");
        Self {
            inner: Rc::new(PoolInner {
                size,
                free: RefCell::new(Vec::new()),
                outstanding: Cell::new(0),
                stats: PoolStats::default(),
            }),
        }
    }

    /// A pool pre-populated with `prealloc` buffers, so the first `prealloc`
    /// checkouts hit the free list instead of the allocator.
    pub fn with_capacity(size: usize, prealloc: usize) -> Self {
        let pool = Self::new(size);
        {
            let mut free = pool.inner.free.borrow_mut();
            for _ in 0..prealloc {
                free.push(vec![0u8; size].into_boxed_slice());
            }
        }
        pool
    }

    /// Top the free list up to at least `n` parked buffers.
    ///
    /// Used by prewarm paths that know their layer's structural bound (e.g.
    /// a NAND array can never hold more live pages than its geometry has
    /// physical pages): preallocating to the bound moves every would-be
    /// high-water-mark allocation out of the measured/steady-state window.
    pub fn reserve_free(&self, n: usize) {
        let mut free = self.inner.free.borrow_mut();
        while free.len() < n {
            free.push(vec![0u8; self.inner.size].into_boxed_slice());
        }
    }

    /// Buffer size in bytes served by this pool.
    pub fn buf_size(&self) -> usize {
        self.inner.size
    }

    /// Lease a buffer. Contents are **unspecified** (recycled buffers keep
    /// their poison/stale bytes) — callers that need zeroes use
    /// [`checkout_zeroed`](Self::checkout_zeroed).
    pub fn checkout(&self) -> PageBuf {
        let recycled = self.inner.free.borrow_mut().pop();
        self.inner.stats.checkouts.set(self.inner.stats.checkouts.get() + 1);
        let data = match recycled {
            Some(b) => b,
            None => {
                self.inner.stats.fresh.set(self.inner.stats.fresh.get() + 1);
                vec![0u8; self.inner.size].into_boxed_slice()
            }
        };
        self.inner.outstanding.set(self.inner.outstanding.get() + 1);
        PageBuf { data: ManuallyDrop::new(data), pool: Rc::clone(&self.inner) }
    }

    /// Lease a zero-filled buffer.
    pub fn checkout_zeroed(&self) -> PageBuf {
        let mut b = self.checkout();
        b.fill(0);
        b
    }

    /// Lease a buffer initialised from `src` (must be exactly pool-sized).
    pub fn checkout_from(&self, src: &[u8]) -> PageBuf {
        let mut b = self.checkout();
        b.copy_from_slice(src);
        b
    }

    /// Low-level return path for buffers detached with
    /// [`PageBuf::into_box`]. Debug builds poison the buffer and panic on a
    /// double return (see module docs); release builds just push it back.
    pub fn recycle(&self, buf: Box<[u8]>) {
        self.inner.give_back(buf);
    }

    /// Buffers currently leased out.
    pub fn outstanding(&self) -> usize {
        self.inner.outstanding.get()
    }

    /// Buffers parked on the free list.
    pub fn free_count(&self) -> usize {
        self.inner.free.borrow().len()
    }

    /// Total checkouts served since creation.
    pub fn checkouts(&self) -> u64 {
        self.inner.stats.checkouts.get()
    }

    /// Checkouts that had to allocate because the free list was empty
    /// (warmup / high-water-mark growth). `checkouts() - fresh_allocs()`
    /// is the number of allocator round-trips the pool saved.
    pub fn fresh_allocs(&self) -> u64 {
        self.inner.stats.fresh.get()
    }
}

/// An owned lease on one pool buffer; derefs to `[u8]`.
///
/// Dropping returns the buffer to its pool. Detach with
/// [`into_box`](Self::into_box) when a plain `Box<[u8]>` is required (pair
/// with [`BufPool::recycle`] to keep the slab closed).
pub struct PageBuf {
    data: ManuallyDrop<Box<[u8]>>,
    pool: Rc<PoolInner>,
}

impl PageBuf {
    /// Detach the underlying buffer from the lease. The pool's outstanding
    /// count still includes it until [`BufPool::recycle`] gets it back.
    pub fn into_box(self) -> Box<[u8]> {
        let mut this = ManuallyDrop::new(self);
        // SAFETY: `this` is never dropped (ManuallyDrop) so `data` is taken
        // exactly once; the Rc field is dropped manually below.
        let data = unsafe { ManuallyDrop::take(&mut this.data) };
        unsafe { std::ptr::drop_in_place(&mut this.pool) };
        data
    }
}

impl Drop for PageBuf {
    fn drop(&mut self) {
        // SAFETY: drop runs at most once; `data` is not touched afterwards.
        let data = unsafe { ManuallyDrop::take(&mut self.data) };
        self.pool.give_back(data);
    }
}

impl Clone for PageBuf {
    /// Deep copy into a fresh lease from the same pool.
    fn clone(&self) -> Self {
        let b = self.pool.free.borrow_mut().pop();
        self.pool.stats.checkouts.set(self.pool.stats.checkouts.get() + 1);
        let mut data = match b {
            Some(b) => b,
            None => {
                self.pool.stats.fresh.set(self.pool.stats.fresh.get() + 1);
                vec![0u8; self.pool.size].into_boxed_slice()
            }
        };
        data.copy_from_slice(&self.data);
        self.pool.outstanding.set(self.pool.outstanding.get() + 1);
        PageBuf { data: ManuallyDrop::new(data), pool: Rc::clone(&self.pool) }
    }
}

impl std::ops::Deref for PageBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for PageBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for PageBuf {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for PageBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PageBuf({} bytes)", self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_return_reuse_cycle() {
        let pool = BufPool::new(4096);
        assert_eq!(pool.buf_size(), 4096);
        let a = pool.checkout_zeroed();
        let first_ptr = a.as_ptr();
        assert_eq!(pool.outstanding(), 1);
        assert_eq!(pool.free_count(), 0);
        assert_eq!(pool.fresh_allocs(), 1);
        drop(a);
        assert_eq!(pool.outstanding(), 0);
        assert_eq!(pool.free_count(), 1);
        // The next checkout reuses the same allocation, no fresh alloc.
        let b = pool.checkout();
        assert_eq!(b.as_ptr(), first_ptr, "buffer was reused, not reallocated");
        assert_eq!(pool.fresh_allocs(), 1);
        assert_eq!(pool.checkouts(), 2);
    }

    #[test]
    fn poison_on_return_in_debug() {
        let pool = BufPool::new(64);
        let mut a = pool.checkout_zeroed();
        a.fill(0xAA);
        drop(a);
        let b = pool.checkout();
        if cfg!(debug_assertions) {
            assert!(b.iter().all(|&x| x == POISON), "recycled buffer is poisoned");
        }
    }

    #[test]
    fn checkout_from_copies_source() {
        let pool = BufPool::new(8);
        let src = [1u8, 2, 3, 4, 5, 6, 7, 8];
        let b = pool.checkout_from(&src);
        assert_eq!(&*b, &src);
    }

    #[test]
    fn clone_is_a_fresh_lease_with_same_bytes() {
        let pool = BufPool::new(16);
        let mut a = pool.checkout_zeroed();
        a[0] = 42;
        let b = a.clone();
        assert_eq!(b[0], 42);
        assert!(!std::ptr::eq(a.as_ptr(), b.as_ptr()));
        assert_eq!(pool.outstanding(), 2);
    }

    #[test]
    fn into_box_and_recycle_round_trip() {
        let pool = BufPool::new(32);
        let a = pool.checkout_zeroed();
        let raw = a.into_box();
        assert_eq!(pool.outstanding(), 1, "detached lease still counted");
        pool.recycle(raw);
        assert_eq!(pool.outstanding(), 0);
        assert_eq!(pool.free_count(), 1);
    }

    #[test]
    fn prealloc_avoids_fresh_allocs() {
        let pool = BufPool::with_capacity(128, 4);
        assert_eq!(pool.free_count(), 4);
        let bufs: Vec<_> = (0..4).map(|_| pool.checkout()).collect();
        assert_eq!(pool.fresh_allocs(), 0);
        drop(bufs);
        assert_eq!(pool.free_count(), 4);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "double-return guard is debug-only")]
    #[should_panic(expected = "double return")]
    fn double_return_panics_in_debug() {
        let pool = BufPool::new(16);
        let a = pool.checkout();
        // First return is legitimate (outstanding -> 0); a second return
        // without a matching checkout is a lease-accounting bug and the
        // debug guard catches it.
        pool.recycle(a.into_box());
        pool.recycle(vec![0u8; 16].into_boxed_slice());
    }

    #[test]
    #[should_panic(expected = "wrong size")]
    fn wrong_size_recycle_panics() {
        let pool = BufPool::new(16);
        let _hold = pool.checkout(); // keep outstanding > 0
        pool.recycle(vec![0u8; 8].into_boxed_slice());
    }
}

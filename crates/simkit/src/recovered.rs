//! Recovery reports: what a store's crash recovery did and how long the
//! user waited for it.
//!
//! Both storage engines in this repository (the relational engine and the
//! document store) recover by scanning a durable structure — the WAL since
//! the last checkpoint, or the header chain at the file tail — and
//! replaying what they find. [`Recovered`] is the one return shape for
//! both: the recovered store, the virtual completion time, and a
//! [`ReplayStats`] describing the scan so benchmarks and tests can assert
//! on *how* recovery went, not just that it produced a working store.

use crate::clock::Nanos;
use crate::timed::Timed;

/// What a recovery scan replayed, skipped, and found torn.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Records applied through the store's normal write path.
    pub replayed: u64,
    /// Records scanned but not applied because a checkpoint already covers
    /// them (they sit at or before the replay bound).
    pub skipped: u64,
    /// Torn or garbage records the scan truncated at (0 or 1 for a single
    /// log; the valid prefix before a tear is still replayed).
    pub torn: u64,
    /// The checkpoint LSN (or header sequence number) the scan started
    /// its replay bound from.
    pub checkpoint_lsn: u64,
    /// LSN of the tear, when `torn > 0`.
    pub tear_lsn: Option<u64>,
    /// Virtual time recovery took, from reboot to a store ready for its
    /// first read.
    pub replay_ns: Nanos,
}

/// A recovered store plus the story of its recovery.
#[derive(Debug, Clone)]
pub struct Recovered<T> {
    /// The recovered store.
    pub value: T,
    /// Virtual time at which the store is ready (first read may start).
    pub done: Nanos,
    /// Scan/replay statistics.
    pub stats: ReplayStats,
}

impl<T> Recovered<T> {
    /// Wrap a store with its completion time and stats.
    pub fn new(value: T, done: Nanos, stats: ReplayStats) -> Self {
        Self { value, done, stats }
    }

    /// Split into the store and its completion time, dropping the stats —
    /// the common call-site shape when only the clock matters.
    pub fn into_parts(self) -> (T, Nanos) {
        (self.value, self.done)
    }

    /// View as a [`Timed`] result, dropping the stats.
    pub fn into_timed(self) -> Timed<T> {
        Timed { value: self.value, done: self.done }
    }

    /// Map the recovered value, keeping time and stats.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Recovered<U> {
        Recovered { value: f(self.value), done: self.done, stats: self.stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn into_parts_and_map_preserve_fields() {
        let r = Recovered::new(
            41u32,
            7,
            ReplayStats { replayed: 3, skipped: 2, ..ReplayStats::default() },
        );
        let mapped = r.clone().map(|v| v + 1);
        assert_eq!(mapped.value, 42);
        assert_eq!(mapped.stats.replayed, 3);
        assert_eq!(mapped.stats.skipped, 2);
        let (v, t) = r.into_parts();
        assert_eq!((v, t), (41, 7));
    }

    #[test]
    fn into_timed_drops_stats() {
        let r = Recovered::new("s", 9, ReplayStats::default());
        let timed = r.into_timed();
        assert_eq!(timed.value, "s");
        assert_eq!(timed.done, 9);
    }
}

//! Discrete-event simulation kit used by the whole DuraSSD reproduction.
//!
//! All performance in this repository is measured in *virtual time*: devices,
//! buses and locks are modelled as [`resource::Timeline`]s, simulated clients
//! are advanced in global virtual-time order by [`driver::ClosedLoop`], and
//! latency/throughput statistics are collected with [`stats`].
//!
//! Keeping time virtual makes every experiment deterministic (seedable RNG,
//! no wall-clock noise) and fast: a run that took the paper's authors hours
//! of wall-clock time on a 32-core Xeon completes in seconds here, while the
//! *relative* behaviour — who waits for whom, what saturates first — is
//! preserved.

pub mod alloc;
pub mod clock;
pub mod crc;
pub mod dist;
pub mod driver;
pub mod pool;
pub mod recovered;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod timed;

pub use clock::{Nanos, MICROS, MILLIS, SECS};
pub use crc::crc32;
pub use driver::{ClosedLoop, DriverReport};
pub use pool::{BufPool, PageBuf};
pub use recovered::{Recovered, ReplayStats};
pub use resource::{MultiServer, Timeline};
pub use rng::{Rng, SimRng};
pub use stats::{Counter, LatencyStats, Summary};
pub use timed::Timed;

//! Random distributions used by the workload generators.
//!
//! * [`Zipfian`] — the YCSB request-key distribution (Gray's method with a
//!   precomputed zeta).
//! * [`ScrambledZipfian`] — zipfian with FNV scrambling so popular items are
//!   spread across the key space (what YCSB actually uses).
//! * [`PowerLaw`] — discrete bounded power-law for LinkBench link fanout.

pub use crate::rng::{Rng, SimRng};

/// Create a deterministic RNG from a 64-bit seed.
pub fn rng(seed: u64) -> SimRng {
    SimRng::seed_from_u64(seed)
}

/// Zipfian distribution over `0..n` with exponent `theta` (YCSB default
/// 0.99), using the rejection-inversion approximation from Gray et al. as
/// implemented in YCSB's `ZipfianGenerator`.
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2theta: f64,
}

impl Zipfian {
    /// Zipfian over `0..n` with the YCSB default skew 0.99.
    pub fn new(n: u64) -> Self {
        Self::with_theta(n, 0.99)
    }

    /// Zipfian over `0..n` with exponent `theta` in (0, 1).
    pub fn with_theta(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipfian needs a non-empty domain");
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0,1)");
        let zetan = Self::zeta(n, theta);
        let zeta2theta = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan);
        Self { n, theta, alpha, zetan, eta, zeta2theta }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct sum; domains in this repo are at most a few million.
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Domain size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draw a sample in `0..n` (0 is the most popular item).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = ((self.eta * u - self.eta + 1.0).powf(self.alpha) * self.n as f64) as u64;
        v.min(self.n - 1)
    }

    /// Exponent of the distribution.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Used by tests: the normalisation constant.
    pub fn zetan(&self) -> f64 {
        self.zetan
    }

    /// Kept for parity with YCSB's generator internals (used when growing the
    /// domain incrementally).
    pub fn zeta2theta(&self) -> f64 {
        self.zeta2theta
    }
}

/// Zipfian whose ranks are scrambled across the domain with an FNV-1a hash,
/// like YCSB's `ScrambledZipfianGenerator`: item popularity follows a
/// zipfian, but the popular items are spread uniformly over `0..n`.
#[derive(Debug, Clone)]
pub struct ScrambledZipfian {
    inner: Zipfian,
    n: u64,
}

impl ScrambledZipfian {
    /// Scrambled zipfian over `0..n` with the YCSB default skew.
    pub fn new(n: u64) -> Self {
        Self { inner: Zipfian::new(n), n }
    }

    /// Draw a sample in `0..n`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let rank = self.inner.sample(rng);
        fnv1a(rank) % self.n
    }

    /// Domain size.
    pub fn n(&self) -> u64 {
        self.n
    }
}

/// 64-bit FNV-1a of a u64, used for rank scrambling.
pub fn fnv1a(v: u64) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    for i in 0..8 {
        h ^= (v >> (i * 8)) & 0xff;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Discrete bounded power-law over `min..=max` with exponent `gamma` (> 1),
/// sampled by inverse transform. LinkBench uses this shape for the number of
/// links per node.
#[derive(Debug, Clone)]
pub struct PowerLaw {
    min: u64,
    max: u64,
    gamma: f64,
}

impl PowerLaw {
    /// Power law over `min..=max` (both ≥ 1) with exponent `gamma > 1`.
    pub fn new(min: u64, max: u64, gamma: f64) -> Self {
        assert!(min >= 1 && max >= min, "need 1 <= min <= max");
        assert!(gamma > 1.0, "gamma must exceed 1");
        Self { min, max, gamma }
    }

    /// Draw a sample in `min..=max`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let g1 = 1.0 - self.gamma;
        let lo = (self.min as f64).powf(g1);
        let hi = ((self.max + 1) as f64).powf(g1);
        let x = (lo + u * (hi - lo)).powf(1.0 / g1);
        (x as u64).clamp(self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipfian_is_skewed_and_in_range() {
        let z = Zipfian::new(1000);
        let mut r = rng(7);
        let mut head = 0u64;
        const N: u64 = 20_000;
        for _ in 0..N {
            let v = z.sample(&mut r);
            assert!(v < 1000);
            if v < 10 {
                head += 1;
            }
        }
        // With theta=0.99 the top-10 of 1000 items draw a large share
        // (analytically ~39%); uniform would be 1%.
        assert!(head > N / 5, "head share too small: {head}/{N}");
    }

    #[test]
    fn scrambled_zipfian_spreads_popular_keys() {
        let z = ScrambledZipfian::new(1000);
        let mut r = rng(3);
        let mut below_half = 0u64;
        const N: u64 = 10_000;
        for _ in 0..N {
            if z.sample(&mut r) < 500 {
                below_half += 1;
            }
        }
        // Scrambling should put roughly half the mass in each half.
        let frac = below_half as f64 / N as f64;
        assert!(frac > 0.3 && frac < 0.7, "scramble skewed: {frac}");
    }

    #[test]
    fn power_law_bounds_and_skew() {
        let p = PowerLaw::new(1, 1000, 2.0);
        let mut r = rng(11);
        let mut small = 0u64;
        const N: u64 = 10_000;
        for _ in 0..N {
            let v = p.sample(&mut r);
            assert!((1..=1000).contains(&v));
            if v <= 3 {
                small += 1;
            }
        }
        // gamma=2 puts most of the mass at the low end.
        assert!(small > N / 2, "power law not skewed low: {small}");
    }

    #[test]
    fn deterministic_under_seed() {
        let z = Zipfian::new(100);
        let a: Vec<u64> = {
            let mut r = rng(42);
            (0..32).map(|_| z.sample(&mut r)).collect()
        };
        let b: Vec<u64> = {
            let mut r = rng(42);
            (0..32).map(|_| z.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn fnv_distinct() {
        assert_ne!(fnv1a(0), fnv1a(1));
        assert_ne!(fnv1a(1), fnv1a(2));
    }

    #[test]
    #[should_panic(expected = "non-empty domain")]
    fn zipfian_empty_domain_rejected() {
        Zipfian::new(0);
    }
}

//! Shadow oracles: reference models the real implementations are checked
//! against.
//!
//! # Page payload encoding
//!
//! Every page the fuzzer writes is self-describing: bytes `0..8` hold the
//! lpn (little-endian), bytes `8..16` the version number, and the rest a
//! fill byte derived from both. A read can therefore be decoded without
//! any side channel, and *cross-lpn* corruption (a mapping pointing at
//! some other lpn's flash page) is detected immediately rather than
//! looking like an ordinary stale value.
//!
//! # Device semantics
//!
//! * **DuraSSD (capacitor-backed) is checked strictly**: an acked write is
//!   durable with exactly its payload, an un-acked write rolls back
//!   completely, a trim reads zero and survives power cuts.
//! * **Volatile caches are checked relaxedly**: after a power cut, any lpn
//!   that was dirty (written/trimmed since the last flush) may read *any*
//!   value — old versions, zeros, shorn-page errors, even garbage; that is
//!   the documented corruption the paper's DuraSSD removes. Clean lpns
//!   stay strict, and a fresh write or trim snaps the lpn back to strict
//!   checking. Structural invariants are enforced at all times regardless.

use std::collections::BTreeMap;

use storage::device::{DevError, LOGICAL_PAGE};

/// Fill byte for the payload body; never zero so a real payload can't be
/// confused with an unwritten (all-zero) page.
fn fill_byte(lpn: u64, version: u64) -> u8 {
    (lpn.wrapping_mul(31).wrapping_add(version.wrapping_mul(131)) as u8) | 1
}

/// Deterministic payload for `(lpn, version)`.
pub fn page_bytes(lpn: u64, version: u64) -> Vec<u8> {
    let mut buf = vec![fill_byte(lpn, version); LOGICAL_PAGE];
    buf[..8].copy_from_slice(&lpn.to_le_bytes());
    buf[8..16].copy_from_slice(&version.to_le_bytes());
    buf
}

/// What a read observation decodes to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageObs {
    /// All-zero page (unwritten or trimmed).
    Zeros,
    /// A well-formed fuzzer payload.
    Value { lpn: u64, version: u64 },
    /// Bytes that are neither zeros nor a consistent payload.
    Garbage,
}

/// Decode one logical page read back from the device.
pub fn parse_page(buf: &[u8]) -> PageObs {
    if buf.iter().all(|&b| b == 0) {
        return PageObs::Zeros;
    }
    let lpn = u64::from_le_bytes(buf[..8].try_into().unwrap());
    let version = u64::from_le_bytes(buf[8..16].try_into().unwrap());
    let fill = fill_byte(lpn, version);
    if buf[16..].iter().all(|&b| b == fill) {
        PageObs::Value { lpn, version }
    } else {
        PageObs::Garbage
    }
}

/// Flat shadow model of a block device: expected content version per lpn.
pub struct DeviceOracle {
    volatile: bool,
    next_version: u64,
    /// Expected current content (None = zeros). Meaningful only where
    /// `fuzzy` is false.
    state: Vec<Option<u64>>,
    /// True after a volatile power cut for lpns whose content became
    /// undefined. Never set for a capacitor-backed device.
    fuzzy: Vec<bool>,
    /// False once the lpn has been written/trimmed since the last flush;
    /// decides which lpns a volatile cut scrambles.
    clean: Vec<bool>,
}

impl DeviceOracle {
    pub fn new(capacity: u64, volatile: bool) -> Self {
        let n = capacity as usize;
        Self {
            volatile,
            next_version: 0,
            state: vec![None; n],
            fuzzy: vec![false; n],
            clean: vec![true; n],
        }
    }

    /// Mint a fresh version number for the next write.
    pub fn issue_version(&mut self) -> u64 {
        self.next_version += 1;
        self.next_version
    }

    /// Record an acked write of `version` at `lpn`.
    pub fn write(&mut self, lpn: u64, version: u64) {
        let i = lpn as usize;
        self.state[i] = Some(version);
        self.fuzzy[i] = false;
        self.clean[i] = false;
    }

    /// Record an acked trim at `lpn`.
    pub fn trim(&mut self, lpn: u64) {
        let i = lpn as usize;
        self.state[i] = None;
        self.fuzzy[i] = false;
        self.clean[i] = false;
    }

    /// Record a FLUSH CACHE: everything currently expected is on media.
    pub fn flush(&mut self) {
        for c in &mut self.clean {
            *c = true;
        }
    }

    /// Record a power cut + reboot. On a capacitor-backed device this is a
    /// no-op (acked state survives exactly); on a volatile cache every
    /// dirty lpn's content becomes undefined.
    pub fn power_cut(&mut self) {
        if !self.volatile {
            return;
        }
        for i in 0..self.state.len() {
            if !self.clean[i] {
                self.fuzzy[i] = true;
            }
        }
    }

    /// Record a write that was issued but *rolled back* by a cut before its
    /// ack. Strict state is unchanged; on volatile devices the lpn still
    /// becomes undefined (partial drains may have reached flash).
    pub fn aborted_write(&mut self, lpn: u64, pages: u32) {
        if self.volatile {
            for i in lpn as usize..(lpn + pages as u64) as usize {
                self.fuzzy[i] = true;
                self.clean[i] = false;
            }
        }
    }

    /// Check a successful single-page read observation. `Err` describes the
    /// divergence.
    pub fn check_read(&self, lpn: u64, obs: &PageObs) -> Result<(), String> {
        let i = lpn as usize;
        if let PageObs::Value { lpn: got, .. } = obs {
            if *got != lpn && !self.fuzzy[i] {
                return Err(format!(
                    "cross-lpn corruption: read of lpn {lpn} returned a payload written for lpn {got}"
                ));
            }
        }
        if self.fuzzy[i] {
            return Ok(()); // volatile post-cut: anything goes
        }
        let expect = self.state[i];
        match (expect, obs) {
            (None, PageObs::Zeros) => Ok(()),
            (Some(v), PageObs::Value { version, .. }) if *version == v => Ok(()),
            (None, other) => Err(format!("lpn {lpn}: expected zeros, observed {other:?}")),
            (Some(v), other) => Err(format!("lpn {lpn}: expected version {v}, observed {other:?}")),
        }
    }

    /// Check a read that returned a device error. Only a volatile device
    /// reading a post-cut dirty range may legitimately fail (shorn page).
    pub fn check_read_err(&self, lpn: u64, pages: u32, err: &DevError) -> Result<(), String> {
        let any_fuzzy = (lpn as usize..(lpn + pages as u64) as usize).any(|i| self.fuzzy[i]);
        if any_fuzzy && matches!(err, DevError::ShornPage { .. }) {
            return Ok(());
        }
        Err(format!("read of lpn {lpn} x{pages} failed unexpectedly: {err}"))
    }
}

/// Shadow model for the key-value store targets.
///
/// Strict before a crash: a `get` must return exactly the latest acked
/// value. Across a crash the oracle is *relaxed to the durability
/// contract*: a key must read as its last committed value or any value
/// issued for it since the last commit — the stores batch fsyncs, so a
/// crash can truncate the un-synced tail back to any intermediate
/// durable point. Whatever the recovered store answers is then adopted
/// as the new committed state so later checks are strict again. What the
/// relaxation still forbids — values from before the last commit
/// barrier, values never written for the key, mangled bodies — is
/// exactly the set of real durability bugs.
pub struct KvOracle {
    /// State as of the last commit barrier.
    committed: BTreeMap<u64, u64>,
    /// Every update since the last commit, in order:
    /// `Some(version)` = put, `None` = del.
    pending: BTreeMap<u64, Vec<Option<u64>>>,
    next_version: u64,
}

impl Default for KvOracle {
    fn default() -> Self {
        Self::new()
    }
}

impl KvOracle {
    pub fn new() -> Self {
        Self { committed: BTreeMap::new(), pending: BTreeMap::new(), next_version: 0 }
    }

    pub fn issue_version(&mut self) -> u64 {
        self.next_version += 1;
        self.next_version
    }

    pub fn put(&mut self, key: u64, version: u64) {
        self.pending.entry(key).or_default().push(Some(version));
    }

    pub fn del(&mut self, key: u64) {
        self.pending.entry(key).or_default().push(None);
    }

    pub fn commit(&mut self) {
        for (k, versions) in std::mem::take(&mut self.pending) {
            match versions.last().copied().flatten() {
                Some(ver) => {
                    self.committed.insert(k, ver);
                }
                None => {
                    self.committed.remove(&k);
                }
            }
        }
    }

    /// Expected value of `key` right now (merged view), pre-crash strict.
    pub fn expect(&self, key: u64) -> Option<u64> {
        match self.pending.get(&key).and_then(|v| v.last()) {
            Some(over) => *over,
            None => self.committed.get(&key).copied(),
        }
    }

    /// All keys that have ever been touched (committed or pending).
    pub fn keys(&self) -> Vec<u64> {
        let mut ks: Vec<u64> = self.committed.keys().chain(self.pending.keys()).copied().collect();
        ks.sort_unstable();
        ks.dedup();
        ks
    }

    /// Check and absorb one key's post-recovery observation. The observed
    /// value must be the committed one or any un-committed update issued
    /// for the key; the observation then *becomes* the committed state.
    pub fn absorb_recovered(&mut self, key: u64, observed: Option<u64>) -> Result<(), String> {
        let committed = self.committed.get(&key).copied();
        let pending = self.pending.get(&key).map(Vec::as_slice).unwrap_or(&[]);
        let ok = observed == committed || pending.contains(&observed);
        if !ok {
            return Err(format!(
                "key {key}: recovered {observed:?}, but committed state was {committed:?} \
                 and pending updates were {pending:?}"
            ));
        }
        match observed {
            Some(v) => {
                self.committed.insert(key, v);
            }
            None => {
                self.committed.remove(&key);
            }
        }
        Ok(())
    }

    /// Finish a crash-recovery audit: drop all pending updates.
    pub fn finish_recovery(&mut self) {
        self.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_round_trips() {
        let buf = page_bytes(42, 7);
        assert_eq!(parse_page(&buf), PageObs::Value { lpn: 42, version: 7 });
        assert_eq!(parse_page(&vec![0u8; LOGICAL_PAGE]), PageObs::Zeros);
        let mut bad = page_bytes(42, 7);
        bad[2000] ^= 0x55;
        assert_eq!(parse_page(&bad), PageObs::Garbage);
    }

    #[test]
    fn payloads_differ_across_lpn_and_version() {
        assert_ne!(page_bytes(1, 1), page_bytes(2, 1));
        assert_ne!(page_bytes(1, 1), page_bytes(1, 2));
    }

    #[test]
    fn strict_oracle_flags_stale_reads() {
        let mut o = DeviceOracle::new(8, false);
        let v = o.issue_version();
        o.write(3, v);
        assert!(o.check_read(3, &PageObs::Value { lpn: 3, version: v }).is_ok());
        assert!(o.check_read(3, &PageObs::Zeros).is_err());
        assert!(o.check_read(3, &PageObs::Value { lpn: 3, version: v + 1 }).is_err());
        assert!(o
            .check_read(3, &PageObs::Value { lpn: 5, version: v })
            .unwrap_err()
            .contains("cross-lpn"));
    }

    #[test]
    fn volatile_cut_relaxes_only_dirty_lpns() {
        let mut o = DeviceOracle::new(8, true);
        let v1 = o.issue_version();
        o.write(1, v1);
        o.flush();
        let v2 = o.issue_version();
        o.write(2, v2);
        o.power_cut();
        // lpn 1 was clean at the cut: still strict.
        assert!(o.check_read(1, &PageObs::Value { lpn: 1, version: v1 }).is_ok());
        assert!(o.check_read(1, &PageObs::Zeros).is_err());
        // lpn 2 was dirty: anything goes, including errors.
        assert!(o.check_read(2, &PageObs::Zeros).is_ok());
        assert!(o.check_read(2, &PageObs::Garbage).is_ok());
        assert!(o.check_read_err(2, 1, &DevError::ShornPage { lpn: 2 }).is_ok());
        // ...but a fresh write snaps it back to strict.
        let v3 = o.issue_version();
        o.write(2, v3);
        assert!(o.check_read(2, &PageObs::Zeros).is_err());
    }

    #[test]
    fn dura_oracle_ignores_cuts() {
        let mut o = DeviceOracle::new(4, false);
        let v = o.issue_version();
        o.write(0, v);
        o.power_cut();
        assert!(o.check_read(0, &PageObs::Value { lpn: 0, version: v }).is_ok());
        assert!(o.check_read(0, &PageObs::Zeros).is_err());
    }

    fn committed_v1_pending_v2_v3() -> (KvOracle, u64, u64, u64) {
        let mut o = KvOracle::new();
        let v1 = o.issue_version();
        o.put(7, v1);
        o.commit();
        let v2 = o.issue_version();
        o.put(7, v2); // un-committed overwrite...
        let v3 = o.issue_version();
        o.put(7, v3); // ...twice
        (o, v1, v2, v3)
    }

    #[test]
    fn kv_oracle_accepts_any_durable_point_after_crash() {
        // The committed value and every pending update are acceptable —
        // the stores batch fsyncs, so a crash truncates to an
        // intermediate durable point.
        for pick in 0..3 {
            let (mut o, v1, v2, v3) = committed_v1_pending_v2_v3();
            let observed = [v1, v2, v3][pick];
            assert!(o.absorb_recovered(7, Some(observed)).is_ok());
            o.finish_recovery();
            // The observation is adopted: later checks are strict again.
            assert_eq!(o.expect(7), Some(observed));
        }
    }

    #[test]
    fn kv_oracle_rejects_impossible_recoveries() {
        // A version never written for the key.
        let (mut o, _, _, v3) = committed_v1_pending_v2_v3();
        assert!(o.absorb_recovered(7, Some(v3 + 100)).is_err());
        // Losing a *committed* value is never acceptable.
        let mut o = KvOracle::new();
        let v = o.issue_version();
        o.put(3, v);
        o.commit();
        assert!(o.absorb_recovered(3, None).is_err());
        // A value from before the last commit barrier must not resurface.
        let mut o = KvOracle::new();
        let old = o.issue_version();
        o.put(3, old);
        o.commit();
        let newer = o.issue_version();
        o.put(3, newer);
        o.commit();
        assert!(o.absorb_recovered(3, Some(old)).is_err());
    }
}

//! **Deterministic state-machine fuzzer with shadow oracles.**
//!
//! FoundationDB/TigerBeetle-style simulation testing for the storage stack:
//! a seeded generator produces operation sequences (writes, reads, trims,
//! flush barriers, NCQ bursts, GC-pressure fills, power cuts — including
//! cuts landing *inside* a write's un-acked window), a harness replays them
//! against the real [`durassd::Ssd`], the relational [`relstore::Engine`]
//! and the document store, and a *shadow oracle* — a flat `lpn → version`
//! model for the device, ordered-map models for the stores — checks every
//! observable result. After **every** step the structural invariant hooks
//! (`Ftl::check_invariants`, `WriteCache::check_invariants`,
//! `Ssd::check_invariants`) audit the internal state, so corruption is
//! caught at the step that introduces it rather than at the read that
//! happens to surface it thousands of ops later.
//!
//! Failures shrink automatically ([`shrink::shrink`] is a deterministic
//! delta-debugging loop) and print a replayable `--seed` / `--trace` line;
//! the `simtest` binary (`--seeds N --ops M --check`) runs the campaign
//! in CI.
//!
//! Everything is deterministic: same seed, same trace, same verdict.

pub mod harness;
pub mod ops;
pub mod oracle;
pub mod shrink;

pub use harness::{run_case, run_seed, Failure, Target};
pub use ops::{generate, parse_trace, trace_string, Op};
pub use shrink::shrink;

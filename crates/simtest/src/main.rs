//! `simtest` — deterministic state-machine fuzzing campaign runner.
//!
//! ```text
//! simtest [--seeds N] [--ops M] [--seed S] [--start S0]
//!         [--target dura|volatile|engine|doc|all]
//!         [--trace "w:3:1 f cut r:3:1"] [--check] [--quiet]
//! ```
//!
//! * Default campaign: every target × seeds `S0..S0+N`, `M` ops each.
//! * `--seed S` runs exactly one seed; `--trace` replays a literal trace
//!   (requires a concrete `--target`, defaults to `dura`).
//! * On failure the trace is auto-shrunk to a 1-minimal repro and printed
//!   as a copy-pastable replay line; exit status is non-zero.
//! * `--check` is accepted for CI symmetry with the bench bins (failures
//!   always exit non-zero).

use simtest::{parse_trace, run_case, run_seed, shrink, trace_string, Failure, Target};

fn arg_u64(args: &[String], name: &str) -> Option<u64> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).and_then(|v| v.parse().ok())
}

fn arg_str(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn arg_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Shrink a failing sequence and print the repro block.
fn report_failure(target: Target, seed: Option<u64>, ops: &[simtest::Op], failure: &Failure) {
    eprintln!("FAIL target={} {}", target.name(), failure);
    let minimal = shrink(ops, |sub| run_case(target, sub).is_err());
    let why = run_case(target, &minimal).expect_err("shrinker must preserve the failure");
    eprintln!("  shrunk {} ops -> {}", ops.len(), minimal.len());
    eprintln!("  minimal failure: {why}");
    if let Some(s) = seed {
        eprintln!("  found by: --target {} --seed {s}", target.name());
    }
    eprintln!(
        "  replay: cargo run -p simtest -- --target {} --trace \"{}\"",
        target.name(),
        trace_string(&minimal)
    );
}

fn main() {
    // The harness converts panics in the stack under test into ordinary
    // failures; silence the default hook so a panicking candidate during
    // shrinking doesn't spray backtraces over the report.
    std::panic::set_hook(Box::new(|_| {}));
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seeds = arg_u64(&args, "--seeds").unwrap_or(10);
    let start = arg_u64(&args, "--start").unwrap_or(0);
    let nops = arg_u64(&args, "--ops").unwrap_or(500) as usize;
    let one_seed = arg_u64(&args, "--seed");
    let trace = arg_str(&args, "--trace");
    let quiet = arg_flag(&args, "--quiet");
    let _check = arg_flag(&args, "--check");
    let target_arg = arg_str(&args, "--target").unwrap_or_else(|| {
        if trace.is_some() || one_seed.is_some() {
            "dura".into()
        } else {
            "all".into()
        }
    });

    let targets: Vec<Target> = if target_arg == "all" {
        Target::all().to_vec()
    } else {
        match Target::parse(&target_arg) {
            Some(t) => vec![t],
            None => {
                eprintln!("unknown --target {target_arg:?} (dura|volatile|engine|doc|all)");
                std::process::exit(2);
            }
        }
    };

    // Literal trace replay.
    if let Some(t) = trace {
        let ops = match parse_trace(&t) {
            Ok(ops) => ops,
            Err(e) => {
                eprintln!("bad --trace: {e}");
                std::process::exit(2);
            }
        };
        let target = targets[0];
        match run_case(target, &ops) {
            Ok(()) => {
                println!("ok: target={} trace of {} ops passed", target.name(), ops.len());
            }
            Err(f) => {
                report_failure(target, None, &ops, &f);
                std::process::exit(1);
            }
        }
        return;
    }

    // Seeded campaign.
    let seed_list: Vec<u64> = match one_seed {
        Some(s) => vec![s],
        None => (start..start + seeds).collect(),
    };
    let mut failures = 0u64;
    let mut cases = 0u64;
    for &target in &targets {
        for &seed in &seed_list {
            cases += 1;
            let (ops, verdict) = run_seed(target, seed, nops);
            match verdict {
                Ok(()) => {
                    if !quiet {
                        println!(
                            "ok   target={:<8} seed={:<4} ops={}",
                            target.name(),
                            seed,
                            ops.len()
                        );
                    }
                }
                Err(f) => {
                    failures += 1;
                    report_failure(target, Some(seed), &ops, &f);
                }
            }
        }
    }
    println!(
        "simtest: {cases} cases, {failures} failures (targets: {}, seeds: {}, ops/case: {nops})",
        targets.iter().map(|t| t.name()).collect::<Vec<_>>().join(","),
        seed_list.len()
    );
    if failures > 0 {
        std::process::exit(1);
    }
}

//! Deterministic delta-debugging shrinker.
//!
//! Given a failing op sequence and a predicate "does this subsequence
//! still fail?", [`shrink`] removes chunks of geometrically decreasing
//! size until no single op can be removed without losing the failure.
//! The scan order is fixed (front to back, chunk sizes halving), so the
//! same input always shrinks to the same minimal trace — a property the
//! test suite pins down, because a shrinker that wobbles between runs
//! makes `--seed` repro lines useless.

/// Minimise `ops` under `fails`. `fails(&minimal)` is guaranteed true on
/// return (assuming `fails(ops)` was true and the predicate is
/// deterministic). The empty sequence is never proposed.
pub fn shrink<T: Clone>(ops: &[T], fails: impl Fn(&[T]) -> bool) -> Vec<T> {
    let mut cur: Vec<T> = ops.to_vec();
    if cur.is_empty() {
        return cur;
    }
    let mut chunk = cur.len().div_ceil(2);
    loop {
        let mut removed_any = false;
        let mut i = 0;
        while i < cur.len() {
            let end = (i + chunk).min(cur.len());
            if end - i == cur.len() {
                // Never propose the empty sequence.
                i += chunk;
                continue;
            }
            let mut cand: Vec<T> = Vec::with_capacity(cur.len() - (end - i));
            cand.extend_from_slice(&cur[..i]);
            cand.extend_from_slice(&cur[end..]);
            if fails(&cand) {
                cur = cand;
                removed_any = true;
                // Do not advance: the next chunk shifted into position i.
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            if !removed_any {
                break; // fixpoint: 1-minimal
            }
        } else {
            chunk = chunk.div_ceil(2).max(1);
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_the_single_culprit() {
        let ops: Vec<u32> = (0..100).collect();
        let min = shrink(&ops, |s| s.contains(&37));
        assert_eq!(min, vec![37]);
    }

    #[test]
    fn shrinks_to_an_interacting_pair() {
        let ops: Vec<u32> = (0..64).collect();
        let min = shrink(&ops, |s| s.contains(&5) && s.contains(&60));
        assert_eq!(min, vec![5, 60]);
    }

    #[test]
    fn preserves_order() {
        let ops = vec![9, 3, 7, 1, 8];
        let min = shrink(&ops, |s| {
            // Fails iff 3 appears before 8.
            let p3 = s.iter().position(|&x| x == 3);
            let p8 = s.iter().position(|&x| x == 8);
            matches!((p3, p8), (Some(a), Some(b)) if a < b)
        });
        assert_eq!(min, vec![3, 8]);
    }

    #[test]
    fn is_deterministic() {
        let ops: Vec<u32> = (0..200).rev().collect();
        let pred = |s: &[u32]| s.iter().filter(|&&x| x % 7 == 0).count() >= 3;
        let a = shrink(&ops, pred);
        let b = shrink(&ops, pred);
        assert_eq!(a, b);
        assert!(pred(&a));
        assert_eq!(a.len(), 3, "exactly three multiples of 7 should remain");
    }

    #[test]
    fn never_returns_empty_when_input_nonempty() {
        // Pathological predicate that also "fails" on everything.
        let ops = vec![1, 2, 3];
        let min = shrink(&ops, |_| true);
        assert_eq!(min.len(), 1);
    }
}

//! The operation alphabet, its textual trace encoding, and the seeded
//! generator.
//!
//! One unified [`Op`] enum covers all fuzz targets; each target's generator
//! draws from the subset that makes sense for it. Ops carry *every* random
//! choice explicitly (lpns, page counts, fill cursors) so a trace string is
//! a complete, machine-independent reproduction — versions and payload
//! bytes are derived deterministically during replay.

use simkit::rng::{Rng, SimRng};

/// One step of a fuzz case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    // ---- block-device targets ----
    /// Acked write of `pages` logical pages at `lpn`; the clock advances to
    /// the device's acknowledgement time.
    Write { lpn: u64, pages: u32 },
    /// Read + oracle check of `pages` logical pages at `lpn`.
    Read { lpn: u64, pages: u32 },
    /// TRIM (`discard`) of `pages` logical pages at `lpn`.
    Trim { lpn: u64, pages: u32 },
    /// FLUSH CACHE barrier.
    Flush,
    /// `n` single-page writes at `lpn..lpn+n` all issued at the *same*
    /// clock value (NCQ-depth burst), then the clock jumps to the latest
    /// acknowledgement.
    Burst { lpn: u64, n: u32 },
    /// Sequential overwrite sweep: `pages` single-page writes starting at
    /// `start` (mod capacity) — builds GC pressure near the free-block
    /// threshold.
    GcFill { start: u64, pages: u32 },
    /// Power cut at the current clock (everything issued so far is acked,
    /// drains may still be in flight), then reboot.
    PowerCut,
    /// Issue a write, cut power one nanosecond *before* its ack, reboot:
    /// exercises the atomic-writer rollback path.
    CutDuringWrite { lpn: u64, pages: u32 },
    /// Issue a write, TRIM the same lpn while the write is still un-acked,
    /// cut before the ack, reboot: trim-vs-inflight-preimage interaction.
    TrimCutDuringWrite { lpn: u64 },

    // ---- store targets (relational engine / document store) ----
    /// Upsert a deterministic value for `key`.
    Put { key: u64 },
    /// Point lookup + oracle check.
    GetKey { key: u64 },
    /// Delete `key`.
    Del { key: u64 },
    /// Engine: `commit`; DocStore: `commit_header`.
    Commit,
    /// Engine: `checkpoint`; DocStore: `compact`.
    Checkpoint,
    /// Policy-driven checkpoint: engine checkpoints only if its
    /// [`wal::CheckpointPolicy`] says one is due; DocStore forces a
    /// checkpoint anchor header (`commit_checkpoint`).
    Ckpt,
    /// Crash the store (power-cuts the device(s) underneath), recover,
    /// audit every key against the shadow model.
    CrashRecover,
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Op::Write { lpn, pages } => write!(f, "w:{lpn}:{pages}"),
            Op::Read { lpn, pages } => write!(f, "r:{lpn}:{pages}"),
            Op::Trim { lpn, pages } => write!(f, "t:{lpn}:{pages}"),
            Op::Flush => write!(f, "f"),
            Op::Burst { lpn, n } => write!(f, "b:{lpn}:{n}"),
            Op::GcFill { start, pages } => write!(f, "g:{start}:{pages}"),
            Op::PowerCut => write!(f, "cut"),
            Op::CutDuringWrite { lpn, pages } => write!(f, "cw:{lpn}:{pages}"),
            Op::TrimCutDuringWrite { lpn } => write!(f, "tcw:{lpn}"),
            Op::Put { key } => write!(f, "p:{key}"),
            Op::GetKey { key } => write!(f, "gk:{key}"),
            Op::Del { key } => write!(f, "d:{key}"),
            Op::Commit => write!(f, "c"),
            Op::Checkpoint => write!(f, "ck"),
            Op::Ckpt => write!(f, "ckpt"),
            Op::CrashRecover => write!(f, "cr"),
        }
    }
}

/// Render an op sequence as a whitespace-separated trace string.
pub fn trace_string(ops: &[Op]) -> String {
    ops.iter().map(|o| o.to_string()).collect::<Vec<_>>().join(" ")
}

fn parse_u64(s: &str, tok: &str) -> Result<u64, String> {
    s.parse::<u64>().map_err(|_| format!("bad number {s:?} in token {tok:?}"))
}

/// Parse a trace string produced by [`trace_string`] (or written by hand).
pub fn parse_trace(trace: &str) -> Result<Vec<Op>, String> {
    let mut ops = Vec::new();
    for tok in trace.split_whitespace() {
        let parts: Vec<&str> = tok.split(':').collect();
        let op = match (parts[0], parts.len()) {
            ("w", 3) => Op::Write {
                lpn: parse_u64(parts[1], tok)?,
                pages: parse_u64(parts[2], tok)? as u32,
            },
            ("r", 3) => {
                Op::Read { lpn: parse_u64(parts[1], tok)?, pages: parse_u64(parts[2], tok)? as u32 }
            }
            ("t", 3) => {
                Op::Trim { lpn: parse_u64(parts[1], tok)?, pages: parse_u64(parts[2], tok)? as u32 }
            }
            ("f", 1) => Op::Flush,
            ("b", 3) => {
                Op::Burst { lpn: parse_u64(parts[1], tok)?, n: parse_u64(parts[2], tok)? as u32 }
            }
            ("g", 3) => Op::GcFill {
                start: parse_u64(parts[1], tok)?,
                pages: parse_u64(parts[2], tok)? as u32,
            },
            ("cut", 1) => Op::PowerCut,
            ("cw", 3) => Op::CutDuringWrite {
                lpn: parse_u64(parts[1], tok)?,
                pages: parse_u64(parts[2], tok)? as u32,
            },
            ("tcw", 2) => Op::TrimCutDuringWrite { lpn: parse_u64(parts[1], tok)? },
            ("p", 2) => Op::Put { key: parse_u64(parts[1], tok)? },
            ("gk", 2) => Op::GetKey { key: parse_u64(parts[1], tok)? },
            ("d", 2) => Op::Del { key: parse_u64(parts[1], tok)? },
            ("c", 1) => Op::Commit,
            ("ck", 1) => Op::Checkpoint,
            ("ckpt", 1) => Op::Ckpt,
            ("cr", 1) => Op::CrashRecover,
            _ => return Err(format!("unknown trace token {tok:?}")),
        };
        ops.push(op);
    }
    Ok(ops)
}

/// Which state machine a case drives. Mirrors [`crate::harness::Target`]
/// but only distinguishes the op alphabet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Alphabet {
    /// Raw block-device ops against an [`durassd::Ssd`].
    Device,
    /// Key-value ops against a store (engine or docstore).
    Store,
}

/// Hot window: most device ops land in a small lpn range so overwrites,
/// coalescing and preimage chains actually happen.
const HOT_LPNS: u64 = 24;
/// Keys the store targets draw from.
const KEY_SPACE: u64 = 24;

/// Generate `n` ops for `alphabet` from a seeded RNG. Deterministic:
/// the same `(seed, n, alphabet)` always yields the same sequence.
pub fn generate(rng: &mut SimRng, alphabet: Alphabet, n: usize, lpn_space: u64) -> Vec<Op> {
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        let op = match alphabet {
            Alphabet::Device => gen_device_op(rng, lpn_space),
            Alphabet::Store => gen_store_op(rng),
        };
        ops.push(op);
    }
    ops
}

fn pick_lpn(rng: &mut SimRng, lpn_space: u64, pages: u64) -> u64 {
    let space = if rng.gen_bool(0.8) { HOT_LPNS.min(lpn_space) } else { lpn_space };
    let max = space.saturating_sub(pages).max(1);
    rng.gen_range(0..max)
}

fn gen_device_op(rng: &mut SimRng, lpn_space: u64) -> Op {
    let roll = rng.gen_range(0u32..100);
    match roll {
        // 0..32: plain acked writes, 1-4 pages.
        0..=31 => {
            let pages = rng.gen_range(1u32..=4);
            Op::Write { lpn: pick_lpn(rng, lpn_space, pages as u64), pages }
        }
        // 32..52: reads, 1-4 pages.
        32..=51 => {
            let pages = rng.gen_range(1u32..=4);
            Op::Read { lpn: pick_lpn(rng, lpn_space, pages as u64), pages }
        }
        // 52..60: trims.
        52..=59 => {
            let pages = rng.gen_range(1u32..=4);
            Op::Trim { lpn: pick_lpn(rng, lpn_space, pages as u64), pages }
        }
        // 60..68: flush barriers.
        60..=67 => Op::Flush,
        // 68..75: NCQ bursts.
        68..=74 => {
            let n = rng.gen_range(2u32..=6);
            Op::Burst { lpn: pick_lpn(rng, lpn_space, n as u64), n }
        }
        // 75..79: GC-pressure fills.
        75..=78 => {
            let pages = rng.gen_range(32u32..=128);
            Op::GcFill { start: rng.gen_range(0..lpn_space), pages }
        }
        // 79..87: clean power cuts (acked state, drains possibly mid-flight).
        79..=86 => Op::PowerCut,
        // 87..95: cuts inside a write's un-acked window.
        87..=94 => {
            let pages = rng.gen_range(1u32..=4);
            Op::CutDuringWrite { lpn: pick_lpn(rng, lpn_space, pages as u64), pages }
        }
        // 95..100: trim-while-inflight, then cut.
        _ => Op::TrimCutDuringWrite { lpn: pick_lpn(rng, lpn_space, 1) },
    }
}

fn gen_store_op(rng: &mut SimRng) -> Op {
    let roll = rng.gen_range(0u32..100);
    match roll {
        0..=39 => Op::Put { key: rng.gen_range(0..KEY_SPACE) },
        40..=59 => Op::GetKey { key: rng.gen_range(0..KEY_SPACE) },
        60..=69 => Op::Del { key: rng.gen_range(0..KEY_SPACE) },
        70..=82 => Op::Commit,
        83..=89 => Op::Checkpoint,
        90..=93 => Op::Ckpt,
        _ => Op::CrashRecover,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_round_trips() {
        let mut rng = SimRng::seed_from_u64(7);
        let ops = generate(&mut rng, Alphabet::Device, 200, 192);
        let trace = trace_string(&ops);
        assert_eq!(parse_trace(&trace).unwrap(), ops);

        let mut rng = SimRng::seed_from_u64(7);
        let ops = generate(&mut rng, Alphabet::Store, 200, 192);
        let trace = trace_string(&ops);
        assert_eq!(parse_trace(&trace).unwrap(), ops);
    }

    #[test]
    fn generator_is_deterministic() {
        let a = generate(&mut SimRng::seed_from_u64(42), Alphabet::Device, 500, 192);
        let b = generate(&mut SimRng::seed_from_u64(42), Alphabet::Device, 500, 192);
        assert_eq!(a, b);
        let c = generate(&mut SimRng::seed_from_u64(43), Alphabet::Device, 500, 192);
        assert_ne!(a, c, "different seeds should diverge");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_trace("w:1").is_err());
        assert!(parse_trace("zz").is_err());
        assert!(parse_trace("w:x:1").is_err());
    }

    #[test]
    fn generated_device_ops_stay_in_range() {
        let ops = generate(&mut SimRng::seed_from_u64(1), Alphabet::Device, 2000, 192);
        for op in &ops {
            match *op {
                Op::Write { lpn, pages }
                | Op::Read { lpn, pages }
                | Op::Trim { lpn, pages }
                | Op::CutDuringWrite { lpn, pages } => {
                    assert!(lpn + pages as u64 <= 192, "{op} out of range")
                }
                Op::Burst { lpn, n } => assert!(lpn + n as u64 <= 192),
                Op::GcFill { start, .. } => assert!(start < 192),
                Op::TrimCutDuringWrite { lpn } => assert!(lpn < 192),
                _ => {}
            }
        }
    }
}

//! Replays op sequences against the real implementations, checking every
//! observable against the shadow oracles and auditing structural
//! invariants after every single step.
//!
//! Every case runs with latency anatomy enabled: each op executes inside a
//! telemetry frame and the audit after every step asserts the conservation
//! identity (attributed segments never exceed the op's wall latency) and
//! that a GC-interference segment only ever appears when the device's GC
//! clock actually advanced during that op.

use docstore::{DocStore, DocStoreConfig};
use durassd::{Ssd, SsdConfig};
use relstore::{Engine, EngineConfig};
use simkit::rng::SimRng;
use simkit::Nanos;
use storage::device::{BlockDevice, LOGICAL_PAGE};
use telemetry::{SegKind, Telemetry};

use crate::ops::{generate, Alphabet, Op};
use crate::oracle::{page_bytes, parse_page, DeviceOracle, KvOracle};

/// Which stack a case drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Capacitor-backed SSD, strict durability oracle.
    Dura,
    /// Volatile-cache SSD, relaxed post-cut oracle + invariants.
    Volatile,
    /// Relational engine (paper's lean config: no barriers, no double
    /// write) on DuraSSD data + log devices.
    Engine,
    /// Document store on a DuraSSD.
    Doc,
}

impl Target {
    pub fn name(&self) -> &'static str {
        match self {
            Target::Dura => "dura",
            Target::Volatile => "volatile",
            Target::Engine => "engine",
            Target::Doc => "doc",
        }
    }

    pub fn parse(s: &str) -> Option<Target> {
        match s {
            "dura" => Some(Target::Dura),
            "volatile" => Some(Target::Volatile),
            "engine" => Some(Target::Engine),
            "doc" => Some(Target::Doc),
            _ => None,
        }
    }

    pub fn all() -> [Target; 4] {
        [Target::Dura, Target::Volatile, Target::Engine, Target::Doc]
    }

    fn alphabet(&self) -> Alphabet {
        match self {
            Target::Dura | Target::Volatile => Alphabet::Device,
            Target::Engine | Target::Doc => Alphabet::Store,
        }
    }
}

/// A divergence between implementation and oracle (or an invariant
/// violation), pinned to the step that surfaced it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Index into the op sequence.
    pub step: usize,
    /// Trace token of the offending op.
    pub op: String,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "step {} (op `{}`): {}", self.step, self.op, self.msg)
    }
}

/// The fuzzing device: tiny geometry shrunk further (8 blocks/plane) so
/// GC pressure arrives within a few hundred ops, a small cache so drain
/// and coalesce paths run hot, and a modest logical space so overwrite
/// chains and preimages are common.
fn fuzz_cfg(volatile: bool) -> SsdConfig {
    let base = if volatile { SsdConfig::tiny_volatile() } else { SsdConfig::tiny_test() };
    base.to_builder().blocks_per_plane(8).logical_capacity_pages(192).cache_slots(8).build()
}

/// Logical capacity the device generators draw lpns from.
pub fn device_lpn_space() -> u64 {
    192
}

/// Generate the op sequence for `(target, seed, nops)` and run it.
/// Returns the sequence (for shrinking) and the verdict.
pub fn run_seed(target: Target, seed: u64, nops: usize) -> (Vec<Op>, Result<(), Failure>) {
    let mut rng = SimRng::seed_from_u64(seed);
    let ops = generate(&mut rng, target.alphabet(), nops, device_lpn_space());
    let verdict = run_case(target, &ops);
    (ops, verdict)
}

/// Replay `ops` against `target` from a fresh stack.
///
/// Panics inside the stack under test are caught and reported as
/// failures — a fuzzer that dies on the first `unwrap` can neither
/// shrink the trace nor keep hunting.
pub fn run_case(target: Target, ops: &[Op]) -> Result<(), Failure> {
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match target {
        Target::Dura => run_device_case(ops, false),
        Target::Volatile => run_device_case(ops, true),
        Target::Engine => run_engine_case(ops),
        Target::Doc => run_doc_case(ops),
    }));
    match run {
        Ok(verdict) => verdict,
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            Err(Failure { step: ops.len(), op: "<panic>".into(), msg: format!("panic: {msg}") })
        }
    }
}

fn fail(step: usize, op: &Op, msg: impl Into<String>) -> Failure {
    Failure { step, op: op.to_string(), msg: msg.into() }
}

/// A fresh anatomy-enabled registry for one fuzz case.
fn fuzz_tel() -> Telemetry {
    let tel = Telemetry::new();
    tel.enable_anatomy(4);
    tel
}

/// The per-step anatomy audit: the conservation counter must never tick,
/// and no frame may be left dangling between steps.
fn audit_anatomy(tel: &Telemetry) -> Result<(), String> {
    if tel.anatomy_violations() > 0 {
        let last = tel.last_breakdown().map(|b| b.to_json()).unwrap_or_default();
        return Err(format!("anatomy conservation violated (last op: {last})"));
    }
    if tel.frame_depth() != 0 {
        return Err(format!("{} anatomy frame(s) left open after the op", tel.frame_depth()));
    }
    Ok(())
}

// ---------------------------------------------------------------- device

struct DeviceCase {
    dev: Ssd,
    now: Nanos,
    oracle: DeviceOracle,
    tel: Telemetry,
    /// GC clock at the open of the current frame; a `gc_wait` segment in
    /// the closing breakdown without this clock advancing is a false
    /// attribution.
    gc_mark: Nanos,
}

impl DeviceCase {
    fn new(volatile: bool) -> Self {
        let cfg = fuzz_cfg(volatile);
        let cap = cfg.logical_capacity_pages;
        let tel = fuzz_tel();
        let mut dev = Ssd::new(cfg);
        dev.attach_telemetry(tel.clone());
        Self { dev, now: 0, oracle: DeviceOracle::new(cap, volatile), tel, gc_mark: 0 }
    }

    /// Run one device command inside an anatomy frame, auditing the
    /// conservation identity and GC attribution when it closes. Failed
    /// commands close the frame at issue time so no frame dangles.
    fn framed<E: std::fmt::Display>(
        &mut self,
        name: &'static str,
        issue: Nanos,
        f: impl FnOnce(&mut Ssd) -> Result<Nanos, E>,
    ) -> Result<Nanos, String> {
        self.gc_mark = self.dev.gc_time();
        self.tel.begin_frame(name, issue);
        let res = f(&mut self.dev);
        self.tel.end_frame(name, *res.as_ref().unwrap_or(&issue));
        self.audit(name)?;
        res.map_err(|e| format!("{name} failed: {e}"))
    }

    fn audit(&self, name: &str) -> Result<(), String> {
        audit_anatomy(&self.tel).map_err(|m| format!("{name}: {m}"))?;
        if let Some(bd) = self.tel.last_breakdown() {
            let gc = bd.seg(SegKind::GcWait);
            if gc > 0 && self.dev.gc_time() == self.gc_mark {
                return Err(format!(
                    "{name}: breakdown charges {gc}ns of gc_wait but GC never ran during the op"
                ));
            }
        }
        Ok(())
    }

    fn acked_write(&mut self, lpn: u64, pages: u32) -> Result<(), String> {
        let v = self.oracle.issue_version();
        let mut data = Vec::with_capacity(pages as usize * LOGICAL_PAGE);
        for i in 0..pages as u64 {
            data.extend_from_slice(&page_bytes(lpn + i, v));
        }
        let now = self.now;
        let done = self.framed("dev.write", now, |d| d.write(lpn, &data, now))?;
        self.now = self.now.max(done);
        for i in 0..pages as u64 {
            self.oracle.write(lpn + i, v);
        }
        Ok(())
    }

    fn checked_read(&mut self, lpn: u64, pages: u32) -> Result<(), String> {
        let mut buf = vec![0u8; pages as usize * LOGICAL_PAGE];
        let now = self.now;
        self.gc_mark = self.dev.gc_time();
        self.tel.begin_frame("dev.read", now);
        let res = self.dev.read(lpn, pages, &mut buf, now);
        self.tel.end_frame("dev.read", *res.as_ref().unwrap_or(&now));
        self.audit("dev.read")?;
        match res {
            Ok(done) => {
                self.now = self.now.max(done);
                for i in 0..pages as u64 {
                    let off = i as usize * LOGICAL_PAGE;
                    let obs = parse_page(&buf[off..off + LOGICAL_PAGE]);
                    self.oracle.check_read(lpn + i, &obs)?;
                }
                Ok(())
            }
            Err(e) => self.oracle.check_read_err(lpn, pages, &e),
        }
    }

    fn apply(&mut self, op: &Op) -> Result<(), String> {
        match *op {
            Op::Write { lpn, pages } => self.acked_write(lpn, pages),
            Op::Read { lpn, pages } => self.checked_read(lpn, pages),
            Op::Trim { lpn, pages } => {
                let now = self.now;
                let done = self.framed("dev.discard", now, |d| d.discard(lpn, pages, now))?;
                self.now = self.now.max(done);
                for i in 0..pages as u64 {
                    self.oracle.trim(lpn + i);
                }
                Ok(())
            }
            Op::Flush => {
                let now = self.now;
                let done = self.framed("dev.flush", now, |d| d.flush(now))?;
                self.now = self.now.max(done);
                self.oracle.flush();
                Ok(())
            }
            Op::Burst { lpn, n } => {
                // All issued at the same clock value: NCQ-depth pressure.
                // Each write gets its own frame — overlapping commands at
                // one t0 must each conserve individually.
                let t0 = self.now;
                let mut latest = t0;
                for i in 0..n as u64 {
                    let v = self.oracle.issue_version();
                    let data = page_bytes(lpn + i, v);
                    let done = self.framed("dev.write", t0, |d| d.write(lpn + i, &data, t0))?;
                    latest = latest.max(done);
                    self.oracle.write(lpn + i, v);
                }
                self.now = self.now.max(latest);
                Ok(())
            }
            Op::GcFill { start, pages } => {
                let cap = self.dev.config().logical_capacity_pages;
                for i in 0..pages as u64 {
                    let l = (start + i) % cap;
                    self.acked_write(l, 1)?;
                }
                Ok(())
            }
            Op::PowerCut => {
                self.dev.power_cut(self.now);
                self.oracle.power_cut();
                let up = self.now + 10_000_000;
                self.now = self.dev.reboot(up).max(up);
                Ok(())
            }
            Op::CutDuringWrite { lpn, pages } => {
                let v = self.oracle.issue_version();
                let mut data = Vec::with_capacity(pages as usize * LOGICAL_PAGE);
                for i in 0..pages as u64 {
                    data.extend_from_slice(&page_bytes(lpn + i, v));
                }
                let now = self.now;
                let done = self.framed("dev.write", now, |d| d.write(lpn, &data, now))?;
                // Cut strictly inside the un-acked window: the host never
                // saw the ack, so the write must roll back completely.
                self.dev.power_cut(done.saturating_sub(1));
                self.oracle.aborted_write(lpn, pages);
                self.oracle.power_cut();
                let up = done + 10_000_000;
                self.now = self.dev.reboot(up).max(up);
                Ok(())
            }
            Op::TrimCutDuringWrite { lpn } => {
                let v = self.oracle.issue_version();
                let data = page_bytes(lpn, v);
                let now = self.now;
                let done = self.framed("dev.write", now, |d| d.write(lpn, &data, now))?;
                // TRIM the same lpn while the write is still un-acked...
                self.framed("dev.discard", now, |d| d.discard(lpn, 1, now))?;
                // ...then cut before the ack. The un-acked write rolls
                // back; the trim is the last surviving word on this lpn.
                self.dev.power_cut(done.saturating_sub(1));
                self.oracle.aborted_write(lpn, 1);
                self.oracle.trim(lpn);
                self.oracle.power_cut();
                let up = done + 10_000_000;
                self.now = self.dev.reboot(up).max(up);
                Ok(())
            }
            _ => Err(format!("op {op} is not a device op")),
        }
    }
}

fn run_device_case(ops: &[Op], volatile: bool) -> Result<(), Failure> {
    let mut case = DeviceCase::new(volatile);
    for (step, op) in ops.iter().enumerate() {
        case.apply(op).map_err(|msg| fail(step, op, msg))?;
        case.dev
            .check_invariants()
            .map_err(|msg| fail(step, op, format!("invariant violation: {msg}")))?;
    }
    Ok(())
}

// ---------------------------------------------------------------- engine

fn key_of(key: u64) -> Vec<u8> {
    format!("k{key:04}").into_bytes()
}

fn val_of(key: u64, version: u64) -> Vec<u8> {
    format!("v{version}:{key}:{}", "x".repeat(48)).into_bytes()
}

/// Decode a stored value back to its version number.
fn version_of(val: &[u8], key: u64) -> Result<u64, String> {
    let s = std::str::from_utf8(val).map_err(|_| format!("key {key}: non-utf8 value"))?;
    let rest = s.strip_prefix('v').ok_or_else(|| format!("key {key}: bad value {s:?}"))?;
    let (ver, tail) = rest.split_once(':').ok_or_else(|| format!("key {key}: bad value {s:?}"))?;
    let v: u64 = ver.parse().map_err(|_| format!("key {key}: bad version in {s:?}"))?;
    if tail != format!("{key}:{}", "x".repeat(48)) {
        return Err(format!("key {key}: value body mangled: {s:?}"));
    }
    Ok(v)
}

fn engine_cfg() -> EngineConfig {
    // The paper's lean mount on DuraSSD: no barriers, no double write —
    // safe *because* the cache is capacitor-backed. Exactly the claim the
    // fuzzer should hammer on.
    EngineConfig {
        page_size: 4096,
        buffer_pool_bytes: 32 * 4096,
        double_write: false,
        full_page_writes: false,
        barriers: false,
        o_dsync: false,
        data_pages: 512,
        log_files: 2,
        log_file_blocks: 64,
        dwb_pages: 16,
        // Commit-count policy with a short interval so the policy-driven
        // `ckpt` op actually fires checkpoints mid-trace.
        checkpoint_policy: relstore::CheckpointPolicy::EveryNCommits(6),
    }
}

fn engine_dev() -> Ssd {
    Ssd::new(SsdConfig::tiny_test())
}

fn check_engine_invariants(e: &Engine<Ssd, Ssd>) -> Result<(), String> {
    e.data_volume().device().check_invariants().map_err(|m| format!("data dev: {m}"))?;
    e.log_volume().device().check_invariants().map_err(|m| format!("log dev: {m}"))
}

fn run_engine_case(ops: &[Op]) -> Result<(), Failure> {
    let cfg = engine_cfg();
    let tel = fuzz_tel();
    let mut data = engine_dev();
    data.attach_telemetry(tel.clone());
    let mut log = engine_dev();
    log.attach_telemetry(tel.clone());
    let (mut eng, t0) = Engine::create(data, log, cfg, 0).into_parts();
    eng.attach_telemetry(tel.clone());
    let (tree, t1) = eng.create_tree(t0).into_parts();
    let mut now = eng.checkpoint(t1);
    let mut oracle = KvOracle::new();
    for (step, op) in ops.iter().enumerate() {
        match *op {
            Op::Put { key } => {
                let v = oracle.issue_version();
                now = eng.put(tree, &key_of(key), &val_of(key, v), now);
                oracle.put(key, v);
            }
            Op::GetKey { key } => {
                let (got, t) = eng.get(tree, &key_of(key), now).into_parts();
                now = t;
                let got_v = match got {
                    Some(bytes) => Some(version_of(&bytes, key).map_err(|m| fail(step, op, m))?),
                    None => None,
                };
                let want = oracle.expect(key);
                if got_v != want {
                    return Err(fail(
                        step,
                        op,
                        format!("key {key}: engine returned {got_v:?}, oracle expects {want:?}"),
                    ));
                }
            }
            Op::Del { key } => {
                let (_, t) = eng.delete(tree, &key_of(key), now).into_parts();
                now = t;
                oracle.del(key);
            }
            Op::Commit => {
                now = eng.commit(now);
                oracle.commit();
            }
            Op::Checkpoint => {
                now = eng.checkpoint(now);
            }
            Op::Ckpt => {
                // Policy-driven: checkpoint only if the WAL's policy says
                // one is due — exercises the lag-one header advance.
                if eng.needs_checkpoint() {
                    now = eng.checkpoint(now);
                }
            }
            Op::CrashRecover => {
                let (d, l) = eng.crash(now + 1);
                let recovered = Engine::recover(d, l, engine_cfg(), now + 2)
                    .map_err(|e| fail(step, op, format!("recovery failed: {e}")))?;
                let (e2, t2) = recovered.into_parts();
                eng = e2;
                // The devices keep their telemetry through the crash;
                // recovery itself runs unframed, post-recovery ops frame
                // again once the engine is re-attached.
                eng.attach_telemetry(tel.clone());
                now = t2;
                for key in oracle.keys() {
                    let (got, t) = eng.get(tree, &key_of(key), now).into_parts();
                    now = t;
                    let got_v = match got {
                        Some(bytes) => {
                            Some(version_of(&bytes, key).map_err(|m| fail(step, op, m))?)
                        }
                        None => None,
                    };
                    oracle.absorb_recovered(key, got_v).map_err(|m| fail(step, op, m))?;
                }
                oracle.finish_recovery();
            }
            _ => return Err(fail(step, op, "not a store op")),
        }
        check_engine_invariants(&eng)
            .map_err(|m| fail(step, op, format!("invariant violation: {m}")))?;
        audit_anatomy(&tel).map_err(|m| fail(step, op, format!("anatomy audit: {m}")))?;
    }
    Ok(())
}

// --------------------------------------------------------------- docstore

fn doc_cfg() -> DocStoreConfig {
    DocStoreConfig {
        batch_size: 4,
        barriers: false, // DuraSSD underneath: the lean mount
        file_blocks: 512,
        auto_compact_pct: 60,
        checkpoint_every_n_commits: 4,
    }
}

fn run_doc_case(ops: &[Op]) -> Result<(), Failure> {
    let tel = fuzz_tel();
    let mut dev = engine_dev();
    dev.attach_telemetry(tel.clone());
    let mut store = DocStore::create(dev, doc_cfg());
    store.attach_telemetry(tel.clone());
    let mut now: Nanos = store.commit_header(0);
    let mut oracle = KvOracle::new();
    for (step, op) in ops.iter().enumerate() {
        match *op {
            Op::Put { key } => {
                let v = oracle.issue_version();
                now = store.set(&key_of(key), &val_of(key, v), now);
                oracle.put(key, v);
            }
            Op::GetKey { key } => {
                let (got, t) = store.get(&key_of(key), now).into_parts();
                now = t;
                let got_v = match got {
                    Some(bytes) => Some(version_of(&bytes, key).map_err(|m| fail(step, op, m))?),
                    None => None,
                };
                let want = oracle.expect(key);
                if got_v != want {
                    return Err(fail(
                        step,
                        op,
                        format!("key {key}: docstore returned {got_v:?}, oracle expects {want:?}"),
                    ));
                }
            }
            Op::Del { key } => {
                now = store.delete(&key_of(key), now);
                oracle.del(key);
            }
            Op::Commit => {
                now = store.commit_header(now);
                oracle.commit();
            }
            Op::Checkpoint => {
                now = store.compact(now);
            }
            Op::Ckpt => {
                // Force a checkpoint anchor header: the chain walk during
                // the next recovery stops here.
                now = store.commit_checkpoint(now);
                oracle.commit();
            }
            Op::CrashRecover => {
                let dev = store.crash(now + 1);
                let (s2, t2) = DocStore::recover(dev, doc_cfg(), now + 2).into_parts();
                store = s2;
                store.attach_telemetry(tel.clone());
                now = t2;
                for key in oracle.keys() {
                    let (got, t) = store.get(&key_of(key), now).into_parts();
                    now = t;
                    let got_v = match got {
                        Some(bytes) => {
                            Some(version_of(&bytes, key).map_err(|m| fail(step, op, m))?)
                        }
                        None => None,
                    };
                    oracle.absorb_recovered(key, got_v).map_err(|m| fail(step, op, m))?;
                }
                oracle.finish_recovery();
            }
            _ => return Err(fail(step, op, "not a store op")),
        }
        store
            .device()
            .check_invariants()
            .map_err(|m| fail(step, op, format!("invariant violation: {m}")))?;
        audit_anatomy(&tel).map_err(|m| fail(step, op, format!("anatomy audit: {m}")))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::parse_trace;

    #[test]
    fn targets_parse_and_name_round_trip() {
        for t in Target::all() {
            assert_eq!(Target::parse(t.name()), Some(t));
        }
        assert_eq!(Target::parse("nope"), None);
    }

    #[test]
    fn simple_device_trace_passes() {
        let ops = parse_trace("w:1:1 w:2:2 r:1:1 f r:2:2 t:1:1 r:1:1").unwrap();
        assert!(run_case(Target::Dura, &ops).is_ok());
    }

    #[test]
    fn dura_survives_a_clean_cut() {
        let ops = parse_trace("w:3:1 cut r:3:1").unwrap();
        run_case(Target::Dura, &ops).unwrap();
    }

    #[test]
    fn unacked_write_rolls_back_on_dura() {
        let ops = parse_trace("w:3:1 f cw:3:1 r:3:1").unwrap();
        run_case(Target::Dura, &ops).unwrap();
    }

    #[test]
    fn harness_catches_a_planted_stale_read() {
        // Sanity-check the oracle actually bites: claim a write happened
        // that the device never saw.
        let mut case = DeviceCase::new(false);
        let v = case.oracle.issue_version();
        case.oracle.write(9, v); // planted lie
        assert!(case.checked_read(9, 1).is_err());
    }

    #[test]
    fn small_store_traces_pass() {
        let ops = parse_trace("p:1 p:2 gk:1 c gk:2 d:1 gk:1 c gk:1").unwrap();
        run_case(Target::Engine, &ops).unwrap();
        run_case(Target::Doc, &ops).unwrap();
    }

    #[test]
    fn gc_attribution_survives_gc_pressure() {
        // Hammer the 8-blocks/plane device into steady GC; the per-op audit
        // inside `framed` rejects any gc_wait segment charged to an op the
        // GC clock cannot explain, and requires exact conservation — so a
        // passing run IS the regression assertion.
        let ops =
            parse_trace("g:0:96 g:96:96 f g:0:96 b:0:8 g:96:96 r:5:1 g:0:96 f r:50:1").unwrap();
        run_case(Target::Dura, &ops).unwrap();
        run_case(Target::Volatile, &ops).unwrap();
    }

    #[test]
    fn anatomy_audit_holds_across_seeded_cases() {
        // A miniature soak (the CI soak runs hundreds of cases): every
        // target, a few seeds, per-op conservation audited at every step.
        for target in Target::all() {
            for seed in 0..5u64 {
                let (ops, verdict) = run_seed(target, 0xA0A0 + seed, 120);
                if let Err(f) = verdict {
                    panic!("{}/{seed}: {f} (trace: {} ops)", target.name(), ops.len());
                }
            }
        }
    }
}

//! Seed-level determinism pins: the repro lines `simtest` prints are only
//! useful if the whole pipeline — generation, replay, shrinking — produces
//! byte-identical results on every run of the same seed.

use simtest::{run_seed, shrink, trace_string, Op, Target};

/// The full campaign pipeline is deterministic: running the same seed
/// twice yields the identical op sequence and the identical verdict, for
/// every target.
#[test]
fn run_seed_is_reproducible_across_runs() {
    for target in Target::all() {
        for seed in [0u64, 7, 1234] {
            let (ops_a, verdict_a) = run_seed(target, seed, 120);
            let (ops_b, verdict_b) = run_seed(target, seed, 120);
            assert_eq!(ops_a, ops_b, "target {} seed {seed}: op sequences diverged", target.name());
            assert_eq!(
                verdict_a.is_ok(),
                verdict_b.is_ok(),
                "target {} seed {seed}: verdicts diverged",
                target.name()
            );
            assert_eq!(trace_string(&ops_a), trace_string(&ops_b));
        }
    }
}

/// Shrinking a failing seed twice produces the identical minimal trace.
///
/// The healthy stack has no failing seeds (that is the point of the
/// campaign), so the failure is injected as a deterministic semantic
/// predicate over the *generated* ops of a real seed — the same shape the
/// runner uses (`run_case(..).is_err()`), minus the bug. The property
/// pinned here is end-to-end: seed → generated sequence → ddmin loop →
/// printed trace, stable across runs.
#[test]
fn shrinking_a_failing_seed_twice_gives_identical_minimal_trace() {
    // Generate the exact op sequence the campaign would run for this seed.
    let (ops, verdict) = run_seed(Target::Dura, 42, 400);
    assert!(verdict.is_ok(), "seed 42 is a passing seed on the healthy stack");

    // Injected "bug": the case fails iff a power cut happens after at
    // least two writes touched the same lpn (a stand-in for a real
    // cut-interaction failure, with the same multi-op dependency shape).
    let fails = |sub: &[Op]| {
        let mut seen = std::collections::HashMap::new();
        let mut doubled = false;
        for op in sub {
            match op {
                Op::Write { lpn, .. } => {
                    let c = seen.entry(*lpn).or_insert(0u32);
                    *c += 1;
                    if *c >= 2 {
                        doubled = true;
                    }
                }
                Op::PowerCut if doubled => return true,
                _ => {}
            }
        }
        false
    };
    assert!(fails(&ops), "seed 42 must trigger the injected predicate");

    let min_a = shrink(&ops, fails);
    let min_b = shrink(&ops, fails);
    assert_eq!(
        trace_string(&min_a),
        trace_string(&min_b),
        "same failing seed must shrink to the identical minimal trace"
    );
    // 1-minimality: removing any single op breaks the repro.
    assert!(fails(&min_a));
    for i in 0..min_a.len() {
        let mut cand = min_a.clone();
        cand.remove(i);
        assert!(!fails(&cand), "minimal trace is not 1-minimal at op {i}");
    }
    // The minimal shape for this predicate: two writes to one lpn + a cut.
    assert_eq!(min_a.len(), 3, "expected `w w cut`, got {:?}", trace_string(&min_a));
}

/// Replaying the trace printed for a failure is itself deterministic:
/// `run_case` on the same trace gives the same verdict every time. (This
/// is what makes the printed `--trace` line a trustworthy repro.)
#[test]
fn run_case_verdict_is_stable_for_a_fixed_trace() {
    let trace = "w:3:1 f cw:3:2 r:3:1 tcw:5 g:0:64 cut r:5:1";
    let ops = simtest::parse_trace(trace).unwrap();
    let a = simtest::run_case(Target::Volatile, &ops);
    let b = simtest::run_case(Target::Volatile, &ops);
    assert_eq!(a.is_ok(), b.is_ok());
    assert!(a.is_ok(), "healthy stack must pass this trace: {:?}", a.err());
}

//! Copy-on-write B+-tree node encoding.
//!
//! Nodes are immutable once appended (couchstore-style): an update rewrites
//! the whole root-to-leaf path. Both node kinds share one entry layout:
//! `(key, ptr, len)` where the pointer refers to a document (leaf) or a
//! child node (internal); an internal entry's key is the **max key** of its
//! child's subtree. A leaf entry with `len == 0` is a deletion tombstone.

use simkit::crc32;

/// Target serialized node size (couchstore uses ~4KB chunks).
pub const NODE_CAP: usize = 4096;

/// Node kinds.
pub const KIND_LEAF: u8 = 0;
/// Internal node marker.
pub const KIND_INTERNAL: u8 = 1;

/// One node entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Key (leaf) or subtree max key (internal).
    pub key: Vec<u8>,
    /// Byte offset of the document / child node.
    pub ptr: u64,
    /// Length of the document / child node; 0 marks a leaf tombstone.
    pub len: u32,
}

impl Entry {
    fn encoded_len(&self) -> usize {
        2 + 8 + 4 + self.key.len()
    }
}

/// Serialized size of a node with these entries.
pub fn node_size(entries: &[Entry]) -> usize {
    // kind + count + crc + entries
    1 + 2 + 4 + entries.iter().map(Entry::encoded_len).sum::<usize>()
}

/// Serialize a node (with CRC for torn-write detection).
pub fn encode_node(kind: u8, entries: &[Entry]) -> Vec<u8> {
    let mut out = Vec::with_capacity(node_size(entries));
    out.push(kind);
    out.extend_from_slice(&(entries.len() as u16).to_le_bytes());
    out.extend_from_slice(&[0u8; 4]); // crc placeholder
    for e in entries {
        out.extend_from_slice(&(e.key.len() as u16).to_le_bytes());
        out.extend_from_slice(&e.ptr.to_le_bytes());
        out.extend_from_slice(&e.len.to_le_bytes());
        out.extend_from_slice(&e.key);
    }
    let crc = crc32(&out[7..]);
    out[3..7].copy_from_slice(&crc.to_le_bytes());
    out
}

/// Parse a node; `None` when malformed or CRC-corrupt.
pub fn decode_node(buf: &[u8]) -> Option<(u8, Vec<Entry>)> {
    if buf.len() < 7 {
        return None;
    }
    let kind = buf[0];
    if kind != KIND_LEAF && kind != KIND_INTERNAL {
        return None;
    }
    let n = u16::from_le_bytes(buf[1..3].try_into().ok()?) as usize;
    let crc = u32::from_le_bytes(buf[3..7].try_into().ok()?);
    if crc != crc32(&buf[7..]) {
        return None;
    }
    let mut pos = 7usize;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        if pos + 14 > buf.len() {
            return None;
        }
        let klen = u16::from_le_bytes(buf[pos..pos + 2].try_into().ok()?) as usize;
        let ptr = u64::from_le_bytes(buf[pos + 2..pos + 10].try_into().ok()?);
        let len = u32::from_le_bytes(buf[pos + 10..pos + 14].try_into().ok()?);
        pos += 14;
        if pos + klen > buf.len() {
            return None;
        }
        entries.push(Entry { key: buf[pos..pos + klen].to_vec(), ptr, len });
        pos += klen;
    }
    if pos != buf.len() {
        return None;
    }
    Some((kind, entries))
}

/// Split an over-full entry list into balanced chunks each under
/// [`NODE_CAP`]. Returns at least one chunk.
pub fn split_entries(entries: Vec<Entry>) -> Vec<Vec<Entry>> {
    if node_size(&entries) <= NODE_CAP {
        return vec![entries];
    }
    let total: usize = entries.iter().map(Entry::encoded_len).sum();
    let parts = total.div_ceil(NODE_CAP - 7).max(2);
    let target = total.div_ceil(parts);
    let mut out = Vec::with_capacity(parts);
    let mut cur = Vec::new();
    let mut acc = 0usize;
    for e in entries {
        let el = e.encoded_len();
        if acc + el > target && !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
            acc = 0;
        }
        acc += el;
        cur.push(e);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Locate the child index an internal node routes `key` to: the first entry
/// whose max-key is `>= key`, else the last entry.
pub fn route(entries: &[Entry], key: &[u8]) -> usize {
    match entries.binary_search_by(|e| e.key.as_slice().cmp(key)) {
        Ok(i) => i,
        Err(i) => i.min(entries.len() - 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(k: &str, ptr: u64) -> Entry {
        Entry { key: k.as_bytes().to_vec(), ptr, len: 10 }
    }

    #[test]
    fn encode_decode_round_trip() {
        let entries = vec![entry("apple", 1), entry("mango", 2), entry("zebra", 3)];
        let buf = encode_node(KIND_LEAF, &entries);
        let (kind, back) = decode_node(&buf).unwrap();
        assert_eq!(kind, KIND_LEAF);
        assert_eq!(back, entries);
    }

    #[test]
    fn corruption_detected() {
        let entries = vec![entry("k", 1)];
        let mut buf = encode_node(KIND_INTERNAL, &entries);
        buf[10] ^= 0xff;
        assert!(decode_node(&buf).is_none());
        assert!(decode_node(&buf[..3]).is_none());
        assert!(decode_node(&[]).is_none());
    }

    #[test]
    fn split_balances_by_bytes() {
        let entries: Vec<Entry> = (0..600).map(|i| entry(&format!("key{i:05}"), i)).collect();
        let chunks = split_entries(entries.clone());
        assert!(chunks.len() >= 2);
        for c in &chunks {
            assert!(node_size(c) <= NODE_CAP, "chunk too big: {}", node_size(c));
            assert!(!c.is_empty());
        }
        let flat: Vec<Entry> = chunks.into_iter().flatten().collect();
        assert_eq!(flat, entries, "order preserved");
    }

    #[test]
    fn small_list_not_split() {
        let entries = vec![entry("a", 1)];
        assert_eq!(split_entries(entries.clone()), vec![entries]);
    }

    #[test]
    fn routing_picks_first_cover() {
        let entries = vec![entry("g", 0), entry("p", 1), entry("z", 2)];
        assert_eq!(route(&entries, b"a"), 0);
        assert_eq!(route(&entries, b"g"), 0);
        assert_eq!(route(&entries, b"h"), 1);
        assert_eq!(route(&entries, b"p"), 1);
        assert_eq!(route(&entries, b"q"), 2);
        // Beyond the max key: clamp to the last child (inserts grow it).
        assert_eq!(route(&entries, b"zz"), 2);
    }

    mod proptests {
        use super::*;
        use simkit::dist::{rng, Rng};
        use std::collections::BTreeMap;

        fn random_entries<R: Rng>(r: &mut R) -> Vec<Entry> {
            let mut m: BTreeMap<Vec<u8>, (u64, u32)> = BTreeMap::new();
            for _ in 0..r.gen_range(1..200usize) {
                let klen = r.gen_range(1..30usize);
                let key: Vec<u8> = (0..klen).map(|_| r.gen::<u8>()).collect();
                m.insert(key, (r.gen::<u64>(), r.gen_range(1..10_000u32)));
            }
            m.into_iter().map(|(key, (ptr, len))| Entry { key, ptr, len }).collect()
        }

        #[test]
        fn node_codec_round_trips() {
            let mut r = rng(0xC07);
            for _ in 0..256 {
                let entries = random_entries(&mut r);
                for kind in [KIND_LEAF, KIND_INTERNAL] {
                    let buf = encode_node(kind, &entries);
                    let (k2, back) = decode_node(&buf).unwrap();
                    assert_eq!(k2, kind);
                    assert_eq!(&back, &entries);
                }
            }
        }

        #[test]
        fn splits_preserve_order_and_fit() {
            let mut r = rng(0x5117);
            for _ in 0..256 {
                let entries = random_entries(&mut r);
                let chunks = split_entries(entries.clone());
                let flat: Vec<Entry> = chunks.iter().flatten().cloned().collect();
                assert_eq!(flat, entries);
                for c in &chunks {
                    assert!(!c.is_empty());
                    if chunks.len() > 1 {
                        assert!(node_size(c) <= NODE_CAP);
                    }
                }
            }
        }
    }
}

//! Append-only byte space over a block device region.
//!
//! Couchbase's couchstore writes everything — documents, B-tree nodes,
//! headers — by appending to one file and fsyncing at batch boundaries. This
//! module provides that substrate: a byte-addressed append cursor over a
//! [`PageFile`] of 4KB blocks, with partial-tail rewrite on each device
//! write (like any buffered file I/O path).
//!
//! `durable_len` models the file length recorded in journaled file-system
//! metadata: recovery scans backwards from it for the newest valid header.

use simkit::Nanos;
use storage::device::{BlockDevice, DevError, WriteCause};
use storage::file::PageFile;
use storage::volume::Volume;

/// Block size of the underlying file.
pub const BLOCK: usize = 4096;

/// Append-only byte space.
pub struct AppendSpace {
    file: PageFile,
    /// Logical end of file (bytes appended so far).
    len: u64,
    /// Bytes appended but not yet handed to the device.
    pending: Vec<u8>,
    /// Byte offset where `pending` starts.
    pending_start: u64,
    /// Durable image of the current partial tail block.
    tail_image: Vec<u8>,
    /// File length as of the last fsync (journaled fs metadata).
    durable_len: u64,
}

/// Statistics for the append space.
#[derive(Debug, Clone, Copy, Default)]
pub struct AppendStats {
    /// Bytes appended (logical).
    pub appended_bytes: u64,
    /// Device write commands issued.
    pub device_writes: u64,
}

impl AppendSpace {
    /// Wrap a pre-allocated file region.
    pub fn new(file: PageFile) -> Self {
        assert_eq!(file.page_size(), BLOCK);
        Self {
            file,
            len: 0,
            pending: Vec::new(),
            pending_start: 0,
            tail_image: vec![0u8; BLOCK],
            durable_len: 0,
        }
    }

    /// Re-open after recovery, positioned at `len` (all durable).
    pub fn reopen(file: PageFile, len: u64, tail_image: Vec<u8>) -> Self {
        Self { file, len, pending: Vec::new(), pending_start: len, tail_image, durable_len: len }
    }

    /// Current logical length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// File length at the last fsync (what recovery can trust to exist).
    pub fn durable_len(&self) -> u64 {
        self.durable_len
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.file.pages() * BLOCK as u64
    }

    /// Append bytes; returns their offset. Data is buffered until
    /// [`AppendSpace::write_out`].
    pub fn append(&mut self, data: &[u8]) -> u64 {
        assert!(
            self.len + data.len() as u64 <= self.capacity(),
            "append space full: compaction required"
        );
        let off = self.len;
        self.pending.extend_from_slice(data);
        self.len += data.len() as u64;
        off
    }

    /// Round the cursor up to the next block boundary (headers are
    /// block-aligned, like couchstore's).
    pub fn align_to_block(&mut self) {
        let rem = (self.len % BLOCK as u64) as usize;
        if rem != 0 {
            let pad = BLOCK - rem;
            self.pending.extend(std::iter::repeat_n(0, pad));
            self.len += pad as u64;
        }
    }

    /// Push all buffered bytes to the device as block writes. Returns the
    /// completion time.
    pub fn write_out<D: BlockDevice>(&mut self, vol: &mut Volume<D>, now: Nanos) -> Nanos {
        if self.pending.is_empty() {
            return now;
        }
        let start_block = self.pending_start / BLOCK as u64;
        let start_off = (self.pending_start % BLOCK as u64) as usize;
        let end = self.pending_start + self.pending.len() as u64;
        let end_block = end.div_ceil(BLOCK as u64);
        let nblocks = (end_block - start_block) as usize;
        let mut run = vec![0u8; nblocks * BLOCK];
        run[..start_off].copy_from_slice(&self.tail_image[..start_off]);
        run[start_off..start_off + self.pending.len()].copy_from_slice(&self.pending);
        // Everything this space writes — docs, B-tree path nodes, commit
        // headers — is copy-on-write rewrite traffic of the couchstore-style
        // engine; tag it for the per-cause WAF breakdown.
        vol.push_cause(WriteCause::DocRewrite);
        let t = self
            .file
            .write_pages(vol, start_block, &run, now)
            .expect("append space sized at creation");
        vol.pop_cause();
        // Remember the new durable tail image.
        let tail_off = (end % BLOCK as u64) as usize;
        if tail_off == 0 {
            self.tail_image.fill(0);
        } else {
            self.tail_image[..tail_off]
                .copy_from_slice(&run[(nblocks - 1) * BLOCK..(nblocks - 1) * BLOCK + tail_off]);
            self.tail_image[tail_off..].fill(0);
        }
        self.pending.clear();
        self.pending_start = end;
        t
    }

    /// fsync: write out and flush per the volume's barrier policy; advances
    /// the journaled file length.
    pub fn sync<D: BlockDevice>(&mut self, vol: &mut Volume<D>, now: Nanos) -> Nanos {
        let t = self.write_out(vol, now);
        let t = vol.fsync(t).expect("device reachable");
        self.durable_len = self.len;
        t
    }

    /// Read `len` bytes at `offset` (may span blocks). Unwritten regions
    /// read as zero; a shorn block surfaces as `Err`.
    pub fn read<D: BlockDevice>(
        &self,
        vol: &mut Volume<D>,
        offset: u64,
        len: usize,
        now: Nanos,
    ) -> Result<(Vec<u8>, Nanos), DevError> {
        // Serve from the pending buffer if the range is still in memory.
        if offset >= self.pending_start {
            let rel = (offset - self.pending_start) as usize;
            if rel + len <= self.pending.len() {
                return Ok((self.pending[rel..rel + len].to_vec(), now));
            }
        }
        let first = offset / BLOCK as u64;
        let last = (offset + len as u64).div_ceil(BLOCK as u64);
        let nblocks = (last - first) as usize;
        let mut buf = vec![0u8; nblocks * BLOCK];
        let t = self.file.read_pages(vol, first, &mut buf, now)?;
        let rel = (offset - first * BLOCK as u64) as usize;
        let mut out = buf[rel..rel + len].to_vec();
        // Overlay any pending bytes that cover the tail of the range.
        if offset + len as u64 > self.pending_start && !self.pending.is_empty() {
            let overlay_from = self.pending_start.max(offset);
            let dst = (overlay_from - offset) as usize;
            let src = (overlay_from - self.pending_start) as usize;
            let n = (len - dst).min(self.pending.len() - src);
            out[dst..dst + n].copy_from_slice(&self.pending[src..src + n]);
        }
        Ok((out, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storage::testdev::MemDevice;
    use storage::volume::VolumeManager;

    fn setup() -> (Volume<MemDevice>, AppendSpace) {
        let vol = Volume::new(MemDevice::new(1024), true);
        let mut vm = VolumeManager::new(1024);
        let file = PageFile::create(&mut vm, 256, BLOCK);
        (vol, AppendSpace::new(file))
    }

    #[test]
    fn append_read_round_trip() {
        let (mut vol, mut sp) = setup();
        let a = sp.append(b"hello");
        let b = sp.append(&vec![7u8; 10_000]);
        sp.sync(&mut vol, 0);
        let (d, _) = sp.read(&mut vol, a, 5, 100).unwrap();
        assert_eq!(d, b"hello");
        let (d, _) = sp.read(&mut vol, b, 10_000, 100).unwrap();
        assert_eq!(d, vec![7u8; 10_000]);
    }

    #[test]
    fn pending_bytes_are_readable_before_sync() {
        let (mut vol, mut sp) = setup();
        let off = sp.append(b"inflight");
        let (d, _) = sp.read(&mut vol, off, 8, 0).unwrap();
        assert_eq!(d, b"inflight");
    }

    #[test]
    fn read_spanning_durable_and_pending() {
        let (mut vol, mut sp) = setup();
        let a = sp.append(&vec![1u8; 3000]);
        sp.sync(&mut vol, 0);
        sp.append(&vec![2u8; 3000]);
        let (d, _) = sp.read(&mut vol, a, 6000, 100).unwrap();
        assert_eq!(&d[..3000], &vec![1u8; 3000][..]);
        assert_eq!(&d[3000..], &vec![2u8; 3000][..]);
    }

    #[test]
    fn align_pads_to_block() {
        let (_, mut sp) = setup();
        sp.append(b"xyz");
        sp.align_to_block();
        assert_eq!(sp.len() % BLOCK as u64, 0);
        let off = sp.append(b"h");
        assert_eq!(off % BLOCK as u64, 0);
    }

    #[test]
    fn durable_len_advances_on_sync_only() {
        let (mut vol, mut sp) = setup();
        sp.append(&[1u8; 100]);
        assert_eq!(sp.durable_len(), 0);
        sp.sync(&mut vol, 0);
        assert_eq!(sp.durable_len(), 100);
    }

    #[test]
    #[should_panic(expected = "append space full")]
    fn overflow_detected() {
        let (_, mut sp) = setup();
        sp.append(&vec![0u8; 257 * BLOCK]);
    }
}

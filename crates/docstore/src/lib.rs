//! `docstore` — a Couchbase-like document store (the paper's §4.3.3).
//!
//! Couchbase's storage engine (couchstore) is append-only: an update writes
//! the document, then rewrites every B-tree node on the root-to-leaf path,
//! and appends a header; durability comes from an fsync every `batch_size`
//! updates ("Couchbase can adjust the fsync frequency in order to trade
//! durability for performance"). With the paper's numbers — 1KB documents, a
//! ~4-level tree of 4KB nodes — each update writes ~20KB.
//!
//! This crate reproduces that design:
//!
//! * [`append::AppendSpace`] — the append-only file substrate,
//! * [`cowtree`] — immutable (copy-on-write) node encoding,
//! * [`DocStore`] — the store: memory-first document cache (the memcached
//!   layer), COW updates, batched fsync, block-aligned headers, backward
//!   header scan on recovery, and compaction.

pub mod append;
pub mod cowtree;

use append::{AppendSpace, BLOCK};
use cowtree::{
    decode_node, encode_node, node_size, route, split_entries, Entry, KIND_INTERNAL, KIND_LEAF,
    NODE_CAP,
};
use forensics::{Ledger, UnitKind};
use simkit::{crc32, Nanos, Recovered, ReplayStats, Timed};
use std::collections::HashMap;
use storage::device::BlockDevice;
use storage::file::PageFile;
use storage::volume::{Volume, VolumeManager};
use telemetry::Telemetry;
use wal::LogRecord;

const HEADER_MAGIC: u64 = 0x434f_5543_4848_4452;
/// Offset sentinel: "no such header".
const NO_OFF: u64 = u64::MAX;

/// Store configuration.
#[derive(Debug, Clone, Copy)]
pub struct DocStoreConfig {
    /// fsync every `batch_size` updates (Table 5 sweeps 1, 2, 5, 10, 100).
    pub batch_size: u32,
    /// Write barriers on the volume (fsync ⇒ FLUSH CACHE).
    pub barriers: bool,
    /// File size in 4KB blocks.
    pub file_blocks: u64,
    /// Auto-compact when the append file exceeds this fraction (percent) of
    /// its capacity — Couchbase's fragmentation-threshold auto-compaction.
    /// 0 disables.
    pub auto_compact_pct: u8,
    /// Every `n`-th commit header is promoted to a checkpoint *anchor* —
    /// the header-chain analogue of the relational engine's checkpoint.
    /// Recovery counts the commit headers it finds between the newest
    /// header and its anchor as `skipped` work a WAL engine would have had
    /// to replay. Must be at least 1 (1 = every header is an anchor).
    pub checkpoint_every_n_commits: u64,
}

impl DocStoreConfig {
    /// Defaults: fsync every update, barriers on, 64MB file, auto-compact
    /// at 75% fill, a checkpoint anchor every 8 commit headers.
    pub fn new() -> Self {
        Self {
            batch_size: 1,
            barriers: true,
            file_blocks: 16_384,
            auto_compact_pct: 75,
            checkpoint_every_n_commits: 8,
        }
    }

    /// Check internal consistency; called by `create` and `recover`.
    pub fn validate(&self) {
        assert!(self.batch_size >= 1, "batch size must be at least 1 update");
        assert!(self.file_blocks >= 4, "append file too small");
        assert!(
            self.checkpoint_every_n_commits >= 1,
            "checkpoint interval must be at least 1 commit"
        );
    }
}

impl Default for DocStoreConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Store statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct DocStats {
    /// Set (insert/update) operations.
    pub sets: u64,
    /// Get operations.
    pub gets: u64,
    /// Deletes.
    pub deletes: u64,
    /// Gets served from the in-memory object cache.
    pub cache_hits: u64,
    /// fsync batches (headers written).
    pub headers: u64,
    /// Bytes appended (docs + nodes + headers).
    pub bytes_appended: u64,
    /// Unreadable nodes/documents encountered (post-crash corruption).
    pub corrupt_reads: u64,
    /// Compactions run.
    pub compactions: u64,
}

/// The document store over a block device.
pub struct DocStore<D: BlockDevice> {
    vol: Volume<D>,
    space: AppendSpace,
    root: Option<(u64, u32)>,
    depth: u32,
    seq: u64,
    /// Byte offset of the most recent commit header ([`NO_OFF`] if none) —
    /// the head of the backward header chain.
    prev_header_off: u64,
    /// Byte offset of the most recent checkpoint anchor header.
    ckpt_off: u64,
    /// Commit headers written since the last anchor.
    headers_since_ckpt: u64,
    cfg: DocStoreConfig,
    /// Memory-first object cache (Couchbase's managed-cache layer).
    doc_cache: HashMap<Vec<u8>, Option<Vec<u8>>>,
    /// Immutable node cache (OS page cache stand-in; nodes never change).
    node_cache: HashMap<u64, (u8, Vec<Entry>)>,
    updates_since_sync: u32,
    stats: DocStats,
    /// Optional telemetry sink; see [`DocStore::attach_telemetry`].
    tel: Option<Telemetry>,
    /// Optional durability ledger; see [`DocStore::attach_ledger`].
    ledger: Option<Ledger>,
}

/// Frame a document for the append space as a self-describing
/// [`LogRecord::DocSet`] — the same versioned, CRC-guarded framing the WAL
/// uses, so the append file's record stream is decodable on its own.
fn frame_doc(key: &[u8], doc: &[u8]) -> Vec<u8> {
    LogRecord::DocSet { key: key.to_vec(), value: doc.to_vec() }.encode()
}

/// Unframe a [`frame_doc`]'d record; `None` on corruption.
fn unframe_doc(framed: &[u8]) -> Option<Vec<u8>> {
    match LogRecord::decode(framed) {
        Some((LogRecord::DocSet { value, .. }, _)) => Some(value),
        _ => None,
    }
}

impl<D: BlockDevice> DocStore<D> {
    /// Create a fresh (empty) store on `dev`.
    pub fn create(dev: D, cfg: DocStoreConfig) -> Self {
        cfg.validate();
        let vol = Volume::new(dev, cfg.barriers);
        let mut vm = VolumeManager::new(vol.capacity_pages());
        let file = PageFile::create(&mut vm, cfg.file_blocks.min(vol.capacity_pages()), BLOCK);
        Self {
            vol,
            space: AppendSpace::new(file),
            root: None,
            depth: 0,
            seq: 0,
            prev_header_off: NO_OFF,
            ckpt_off: NO_OFF,
            headers_since_ckpt: 0,
            cfg,
            doc_cache: HashMap::new(),
            node_cache: HashMap::new(),
            updates_since_sync: 0,
            stats: DocStats::default(),
            tel: None,
            ledger: None,
        }
    }

    /// Statistics.
    pub fn stats(&self) -> DocStats {
        self.stats
    }

    /// Attach a telemetry sink to the store and its volume: device latency
    /// histograms land under `dev.doc.*`, and the store records `doc.set` /
    /// `doc.get` / `doc.commit` operation latencies.
    pub fn attach_telemetry(&mut self, tel: Telemetry) {
        self.vol.attach_telemetry(tel.clone(), "doc");
        self.tel = Some(tel);
    }

    /// Attach a durability ledger to the store and its volume. Every `set`
    /// / `delete` pends a [`UnitKind::DocstoreUpdate`] unit; the batch
    /// header fsync (the couchstore commit point) acknowledges everything
    /// pending, under the flush-barrier contract when barriers are on and
    /// the device's own contract when they are off.
    pub fn attach_ledger(&mut self, ledger: Ledger) {
        self.vol.attach_ledger(ledger.clone());
        self.ledger = Some(ledger);
    }

    /// Open a per-operation trace scope (see `relstore::Engine::begin_op`):
    /// spans emitted below the store while the operation runs share the
    /// trace-ID allocated here, and with latency anatomy enabled the scope
    /// is also the attribution frame lower layers charge segments against
    /// (frames nest: `doc.set` may contain a `doc.commit` frame; both see
    /// the same segments, so each level's conservation identity holds).
    /// Paired with the `end_op` in `note_op`.
    fn begin_op(&self, name: &str, now: Nanos) {
        if let Some(tel) = &self.tel {
            tel.begin_op("doc", name, now);
        }
    }

    /// Record a store-level operation latency, close the trace scope, and
    /// let the gauge sampler take a cadence-gated snapshot.
    fn note_op(&self, name: &str, start: Nanos, done: Nanos) {
        if let Some(tel) = &self.tel {
            tel.record(name, done.saturating_sub(start));
            tel.end_op("doc", name, done);
            tel.sample(done);
        }
    }

    /// Tree depth (levels of internal nodes above the leaves).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Header sequence number (monotone commit counter).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Device statistics of the underlying volume.
    pub fn device_stats(&self) -> storage::device::DeviceStats {
        self.vol.device_stats()
    }

    /// The underlying device (read-only), e.g. to collect forensic
    /// snapshots after recovery.
    pub fn device(&self) -> &D {
        self.vol.device()
    }

    /// Bytes appended so far.
    pub fn file_len(&self) -> u64 {
        self.space.len()
    }

    /// Bytes appended since the last checkpoint anchor header (the whole
    /// file if no anchor has been committed yet) — the docstore analogue of
    /// outstanding WAL.
    pub fn outstanding_bytes(&self) -> u64 {
        if self.ckpt_off == NO_OFF {
            self.space.len()
        } else {
            self.space.len().saturating_sub(self.ckpt_off)
        }
    }

    /// Drop the in-memory object cache (test hook: forces tree walks).
    pub fn clear_object_cache(&mut self) {
        self.doc_cache.clear();
    }

    fn read_node(&mut self, ptr: u64, len: u32, now: Nanos) -> (Option<(u8, Vec<Entry>)>, Nanos) {
        if let Some(n) = self.node_cache.get(&ptr) {
            return (Some(n.clone()), now);
        }
        match self.space.read(&mut self.vol, ptr, len as usize, now) {
            Ok((bytes, t)) => match decode_node(&bytes) {
                Some(node) => {
                    self.node_cache.insert(ptr, node.clone());
                    (Some(node), t)
                }
                None => {
                    self.stats.corrupt_reads += 1;
                    (None, t)
                }
            },
            Err(_) => {
                self.stats.corrupt_reads += 1;
                (None, now)
            }
        }
    }

    fn append_node(&mut self, kind: u8, entries: &[Entry]) -> (u64, u32) {
        let bytes = encode_node(kind, entries);
        let ptr = self.space.append(&bytes);
        self.stats.bytes_appended += bytes.len() as u64;
        self.node_cache.insert(ptr, (kind, entries.to_vec()));
        (ptr, bytes.len() as u32)
    }

    /// Recursive COW insert. Returns the replacement entries for this
    /// subtree (1 normally, more after splits).
    fn insert_rec(
        &mut self,
        ptr: u64,
        len: u32,
        level: u32,
        key: &[u8],
        doc_entry: &Entry,
        now: Nanos,
    ) -> (Vec<Entry>, Nanos) {
        let (node, t) = self.read_node(ptr, len, now);
        let Some((kind, mut entries)) = node else {
            // Corrupt node: rebuild this subtree as a single-leaf with the
            // new entry (data under it is lost; counted in corrupt_reads).
            let (p, l) = self.append_node(KIND_LEAF, std::slice::from_ref(doc_entry));
            return (vec![Entry { key: key.to_vec(), ptr: p, len: l }], now);
        };
        if level == 0 {
            debug_assert_eq!(kind, KIND_LEAF);
            match entries.binary_search_by(|e| e.key.as_slice().cmp(key)) {
                Ok(i) => entries[i] = doc_entry.clone(),
                Err(i) => entries.insert(i, doc_entry.clone()),
            }
            let chunks = split_entries(entries);
            let out = chunks
                .into_iter()
                .map(|c| {
                    let max_key = c.last().expect("chunks non-empty").key.clone();
                    let (p, l) = self.append_node(KIND_LEAF, &c);
                    Entry { key: max_key, ptr: p, len: l }
                })
                .collect();
            (out, t)
        } else {
            debug_assert_eq!(kind, KIND_INTERNAL);
            let idx = route(&entries, key);
            let child = entries[idx].clone();
            let (repl, t) = self.insert_rec(child.ptr, child.len, level - 1, key, doc_entry, t);
            entries.splice(idx..idx + 1, repl);
            let chunks = split_entries(entries);
            let out = chunks
                .into_iter()
                .map(|c| {
                    let max_key = c.last().expect("chunks non-empty").key.clone();
                    let (p, l) = self.append_node(KIND_INTERNAL, &c);
                    Entry { key: max_key, ptr: p, len: l }
                })
                .collect();
            (out, t)
        }
    }

    fn apply_tree_update(&mut self, key: &[u8], doc_entry: Entry, now: Nanos) -> Nanos {
        let mut t = now;
        let replacements = match self.root {
            None => {
                let (p, l) = self.append_node(KIND_LEAF, std::slice::from_ref(&doc_entry));
                vec![Entry { key: key.to_vec(), ptr: p, len: l }]
            }
            Some((rp, rl)) => {
                let depth = self.depth;
                let (repl, t2) = self.insert_rec(rp, rl, depth, key, &doc_entry, now);
                t = t2;
                repl
            }
        };
        // Grow the root while the replacement set does not fit one node.
        let mut tops = replacements;
        while tops.len() > 1 {
            if node_size(&tops) <= NODE_CAP {
                let max_key = tops.last().expect("non-empty").key.clone();
                let (p, l) = self.append_node(KIND_INTERNAL, &tops);
                tops = vec![Entry { key: max_key, ptr: p, len: l }];
                self.depth += 1;
            } else {
                let chunks = split_entries(tops);
                tops = chunks
                    .into_iter()
                    .map(|c| {
                        let max_key = c.last().expect("non-empty").key.clone();
                        let (p, l) = self.append_node(KIND_INTERNAL, &c);
                        Entry { key: max_key, ptr: p, len: l }
                    })
                    .collect();
                self.depth += 1;
            }
        }
        let top = &tops[0];
        self.root = Some((top.ptr, top.len));
        t
    }

    /// After a mutation: push bytes to the device, fsync per batch size, and
    /// auto-compact once the append file is mostly garbage.
    fn finish_update(&mut self, now: Nanos) -> Nanos {
        let t = self.space.write_out(&mut self.vol, now);
        self.updates_since_sync += 1;
        let t =
            if self.updates_since_sync >= self.cfg.batch_size { self.commit_header(t) } else { t };
        if self.cfg.auto_compact_pct > 0
            && self.space.len() * 100 > self.space.capacity() * self.cfg.auto_compact_pct as u64
        {
            return self.compact(t);
        }
        t
    }

    /// Append a header block and fsync (the commit point). Every
    /// `checkpoint_every_n_commits`-th header is promoted to a checkpoint
    /// anchor automatically.
    pub fn commit_header(&mut self, now: Nanos) -> Nanos {
        self.begin_op("doc.commit", now);
        let due = self.headers_since_ckpt + 1 >= self.cfg.checkpoint_every_n_commits;
        let done = self.commit_header_inner(due, now);
        self.note_op("doc.commit", now, done);
        done
    }

    /// Commit with a forced checkpoint anchor: the header-chain analogue of
    /// the relational engine's `checkpoint`. Recovery measures its header
    /// walk (the `skipped` count) back to the newest anchor.
    pub fn commit_checkpoint(&mut self, now: Nanos) -> Nanos {
        self.begin_op("doc.checkpoint", now);
        let done = self.commit_header_inner(true, now);
        self.note_op("doc.checkpoint", now, done);
        done
    }

    fn commit_header_inner(&mut self, anchor: bool, now: Nanos) -> Nanos {
        self.seq += 1;
        self.space.align_to_block();
        let off = self.space.len();
        if anchor {
            self.ckpt_off = off;
            self.headers_since_ckpt = 0;
        } else {
            self.headers_since_ckpt += 1;
        }
        // Header block: magic, seq, root, depth, then the backward chain —
        // the previous header's offset and the newest anchor's offset.
        let mut hdr = vec![0u8; BLOCK];
        hdr[..8].copy_from_slice(&HEADER_MAGIC.to_le_bytes());
        hdr[8..16].copy_from_slice(&self.seq.to_le_bytes());
        let (rp, rl) = self.root.unwrap_or((u64::MAX, 0));
        hdr[16..24].copy_from_slice(&rp.to_le_bytes());
        hdr[24..28].copy_from_slice(&rl.to_le_bytes());
        hdr[28..32].copy_from_slice(&self.depth.to_le_bytes());
        hdr[32..40].copy_from_slice(&self.prev_header_off.to_le_bytes());
        hdr[40..48].copy_from_slice(&self.ckpt_off.to_le_bytes());
        let crc = crc32(&hdr[..48]);
        hdr[48..52].copy_from_slice(&crc.to_le_bytes());
        self.space.append(&hdr);
        self.prev_header_off = off;
        self.stats.bytes_appended += hdr.len() as u64;
        self.stats.headers += 1;
        self.updates_since_sync = 0;
        let done = self.space.sync(&mut self.vol, now);
        if let Some(ledger) = &self.ledger {
            // The header fsync is couchstore's commit point: everything
            // appended since the previous header is now acknowledged.
            ledger.ack_all_pending(done, self.cfg.barriers);
        }
        done
    }

    /// Insert or update a document. Returns the completion time.
    pub fn set(&mut self, key: &[u8], doc: &[u8], now: Nanos) -> Nanos {
        self.stats.sets += 1;
        self.begin_op("doc.set", now);
        if let Some(ledger) = &self.ledger {
            ledger.pend(UnitKind::DocstoreUpdate, key, Ledger::digest(doc), now);
        }
        let framed = frame_doc(key, doc);
        let ptr = self.space.append(&framed);
        self.stats.bytes_appended += framed.len() as u64;
        let entry = Entry { key: key.to_vec(), ptr, len: framed.len() as u32 };
        let t = self.apply_tree_update(key, entry, now);
        self.doc_cache.insert(key.to_vec(), Some(doc.to_vec()));
        let done = self.finish_update(t);
        self.note_op("doc.set", now, done);
        done
    }

    /// Delete a document (tombstone entry).
    pub fn delete(&mut self, key: &[u8], now: Nanos) -> Nanos {
        self.stats.deletes += 1;
        self.begin_op("doc.delete", now);
        if let Some(ledger) = &self.ledger {
            // Tombstone digest: a surviving delete reads back as Missing.
            ledger.pend(UnitKind::DocstoreUpdate, key, Ledger::digest(&[]), now);
        }
        // Breadcrumb record: the tombstone itself lives in the tree entry
        // (ptr 0 / len 0), but the append stream stays self-describing.
        let framed = LogRecord::DocDelete { key: key.to_vec() }.encode();
        self.space.append(&framed);
        self.stats.bytes_appended += framed.len() as u64;
        let entry = Entry { key: key.to_vec(), ptr: 0, len: 0 };
        let t = self.apply_tree_update(key, entry, now);
        self.doc_cache.insert(key.to_vec(), None);
        let done = self.finish_update(t);
        self.note_op("doc.delete", now, done);
        done
    }

    /// Fetch a document. Memory-first: the object cache serves hot keys; a
    /// miss walks the on-disk tree.
    pub fn get(&mut self, key: &[u8], now: Nanos) -> Timed<Option<Vec<u8>>> {
        self.begin_op("doc.get", now);
        let (v, done) = self.get_inner(key, now);
        self.note_op("doc.get", now, done);
        Timed::new(v, done)
    }

    fn get_inner(&mut self, key: &[u8], now: Nanos) -> (Option<Vec<u8>>, Nanos) {
        self.stats.gets += 1;
        if let Some(v) = self.doc_cache.get(key) {
            self.stats.cache_hits += 1;
            // Object-cache hit: sub-microsecond.
            return (v.clone(), now + 500);
        }
        let Some((mut ptr, mut len)) = self.root else {
            return (None, now);
        };
        let mut t = now;
        loop {
            let (node, t2) = self.read_node(ptr, len, t);
            t = t2;
            let Some((kind, entries)) = node else {
                return (None, t);
            };
            if kind == KIND_LEAF {
                let found = match entries.binary_search_by(|e| e.key.as_slice().cmp(key)) {
                    Ok(i) => {
                        let e = &entries[i];
                        if e.len == 0 {
                            None // tombstone
                        } else {
                            match self.space.read(&mut self.vol, e.ptr, e.len as usize, t) {
                                Ok((framed, t2)) => {
                                    t = t2;
                                    match unframe_doc(&framed) {
                                        Some(body) => Some(body),
                                        None => {
                                            self.stats.corrupt_reads += 1;
                                            None
                                        }
                                    }
                                }
                                Err(_) => {
                                    self.stats.corrupt_reads += 1;
                                    None
                                }
                            }
                        }
                    }
                    Err(_) => None,
                };
                if let Some(doc) = &found {
                    self.doc_cache.insert(key.to_vec(), Some(doc.clone()));
                }
                return (found, t);
            }
            if entries.is_empty() {
                return (None, t);
            }
            let idx = route(&entries, key);
            // A key greater than every max-key cannot be in the tree.
            if key > entries[idx].key.as_slice() {
                return (None, t);
            }
            ptr = entries[idx].ptr;
            len = entries[idx].len;
        }
    }

    /// All live `(key, doc)` pairs in order (compaction walk).
    #[allow(clippy::type_complexity)]
    fn collect_live(&mut self, now: Nanos) -> (Vec<(Vec<u8>, Vec<u8>)>, Nanos) {
        let Some((rp, rl)) = self.root else {
            return (Vec::new(), now);
        };
        let mut out = Vec::new();
        let mut t = now;
        let mut stack = vec![(rp, rl, self.depth)];
        while let Some((ptr, len, level)) = stack.pop() {
            let (node, t2) = self.read_node(ptr, len, t);
            t = t2;
            let Some((kind, entries)) = node else { continue };
            if kind == KIND_LEAF {
                for e in entries {
                    if e.len == 0 {
                        continue;
                    }
                    if let Ok((framed, t3)) =
                        self.space.read(&mut self.vol, e.ptr, e.len as usize, t)
                    {
                        t = t3;
                        if let Some(body) = unframe_doc(&framed) {
                            out.push((e.key, body));
                        }
                    }
                }
            } else {
                for e in entries.into_iter().rev() {
                    stack.push((e.ptr, e.len, level.saturating_sub(1)));
                }
            }
        }
        (out, t)
    }

    /// Compaction: rewrite the live data as a fresh, dense tree at the start
    /// of the file (modelling couchstore's copy-compaction into a new file),
    /// then TRIM the reclaimed tail so the SSD can drop the stale blocks.
    pub fn compact(&mut self, now: Nanos) -> Nanos {
        self.stats.compactions += 1;
        let old_len = self.space.len();
        let (live, t) = self.collect_live(now);
        // Fresh space over the same region.
        let file = self.space_file();
        self.space = AppendSpace::new(file);
        self.node_cache.clear();
        self.root = None;
        self.depth = 0;
        // The old header chain died with the old file contents.
        self.prev_header_off = NO_OFF;
        self.ckpt_off = NO_OFF;
        self.headers_since_ckpt = 0;
        // Bulk-load bottom-up: docs + leaves, then internal levels.
        let mut level_entries: Vec<Entry> = Vec::new();
        for (key, doc) in &live {
            let framed = frame_doc(key, doc);
            let ptr = self.space.append(&framed);
            self.stats.bytes_appended += framed.len() as u64;
            level_entries.push(Entry { key: key.clone(), ptr, len: framed.len() as u32 });
        }
        if !level_entries.is_empty() {
            let mut kind = KIND_LEAF;
            loop {
                let chunks = split_entries(level_entries);
                let mut next: Vec<Entry> = Vec::with_capacity(chunks.len());
                for c in chunks {
                    let max_key = c.last().expect("non-empty").key.clone();
                    let (p, l) = self.append_node(kind, &c);
                    next.push(Entry { key: max_key, ptr: p, len: l });
                }
                if next.len() == 1 {
                    self.root = Some((next[0].ptr, next[0].len));
                    break;
                }
                level_entries = next;
                kind = KIND_INTERNAL;
                self.depth += 1;
            }
        }
        // A compaction is a checkpoint by construction: the fresh file is
        // exactly the live state, so the first header is an anchor.
        let t = self.commit_checkpoint(t);
        // TRIM everything between the new end of file and the old one.
        let new_blocks = self.space.len().div_ceil(BLOCK as u64);
        let old_blocks = old_len.div_ceil(BLOCK as u64);

        if old_blocks > new_blocks {
            self.vol.discard(new_blocks, (old_blocks - new_blocks) as u32, t).unwrap_or(t)
        } else {
            t
        }
    }

    fn space_file(&self) -> PageFile {
        // The layout is deterministic: one file at the start of the volume.
        let mut vm = VolumeManager::new(self.vol.capacity_pages());
        PageFile::create(&mut vm, self.cfg.file_blocks.min(self.vol.capacity_pages()), BLOCK)
    }

    /// Crash: cut device power and surrender the device.
    pub fn crash(mut self, now: Nanos) -> D {
        self.vol.power_cut(now);
        self.vol.into_device()
    }

    /// Recover a store from a device: reboot, scan backwards for the newest
    /// valid header, resume after it. Updates past the last header are lost
    /// (that is couchstore's contract).
    ///
    /// The returned [`Recovered`] mirrors the relational engine's report:
    /// `skipped` counts the commit headers walked back from the newest
    /// header to its checkpoint anchor (batches a WAL engine would have had
    /// to replay), `checkpoint_lsn` is the anchor's byte offset, and
    /// `replayed`/`torn` are always 0 — couchstore replays nothing (the
    /// newest header *is* the recovered state) and an interrupted append
    /// tail is indistinguishable from unwritten space.
    pub fn recover(dev: D, cfg: DocStoreConfig, now: Nanos) -> Recovered<Self> {
        cfg.validate();
        let mut vol = Volume::new(dev, cfg.barriers);
        let mut t = now;
        if !vol.device().is_powered() {
            t = vol.reboot(t);
        }
        let mut vm = VolumeManager::new(vol.capacity_pages());
        let file = PageFile::create(&mut vm, cfg.file_blocks.min(vol.capacity_pages()), BLOCK);
        // (block, root, len, depth, seq, prev_off, ckpt_off)
        let mut found: Option<(u64, u64, u32, u32, u64, u64, u64)> = None;
        let mut buf = vec![0u8; BLOCK];
        for blk in (0..file.pages()).rev() {
            match file.read_page(&mut vol, blk, &mut buf, t) {
                Ok(t2) => t = t2,
                Err(_) => continue,
            }
            if u64::from_le_bytes(buf[..8].try_into().expect("hdr")) != HEADER_MAGIC {
                continue;
            }
            let crc = u32::from_le_bytes(buf[48..52].try_into().expect("hdr"));
            if crc != crc32(&buf[..48]) {
                continue;
            }
            let seq = u64::from_le_bytes(buf[8..16].try_into().expect("hdr"));
            let root = u64::from_le_bytes(buf[16..24].try_into().expect("hdr"));
            let len = u32::from_le_bytes(buf[24..28].try_into().expect("hdr"));
            let depth = u32::from_le_bytes(buf[28..32].try_into().expect("hdr"));
            let prev_off = u64::from_le_bytes(buf[32..40].try_into().expect("hdr"));
            let ckpt_off = u64::from_le_bytes(buf[40..48].try_into().expect("hdr"));
            found = Some((blk, root, len, depth, seq, prev_off, ckpt_off));
            break;
        }
        let mut replay = ReplayStats::default();
        let (space, root, depth, seq, prev_header_off, ckpt_off) = match found {
            Some((blk, root, len, depth, seq, prev_off, ckpt_off)) => {
                // Walk the header chain back to the checkpoint anchor: each
                // header after the anchor is a commit batch the header-chain
                // design spared us from replaying.
                let newest_off = blk * BLOCK as u64;
                replay.checkpoint_lsn = if ckpt_off == NO_OFF { 0 } else { ckpt_off };
                let mut off = newest_off;
                let mut prev = prev_off;
                let mut guard = file.pages();
                while ckpt_off != NO_OFF && off > ckpt_off && guard > 0 {
                    replay.skipped += 1;
                    guard -= 1;
                    if prev == NO_OFF || prev >= off {
                        break; // chain truncated or corrupt: stop counting
                    }
                    let pblk = prev / BLOCK as u64;
                    match file.read_page(&mut vol, pblk, &mut buf, t) {
                        Ok(t2) => t = t2,
                        Err(_) => break,
                    }
                    let magic_ok =
                        u64::from_le_bytes(buf[..8].try_into().expect("hdr")) == HEADER_MAGIC;
                    let crc = u32::from_le_bytes(buf[48..52].try_into().expect("hdr"));
                    if !magic_ok || crc != crc32(&buf[..48]) {
                        break;
                    }
                    off = prev;
                    prev = u64::from_le_bytes(buf[32..40].try_into().expect("hdr"));
                }
                let resume = (blk + 1) * BLOCK as u64;
                let space = AppendSpace::reopen(file, resume, vec![0u8; BLOCK]);
                let root = if root == u64::MAX { None } else { Some((root, len)) };
                let ckpt = if ckpt_off == NO_OFF { NO_OFF } else { ckpt_off };
                (space, root, depth, seq, newest_off, ckpt)
            }
            None => (AppendSpace::new(file), None, 0, 0, NO_OFF, NO_OFF),
        };
        let store = Self {
            vol,
            space,
            root,
            depth,
            seq,
            prev_header_off,
            ckpt_off,
            headers_since_ckpt: 0,
            cfg,
            doc_cache: HashMap::new(),
            node_cache: HashMap::new(),
            updates_since_sync: 0,
            stats: DocStats::default(),
            tel: None,
            ledger: None,
        };
        replay.replay_ns = t.saturating_sub(now);
        Recovered::new(store, t, replay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use durassd::{Ssd, SsdConfig};
    use storage::testdev::MemDevice;

    fn store(batch: u32) -> DocStore<MemDevice> {
        let cfg = DocStoreConfig {
            batch_size: batch,
            barriers: true,
            file_blocks: 8192,
            auto_compact_pct: 0,
            checkpoint_every_n_commits: 8,
        };
        DocStore::create(MemDevice::new(8192), cfg)
    }

    fn doc(i: u64) -> Vec<u8> {
        format!("document-{i}-{}", "d".repeat(200)).into_bytes()
    }

    #[test]
    fn anatomy_frames_doc_sets_and_conserve() {
        let tel = Telemetry::new();
        tel.enable_anatomy(4);
        let mut s = store(1);
        s.attach_telemetry(tel.clone());
        let mut t = 0;
        for i in 0..20u64 {
            t = s.set(format!("k{i}").as_bytes(), &doc(i), t);
            let bd = tel.last_breakdown().expect("set closes a frame");
            assert_eq!(bd.name, "doc.set");
            assert!(bd.is_conserved(), "segments within wall: {}", bd.to_json());
        }
        assert_eq!(tel.anatomy_violations(), 0);
        assert_eq!(tel.frame_depth(), 0);
        assert!(!tel.outliers_for("doc.set").is_empty());
    }

    #[test]
    fn set_get_round_trip() {
        let mut s = store(1);
        let t = s.set(b"k1", &doc(1), 0);
        let (v, _) = s.get(b"k1", t).into_parts();
        assert_eq!(v.unwrap(), doc(1));
        let (v, _) = s.get(b"nope", t).into_parts();
        assert!(v.is_none());
    }

    #[test]
    fn updates_overwrite() {
        let mut s = store(1);
        let t = s.set(b"k", b"old", 0);
        let t = s.set(b"k", b"new", t);
        let (v, _) = s.get(b"k", t).into_parts();
        assert_eq!(v.unwrap(), b"new");
    }

    #[test]
    fn tree_grows_and_finds_everything() {
        let mut s = store(100);
        let mut t = 0;
        for i in 0..2000u64 {
            t = s.set(format!("key{:06}", i * 37 % 2000).as_bytes(), &doc(i), t);
        }
        assert!(s.depth() >= 1, "2000 docs must split the root leaf");
        // Clear the object cache to force tree walks.
        s.clear_object_cache();
        for i in (0..2000u64).step_by(97) {
            let (v, t2) = s.get(format!("key{:06}", i).as_bytes(), t).into_parts();
            t = t2;
            assert!(v.is_some(), "missing key {i}");
        }
        assert_eq!(s.stats().corrupt_reads, 0);
    }

    #[test]
    fn delete_leaves_tombstone() {
        let mut s = store(1);
        let t = s.set(b"k", &doc(1), 0);
        let t = s.delete(b"k", t);
        s.clear_object_cache();
        let (v, _) = s.get(b"k", t).into_parts();
        assert!(v.is_none());
    }

    #[test]
    fn batch_size_controls_fsync_frequency() {
        let mut s1 = store(1);
        let mut s100 = store(100);
        let mut t1 = 0;
        let mut t100 = 0;
        for i in 0..100u64 {
            t1 = s1.set(format!("k{i}").as_bytes(), &doc(i), t1);
            t100 = s100.set(format!("k{i}").as_bytes(), &doc(i), t100);
        }
        assert_eq!(s1.stats().headers, 100);
        assert_eq!(s100.stats().headers, 1);
        assert!(s1.device_stats().flushes > s100.device_stats().flushes);
    }

    #[test]
    fn synced_updates_survive_recovery() {
        let cfg = DocStoreConfig {
            batch_size: 1,
            barriers: true,
            file_blocks: 8192,
            auto_compact_pct: 0,
            checkpoint_every_n_commits: 8,
        };
        let mut s = DocStore::create(MemDevice::new(8192), cfg);
        let mut t = 0;
        for i in 0..50u64 {
            t = s.set(format!("k{i:03}").as_bytes(), &doc(i), t);
        }
        let dev = s.crash(t);
        let (mut s2, mut t2) = DocStore::recover(dev, cfg, t + 1).into_parts();
        assert_eq!(s2.seq(), 50);
        for i in 0..50u64 {
            let (v, t3) = s2.get(format!("k{i:03}").as_bytes(), t2).into_parts();
            t2 = t3;
            assert_eq!(v.unwrap(), doc(i), "k{i:03}");
        }
    }

    #[test]
    fn unsynced_tail_is_lost_on_recovery() {
        let cfg = DocStoreConfig {
            batch_size: 10,
            barriers: true,
            file_blocks: 8192,
            auto_compact_pct: 0,
            checkpoint_every_n_commits: 8,
        };
        let mut s = DocStore::create(MemDevice::new(8192), cfg);
        let mut t = 0;
        for i in 0..10u64 {
            t = s.set(format!("synced{i}").as_bytes(), &doc(i), t);
        }
        // 3 more updates, no header yet (batch of 10).
        for i in 0..3u64 {
            t = s.set(format!("tail{i}").as_bytes(), &doc(i), t);
        }
        let dev = s.crash(t);
        let (mut s2, t2) = DocStore::recover(dev, cfg, t + 1).into_parts();
        let (v, t3) = s2.get(b"synced5", t2).into_parts();
        assert!(v.is_some(), "synced batch must survive");
        let (v, _) = s2.get(b"tail0", t3).into_parts();
        assert!(v.is_none(), "unsynced tail must be gone");
    }

    #[test]
    fn compaction_preserves_data_and_shrinks_file() {
        let mut s = store(100);
        let mut t = 0;
        for round in 0..5u64 {
            for i in 0..200u64 {
                t = s.set(format!("k{i:04}").as_bytes(), &doc(round * 1000 + i), t);
            }
        }
        let before = s.file_len();
        t = s.compact(t);
        assert!(s.file_len() < before / 2, "compaction should reclaim garbage");
        s.clear_object_cache();
        for i in (0..200u64).step_by(11) {
            let (v, t2) = s.get(format!("k{i:04}").as_bytes(), t).into_parts();
            t = t2;
            assert_eq!(v.unwrap(), doc(4000 + i));
        }
    }

    #[test]
    fn works_on_durassd_without_barriers() {
        let cfg = DocStoreConfig {
            batch_size: 1,
            barriers: false,
            file_blocks: 1024,
            auto_compact_pct: 0,
            checkpoint_every_n_commits: 8,
        };
        let mut s = DocStore::create(Ssd::new(SsdConfig::tiny_test()), cfg);
        let mut t = 0;
        for i in 0..20u64 {
            t = s.set(format!("k{i}").as_bytes(), &doc(i), t);
        }
        let dev = s.crash(t);
        let (mut s2, mut t2) = DocStore::recover(dev, cfg, t + 1).into_parts();
        for i in 0..20u64 {
            let (v, t3) = s2.get(format!("k{i}").as_bytes(), t2).into_parts();
            t2 = t3;
            assert!(v.is_some(), "durable cache must preserve acked batch k{i}");
        }
    }

    #[test]
    fn volatile_device_without_barriers_loses_data() {
        let cfg = DocStoreConfig {
            batch_size: 1,
            barriers: false,
            file_blocks: 1024,
            auto_compact_pct: 0,
            checkpoint_every_n_commits: 8,
        };
        let mut s = DocStore::create(Ssd::new(SsdConfig::tiny_volatile()), cfg);
        let mut t = 0;
        for i in 0..20u64 {
            t = s.set(format!("k{i}").as_bytes(), &doc(i), t);
        }
        let dev = s.crash(t);
        let (mut s2, mut t2) = DocStore::recover(dev, cfg, t + 1).into_parts();
        let mut lost = 0;
        for i in 0..20u64 {
            let (v, t3) = s2.get(format!("k{i}").as_bytes(), t2).into_parts();
            t2 = t3;
            if v != Some(doc(i)) {
                lost += 1;
            }
        }
        assert!(lost > 0, "nobarrier on a volatile cache must lose acked updates");
    }

    #[test]
    fn auto_compaction_keeps_file_bounded() {
        // Small file + heavy rewrite churn: auto-compaction must fire and
        // keep the append cursor within the file while preserving data.
        let cfg = DocStoreConfig {
            batch_size: 10,
            barriers: true,
            file_blocks: 512, // 2MB
            auto_compact_pct: 60,
            checkpoint_every_n_commits: 8,
        };
        let mut s = DocStore::create(MemDevice::new(1024), cfg);
        let mut t = 0;
        for round in 0..40u64 {
            for i in 0..40u64 {
                t = s.set(format!("k{i:02}").as_bytes(), &doc(round * 100 + i), t);
            }
        }
        assert!(s.stats().compactions > 0, "churn must trigger auto-compaction");
        assert!(s.file_len() < 512 * 4096, "file stayed within bounds");
        s.clear_object_cache();
        for i in 0..40u64 {
            let (v, t2) = s.get(format!("k{i:02}").as_bytes(), t).into_parts();
            t = t2;
            assert_eq!(v.unwrap(), doc(3900 + i), "k{i:02} after auto-compaction");
        }
    }
}

//! Database buffer pool (the paper's Fig. 1).
//!
//! A fixed set of page frames managed with an LRU list and a free list. The
//! behaviour the paper builds its latency argument on is reproduced exactly:
//! when a read misses and no free frame exists, the victim is taken from the
//! LRU tail, and **if the victim is dirty the read blocks behind the write**
//! of that victim ("the total elapsed time of a single read operation … will
//! be at least the sum of a read latency and a write latency"). The pool
//! counts those blocked reads.
//!
//! The pool is storage-agnostic: it performs I/O through the [`PageBackend`]
//! trait, which the storage engine implements (adding double-write buffering
//! and whatever else its configuration demands).
//!
//! The `buffer_flush_neighbors` behaviour of InnoDB is intentionally absent:
//! the paper's experiments run with it off.

use simkit::Nanos;
use std::collections::HashMap;
use telemetry::{Stall, Telemetry};

/// Storage interface the pool evicts to and faults from.
pub trait PageBackend {
    /// Read `page_no` into `buf`; returns the completion time.
    fn read_page(&mut self, page_no: u64, buf: &mut [u8], now: Nanos) -> Nanos;
    /// Write `data` to `page_no`; returns the completion time.
    fn write_page(&mut self, page_no: u64, data: &[u8], now: Nanos) -> Nanos;
    /// Write a batch of dirty pages (an eviction sweep). Engines override
    /// this to amortise double-write/fsync costs across the batch, the way
    /// InnoDB flushes its LRU tail.
    fn write_batch(&mut self, pages: &[(u64, &[u8])], now: Nanos) -> Nanos {
        let mut t = now;
        for (page_no, data) in pages {
            t = self.write_page(*page_no, data, t);
        }
        t
    }
}

/// Pool statistics (Fig. 6a plots `misses/accesses`).
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolStats {
    /// Page accesses through `get`/`create`.
    pub accesses: u64,
    /// Accesses that faulted from storage.
    pub misses: u64,
    /// Misses that had to write a dirty victim first (reads blocked by
    /// writes).
    pub blocked_reads: u64,
    /// Dirty pages written at eviction.
    pub dirty_evictions: u64,
    /// Dirty pages written by explicit flushes/checkpoints.
    pub flush_writes: u64,
}

const NIL: usize = usize::MAX;

/// Dirty pages flushed together in one eviction sweep (InnoDB flushes its
/// LRU tail in batches; the double-write fsync amortises across the batch).
const EVICT_BATCH: usize = 16;

struct Frame {
    page_no: u64,
    data: Box<[u8]>,
    dirty: bool,
    pins: u32,
    prev: usize,
    next: usize,
    in_use: bool,
}

/// A fixed-capacity LRU buffer pool of `page_size`-byte frames.
pub struct BufferPool {
    frames: Vec<Frame>,
    map: HashMap<u64, usize>,
    free: Vec<usize>,
    head: usize, // MRU
    tail: usize, // LRU
    page_size: usize,
    stats: PoolStats,
    /// Incrementally maintained count of dirty in-use frames, mirrored into
    /// the `pool.dirty_pages` gauge on every transition (the O(n)
    /// [`BufferPool::dirty_count`] stays as the ground truth for tests).
    ndirty: usize,
    /// Optional telemetry sink. Dirty-victim writes run under a
    /// `PoolEviction` stall context so the paper's "read blocked behind a
    /// write" time is attributed to `pool_eviction`.
    tel: Option<Telemetry>,
}

impl BufferPool {
    /// A pool of `capacity` frames of `page_size` bytes.
    pub fn new(capacity: usize, page_size: usize) -> Self {
        assert!(capacity > 0, "pool needs at least one frame");
        let frames = (0..capacity)
            .map(|_| Frame {
                page_no: u64::MAX,
                data: vec![0u8; page_size].into_boxed_slice(),
                dirty: false,
                pins: 0,
                prev: NIL,
                next: NIL,
                in_use: false,
            })
            .collect();
        Self {
            frames,
            map: HashMap::with_capacity(capacity),
            free: (0..capacity).rev().collect(),
            head: NIL,
            tail: NIL,
            page_size,
            stats: PoolStats::default(),
            ndirty: 0,
            tel: None,
        }
    }

    /// Attach a telemetry sink: records `pool.eviction_write` (time a miss
    /// spends writing the dirty LRU-tail batch before its own read can
    /// start — Fig. 1's blocked read) and `pool.miss_stall` (total fault
    /// time) histograms, with the eviction write attributed to the
    /// `pool_eviction` stall bucket.
    pub fn attach_telemetry(&mut self, tel: Telemetry) {
        self.tel = Some(tel);
    }

    /// Frame capacity.
    pub fn capacity(&self) -> usize {
        self.frames.len()
    }

    /// Page size of the frames.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Statistics so far.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Reset statistics (after warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = PoolStats::default();
    }

    /// Number of dirty frames.
    pub fn dirty_count(&self) -> usize {
        self.frames.iter().filter(|f| f.in_use && f.dirty).count()
    }

    /// Current miss ratio (0.0 when no accesses yet).
    pub fn miss_ratio(&self) -> f64 {
        if self.stats.accesses == 0 {
            return 0.0;
        }
        self.stats.misses as f64 / self.stats.accesses as f64
    }

    // ---- LRU list plumbing -------------------------------------------------

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.frames[idx].prev, self.frames[idx].next);
        if prev != NIL {
            self.frames[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.frames[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.frames[idx].prev = NIL;
        self.frames[idx].next = NIL;
    }

    fn push_mru(&mut self, idx: usize) {
        self.frames[idx].prev = NIL;
        self.frames[idx].next = self.head;
        if self.head != NIL {
            self.frames[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn touch(&mut self, idx: usize) {
        if self.head != idx {
            self.detach(idx);
            self.push_mru(idx);
        }
    }

    // ---- faulting / eviction ----------------------------------------------

    /// Obtain a free frame, evicting from the LRU tail if needed. Returns
    /// `(frame, time)`; time advances if dirty victims had to be written.
    ///
    /// When the tail victim is dirty, a whole LRU-tail sweep (up to
    /// [`EVICT_BATCH`] unpinned dirty pages) is flushed in one backend batch
    /// — the requester blocks behind the write either way (paper Fig. 1),
    /// but the flush cost amortises like InnoDB's page-cleaner batches.
    fn take_frame<B: PageBackend>(&mut self, backend: &mut B, mut now: Nanos) -> (usize, Nanos) {
        if let Some(idx) = self.free.pop() {
            return (idx, now);
        }
        // Scan from the LRU tail for an unpinned victim.
        let mut idx = self.tail;
        while idx != NIL && self.frames[idx].pins > 0 {
            idx = self.frames[idx].prev;
        }
        assert!(idx != NIL, "all frames pinned: pool too small for the working set");
        if self.frames[idx].dirty {
            // Sweep the tail for more dirty, unpinned frames to flush in the
            // same batch. The batch is small and bounded, so it is staged on
            // the stack — eviction sweeps allocate nothing.
            let mut batch_idx = [0usize; EVICT_BATCH];
            let mut nb = 0usize;
            let mut cur = self.tail;
            while cur != NIL && nb < EVICT_BATCH {
                if self.frames[cur].pins == 0 && self.frames[cur].dirty {
                    batch_idx[nb] = cur;
                    nb += 1;
                }
                cur = self.frames[cur].prev;
            }
            const EMPTY: &[u8] = &[];
            let mut batch: [(u64, &[u8]); EVICT_BATCH] = [(0, EMPTY); EVICT_BATCH];
            for (slot, &i) in batch.iter_mut().zip(batch_idx[..nb].iter()) {
                *slot = (self.frames[i].page_no, &*self.frames[i].data);
            }
            let write_start = now;
            if let Some(tel) = &self.tel {
                tel.push_context(Stall::PoolEviction);
                tel.trace_begin("pool", "pool.eviction", write_start);
            }
            now = backend.write_batch(&batch[..nb], now);
            if let Some(tel) = &self.tel {
                tel.pop_context();
                tel.record("pool.eviction_write", now.saturating_sub(write_start));
                tel.trace_end("pool", "pool.eviction", now);
            }
            for &i in &batch_idx[..nb] {
                if self.frames[i].dirty {
                    self.ndirty -= 1;
                }
                self.frames[i].dirty = false;
            }
            self.stats.dirty_evictions += nb as u64;
            self.stats.blocked_reads += 1;
            self.note_dirty_gauge();
        }
        self.map.remove(&self.frames[idx].page_no);
        self.detach(idx);
        self.frames[idx].in_use = false;
        (idx, now)
    }

    /// Fetch a page for reading; faults it in on a miss. Returns the frame
    /// handle and the completion time. The frame is returned *pinned*; call
    /// [`BufferPool::unpin`] when done with the handle.
    pub fn get<B: PageBackend>(
        &mut self,
        page_no: u64,
        backend: &mut B,
        now: Nanos,
    ) -> (usize, Nanos) {
        self.stats.accesses += 1;
        if let Some(&idx) = self.map.get(&page_no) {
            self.touch(idx);
            self.frames[idx].pins += 1;
            return (idx, now);
        }
        self.stats.misses += 1;
        if let Some(tel) = &self.tel {
            tel.trace_begin("pool", "pool.miss", now);
        }
        let (idx, t) = self.take_frame(backend, now);
        let t = backend.read_page(page_no, &mut self.frames[idx].data, t);
        if let Some(tel) = &self.tel {
            tel.record("pool.miss_stall", t.saturating_sub(now));
            tel.trace_end("pool", "pool.miss", t);
        }
        self.install(idx, page_no);
        (idx, t)
    }

    /// Obtain a frame for a brand-new page without reading storage (the page
    /// is about to be fully initialised by the caller). Pinned on return.
    pub fn create<B: PageBackend>(
        &mut self,
        page_no: u64,
        backend: &mut B,
        now: Nanos,
    ) -> (usize, Nanos) {
        self.stats.accesses += 1;
        if let Some(&idx) = self.map.get(&page_no) {
            self.touch(idx);
            self.frames[idx].pins += 1;
            return (idx, now);
        }
        let (idx, t) = self.take_frame(backend, now);
        self.frames[idx].data.fill(0);
        self.install(idx, page_no);
        (idx, t)
    }

    fn install(&mut self, idx: usize, page_no: u64) {
        self.frames[idx].page_no = page_no;
        if self.frames[idx].dirty {
            self.ndirty -= 1;
            self.note_dirty_gauge();
        }
        self.frames[idx].dirty = false;
        self.frames[idx].pins = 1;
        self.frames[idx].in_use = true;
        self.map.insert(page_no, idx);
        self.push_mru(idx);
    }

    /// Release a pin taken by [`BufferPool::get`]/[`BufferPool::create`].
    pub fn unpin(&mut self, idx: usize) {
        assert!(self.frames[idx].pins > 0, "unpin without pin");
        self.frames[idx].pins -= 1;
    }

    /// Read access to a pinned frame's bytes.
    pub fn data(&self, idx: usize) -> &[u8] {
        debug_assert!(self.frames[idx].in_use);
        &self.frames[idx].data
    }

    /// Mutable access to a pinned frame's bytes; marks it dirty.
    pub fn data_mut(&mut self, idx: usize) -> &mut [u8] {
        debug_assert!(self.frames[idx].in_use);
        if !self.frames[idx].dirty {
            self.ndirty += 1;
            self.frames[idx].dirty = true;
            self.note_dirty_gauge();
        }
        &mut self.frames[idx].data
    }

    /// Mirror the incremental dirty count into the `pool.dirty_pages` gauge.
    fn note_dirty_gauge(&self) {
        if let Some(tel) = &self.tel {
            tel.set_gauge("pool.dirty_pages", self.ndirty as i64);
        }
    }

    /// The page number held by a frame.
    pub fn page_no(&self, idx: usize) -> u64 {
        self.frames[idx].page_no
    }

    /// Whether a page is currently resident (test instrumentation).
    pub fn contains(&self, page_no: u64) -> bool {
        self.map.contains_key(&page_no)
    }

    /// Write every dirty page to the backend (checkpoint). Returns the
    /// completion time of the last write.
    pub fn flush_all<B: PageBackend>(&mut self, backend: &mut B, now: Nanos) -> Nanos {
        let mut t = now;
        // Flush in page order for deterministic output.
        let mut dirty: Vec<usize> = self
            .frames
            .iter()
            .enumerate()
            .filter(|(_, f)| f.in_use && f.dirty)
            .map(|(i, _)| i)
            .collect();
        dirty.sort_by_key(|&i| self.frames[i].page_no);
        for idx in dirty {
            t = backend.write_page(self.frames[idx].page_no, &self.frames[idx].data, t);
            self.frames[idx].dirty = false;
            self.ndirty -= 1;
            self.stats.flush_writes += 1;
        }
        self.note_dirty_gauge();
        t
    }

    /// Drop every frame without writing (crash simulation: the pool is in
    /// host DRAM and vanishes).
    pub fn invalidate_all(&mut self) {
        self.ndirty = 0;
        self.note_dirty_gauge();
        self.map.clear();
        self.free = (0..self.frames.len()).rev().collect();
        self.head = NIL;
        self.tail = NIL;
        for f in &mut self.frames {
            f.in_use = false;
            f.dirty = false;
            f.pins = 0;
            f.prev = NIL;
            f.next = NIL;
            f.page_no = u64::MAX;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Backend with fixed latencies that records I/O.
    struct TestBackend {
        pages: HashMap<u64, Vec<u8>>,
        reads: Vec<u64>,
        writes: Vec<u64>,
        page_size: usize,
    }

    impl TestBackend {
        fn new(page_size: usize) -> Self {
            Self { pages: HashMap::new(), reads: vec![], writes: vec![], page_size }
        }
    }

    impl PageBackend for TestBackend {
        fn read_page(&mut self, page_no: u64, buf: &mut [u8], now: Nanos) -> Nanos {
            self.reads.push(page_no);
            match self.pages.get(&page_no) {
                Some(d) => buf.copy_from_slice(d),
                None => buf.fill(0),
            }
            now + 100
        }
        fn write_page(&mut self, page_no: u64, data: &[u8], now: Nanos) -> Nanos {
            assert_eq!(data.len(), self.page_size);
            self.writes.push(page_no);
            self.pages.insert(page_no, data.to_vec());
            now + 300
        }
    }

    fn setup(cap: usize) -> (BufferPool, TestBackend) {
        (BufferPool::new(cap, 512), TestBackend::new(512))
    }

    #[test]
    fn hit_does_not_touch_backend() {
        let (mut bp, mut be) = setup(4);
        let (f, t) = bp.get(1, &mut be, 0);
        bp.unpin(f);
        assert_eq!(t, 100); // one read fault
        let (f2, t2) = bp.get(1, &mut be, t);
        bp.unpin(f2);
        assert_eq!(t2, t, "hits are free");
        assert_eq!(be.reads.len(), 1);
        assert_eq!(bp.stats().misses, 1);
        assert_eq!(bp.stats().accesses, 2);
    }

    #[test]
    fn dirty_page_round_trips_through_eviction() {
        let (mut bp, mut be) = setup(2);
        let (f, t) = bp.get(1, &mut be, 0);
        bp.data_mut(f)[0] = 42;
        bp.unpin(f);
        // Evict page 1 by filling the pool.
        let (f2, t) = bp.get(2, &mut be, t);
        bp.unpin(f2);
        let (f3, t) = bp.get(3, &mut be, t);
        bp.unpin(f3);
        assert!(be.writes.contains(&1), "dirty victim written back");
        let (f4, _) = bp.get(1, &mut be, t);
        assert_eq!(bp.data(f4)[0], 42);
        bp.unpin(f4);
    }

    #[test]
    fn clean_eviction_does_not_write() {
        let (mut bp, mut be) = setup(2);
        for p in 1..=3 {
            let (f, _) = bp.get(p, &mut be, 0);
            bp.unpin(f);
        }
        assert!(be.writes.is_empty());
        assert_eq!(bp.stats().blocked_reads, 0);
    }

    #[test]
    fn read_blocked_by_dirty_victim_pays_write_then_read() {
        let (mut bp, mut be) = setup(1);
        let (f, t) = bp.get(1, &mut be, 0);
        bp.data_mut(f)[0] = 1;
        bp.unpin(f);
        // Miss on page 2 must first write dirty page 1 (300) then read (100).
        let (f2, t2) = bp.get(2, &mut be, t);
        bp.unpin(f2);
        assert_eq!(t2 - t, 400, "write + read when blocked by a dirty victim");
        assert_eq!(bp.stats().blocked_reads, 1);
    }

    #[test]
    fn lru_order_evicts_coldest() {
        let (mut bp, mut be) = setup(3);
        for p in [1u64, 2, 3] {
            let (f, _) = bp.get(p, &mut be, 0);
            bp.unpin(f);
        }
        // Touch 1 so 2 becomes coldest.
        let (f, _) = bp.get(1, &mut be, 0);
        bp.unpin(f);
        let (f, _) = bp.get(4, &mut be, 0);
        bp.unpin(f);
        assert!(bp.contains(1));
        assert!(!bp.contains(2), "coldest page evicted");
        assert!(bp.contains(3));
        assert!(bp.contains(4));
    }

    #[test]
    fn pinned_frames_are_not_evicted() {
        let (mut bp, mut be) = setup(2);
        let (f1, _) = bp.get(1, &mut be, 0); // keep pinned
        let (f2, _) = bp.get(2, &mut be, 0);
        bp.unpin(f2);
        let (f3, _) = bp.get(3, &mut be, 0);
        bp.unpin(f3);
        assert!(bp.contains(1), "pinned page survives");
        assert!(!bp.contains(2));
        assert_eq!(bp.data(f1).len(), 512);
        bp.unpin(f1);
    }

    #[test]
    #[should_panic(expected = "all frames pinned")]
    fn all_pinned_pool_panics() {
        let (mut bp, mut be) = setup(1);
        let (_f, _) = bp.get(1, &mut be, 0);
        let _ = bp.get(2, &mut be, 0);
    }

    #[test]
    fn create_skips_backend_read() {
        let (mut bp, mut be) = setup(2);
        let (f, t) = bp.create(9, &mut be, 5);
        assert_eq!(t, 5, "no read charged");
        assert!(be.reads.is_empty());
        bp.data_mut(f)[0] = 7;
        bp.unpin(f);
        assert_eq!(bp.dirty_count(), 1);
    }

    #[test]
    fn flush_all_writes_dirty_only() {
        let (mut bp, mut be) = setup(4);
        for p in 1..=3u64 {
            let (f, _) = bp.get(p, &mut be, 0);
            if p != 2 {
                bp.data_mut(f)[0] = p as u8;
            }
            bp.unpin(f);
        }
        bp.flush_all(&mut be, 0);
        assert_eq!(be.writes, vec![1, 3]);
        assert_eq!(bp.dirty_count(), 0);
        assert_eq!(bp.stats().flush_writes, 2);
    }

    #[test]
    fn invalidate_all_clears_pool() {
        let (mut bp, mut be) = setup(2);
        let (f, _) = bp.get(1, &mut be, 0);
        bp.data_mut(f)[0] = 1;
        bp.unpin(f);
        bp.invalidate_all();
        assert!(!bp.contains(1));
        assert_eq!(bp.dirty_count(), 0);
        // Pool is fully usable afterwards.
        let (f, _) = bp.get(2, &mut be, 0);
        bp.unpin(f);
        assert!(bp.contains(2));
    }

    #[test]
    fn miss_ratio_reporting() {
        let (mut bp, mut be) = setup(2);
        let (f, _) = bp.get(1, &mut be, 0);
        bp.unpin(f);
        let (f, _) = bp.get(1, &mut be, 0);
        bp.unpin(f);
        assert!((bp.miss_ratio() - 0.5).abs() < 1e-9);
        bp.reset_stats();
        assert_eq!(bp.stats().accesses, 0);
    }

    /// Records batch sizes the backend saw.
    struct BatchBackend {
        inner: TestBackend,
        batches: Vec<usize>,
    }

    impl PageBackend for BatchBackend {
        fn read_page(&mut self, page_no: u64, buf: &mut [u8], now: Nanos) -> Nanos {
            self.inner.read_page(page_no, buf, now)
        }
        fn write_page(&mut self, page_no: u64, data: &[u8], now: Nanos) -> Nanos {
            self.inner.write_page(page_no, data, now)
        }
        fn write_batch(&mut self, pages: &[(u64, &[u8])], now: Nanos) -> Nanos {
            self.batches.push(pages.len());
            let mut t = now;
            for (p, d) in pages {
                t = self.inner.write_page(*p, d, t);
            }
            t
        }
    }

    #[test]
    fn evictions_flush_the_lru_tail_in_batches() {
        let mut bp = BufferPool::new(32, 512);
        let mut be = BatchBackend { inner: TestBackend::new(512), batches: vec![] };
        // Dirty the whole pool.
        for p in 0..32u64 {
            let (f, _) = bp.get(p, &mut be, 0);
            bp.data_mut(f)[0] = 1;
            bp.unpin(f);
        }
        // One more get forces an eviction: a whole tail sweep flushes.
        let (f, _) = bp.get(100, &mut be, 0);
        bp.unpin(f);
        assert_eq!(be.batches.len(), 1);
        assert!(be.batches[0] > 1, "tail sweep should batch: {:?}", be.batches);
        assert!(be.batches[0] <= 16);
        // The next few evictions find clean victims: no further writes.
        for p in 200..210u64 {
            let (f, _) = bp.get(p, &mut be, 0);
            bp.unpin(f);
        }
        assert_eq!(be.batches.len(), 1, "clean victims need no flush");
    }
}

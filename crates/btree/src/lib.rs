//! Page-based B+-tree, parameterised by page size.
//!
//! This is the index structure under every table in the `relstore` engine
//! (and the shape the paper's page-size experiments exercise: a 4KB tree is
//! one level deeper than an 8KB tree over the same data — the anomaly the
//! paper observed in Fig. 5).
//!
//! The tree does all page access through the [`PageStore`] trait, which the
//! storage engine implements on top of its buffer pool; virtual time flows
//! through every call. Keys and values are arbitrary byte strings.
//!
//! Deletion removes keys without structural rebalancing (like PostgreSQL's
//! nbtree, pages are reclaimed only when they empty out entirely via
//! overwrite patterns); tests pin the resulting invariants.

pub mod node;

use node::{Cells, Kind, NO_PAGE};
use simkit::Nanos;

/// Page-access interface the tree runs on. Implementations charge virtual
/// time for faults and evictions.
pub trait PageStore {
    /// Page size in bytes; constant for the life of the store.
    fn page_size(&self) -> usize;
    /// Allocate a fresh page number (no I/O yet).
    fn allocate(&mut self) -> u64;
    /// Run `f` over the page's bytes (read). Returns `f`'s result and the
    /// advanced time.
    fn with_page<R>(&mut self, page_no: u64, now: Nanos, f: impl FnOnce(&[u8]) -> R) -> (R, Nanos);
    /// Run `f` over the page's bytes mutably (the page becomes dirty).
    fn with_page_mut<R>(
        &mut self,
        page_no: u64,
        now: Nanos,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> (R, Nanos);
    /// Like `with_page_mut` for a page that is brand new (no read needed).
    fn with_new_page<R>(
        &mut self,
        page_no: u64,
        now: Nanos,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> (R, Nanos);
}

/// Tree statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct TreeStats {
    /// Leaf splits performed.
    pub leaf_splits: u64,
    /// Internal splits performed.
    pub internal_splits: u64,
    /// Height increases (root splits).
    pub root_splits: u64,
}

/// A B+-tree rooted at a page. The root page number and height are the
/// tree's only out-of-band state (the engine catalog persists them).
pub struct BTree {
    root: u64,
    height: u8,
    stats: TreeStats,
}

/// Result of a recursive insert: a split bubbled up.
struct Split {
    sep: Vec<u8>,
    right: u64,
}

impl BTree {
    /// Create a new empty tree in `store`.
    pub fn create<S: PageStore>(store: &mut S, now: Nanos) -> (Self, Nanos) {
        let root = store.allocate();
        let (_, t) = store.with_new_page(root, now, |buf| node::init(buf, Kind::Leaf, 0));
        (Self { root, height: 0, stats: TreeStats::default() }, t)
    }

    /// Re-open a tree from its persisted root/height (after recovery).
    pub fn open(root: u64, height: u8) -> Self {
        Self { root, height, stats: TreeStats::default() }
    }

    /// Root page number (for the catalog).
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Height (0 = the root is a leaf). A 100GB 4KB-page tree in the paper
    /// is height 3; page-size tuning changes this.
    pub fn height(&self) -> u8 {
        self.height
    }

    /// Split/structure statistics.
    pub fn stats(&self) -> TreeStats {
        self.stats
    }

    /// Look up `key`; returns the value if present.
    pub fn get<S: PageStore>(
        &self,
        store: &mut S,
        key: &[u8],
        now: Nanos,
    ) -> (Option<Vec<u8>>, Nanos) {
        let mut page = self.root;
        let mut t = now;
        loop {
            let (next, t2) = store.with_page(page, t, |buf| match node::kind(buf) {
                Kind::Internal => Err(node::route(buf, key)),
                Kind::Leaf => Ok(match node::search(buf, key) {
                    Ok(i) => Some(node::value(buf, i).to_vec()),
                    Err(_) => None,
                }),
            });
            t = t2;
            match next {
                Ok(found) => return (found, t),
                Err(child) => page = child,
            }
        }
    }

    /// Insert or overwrite `key` with `value`. Returns whether the key was
    /// new, and the completion time.
    pub fn put<S: PageStore>(
        &mut self,
        store: &mut S,
        key: &[u8],
        value: &[u8],
        now: Nanos,
    ) -> (bool, Nanos) {
        let max = node::max_cell_payload(store.page_size());
        assert!(
            key.len() + value.len() <= max,
            "cell of {} bytes exceeds page capacity {max}",
            key.len() + value.len()
        );
        let ((inserted, split), t) = self.put_rec(store, self.root, key, value, now);
        if let Some(s) = split {
            // Root split: grow the tree.
            let new_root = store.allocate();
            let old_root = self.root;
            let new_height = self.height + 1;
            let (_, t2) = store.with_new_page(new_root, t, |buf| {
                node::init(buf, Kind::Internal, new_height);
                node::set_leftmost_child(buf, old_root);
                node::insert_internal(buf, 0, &s.sep, s.right);
            });
            self.root = new_root;
            self.height = new_height;
            self.stats.root_splits += 1;
            return (inserted, t2);
        }
        (inserted, t)
    }

    fn put_rec<S: PageStore>(
        &mut self,
        store: &mut S,
        page: u64,
        key: &[u8],
        value: &[u8],
        now: Nanos,
    ) -> ((bool, Option<Split>), Nanos) {
        // Route through internal nodes first (read-only access).
        let (route, t) = store.with_page(page, now, |buf| match node::kind(buf) {
            Kind::Internal => Some(node::route(buf, key)),
            Kind::Leaf => None,
        });
        match route {
            None => self.put_leaf(store, page, key, value, t),
            Some(child) => {
                let ((inserted, split), t) = self.put_rec(store, child, key, value, t);
                match split {
                    None => ((inserted, None), t),
                    Some(s) => {
                        let (up, t) = self.insert_into_internal(store, page, s, t);
                        ((inserted, up), t)
                    }
                }
            }
        }
    }

    fn put_leaf<S: PageStore>(
        &mut self,
        store: &mut S,
        page: u64,
        key: &[u8],
        value: &[u8],
        now: Nanos,
    ) -> ((bool, Option<Split>), Nanos) {
        enum Outcome {
            Done(bool),
            NeedSplit(Vec<(Vec<u8>, Vec<u8>)>, u64), // all cells + old right sib
        }
        let (outcome, t) = store.with_page_mut(page, now, |buf| {
            match node::search(buf, key) {
                Ok(i) => {
                    // Overwrite: remove the old cell, compact, reinsert.
                    node::remove_slot(buf, i);
                    let cells = match node::extract(buf) {
                        Cells::Leaf(c) => c,
                        _ => unreachable!(),
                    };
                    node::rebuild_leaf(buf, &cells);
                    if node::fits(buf, key.len(), value.len()) {
                        let pos = node::search(buf, key).unwrap_err();
                        node::insert_leaf(buf, pos, key, value);
                        return Outcome::Done(false);
                    }
                    let mut cells = cells;
                    let pos = cells.partition_point(|(k, _)| k.as_slice() < key);
                    cells.insert(pos, (key.to_vec(), value.to_vec()));
                    Outcome::NeedSplit(cells, node::right_sibling(buf))
                }
                Err(pos) => {
                    if node::fits(buf, key.len(), value.len()) {
                        node::insert_leaf(buf, pos, key, value);
                        return Outcome::Done(true);
                    }
                    // Try compaction before splitting (heap may be leaky
                    // after deletes/overwrites).
                    let cells = match node::extract(buf) {
                        Cells::Leaf(c) => c,
                        _ => unreachable!(),
                    };
                    node::rebuild_leaf(buf, &cells);
                    if node::fits(buf, key.len(), value.len()) {
                        let pos = node::search(buf, key).unwrap_err();
                        node::insert_leaf(buf, pos, key, value);
                        return Outcome::Done(true);
                    }
                    let mut cells = cells;
                    cells.insert(pos, (key.to_vec(), value.to_vec()));
                    Outcome::NeedSplit(cells, node::right_sibling(buf))
                }
            }
        });
        match outcome {
            Outcome::Done(inserted) => ((inserted, None), t),
            Outcome::NeedSplit(cells, old_right) => {
                // Split by bytes, not count, so variable-size cells balance.
                let total: usize = cells.iter().map(|(k, v)| k.len() + v.len() + 6).sum();
                let mut acc = 0usize;
                let mut cut = (cells.len() / 2).max(1);
                for (i, (k, v)) in cells.iter().enumerate() {
                    acc += k.len() + v.len() + 6;
                    if acc >= total / 2 {
                        cut = (i + 1).min(cells.len() - 1).max(1);
                        break;
                    }
                }
                let right_cells = cells[cut..].to_vec();
                let left_cells = &cells[..cut];
                let right_page = store.allocate();
                let (_, t) = store.with_page_mut(page, t, |buf| {
                    node::rebuild_leaf(buf, left_cells);
                    node::set_right_sibling(buf, right_page);
                });
                let (_, t) = store.with_new_page(right_page, t, |buf| {
                    node::init(buf, Kind::Leaf, 0);
                    node::set_right_sibling(buf, old_right);
                    node::rebuild_leaf(buf, &right_cells);
                });
                self.stats.leaf_splits += 1;
                let sep = right_cells[0].0.clone();
                ((true, Some(Split { sep, right: right_page })), t)
            }
        }
    }

    fn insert_into_internal<S: PageStore>(
        &mut self,
        store: &mut S,
        page: u64,
        s: Split,
        now: Nanos,
    ) -> (Option<Split>, Nanos) {
        enum Outcome {
            Done,
            NeedSplit(Vec<(Vec<u8>, u64)>, u8, u64),
        }
        let (outcome, t) = store.with_page_mut(page, now, |buf| {
            let pos = match node::search(buf, &s.sep) {
                Ok(i) => i + 1, // duplicate separators cannot happen; defensive
                Err(i) => i,
            };
            if node::fits(buf, s.sep.len(), 0) {
                node::insert_internal(buf, pos, &s.sep, s.right);
                return Outcome::Done;
            }
            let mut cells = match node::extract(buf) {
                Cells::Internal(c) => c,
                _ => unreachable!(),
            };
            cells.insert(pos, (s.sep.clone(), s.right));
            Outcome::NeedSplit(cells, node::level(buf), node::leftmost_child(buf))
        });
        match outcome {
            Outcome::Done => (None, t),
            Outcome::NeedSplit(cells, level, leftmost) => {
                // Middle key moves up; left/right get the halves.
                let mid = cells.len() / 2;
                let (up_key, right_leftmost) = cells[mid].clone();
                let left_cells = cells[..mid].to_vec();
                let right_cells = cells[mid + 1..].to_vec();
                let right_page = store.allocate();
                let (_, t) = store.with_page_mut(page, t, |buf| {
                    node::rebuild_internal(buf, level, leftmost, &left_cells);
                });
                let (_, t) = store.with_new_page(right_page, t, |buf| {
                    node::rebuild_internal(buf, level, right_leftmost, &right_cells);
                });
                self.stats.internal_splits += 1;
                (Some(Split { sep: up_key, right: right_page }), t)
            }
        }
    }

    /// Delete `key`; returns whether it existed.
    pub fn delete<S: PageStore>(&mut self, store: &mut S, key: &[u8], now: Nanos) -> (bool, Nanos) {
        let mut page = self.root;
        let mut t = now;
        loop {
            let (next, t2) = store.with_page(page, t, |buf| match node::kind(buf) {
                Kind::Internal => Err(node::route(buf, key)),
                Kind::Leaf => Ok(()),
            });
            t = t2;
            match next {
                Ok(()) => break,
                Err(child) => page = child,
            }
        }
        store.with_page_mut(page, t, |buf| match node::search(buf, key) {
            Ok(i) => {
                node::remove_slot(buf, i);
                true
            }
            Err(_) => false,
        })
    }

    /// Scan keys in `[from, ..)` in order, calling `f(key, value)`; stop when
    /// `f` returns `false`. Returns the number visited and the time.
    pub fn scan<S: PageStore>(
        &self,
        store: &mut S,
        from: &[u8],
        now: Nanos,
        mut f: impl FnMut(&[u8], &[u8]) -> bool,
    ) -> (u64, Nanos) {
        // Descend to the first candidate leaf.
        let mut page = self.root;
        let mut t = now;
        loop {
            let (next, t2) = store.with_page(page, t, |buf| match node::kind(buf) {
                Kind::Internal => Err(node::route(buf, from)),
                Kind::Leaf => Ok(()),
            });
            t = t2;
            match next {
                Ok(()) => break,
                Err(child) => page = child,
            }
        }
        let mut visited = 0u64;
        loop {
            let ((stop, next_page), t2) = store.with_page(page, t, |buf| {
                let start = match node::search(buf, from) {
                    Ok(i) => i,
                    Err(i) => i,
                };
                for i in start..node::nkeys(buf) {
                    visited += 1;
                    if !f(node::key(buf, i), node::value(buf, i)) {
                        return (true, NO_PAGE);
                    }
                }
                (false, node::right_sibling(buf))
            });
            t = t2;
            if stop || next_page == NO_PAGE {
                return (visited, t);
            }
            page = next_page;
        }
    }

    /// Walk the whole tree checking structural invariants; returns the
    /// number of keys. Test/debug instrumentation.
    pub fn check<S: PageStore>(&self, store: &mut S, now: Nanos) -> (u64, Nanos) {
        self.check_rec(store, self.root, None, None, self.height, now)
    }

    fn check_rec<S: PageStore>(
        &self,
        store: &mut S,
        page: u64,
        lo: Option<Vec<u8>>,
        hi: Option<Vec<u8>>,
        expect_level: u8,
        now: Nanos,
    ) -> (u64, Nanos) {
        /// Child subtree bounds: (low, high, page).
        type ChildBounds = (Option<Vec<u8>>, Option<Vec<u8>>, u64);
        enum NodeView {
            Leaf(u64),
            Internal(Vec<ChildBounds>),
        }
        let (view, mut t) = store.with_page(page, now, |buf| {
            let n = node::nkeys(buf);
            for i in 0..n {
                let k = node::key(buf, i);
                if i > 0 {
                    assert!(node::key(buf, i - 1) < k, "keys out of order");
                }
                if let Some(lo) = &lo {
                    assert!(k >= lo.as_slice(), "key below subtree bound");
                }
                if let Some(hi) = &hi {
                    assert!(k < hi.as_slice(), "key above subtree bound");
                }
            }
            match node::kind(buf) {
                Kind::Leaf => {
                    assert_eq!(expect_level, 0, "leaf at wrong depth");
                    NodeView::Leaf(n as u64)
                }
                Kind::Internal => {
                    assert!(expect_level > 0, "internal node at leaf depth");
                    let mut children = Vec::with_capacity(n + 1);
                    let first_hi =
                        if n > 0 { Some(node::key(buf, 0).to_vec()) } else { hi.clone() };
                    children.push((lo.clone(), first_hi, node::leftmost_child(buf)));
                    for i in 0..n {
                        let k = node::key(buf, i).to_vec();
                        let next_hi = if i + 1 < n {
                            Some(node::key(buf, i + 1).to_vec())
                        } else {
                            hi.clone()
                        };
                        children.push((Some(k), next_hi, node::child(buf, i)));
                    }
                    NodeView::Internal(children)
                }
            }
        });
        match view {
            NodeView::Leaf(n) => (n, t),
            NodeView::Internal(children) => {
                let mut total = 0;
                for (clo, chi, child) in children {
                    let (n, t2) = self.check_rec(store, child, clo, chi, expect_level - 1, t);
                    total += n;
                    t = t2;
                }
                (total, t)
            }
        }
    }
}

/// A trivial in-memory page store for unit tests (near-zero-latency pages).
pub struct MemStore {
    pages: Vec<Vec<u8>>,
    page_size: usize,
}

impl MemStore {
    /// New store of `page_size`-byte pages.
    pub fn new(page_size: usize) -> Self {
        Self { pages: Vec::new(), page_size }
    }
}

impl PageStore for MemStore {
    fn page_size(&self) -> usize {
        self.page_size
    }
    fn allocate(&mut self) -> u64 {
        self.pages.push(vec![0u8; self.page_size]);
        (self.pages.len() - 1) as u64
    }
    fn with_page<R>(&mut self, page_no: u64, now: Nanos, f: impl FnOnce(&[u8]) -> R) -> (R, Nanos) {
        (f(&self.pages[page_no as usize]), now + 1)
    }
    fn with_page_mut<R>(
        &mut self,
        page_no: u64,
        now: Nanos,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> (R, Nanos) {
        (f(&mut self.pages[page_no as usize]), now + 1)
    }
    fn with_new_page<R>(
        &mut self,
        page_no: u64,
        now: Nanos,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> (R, Nanos) {
        (f(&mut self.pages[page_no as usize]), now + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key_of(i: u64) -> Vec<u8> {
        format!("key{:08}", i).into_bytes()
    }

    fn val_of(i: u64) -> Vec<u8> {
        // ~100-140B values so trees deepen at realistic key counts.
        format!("value-{i}-{}", "x".repeat(100 + (i % 40) as usize)).into_bytes()
    }

    #[test]
    fn empty_tree_gets_nothing() {
        let mut s = MemStore::new(4096);
        let (t, _) = BTree::create(&mut s, 0);
        assert_eq!(t.get(&mut s, b"nope", 0).0, None);
        assert_eq!(t.height(), 0);
    }

    #[test]
    fn put_get_small() {
        let mut s = MemStore::new(4096);
        let (mut t, _) = BTree::create(&mut s, 0);
        assert!(t.put(&mut s, b"b", b"2", 0).0);
        assert!(t.put(&mut s, b"a", b"1", 0).0);
        assert!(!t.put(&mut s, b"a", b"one", 0).0, "overwrite is not an insert");
        assert_eq!(t.get(&mut s, b"a", 0).0.unwrap(), b"one");
        assert_eq!(t.get(&mut s, b"b", 0).0.unwrap(), b"2");
        assert_eq!(t.get(&mut s, b"c", 0).0, None);
    }

    #[test]
    fn thousands_of_keys_split_and_survive() {
        let mut s = MemStore::new(4096);
        let (mut t, _) = BTree::create(&mut s, 0);
        const N: u64 = 20_000;
        for i in 0..N {
            t.put(&mut s, &key_of(i * 7919 % N), &val_of(i), 0);
        }
        assert!(t.height() >= 2, "20k keys on 4KB pages must deepen twice");
        assert!(t.stats().leaf_splits > 10);
        let (count, _) = t.check(&mut s, 0);
        assert_eq!(count, N);
        for i in (0..N).step_by(97) {
            assert!(t.get(&mut s, &key_of(i), 0).0.is_some(), "missing key {i}");
        }
    }

    #[test]
    fn page_size_changes_height() {
        let mut s4 = MemStore::new(4096);
        let mut s16 = MemStore::new(16384);
        let (mut t4, _) = BTree::create(&mut s4, 0);
        let (mut t16, _) = BTree::create(&mut s16, 0);
        for i in 0..20_000u64 {
            t4.put(&mut s4, &key_of(i), &val_of(i), 0);
            t16.put(&mut s16, &key_of(i), &val_of(i), 0);
        }
        assert!(
            t4.height() > t16.height(),
            "4KB tree ({}) should be deeper than 16KB tree ({})",
            t4.height(),
            t16.height()
        );
    }

    #[test]
    fn overwrite_with_larger_value() {
        let mut s = MemStore::new(4096);
        let (mut t, _) = BTree::create(&mut s, 0);
        for i in 0..500u64 {
            t.put(&mut s, &key_of(i), b"small", 0);
        }
        for i in 0..500u64 {
            t.put(&mut s, &key_of(i), &[b'X'; 200], 0);
        }
        for i in 0..500u64 {
            assert_eq!(t.get(&mut s, &key_of(i), 0).0.unwrap(), vec![b'X'; 200]);
        }
        t.check(&mut s, 0);
    }

    #[test]
    fn delete_removes_and_reports() {
        let mut s = MemStore::new(4096);
        let (mut t, _) = BTree::create(&mut s, 0);
        for i in 0..1000u64 {
            t.put(&mut s, &key_of(i), &val_of(i), 0);
        }
        for i in (0..1000u64).step_by(2) {
            assert!(t.delete(&mut s, &key_of(i), 0).0);
        }
        assert!(!t.delete(&mut s, &key_of(0), 0).0, "double delete is a no-op");
        for i in 0..1000u64 {
            let present = t.get(&mut s, &key_of(i), 0).0.is_some();
            assert_eq!(present, i % 2 == 1, "key {i}");
        }
        let (count, _) = t.check(&mut s, 0);
        assert_eq!(count, 500);
    }

    #[test]
    fn scan_in_order_across_leaves() {
        let mut s = MemStore::new(4096);
        let (mut t, _) = BTree::create(&mut s, 0);
        for i in 0..2000u64 {
            t.put(&mut s, &key_of(i), &val_of(i), 0);
        }
        let mut seen = Vec::new();
        t.scan(&mut s, &key_of(500), 0, |k, _| {
            seen.push(k.to_vec());
            seen.len() < 100
        });
        assert_eq!(seen.len(), 100);
        assert_eq!(seen[0], key_of(500));
        assert_eq!(seen[99], key_of(599));
        for w in seen.windows(2) {
            assert!(w[0] < w[1], "scan must be ordered");
        }
    }

    #[test]
    fn scan_from_before_first_key() {
        let mut s = MemStore::new(4096);
        let (mut t, _) = BTree::create(&mut s, 0);
        for i in 10..20u64 {
            t.put(&mut s, &key_of(i), b"v", 0);
        }
        let (n, _) = t.scan(&mut s, b"", 0, |_, _| true);
        assert_eq!(n, 10);
    }

    #[test]
    #[should_panic(expected = "exceeds page capacity")]
    fn oversized_cell_rejected() {
        let mut s = MemStore::new(4096);
        let (mut t, _) = BTree::create(&mut s, 0);
        t.put(&mut s, b"k", &vec![0u8; 4000], 0);
    }

    #[test]
    fn mixed_workload_stays_consistent() {
        let mut s = MemStore::new(8192);
        let (mut t, _) = BTree::create(&mut s, 0);
        let mut model = std::collections::BTreeMap::new();
        let mut x: u64 = 12345;
        for _ in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let k = key_of((x >> 33) % 3000);
            match (x >> 16) % 3 {
                0 => {
                    t.put(&mut s, &k, &val_of(x % 100), 0);
                    model.insert(k, val_of(x % 100));
                }
                1 => {
                    let (a, _) = t.delete(&mut s, &k, 0);
                    let b = model.remove(&k).is_some();
                    assert_eq!(a, b);
                }
                _ => {
                    let (got, _) = t.get(&mut s, &k, 0);
                    assert_eq!(got.as_deref(), model.get(&k).map(|v| v.as_slice()));
                }
            }
        }
        let (count, _) = t.check(&mut s, 0);
        assert_eq!(count as usize, model.len());
    }
}

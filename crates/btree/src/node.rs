//! Byte-level slotted-page node layout.
//!
//! Every node is exactly one database page (4/8/16KB):
//!
//! ```text
//! +--------- header (32B) ----------+-- slot array ->     <- cells --+
//! | kind | level | nkeys | free_lo  |  u16 offsets ...   ... [cell]  |
//! | free_hi | right_sibling | left  |                                |
//! +---------------------------------+--------------------------------+
//! ```
//!
//! * Leaf cell:     `[klen u16][vlen u16][key][value]`
//! * Internal cell: `[klen u16][child u64][key]` — the child holds keys
//!   `>= key`; the header's `leftmost` child holds keys below every cell key.
//!
//! Slots are kept sorted by key, so lookups binary-search the slot array.

/// Byte offset constants of the header fields.
const OFF_KIND: usize = 0;
const OFF_LEVEL: usize = 1;
const OFF_NKEYS: usize = 2;
const OFF_FREE_LO: usize = 4; // start of free gap (end of slot array)
const OFF_FREE_HI: usize = 6; // end of free gap (start of cell heap)
const OFF_RIGHT: usize = 8; // right sibling (leaf chain)
const OFF_LEFTMOST: usize = 16; // leftmost child (internal)
/// Header size.
pub const HEADER: usize = 32;
/// "No page" sentinel.
pub const NO_PAGE: u64 = u64::MAX;

/// Node kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Holds keys and values.
    Leaf,
    /// Holds separator keys and child pointers.
    Internal,
}

fn get_u16(buf: &[u8], off: usize) -> u16 {
    u16::from_le_bytes(buf[off..off + 2].try_into().unwrap())
}

fn put_u16(buf: &mut [u8], off: usize, v: u16) {
    buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
}

fn get_u64(buf: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(buf[off..off + 8].try_into().unwrap())
}

fn put_u64(buf: &mut [u8], off: usize, v: u64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

/// Initialise a page as an empty node.
pub fn init(buf: &mut [u8], kind: Kind, level: u8) {
    buf[OFF_KIND] = match kind {
        Kind::Leaf => 0,
        Kind::Internal => 1,
    };
    buf[OFF_LEVEL] = level;
    put_u16(buf, OFF_NKEYS, 0);
    put_u16(buf, OFF_FREE_LO, HEADER as u16);
    // Page sizes are at most 16KB, so the length fits in u16.
    debug_assert!(buf.len() <= u16::MAX as usize);
    put_u16(buf, OFF_FREE_HI, buf.len() as u16);
    put_u64(buf, OFF_RIGHT, NO_PAGE);
    put_u64(buf, OFF_LEFTMOST, NO_PAGE);
}

/// The node kind stored in a page.
pub fn kind(buf: &[u8]) -> Kind {
    if buf[OFF_KIND] == 0 {
        Kind::Leaf
    } else {
        Kind::Internal
    }
}

/// Distance from the leaves (0 = leaf).
pub fn level(buf: &[u8]) -> u8 {
    buf[OFF_LEVEL]
}

/// Number of keys.
pub fn nkeys(buf: &[u8]) -> usize {
    get_u16(buf, OFF_NKEYS) as usize
}

/// Right sibling page (leaf chain), or [`NO_PAGE`].
pub fn right_sibling(buf: &[u8]) -> u64 {
    get_u64(buf, OFF_RIGHT)
}

/// Set the right sibling.
pub fn set_right_sibling(buf: &mut [u8], page: u64) {
    put_u64(buf, OFF_RIGHT, page);
}

/// Leftmost child of an internal node.
pub fn leftmost_child(buf: &[u8]) -> u64 {
    get_u64(buf, OFF_LEFTMOST)
}

/// Set the leftmost child.
pub fn set_leftmost_child(buf: &mut [u8], page: u64) {
    put_u64(buf, OFF_LEFTMOST, page);
}

fn slot_off(i: usize) -> usize {
    HEADER + 2 * i
}

fn cell_at(buf: &[u8], i: usize) -> usize {
    get_u16(buf, slot_off(i)) as usize
}

/// Key of slot `i`.
pub fn key(buf: &[u8], i: usize) -> &[u8] {
    let c = cell_at(buf, i);
    let klen = get_u16(buf, c) as usize;
    match kind(buf) {
        Kind::Leaf => &buf[c + 4..c + 4 + klen],
        Kind::Internal => &buf[c + 10..c + 10 + klen],
    }
}

/// Value of slot `i` (leaf only).
pub fn value(buf: &[u8], i: usize) -> &[u8] {
    debug_assert_eq!(kind(buf), Kind::Leaf);
    let c = cell_at(buf, i);
    let klen = get_u16(buf, c) as usize;
    let vlen = get_u16(buf, c + 2) as usize;
    &buf[c + 4 + klen..c + 4 + klen + vlen]
}

/// Child pointer of slot `i` (internal only).
pub fn child(buf: &[u8], i: usize) -> u64 {
    debug_assert_eq!(kind(buf), Kind::Internal);
    let c = cell_at(buf, i);
    get_u64(buf, c + 2)
}

/// Binary search: `Ok(i)` exact match, `Err(i)` insertion position.
pub fn search(buf: &[u8], k: &[u8]) -> Result<usize, usize> {
    let n = nkeys(buf);
    let mut lo = 0usize;
    let mut hi = n;
    while lo < hi {
        let mid = (lo + hi) / 2;
        match key(buf, mid).cmp(k) {
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
            std::cmp::Ordering::Equal => return Ok(mid),
        }
    }
    Err(lo)
}

/// The child an internal node routes `k` to.
pub fn route(buf: &[u8], k: &[u8]) -> u64 {
    debug_assert_eq!(kind(buf), Kind::Internal);
    match search(buf, k) {
        Ok(i) => child(buf, i),
        Err(0) => leftmost_child(buf),
        Err(i) => child(buf, i - 1),
    }
}

/// Free bytes between the slot array and the cell heap.
pub fn free_space(buf: &[u8]) -> usize {
    get_u16(buf, OFF_FREE_HI) as usize - get_u16(buf, OFF_FREE_LO) as usize
}

fn cell_size(kind: Kind, klen: usize, vlen: usize) -> usize {
    match kind {
        Kind::Leaf => 4 + klen + vlen,
        Kind::Internal => 10 + klen,
    }
}

/// Whether a cell of the given sizes fits (cell + one slot entry).
pub fn fits(buf: &[u8], klen: usize, vlen: usize) -> bool {
    free_space(buf) >= cell_size(kind(buf), klen, vlen) + 2
}

/// Insert a leaf cell at slot position `i` (caller guarantees order and fit).
pub fn insert_leaf(buf: &mut [u8], i: usize, k: &[u8], v: &[u8]) {
    debug_assert_eq!(kind(buf), Kind::Leaf);
    debug_assert!(fits(buf, k.len(), v.len()));
    let size = cell_size(Kind::Leaf, k.len(), v.len());
    let hi = get_u16(buf, OFF_FREE_HI) as usize - size;
    put_u16(buf, hi, k.len() as u16);
    put_u16(buf, hi + 2, v.len() as u16);
    buf[hi + 4..hi + 4 + k.len()].copy_from_slice(k);
    buf[hi + 4 + k.len()..hi + size].copy_from_slice(v);
    open_slot(buf, i, hi as u16);
    put_u16(buf, OFF_FREE_HI, hi as u16);
}

/// Insert an internal cell at slot position `i`.
pub fn insert_internal(buf: &mut [u8], i: usize, k: &[u8], child_page: u64) {
    debug_assert_eq!(kind(buf), Kind::Internal);
    debug_assert!(fits(buf, k.len(), 0));
    let size = cell_size(Kind::Internal, k.len(), 0);
    let hi = get_u16(buf, OFF_FREE_HI) as usize - size;
    put_u16(buf, hi, k.len() as u16);
    put_u64(buf, hi + 2, child_page);
    buf[hi + 10..hi + 10 + k.len()].copy_from_slice(k);
    open_slot(buf, i, hi as u16);
    put_u16(buf, OFF_FREE_HI, hi as u16);
}

fn open_slot(buf: &mut [u8], i: usize, cell: u16) {
    let n = nkeys(buf);
    debug_assert!(i <= n);
    // Shift slots right.
    for j in (i..n).rev() {
        let v = get_u16(buf, slot_off(j));
        put_u16(buf, slot_off(j + 1), v);
    }
    put_u16(buf, slot_off(i), cell);
    put_u16(buf, OFF_NKEYS, (n + 1) as u16);
    put_u16(buf, OFF_FREE_LO, (HEADER + 2 * (n + 1)) as u16);
}

/// Remove slot `i`. Cell space is reclaimed by compaction on demand (the
/// node is rewritten whole at splits), so only the slot goes away here; the
/// heap space is leaked until the next rebuild. `rebuild` compacts.
pub fn remove_slot(buf: &mut [u8], i: usize) {
    let n = nkeys(buf);
    debug_assert!(i < n);
    for j in i + 1..n {
        let v = get_u16(buf, slot_off(j));
        put_u16(buf, slot_off(j - 1), v);
    }
    put_u16(buf, OFF_NKEYS, (n - 1) as u16);
    put_u16(buf, OFF_FREE_LO, (HEADER + 2 * (n - 1)) as u16);
}

/// An owned copy of every cell in the node (for splits/compaction).
pub enum Cells {
    /// Leaf cells: (key, value).
    Leaf(Vec<(Vec<u8>, Vec<u8>)>),
    /// Internal cells: (key, child).
    Internal(Vec<(Vec<u8>, u64)>),
}

/// Extract owned cells in slot order.
pub fn extract(buf: &[u8]) -> Cells {
    let n = nkeys(buf);
    match kind(buf) {
        Kind::Leaf => {
            Cells::Leaf((0..n).map(|i| (key(buf, i).to_vec(), value(buf, i).to_vec())).collect())
        }
        Kind::Internal => {
            Cells::Internal((0..n).map(|i| (key(buf, i).to_vec(), child(buf, i))).collect())
        }
    }
}

/// Rebuild a leaf from owned cells, preserving level/right-sibling.
pub fn rebuild_leaf(buf: &mut [u8], cells: &[(Vec<u8>, Vec<u8>)]) {
    let right = right_sibling(buf);
    init(buf, Kind::Leaf, 0);
    set_right_sibling(buf, right);
    for (i, (k, v)) in cells.iter().enumerate() {
        insert_leaf(buf, i, k, v);
    }
}

/// Rebuild an internal node from owned cells, preserving level and the
/// leftmost child.
pub fn rebuild_internal(buf: &mut [u8], level_v: u8, leftmost: u64, cells: &[(Vec<u8>, u64)]) {
    init(buf, Kind::Internal, level_v);
    set_leftmost_child(buf, leftmost);
    for (i, (k, c)) in cells.iter().enumerate() {
        insert_internal(buf, i, k, *c);
    }
}

/// Largest cell payload a page can hold (used to reject oversized rows):
/// a node must fit at least 4 cells to stay a tree.
pub fn max_cell_payload(page_size: usize) -> usize {
    (page_size - HEADER - 2 * 4) / 4 - 4
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page() -> Vec<u8> {
        vec![0u8; 4096]
    }

    #[test]
    fn init_leaf_is_empty() {
        let mut p = page();
        init(&mut p, Kind::Leaf, 0);
        assert_eq!(kind(&p), Kind::Leaf);
        assert_eq!(nkeys(&p), 0);
        assert_eq!(right_sibling(&p), NO_PAGE);
        assert!(free_space(&p) > 4000);
    }

    #[test]
    fn leaf_insert_and_search() {
        let mut p = page();
        init(&mut p, Kind::Leaf, 0);
        // Insert out of order at computed positions.
        for k in [b"mango".as_ref(), b"apple".as_ref(), b"zebra".as_ref()] {
            let pos = search(&p, k).unwrap_err();
            insert_leaf(&mut p, pos, k, b"v");
        }
        assert_eq!(nkeys(&p), 3);
        assert_eq!(key(&p, 0), b"apple");
        assert_eq!(key(&p, 1), b"mango");
        assert_eq!(key(&p, 2), b"zebra");
        assert_eq!(search(&p, b"mango"), Ok(1));
        assert_eq!(search(&p, b"banana"), Err(1));
        assert_eq!(value(&p, 1), b"v");
    }

    #[test]
    fn internal_routing() {
        let mut p = page();
        init(&mut p, Kind::Internal, 1);
        set_leftmost_child(&mut p, 100);
        insert_internal(&mut p, 0, b"g", 200);
        insert_internal(&mut p, 1, b"p", 300);
        assert_eq!(route(&p, b"a"), 100);
        assert_eq!(route(&p, b"g"), 200);
        assert_eq!(route(&p, b"k"), 200);
        assert_eq!(route(&p, b"p"), 300);
        assert_eq!(route(&p, b"z"), 300);
    }

    #[test]
    fn fits_accounts_for_slot() {
        let mut p = vec![0u8; 64 + HEADER];
        init(&mut p, Kind::Leaf, 0);
        // free = 64; cell = 4+k+v, slot = 2.
        assert!(fits(&p, 20, 38)); // 4+58+2 = 64
        assert!(!fits(&p, 20, 39));
    }

    #[test]
    fn remove_slot_shifts() {
        let mut p = page();
        init(&mut p, Kind::Leaf, 0);
        for (i, k) in [b"a", b"b", b"c"].iter().enumerate() {
            insert_leaf(&mut p, i, *k, b"1");
        }
        remove_slot(&mut p, 1);
        assert_eq!(nkeys(&p), 2);
        assert_eq!(key(&p, 0), b"a");
        assert_eq!(key(&p, 1), b"c");
    }

    #[test]
    fn extract_rebuild_round_trip() {
        let mut p = page();
        init(&mut p, Kind::Leaf, 0);
        set_right_sibling(&mut p, 77);
        for (i, k) in [b"a", b"b", b"c", b"d"].iter().enumerate() {
            insert_leaf(&mut p, i, *k, &[i as u8]);
        }
        remove_slot(&mut p, 2); // leak some heap space
        let cells = match extract(&p) {
            Cells::Leaf(c) => c,
            _ => unreachable!(),
        };
        rebuild_leaf(&mut p, &cells);
        assert_eq!(nkeys(&p), 3);
        assert_eq!(key(&p, 2), b"d");
        assert_eq!(value(&p, 2), &[3u8]);
        assert_eq!(right_sibling(&p), 77);
        // Heap space fully compacted.
        assert!(free_space(&p) > 4000);
    }

    #[test]
    fn internal_extract_rebuild() {
        let mut p = page();
        init(&mut p, Kind::Internal, 2);
        set_leftmost_child(&mut p, 9);
        insert_internal(&mut p, 0, b"m", 10);
        let cells = match extract(&p) {
            Cells::Internal(c) => c,
            _ => unreachable!(),
        };
        rebuild_internal(&mut p, 2, 9, &cells);
        assert_eq!(level(&p), 2);
        assert_eq!(leftmost_child(&p), 9);
        assert_eq!(child(&p, 0), 10);
    }

    #[test]
    fn max_cell_payload_reasonable() {
        assert!(max_cell_payload(4096) > 900);
        assert!(max_cell_payload(16384) > 4000);
    }

    mod proptests {
        use super::*;
        use simkit::dist::{rng, Rng};
        use std::collections::{BTreeMap, BTreeSet};

        fn random_bytes<R: Rng>(r: &mut R, min: usize, max: usize) -> Vec<u8> {
            let len = r.gen_range(min..max);
            (0..len).map(|_| r.gen::<u8>()).collect()
        }

        /// Inserting arbitrary sorted cells and reading them back is
        /// lossless, across page sizes.
        #[test]
        fn leaf_cells_round_trip() {
            let mut r = rng(0xB7EE);
            for case in 0..128 {
                let page_size = [4096usize, 8192, 16384][case % 3];
                let mut cells: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
                for _ in 0..r.gen_range(1..30usize) {
                    cells.insert(random_bytes(&mut r, 1, 24), random_bytes(&mut r, 0, 64));
                }
                let mut p = vec![0u8; page_size];
                init(&mut p, Kind::Leaf, 0);
                let mut entries: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
                for (k, v) in &cells {
                    if !fits(&p, k.len(), v.len()) {
                        continue;
                    }
                    insert_leaf(&mut p, entries.len(), k, v);
                    entries.push((k.clone(), v.clone()));
                }
                assert_eq!(nkeys(&p), entries.len());
                for (i, (k, v)) in entries.iter().enumerate() {
                    assert_eq!(key(&p, i), k.as_slice());
                    assert_eq!(value(&p, i), v.as_slice());
                    assert_eq!(search(&p, k), Ok(i));
                }
                // Extract/rebuild is the identity.
                let extracted = match extract(&p) {
                    Cells::Leaf(c) => c,
                    _ => unreachable!(),
                };
                assert_eq!(&extracted, &entries);
                rebuild_leaf(&mut p, &extracted);
                assert_eq!(nkeys(&p), entries.len());
            }
        }

        /// Binary search agrees with a linear scan for arbitrary probes.
        #[test]
        fn search_matches_linear_scan() {
            let mut r = rng(0x5EA2C4);
            for _ in 0..256 {
                let mut keys: BTreeSet<Vec<u8>> = BTreeSet::new();
                for _ in 0..r.gen_range(1..40usize) {
                    keys.insert(random_bytes(&mut r, 1, 12));
                }
                let probe = random_bytes(&mut r, 1, 12);
                let mut p = vec![0u8; 8192];
                init(&mut p, Kind::Leaf, 0);
                let sorted: Vec<Vec<u8>> = keys.into_iter().collect();
                for (i, k) in sorted.iter().enumerate() {
                    insert_leaf(&mut p, i, k, b"v");
                }
                let expected = sorted.binary_search(&probe);
                assert_eq!(search(&p, &probe), expected);
            }
        }
    }
}

//! Host-side I/O stack.
//!
//! This crate is the boundary between the database engines and the simulated
//! storage hardware. It provides:
//!
//! * [`BlockDevice`] — the trait every device model (HDD, volatile-cache SSD,
//!   DuraSSD) implements. Addressing is in fixed 4KB *logical pages*, the
//!   sector granularity the paper's devices expose.
//! * [`Volume`] — a device plus the host's write-barrier policy. `fsync`
//!   translates to a device FLUSH CACHE command only when barriers are on,
//!   exactly the knob the paper's experiments toggle
//!   (`barrier=0` mount option / `nobarrier`).
//! * [`PageFile`] — a contiguous extent of a volume accessed with direct I/O
//!   in multiples of the logical page (4/8/16KB database pages).
//! * [`VolumeManager`] — a trivial extent allocator handing out page files.

pub mod device;
pub mod file;
pub mod testdev;
pub mod volume;

pub use device::{BlockDevice, DevError, DevResult, DeviceStats, LOGICAL_PAGE};
pub use file::PageFile;
pub use volume::{Volume, VolumeManager};

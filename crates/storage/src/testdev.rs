//! A minimal, zero-latency-model in-memory block device.
//!
//! Used by unit tests across the workspace wherever the test exercises logic
//! *above* the device (buffer pool, WAL, B+-tree, engines) and the device's
//! timing/durability model is irrelevant. It has a write-back "cache" only in
//! the sense that it tracks whether a flush happened after the last write,
//! which several ordering tests assert on.

use crate::device::{check_io, BlockDevice, DevResult, DeviceStats, LOGICAL_PAGE};
use simkit::Nanos;

/// Fixed service times, small but non-zero so virtual time still advances.
const READ_NS: Nanos = 10_000;
const WRITE_NS: Nanos = 20_000;
const FLUSH_NS: Nanos = 100_000;

/// In-memory device: every write is immediately durable, no failure model.
pub struct MemDevice {
    data: Vec<u8>,
    capacity: u64,
    stats: DeviceStats,
    clean: bool,
    powered: bool,
}

impl MemDevice {
    /// A device of `capacity` logical (4KB) pages.
    pub fn new(capacity: u64) -> Self {
        Self {
            data: vec![0; capacity as usize * LOGICAL_PAGE],
            capacity,
            stats: DeviceStats::default(),
            clean: true,
            powered: true,
        }
    }

    /// Whether a flush has been issued since the last write (for ordering
    /// assertions in tests).
    pub fn is_clean(&self) -> bool {
        self.clean
    }
}

impl BlockDevice for MemDevice {
    fn capacity_pages(&self) -> u64 {
        self.capacity
    }

    fn read(&mut self, lpn: u64, pages: u32, buf: &mut [u8], now: Nanos) -> DevResult<Nanos> {
        check_io(lpn, pages, buf.len(), self.capacity)?;
        let off = lpn as usize * LOGICAL_PAGE;
        buf.copy_from_slice(&self.data[off..off + buf.len()]);
        self.stats.reads += 1;
        Ok(now + READ_NS)
    }

    fn write(&mut self, lpn: u64, data: &[u8], now: Nanos) -> DevResult<Nanos> {
        let pages = (data.len() / LOGICAL_PAGE) as u32;
        check_io(lpn, pages, data.len(), self.capacity)?;
        let off = lpn as usize * LOGICAL_PAGE;
        self.data[off..off + data.len()].copy_from_slice(data);
        self.stats.writes += 1;
        self.stats.pages_written += pages as u64;
        self.stats.media_pages_written += pages as u64;
        self.clean = false;
        Ok(now + WRITE_NS)
    }

    fn flush(&mut self, now: Nanos) -> DevResult<Nanos> {
        self.stats.flushes += 1;
        self.clean = true;
        Ok(now + FLUSH_NS)
    }

    fn power_cut(&mut self, _now: Nanos) {
        self.powered = false;
    }

    fn reboot(&mut self, now: Nanos) -> Nanos {
        self.powered = true;
        now
    }

    fn is_powered(&self) -> bool {
        self.powered
    }

    fn stats(&self) -> DeviceStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_stats() {
        let mut d = MemDevice::new(8);
        let w = vec![9u8; LOGICAL_PAGE * 2];
        d.write(2, &w, 0).unwrap();
        let mut r = vec![0u8; LOGICAL_PAGE * 2];
        d.read(2, 2, &mut r, 100).unwrap();
        assert_eq!(r, w);
        assert_eq!(d.stats().writes, 1);
        assert_eq!(d.stats().pages_written, 2);
        assert_eq!(d.stats().reads, 1);
    }

    #[test]
    fn clean_tracking() {
        let mut d = MemDevice::new(4);
        assert!(d.is_clean());
        d.write(0, &vec![0u8; LOGICAL_PAGE], 0).unwrap();
        assert!(!d.is_clean());
        d.flush(10).unwrap();
        assert!(d.is_clean());
    }
}

//! Volumes: a block device plus the host's barrier policy, and a trivial
//! extent allocator for carving page files out of a device.

use crate::device::{
    check_io, BlockDevice, CauseCounts, DevResult, DeviceStats, WriteCause, LOGICAL_PAGE,
};
use forensics::{EvidenceKind, Ledger};
use simkit::Nanos;
use telemetry::{SegKind, Stall, Telemetry};

/// Cost of an `fsync` that does **not** reach the device (metadata bookkeeping
/// in the kernel): a couple of microseconds. This is what the paper's
/// `nobarrier` mount option reduces fsync to.
const FSYNC_SOFT_COST: Nanos = 2_000;

/// Pre-formatted telemetry names for one volume, so the hot path does not
/// re-allocate metric keys per I/O.
struct VolumeTel {
    tel: Telemetry,
    read: String,
    write: String,
    flush: String,
    fsync_soft: String,
    discard: String,
}

/// A mounted device with a write-barrier policy.
///
/// * `barriers = true` — the file-system default: `fsync` issues a FLUSH
///   CACHE command to the device and blocks until it completes (paper Fig 2).
/// * `barriers = false` — the `nobarrier` mount option: `fsync` orders writes
///   in the kernel but never flushes the device cache. Safe **only** on a
///   device with a durable cache (DuraSSD §2.2); on a volatile cache it
///   trades durability for speed.
///
/// A volume is the natural place to observe *host-visible* device latency,
/// so when a [`Telemetry`] handle is attached every read/write/flush latency
/// is histogrammed per device and every blocked nanosecond is attributed:
/// raw service time to [`Stall::Media`], GC-induced delay (sampled via
/// [`BlockDevice::gc_time`]) to [`Stall::Gc`], and barrier flushes to
/// [`Stall::FlushCache`] — unless an upper layer (WAL commit, buffer-pool
/// eviction) pushed a more specific attribution context.
pub struct Volume<D: BlockDevice> {
    dev: D,
    barriers: bool,
    fsyncs: u64,
    tel: Option<VolumeTel>,
    ledger: Option<Ledger>,
    /// Write-provenance stack: the innermost pushed cause tags every write
    /// until popped ([`WriteCause::HostData`] when empty). Same discipline
    /// as the telemetry stall-context stack.
    cause_stack: Vec<WriteCause>,
    /// Host-issued logical pages per declared cause (host boundary of the
    /// WAF pipeline; the device counts its own received/media boundaries).
    host_pages_by_cause: CauseCounts,
}

impl<D: BlockDevice> Volume<D> {
    /// Mount `dev` with the given barrier policy.
    pub fn new(dev: D, barriers: bool) -> Self {
        Self {
            dev,
            barriers,
            fsyncs: 0,
            tel: None,
            ledger: None,
            cause_stack: Vec::new(),
            host_pages_by_cause: CauseCounts::default(),
        }
    }

    /// Push a write-provenance cause: every write until the matching
    /// [`Volume::pop_cause`] is tagged with it (innermost wins).
    pub fn push_cause(&mut self, cause: WriteCause) {
        self.cause_stack.push(cause);
    }

    /// Pop the innermost write-provenance cause.
    pub fn pop_cause(&mut self) {
        self.cause_stack.pop();
    }

    /// The cause the next write would be tagged with.
    pub fn current_cause(&self) -> WriteCause {
        self.cause_stack.last().copied().unwrap_or_default()
    }

    /// Host-issued logical pages per cause (see [`WriteCause::index`]).
    pub fn host_pages_by_cause(&self) -> CauseCounts {
        self.host_pages_by_cause
    }

    /// Attach a durability ledger: every fsync acknowledgement is recorded
    /// as `fsync-ack` evidence. With barriers on the ack is backed by a
    /// device flush (a barrier contract); with barriers off the volume
    /// acknowledges without flushing — the ledger tags the ack with the
    /// device cache's own contract, which is exactly the promise a power
    /// cut puts to the test.
    pub fn attach_ledger(&mut self, ledger: Ledger) {
        self.ledger = Some(ledger);
    }

    /// Attach a telemetry handle; latencies are recorded under
    /// `dev.<label>.{read,write,flush,discard}`.
    pub fn attach_telemetry(&mut self, tel: Telemetry, label: &str) {
        self.tel = Some(VolumeTel {
            tel,
            read: format!("dev.{label}.read"),
            write: format!("dev.{label}.write"),
            flush: format!("dev.{label}.flush"),
            fsync_soft: format!("dev.{label}.fsync_soft"),
            discard: format!("dev.{label}.discard"),
        });
    }

    /// The attached telemetry handle, if any.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.tel.as_ref().map(|t| &t.tel)
    }

    /// Whether write barriers are enabled.
    pub fn barriers(&self) -> bool {
        self.barriers
    }

    /// Change the barrier policy (remount).
    pub fn set_barriers(&mut self, on: bool) {
        self.barriers = on;
    }

    /// Record a completed media command: histogram its latency and split the
    /// blocked time into GC-induced delay vs raw media service time.
    fn note_media(tel: &VolumeTel, name: usize, dur: Nanos, gc: Nanos) {
        let key = match name {
            0 => &tel.read,
            1 => &tel.write,
            _ => &tel.discard,
        };
        tel.tel.record(key, dur);
        let gc = gc.min(dur);
        if gc > 0 {
            tel.tel.stall(Stall::Gc, gc);
        }
        tel.tel.stall(Stall::Media, dur - gc);
    }

    /// Direct read of logical pages.
    ///
    /// The volume opens a latency-anatomy frame around every device
    /// command (`begin_frame`/`end_frame`), so the device's segment
    /// charges — NCQ wait, channel wait, media service, GC, flush-cache —
    /// land both in the command's own breakdown and, because frames nest,
    /// in whatever host operation (engine commit, docstore set) encloses
    /// it.
    pub fn read(&mut self, lpn: u64, pages: u32, buf: &mut [u8], now: Nanos) -> DevResult<Nanos> {
        let gc0 = self.tel.as_ref().map(|_| self.dev.gc_time());
        if let Some(tel) = &self.tel {
            tel.tel.trace_begin("dev", &tel.read, now);
            tel.tel.begin_frame(&tel.read, now);
        }
        let res = self.dev.read(lpn, pages, buf, now);
        if let (Some(tel), Some(gc0)) = (&self.tel, gc0) {
            // Close the frame on the error path too (at `now`): a failed
            // command must not leave a dangling frame that would corrupt
            // the attribution of every later operation.
            let end = *res.as_ref().unwrap_or(&now);
            if res.is_ok() {
                Self::note_media(tel, 0, end.saturating_sub(now), self.dev.gc_time() - gc0);
            }
            tel.tel.end_frame(&tel.read, end);
            tel.tel.trace_end("dev", &tel.read, end);
        }
        res
    }

    /// Direct write of logical pages, tagged with the innermost pushed
    /// cause (provenance for the WAF accounting at every boundary below).
    pub fn write(&mut self, lpn: u64, data: &[u8], now: Nanos) -> DevResult<Nanos> {
        let cause = self.current_cause();
        self.host_pages_by_cause[cause.index()] += (data.len() / LOGICAL_PAGE) as u64;
        self.dev.set_write_cause(cause);
        let gc0 = self.tel.as_ref().map(|_| self.dev.gc_time());
        if let Some(tel) = &self.tel {
            tel.tel.trace_begin("dev", &tel.write, now);
            tel.tel.begin_frame(&tel.write, now);
        }
        let res = self.dev.write(lpn, data, now);
        if let (Some(tel), Some(gc0)) = (&self.tel, gc0) {
            let end = *res.as_ref().unwrap_or(&now);
            if res.is_ok() {
                Self::note_media(tel, 1, end.saturating_sub(now), self.dev.gc_time() - gc0);
            }
            tel.tel.end_frame(&tel.write, end);
            tel.tel.trace_end("dev", &tel.write, end);
        }
        res
    }

    /// `fsync`: flush the device cache if barriers are on, otherwise only
    /// pay the in-kernel cost.
    ///
    /// With barriers the entire wait is a FLUSH CACHE drain and is attributed
    /// to [`Stall::FlushCache`] (minus any GC share). Without barriers no
    /// FLUSH CACHE is issued: the soft in-kernel cost is histogrammed
    /// separately and **not** counted as flush stall — which is exactly why
    /// a durable-cache device mounted `nobarrier` shows a near-zero
    /// `flush_cache` line in the benchmark reports.
    pub fn fsync(&mut self, now: Nanos) -> DevResult<Nanos> {
        self.fsyncs += 1;
        if self.barriers {
            let gc0 = self.tel.as_ref().map(|_| self.dev.gc_time());
            if let Some(tel) = &self.tel {
                tel.tel.trace_begin("dev", &tel.flush, now);
                tel.tel.begin_frame(&tel.flush, now);
            }
            let res = self.dev.flush(now);
            if let (Some(tel), Some(gc0)) = (&self.tel, gc0) {
                let end = *res.as_ref().unwrap_or(&now);
                if res.is_ok() {
                    let dur = end.saturating_sub(now);
                    let gc = (self.dev.gc_time() - gc0).min(dur);
                    tel.tel.record(&tel.flush, dur);
                    if gc > 0 {
                        tel.tel.stall(Stall::Gc, gc);
                    }
                    tel.tel.stall(Stall::FlushCache, dur - gc);
                }
                tel.tel.end_frame(&tel.flush, end);
                tel.tel.trace_end("dev", &tel.flush, end);
            }
            let done = res?;
            if let Some(ledger) = &self.ledger {
                ledger.evidence(EvidenceKind::FsyncAck, self.fsyncs, done, true);
            }
            Ok(done)
        } else {
            let done = now + FSYNC_SOFT_COST;
            if let Some(tel) = &self.tel {
                tel.tel.record(&tel.fsync_soft, FSYNC_SOFT_COST);
                tel.tel.trace_instant("dev", &tel.fsync_soft, now);
                // The in-kernel cost of a nobarrier fsync is WAL-fsync
                // time in the anatomy: it is what commit-time durability
                // costs when no FLUSH CACHE is issued, and it is the
                // *only* durability segment a durable-cache deployment
                // should ever show.
                tel.tel.begin_frame(&tel.fsync_soft, now);
                tel.tel.seg(SegKind::WalFsync, FSYNC_SOFT_COST);
                tel.tel.end_frame(&tel.fsync_soft, done);
            }
            if let Some(ledger) = &self.ledger {
                // No barrier was issued: the ack rides on the device cache's
                // own contract.
                ledger.evidence(EvidenceKind::FsyncAck, self.fsyncs, done, false);
            }
            Ok(done)
        }
    }

    /// Number of fsync calls made against this volume.
    pub fn fsync_count(&self) -> u64 {
        self.fsyncs
    }

    /// Device capacity in logical pages.
    pub fn capacity_pages(&self) -> u64 {
        self.dev.capacity_pages()
    }

    /// TRIM a range (file deletion, compaction).
    pub fn discard(&mut self, lpn: u64, pages: u32, now: Nanos) -> DevResult<Nanos> {
        let gc0 = self.tel.as_ref().map(|_| self.dev.gc_time());
        if let Some(tel) = &self.tel {
            tel.tel.trace_begin("dev", &tel.discard, now);
            tel.tel.begin_frame(&tel.discard, now);
        }
        let res = self.dev.discard(lpn, pages, now);
        if let (Some(tel), Some(gc0)) = (&self.tel, gc0) {
            let end = *res.as_ref().unwrap_or(&now);
            if res.is_ok() {
                Self::note_media(tel, 2, end.saturating_sub(now), self.dev.gc_time() - gc0);
            }
            tel.tel.end_frame(&tel.discard, end);
            tel.tel.trace_end("dev", &tel.discard, end);
        }
        res
    }

    /// Cut power to the underlying device.
    pub fn power_cut(&mut self, now: Nanos) {
        self.dev.power_cut(now);
    }

    /// Reboot the underlying device; returns when it is ready.
    pub fn reboot(&mut self, now: Nanos) -> Nanos {
        self.dev.reboot(now)
    }

    /// Device statistics.
    pub fn device_stats(&self) -> DeviceStats {
        self.dev.stats()
    }

    /// Access the device model directly (used by tests and fault-injection
    /// harnesses).
    pub fn device(&self) -> &D {
        &self.dev
    }

    /// Mutable access to the device model.
    pub fn device_mut(&mut self) -> &mut D {
        &mut self.dev
    }

    /// Unmount: take the device back (e.g. to hand it to recovery).
    pub fn into_device(self) -> D {
        self.dev
    }
}

/// Hands out non-overlapping extents of a volume as page files.
///
/// This stands in for the file system's allocator; databases in the paper's
/// setup use `O_DIRECT` pre-allocated files, so contiguous extents are the
/// faithful model.
pub struct VolumeManager {
    capacity: u64,
    next_free: u64,
}

/// A named, contiguous extent on a volume (in logical pages).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// First logical page of the extent.
    pub base: u64,
    /// Length in logical pages.
    pub pages: u64,
}

impl VolumeManager {
    /// Manage a device of `capacity` logical pages.
    pub fn new(capacity: u64) -> Self {
        Self { capacity, next_free: 0 }
    }

    /// Allocate `pages` logical pages; panics if the volume is exhausted
    /// (experiment setup error, not a runtime condition).
    pub fn alloc(&mut self, pages: u64) -> Extent {
        assert!(
            self.next_free + pages <= self.capacity,
            "volume exhausted: want {pages} pages, {} free",
            self.capacity - self.next_free
        );
        let e = Extent { base: self.next_free, pages };
        self.next_free += pages;
        e
    }

    /// Logical pages not yet allocated.
    pub fn free_pages(&self) -> u64 {
        self.capacity - self.next_free
    }
}

/// Check a file-relative I/O fits inside an extent, returning the absolute
/// logical page number.
pub fn extent_io(e: Extent, rel_lpn: u64, pages: u32, buf_len: usize) -> DevResult<u64> {
    check_io(rel_lpn, pages, buf_len, e.pages)?;
    // Extent bases are small in practice; overflow cannot occur after the
    // capacity check, but be explicit.
    Ok(e.base + rel_lpn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{DevError, LOGICAL_PAGE};
    use crate::testdev::MemDevice;

    #[test]
    fn fsync_with_barriers_flushes_device() {
        let mut v = Volume::new(MemDevice::new(16), true);
        v.fsync(0).unwrap();
        assert_eq!(v.device_stats().flushes, 1);
        assert_eq!(v.fsync_count(), 1);
    }

    #[test]
    fn fsync_without_barriers_skips_flush() {
        let mut v = Volume::new(MemDevice::new(16), false);
        let t = v.fsync(0).unwrap();
        assert_eq!(t, FSYNC_SOFT_COST);
        assert_eq!(v.device_stats().flushes, 0);
    }

    #[test]
    fn volume_round_trips_data() {
        let mut v = Volume::new(MemDevice::new(16), true);
        let data = vec![7u8; LOGICAL_PAGE];
        v.write(3, &data, 0).unwrap();
        let mut back = vec![0u8; LOGICAL_PAGE];
        v.read(3, 1, &mut back, 100).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn allocator_hands_out_disjoint_extents() {
        let mut m = VolumeManager::new(100);
        let a = m.alloc(10);
        let b = m.alloc(20);
        assert_eq!(a, Extent { base: 0, pages: 10 });
        assert_eq!(b, Extent { base: 10, pages: 20 });
        assert_eq!(m.free_pages(), 70);
    }

    #[test]
    #[should_panic(expected = "volume exhausted")]
    fn allocator_panics_when_full() {
        let mut m = VolumeManager::new(8);
        m.alloc(9);
    }

    #[test]
    fn extent_io_translates_and_checks() {
        let e = Extent { base: 100, pages: 10 };
        assert_eq!(extent_io(e, 3, 1, LOGICAL_PAGE).unwrap(), 103);
        assert!(matches!(extent_io(e, 9, 2, 2 * LOGICAL_PAGE), Err(DevError::OutOfRange { .. })));
    }

    #[test]
    fn discard_passthrough_defaults_to_noop() {
        let mut v = Volume::new(MemDevice::new(16), true);
        let data = vec![7u8; LOGICAL_PAGE];
        v.write(3, &data, 0).unwrap();
        let t = v.discard(3, 1, 100).unwrap();
        assert_eq!(t, 100, "default discard is free");
        let mut back = vec![0u8; LOGICAL_PAGE];
        v.read(3, 1, &mut back, t).unwrap();
        assert_eq!(back, data, "no-op discard keeps data");
    }

    #[test]
    fn cause_stack_innermost_wins_and_defaults_to_host_data() {
        use crate::device::WriteCause;
        let mut v = Volume::new(MemDevice::new(16), true);
        let data = vec![7u8; LOGICAL_PAGE];
        // No declared cause: host data.
        assert_eq!(v.current_cause(), WriteCause::HostData);
        v.write(0, &data, 0).unwrap();
        // Nested contexts: the innermost annotation wins.
        v.push_cause(WriteCause::WalAppend);
        v.write(1, &data, 10).unwrap();
        v.push_cause(WriteCause::PageImage);
        assert_eq!(v.current_cause(), WriteCause::PageImage);
        v.write(2, &data, 20).unwrap();
        v.pop_cause();
        v.write(3, &data, 30).unwrap();
        v.pop_cause();
        // Popped back to the default.
        v.write(4, &data, 40).unwrap();
        let by_cause = v.host_pages_by_cause();
        assert_eq!(by_cause[WriteCause::HostData.index()], 2);
        assert_eq!(by_cause[WriteCause::WalAppend.index()], 2);
        assert_eq!(by_cause[WriteCause::PageImage.index()], 1);
        let total: u64 = by_cause.iter().sum();
        assert_eq!(total, v.device_stats().pages_written, "every host page attributed");
    }

    #[test]
    fn volume_ops_open_anatomy_frames() {
        let tel = Telemetry::new();
        tel.enable_anatomy(2);
        let mut v = Volume::new(MemDevice::new(16), true);
        v.attach_telemetry(tel.clone(), "t");
        let data = vec![7u8; LOGICAL_PAGE];
        let t = v.write(3, &data, 0).unwrap();
        let bd = tel.last_breakdown().unwrap();
        assert_eq!(bd.name, "dev.t.write");
        assert!(bd.is_conserved());
        let mut back = vec![0u8; LOGICAL_PAGE];
        let t = v.read(3, 1, &mut back, t).unwrap();
        assert_eq!(tel.last_breakdown().unwrap().name, "dev.t.read");
        let t = v.fsync(t).unwrap();
        assert_eq!(tel.last_breakdown().unwrap().name, "dev.t.flush");
        v.discard(3, 1, t).unwrap();
        assert_eq!(tel.last_breakdown().unwrap().name, "dev.t.discard");
        assert_eq!(tel.anatomy_violations(), 0);
        assert_eq!(tel.frame_depth(), 0, "no dangling frames");
    }

    #[test]
    fn nobarrier_fsync_charges_wal_fsync_not_flush_cache() {
        let tel = Telemetry::new();
        tel.enable_anatomy(2);
        let mut v = Volume::new(MemDevice::new(16), false);
        v.attach_telemetry(tel.clone(), "t");
        // Enclosing host-op frame, as a commit would open.
        tel.begin_frame("engine.commit", 0);
        let done = v.fsync(0).unwrap();
        tel.end_frame("engine.commit", done);
        let bd = tel.last_breakdown().unwrap();
        assert_eq!(bd.seg(SegKind::WalFsync), FSYNC_SOFT_COST, "soft cost is wal_fsync");
        assert_eq!(bd.seg(SegKind::FlushCache), 0, "nobarrier: no flush segment, ever");
        assert!(bd.is_conserved());
        // The fsync's own frame conserved too.
        let soft = tel.outliers_for("dev.t.fsync_soft");
        assert_eq!(soft.len(), 1);
        assert_eq!(soft[0].wall, FSYNC_SOFT_COST);
        assert_eq!(soft[0].seg(SegKind::WalFsync), FSYNC_SOFT_COST);
    }

    #[test]
    fn failed_command_does_not_leak_a_frame() {
        let tel = Telemetry::new();
        tel.enable_anatomy(2);
        let mut v = Volume::new(MemDevice::new(16), true);
        v.attach_telemetry(tel.clone(), "t");
        let data = vec![7u8; LOGICAL_PAGE];
        assert!(v.write(99, &data, 0).is_err(), "out of range");
        assert_eq!(tel.frame_depth(), 0, "error path must close its frame");
        assert_eq!(tel.anatomy_violations(), 0);
    }

    #[test]
    fn barrier_remount_changes_fsync_behaviour() {
        let mut v = Volume::new(MemDevice::new(16), true);
        v.fsync(0).unwrap();
        assert_eq!(v.device_stats().flushes, 1);
        v.set_barriers(false);
        v.fsync(10).unwrap();
        assert_eq!(v.device_stats().flushes, 1, "nobarrier fsync must not flush");
        assert!(!v.barriers());
    }
}

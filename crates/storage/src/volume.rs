//! Volumes: a block device plus the host's barrier policy, and a trivial
//! extent allocator for carving page files out of a device.

use crate::device::{check_io, BlockDevice, DevResult, DeviceStats};
use simkit::Nanos;

/// Cost of an `fsync` that does **not** reach the device (metadata bookkeeping
/// in the kernel): a couple of microseconds. This is what the paper's
/// `nobarrier` mount option reduces fsync to.
const FSYNC_SOFT_COST: Nanos = 2_000;

/// A mounted device with a write-barrier policy.
///
/// * `barriers = true` — the file-system default: `fsync` issues a FLUSH
///   CACHE command to the device and blocks until it completes (paper Fig 2).
/// * `barriers = false` — the `nobarrier` mount option: `fsync` orders writes
///   in the kernel but never flushes the device cache. Safe **only** on a
///   device with a durable cache (DuraSSD §2.2); on a volatile cache it
///   trades durability for speed.
pub struct Volume<D: BlockDevice> {
    dev: D,
    barriers: bool,
    fsyncs: u64,
}

impl<D: BlockDevice> Volume<D> {
    /// Mount `dev` with the given barrier policy.
    pub fn new(dev: D, barriers: bool) -> Self {
        Self { dev, barriers, fsyncs: 0 }
    }

    /// Whether write barriers are enabled.
    pub fn barriers(&self) -> bool {
        self.barriers
    }

    /// Change the barrier policy (remount).
    pub fn set_barriers(&mut self, on: bool) {
        self.barriers = on;
    }

    /// Direct read of logical pages.
    pub fn read(&mut self, lpn: u64, pages: u32, buf: &mut [u8], now: Nanos) -> DevResult<Nanos> {
        self.dev.read(lpn, pages, buf, now)
    }

    /// Direct write of logical pages.
    pub fn write(&mut self, lpn: u64, data: &[u8], now: Nanos) -> DevResult<Nanos> {
        self.dev.write(lpn, data, now)
    }

    /// `fsync`: flush the device cache if barriers are on, otherwise only
    /// pay the in-kernel cost.
    pub fn fsync(&mut self, now: Nanos) -> DevResult<Nanos> {
        self.fsyncs += 1;
        if self.barriers {
            self.dev.flush(now)
        } else {
            Ok(now + FSYNC_SOFT_COST)
        }
    }

    /// Number of fsync calls made against this volume.
    pub fn fsync_count(&self) -> u64 {
        self.fsyncs
    }

    /// Device capacity in logical pages.
    pub fn capacity_pages(&self) -> u64 {
        self.dev.capacity_pages()
    }

    /// TRIM a range (file deletion, compaction).
    pub fn discard(&mut self, lpn: u64, pages: u32, now: Nanos) -> DevResult<Nanos> {
        self.dev.discard(lpn, pages, now)
    }

    /// Cut power to the underlying device.
    pub fn power_cut(&mut self, now: Nanos) {
        self.dev.power_cut(now);
    }

    /// Reboot the underlying device; returns when it is ready.
    pub fn reboot(&mut self, now: Nanos) -> Nanos {
        self.dev.reboot(now)
    }

    /// Device statistics.
    pub fn device_stats(&self) -> DeviceStats {
        self.dev.stats()
    }

    /// Access the device model directly (used by tests and fault-injection
    /// harnesses).
    pub fn device(&self) -> &D {
        &self.dev
    }

    /// Mutable access to the device model.
    pub fn device_mut(&mut self) -> &mut D {
        &mut self.dev
    }

    /// Unmount: take the device back (e.g. to hand it to recovery).
    pub fn into_device(self) -> D {
        self.dev
    }
}

/// Hands out non-overlapping extents of a volume as page files.
///
/// This stands in for the file system's allocator; databases in the paper's
/// setup use `O_DIRECT` pre-allocated files, so contiguous extents are the
/// faithful model.
pub struct VolumeManager {
    capacity: u64,
    next_free: u64,
}

/// A named, contiguous extent on a volume (in logical pages).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// First logical page of the extent.
    pub base: u64,
    /// Length in logical pages.
    pub pages: u64,
}

impl VolumeManager {
    /// Manage a device of `capacity` logical pages.
    pub fn new(capacity: u64) -> Self {
        Self { capacity, next_free: 0 }
    }

    /// Allocate `pages` logical pages; panics if the volume is exhausted
    /// (experiment setup error, not a runtime condition).
    pub fn alloc(&mut self, pages: u64) -> Extent {
        assert!(
            self.next_free + pages <= self.capacity,
            "volume exhausted: want {pages} pages, {} free",
            self.capacity - self.next_free
        );
        let e = Extent { base: self.next_free, pages };
        self.next_free += pages;
        e
    }

    /// Logical pages not yet allocated.
    pub fn free_pages(&self) -> u64 {
        self.capacity - self.next_free
    }
}

/// Check a file-relative I/O fits inside an extent, returning the absolute
/// logical page number.
pub fn extent_io(e: Extent, rel_lpn: u64, pages: u32, buf_len: usize) -> DevResult<u64> {
    check_io(rel_lpn, pages, buf_len, e.pages)?;
    // Extent bases are small in practice; overflow cannot occur after the
    // capacity check, but be explicit.
    Ok(e.base + rel_lpn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{DevError, LOGICAL_PAGE};
    use crate::testdev::MemDevice;

    #[test]
    fn fsync_with_barriers_flushes_device() {
        let mut v = Volume::new(MemDevice::new(16), true);
        v.fsync(0).unwrap();
        assert_eq!(v.device_stats().flushes, 1);
        assert_eq!(v.fsync_count(), 1);
    }

    #[test]
    fn fsync_without_barriers_skips_flush() {
        let mut v = Volume::new(MemDevice::new(16), false);
        let t = v.fsync(0).unwrap();
        assert_eq!(t, FSYNC_SOFT_COST);
        assert_eq!(v.device_stats().flushes, 0);
    }

    #[test]
    fn volume_round_trips_data() {
        let mut v = Volume::new(MemDevice::new(16), true);
        let data = vec![7u8; LOGICAL_PAGE];
        v.write(3, &data, 0).unwrap();
        let mut back = vec![0u8; LOGICAL_PAGE];
        v.read(3, 1, &mut back, 100).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn allocator_hands_out_disjoint_extents() {
        let mut m = VolumeManager::new(100);
        let a = m.alloc(10);
        let b = m.alloc(20);
        assert_eq!(a, Extent { base: 0, pages: 10 });
        assert_eq!(b, Extent { base: 10, pages: 20 });
        assert_eq!(m.free_pages(), 70);
    }

    #[test]
    #[should_panic(expected = "volume exhausted")]
    fn allocator_panics_when_full() {
        let mut m = VolumeManager::new(8);
        m.alloc(9);
    }

    #[test]
    fn extent_io_translates_and_checks() {
        let e = Extent { base: 100, pages: 10 };
        assert_eq!(extent_io(e, 3, 1, LOGICAL_PAGE).unwrap(), 103);
        assert!(matches!(
            extent_io(e, 9, 2, 2 * LOGICAL_PAGE),
            Err(DevError::OutOfRange { .. })
        ));
    }

    #[test]
    fn discard_passthrough_defaults_to_noop() {
        let mut v = Volume::new(MemDevice::new(16), true);
        let data = vec![7u8; LOGICAL_PAGE];
        v.write(3, &data, 0).unwrap();
        let t = v.discard(3, 1, 100).unwrap();
        assert_eq!(t, 100, "default discard is free");
        let mut back = vec![0u8; LOGICAL_PAGE];
        v.read(3, 1, &mut back, t).unwrap();
        assert_eq!(back, data, "no-op discard keeps data");
    }

    #[test]
    fn barrier_remount_changes_fsync_behaviour() {
        let mut v = Volume::new(MemDevice::new(16), true);
        v.fsync(0).unwrap();
        assert_eq!(v.device_stats().flushes, 1);
        v.set_barriers(false);
        v.fsync(10).unwrap();
        assert_eq!(v.device_stats().flushes, 1, "nobarrier fsync must not flush");
        assert!(!v.barriers());
    }
}

//! Direct-I/O page files.
//!
//! A [`PageFile`] is a contiguous extent of a volume accessed in fixed-size
//! *file pages* — the database page size (4, 8 or 16KB), always a multiple of
//! the device's 4KB logical page. This models the paper's setup: databases
//! on pre-allocated `O_DIRECT` files whose page size is configured to match
//! (or exceed) the device mapping granularity (§2.1 last paragraph).
//!
//! A `PageFile` holds only layout; callers pass the volume explicitly, so
//! many files can share one device without interior mutability.

use crate::device::{BlockDevice, DevError, DevResult, LOGICAL_PAGE};
use crate::volume::{Extent, Volume, VolumeManager};
use simkit::Nanos;

/// A contiguous, fixed-page-size file on a volume.
#[derive(Debug, Clone, Copy)]
pub struct PageFile {
    extent: Extent,
    page_size: usize,
    pages: u64,
}

impl PageFile {
    /// Allocate a file of `pages` pages of `page_size` bytes from `vm`.
    ///
    /// `page_size` must be a positive multiple of the 4KB logical page.
    pub fn create(vm: &mut VolumeManager, pages: u64, page_size: usize) -> Self {
        assert!(
            page_size >= LOGICAL_PAGE && page_size.is_multiple_of(LOGICAL_PAGE),
            "page size {page_size} must be a multiple of {LOGICAL_PAGE}"
        );
        let lppp = (page_size / LOGICAL_PAGE) as u64; // logical pages per file page
        let extent = vm.alloc(pages * lppp);
        Self { extent, page_size, pages }
    }

    /// The file's page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of file pages.
    pub fn pages(&self) -> u64 {
        self.pages
    }

    /// Logical pages per file page.
    fn lppp(&self) -> u32 {
        (self.page_size / LOGICAL_PAGE) as u32
    }

    fn check(&self, page_no: u64, buf_len: usize) -> DevResult<u64> {
        if page_no >= self.pages {
            return Err(DevError::OutOfRange {
                lpn: page_no,
                pages: self.lppp(),
                capacity: self.pages,
            });
        }
        if buf_len != self.page_size {
            return Err(DevError::BadLength { expected: self.page_size, got: buf_len });
        }
        Ok(self.extent.base + page_no * self.lppp() as u64)
    }

    /// Read file page `page_no` into `buf` (`buf.len() == page_size`).
    pub fn read_page<D: BlockDevice>(
        &self,
        vol: &mut Volume<D>,
        page_no: u64,
        buf: &mut [u8],
        now: Nanos,
    ) -> DevResult<Nanos> {
        let lpn = self.check(page_no, buf.len())?;
        vol.read(lpn, self.lppp(), buf, now)
    }

    /// Write file page `page_no` from `data` (`data.len() == page_size`).
    pub fn write_page<D: BlockDevice>(
        &self,
        vol: &mut Volume<D>,
        page_no: u64,
        data: &[u8],
        now: Nanos,
    ) -> DevResult<Nanos> {
        let lpn = self.check(page_no, data.len())?;
        vol.write(lpn, data, now)
    }

    /// Read `n` consecutive file pages in one device command.
    pub fn read_pages<D: BlockDevice>(
        &self,
        vol: &mut Volume<D>,
        page_no: u64,
        buf: &mut [u8],
        now: Nanos,
    ) -> DevResult<Nanos> {
        if buf.is_empty() || !buf.len().is_multiple_of(self.page_size) {
            return Err(DevError::BadLength { expected: self.page_size, got: buf.len() });
        }
        let n = (buf.len() / self.page_size) as u64;
        if page_no + n > self.pages {
            return Err(DevError::OutOfRange {
                lpn: page_no,
                pages: (n * self.lppp() as u64) as u32,
                capacity: self.pages,
            });
        }
        let lpn = self.extent.base + page_no * self.lppp() as u64;
        vol.read(lpn, (n * self.lppp() as u64) as u32, buf, now)
    }

    /// Write `n` consecutive file pages in one device command (used by the
    /// double-write buffer and the log, which batch sequential writes).
    pub fn write_pages<D: BlockDevice>(
        &self,
        vol: &mut Volume<D>,
        page_no: u64,
        data: &[u8],
        now: Nanos,
    ) -> DevResult<Nanos> {
        if data.is_empty() || !data.len().is_multiple_of(self.page_size) {
            return Err(DevError::BadLength { expected: self.page_size, got: data.len() });
        }
        let n = (data.len() / self.page_size) as u64;
        if page_no + n > self.pages {
            return Err(DevError::OutOfRange {
                lpn: page_no,
                pages: (n * self.lppp() as u64) as u32,
                capacity: self.pages,
            });
        }
        let lpn = self.extent.base + page_no * self.lppp() as u64;
        vol.write(lpn, data, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdev::MemDevice;

    fn setup(page_size: usize) -> (Volume<MemDevice>, PageFile) {
        let dev = MemDevice::new(1024);
        let vol = Volume::new(dev, true);
        let mut vm = VolumeManager::new(1024);
        let f = PageFile::create(&mut vm, 16, page_size);
        (vol, f)
    }

    #[test]
    fn round_trip_16k_pages() {
        let (mut vol, f) = setup(16384);
        let data = vec![0xabu8; 16384];
        f.write_page(&mut vol, 5, &data, 0).unwrap();
        let mut back = vec![0u8; 16384];
        f.read_page(&mut vol, 5, &mut back, 10).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn rejects_wrong_buffer_size() {
        let (mut vol, f) = setup(8192);
        let mut small = vec![0u8; 4096];
        assert!(matches!(f.read_page(&mut vol, 0, &mut small, 0), Err(DevError::BadLength { .. })));
    }

    #[test]
    fn rejects_out_of_file_page() {
        let (mut vol, f) = setup(4096);
        let data = vec![0u8; 4096];
        assert!(matches!(f.write_page(&mut vol, 16, &data, 0), Err(DevError::OutOfRange { .. })));
    }

    #[test]
    fn batched_sequential_write() {
        let (mut vol, f) = setup(4096);
        let data = vec![1u8; 4 * 4096];
        f.write_pages(&mut vol, 2, &data, 0).unwrap();
        let mut back = vec![0u8; 4096];
        f.read_page(&mut vol, 4, &mut back, 10).unwrap();
        assert_eq!(back, vec![1u8; 4096]);
        // One device command for four pages.
        assert_eq!(vol.device_stats().writes, 1);
        assert_eq!(vol.device_stats().pages_written, 4);
    }

    #[test]
    fn batched_write_cannot_overrun() {
        let (mut vol, f) = setup(4096);
        let data = vec![1u8; 4 * 4096];
        assert!(f.write_pages(&mut vol, 14, &data, 0).is_err());
    }

    #[test]
    #[should_panic(expected = "multiple of")]
    fn page_size_must_align() {
        let mut vm = VolumeManager::new(100);
        PageFile::create(&mut vm, 4, 6000);
    }

    #[test]
    fn files_do_not_overlap() {
        let dev = MemDevice::new(1024);
        let mut vol = Volume::new(dev, true);
        let mut vm = VolumeManager::new(1024);
        let a = PageFile::create(&mut vm, 4, 4096);
        let b = PageFile::create(&mut vm, 4, 4096);
        a.write_page(&mut vol, 3, &vec![1u8; 4096], 0).unwrap();
        b.write_page(&mut vol, 0, &vec![2u8; 4096], 0).unwrap();
        let mut back = vec![0u8; 4096];
        a.read_page(&mut vol, 3, &mut back, 0).unwrap();
        assert_eq!(back[0], 1);
    }
}

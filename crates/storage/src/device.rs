//! The block-device abstraction all simulated hardware implements.

use simkit::Nanos;

/// The logical sector size every device in this repository exposes: 4KB, the
/// flash-page granularity the paper argues databases should adopt (§2.4).
/// Larger database pages are written as runs of consecutive logical pages.
pub const LOGICAL_PAGE: usize = 4096;

/// Errors a device can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DevError {
    /// Address or address+length beyond the device capacity.
    OutOfRange { lpn: u64, pages: u32, capacity: u64 },
    /// Buffer length is not a multiple of [`LOGICAL_PAGE`] or doesn't match
    /// the requested page count.
    BadLength { expected: usize, got: usize },
    /// The device is powered off; I/O is impossible until `reboot`.
    PoweredOff,
    /// A read found a page damaged by an interrupted program operation
    /// (a *shorn write*, §2.1 / §5.2): the caller sees a mix of old and new
    /// sectors and must treat the page as corrupt.
    ShornPage { lpn: u64 },
    /// An unexpected media-level failure surfaced by the device's internal
    /// machinery (FTL garbage collection, mapped-slot reads). The string
    /// carries the underlying cause; callers treat it as an I/O error
    /// rather than a process abort.
    Media { what: String },
}

impl std::fmt::Display for DevError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DevError::OutOfRange { lpn, pages, capacity } => {
                write!(f, "I/O at lpn {lpn} (+{pages}) beyond capacity {capacity}")
            }
            DevError::BadLength { expected, got } => {
                write!(f, "buffer length {got} does not match expected {expected}")
            }
            DevError::PoweredOff => write!(f, "device is powered off"),
            DevError::ShornPage { lpn } => {
                write!(f, "shorn (partially programmed) page at lpn {lpn}")
            }
            DevError::Media { what } => write!(f, "media failure: {what}"),
        }
    }
}

impl std::error::Error for DevError {}

/// Result alias for device operations.
pub type DevResult<T> = Result<T, DevError>;

/// Why a page write happened — the provenance tag threaded from the host
/// software (WAL, double-write buffer, document-store COW path) through the
/// volume into the device, and inside the device from the write cache down
/// to the media. Every boundary counts pages per cause, so write
/// amplification can be attributed end to end instead of reported as one
/// opaque ratio.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum WriteCause {
    /// Ordinary host data: table/index pages, raw fio blocks — anything no
    /// layer claimed a more specific cause for.
    #[default]
    HostData,
    /// Write-ahead-log appends (relstore WAL blocks, docstore headers ride
    /// their own cause below).
    WalAppend,
    /// Full page images: the double-write buffer area and WAL page-image
    /// sidecars (InnoDB full-page-writes analogue).
    PageImage,
    /// Document-store copy-on-write rewrites: the appended docs, B-tree
    /// path nodes and commit headers of the couchstore-style engine.
    DocRewrite,
    /// FTL garbage collection relocating still-valid slots.
    GcRelocate,
    /// FTL mapping-journal persistence (meta-block programs).
    MapPersist,
    /// Re-programs of cache slots recovered from an emergency capacitor
    /// dump after a power cut.
    EmergencyDump,
    /// HDD write-cache destages to the platter.
    Destage,
}

impl WriteCause {
    /// Number of causes (array dimension for per-cause counters).
    pub const COUNT: usize = 8;

    /// Every cause, in `index()` order.
    pub const ALL: [WriteCause; WriteCause::COUNT] = [
        WriteCause::HostData,
        WriteCause::WalAppend,
        WriteCause::PageImage,
        WriteCause::DocRewrite,
        WriteCause::GcRelocate,
        WriteCause::MapPersist,
        WriteCause::EmergencyDump,
        WriteCause::Destage,
    ];

    /// Dense index for per-cause counter arrays.
    pub fn index(self) -> usize {
        match self {
            WriteCause::HostData => 0,
            WriteCause::WalAppend => 1,
            WriteCause::PageImage => 2,
            WriteCause::DocRewrite => 3,
            WriteCause::GcRelocate => 4,
            WriteCause::MapPersist => 5,
            WriteCause::EmergencyDump => 6,
            WriteCause::Destage => 7,
        }
    }

    /// Stable snake_case label (JSON keys, report columns).
    pub fn label(self) -> &'static str {
        match self {
            WriteCause::HostData => "host_data",
            WriteCause::WalAppend => "wal_append",
            WriteCause::PageImage => "page_image",
            WriteCause::DocRewrite => "doc_rewrite",
            WriteCause::GcRelocate => "gc_relocate",
            WriteCause::MapPersist => "map_persist",
            WriteCause::EmergencyDump => "emergency_dump",
            WriteCause::Destage => "destage",
        }
    }
}

/// Per-cause page counters (indexed by [`WriteCause::index`]).
pub type CauseCounts = [u64; WriteCause::COUNT];

/// Cumulative device statistics, used by the experiment harnesses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Host read commands served.
    pub reads: u64,
    /// Host write commands served.
    pub writes: u64,
    /// Logical pages written by the host (a 16KB write counts 4).
    pub pages_written: u64,
    /// FLUSH CACHE commands served.
    pub flushes: u64,
    /// Physical media writes, in logical-page units. The ratio
    /// `media_pages_written / pages_written` is the write amplification the
    /// paper's §1 bullet 4 talks about (redundant writes shorten SSD life).
    pub media_pages_written: u64,
    /// Garbage-collection block erases (SSD only).
    pub gc_erases: u64,
    /// Total block erases (SSD only).
    pub erases: u64,
    /// Host-issued logical pages received, split by the cause the host
    /// declared (device-received boundary; sums to `pages_written`).
    pub pages_by_cause: CauseCounts,
    /// Media pages written per cause, in logical-page units (NAND programs
    /// for SSDs, platter writes for HDDs; sums to `media_pages_written`).
    /// Device-internal traffic (GC, mapping persistence, dump recovery,
    /// destage) appears only here, never in `pages_by_cause`.
    pub media_pages_by_cause: CauseCounts,
}

/// A simulated block device.
///
/// All methods take the caller's current virtual time and return the virtual
/// time at which the operation completes (the host blocks until then; the
/// device may keep doing background work afterwards).
pub trait BlockDevice {
    /// Number of addressable logical pages.
    fn capacity_pages(&self) -> u64;

    /// Read `pages` logical pages starting at `lpn` into `buf`
    /// (`buf.len() == pages * LOGICAL_PAGE`).
    fn read(&mut self, lpn: u64, pages: u32, buf: &mut [u8], now: Nanos) -> DevResult<Nanos>;

    /// Write `data` (a whole number of logical pages) at `lpn`. Completion
    /// means the device *acknowledged* the write — for write-back caches that
    /// is when data reached device DRAM, not media.
    fn write(&mut self, lpn: u64, data: &[u8], now: Nanos) -> DevResult<Nanos>;

    /// FLUSH CACHE: returns when everything acknowledged so far is on stable
    /// media (or, for a durable cache, when the device decides it is safe —
    /// DuraSSD§3.3 completes this quickly without draining to flash).
    fn flush(&mut self, now: Nanos) -> DevResult<Nanos>;

    /// Cut power at `now`. Volatile state is lost according to the device
    /// model; in-flight programs shear.
    fn power_cut(&mut self, now: Nanos);

    /// Power the device back on; runs the device's recovery procedure.
    /// Returns the virtual time at which the device is ready.
    fn reboot(&mut self, now: Nanos) -> Nanos;

    /// Whether the device is currently powered.
    fn is_powered(&self) -> bool;

    /// TRIM/DISCARD `pages` logical pages at `lpn`: the contents become
    /// undefined (read as zero here) and the device may reclaim the space.
    /// Default: unsupported no-op (disks).
    fn discard(&mut self, lpn: u64, pages: u32, now: Nanos) -> DevResult<Nanos> {
        let _ = (lpn, pages);
        Ok(now)
    }

    /// Declare the cause of subsequent writes (provenance tag). The volume
    /// calls this before every write with the innermost cause its host
    /// pushed; devices that account per-cause WAF store it, others ignore
    /// it. Default: no-op.
    fn set_write_cause(&mut self, cause: WriteCause) {
        let _ = cause;
    }

    /// Cumulative host-visible delay (ns) caused by background garbage
    /// collection stalling foreground commands (SSDs only). The telemetry
    /// layer samples this around each command to split `gc` stall time out
    /// of raw `media` time. Default: a device with no GC reports 0.
    fn gc_time(&self) -> Nanos {
        0
    }

    /// Cumulative statistics.
    fn stats(&self) -> DeviceStats;
}

/// Validate an I/O request against a device capacity; shared by the device
/// implementations.
pub fn check_io(lpn: u64, pages: u32, buf_len: usize, capacity: u64) -> DevResult<()> {
    if pages == 0 || lpn.checked_add(pages as u64).is_none_or(|end| end > capacity) {
        return Err(DevError::OutOfRange { lpn, pages, capacity });
    }
    let expected = pages as usize * LOGICAL_PAGE;
    if buf_len != expected {
        return Err(DevError::BadLength { expected, got: buf_len });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_io_accepts_valid() {
        assert!(check_io(0, 1, LOGICAL_PAGE, 10).is_ok());
        assert!(check_io(6, 4, 4 * LOGICAL_PAGE, 10).is_ok());
    }

    #[test]
    fn check_io_rejects_out_of_range() {
        assert!(matches!(check_io(7, 4, 4 * LOGICAL_PAGE, 10), Err(DevError::OutOfRange { .. })));
        assert!(matches!(check_io(0, 0, 0, 10), Err(DevError::OutOfRange { .. })));
        // Overflow must not wrap.
        assert!(matches!(
            check_io(u64::MAX, 2, 2 * LOGICAL_PAGE, 10),
            Err(DevError::OutOfRange { .. })
        ));
    }

    #[test]
    fn check_io_rejects_bad_length() {
        assert!(matches!(
            check_io(0, 2, LOGICAL_PAGE, 10),
            Err(DevError::BadLength { expected, got })
                if expected == 2 * LOGICAL_PAGE && got == LOGICAL_PAGE
        ));
    }

    #[test]
    fn error_display() {
        let e = DevError::ShornPage { lpn: 9 };
        assert!(e.to_string().contains("shorn"));
    }
}

//! Shared helpers for the experiment binaries (one per paper table/figure)
//! and the Criterion microbenches.
//!
//! Every binary prints the paper's rows next to the measured values so the
//! shape comparison is immediate. Scales are chosen so each cell finishes in
//! seconds of wall-clock time; override with `--scale N` where supported.

use durassd::{Ssd, SsdConfig};
use hdd::{Hdd, HddConfig};

/// Blocks per plane used by the benchmark SSDs: 16 ⇒ 4GB raw, ~3.4GB
/// exported — big enough for realistic mapping-table behaviour, small enough
/// to simulate quickly.
pub const BENCH_BLOCKS_PER_PLANE: usize = 16;

/// The DuraSSD device at benchmark scale.
pub fn durassd_bench(cache_on: bool) -> Ssd {
    let mut cfg = SsdConfig::durassd(BENCH_BLOCKS_PER_PLANE);
    cfg.cache_enabled = cache_on;
    Ssd::new(cfg)
}

/// The SSD-A baseline at benchmark scale.
pub fn ssd_a_bench(cache_on: bool) -> Ssd {
    let mut cfg = SsdConfig::ssd_a(BENCH_BLOCKS_PER_PLANE);
    cfg.cache_enabled = cache_on;
    Ssd::new(cfg)
}

/// The SSD-B baseline at benchmark scale.
pub fn ssd_b_bench(cache_on: bool) -> Ssd {
    let mut cfg = SsdConfig::ssd_b(BENCH_BLOCKS_PER_PLANE);
    cfg.cache_enabled = cache_on;
    Ssd::new(cfg)
}

/// The Cheetah-class disk at benchmark scale.
pub fn hdd_bench(cache_on: bool) -> Hdd {
    let cfg = HddConfig { cache_enabled: cache_on, ..HddConfig::default() };
    Hdd::new(cfg)
}

/// Parse `--flag value` style arguments with a default.
pub fn arg_u64(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Print a rule line for report tables.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Format an IOPS/TPS value with thousands separators.
pub fn fmt_rate(v: f64) -> String {
    let n = v.round() as u64;
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_formatting() {
        assert_eq!(fmt_rate(58.4), "58");
        assert_eq!(fmt_rate(15319.0), "15,319");
        assert_eq!(fmt_rate(1234567.0), "1,234,567");
    }

    #[test]
    fn devices_construct() {
        assert!(durassd_bench(true).config().cache_enabled);
        assert!(!ssd_a_bench(false).config().cache_enabled);
        assert!(ssd_b_bench(true).config().cache_slots < ssd_a_bench(true).config().cache_slots);
        assert!(hdd_bench(true).config().cache_enabled);
    }
}

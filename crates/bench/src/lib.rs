//! Shared helpers for the experiment binaries (one per paper table/figure)
//! and the Criterion microbenches.
//!
//! Every binary prints the paper's rows next to the measured values so the
//! shape comparison is immediate. Scales are chosen so each cell finishes in
//! seconds of wall-clock time; override with `--scale N` where supported.

use durassd::{Ssd, SsdConfig};
use hdd::{Hdd, HddConfig};
use telemetry::Telemetry;

/// Blocks per plane used by the benchmark SSDs: 16 ⇒ 4GB raw, ~3.4GB
/// exported — big enough for realistic mapping-table behaviour, small enough
/// to simulate quickly.
pub const BENCH_BLOCKS_PER_PLANE: usize = 16;

/// The DuraSSD device at benchmark scale.
pub fn durassd_bench(cache_on: bool) -> Ssd {
    Ssd::new(
        SsdConfig::durassd(BENCH_BLOCKS_PER_PLANE).to_builder().cache_enabled(cache_on).build(),
    )
}

/// The SSD-A baseline at benchmark scale.
pub fn ssd_a_bench(cache_on: bool) -> Ssd {
    Ssd::new(SsdConfig::ssd_a(BENCH_BLOCKS_PER_PLANE).to_builder().cache_enabled(cache_on).build())
}

/// The SSD-B baseline at benchmark scale.
pub fn ssd_b_bench(cache_on: bool) -> Ssd {
    Ssd::new(SsdConfig::ssd_b(BENCH_BLOCKS_PER_PLANE).to_builder().cache_enabled(cache_on).build())
}

/// The Cheetah-class disk at benchmark scale.
pub fn hdd_bench(cache_on: bool) -> Hdd {
    let cfg = HddConfig { cache_enabled: cache_on, ..HddConfig::default() };
    Hdd::new(cfg)
}

/// Parse `--flag value` style arguments with a default.
pub fn arg_u64(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Print a rule line for report tables.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// One-line stall breakdown: where every blocked nanosecond went, by kind.
///
/// This is the attribution the paper argues about in prose: a durable cache
/// deployment (nobarrier) should show `flush 0.0%`, while a volatile cache
/// with barriers pays most of its time there.
pub fn stall_breakdown(tel: &Telemetry) -> String {
    let s = tel.stall_totals();
    let total = s.total();
    if total == 0 {
        return "stalls: none recorded".to_string();
    }
    let pct = |v: u64| 100.0 * v as f64 / total as f64;
    format!(
        "stalls {:>9.1}ms | media {:5.1}%  flush {:5.1}%  gc {:4.1}%  wal {:5.1}%  evict {:4.1}%",
        total as f64 / 1e6,
        pct(s.media),
        pct(s.flush_cache),
        pct(s.gc),
        pct(s.wal_fsync),
        pct(s.pool_eviction)
    )
}

/// Format nanoseconds compactly for latency tables (ns → µs → ms).
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 10_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 10_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// One-line latency summary (p50/p99/p999/max) for a named histogram.
pub fn latency_line(tel: &Telemetry, name: &str) -> Option<String> {
    let h = tel.histogram(name)?;
    if h.count() == 0 {
        return None;
    }
    Some(format!(
        "{name}: p50 {:>8}  p99 {:>8}  p999 {:>8}  max {:>8}  ({} samples)",
        fmt_ns(h.p50()),
        fmt_ns(h.p99()),
        fmt_ns(h.p999()),
        fmt_ns(h.max()),
        h.count()
    ))
}

/// Print the standard per-run telemetry epilogue: the stall breakdown plus
/// latency percentiles for every histogram in `names` that has samples.
pub fn print_telemetry(indent: &str, tel: &Telemetry, names: &[&str]) {
    println!("{indent}{}", stall_breakdown(tel));
    for name in names {
        if let Some(line) = latency_line(tel, name) {
            println!("{indent}{line}");
        }
    }
}

/// Format an IOPS/TPS value with thousands separators.
pub fn fmt_rate(v: f64) -> String {
    let n = v.round() as u64;
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_formatting() {
        assert_eq!(fmt_rate(58.4), "58");
        assert_eq!(fmt_rate(15319.0), "15,319");
        assert_eq!(fmt_rate(1234567.0), "1,234,567");
    }

    #[test]
    fn stall_breakdown_and_latency_lines() {
        let t = Telemetry::new();
        assert_eq!(stall_breakdown(&t), "stalls: none recorded");
        t.stall_exact(telemetry::Stall::Media, 3_000_000);
        t.stall_exact(telemetry::Stall::FlushCache, 1_000_000);
        let line = stall_breakdown(&t);
        assert!(line.contains("media  75.0%"), "{line}");
        assert!(line.contains("flush  25.0%"), "{line}");
        assert!(latency_line(&t, "missing").is_none());
        t.record("dev.x.write", 5_000);
        let lat = latency_line(&t, "dev.x.write").unwrap();
        assert!(lat.contains("p50") && lat.contains("p999"), "{lat}");
    }

    #[test]
    fn ns_formatting_scales() {
        assert_eq!(fmt_ns(900), "900ns");
        assert_eq!(fmt_ns(25_000), "25.0µs");
        assert_eq!(fmt_ns(12_000_000), "12.0ms");
    }

    #[test]
    fn devices_construct() {
        assert!(durassd_bench(true).config().cache_enabled);
        assert!(!ssd_a_bench(false).config().cache_enabled);
        assert!(ssd_b_bench(true).config().cache_slots < ssd_a_bench(true).config().cache_slots);
        assert!(hdd_bench(true).config().cache_enabled);
    }
}

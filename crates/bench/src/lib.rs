//! Shared helpers for the experiment binaries (one per paper table/figure)
//! and the Criterion microbenches.
//!
//! Every binary prints the paper's rows next to the measured values so the
//! shape comparison is immediate. Scales are chosen so each cell finishes in
//! seconds of wall-clock time; override with `--scale N` where supported.

use durassd::{Ssd, SsdConfig};
use forensics::DeviceHealth;
use hdd::{Hdd, HddConfig};
use telemetry::{OpBreakdown, SegKind, Telemetry};

pub mod schema;

/// Blocks per plane used by the benchmark SSDs: 16 ⇒ 4GB raw, ~3.4GB
/// exported — big enough for realistic mapping-table behaviour, small enough
/// to simulate quickly.
pub const BENCH_BLOCKS_PER_PLANE: usize = 16;

/// The DuraSSD device at benchmark scale.
pub fn durassd_bench(cache_on: bool) -> Ssd {
    Ssd::new(
        SsdConfig::durassd(BENCH_BLOCKS_PER_PLANE).to_builder().cache_enabled(cache_on).build(),
    )
}

/// The SSD-A baseline at benchmark scale.
pub fn ssd_a_bench(cache_on: bool) -> Ssd {
    Ssd::new(SsdConfig::ssd_a(BENCH_BLOCKS_PER_PLANE).to_builder().cache_enabled(cache_on).build())
}

/// The SSD-B baseline at benchmark scale.
pub fn ssd_b_bench(cache_on: bool) -> Ssd {
    Ssd::new(SsdConfig::ssd_b(BENCH_BLOCKS_PER_PLANE).to_builder().cache_enabled(cache_on).build())
}

/// The Cheetah-class disk at benchmark scale.
pub fn hdd_bench(cache_on: bool) -> Hdd {
    let cfg = HddConfig { cache_enabled: cache_on, ..HddConfig::default() };
    Hdd::new(cfg)
}

/// Parse `--flag value` style arguments with a default.
pub fn arg_u64(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parse a `--flag value` string argument (`None` when absent).
pub fn arg_str(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

/// Whether a bare `--flag` is present.
pub fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Write `content` to `path` atomically: write a `.tmp` sibling, then
/// rename over the target, so a crash or ctrl-C mid-write never leaves a
/// truncated artifact behind.
pub fn write_atomic(path: &str, content: &str) -> std::io::Result<()> {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, content)?;
    std::fs::rename(&tmp, path)
}

/// Machine-readable telemetry output for the experiment binaries.
///
/// Every bin constructs one of these at the top of `main` and calls
/// [`TelemetrySink::add`] once per measured section (device row, pool size,
/// workload phase, ...) with the section's [`Telemetry`] registry, then
/// [`TelemetrySink::finish`] at the end. When the bin was invoked with
/// `--telemetry-out <path>`, finish writes one JSON document — an object
/// keyed by section label, each value the full registry export
/// ([`Telemetry::to_json`]: counters, gauges, stalls, histograms, and the
/// sampled time-series when sampling was enabled) — atomically (tmp +
/// rename) and prints the path. Without the flag everything is a no-op, so
/// the human-readable tables stay the default interface.
#[derive(Default)]
pub struct TelemetrySink {
    path: Option<String>,
    sections: Vec<(String, String)>,
}

impl TelemetrySink {
    /// Build from the process arguments (`--telemetry-out <path>`).
    pub fn from_args() -> Self {
        Self { path: arg_str("--telemetry-out"), sections: Vec::new() }
    }

    /// A sink that always writes to `path` (tests).
    pub fn to_path(path: &str) -> Self {
        Self { path: Some(path.to_string()), sections: Vec::new() }
    }

    /// Whether an output path was requested.
    pub fn enabled(&self) -> bool {
        self.path.is_some()
    }

    /// Snapshot a section's registry under `label`. Duplicate labels get a
    /// numeric suffix so no section silently overwrites another.
    pub fn add(&mut self, label: &str, tel: &Telemetry) {
        if self.path.is_none() {
            return;
        }
        let mut name = label.to_string();
        let mut n = 1usize;
        while self.sections.iter().any(|(l, _)| *l == name) {
            n += 1;
            name = format!("{label}#{n}");
        }
        self.sections.push((name, tel.to_json()));
    }

    /// Write the collected sections (if an output path was given) and print
    /// where they went. Returns the path written, if any.
    pub fn finish(&self) -> Option<String> {
        let path = self.path.as_deref()?;
        let mut out = String::from("{");
        for (i, (label, json)) in self.sections.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            for c in label.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push_str("\":");
            out.push_str(json);
        }
        out.push('}');
        write_atomic(path, &out).expect("telemetry output path is writable");
        println!("telemetry: wrote {} section(s) to {path}", self.sections.len());
        Some(path.to_string())
    }
}

/// Schema tag the `recovery` bin writes and [`validate_recovery_report`]
/// gates on. Re-exported from [`schema`], where all report validators live.
pub const RECOVERY_SCHEMA: &str = schema::RECOVERY_SCHEMA;

/// Validate a serialized `BENCH_recovery.json` document. Returns the list
/// of violations (empty = valid). Thin alias for
/// [`schema::check_recovery_report`], kept under the name the `recovery`
/// bin grew up with.
pub fn validate_recovery_report(doc: &str) -> Vec<String> {
    schema::check_recovery_report(doc)
}

/// Print a rule line for report tables.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// One-line stall breakdown: where every blocked nanosecond went, by kind.
///
/// This is the attribution the paper argues about in prose: a durable cache
/// deployment (nobarrier) should show `flush 0.0%`, while a volatile cache
/// with barriers pays most of its time there.
pub fn stall_breakdown(tel: &Telemetry) -> String {
    let s = tel.stall_totals();
    let total = s.total();
    if total == 0 {
        return "stalls: none recorded".to_string();
    }
    let pct = |v: u64| 100.0 * v as f64 / total as f64;
    format!(
        "stalls {:>9.1}ms | media {:5.1}%  flush {:5.1}%  gc {:4.1}%  wal {:5.1}%  evict {:4.1}%",
        total as f64 / 1e6,
        pct(s.media),
        pct(s.flush_cache),
        pct(s.gc),
        pct(s.wal_fsync),
        pct(s.pool_eviction)
    )
}

/// One-line durability-health summary for a device that tracks it
/// ([`forensics::Forensic::health`]): shorn reads, emergency dumps (and how
/// many blew the capacitor budget), the largest dump, recovery runs, and
/// acked slots destroyed. Printed next to the stall breakdown so a run's
/// performance story and its durability story sit on adjacent lines.
pub fn ssd_health_line(h: &DeviceHealth) -> String {
    // WAF is media pages per host page; absorption is the share of host
    // pages the write cache coalesced away before they could reach flash.
    let waf = if h.host_pages_written > 0 {
        h.media_pages_written as f64 / h.host_pages_written as f64
    } else {
        0.0
    };
    let absorption = if h.host_pages_written > 0 {
        100.0 * h.absorbed_overwrites as f64 / h.host_pages_written as f64
    } else {
        0.0
    };
    format!(
        "ssd health | shorn_reads {}  dumps {} (over-budget {})  max_dump {}B  recoveries {}  \
         lost_acked {}  waf {waf:.2}  absorbed {absorption:.1}%  wear_spread {}",
        h.shorn_reads,
        h.dumps,
        h.dump_over_budget,
        h.max_dump_bytes,
        h.recoveries,
        h.lost_acked_slots,
        h.wear_spread
    )
}

/// Format nanoseconds compactly for latency tables (ns → µs → ms).
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 10_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 10_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// One-line latency summary (p50/p99/p999/max) for a named histogram.
pub fn latency_line(tel: &Telemetry, name: &str) -> Option<String> {
    let h = tel.histogram(name)?;
    if h.count() == 0 {
        return None;
    }
    Some(format!(
        "{name}: p50 {:>8}  p99 {:>8}  p999 {:>8}  max {:>8}  ({} samples)",
        fmt_ns(h.p50()),
        fmt_ns(h.p99()),
        fmt_ns(h.p999()),
        fmt_ns(h.max()),
        h.count()
    ))
}

/// Print the standard per-run telemetry epilogue: the stall breakdown plus
/// latency percentiles for every histogram in `names` that has samples.
pub fn print_telemetry(indent: &str, tel: &Telemetry, names: &[&str]) {
    println!("{indent}{}", stall_breakdown(tel));
    for name in names {
        if let Some(line) = latency_line(tel, name) {
            println!("{indent}{line}");
        }
    }
}

/// Per-segment-kind run histograms as a JSON object, empty kinds skipped:
/// `{"<label>":{"count":..,"total_ns":..,"p50":..,"p99":..,"max":..},...}`.
/// The table is the run-wide view of the latency anatomy — the per-op view
/// is [`breakdown_tail_json`].
pub fn seg_table_json(tel: &Telemetry) -> String {
    let mut out = String::from("{");
    let mut first = true;
    for k in SegKind::ALL {
        let Some(h) = tel.histogram(k.hist_name()) else { continue };
        if h.count() == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\"{}\":{{\"count\":{},\"total_ns\":{},\"p50\":{},\"p99\":{},\"max\":{}}}",
            k.label(),
            h.count(),
            h.sum(),
            h.p50(),
            h.p99(),
            h.max()
        ));
    }
    out.push('}');
    out
}

/// One captured op breakdown rendered as a `tail` object for
/// `durassd.latency.v1` rows: wall latency, its flush-cache share (the
/// durability gate both `latency --check` and `tail --check` run on), the
/// trace-ID for cross-referencing the Chrome trace, and the non-zero
/// segments.
pub fn breakdown_tail_json(bd: &OpBreakdown) -> String {
    let flush = bd.seg(SegKind::FlushCache);
    let frac = flush as f64 / bd.wall.max(1) as f64;
    let mut segs = String::from("{");
    let mut first = true;
    for k in SegKind::ALL {
        let ns = bd.seg(k);
        if ns == 0 {
            continue;
        }
        if !first {
            segs.push(',');
        }
        first = false;
        segs.push_str(&format!("\"{}\":{ns}", k.label()));
    }
    segs.push('}');
    format!(
        "{{\"wall\":{},\"flush_cache_ns\":{flush},\"flush_frac\":{frac:.4},\
         \"trace\":{},\"segments\":{segs}}}",
        bd.wall, bd.trace
    )
}

/// One `durassd.latency.v1` row for op `commit_op` out of `tel`: percentile
/// ladder, conservation-violation count, run segment table, and the slowest
/// captured breakdown. `None` when the op never ran (no histogram or no
/// captured outlier).
pub fn latency_row_json(
    workload: &str,
    mode: &str,
    device: &str,
    commit_op: &str,
    tel: &Telemetry,
) -> Option<String> {
    let h = tel.histogram(commit_op)?;
    if h.count() == 0 {
        return None;
    }
    let tail = tel.outliers_for(commit_op);
    let tail = tail.first()?;
    Some(format!(
        "{{\"workload\":\"{workload}\",\"mode\":\"{mode}\",\"device\":\"{device}\",\
         \"commit_op\":\"{commit_op}\",\"count\":{},\"min\":{},\"p50\":{},\"p99\":{},\
         \"p999\":{},\"max\":{},\"violations\":{},\"segments\":{},\"tail\":{}}}",
        h.count(),
        h.min(),
        h.p50(),
        h.p99(),
        h.p999(),
        h.max(),
        tel.anatomy_violations(),
        seg_table_json(tel),
        breakdown_tail_json(tail),
    ))
}

/// Format an IOPS/TPS value with thousands separators.
pub fn fmt_rate(v: f64) -> String {
    let n = v.round() as u64;
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_formatting() {
        assert_eq!(fmt_rate(58.4), "58");
        assert_eq!(fmt_rate(15319.0), "15,319");
        assert_eq!(fmt_rate(1234567.0), "1,234,567");
    }

    #[test]
    fn stall_breakdown_and_latency_lines() {
        let t = Telemetry::new();
        assert_eq!(stall_breakdown(&t), "stalls: none recorded");
        t.stall_exact(telemetry::Stall::Media, 3_000_000);
        t.stall_exact(telemetry::Stall::FlushCache, 1_000_000);
        let line = stall_breakdown(&t);
        assert!(line.contains("media  75.0%"), "{line}");
        assert!(line.contains("flush  25.0%"), "{line}");
        assert!(latency_line(&t, "missing").is_none());
        t.record("dev.x.write", 5_000);
        let lat = latency_line(&t, "dev.x.write").unwrap();
        assert!(lat.contains("p50") && lat.contains("p999"), "{lat}");
    }

    #[test]
    fn ns_formatting_scales() {
        assert_eq!(fmt_ns(900), "900ns");
        assert_eq!(fmt_ns(25_000), "25.0µs");
        assert_eq!(fmt_ns(12_000_000), "12.0ms");
    }

    #[test]
    fn telemetry_sink_writes_labeled_sections_atomically() {
        let dir = std::env::temp_dir().join("durassd_sink_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        let path = path.to_str().unwrap().to_string();
        let mut sink = TelemetrySink::to_path(&path);
        assert!(sink.enabled());
        let t = Telemetry::new();
        t.incr("ops", 3);
        sink.add("row A", &t);
        sink.add("row A", &t); // duplicate label gets a suffix, not clobbered
        assert_eq!(sink.finish().as_deref(), Some(path.as_str()));
        let doc = std::fs::read_to_string(&path).unwrap();
        let v = telemetry::parse_json(&doc).unwrap();
        let obj = v.as_object().unwrap();
        assert!(obj.contains_key("row A") && obj.contains_key("row A#2"), "{doc}");
        assert!(!std::path::Path::new(&format!("{path}.tmp")).exists(), "tmp file renamed away");
        // Each section round-trips through the registry parser.
        std::fs::remove_file(&path).ok();
        // A sink without a path is inert.
        let mut off = TelemetrySink::default();
        off.add("x", &t);
        assert!(!off.enabled() && off.finish().is_none());
    }

    fn recovery_row(
        engine: &str,
        device: &str,
        interval: u64,
        replayed: u64,
        skipped: u64,
    ) -> String {
        format!(
            "{{\"engine\":\"{engine}\",\"device\":\"{device}\",\"ckpt_interval\":{interval},\
             \"replayed\":{replayed},\"skipped\":{skipped},\"torn\":0,\
             \"outstanding_bytes\":4096,\"recovery_wall_ns\":100,\
             \"recovery_sim_ns\":5000,\"ttfr_sim_ns\":6000}}"
        )
    }

    #[test]
    fn recovery_report_validation() {
        let good = format!(
            "{{\"schema\":\"{RECOVERY_SCHEMA}\",\"rows\":[{},{},{},{}]}}",
            recovery_row("relstore", "durassd", 256, 3, 9),
            recovery_row("relstore", "ssd_volatile", 2048, 3, 9),
            recovery_row("relstore", "hdd", 256, 3, 9),
            recovery_row("docstore", "durassd", 256, 0, 4),
        );
        assert!(
            validate_recovery_report(&good).is_empty(),
            "{:?}",
            validate_recovery_report(&good)
        );

        // DuraSSD relstore row with nothing replayed: flagged.
        let bad = format!(
            "{{\"schema\":\"{RECOVERY_SCHEMA}\",\"rows\":[{},{},{}]}}",
            recovery_row("relstore", "durassd", 256, 0, 0),
            recovery_row("relstore", "ssd_volatile", 2048, 3, 9),
            recovery_row("relstore", "hdd", 256, 3, 9),
        );
        let fails = validate_recovery_report(&bad);
        assert!(fails.iter().any(|f| f.contains("replayed")), "{fails:?}");
        assert!(fails.iter().any(|f| f.contains("skipped")), "{fails:?}");

        // Too few devices / intervals.
        let narrow = format!(
            "{{\"schema\":\"{RECOVERY_SCHEMA}\",\"rows\":[{}]}}",
            recovery_row("relstore", "durassd", 256, 3, 9),
        );
        let fails = validate_recovery_report(&narrow);
        assert!(fails.iter().any(|f| f.contains("distinct devices")), "{fails:?}");
        assert!(fails.iter().any(|f| f.contains("distinct checkpoint intervals")), "{fails:?}");

        // Wrong schema tag and garbage both flagged.
        assert!(!validate_recovery_report("{\"schema\":\"nope\",\"rows\":[]}").is_empty());
        assert!(!validate_recovery_report("not json").is_empty());
    }

    #[test]
    fn devices_construct() {
        assert!(durassd_bench(true).config().cache_enabled);
        assert!(!ssd_a_bench(false).config().cache_enabled);
        assert!(ssd_b_bench(true).config().cache_slots < ssd_a_bench(true).config().cache_slots);
        assert!(hdd_bench(true).config().cache_enabled);
    }
}

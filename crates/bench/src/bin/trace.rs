//! **trace** — record an end-to-end event trace of a YCSB burst (document
//! store, Couchbase-style) followed by a TPC-C burst (relational engine),
//! both on DuraSSD devices with barriers ON, and export machine-readable
//! artifacts:
//!
//! * `<out>.trace.json` — Chrome trace-event JSON. Open in Perfetto
//!   (<https://ui.perfetto.dev>) or `chrome://tracing`: each host operation
//!   (a `doc.set`, an `engine.commit`, ...) is one track (`tid`), and every
//!   span the operation caused below it — WAL flush, pool eviction, device
//!   write, FLUSH CACHE, SSD cache drain, FTL GC, NAND program — nests on
//!   the same track under the same trace-ID.
//! * `<out>.series.csv` — gauge time-series (cache occupancy, unpersisted
//!   mapping entries, capacitor reserve, WAL buffer, dirty pages) sampled
//!   on a virtual-time cadence.
//! * `--telemetry-out <path>` — the full registry as JSON, like every
//!   other bench bin.
//!
//! Flags: `--out BASE` (default `trace_out`), `--records N` / `--ops N`
//! (YCSB), `--warehouses N` / `--txns N` (TPC-C), `--events N` (trace ring
//! capacity), `--cadence-us N` (sampling cadence), `--check` (self-validate
//! the artifacts and exit non-zero on any violation).
//!
//! Run: `cargo run -p bench --release --bin trace -- --check`

use bench::{arg_flag, arg_str, arg_u64, durassd_bench, write_atomic, TelemetrySink};
use docstore::{DocStore, DocStoreConfig};
use relstore::{Engine, EngineConfig};
use telemetry::{parse_json, validate_chrome_json, JsonValue, Telemetry};
use workloads::tpcc;
use workloads::ycsb;

/// One virtual timeline for both bursts: the document store runs first, the
/// engine is created at the YCSB end time, so the exported trace shows the
/// two phases back-to-back instead of overlapping.
fn main() {
    let out = arg_str("--out").unwrap_or_else(|| "trace_out".to_string());
    let records = arg_u64("--records", 3_000);
    let ops = arg_u64("--ops", 1_500);
    let warehouses = arg_u64("--warehouses", 1) as u32;
    let txns = arg_u64("--txns", 400);
    let events = arg_u64("--events", 1 << 20) as usize;
    let cadence = arg_u64("--cadence-us", 5_000) * 1_000; // µs -> ns
    let check = arg_flag("--check");
    let mut sink = TelemetrySink::from_args();

    let tel = Telemetry::new();
    tel.enable_tracing(events);
    tel.enable_sampling(cadence);

    println!(
        "trace: YCSB-A {records} docs/{ops} ops + TPC-C {warehouses} wh/{txns} txns, \
         barriers ON, ring {events} events, cadence {}us",
        cadence / 1_000
    );

    // Phase 1: YCSB-A on the document store (fsync batch 10, barriers on).
    let mut doc_dev = durassd_bench(true);
    doc_dev.attach_telemetry(tel.clone());
    let cfg = DocStoreConfig {
        batch_size: 10,
        barriers: true,
        file_blocks: 200_000,
        auto_compact_pct: 0,
        checkpoint_every_n_commits: 8,
    };
    let mut store = DocStore::create(doc_dev, cfg);
    store.attach_telemetry(tel.clone());
    let spec = ycsb::YcsbSpec::workload_a(records, ops);
    let t0 = ycsb::load(&mut store, &spec, 0);
    let rep = ycsb::run(&mut store, &spec, t0);
    let t1 = rep.finished_at;
    println!("  ycsb : {:>8.0} ops/s   (virtual [0, {:.1}ms])", rep.throughput(), t1 as f64 / 1e6);

    // Phase 2: TPC-C on the relational engine, strict commits so every
    // commit's full chain (engine.commit -> wal.flush -> dev write ->
    // flush_cache -> cache drain -> NAND program) runs inline under one
    // trace-ID.
    let mut data = durassd_bench(true);
    data.attach_telemetry(tel.clone());
    let mut log = durassd_bench(true);
    log.attach_telemetry(tel.clone());
    let spec = tpcc::TpccSpec { clients: 8, ..tpcc::TpccSpec::scaled(warehouses, txns) };
    let est = warehouses as u64
        * (spec.items as u64 * 300 + spec.districts as u64 * spec.customers as u64 * 470 + 40_960);
    let ecfg = EngineConfig::builder(4096)
        .buffer_pool_bytes((est / 10).max(512 * 1024))
        .barriers(true)
        .data_pages((est * 4 / 4096).max(16_384))
        .log_file_blocks(8_192)
        .build();
    let (mut engine, t2) = Engine::create(data, log, ecfg, t1).into_parts();
    engine.attach_telemetry(tel.clone());
    let (mut db, t3) = tpcc::load(&mut engine, &spec, t2);
    let rep = tpcc::run(&mut engine, &mut db, &spec, t3);
    let t_end = rep.finished_at;
    println!(
        "  tpcc : {:>8.0} tpmC    (virtual [{:.1}ms, {:.1}ms])",
        rep.tpmc,
        t1 as f64 / 1e6,
        t_end as f64 / 1e6
    );
    tel.finish_sampling(t_end);

    // Export.
    let trace_json = tel.trace_chrome_json().expect("tracing enabled");
    let series_csv = tel.series_csv().expect("sampling enabled");
    let trace_path = format!("{out}.trace.json");
    let series_path = format!("{out}.series.csv");
    write_atomic(&trace_path, &trace_json).expect("trace output writable");
    write_atomic(&series_path, &series_csv).expect("series output writable");
    let (recorded, dropped) = tel.trace_counts().expect("tracing enabled");
    println!("  trace : {trace_path}  ({recorded} events recorded, {dropped} dropped)");
    let gauges = series_csv.lines().next().map_or(0, |h| h.split(',').count().saturating_sub(1));
    let samples = series_csv.lines().count().saturating_sub(1);
    println!("  series: {series_path}  ({gauges} gauges x {samples} samples)");
    sink.add("trace", &tel);
    sink.finish();

    if check {
        let failures = self_check(&trace_json, &series_csv, &tel);
        if failures.is_empty() {
            println!(
                "  check : OK (schema, span matching, monotonicity, commit chain, \
                 series, registry round-trip)"
            );
        } else {
            for f in &failures {
                eprintln!("  check FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
}

/// Validate the exported artifacts; returns human-readable violations.
fn self_check(trace_json: &str, series_csv: &str, tel: &Telemetry) -> Vec<String> {
    let mut failures = Vec::new();

    // 1. Chrome trace schema + per-track B/E matching + monotone timestamps.
    if let Err(e) = validate_chrome_json(trace_json) {
        failures.push(format!("trace validation: {e}"));
    }
    // 2. A single TPC-C commit's whole chain shares one trace-ID: some
    // track must contain both the engine.commit host span and the
    // device-level flush_cache span it caused.
    match parse_json(trace_json) {
        Err(e) => failures.push(format!("trace JSON does not parse: {e}")),
        Ok(doc) => {
            if let Err(e) = commit_chain_shares_track(&doc) {
                failures.push(e);
            }
        }
    }

    // 3. The series CSV carries at least 3 gauges and at least one sample.
    let mut lines = series_csv.lines();
    let header = lines.next().unwrap_or("");
    let gauges = header.split(',').count().saturating_sub(1);
    if !header.starts_with("t_ns") {
        failures.push(format!("series CSV header malformed: {header:?}"));
    }
    if gauges < 3 {
        failures.push(format!("series CSV has {gauges} gauges, want >= 3: {header:?}"));
    }
    if lines.next().is_none() {
        failures.push("series CSV has no samples".to_string());
    }

    // 4. The registry JSON (counters, stalls, histograms, series) round-trips.
    let reg_json = tel.to_json();
    match telemetry::Registry::from_json(&reg_json) {
        Err(e) => failures.push(format!("registry JSON does not re-parse: {e}")),
        Ok(reg) => {
            if reg.to_json() != reg_json {
                failures.push("registry JSON round-trip is not lossless".to_string());
            }
        }
    }
    failures
}

/// Scan `traceEvents` for a track (`tid`) containing both an
/// `engine.commit` span and a `flush_cache` span.
fn commit_chain_shares_track(doc: &JsonValue) -> Result<(), String> {
    let events = doc
        .as_object()
        .and_then(|o| o.get("traceEvents"))
        .and_then(|v| v.as_array())
        .ok_or("traceEvents missing")?;
    let mut commits = std::collections::BTreeSet::new();
    let mut flushes = std::collections::BTreeSet::new();
    for ev in events {
        let Some(obj) = ev.as_object() else { continue };
        let name = obj.get("name").and_then(|v| v.as_str()).unwrap_or("");
        let tid = obj.get("tid").and_then(|v| v.as_f64()).unwrap_or(-1.0) as i64;
        match name {
            "engine.commit" => {
                commits.insert(tid);
            }
            "flush_cache" => {
                flushes.insert(tid);
            }
            _ => {}
        }
    }
    if commits.intersection(&flushes).next().is_some() {
        Ok(())
    } else {
        Err(format!(
            "no track carries both engine.commit and flush_cache \
             ({} commit tracks, {} flush tracks): trace-ID propagation broken",
            commits.len(),
            flushes.len()
        ))
    }
}

//! **Table 5** — Couchbase throughput (ops/s) under YCSB workload-A.
//!
//! Sweeps the fsync batch size {1, 2, 5, 10, 100} with write barriers on
//! and off, for 100%-update and 50%-update mixes — the paper's
//! demonstration that DuraSSD lets Couchbase commit every update without
//! paying for flush-cache.
//!
//! Run: `cargo run -p bench --release --bin table5 [--records N] [--ops N]`

use bench::{arg_u64, durassd_bench, fmt_rate, print_telemetry, rule, TelemetrySink};
use docstore::{DocStore, DocStoreConfig};
use telemetry::Telemetry;
use workloads::ycsb::{load, run, YcsbSpec};

const BATCHES: [u32; 5] = [1, 2, 5, 10, 100];
const PAPER: &[(&str, bool, f64, [u64; 5])] = &[
    ("barrier ON,  update 100%", true, 1.0, [206, 398, 988, 1_954, 4_692]),
    ("barrier ON,  update  50%", true, 0.5, [195, 390, 1_400, 2_041, 4_921]),
    ("barrier OFF, update 100%", false, 1.0, [2_404, 3_464, 3_826, 4_959, 5_101]),
    ("barrier OFF, update  50%", false, 0.5, [2_406, 3_464, 4_209, 5_461, 6_208]),
];

fn run_cell(
    barriers: bool,
    update: f64,
    batch: u32,
    records: u64,
    ops: u64,
    tel: &Telemetry,
) -> f64 {
    let cfg = DocStoreConfig {
        batch_size: batch,
        barriers,
        file_blocks: 400_000,
        auto_compact_pct: 0,
        checkpoint_every_n_commits: 8,
    };
    let mut store = DocStore::create(durassd_bench(true), cfg);
    let mut spec = YcsbSpec::workload_a(records, ops);
    spec.update_fraction = update;
    let t = load(&mut store, &spec, 0);
    store.attach_telemetry(tel.clone()); // after load: measure the run only
    run(&mut store, &spec, t).throughput()
}

fn main() {
    let mut sink = TelemetrySink::from_args();
    let records = arg_u64("--records", 20_000);
    let ops = arg_u64("--ops", 20_000);
    println!("Table 5: Couchbase/YCSB-A throughput (OPS), {records} docs, {ops} ops\n");
    print!("{:<28}", "");
    for b in BATCHES {
        print!("{:>9}", format!("batch {b}"));
    }
    println!();
    rule(28 + 9 * BATCHES.len());
    for (label, barriers, update, paper) in PAPER {
        let tel = Telemetry::new();
        let mut row = Vec::new();
        for &b in &BATCHES {
            let cell_ops = if *barriers && b <= 2 { ops / 4 } else { ops };
            row.push(run_cell(*barriers, *update, b, records, cell_ops, &tel));
        }
        print!("{:<28}", label);
        for v in &row {
            print!("{:>9}", fmt_rate(*v));
        }
        println!();
        print!("{:<28}", "");
        for v in paper {
            print!("{:>9}", fmt_rate(*v as f64));
        }
        println!("   <- paper");
        print_telemetry("      ", &tel, &["doc.commit", "doc.set", "doc.get"]);
        sink.add(label, &tel);
    }
    sink.finish();
}

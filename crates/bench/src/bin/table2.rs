//! **Table 2** — Effect of page size on IOPS.
//!
//! (a) DuraSSD: read-only with 128 threads; write-only fsync-every-write;
//!     write-only fsync-every-256; write-only 128 threads with `nobarrier` —
//!     each at page sizes 16/8/4KB.
//! (b) Disk: read-only and write-only with 128 threads.
//!
//! Run: `cargo run -p bench --release --bin table2 [--ops N]`

use bench::{arg_u64, durassd_bench, fmt_rate, hdd_bench, print_telemetry, rule, TelemetrySink};
use storage::device::BlockDevice;
use storage::volume::Volume;
use telemetry::Telemetry;
use workloads::fio::{run, FioOp, FioSpec};

const SIZES: [usize; 3] = [16384, 8192, 4096];

struct Row {
    label: &'static str,
    paper: [u64; 3],
    op: FioOp,
    jobs: usize,
    fsync_every: Option<u32>,
    barriers: bool,
}

fn measure<D: BlockDevice>(dev: D, row: &Row, block_size: usize, ops: u64, tel: &Telemetry) -> f64 {
    let mut vol = Volume::new(dev, row.barriers);
    let pages_per_block = (block_size / 4096) as u64;
    let span = vol.capacity_pages() * 3 / 4 / pages_per_block;
    let spec = FioSpec {
        op: row.op,
        block_size,
        span_blocks: span,
        fsync_every: row.fsync_every,
        jobs: row.jobs,
        total_ops: ops,
        seed: 0x22,
    };
    // Reads need data on the media first: preload the span sparsely is not
    // needed — unmapped reads are served as zeroes with full media timing on
    // the disk; for the SSD, preload a slice so reads hit NAND.
    if row.op == FioOp::Read {
        let wspec = FioSpec {
            op: FioOp::Write,
            fsync_every: None,
            jobs: 1,
            total_ops: (ops / 4).min(20_000),
            ..spec
        };
        let t = run(&mut vol, &wspec, 0).finished_at;
        let _ = vol.fsync(t);
    }
    // Attach after the preload so the row's telemetry reflects only the
    // measured phase.
    vol.attach_telemetry(tel.clone(), "t2");
    run(&mut vol, &spec, 1_000_000_000_000).throughput()
}

fn main() {
    let mut sink = TelemetrySink::from_args();
    let base_ops = arg_u64("--ops", 30_000);
    println!("Table 2: effect of page size on IOPS (paper / measured)\n");
    println!("(a) DuraSSD");
    let dura_rows = [
        Row {
            label: "Read-only (128 threads)",
            paper: [29_870, 57_847, 89_083],
            op: FioOp::Read,
            jobs: 128,
            fsync_every: None,
            barriers: true,
        },
        Row {
            label: "Write-only (1-fsync)",
            paper: [196, 206, 225],
            op: FioOp::Write,
            jobs: 1,
            fsync_every: Some(1),
            barriers: true,
        },
        Row {
            label: "Write-only (256-fsync)",
            paper: [4_563, 7_978, 12_647],
            op: FioOp::Write,
            jobs: 1,
            fsync_every: Some(256),
            barriers: true,
        },
        Row {
            label: "Write-only (128 no-barrier)",
            paper: [13_446, 25_546, 49_009],
            op: FioOp::Write,
            jobs: 128,
            fsync_every: Some(1),
            barriers: false,
        },
    ];
    println!("{:<30} {:>10} {:>10} {:>10}", "", "16KB", "8KB", "4KB");
    rule(64);
    for row in &dura_rows {
        let tel = Telemetry::new();
        let mut meas = Vec::new();
        for &sz in &SIZES {
            let ops =
                if row.fsync_every == Some(1) && row.barriers { base_ops / 6 } else { base_ops };
            meas.push(measure(durassd_bench(true), row, sz, ops, &tel));
        }
        println!(
            "{:<30} {:>10} {:>10} {:>10}",
            row.label,
            fmt_rate(meas[0]),
            fmt_rate(meas[1]),
            fmt_rate(meas[2])
        );
        println!(
            "{:<30} {:>10} {:>10} {:>10}   <- paper",
            "",
            fmt_rate(row.paper[0] as f64),
            fmt_rate(row.paper[1] as f64),
            fmt_rate(row.paper[2] as f64)
        );
        print_telemetry("      ", &tel, &["dev.t2.read", "dev.t2.write", "dev.t2.flush"]);
        sink.add(&format!("DuraSSD {}", row.label), &tel);
    }
    println!("\n(b) Harddisk (15krpm)");
    let hdd_rows = [
        Row {
            label: "Read-only (128 threads)",
            paper: [516, 528, 538],
            op: FioOp::Read,
            jobs: 128,
            fsync_every: None,
            barriers: true,
        },
        Row {
            label: "Write-only (128 threads)",
            paper: [428, 439, 444],
            op: FioOp::Write,
            jobs: 128,
            fsync_every: None,
            barriers: true,
        },
    ];
    println!("{:<30} {:>10} {:>10} {:>10}", "", "16KB", "8KB", "4KB");
    rule(64);
    for row in &hdd_rows {
        let tel = Telemetry::new();
        let mut meas = Vec::new();
        for &sz in &SIZES {
            // Reads are mechanical (few ops suffice); writes must fill the
            // 16MB cache to reach the sustained destage rate.
            let ops = if row.op == FioOp::Read { base_ops / 6 } else { base_ops * 2 };
            meas.push(measure(hdd_bench(true), row, sz, ops, &tel));
        }
        println!(
            "{:<30} {:>10} {:>10} {:>10}",
            row.label,
            fmt_rate(meas[0]),
            fmt_rate(meas[1]),
            fmt_rate(meas[2])
        );
        println!(
            "{:<30} {:>10} {:>10} {:>10}   <- paper",
            "",
            fmt_rate(row.paper[0] as f64),
            fmt_rate(row.paper[1] as f64),
            fmt_rate(row.paper[2] as f64)
        );
        print_telemetry("      ", &tel, &["dev.t2.read", "dev.t2.write", "dev.t2.flush"]);
        sink.add(&format!("HDD {}", row.label), &tel);
    }
    sink.finish();
}

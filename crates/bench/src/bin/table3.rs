//! **Table 3** — Distribution of LinkBench transaction latency (ms).
//!
//! Compares the MySQL default configuration (write-barrier ON, double-write
//! ON, 16KB pages) against the best DuraSSD configuration (OFF/OFF, 4KB),
//! reporting mean / P25 / P50 / P75 / P99 / max per operation type — the
//! paper's two-orders-of-magnitude P99 improvement is the headline.
//!
//! Run: `cargo run -p bench --release --bin table3 [--nodes N] [--ops N]`

use bench::{arg_u64, durassd_bench, print_telemetry, rule, TelemetrySink};
use relstore::{Engine, EngineConfig};
use telemetry::Telemetry;
use workloads::linkbench::{load, run, LinkBenchReport, LinkBenchSpec};

fn run_config(
    barriers: bool,
    dwb: bool,
    page_size: usize,
    nodes: u64,
    ops: u64,
) -> (LinkBenchReport, Telemetry) {
    let est_db_bytes = nodes * 900;
    let cfg = EngineConfig::builder(page_size)
        .buffer_pool_bytes(est_db_bytes / 10)
        .double_write(dwb)
        .barriers(barriers)
        .data_pages((est_db_bytes * 4 / page_size as u64).max(8192))
        .log_file_blocks(8192)
        .build();
    let (mut engine, t0) =
        Engine::create(durassd_bench(true), durassd_bench(true), cfg, 0).into_parts();
    engine.set_group_commit(true);
    let spec = LinkBenchSpec { warmup_ops: ops / 5, ops, ..LinkBenchSpec::scaled(nodes, ops) };
    let (mut graph, t1) = load(&mut engine, &spec, t0);
    let tel = Telemetry::new();
    engine.attach_telemetry(tel.clone()); // after load: measure the run only
    let rep = run(&mut engine, &mut graph, &spec, t1);
    (rep, tel)
}

fn print_report(title: &str, rep: &LinkBenchReport, tel: &Telemetry) {
    println!("\n{title}  (TPS {:.0})", rep.tps);
    println!("{:<16} {:>6} | latency (ms)", "Transaction", "count");
    rule(110);
    for (op, s) in &rep.per_type {
        println!("{:<16} {:>6} | {}", op.label(), s.count, s.fmt_ms());
    }
    print_telemetry("  ", tel, &["engine.commit", "engine.get", "engine.put"]);
}

fn main() {
    let mut sink = TelemetrySink::from_args();
    let nodes = arg_u64("--nodes", 60_000);
    let ops = arg_u64("--ops", 30_000);
    println!("Table 3: LinkBench latency distributions ({nodes} nodes, {ops} ops)");
    println!("Paper headline: OFF/OFF+4KB cuts the mean 5-45x and P99 ~100x vs ON/ON+16KB.");
    let (worst, worst_tel) = run_config(true, true, 16384, nodes, ops);
    print_report("ON/ON with 16KB pages (MySQL default)", &worst, &worst_tel);
    sink.add("ON/ON 16KB", &worst_tel);
    let (best, best_tel) = run_config(false, false, 4096, nodes, ops);
    print_report("OFF/OFF with 4KB pages (DuraSSD deployment)", &best, &best_tel);
    sink.add("OFF/OFF 4KB", &best_tel);
    sink.finish();
    // Summary ratios like the paper's narrative.
    println!("\nImprovement factors (ON/ON-16KB -> OFF/OFF-4KB):");
    for ((op, a), (_, b)) in worst.per_type.iter().zip(best.per_type.iter()) {
        if a.count == 0 || b.count == 0 || b.mean == 0.0 || b.p99 == 0 {
            continue;
        }
        println!(
            "  {:<16} mean {:>6.1}x   p99 {:>6.1}x",
            op.label(),
            a.mean / b.mean,
            a.p99 as f64 / b.p99 as f64
        );
    }
}

//! **Tail latency** — the paper's §1/§2 motivation: read latency varies
//! wildly when reads queue behind writes and cache flushes; DuraSSD
//! "alleviates the problem of high tail latency by minimizing write stalls".
//!
//! A mixed workload (readers + writers with fsync) runs directly on the
//! devices; read latency percentiles are reported for:
//!   * a volatile-cache SSD with barriers (fsync ⇒ FLUSH CACHE stalls), and
//!   * DuraSSD with `nobarrier` (fsync never reaches the device).
//!
//! Each run records the full latency anatomy: per-segment-kind histograms
//! plus the slowest captured read and write with their breakdowns. `--json
//! PATH` writes the reads/writes × durable/volatile rows as a
//! `durassd.latency.v1` document, and `--check` gates the anatomy form of
//! the tail claim — the durable runs contain zero flush-cache segment time
//! while the slowest volatile ops are flush-dominated.
//!
//! Run: `cargo run -p bench --release --bin tail [--ops N] [--json PATH]
//! [--check]`

use bench::schema::{check_latency_report_with, LATENCY_SCHEMA};
use bench::{
    arg_flag, arg_str, arg_u64, durassd_bench, latency_row_json, print_telemetry, rule,
    ssd_a_bench, ssd_health_line, write_atomic, TelemetrySink,
};
use durassd::Ssd;
use forensics::{DeviceHealth, Forensic};
use simkit::dist::rng;
use simkit::dist::Rng;
use simkit::stats::LatencyStats;
use simkit::ClosedLoop;
use storage::device::LOGICAL_PAGE;
use storage::volume::Volume;
use telemetry::Telemetry;

fn mixed_run(
    dev: Ssd,
    barriers: bool,
    ops: u64,
    tel: &Telemetry,
) -> (LatencyStats, LatencyStats, Option<DeviceHealth>) {
    let mut vol = Volume::new(dev, barriers);
    let span = vol.capacity_pages() / 2;
    // Preload so reads hit media.
    let page = vec![1u8; LOGICAL_PAGE];
    let mut t = 0;
    for lpn in 0..16_384.min(span) {
        t = vol.write(lpn, &page, t).unwrap();
    }
    t = vol.fsync(t).unwrap();
    // Attach after the preload so only the mixed phase is measured; the
    // device needs its own attach for the anatomy segments it charges.
    vol.attach_telemetry(tel.clone(), "tail");
    vol.device_mut().attach_telemetry(tel.clone());
    // 64 readers + 16 writers, writers fsync every 8 writes.
    let clients = 80usize;
    let mut rngs: Vec<_> = (0..clients).map(|c| rng(0xFEED ^ (c as u64) << 20)).collect();
    let mut since = vec![0u32; clients];
    let mut reads = LatencyStats::new();
    let mut writes = LatencyStats::new();
    let mut rbuf = vec![0u8; LOGICAL_PAGE];
    let mut driver = ClosedLoop::new(clients, t);
    driver.run(ops, |c, now| {
        let r = &mut rngs[c];
        let lpn = r.gen_range(0..16_384.min(span));
        if c < 64 {
            let done = vol.read(lpn, 1, &mut rbuf, now).unwrap();
            reads.record(done - now);
            done
        } else {
            let mut done = vol.write(lpn, &page, now).unwrap();
            since[c] += 1;
            if since[c] >= 8 {
                since[c] = 0;
                done = vol.fsync(done).unwrap();
            }
            writes.record(done - now);
            done
        }
    });
    let health = vol.device().health();
    (reads, writes, health)
}

fn report(name: &str, reads: &mut LatencyStats, writes: &mut LatencyStats) {
    let ms = |v: u64| v as f64 / 1e6;
    println!(
        "{:<38} reads  p50 {:>7.3}  p99 {:>8.3}  p99.9 {:>8.3}  max {:>8.3} (ms)",
        name,
        ms(reads.percentile(50.0)),
        ms(reads.percentile(99.0)),
        ms(reads.percentile(99.9)),
        ms(reads.max())
    );
    println!(
        "{:<38} writes p50 {:>7.3}  p99 {:>8.3}  p99.9 {:>8.3}  max {:>8.3}",
        "",
        ms(writes.percentile(50.0)),
        ms(writes.percentile(99.0)),
        ms(writes.percentile(99.9)),
        ms(writes.max())
    );
}

/// Anatomy rows for one run: the slowest reads and writes with their
/// causally attributed breakdowns.
fn anatomy_rows(tel: &Telemetry, mode: &str, device: &str) -> Vec<String> {
    [("tail_mixed_reads", "dev.tail.read"), ("tail_mixed_writes", "dev.tail.write")]
        .iter()
        .filter_map(|(workload, op)| latency_row_json(workload, mode, device, op, tel))
        .collect()
}

fn main() {
    let mut sink = TelemetrySink::from_args();
    let ops = arg_u64("--ops", 60_000);
    let json_out = arg_str("--json");
    let check = arg_flag("--check");
    println!("Tail latency under mixed read/write load (64 readers, 16 writers, fsync/8)\n");
    rule(110);
    let tel1 = Telemetry::new();
    tel1.enable_anatomy(8);
    let (mut r1, mut w1, h1) = mixed_run(ssd_a_bench(true), true, ops, &tel1);
    report("volatile SSD, barriers ON", &mut r1, &mut w1);
    print_telemetry("    ", &tel1, &["dev.tail.read", "dev.tail.flush"]);
    if let Some(h) = &h1 {
        println!("    {}", ssd_health_line(h));
    }
    sink.add("volatile SSD, barriers ON", &tel1);
    let tel2 = Telemetry::new();
    tel2.enable_anatomy(8);
    let (mut r2, mut w2, h2) = mixed_run(durassd_bench(true), false, ops, &tel2);
    report("DuraSSD, nobarrier", &mut r2, &mut w2);
    print_telemetry("    ", &tel2, &["dev.tail.read", "dev.tail.flush"]);
    if let Some(h) = &h2 {
        println!("    {}", ssd_health_line(h));
    }
    sink.add("DuraSSD, nobarrier", &tel2);
    sink.finish();
    rule(110);
    let f = |a: &mut LatencyStats, b: &mut LatencyStats, p: f64| {
        a.percentile(p) as f64 / b.percentile(p).max(1) as f64
    };
    println!(
        "read-tail improvement: p99 {:.1}x   p99.9 {:.1}x — the paper's tail-tolerance claim",
        f(&mut r1, &mut r2, 99.0),
        f(&mut r1, &mut r2, 99.9)
    );

    if json_out.is_some() || check {
        let mut rows = anatomy_rows(&tel1, "volatile", "ssd_a");
        rows.extend(anatomy_rows(&tel2, "durable", "durassd"));
        let doc = format!("{{\"schema\":\"{LATENCY_SCHEMA}\",\"rows\":[{}]}}", rows.join(","));
        if let Some(path) = &json_out {
            write_atomic(path, &doc).expect("tail output path is writable");
            println!("wrote {path}");
        }
        if check {
            let failures = check_latency_report_with(&doc, 2);
            if failures.is_empty() {
                println!(
                    "check : OK (anatomy conserved; durable runs flush-free, \
                     volatile tails flush-dominated)"
                );
            } else {
                for fmsg in &failures {
                    eprintln!("check FAILED: {fmsg}");
                }
                std::process::exit(1);
            }
        }
    }
}

//! **perf** — reproducible wall-clock performance harness.
//!
//! Every other bench bin in this repo measures *virtual* time: the
//! discrete-event model's answer to "how fast is the device". This one
//! measures the *simulator itself* — wall-clock ops/sec, allocator traffic
//! and peak RSS for three fixed, seeded scenarios — so successive PRs leave
//! a host-side performance trajectory in `BENCH_perf.json` at the repo root
//! instead of anecdotes.
//!
//! Scenarios (fixed op counts, fixed seeds — byte-identical virtual-time
//! results run to run):
//!
//! 1. `fio_randwrite_4k` — fio-style 4KB random writes on DuraSSD (cache
//!    ON, barriers, fsync every 32) — the Table 1 hot cell;
//! 2. `ycsb_a_docstore` — YCSB-A on the document store (batch-10 group
//!    commit, barriers ON);
//! 3. `tpcc_relstore` — a TPC-C slice on the relational engine (8 clients,
//!    strict commits).
//!
//! Reported per scenario: wall-clock ops/sec (the headline), sim-time
//! throughput (must stay constant across host-side refactors — it is the
//! determinism canary), heap allocations from the counting global allocator
//! and allocations/op. Process-wide peak RSS (`VmHWM`) is reported once.
//!
//! Flags: `--fio-ops N`, `--ycsb-records N`, `--ycsb-ops N`,
//! `--warehouses N`, `--txns N`, `--out PATH` (default `BENCH_perf.json`),
//! `--check` (validate the written JSON: parses, schema tag, no NaN, no
//! zero throughput; exit non-zero on violation).
//!
//! Run: `cargo run -p bench --release --bin perf`

use bench::schema::{check_perf_report, PERF_SCHEMA};
use bench::{arg_flag, arg_str, arg_u64, durassd_bench, fmt_rate, rule, write_atomic};
use docstore::{DocStore, DocStoreConfig};
use relstore::{Engine, EngineConfig};
use simkit::alloc::{alloc_count, peak_rss_bytes, CountingAlloc};
use storage::volume::Volume;
use workloads::fio::FioSpec;
use workloads::{fio, tpcc, ycsb};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// JSON schema tag; bump on layout changes so downstream tooling can gate.
const SCHEMA: &str = PERF_SCHEMA;

struct Scenario {
    name: &'static str,
    ops: u64,
    wall_ns: u64,
    sim_ns: u64,
    allocs: u64,
}

impl Scenario {
    fn wall_ops_per_sec(&self) -> f64 {
        self.ops as f64 / (self.wall_ns.max(1) as f64 / 1e9)
    }
    fn sim_ops_per_sec(&self) -> f64 {
        self.ops as f64 / (self.sim_ns.max(1) as f64 / 1e9)
    }
    fn allocs_per_op(&self) -> f64 {
        self.allocs as f64 / self.ops.max(1) as f64
    }
}

/// Measure a closure that returns `(ops, sim_ns)`; wall-clock and the
/// allocation counter bracket exactly the measured phase (setup and load
/// happen outside, in the caller).
fn measure(name: &'static str, f: impl FnOnce() -> (u64, u64)) -> Scenario {
    let a0 = alloc_count();
    let t0 = std::time::Instant::now();
    let (ops, sim_ns) = f();
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let allocs = alloc_count() - a0;
    Scenario { name, ops, wall_ns, sim_ns, allocs }
}

fn fio_scenario(ops: u64) -> Scenario {
    let mut vol = Volume::new(durassd_bench(true), true);
    let span = vol.capacity_pages() * 3 / 4;
    let spec = FioSpec::random_write_4k(span, Some(32), ops);
    measure("fio_randwrite_4k", || {
        let rep = fio::run(&mut vol, &spec, 0);
        (rep.ops, rep.elapsed())
    })
}

fn ycsb_scenario(records: u64, ops: u64) -> Scenario {
    let dev = durassd_bench(true);
    let cfg = DocStoreConfig {
        batch_size: 10,
        barriers: true,
        file_blocks: 200_000,
        auto_compact_pct: 0,
        checkpoint_every_n_commits: 8,
    };
    let mut store = DocStore::create(dev, cfg);
    let spec = ycsb::YcsbSpec::workload_a(records, ops);
    let t0 = ycsb::load(&mut store, &spec, 0);
    measure("ycsb_a_docstore", || {
        let rep = ycsb::run(&mut store, &spec, t0);
        (rep.ops, rep.elapsed())
    })
}

fn tpcc_scenario(warehouses: u32, txns: u64) -> Scenario {
    let data = durassd_bench(true);
    let log = durassd_bench(true);
    let spec = tpcc::TpccSpec { clients: 8, ..tpcc::TpccSpec::scaled(warehouses, txns) };
    let est = warehouses as u64
        * (spec.items as u64 * 300 + spec.districts as u64 * spec.customers as u64 * 470 + 40_960);
    let ecfg = EngineConfig::builder(4096)
        .buffer_pool_bytes((est / 10).max(512 * 1024))
        .barriers(true)
        .data_pages((est * 4 / 4096).max(16_384))
        .log_file_blocks(8_192)
        .build();
    let (mut engine, t0) = Engine::create(data, log, ecfg, 0).into_parts();
    let (mut db, t1) = tpcc::load(&mut engine, &spec, t0);
    measure("tpcc_relstore", || {
        let rep = tpcc::run(&mut engine, &mut db, &spec, t1);
        (txns, rep.finished_at.saturating_sub(t1).max(rep.elapsed))
    })
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.2}")
    } else {
        // Keep the document valid JSON even if a scenario degenerates; the
        // --check pass flags the zero.
        "0".to_string()
    }
}

fn render_json(scenarios: &[Scenario], rss: u64) -> String {
    let mut out = String::new();
    out.push_str(&format!("{{\"schema\":\"{SCHEMA}\","));
    out.push_str(&format!(
        "\"profile\":\"{}\",",
        if cfg!(debug_assertions) { "debug" } else { "release" }
    ));
    out.push_str(&format!("\"peak_rss_bytes\":{rss},"));
    out.push_str("\"scenarios\":[");
    for (i, s) in scenarios.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"ops\":{},\"wall_ns\":{},\"wall_ops_per_sec\":{},\
             \"sim_ns\":{},\"sim_ops_per_sec\":{},\"allocs\":{},\"allocs_per_op\":{}}}",
            s.name,
            s.ops,
            s.wall_ns,
            json_f64(s.wall_ops_per_sec()),
            s.sim_ns,
            json_f64(s.sim_ops_per_sec()),
            s.allocs,
            json_f64(s.allocs_per_op()),
        ));
    }
    out.push_str("]}");
    out
}

fn main() {
    let fio_ops = arg_u64("--fio-ops", 60_000);
    let ycsb_records = arg_u64("--ycsb-records", 2_000);
    let ycsb_ops = arg_u64("--ycsb-ops", 8_000);
    let warehouses = arg_u64("--warehouses", 1) as u32;
    let txns = arg_u64("--txns", 300);
    let out = arg_str("--out").unwrap_or_else(|| "BENCH_perf.json".to_string());
    let check = arg_flag("--check");

    println!(
        "perf: wall-clock harness ({} build) — fio {fio_ops} ops, \
         YCSB-A {ycsb_records} recs/{ycsb_ops} ops, TPC-C {warehouses} wh/{txns} txns",
        if cfg!(debug_assertions) { "debug" } else { "release" }
    );
    println!();
    println!(
        "{:<18} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "scenario", "ops", "wall ops/s", "sim ops/s", "allocs", "allocs/op"
    );
    rule(80);

    let scenarios = vec![
        fio_scenario(fio_ops),
        ycsb_scenario(ycsb_records, ycsb_ops),
        tpcc_scenario(warehouses, txns),
    ];
    for s in &scenarios {
        println!(
            "{:<18} {:>10} {:>12} {:>12} {:>12} {:>10.2}",
            s.name,
            s.ops,
            fmt_rate(s.wall_ops_per_sec()),
            fmt_rate(s.sim_ops_per_sec()),
            s.allocs,
            s.allocs_per_op(),
        );
    }
    let rss = peak_rss_bytes();
    println!();
    println!("peak RSS: {:.1} MiB", rss as f64 / (1024.0 * 1024.0));

    let doc = render_json(&scenarios, rss);
    write_atomic(&out, &doc).expect("perf output path is writable");
    println!("wrote {out}");

    if check {
        let failures = check_perf_report(&doc);
        if failures.is_empty() {
            println!("check : OK (schema, finite positive throughputs)");
        } else {
            for f in &failures {
                eprintln!("check FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
}

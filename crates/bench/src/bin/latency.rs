//! **latency** — per-op latency anatomy: where every commit nanosecond went.
//!
//! Every host operation runs inside a telemetry *frame*; the layers below it
//! (SATA link, NAND channels, cache admission, GC, WAL, map persistence,
//! FLUSH CACHE drains) charge causally attributed segments against that
//! frame, and the close audits the conservation identity — segments never
//! exceed the op's wall latency, with the un-attributed remainder swept into
//! a `host` segment. This bin runs the same three workloads as `waf` — fio
//! fsync-per-write random writes, YCSB-A on the document store, a TPC-C
//! slice on the relational engine — each in two deployments:
//!
//! * **durable** — DuraSSD (capacitor-backed cache), barriers OFF: fsync is
//!   acknowledged from the durable cache, so no commit ever waits on a
//!   FLUSH CACHE drain;
//! * **volatile** — SSD-A (volatile cache), barriers ON: every commit pays a
//!   real cache drain, and the tail is flush-dominated.
//!
//! Per row it reports the commit-op percentile ladder, the per-segment-kind
//! histograms for the whole run, and the slowest captured commit's full
//! breakdown (the "tail" object). `--check` gates the paper's durability
//! claim restated as latency anatomy: durable tails contain **zero**
//! flush-cache time while every volatile tail is flush-dominated
//! ([`bench::schema::check_latency_report`]).
//!
//! Flags: `--fio-ops N`, `--fio-span N`, `--ycsb-records N`, `--ycsb-ops N`,
//! `--warehouses N`, `--txns N`, `--top-k N` (outliers kept per op),
//! `--out PATH` (default `BENCH_latency.json`), `--check`,
//! `--trace-out PREFIX` (per-row Chrome trace + tail-outlier JSON sibling).
//!
//! Run: `cargo run -p bench --release --bin latency`

use bench::schema::{check_latency_report, LATENCY_SCHEMA};
use bench::{
    arg_flag, arg_str, arg_u64, durassd_bench, fmt_ns, latency_row_json, rule, ssd_a_bench,
    write_atomic,
};
use docstore::{DocStore, DocStoreConfig};
use durassd::Ssd;
use relstore::{Engine, EngineConfig};
use storage::volume::Volume;
use telemetry::{SegKind, Telemetry};
use workloads::fio::FioSpec;
use workloads::{fio, tpcc, ycsb};

/// One workload × deployment cell; the row keeps its whole registry so the
/// renderer can read commit histograms, segment histograms, and outliers.
struct LatRow {
    workload: &'static str,
    mode: &'static str,
    device: &'static str,
    commit_op: &'static str,
    tel: Telemetry,
}

/// A fresh anatomy-enabled registry for one row.
fn row_tel(top_k: u64, trace: bool) -> Telemetry {
    let tel = Telemetry::new();
    tel.enable_anatomy(top_k as usize);
    if trace {
        tel.enable_tracing(1 << 20);
    }
    tel
}

/// The device under test for one deployment mode: DuraSSD (nobarrier) or
/// SSD-A (barriers). Returns the device and whether barriers are honoured.
fn device_for(durable: bool) -> (Ssd, bool, &'static str) {
    if durable {
        (durassd_bench(true), false, "durassd")
    } else {
        (ssd_a_bench(true), true, "ssd_a")
    }
}

fn mode_name(durable: bool) -> &'static str {
    if durable {
        "durable"
    } else {
        "volatile"
    }
}

/// fio with an fsync after every 4KB write. The commit op is the fsync
/// itself: a real FLUSH CACHE frame when barriers are on, the in-kernel
/// soft-fsync frame (pure `wal_fsync` time) on the nobarrier deployment.
fn fio_row(durable: bool, ops: u64, span: u64, top_k: u64, trace: bool) -> LatRow {
    let (mut dev, barriers, device) = device_for(durable);
    let tel = row_tel(top_k, trace);
    dev.attach_telemetry(tel.clone());
    let mut vol = Volume::new(dev, barriers);
    vol.attach_telemetry(tel.clone(), "fio");
    let spec = FioSpec::random_write_4k(span, Some(1), ops);
    fio::run(&mut vol, &spec, 0);
    LatRow {
        workload: "fio_overwrite_4k",
        mode: mode_name(durable),
        device,
        commit_op: if durable { "dev.fio.fsync_soft" } else { "dev.fio.flush" },
        tel,
    }
}

/// YCSB-A on the document store; the commit op is `doc.set` (batched
/// commits close inside the set frame that triggered them).
fn ycsb_row(durable: bool, records: u64, ops: u64, top_k: u64, trace: bool) -> LatRow {
    let (mut dev, barriers, device) = device_for(durable);
    let tel = row_tel(top_k, trace);
    dev.attach_telemetry(tel.clone());
    let cfg = DocStoreConfig {
        batch_size: 10,
        barriers,
        file_blocks: 200_000,
        auto_compact_pct: 0,
        checkpoint_every_n_commits: 8,
    };
    let mut store = DocStore::create(dev, cfg);
    store.attach_telemetry(tel.clone());
    let spec = ycsb::YcsbSpec::workload_a(records, ops);
    let t0 = ycsb::load(&mut store, &spec, 0);
    ycsb::run(&mut store, &spec, t0);
    LatRow {
        workload: "ycsb_a_docstore",
        mode: mode_name(durable),
        device,
        commit_op: "doc.set",
        tel,
    }
}

/// A TPC-C slice on the relational engine; the commit op is
/// `engine.commit` (WAL group commit + log flush).
fn tpcc_row(durable: bool, warehouses: u32, txns: u64, top_k: u64, trace: bool) -> LatRow {
    let (mut data, barriers, device) = device_for(durable);
    let (mut log, _, _) = device_for(durable);
    let tel = row_tel(top_k, trace);
    data.attach_telemetry(tel.clone());
    log.attach_telemetry(tel.clone());
    let spec = tpcc::TpccSpec { clients: 8, ..tpcc::TpccSpec::scaled(warehouses, txns) };
    let est = warehouses as u64
        * (spec.items as u64 * 300 + spec.districts as u64 * spec.customers as u64 * 470 + 40_960);
    let ecfg = EngineConfig::builder(4096)
        .buffer_pool_bytes((est / 10).max(512 * 1024))
        .barriers(barriers)
        .data_pages((est * 4 / 4096).max(16_384))
        .log_file_blocks(8_192)
        .build();
    let (mut engine, t0) = Engine::create(data, log, ecfg, 0).into_parts();
    engine.attach_telemetry(tel.clone());
    let (mut db, t1) = tpcc::load(&mut engine, &spec, t0);
    tpcc::run(&mut engine, &mut db, &spec, t1);
    LatRow {
        workload: "tpcc_relstore",
        mode: mode_name(durable),
        device,
        commit_op: "engine.commit",
        tel,
    }
}

fn render_json(rows: &[LatRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{{\"schema\":\"{LATENCY_SCHEMA}\",\"rows\":["));
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let row = latency_row_json(r.workload, r.mode, r.device, r.commit_op, &r.tel);
        out.push_str(&row.expect("commit op recorded and captured"));
    }
    out.push_str("]}");
    out
}

fn main() {
    let fio_ops = arg_u64("--fio-ops", 40_000);
    let fio_span = arg_u64("--fio-span", 2_048);
    let ycsb_records = arg_u64("--ycsb-records", 1_000);
    let ycsb_ops = arg_u64("--ycsb-ops", 6_000);
    let warehouses = arg_u64("--warehouses", 1) as u32;
    let txns = arg_u64("--txns", 300);
    let top_k = arg_u64("--top-k", 8);
    let out = arg_str("--out").unwrap_or_else(|| "BENCH_latency.json".to_string());
    let trace_out = arg_str("--trace-out");
    let check = arg_flag("--check");

    println!(
        "latency: per-op anatomy — fio {fio_ops} ops over {fio_span} blocks, \
         YCSB-A {ycsb_records} recs/{ycsb_ops} ops, TPC-C {warehouses} wh/{txns} txns"
    );
    println!("durable = DuraSSD nobarrier; volatile = SSD-A with barriers\n");

    let trace = trace_out.is_some();
    let rows = vec![
        fio_row(true, fio_ops, fio_span, top_k, trace),
        fio_row(false, fio_ops, fio_span, top_k, trace),
        ycsb_row(true, ycsb_records, ycsb_ops, top_k, trace),
        ycsb_row(false, ycsb_records, ycsb_ops, top_k, trace),
        tpcc_row(true, warehouses, txns, top_k, trace),
        tpcc_row(false, warehouses, txns, top_k, trace),
    ];

    println!(
        "{:<18} {:<9} {:<20} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "workload", "mode", "commit op", "count", "p50", "p99", "p99.9", "max"
    );
    rule(102);
    for r in &rows {
        let h = r.tel.histogram(r.commit_op).expect("commit op recorded");
        println!(
            "{:<18} {:<9} {:<20} {:>8} {:>10} {:>10} {:>10} {:>10}",
            r.workload,
            r.mode,
            r.commit_op,
            h.count(),
            fmt_ns(h.p50()),
            fmt_ns(h.p99()),
            fmt_ns(h.p999()),
            fmt_ns(h.max()),
        );
    }
    println!();
    // The anatomy story: where the slowest commit's nanoseconds went.
    for r in &rows {
        let tail = r.tel.outliers_for(r.commit_op);
        let Some(bd) = tail.first() else { continue };
        let mut parts = Vec::new();
        for k in SegKind::ALL {
            let ns = bd.seg(k);
            if ns > 0 {
                parts.push(format!("{} {}", k.label(), fmt_ns(ns)));
            }
        }
        println!(
            "{:<18} {:<9} tail {} = {}",
            r.workload,
            r.mode,
            fmt_ns(bd.wall),
            parts.join("  ")
        );
    }

    if let Some(prefix) = &trace_out {
        for r in &rows {
            let base = format!("{prefix}.{}.{}", r.workload, r.mode);
            if let Some(doc) = r.tel.trace_chrome_json() {
                write_atomic(&format!("{base}.trace.json"), &doc)
                    .expect("trace output path is writable");
            }
            if let Some(doc) = r.tel.outliers_json() {
                write_atomic(&format!("{base}.outliers.json"), &doc)
                    .expect("outlier output path is writable");
            }
        }
        println!("\nwrote per-row traces and outliers under {prefix}.*");
    }

    let doc = render_json(&rows);
    write_atomic(&out, &doc).expect("latency output path is writable");
    println!("\nwrote {out}");

    if check {
        let failures = check_latency_report(&doc);
        if failures.is_empty() {
            println!(
                "check : OK (schema, conservation, durable tail flush-free, \
                 volatile tail flush-dominated)"
            );
        } else {
            for f in &failures {
                eprintln!("check FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
}

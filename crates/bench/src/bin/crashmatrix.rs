//! **Crash campaign** — the durability claims of §2.1/§3.4/§5.2, audited.
//!
//! For every device (DuraSSD, SSD-A, SSD-B, disk) × configuration
//! (barriers+double-write ON, or both OFF), run a commit-per-op workload on
//! the relational engine with a *durability ledger* attached, cut power at a
//! seeded mid-workload point, collect the device postmortems captured inside
//! `power_cut`, recover, probe every attempted key, and reconcile: each unit
//! is classified `survived | acked-lost | torn | stale | never-acked` and
//! every loss is attributed to the layer that dropped it (cache slot,
//! channel queue, lazy FTL map, HDD write cache, host). The same sweep runs
//! the document store with per-update fsync. Cut points repeat `--cuts`
//! times with fresh seeded positions.
//!
//! Expected result (the paper's thesis):
//! * ON/ON is safe on every device — at a large performance cost;
//! * OFF/OFF is safe **only** on DuraSSD (capacitor-backed cache);
//! * volatile-cache devices running OFF/OFF lose acknowledged commits, and
//!   the forensic report names the broken layer for every lost unit.
//!
//! Run: `cargo run -p bench --release --bin crashmatrix
//!        [--keys N] [--cuts N] [--seed S] [--json PATH] [--check]`
//!
//! `--json` writes the `durassd.forensics.v1` campaign report (plus a
//! Chrome-trace JSON of one representative DuraSSD trial, containing the
//! `power_cut` Instant). `--check` validates the report schema in-process
//! and exits non-zero if any DuraSSD row lost an acknowledged unit.

use bench::schema::check_forensics_report;
use bench::{
    arg_flag, arg_str, arg_u64, durassd_bench, hdd_bench, rule, ssd_a_bench, ssd_b_bench,
    ssd_health_line, write_atomic, TelemetrySink,
};
use docstore::{DocStore, DocStoreConfig};
use forensics::{
    reconcile, AckContract, CampaignReport, CutReport, DeviceHealth, Forensic, Ledger, Probe,
    ProbeResult,
};
use relstore::{Engine, EngineConfig};
use simkit::dist::{rng, Rng};
use simkit::Recovered;
use storage::device::BlockDevice;
use telemetry::Telemetry;

fn key_of(i: u64) -> Vec<u8> {
    format!("key{:06}", i).into_bytes()
}

fn val_of(i: u64) -> Vec<u8> {
    format!("value-{i}-{}", "x".repeat(80)).into_bytes()
}

/// One trial's forensic row plus the recovered data device's health.
struct TrialOut {
    row: CutReport,
    health: Option<DeviceHealth>,
}

/// Where in the commit cycle the seeded cut lands.
#[derive(Clone, Copy, PartialEq)]
enum CutPhase {
    /// After the put at the cut op, before its commit (intent un-acked).
    AfterPut,
    /// After the commit at the cut op (intent acknowledged durable).
    AfterCommit,
}

impl CutPhase {
    fn as_str(self) -> &'static str {
        match self {
            CutPhase::AfterPut => "after-put",
            CutPhase::AfterCommit => "after-commit",
        }
    }
}

/// One engine trial: workload to the seeded cut point, power cut, postmortem
/// harvest, recovery, key probe, reconciliation.
#[allow(clippy::too_many_arguments)]
fn engine_trial<D, L>(
    mut data: D,
    mut log: L,
    contract: AckContract,
    safe: bool,
    cut_op: u64,
    phase: CutPhase,
    label: &str,
    tel: &Telemetry,
) -> TrialOut
where
    D: BlockDevice + Forensic,
    L: BlockDevice + Forensic,
{
    let ledger = Ledger::new(contract);
    // Device-level ack evidence (atomic-write acks, FLUSH CACHE acks) needs
    // the ledger on the devices before the engine consumes them.
    data.attach_ledger(ledger.clone());
    log.attach_ledger(ledger.clone());
    let cfg = EngineConfig::builder(4096)
        .buffer_pool_bytes(96 * 4096) // small: forces evictions mid-run
        .double_write(safe)
        .barriers(safe)
        .data_pages(16 * 1024)
        .log_files(2)
        .log_file_blocks(2048)
        .dwb_pages(128)
        .build();
    let (mut e, t0) = Engine::create(data, log, cfg, 0).into_parts();
    e.attach_telemetry(tel.clone());
    e.attach_ledger(ledger.clone());
    let (tree, t) = e.create_tree(t0).into_parts();
    let mut now = e.checkpoint(t);
    // Strict commits up to the seeded cut point.
    for i in 0..=cut_op {
        now = e.put(tree, &key_of(i), &val_of(i), now);
        if phase == CutPhase::AfterPut && i == cut_op {
            break;
        }
        now = e.commit(now);
    }
    let cut_at_ns = now + 1;
    let (mut d, mut l) = e.crash(cut_at_ns);
    let mut pms = Vec::new();
    pms.extend(d.take_postmortem());
    pms.extend(l.take_postmortem());
    match Engine::recover(d, l, cfg, cut_at_ns + 1).map(Recovered::into_parts) {
        Err(err) => {
            // The stack could not even restart: every attempted unit is
            // gone, so every acknowledged one is acked-lost and attribution
            // runs off the postmortem evidence (discarded cache slots,
            // rolled-back mapping entries, ...).
            let probes: Vec<Probe> =
                (0..=cut_op).map(|i| Probe::new(&key_of(i), ProbeResult::Missing)).collect();
            let mut row = reconcile(
                label,
                cut_op,
                phase.as_str(),
                cut_at_ns,
                &ledger,
                &probes,
                pms,
                Vec::new(),
            );
            row.verdict = format!("UNRECOVERABLE ({err}) — {}", row.verdict);
            TrialOut { row, health: None }
        }
        Ok((mut e2, ready)) => {
            let mut recs = Vec::new();
            recs.extend(e2.data_volume().device().recovery_snap().cloned());
            recs.extend(e2.log_volume().device().recovery_snap().cloned());
            let health = e2.data_volume().device().health();
            let mut probes = Vec::with_capacity(cut_op as usize + 1);
            let mut t2 = ready;
            for i in 0..=cut_op {
                let (v, t3) = e2.get(tree, &key_of(i), t2).into_parts();
                t2 = t3;
                let result = match v {
                    Some(bytes) => ProbeResult::Value(Ledger::digest(&bytes)),
                    None => ProbeResult::Missing,
                };
                probes.push(Probe::new(&key_of(i), result));
            }
            let row =
                reconcile(label, cut_op, phase.as_str(), cut_at_ns, &ledger, &probes, pms, recs);
            TrialOut { row, health }
        }
    }
}

/// One document-store trial (fsync per update; a set is its own commit).
fn doc_trial<D: BlockDevice + Forensic>(
    mut dev: D,
    contract: AckContract,
    barriers: bool,
    cut_op: u64,
    label: &str,
    tel: &Telemetry,
) -> TrialOut {
    let ledger = Ledger::new(contract);
    dev.attach_ledger(ledger.clone());
    let cfg = DocStoreConfig {
        batch_size: 1,
        barriers,
        file_blocks: 65_536,
        auto_compact_pct: 0,
        checkpoint_every_n_commits: 8,
    };
    let mut s = DocStore::create(dev, cfg);
    s.attach_telemetry(tel.clone());
    s.attach_ledger(ledger.clone());
    let mut now = 0;
    for i in 0..=cut_op {
        now = s.set(&key_of(i), &val_of(i), now);
    }
    let cut_at_ns = now + 1;
    let mut dev = s.crash(cut_at_ns);
    let pms: Vec<_> = dev.take_postmortem().into_iter().collect();
    let (mut s2, mut t2) = DocStore::recover(dev, cfg, cut_at_ns + 1).into_parts();
    let recs: Vec<_> = s2.device().recovery_snap().cloned().into_iter().collect();
    let health = s2.device().health();
    let mut probes = Vec::with_capacity(cut_op as usize + 1);
    for i in 0..=cut_op {
        let (v, t3) = s2.get(&key_of(i), t2).into_parts();
        t2 = t3;
        let result = match v {
            Some(bytes) => ProbeResult::Value(Ledger::digest(&bytes)),
            None => ProbeResult::Missing,
        };
        probes.push(Probe::new(&key_of(i), result));
    }
    let row = reconcile(label, cut_op, "after-set", cut_at_ns, &ledger, &probes, pms, recs);
    TrialOut { row, health }
}

fn print_row(out: &TrialOut) {
    let r = &out.row;
    let t = &r.tally;
    println!(
        "{:<30} {:>6} {:<12} {:>6} {:>6} {:>5} {:>5} {:>6}   {}",
        r.label,
        r.cut_at_op,
        r.cut_phase,
        t.survived,
        t.acked_lost,
        t.torn,
        t.stale,
        t.never_acked,
        if r.durable { "SAFE" } else { "ACKED DATA LOSS" }
    );
    if let Some(h) = &out.health {
        println!("      {}", ssd_health_line(h));
    }
    for loss in r.losses.iter().take(3) {
        println!(
            "      lost {} [{}] -> {}: {}",
            loss.unit,
            loss.classification.as_str(),
            loss.layer.map(|l| l.as_str()).unwrap_or("unattributed"),
            loss.evidence
        );
    }
    if r.losses.len() > 3 {
        println!("      ... {} more loss row(s) in the JSON report", r.losses.len() - 3);
    }
}

fn main() {
    let mut sink = TelemetrySink::from_args();
    let keys = arg_u64("--keys", 1500);
    let cuts = arg_u64("--cuts", 2).max(1);
    let seed = arg_u64("--seed", 7);
    let json_path = arg_str("--json");
    let check = arg_flag("--check");
    let mut cut_rng = rng(seed ^ 0xD00D_CAFE);
    println!(
        "Crash campaign: up to {keys} committed ops/trial, {cuts} seeded cut(s), seed {seed}.\n"
    );
    println!(
        "{:<30} {:>6} {:<12} {:>6} {:>6} {:>5} {:>5} {:>6}",
        "configuration", "cut@op", "phase", "surv", "lost", "torn", "stale", "n-ack"
    );
    rule(100);

    let mut report = CampaignReport { seed, keys, cuts, rows: Vec::new() };
    // Chrome trace of one representative DuraSSD trial (first OFF/OFF cut):
    // must contain the `power_cut` Instant on the ssd timeline.
    let mut trace_json: Option<String> = None;

    for cut in 0..cuts {
        let lo = (keys / 4).max(1);
        let cut_op = cut_rng.gen_range(lo..keys);
        let phase = if cut_rng.gen_bool(0.5) { CutPhase::AfterCommit } else { CutPhase::AfterPut };
        for safe in [true, false] {
            let tag = if safe { "ON/ON" } else { "OFF/OFF" };
            let trials: [(&str, AckContract); 4] = [
                ("DuraSSD", AckContract::DurableCacheAck),
                ("SSD-A", AckContract::VolatileAck),
                ("SSD-B", AckContract::VolatileAck),
                ("Disk", AckContract::VolatileAck),
            ];
            for (dev_name, contract) in trials {
                let label = format!("engine {dev_name} {tag}");
                let tel = Telemetry::new();
                let traced = dev_name == "DuraSSD" && !safe && cut == 0;
                if traced {
                    tel.enable_tracing(1 << 18);
                }
                let out = match dev_name {
                    "Disk" => {
                        let (d, l) = (hdd_bench(true), hdd_bench(true));
                        engine_trial(d, l, contract, safe, cut_op, phase, &label, &tel)
                    }
                    _ => {
                        let (mut d, mut l) = match dev_name {
                            "DuraSSD" => (durassd_bench(true), durassd_bench(true)),
                            "SSD-A" => (ssd_a_bench(true), ssd_a_bench(true)),
                            _ => (ssd_b_bench(true), ssd_b_bench(true)),
                        };
                        if traced {
                            d.attach_telemetry(tel.clone());
                            l.attach_telemetry(tel.clone());
                        }
                        engine_trial(d, l, contract, safe, cut_op, phase, &label, &tel)
                    }
                };
                if traced {
                    trace_json = tel.trace_chrome_json();
                }
                print_row(&out);
                sink.add(&format!("{label} cut{cut}"), &tel);
                report.rows.push(out.row);
            }
        }
        for barriers in [true, false] {
            let tag = if barriers { "barriers-on" } else { "barriers-off" };
            for (dev_name, contract) in
                [("DuraSSD", AckContract::DurableCacheAck), ("SSD-A", AckContract::VolatileAck)]
            {
                let label = format!("doc {dev_name} {tag}");
                let tel = Telemetry::new();
                let dev =
                    if dev_name == "DuraSSD" { durassd_bench(true) } else { ssd_a_bench(true) };
                let out = doc_trial(dev, contract, barriers, cut_op, &label, &tel);
                print_row(&out);
                sink.add(&format!("{label} cut{cut}"), &tel);
                report.rows.push(out.row);
            }
        }
    }

    println!("\nPer-configuration verdicts across all cut points:");
    rule(70);
    for line in report.summary_lines() {
        println!("{line}");
    }
    sink.finish();

    let doc = report.to_json();
    if let Some(path) = &json_path {
        write_atomic(path, &doc).expect("forensic report path is writable");
        println!("\nforensics: wrote campaign report to {path}");
        if let Some(trace) = &trace_json {
            let trace_path = match path.strip_suffix(".json") {
                Some(stem) => format!("{stem}.trace.json"),
                None => format!("{path}.trace.json"),
            };
            write_atomic(&trace_path, trace).expect("trace path is writable");
            println!("forensics: wrote DuraSSD OFF/OFF cut trace to {trace_path}");
        }
    }
    if check {
        let failures = check_forensics_report(&doc);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("forensics: report FAILED schema validation: {f}");
            }
            std::process::exit(1);
        }
        let durassd_lost = report.acked_lost_for("DuraSSD");
        if durassd_lost > 0 {
            eprintln!("forensics: DuraSSD lost {durassd_lost} acknowledged unit(s) — durable-cache claim violated");
            std::process::exit(1);
        }
        println!("forensics: report schema valid; DuraSSD acked_lost == 0 at every cut point");
    }

    println!("\nThe paper's claim: OFF/OFF (no barriers, no redundant writes) is safe");
    println!("only when the device cache is durable — that is DuraSSD's contribution.");
}

//! **Crash matrix** — the durability claims of §2.1/§3.4/§5.2, measured.
//!
//! For every device (DuraSSD, SSD-A, SSD-B, disk) × configuration
//! (barriers+double-write ON, or both OFF), run a commit-per-op workload on
//! the relational engine, cut power, recover, and count committed
//! transactions that are lost or corrupt. The same sweep runs the document
//! store with per-update fsync.
//!
//! Expected result (the paper's thesis):
//! * ON/ON is safe on every device — at a large performance cost;
//! * OFF/OFF is safe **only** on DuraSSD (capacitor-backed cache);
//! * volatile-cache devices running OFF/OFF lose acknowledged commits, and
//!   SSD-B's lazy mapping journal corrupts even some barrier-ON state.
//!
//! Run: `cargo run -p bench --release --bin crashmatrix [--keys N]`

use bench::{arg_u64, durassd_bench, hdd_bench, rule, ssd_a_bench, ssd_b_bench, TelemetrySink};
use docstore::{DocStore, DocStoreConfig};
use relstore::{Engine, EngineConfig, Error};
use simkit::Timed;
use storage::device::BlockDevice;
use telemetry::Telemetry;

fn key_of(i: u64) -> Vec<u8> {
    format!("key{:06}", i).into_bytes()
}

fn val_of(i: u64) -> Vec<u8> {
    format!("value-{i}-{}", "x".repeat(80)).into_bytes()
}

/// Outcome of one engine crash trial.
enum Outcome {
    Recovered { lost: u64, corrupt: u64, repaired: u64, recovery_ms: f64 },
    Unrecoverable(Error),
}

fn engine_trial<D, L>(data: D, log: L, safe: bool, keys: u64, tel: &Telemetry) -> Outcome
where
    D: BlockDevice,
    L: BlockDevice,
{
    let cfg = EngineConfig::builder(4096)
        .buffer_pool_bytes(96 * 4096) // small: forces evictions mid-run
        .double_write(safe)
        .barriers(safe)
        .data_pages(16 * 1024)
        .log_files(2)
        .log_file_blocks(2048)
        .dwb_pages(128)
        .build();
    let (mut e, t0) = Engine::create(data, log, cfg, 0).into_parts();
    e.attach_telemetry(tel.clone());
    let (tree, t) = e.create_tree(t0).into_parts();
    let mut now = e.checkpoint(t);
    // Strict commits: every put is acknowledged durable before the next.
    for i in 0..keys {
        now = e.put(tree, &key_of(i), &val_of(i), now);
        now = e.commit(now);
    }
    let (d, l) = e.crash(now + 1);
    match Engine::recover(d, l, cfg, now + 2).map(Timed::into_parts) {
        Err(err) => Outcome::Unrecoverable(err),
        Ok((mut e2, ready)) => {
            let recovery_ms = (ready - (now + 2)) as f64 / 1e6;
            let mut t2 = ready;
            let mut lost = 0;
            for i in 0..keys {
                let (v, t3) = e2.get(tree, &key_of(i), t2).into_parts();
                t2 = t3;
                match v {
                    Some(got) if got == val_of(i) => {}
                    Some(_) | None => lost += 1,
                }
            }
            Outcome::Recovered {
                lost,
                corrupt: e2.stats().corrupt_reads,
                repaired: e2.stats().repaired_pages,
                recovery_ms,
            }
        }
    }
}

fn doc_trial<D: BlockDevice>(dev: D, barriers: bool, keys: u64, tel: &Telemetry) -> (u64, u64) {
    let cfg = DocStoreConfig { batch_size: 1, barriers, file_blocks: 65_536, auto_compact_pct: 0 };
    let mut s = DocStore::create(dev, cfg);
    s.attach_telemetry(tel.clone());
    let mut now = 0;
    for i in 0..keys {
        now = s.set(&key_of(i), &val_of(i), now);
    }
    let dev = s.crash(now + 1);
    let (mut s2, mut t2) = DocStore::recover(dev, cfg, now + 2).into_parts();
    let mut lost = 0;
    for i in 0..keys {
        let (v, t3) = s2.get(&key_of(i), t2).into_parts();
        t2 = t3;
        if v.as_deref() != Some(val_of(i).as_slice()) {
            lost += 1;
        }
    }
    (lost, s2.stats().corrupt_reads)
}

fn print_outcome(label: &str, o: Outcome, keys: u64) {
    match o {
        Outcome::Recovered { lost, corrupt, repaired, recovery_ms } => println!(
            "{:<34} {:>9} {:>9} {:>9} {:>10.1}   {}",
            label,
            lost,
            corrupt,
            repaired,
            recovery_ms,
            if lost == 0 { "SAFE" } else { "DATA LOSS" }
        ),
        Outcome::Unrecoverable(e) => {
            println!(
                "{:<34} {:>9} {:>9} {:>9} {:>10}   UNRECOVERABLE ({e})",
                label, keys, "-", "-", "-"
            )
        }
    }
}

fn main() {
    let mut sink = TelemetrySink::from_args();
    let keys = arg_u64("--keys", 1500);
    println!("Crash matrix: {keys} committed transactions, then power cut.\n");
    println!("Relational engine (commit per transaction):");
    println!(
        "{:<34} {:>9} {:>9} {:>9} {:>10}",
        "device / barriers+doublewrite", "lost", "corrupt", "repaired", "recov(ms)"
    );
    rule(92);
    for safe in [true, false] {
        let tag = if safe { "ON/ON " } else { "OFF/OFF" };
        let tel = Telemetry::new();
        print_outcome(
            &format!("DuraSSD            {tag}"),
            engine_trial(durassd_bench(true), durassd_bench(true), safe, keys, &tel),
            keys,
        );
        print_outcome(
            &format!("SSD-A (volatile)   {tag}"),
            engine_trial(ssd_a_bench(true), ssd_a_bench(true), safe, keys, &tel),
            keys,
        );
        print_outcome(
            &format!("SSD-B (lazy FTL)   {tag}"),
            engine_trial(ssd_b_bench(true), ssd_b_bench(true), safe, keys, &tel),
            keys,
        );
        print_outcome(
            &format!("Disk (write cache) {tag}"),
            engine_trial(hdd_bench(true), hdd_bench(true), safe, keys, &tel),
            keys,
        );
        sink.add(&format!("engine {}", tag.trim_end()), &tel);
    }
    println!("\nDocument store (fsync per update):");
    println!("{:<34} {:>9} {:>9}", "device / barriers", "lost", "corrupt");
    rule(56);
    for barriers in [true, false] {
        let tag = if barriers { "barriers ON " } else { "barriers OFF" };
        let tel = Telemetry::new();
        let (lost, corrupt) = doc_trial(durassd_bench(true), barriers, keys, &tel);
        println!(
            "{:<34} {:>9} {:>9}   {}",
            format!("DuraSSD            {tag}"),
            lost,
            corrupt,
            if lost == 0 { "SAFE" } else { "DATA LOSS" }
        );
        let (lost, corrupt) = doc_trial(ssd_a_bench(true), barriers, keys, &tel);
        println!(
            "{:<34} {:>9} {:>9}   {}",
            format!("SSD-A (volatile)   {tag}"),
            lost,
            corrupt,
            if lost == 0 { "SAFE" } else { "DATA LOSS" }
        );
        sink.add(&format!("doc {}", tag.trim_end()), &tel);
    }
    sink.finish();
    println!("\nThe paper's claim: OFF/OFF (no barriers, no redundant writes) is safe");
    println!("only when the device cache is durable — that is DuraSSD's contribution.");
}

//! **Figure 6** — LinkBench buffer miss ratio (a) and throughput (b) as the
//! buffer pool grows, under the OFF/OFF configuration, for page sizes
//! 16/8/4KB.
//!
//! The paper's shapes: the miss ratio falls as the pool grows and falls
//! *faster* for 4KB pages (less pollution per frame); throughput rises with
//! the pool without saturating, and the gap between page sizes widens.
//! Buffer sizes are expressed as a percentage of the database size (the
//! paper's 2–10GB against a 100GB database is 2–10%).
//!
//! Run: `cargo run -p bench --release --bin fig6 [--nodes N] [--ops N]`

use bench::{arg_u64, durassd_bench, fmt_rate, print_telemetry, rule, TelemetrySink};
use relstore::{Engine, EngineConfig};
use telemetry::Telemetry;
use workloads::linkbench::{load, run, LinkBenchSpec};

fn run_cell(
    page_size: usize,
    buffer_pct: u64,
    nodes: u64,
    ops: u64,
    tel: &Telemetry,
) -> (f64, f64) {
    let est_db_bytes = nodes * 900;
    let cfg = EngineConfig::builder(page_size)
        .buffer_pool_bytes((est_db_bytes * buffer_pct / 100).max(512 * 1024))
        .double_write(false)
        .barriers(false)
        .data_pages((est_db_bytes * 4 / page_size as u64).max(8192))
        .log_file_blocks(8192)
        .build();
    let (mut engine, t0) =
        Engine::create(durassd_bench(true), durassd_bench(true), cfg, 0).into_parts();
    engine.set_group_commit(true);
    let spec = LinkBenchSpec {
        warmup_ops: ops / 4,
        ops,
        // Lighter software cost than the Fig. 5 calibration so the I/O
        // effects of the buffer sweep are visible above the CPU floor.
        cpu_per_op: 250_000,
        ..LinkBenchSpec::scaled(nodes, ops)
    };
    let (mut graph, t1) = load(&mut engine, &spec, t0);
    engine.attach_telemetry(tel.clone()); // after load: measure the run only
    let rep = run(&mut engine, &mut graph, &spec, t1);
    (engine.miss_ratio() * 100.0, rep.tps)
}

fn main() {
    let mut sink = TelemetrySink::from_args();
    let nodes = arg_u64("--nodes", 60_000);
    let ops = arg_u64("--ops", 20_000);
    let buffers = [2u64, 4, 6, 8, 10];
    let sizes = [16384usize, 8192, 4096];
    println!("Figure 6: LinkBench vs buffer pool size (OFF/OFF, {nodes} nodes, {ops} ops)");
    println!("Buffer axis: % of database size (paper: 2-10GB of a 100GB DB).\n");
    let mut miss = vec![vec![0.0; buffers.len()]; sizes.len()];
    let mut tps = vec![vec![0.0; buffers.len()]; sizes.len()];
    let tels: Vec<Telemetry> = sizes.iter().map(|_| Telemetry::new()).collect();
    for (i, &ps) in sizes.iter().enumerate() {
        for (j, &b) in buffers.iter().enumerate() {
            let (m, t) = run_cell(ps, b, nodes, ops, &tels[i]);
            miss[i][j] = m;
            tps[i][j] = t;
        }
    }
    println!("(a) Buffer miss ratio (%)  — paper: ~8.5%..3.5%, 4KB lowest");
    print!("{:<8}", "pages");
    for b in buffers {
        print!("{:>9}", format!("{b}%"));
    }
    println!();
    rule(8 + 9 * buffers.len());
    for (i, &ps) in sizes.iter().enumerate() {
        print!("{:<8}", format!("{}KB", ps / 1024));
        for m in &miss[i] {
            print!("{:>9.2}", m);
        }
        println!();
    }
    println!("\n(b) Transactions per second — paper: rising, 4KB highest, no saturation");
    print!("{:<8}", "pages");
    for b in buffers {
        print!("{:>9}", format!("{b}%"));
    }
    println!();
    rule(8 + 9 * buffers.len());
    for (i, &ps) in sizes.iter().enumerate() {
        print!("{:<8}", format!("{}KB", ps / 1024));
        for t in &tps[i] {
            print!("{:>9}", fmt_rate(*t));
        }
        println!();
    }
    println!("\n(c) Stall attribution and latency per page size (whole sweep)");
    for (i, &ps) in sizes.iter().enumerate() {
        println!("{}KB:", ps / 1024);
        print_telemetry("    ", &tels[i], &["engine.commit", "engine.get", "pool.miss_stall"]);
        sink.add(&format!("{}KB", ps / 1024), &tels[i]);
    }
    sink.finish();
}

//! **recovery** — time-to-first-read after a crash, across device classes
//! and checkpoint cadences.
//!
//! The paper argues DuraSSD makes the *write path* fast; this bin measures
//! the flip side of that bargain: how long the database is unavailable
//! after a power cut. Each trial drives a committed workload with a deep
//! dirty pool and a large outstanding WAL, pulls the plug, then recovers
//! and issues one read. Reported per trial:
//!
//! - `replayed` / `skipped` / `torn` — the logical-replay accounting from
//!   [`simkit::ReplayStats`]: records re-applied after the last complete
//!   checkpoint, records the checkpoint let us skip, and torn tail frames;
//! - `outstanding_bytes` — log (or header-chain) bytes past the checkpoint
//!   at the moment of the cut;
//! - `recovery_sim_ns` — simulated time from reboot to a usable store;
//! - `ttfr_sim_ns` — simulated time to the first completed read (the
//!   user-visible outage), always ≥ `recovery_sim_ns`;
//! - `recovery_wall_ns` — host wall-clock spent inside recovery (the
//!   simulator-side cost, not a claim about real hardware).
//!
//! Three devices (DuraSSD lean mount without barriers, a volatile-cache
//! SSD and a Cheetah-class disk both with barriers) × two checkpoint
//! intervals, for both the relational engine and the document store.
//! Writes `BENCH_recovery.json` (schema `durassd.recovery.v1`); `--check`
//! re-validates it with [`bench::validate_recovery_report`] and exits
//! non-zero on violation.
//!
//! Flags: `--commits N` (relational commits per trial), `--doc-ops N`,
//! `--out PATH`, `--check`.
//!
//! Run: `cargo run -p bench --release --bin recovery`

use bench::{
    arg_flag, arg_str, arg_u64, durassd_bench, fmt_ns, hdd_bench, rule, ssd_a_bench,
    validate_recovery_report, write_atomic, RECOVERY_SCHEMA,
};
use docstore::{DocStore, DocStoreConfig};
use relstore::{Engine, EngineConfig};
use simkit::ReplayStats;
use storage::device::BlockDevice;

/// Checkpoint intervals (in commits) the sweep covers.
const INTERVALS: [u64; 2] = [256, 2048];

struct Row {
    engine: &'static str,
    device: &'static str,
    ckpt_interval: u64,
    commits: u64,
    outstanding_bytes: u64,
    stats: ReplayStats,
    recovery_wall_ns: u64,
    ttfr_sim_ns: u64,
}

fn key_of(i: u64) -> Vec<u8> {
    format!("k{:06}", i % 512).into_bytes()
}

fn val_of(i: u64) -> Vec<u8> {
    format!("v{i}:{}", "x".repeat(110)).into_bytes()
}

/// One relational trial: strict single-put commits with the engine's
/// `EveryNCommits` policy driving checkpoints, a crash mid-interval, then
/// recovery + one read.
fn rel_trial<D: BlockDevice>(
    data: D,
    log: D,
    device: &'static str,
    barriers: bool,
    interval: u64,
    commits: u64,
) -> Row {
    let cfg = EngineConfig::builder(4096)
        .buffer_pool_bytes(256 * 4096)
        .double_write(false)
        .barriers(barriers)
        .data_pages(16_384)
        .log_files(2)
        .log_file_blocks(2_048)
        .dwb_pages(32)
        .checkpoint_every_n_commits(interval)
        .build();
    let (mut e, t0) = Engine::create(data, log, cfg, 0).into_parts();
    let (tree, t1) = e.create_tree(t0).into_parts();
    let mut now = e.checkpoint(t1);
    for i in 0..commits {
        now = e.put(tree, &key_of(i), &val_of(i), now);
        now = e.commit(now);
    }
    let outstanding = e.wal_outstanding_bytes();
    let cut = now + 1;
    let (d, l) = e.crash(cut);
    let wall0 = std::time::Instant::now();
    let recovered = Engine::recover(d, l, cfg, cut + 1).expect("recovery");
    let recovery_wall_ns = wall0.elapsed().as_nanos() as u64;
    let stats = recovered.stats;
    let (mut e2, t2) = recovered.into_parts();
    let (_, t3) = e2.get(tree, &key_of(commits - 1), t2).into_parts();
    Row {
        engine: "relstore",
        device,
        ckpt_interval: interval,
        commits,
        outstanding_bytes: outstanding,
        stats,
        recovery_wall_ns,
        ttfr_sim_ns: t3.saturating_sub(cut + 1),
    }
}

/// One document-store trial: single-set commit headers with every
/// `interval`-th header promoted to a checkpoint anchor.
fn doc_trial<D: BlockDevice>(
    dev: D,
    device: &'static str,
    barriers: bool,
    interval: u64,
    ops: u64,
) -> Row {
    let cfg = DocStoreConfig {
        batch_size: 1,
        barriers,
        file_blocks: 65_536,
        auto_compact_pct: 0,
        checkpoint_every_n_commits: interval,
    };
    let mut s = DocStore::create(dev, cfg);
    let mut now = 0;
    for i in 0..ops {
        now = s.set(&key_of(i), &val_of(i), now);
    }
    let outstanding = s.outstanding_bytes();
    let cut = now + 1;
    let dev = s.crash(cut);
    let wall0 = std::time::Instant::now();
    let recovered = DocStore::recover(dev, cfg, cut + 1);
    let recovery_wall_ns = wall0.elapsed().as_nanos() as u64;
    let stats = recovered.stats;
    let (mut s2, t2) = recovered.into_parts();
    let (_, t3) = s2.get(&key_of(ops - 1), t2).into_parts();
    Row {
        engine: "docstore",
        device,
        ckpt_interval: interval,
        commits: ops,
        outstanding_bytes: outstanding,
        stats,
        recovery_wall_ns,
        ttfr_sim_ns: t3.saturating_sub(cut + 1),
    }
}

fn render_json(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{{\"schema\":\"{RECOVERY_SCHEMA}\","));
    out.push_str(&format!(
        "\"profile\":\"{}\",",
        if cfg!(debug_assertions) { "debug" } else { "release" }
    ));
    out.push_str("\"rows\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"engine\":\"{}\",\"device\":\"{}\",\"ckpt_interval\":{},\"commits\":{},\
             \"outstanding_bytes\":{},\"replayed\":{},\"skipped\":{},\"torn\":{},\
             \"checkpoint_lsn\":{},\"recovery_wall_ns\":{},\"recovery_sim_ns\":{},\
             \"ttfr_sim_ns\":{}}}",
            r.engine,
            r.device,
            r.ckpt_interval,
            r.commits,
            r.outstanding_bytes,
            r.stats.replayed,
            r.stats.skipped,
            r.stats.torn,
            r.stats.checkpoint_lsn,
            r.recovery_wall_ns,
            r.stats.replay_ns,
            r.ttfr_sim_ns,
        ));
    }
    out.push_str("]}");
    out
}

fn main() {
    let commits = arg_u64("--commits", 3_000);
    let doc_ops = arg_u64("--doc-ops", 3_000);
    let out = arg_str("--out").unwrap_or_else(|| "BENCH_recovery.json".to_string());
    let check = arg_flag("--check");

    println!(
        "recovery: crash + time-to-first-read — {commits} relational commits, \
         {doc_ops} docstore sets, checkpoint intervals {INTERVALS:?}"
    );
    println!();
    println!(
        "{:<9} {:<13} {:>8} {:>9} {:>9} {:>5} {:>12} {:>12} {:>12}",
        "engine",
        "device",
        "ckpt_iv",
        "replayed",
        "skipped",
        "torn",
        "outstanding",
        "recovery",
        "ttfr"
    );
    rule(98);

    let mut rows = Vec::new();
    for interval in INTERVALS {
        // DuraSSD: the lean mount — no barriers, the capacitor carries it.
        rows.push(rel_trial(
            durassd_bench(true),
            durassd_bench(true),
            "durassd",
            false,
            interval,
            commits,
        ));
        // Volatile cache and spinning disk both need barriers to recover.
        rows.push(rel_trial(
            ssd_a_bench(true),
            ssd_a_bench(true),
            "ssd_volatile",
            true,
            interval,
            commits,
        ));
        rows.push(rel_trial(hdd_bench(true), hdd_bench(true), "hdd", true, interval, commits));
        rows.push(doc_trial(durassd_bench(true), "durassd", false, interval, doc_ops));
        rows.push(doc_trial(ssd_a_bench(true), "ssd_volatile", true, interval, doc_ops));
        rows.push(doc_trial(hdd_bench(true), "hdd", true, interval, doc_ops));
    }
    for r in &rows {
        println!(
            "{:<9} {:<13} {:>8} {:>9} {:>9} {:>5} {:>11}B {:>12} {:>12}",
            r.engine,
            r.device,
            r.ckpt_interval,
            r.stats.replayed,
            r.stats.skipped,
            r.stats.torn,
            r.outstanding_bytes,
            fmt_ns(r.stats.replay_ns),
            fmt_ns(r.ttfr_sim_ns),
        );
    }

    let doc = render_json(&rows);
    write_atomic(&out, &doc).expect("recovery output path is writable");
    println!();
    println!("wrote {out}");

    if check {
        let failures = validate_recovery_report(&doc);
        if failures.is_empty() {
            println!("check : OK (schema, device/interval coverage, checkpoint-bounded replay)");
        } else {
            for f in &failures {
                eprintln!("check FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
}

//! **Ablations** — the design choices DESIGN.md calls out, isolated:
//!
//! 1. Torn-page protection: double-write buffer vs PostgreSQL-style
//!    full-page-writes vs none (device-trusted), on throughput, log volume
//!    and media-write amplification.
//! 2. Write-cache coalescing: how much media traffic duplicate-write
//!    absorption saves under skewed rewrites (the §3.1.1 endurance claim).
//! 3. Backend bandwidth cap: sustained 4KB random-write IOPS vs the cap.
//! 4. Mapping-journal threshold: crash-loss window vs journal write traffic.
//! 5. Capacitor budget: the dump high-water mark vs cache size (§3.1 sizing).
//!
//! Run: `cargo run -p bench --release --bin ablation`

use bench::{durassd_bench, fmt_rate, rule, TelemetrySink};
use durassd::{Ssd, SsdConfig};
use relstore::{Engine, EngineConfig};
use storage::device::{BlockDevice, LOGICAL_PAGE};
use storage::volume::Volume;
use telemetry::Telemetry;
use workloads::fio::{run as fio_run, FioSpec};
use workloads::linkbench::{load, run, LinkBenchSpec};

fn torn_page_protection(sink: &mut TelemetrySink) {
    let tel = Telemetry::new();
    println!("1) Torn-page protection mechanisms (LinkBench, barriers ON, 4KB)\n");
    println!(
        "{:<22} {:>9} {:>12} {:>12} {:>10}",
        "mechanism", "TPS", "log MB", "media MB", "NAND/host"
    );
    rule(70);
    for (label, dwb, fpw) in [
        ("double-write", true, false),
        ("full-page-writes", false, true),
        ("none (DuraSSD)", false, false),
    ] {
        let nodes = 20_000u64;
        let ops = 8_000u64;
        let est = nodes * 900;
        let cfg = EngineConfig::builder(4096)
            .buffer_pool_bytes(est / 10)
            .double_write(dwb)
            .full_page_writes(fpw)
            .data_pages((est * 4 / 4096).max(8192))
            .log_file_blocks(16_384)
            .build();
        let (mut e, t0) =
            Engine::create(durassd_bench(true), durassd_bench(true), cfg, 0).into_parts();
        e.attach_telemetry(tel.clone());
        e.set_group_commit(true);
        let spec = LinkBenchSpec { warmup_ops: ops / 5, ops, ..LinkBenchSpec::scaled(nodes, ops) };
        let (mut g, t1) = load(&mut e, &spec, t0);
        let rep = run(&mut e, &mut g, &spec, t1);
        let log_mb = e.wal_stats().bytes_written as f64 / 1e6;
        let host = e.data_volume().device_stats().pages_written;
        let media = e.data_volume().device_stats().media_pages_written;
        println!(
            "{:<22} {:>9} {:>12.1} {:>12.1} {:>9.2}x",
            label,
            fmt_rate(rep.tps),
            log_mb,
            media as f64 * 4096.0 / 1e6,
            media as f64 / host.max(1) as f64
        );
    }
    println!();
    sink.add("1 torn-page protection", &tel);
}

fn coalescing(sink: &mut TelemetrySink) {
    let tel = Telemetry::new();
    println!("2) Write-cache coalescing under skewed rewrites (128 writers)\n");
    // Concurrent writers keep rewrites resident in the cache long enough to
    // coalesce — only the latest version of a hot page reaches flash.
    use simkit::ClosedLoop;
    let mut ssd = durassd_bench(true);
    ssd.attach_telemetry(tel.clone());
    let page = vec![9u8; LOGICAL_PAGE];
    let mut i = 0u64;
    let mut driver = ClosedLoop::new(128, 0);
    let rep = driver.run(20_000, |_, now| {
        i += 1;
        ssd.write(i % 64, &page, now).unwrap()
    });
    let _ = ssd.flush(rep.finished_at).unwrap();
    let s = ssd.stats();
    println!(
        "   20,000 host writes over 64 hot pages -> {} media slot writes",
        s.media_pages_written
    );
    println!(
        "   coalescing absorbed {:.1}% of the media traffic (endurance, §3.1.1)\n",
        100.0 * (1.0 - s.media_pages_written as f64 / s.pages_written as f64)
    );
    sink.add("2 coalescing", &tel);
}

fn backend_cap(sink: &mut TelemetrySink) {
    let tel = Telemetry::new();
    println!("3) Backend bandwidth cap vs sustained random-write IOPS (128 jobs, no barrier)\n");
    println!("{:<18} {:>12} {:>14}", "cap (MB/s)", "IOPS", "MB/s achieved");
    rule(48);
    for cap in [100u64, 200, 400] {
        let cfg = SsdConfig::durassd(bench::BENCH_BLOCKS_PER_PLANE)
            .to_builder()
            .backend_bytes_per_us(cap)
            .build();
        let mut vol = Volume::new(Ssd::new(cfg), false);
        vol.attach_telemetry(tel.clone(), &format!("cap{cap}"));
        let spec = FioSpec {
            jobs: 128,
            total_ops: 40_000,
            fsync_every: Some(1),
            ..FioSpec::random_write_4k(vol.capacity_pages() / 2, Some(1), 40_000)
        };
        let rep = fio_run(&mut vol, &spec, 0);
        println!(
            "{:<18} {:>12} {:>13.0}",
            cap,
            fmt_rate(rep.throughput()),
            rep.throughput() * 4096.0 / 1e6
        );
    }
    println!("   (the 200 MB/s default reproduces Table 2's nobarrier row)\n");
    sink.add("3 backend cap", &tel);
}

fn journal_threshold(sink: &mut TelemetrySink) {
    let tel = Telemetry::new();
    println!("4) FTL mapping-journal threshold: loss window vs journal traffic\n");
    println!("{:<22} {:>14} {:>16}", "threshold (entries)", "meta programs", "loss window");
    rule(56);
    for thresh in [256usize, 1024, 8192] {
        let cfg = SsdConfig::ssd_a(bench::BENCH_BLOCKS_PER_PLANE)
            .to_builder()
            .mapping_journal_threshold(thresh)
            .build();
        let mut ssd = Ssd::new(cfg);
        ssd.attach_telemetry(tel.clone());
        let page = vec![3u8; LOGICAL_PAGE];
        let mut now = 0;
        for i in 0..30_000u64 {
            now = ssd.write(i % 20_000, &page, now).unwrap();
        }
        println!(
            "{:<22} {:>14} {:>16}",
            thresh,
            ssd.ftl_stats().meta_programs,
            ssd.unpersisted_mapping_entries()
        );
    }
    println!("   (smaller threshold = smaller crash-loss window, more flash wear)\n");
    sink.add("4 journal threshold", &tel);
}

fn capacitor_budget(sink: &mut TelemetrySink) {
    let tel = Telemetry::new();
    println!("5) Capacitor dump sizing: high-water dump bytes vs cache capacity\n");
    let mut ssd = durassd_bench(true);
    ssd.attach_telemetry(tel.clone());
    let page = vec![5u8; LOGICAL_PAGE];
    let mut now = 0;
    for i in 0..30_000u64 {
        now = ssd.write(i % 8192, &page, now).unwrap();
    }
    // Cut at the busiest moment we can produce.
    ssd.power_cut(now);
    let s = ssd.ssd_stats();
    let cfg = *ssd.config();
    println!(
        "   cache capacity {} KB; dump at power cut: {} KB; capacitor budget {} KB",
        cfg.cache_slots * 4,
        s.max_dump_bytes / 1024,
        cfg.capacitor_energy_bytes / 1024
    );
    println!(
        "   headroom {:.1}x — the paper's 'dozens of megabytes' from 15 tantalum caps\n",
        cfg.capacitor_energy_bytes as f64 / s.max_dump_bytes.max(1) as f64
    );
    sink.add("5 capacitor budget", &tel);
}

fn main() {
    let mut sink = TelemetrySink::from_args();
    println!("Design-choice ablations\n=======================\n");
    torn_page_protection(&mut sink);
    coalescing(&mut sink);
    backend_cap(&mut sink);
    journal_threshold(&mut sink);
    capacitor_budget(&mut sink);
    sink.finish();
}

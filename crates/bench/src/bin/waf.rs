//! **waf** — write-provenance observatory: end-to-end write-amplification
//! attribution.
//!
//! Every page write in the stack now carries a [`WriteCause`] from the
//! engine that issued it down to the NAND program that retired it. This bin
//! runs three workloads — fio-style overwrite-heavy random writes, YCSB-A
//! on the document store, and a TPC-C slice on the relational engine — each
//! in two deployments:
//!
//! * **durable** — DuraSSD (capacitor-backed cache) with barriers OFF, the
//!   paper's deployment: fsync is a no-op because the cache itself is
//!   durable, so overwrites coalesce in DRAM and never reach flash;
//! * **volatile** — SSD-A (volatile cache) with barriers ON: every fsync is
//!   a real FLUSH CACHE, the cache drains constantly, and nothing is
//!   absorbed.
//!
//! Per row it reports host pages, media pages, WAF (media/host), the
//! overwrites the cache absorbed, and the full per-cause breakdown at both
//! boundaries. The per-cause counts must sum exactly to the totals — the
//! conservation invariant [`bench::schema::check_waf_report`] gates on —
//! so a write the attribution layer cannot explain fails `--check`.
//!
//! Flags: `--fio-ops N`, `--fio-span N`, `--ycsb-records N`, `--ycsb-ops N`,
//! `--warehouses N`, `--txns N`, `--out PATH` (default `BENCH_waf.json`),
//! `--check` (validate the written JSON; exit non-zero on violation).
//!
//! Run: `cargo run -p bench --release --bin waf`

use bench::schema::{check_waf_report, WAF_SCHEMA};
use bench::{arg_flag, arg_str, arg_u64, durassd_bench, rule, ssd_a_bench, write_atomic};
use docstore::{DocStore, DocStoreConfig};
use durassd::Ssd;
use relstore::{Engine, EngineConfig};
use storage::device::{BlockDevice, CauseCounts, DeviceStats, WriteCause};
use storage::volume::Volume;
use workloads::fio::FioSpec;
use workloads::{fio, tpcc, ycsb};

/// One workload × deployment cell of the observatory.
struct WafRow {
    workload: &'static str,
    mode: &'static str,
    device: &'static str,
    host_pages: u64,
    media_pages: u64,
    absorbed: u64,
    gc_erases: u64,
    wear_spread: u32,
    host_by_cause: CauseCounts,
    media_by_cause: CauseCounts,
}

impl WafRow {
    fn waf(&self) -> f64 {
        self.media_pages as f64 / self.host_pages.max(1) as f64
    }

    /// Share of host pages that died in DRAM instead of costing a program.
    fn absorption_pct(&self) -> f64 {
        100.0 * self.absorbed as f64 / self.host_pages.max(1) as f64
    }
}

/// Max-minus-min erase count across the NAND blocks of one SSD.
fn wear_spread(ssd: &Ssd) -> u32 {
    let profile = ssd.wear_profile();
    let min = profile.iter().map(|&(e, _)| e).min().unwrap_or(0);
    let max = profile.iter().map(|&(e, _)| e).max().unwrap_or(0);
    max - min
}

/// Fold one SSD's counters into a row (TPC-C calls this twice, once per
/// device, summing element-wise: conservation survives addition).
fn accumulate(row: &mut WafRow, ssd: &Ssd) {
    let s: DeviceStats = ssd.stats();
    row.host_pages += s.pages_written;
    row.media_pages += s.media_pages_written;
    row.absorbed += ssd.absorbed_overwrites();
    row.gc_erases += s.gc_erases;
    row.wear_spread = row.wear_spread.max(wear_spread(ssd));
    for c in WriteCause::ALL {
        row.host_by_cause[c.index()] += s.pages_by_cause[c.index()];
        row.media_by_cause[c.index()] += s.media_pages_by_cause[c.index()];
    }
}

fn empty_row(workload: &'static str, mode: &'static str, device: &'static str) -> WafRow {
    WafRow {
        workload,
        mode,
        device,
        host_pages: 0,
        media_pages: 0,
        absorbed: 0,
        gc_erases: 0,
        wear_spread: 0,
        host_by_cause: CauseCounts::default(),
        media_by_cause: CauseCounts::default(),
    }
}

/// The device under test for one deployment mode: DuraSSD (nobarrier) or
/// SSD-A (barriers). Returns the device and whether barriers are honoured.
fn device_for(durable: bool) -> (Ssd, bool, &'static str) {
    if durable {
        (durassd_bench(true), false, "durassd")
    } else {
        (ssd_a_bench(true), true, "ssd_a")
    }
}

/// fio-style 4KB random writes over a deliberately small span (default
/// 2048 blocks = 8MB) with an fsync after every write — the strictest
/// durability demand. The volatile deployment turns each fsync into a full
/// cache drain, so no overwrite can ever find a still-dirty slot (absorbed
/// is exactly zero); the durable deployment acknowledges fsync from the
/// capacitor-backed cache and keeps coalescing.
fn fio_row(durable: bool, ops: u64, span: u64) -> WafRow {
    let (dev, barriers, device) = device_for(durable);
    let mut vol = Volume::new(dev, barriers);
    let spec = FioSpec::random_write_4k(span, Some(1), ops);
    fio::run(&mut vol, &spec, 0);
    let mut row =
        empty_row("fio_overwrite_4k", if durable { "durable" } else { "volatile" }, device);
    accumulate(&mut row, vol.device());
    row
}

/// YCSB-A (50/50 read/update) on the couchstore-style document store. The
/// append space rewrites its partial tail block on every batch, so the same
/// LPNs are overwritten continuously — absorbed in DRAM when durable.
fn ycsb_row(durable: bool, records: u64, ops: u64) -> WafRow {
    let (dev, barriers, device) = device_for(durable);
    let cfg = DocStoreConfig {
        batch_size: 10,
        barriers,
        file_blocks: 200_000,
        auto_compact_pct: 0,
        checkpoint_every_n_commits: 8,
    };
    let mut store = DocStore::create(dev, cfg);
    let spec = ycsb::YcsbSpec::workload_a(records, ops);
    let t0 = ycsb::load(&mut store, &spec, 0);
    ycsb::run(&mut store, &spec, t0);
    let mut row =
        empty_row("ycsb_a_docstore", if durable { "durable" } else { "volatile" }, device);
    accumulate(&mut row, store.device());
    row
}

/// A TPC-C slice on the relational engine: WAL appends and double-write
/// page images on the log device, home-page writes on the data device. The
/// row sums both devices, so the per-cause split shows the whole engine.
fn tpcc_row(durable: bool, warehouses: u32, txns: u64) -> WafRow {
    let (data, barriers, device) = device_for(durable);
    let (log, _, _) = device_for(durable);
    let spec = tpcc::TpccSpec { clients: 8, ..tpcc::TpccSpec::scaled(warehouses, txns) };
    let est = warehouses as u64
        * (spec.items as u64 * 300 + spec.districts as u64 * spec.customers as u64 * 470 + 40_960);
    let ecfg = EngineConfig::builder(4096)
        .buffer_pool_bytes((est / 10).max(512 * 1024))
        .barriers(barriers)
        .data_pages((est * 4 / 4096).max(16_384))
        .log_file_blocks(8_192)
        .build();
    let (mut engine, t0) = Engine::create(data, log, ecfg, 0).into_parts();
    let (mut db, t1) = tpcc::load(&mut engine, &spec, t0);
    tpcc::run(&mut engine, &mut db, &spec, t1);
    let mut row = empty_row("tpcc_relstore", if durable { "durable" } else { "volatile" }, device);
    accumulate(&mut row, engine.data_volume().device());
    accumulate(&mut row, engine.log_volume().device());
    row
}

fn by_cause_json(counts: &CauseCounts) -> String {
    let mut out = String::from("{");
    for (i, c) in WriteCause::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", c.label(), counts[c.index()]));
    }
    out.push('}');
    out
}

fn render_json(rows: &[WafRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{{\"schema\":\"{WAF_SCHEMA}\",\"rows\":["));
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"workload\":\"{}\",\"mode\":\"{}\",\"device\":\"{}\",\
             \"host_pages\":{},\"media_pages\":{},\"waf\":{:.4},\
             \"absorbed_overwrites\":{},\"absorption_pct\":{:.2},\
             \"gc_erases\":{},\"wear_spread\":{},\
             \"host_by_cause\":{},\"media_by_cause\":{}}}",
            r.workload,
            r.mode,
            r.device,
            r.host_pages,
            r.media_pages,
            r.waf(),
            r.absorbed,
            r.absorption_pct(),
            r.gc_erases,
            r.wear_spread,
            by_cause_json(&r.host_by_cause),
            by_cause_json(&r.media_by_cause),
        ));
    }
    out.push_str("]}");
    out
}

fn main() {
    let fio_ops = arg_u64("--fio-ops", 40_000);
    let fio_span = arg_u64("--fio-span", 2_048);
    let ycsb_records = arg_u64("--ycsb-records", 1_000);
    let ycsb_ops = arg_u64("--ycsb-ops", 6_000);
    let warehouses = arg_u64("--warehouses", 1) as u32;
    let txns = arg_u64("--txns", 300);
    let out = arg_str("--out").unwrap_or_else(|| "BENCH_waf.json".to_string());
    let check = arg_flag("--check");

    println!(
        "waf: write-provenance observatory — fio {fio_ops} ops over {fio_span} blocks, \
         YCSB-A {ycsb_records} recs/{ycsb_ops} ops, TPC-C {warehouses} wh/{txns} txns"
    );
    println!("durable = DuraSSD nobarrier; volatile = SSD-A with barriers\n");

    let rows = vec![
        fio_row(true, fio_ops, fio_span),
        fio_row(false, fio_ops, fio_span),
        ycsb_row(true, ycsb_records, ycsb_ops),
        ycsb_row(false, ycsb_records, ycsb_ops),
        tpcc_row(true, warehouses, txns),
        tpcc_row(false, warehouses, txns),
    ];

    println!(
        "{:<18} {:<9} {:>10} {:>10} {:>6} {:>10} {:>8} {:>6}",
        "workload", "mode", "host pgs", "media pgs", "waf", "absorbed", "absorb%", "wear"
    );
    rule(84);
    for r in &rows {
        println!(
            "{:<18} {:<9} {:>10} {:>10} {:>6.2} {:>10} {:>7.1}% {:>6}",
            r.workload,
            r.mode,
            r.host_pages,
            r.media_pages,
            r.waf(),
            r.absorbed,
            r.absorption_pct(),
            r.wear_spread,
        );
    }
    println!();
    // The attribution story: where every media page came from, per row.
    for r in &rows {
        let mut parts = Vec::new();
        for c in WriteCause::ALL {
            let n = r.media_by_cause[c.index()];
            if n > 0 {
                parts.push(format!("{} {n}", c.label()));
            }
        }
        println!("{:<18} {:<9} media by cause: {}", r.workload, r.mode, parts.join("  "));
    }

    let doc = render_json(&rows);
    write_atomic(&out, &doc).expect("waf output path is writable");
    println!("\nwrote {out}");

    if check {
        let failures = check_waf_report(&doc);
        if failures.is_empty() {
            println!("check : OK (schema, conservation, durable ≥ volatile absorption)");
        } else {
            for f in &failures {
                eprintln!("check FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
}

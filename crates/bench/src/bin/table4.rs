//! **Table 4** — TPC-C throughput (tpmC) on the commercial-DBMS
//! configuration: write barriers ON/OFF × page sizes 16/8/4KB.
//!
//! The commercial engine of §4.3.2 opens files with O_DSYNC (a barrier
//! request for every page write) and runs a small buffer pool (2GB against
//! a 100GB database — 2%), which is why its barrier-off gain (15–23x) is
//! even larger than MySQL's.
//!
//! Run: `cargo run -p bench --release --bin table4 [--warehouses N] [--txns N]`

use bench::{arg_u64, durassd_bench, fmt_rate, print_telemetry, rule, TelemetrySink};
use relstore::{Engine, EngineConfig};
use telemetry::Telemetry;
use workloads::tpcc::{load, run, TpccSpec};

const PAPER_ON: [u64; 3] = [4_291, 4_845, 7_729];
const PAPER_OFF: [u64; 3] = [65_809, 110_400, 150_815];

fn run_cell(barriers: bool, page_size: usize, warehouses: u32, txns: u64, tel: &Telemetry) -> f64 {
    // DB size scales with warehouses; the commercial setup's buffer is 2%
    // of the database (2GB : 100GB).
    let spec = TpccSpec { clients: 64, ..TpccSpec::scaled(warehouses, txns) };
    let est_db_bytes = warehouses as u64
        * (spec.items as u64 * 300
            + spec.districts as u64 * spec.customers as u64 * 470
            + 40 * 1024);
    let cfg = EngineConfig::commercial_like(page_size)
        .to_builder()
        .buffer_pool_bytes((est_db_bytes / 20).max(1536 * 1024))
        .barriers(barriers)
        .data_pages((est_db_bytes * 4 / page_size as u64).max(16384))
        .log_file_blocks(8192)
        .build();
    let (mut engine, t0) =
        Engine::create(durassd_bench(true), durassd_bench(true), cfg, 0).into_parts();
    engine.set_group_commit(true);
    let (mut db, t1) = load(&mut engine, &spec, t0);
    engine.attach_telemetry(tel.clone()); // after load: measure the run only
    let rep = run(&mut engine, &mut db, &spec, t1);
    rep.tpmc
}

fn main() {
    let mut sink = TelemetrySink::from_args();
    let warehouses = arg_u64("--warehouses", 8) as u32;
    let txns = arg_u64("--txns", 20_000);
    println!("Table 4: TPC-C throughput (tpmC), commercial-DBMS configuration");
    println!("({warehouses} warehouses, {txns} transactions, O_DSYNC writes)\n");
    println!("{:<14} {:>10} {:>10} {:>10}", "Barrier", "16KB", "8KB", "4KB");
    rule(48);
    for (label, barriers, paper) in
        [("Barrier On", true, PAPER_ON), ("Barrier Off", false, PAPER_OFF)]
    {
        let tel = Telemetry::new();
        let mut row = Vec::new();
        for page_size in [16384usize, 8192, 4096] {
            let t = if barriers { txns / 4 } else { txns };
            row.push(run_cell(barriers, page_size, warehouses, t, &tel));
        }
        println!(
            "{:<14} {:>10} {:>10} {:>10}",
            label,
            fmt_rate(row[0]),
            fmt_rate(row[1]),
            fmt_rate(row[2])
        );
        println!(
            "{:<14} {:>10} {:>10} {:>10}   <- paper",
            "",
            fmt_rate(paper[0] as f64),
            fmt_rate(paper[1] as f64),
            fmt_rate(paper[2] as f64)
        );
        print_telemetry("      ", &tel, &["engine.commit", "engine.put"]);
        sink.add(label, &tel);
    }
    sink.finish();
}

//! **Figure 5** — LinkBench transaction throughput under the four
//! write-barrier × double-write-buffer configurations, at page sizes
//! 16/8/4KB, on DuraSSD (data + log devices).
//!
//! The paper's headline shapes this reproduces:
//! * turning the write barrier OFF is the big win (~6x at 4KB);
//! * turning double-write OFF gains ~2x with barriers on, ~25% with them off;
//! * best (OFF/OFF, 4KB) vs worst (ON/ON, 16KB) exceeds an order of
//!   magnitude;
//! * with barriers ON, 4KB is *not* better than 8KB (the deeper-B+-tree
//!   anomaly the paper calls out).
//!
//! Run: `cargo run -p bench --release --bin fig5 [--nodes N] [--ops N]`

use bench::{arg_u64, durassd_bench, fmt_rate, print_telemetry, rule, TelemetrySink};
use relstore::{Engine, EngineConfig};
use telemetry::Telemetry;
use workloads::linkbench::{load, run, LinkBenchSpec};

/// Approximate bar heights read off the paper's Figure 5 (TPS).
const PAPER: &[(&str, [u64; 3])] = &[
    ("ON  / ON ", [1_500, 2_700, 2_500]),
    ("ON  / OFF", [3_100, 5_300, 4_900]),
    ("OFF / ON ", [11_000, 17_000, 26_000]),
    ("OFF / OFF", [14_000, 21_000, 33_000]),
];

fn run_cell(
    barriers: bool,
    double_write: bool,
    page_size: usize,
    nodes: u64,
    ops: u64,
    tel: &Telemetry,
) -> (f64, f64) {
    // DB:buffer ratio ~10:1, like the paper's 100GB DB / 10GB pool. A
    // loaded graph costs ~900B/node across the three trees (with B+-tree
    // fill factor); the tablespace gets generous headroom for churn.
    let est_db_bytes = nodes * 900;
    let cfg = EngineConfig::builder(page_size)
        .buffer_pool_bytes(est_db_bytes / 10)
        .double_write(double_write)
        .barriers(barriers)
        .data_pages((est_db_bytes * 4 / page_size as u64).max(8192))
        .log_file_blocks(8192) // 32MB each
        .build();
    let data = durassd_bench(true);
    let log = durassd_bench(true);
    let (mut engine, t0) = Engine::create(data, log, cfg, 0).into_parts();
    engine.set_group_commit(true);
    let spec = LinkBenchSpec { warmup_ops: ops / 5, ops, ..LinkBenchSpec::scaled(nodes, ops) };
    let (mut graph, t1) = load(&mut engine, &spec, t0);
    engine.attach_telemetry(tel.clone()); // after load: measure the run only
    let rep = run(&mut engine, &mut graph, &spec, t1);
    (rep.tps, engine.miss_ratio())
}

fn main() {
    let mut sink = TelemetrySink::from_args();
    let nodes = arg_u64("--nodes", 60_000);
    let ops = arg_u64("--ops", 30_000);
    println!("Figure 5: LinkBench TPS, write-barrier / double-write grid");
    println!("({nodes} nodes, {ops} measured ops, 128 clients)\n");
    println!("{:<12} {:>9} {:>9} {:>9}", "Barr/DWB", "16KB", "8KB", "4KB");
    rule(42);
    for (label, paper) in PAPER {
        let barriers = label.starts_with("ON");
        let double_write = label.ends_with("ON ");
        let tel = Telemetry::new();
        let mut tps = Vec::new();
        for page_size in [16384usize, 8192, 4096] {
            let (v, _) = run_cell(barriers, double_write, page_size, nodes, ops, &tel);
            tps.push(v);
        }
        println!(
            "{:<12} {:>9} {:>9} {:>9}",
            label,
            fmt_rate(tps[0]),
            fmt_rate(tps[1]),
            fmt_rate(tps[2])
        );
        println!(
            "{:<12} {:>9} {:>9} {:>9}   <- paper (approx from figure)",
            "",
            fmt_rate(paper[0] as f64),
            fmt_rate(paper[1] as f64),
            fmt_rate(paper[2] as f64)
        );
        print_telemetry("    ", &tel, &["engine.commit", "engine.get"]);
        sink.add(label.trim_end(), &tel);
    }
    sink.finish();
    println!(
        "\nThe barrier rows pay their time to `wal` (commit fsyncs that drain the\n\
         device cache) and their commit p50 sits in the milliseconds; the OFF\n\
         rows run the same commits with `flush`/`wal` near 0% — the durable\n\
         cache absorbs durability."
    );
}

//! **Table 1** — Effect of fsync and flush-cache on 4KB random-write IOPS.
//!
//! Reproduces the paper's grid: four devices (HDD, SSD-A, SSD-B, DuraSSD) ×
//! storage cache OFF/ON × fsync every {1,4,8,16,32,64,128,256,∞} writes,
//! plus the DuraSSD `NoBarrier` row where fsync never sends FLUSH CACHE.
//!
//! Run: `cargo run -p bench --release --bin table1 [--ops N]`

use bench::{
    durassd_bench, fmt_rate, hdd_bench, print_telemetry, rule, ssd_a_bench, ssd_b_bench,
    ssd_health_line, TelemetrySink,
};
use forensics::{DeviceHealth, Forensic};
use storage::device::BlockDevice;
use storage::volume::Volume;
use telemetry::Telemetry;
use workloads::fio::{run, FioSpec};

const FREQS: [Option<u32>; 9] =
    [Some(1), Some(4), Some(8), Some(16), Some(32), Some(64), Some(128), Some(256), None];

/// Paper Table 1 values, for side-by-side printing.
const PAPER: &[(&str, [u64; 9])] = &[
    ("HDD        OFF", [58, 111, 130, 143, 151, 155, 156, 157, 158]),
    ("HDD        ON ", [59, 135, 184, 234, 251, 335, 375, 381, 387]),
    ("SSD-A      OFF", [168, 332, 397, 441, 463, 479, 480, 490, 494]),
    ("SSD-A      ON ", [256, 759, 1297, 2219, 3595, 5094, 6794, 8782, 11681]),
    ("SSD-B      OFF", [603, 732, 889, 995, 1042, 1082, 1114, 1124, 1157]),
    ("SSD-B      ON ", [655, 1762, 2319, 3152, 4046, 5177, 6318, 8575, 8456]),
    ("DuraSSD    OFF", [249, 330, 438, 467, 482, 490, 495, 497, 498]),
    ("DuraSSD    ON ", [225, 836, 1556, 2556, 5020, 6969, 10582, 12647, 15319]),
    ("DuraSSD NoBarr", [14484, 14800, 14813, 14824, 14840, 14863, 15063, 15181, 15458]),
];

fn measure<D: BlockDevice + Forensic>(
    dev: D,
    barriers: bool,
    fsync_every: Option<u32>,
    ops: u64,
    tel: &Telemetry,
) -> (f64, Option<DeviceHealth>) {
    let mut vol = Volume::new(dev, barriers);
    vol.attach_telemetry(tel.clone(), "t1");
    // Random writes over most of the device, like fio on a raw drive (for
    // the disk, the span determines seek distances).
    let span = vol.capacity_pages() * 3 / 4;
    let spec = FioSpec::random_write_4k(span, fsync_every, ops);
    let rep = run(&mut vol, &spec, 0);
    (rep.throughput(), vol.device().health())
}

fn ops_for(row: &str, fsync_every: Option<u32>) -> u64 {
    let base = bench::arg_u64("--ops", 20_000);
    // Slow cells (mechanical or flush-per-write) need fewer ops for a
    // stable mean; fast cells get the full count.
    match (row.starts_with("HDD"), fsync_every) {
        // The disk's cache (4096 pages) must saturate for sustained rates.
        (true, None) => base,
        (true, Some(n)) if n >= 64 => base,
        (true, _) => base / 10,
        (false, Some(n)) if n <= 8 => base / 4,
        _ => base,
    }
}

fn main() {
    let mut sink = TelemetrySink::from_args();
    println!("Table 1: 4KB random-write IOPS vs fsync frequency");
    println!("(paper value / measured value per cell)\n");
    let hdr = FREQS
        .iter()
        .map(|f| match f {
            Some(n) => format!("{n:>7}"),
            None => "  no-fs".to_string(),
        })
        .collect::<Vec<_>>()
        .join(" ");
    println!("{:<16} {hdr}", "Device/Cache");
    rule(16 + 8 * FREQS.len());
    for (row, paper_vals) in PAPER {
        // One telemetry domain per device row: the stall mix is a property
        // of the device/barrier combination, aggregated across fsync freqs.
        let tel = Telemetry::new();
        let mut cells = Vec::new();
        let mut health: Option<DeviceHealth> = None;
        for (i, &freq) in FREQS.iter().enumerate() {
            let ops = ops_for(row, freq);
            let (iops, h) = match *row {
                "HDD        OFF" => measure(hdd_bench(false), true, freq, ops, &tel),
                "HDD        ON " => measure(hdd_bench(true), true, freq, ops, &tel),
                "SSD-A      OFF" => measure(ssd_a_bench(false), true, freq, ops, &tel),
                "SSD-A      ON " => measure(ssd_a_bench(true), true, freq, ops, &tel),
                "SSD-B      OFF" => measure(ssd_b_bench(false), true, freq, ops, &tel),
                "SSD-B      ON " => measure(ssd_b_bench(true), true, freq, ops, &tel),
                "DuraSSD    OFF" => measure(durassd_bench(false), true, freq, ops, &tel),
                "DuraSSD    ON " => measure(durassd_bench(true), true, freq, ops, &tel),
                "DuraSSD NoBarr" => measure(durassd_bench(true), false, freq, ops, &tel),
                _ => unreachable!(),
            };
            health = h.or(health);
            cells.push(format!("{:>7}", fmt_rate(iops)));
            let _ = paper_vals[i];
        }
        println!("{:<16} {}", row, cells.join(" "));
        let paper_row =
            paper_vals.iter().map(|v| format!("{:>7}", fmt_rate(*v as f64))).collect::<Vec<_>>();
        println!("{:<16} {}   <- paper", "", paper_row.join(" "));
        print_telemetry("      ", &tel, &["dev.t1.write", "dev.t1.flush"]);
        if let Some(h) = &health {
            println!("      {}", ssd_health_line(h));
        }
        sink.add(row.trim_end(), &tel);
    }
    sink.finish();
    println!(
        "\nNote the attribution shift: barriered rows burn their time in `flush`,\n\
         while `DuraSSD NoBarr` spends ~0% there — the durable cache absorbs it."
    );
}

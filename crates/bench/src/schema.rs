//! Structural validators for every machine-readable artifact the bench bins
//! write.
//!
//! Four bins emit schema-tagged JSON documents at the repo root — `perf`
//! (`BENCH_perf.json`), `recovery` (`BENCH_recovery.json`), `crashmatrix`
//! (`--json`), and `waf` (`BENCH_waf.json`) — and each offers a `--check`
//! flag that `ci.sh` runs as a regression gate. The checks used to live next
//! to each bin (and one in the forensics crate), three hand-rolled copies of
//! the same parse / tag / walk-the-rows skeleton. This module is the single
//! home: one helper set, one validator per schema, every validator returning
//! the full list of violations (empty = valid) so a gate can print them all
//! instead of the first.

use std::collections::BTreeMap;
use storage::device::WriteCause;
use telemetry::JsonValue;

/// Schema tag for `BENCH_perf.json` (the `perf` bin).
pub const PERF_SCHEMA: &str = "durassd.perf.v1";
/// Schema tag for `BENCH_recovery.json` (the `recovery` bin).
pub const RECOVERY_SCHEMA: &str = "durassd.recovery.v1";
/// Schema tag for crash-campaign reports (`crashmatrix --json`).
pub const FORENSICS_SCHEMA: &str = "durassd.forensics.v1";
/// Schema tag for `BENCH_waf.json` (the `waf` bin).
pub const WAF_SCHEMA: &str = "durassd.waf.v1";
/// Schema tag for `BENCH_latency.json` (the `latency` bin) and the `tail`
/// bin's `--json` output.
pub const LATENCY_SCHEMA: &str = "durassd.latency.v1";

type Obj = BTreeMap<String, JsonValue>;

/// Parse `doc` and return the top-level object, or the single fatal failure.
fn top_object(doc: &str, what: &str) -> Result<JsonValue, Vec<String>> {
    let v = telemetry::parse_json(doc).map_err(|e| vec![format!("{what} does not parse: {e}")])?;
    if v.as_object().is_none() {
        return Err(vec![format!("{what}: top level is not an object")]);
    }
    Ok(v)
}

/// Check the `schema` tag, appending a violation when it is absent or wrong.
fn check_tag(obj: &Obj, want: &str, failures: &mut Vec<String>) {
    match obj.get("schema").and_then(|s| s.as_str()) {
        Some(s) if s == want => {}
        other => failures.push(format!("schema tag {other:?}, want {want:?}")),
    }
}

/// Fetch a numeric field as f64 (accepts any JSON number).
fn num(row: &Obj, key: &str) -> Option<f64> {
    row.get(key).and_then(|v| v.as_f64())
}

/// Validate a serialized `BENCH_perf.json` document: parses, carries the
/// [`PERF_SCHEMA`] tag, and every scenario has positive finite wall and sim
/// throughput.
pub fn check_perf_report(doc: &str) -> Vec<String> {
    let v = match top_object(doc, "BENCH_perf.json") {
        Ok(v) => v,
        Err(f) => return f,
    };
    let obj = v.as_object().expect("checked by top_object");
    let mut failures = Vec::new();
    check_tag(obj, PERF_SCHEMA, &mut failures);
    match obj.get("scenarios").and_then(|s| s.as_array()) {
        None => failures.push("scenarios array missing".into()),
        Some(list) if list.is_empty() => failures.push("scenarios array empty".into()),
        Some(list) => {
            for s in list {
                let Some(s) = s.as_object() else {
                    failures.push("scenario is not an object".into());
                    continue;
                };
                let name = s.get("name").and_then(|v| v.as_str()).unwrap_or("?");
                for key in ["wall_ops_per_sec", "sim_ops_per_sec"] {
                    match num(s, key) {
                        Some(x) if x.is_finite() && x > 0.0 => {}
                        other => {
                            failures.push(format!("{name}.{key} = {other:?}: want finite positive"))
                        }
                    }
                }
                for key in ["ops", "wall_ns", "sim_ns"] {
                    match num(s, key) {
                        Some(x) if x > 0.0 => {}
                        other => failures.push(format!("{name}.{key} = {other:?}: want positive")),
                    }
                }
            }
        }
    }
    failures
}

/// Validate a serialized `BENCH_recovery.json` document:
///
/// - parses as JSON, carries the [`RECOVERY_SCHEMA`] tag;
/// - a non-empty `rows` array covering ≥ 3 distinct devices and ≥ 2
///   distinct checkpoint intervals;
/// - every row has non-negative counters, a positive simulated recovery
///   time, and a time-to-first-read no smaller than the recovery time;
/// - the DuraSSD relational rows actually exercise checkpoint-bounded
///   replay: at least one record replayed *and* at least one skipped.
pub fn check_recovery_report(doc: &str) -> Vec<String> {
    let v = match top_object(doc, "recovery report") {
        Ok(v) => v,
        Err(f) => return f,
    };
    let obj = v.as_object().expect("checked by top_object");
    let mut failures = Vec::new();
    check_tag(obj, RECOVERY_SCHEMA, &mut failures);
    let Some(rows) = obj.get("rows").and_then(|r| r.as_array()) else {
        failures.push("rows array missing".into());
        return failures;
    };
    if rows.is_empty() {
        failures.push("rows array empty".into());
        return failures;
    }
    let mut devices = std::collections::BTreeSet::new();
    let mut intervals = std::collections::BTreeSet::new();
    for (i, row) in rows.iter().enumerate() {
        let Some(row) = row.as_object() else {
            failures.push(format!("rows[{i}] is not an object"));
            continue;
        };
        let engine = row.get("engine").and_then(|v| v.as_str()).unwrap_or("?");
        let device = row.get("device").and_then(|v| v.as_str()).unwrap_or("?");
        devices.insert(device.to_string());
        if let Some(iv) = num(row, "ckpt_interval") {
            intervals.insert(iv as u64);
        } else {
            failures.push(format!("{engine}/{device}: ckpt_interval missing"));
        }
        for key in ["replayed", "skipped", "torn", "outstanding_bytes", "recovery_wall_ns"] {
            match num(row, key) {
                Some(x) if x >= 0.0 && x.is_finite() => {}
                other => failures
                    .push(format!("{engine}/{device}.{key} = {other:?}: want finite non-negative")),
            }
        }
        let rec_sim = num(row, "recovery_sim_ns");
        match rec_sim {
            Some(x) if x > 0.0 => {}
            other => {
                failures.push(format!("{engine}/{device}.recovery_sim_ns = {other:?}: want > 0"))
            }
        }
        match (num(row, "ttfr_sim_ns"), rec_sim) {
            (Some(ttfr), Some(rec)) if ttfr >= rec => {}
            (ttfr, rec) => failures.push(format!(
                "{engine}/{device}: ttfr_sim_ns {ttfr:?} must be ≥ recovery_sim_ns {rec:?}"
            )),
        }
        if engine == "relstore" && device == "durassd" {
            // The headline claim: recovery on DuraSSD is checkpoint-bounded
            // logical replay — some records replayed, the pre-checkpoint
            // prefix skipped.
            if num(row, "replayed").unwrap_or(0.0) < 1.0 {
                failures.push(format!("{engine}/{device}: expected ≥ 1 replayed record"));
            }
            if num(row, "skipped").unwrap_or(0.0) < 1.0 {
                failures.push(format!("{engine}/{device}: expected ≥ 1 skipped record"));
            }
        }
    }
    if devices.len() < 3 {
        failures.push(format!("want ≥ 3 distinct devices, got {devices:?}"));
    }
    if intervals.len() < 2 {
        failures.push(format!("want ≥ 2 distinct checkpoint intervals, got {intervals:?}"));
    }
    failures
}

const LOSS_CLASSES: [&str; 4] = ["acked-lost", "torn", "stale", "never-acked"];
const LOSS_LAYERS: [&str; 6] = [
    "cache-slot",
    "channel-queue",
    "lazy-ftl-map",
    "hdd-write-cache",
    "host-in-flight",
    "unattributed",
];

/// Structurally validate a `durassd.forensics.v1` crash-campaign document.
/// Checks the schema tag, that every row carries a tally / verdict /
/// postmortems, and that every loss row has a known classification and
/// layer attribution. Stops at the first problem (the walk is deep; later
/// findings would mostly repeat it).
pub fn check_forensics_report(doc: &str) -> Vec<String> {
    match forensics_first_problem(doc) {
        Ok(()) => Vec::new(),
        Err(e) => vec![e],
    }
}

fn forensics_first_problem(doc: &str) -> Result<(), String> {
    let v = telemetry::parse_json(doc).map_err(|e| format!("not valid JSON: {e}"))?;
    let obj = v.as_object().ok_or("top level is not an object")?;
    match obj.get("schema").and_then(|s| s.as_str()) {
        Some(s) if s == FORENSICS_SCHEMA => {}
        Some(s) => return Err(format!("unknown schema {s:?}, expected {FORENSICS_SCHEMA:?}")),
        None => return Err("missing schema tag".into()),
    }
    for key in ["seed", "keys", "cuts"] {
        obj.get(key).and_then(|n| n.as_u64()).ok_or(format!("missing numeric {key:?}"))?;
    }
    let rows = obj.get("rows").and_then(|r| r.as_array()).ok_or("missing rows array")?;
    if rows.is_empty() {
        return Err("rows array is empty".into());
    }
    for (i, row) in rows.iter().enumerate() {
        let r = row.as_object().ok_or(format!("row {i} is not an object"))?;
        let label =
            r.get("label").and_then(|l| l.as_str()).ok_or(format!("row {i} missing label"))?;
        let tally = r
            .get("tally")
            .and_then(|t| t.as_object())
            .ok_or(format!("row {label:?} missing tally"))?;
        for key in ["survived", "acked_lost", "torn", "stale", "never_acked"] {
            tally
                .get(key)
                .and_then(|n| n.as_u64())
                .ok_or(format!("row {label:?} tally missing {key:?}"))?;
        }
        r.get("verdict")
            .and_then(|s| s.as_str())
            .ok_or(format!("row {label:?} missing verdict"))?;
        r.get("cut_phase")
            .and_then(|s| s.as_str())
            .ok_or(format!("row {label:?} missing cut_phase"))?;
        let pms = r
            .get("postmortems")
            .and_then(|p| p.as_array())
            .ok_or(format!("row {label:?} missing postmortems"))?;
        for pm in pms {
            let p = pm.as_object().ok_or(format!("row {label:?}: postmortem not an object"))?;
            for key in ["device", "protection"] {
                p.get(key)
                    .and_then(|s| s.as_str())
                    .ok_or(format!("row {label:?} postmortem missing {key:?}"))?;
            }
            for key in ["dirty_slots", "discarded_dirty_slots", "nand_shorn_pages"] {
                p.get(key)
                    .and_then(|n| n.as_u64())
                    .ok_or(format!("row {label:?} postmortem missing {key:?}"))?;
            }
        }
        let losses = r
            .get("losses")
            .and_then(|l| l.as_array())
            .ok_or(format!("row {label:?} missing losses"))?;
        for loss in losses {
            let l = loss.as_object().ok_or(format!("row {label:?}: loss not an object"))?;
            l.get("unit")
                .and_then(|s| s.as_str())
                .ok_or_else(|| "loss missing unit".to_string())?;
            let class = l
                .get("classification")
                .and_then(|s| s.as_str())
                .ok_or(format!("row {label:?}: loss missing classification"))?;
            if !LOSS_CLASSES.contains(&class) {
                return Err(format!("row {label:?}: unknown classification {class:?}"));
            }
            let layer = l
                .get("layer")
                .and_then(|s| s.as_str())
                .ok_or(format!("row {label:?}: loss missing layer"))?;
            if !LOSS_LAYERS.contains(&layer) {
                return Err(format!("row {label:?}: unknown layer {layer:?}"));
            }
            l.get("evidence")
                .and_then(|s| s.as_str())
                .ok_or(format!("row {label:?}: loss missing evidence"))?;
        }
    }
    Ok(())
}

/// Validate a serialized `BENCH_waf.json` document:
///
/// - parses as JSON, carries the [`WAF_SCHEMA`] tag;
/// - a non-empty `rows` array covering ≥ 3 distinct workloads, each present
///   in both a `durable` and a `volatile` row;
/// - every row has positive host and media page counts, a finite positive
///   `waf`, and an `absorption_pct` in `[0, 100]`;
/// - per-row provenance conservation: the `media_by_cause` object carries
///   exactly the [`WriteCause::ALL`] labels and its values sum to
///   `media_pages` (and `host_by_cause` likewise to `host_pages`) — a write
///   the attribution layer cannot explain fails the gate;
/// - at least one durable row absorbed overwrites, and for every workload
///   the durable row absorbs at least as much as its volatile twin (the
///   paper's claim, stated as an inequality so it is scale-independent).
pub fn check_waf_report(doc: &str) -> Vec<String> {
    let v = match top_object(doc, "BENCH_waf.json") {
        Ok(v) => v,
        Err(f) => return f,
    };
    let obj = v.as_object().expect("checked by top_object");
    let mut failures = Vec::new();
    check_tag(obj, WAF_SCHEMA, &mut failures);
    let Some(rows) = obj.get("rows").and_then(|r| r.as_array()) else {
        failures.push("rows array missing".into());
        return failures;
    };
    if rows.is_empty() {
        failures.push("rows array empty".into());
        return failures;
    }
    let mut workloads = std::collections::BTreeSet::new();
    // workload → (durable absorbed, volatile absorbed)
    let mut absorbed: BTreeMap<String, (Option<f64>, Option<f64>)> = BTreeMap::new();
    for (i, row) in rows.iter().enumerate() {
        let Some(row) = row.as_object() else {
            failures.push(format!("rows[{i}] is not an object"));
            continue;
        };
        let workload = row.get("workload").and_then(|v| v.as_str()).unwrap_or("?");
        let mode = row.get("mode").and_then(|v| v.as_str()).unwrap_or("?");
        let tag = format!("{workload}/{mode}");
        if !["durable", "volatile"].contains(&mode) {
            failures.push(format!("{tag}: mode must be durable|volatile"));
        }
        workloads.insert(workload.to_string());
        if row.get("device").and_then(|v| v.as_str()).is_none() {
            failures.push(format!("{tag}: device missing"));
        }
        for key in ["host_pages", "media_pages"] {
            match num(row, key) {
                Some(x) if x > 0.0 && x.is_finite() => {}
                other => failures.push(format!("{tag}.{key} = {other:?}: want positive")),
            }
        }
        match num(row, "waf") {
            Some(x) if x.is_finite() && x > 0.0 => {}
            other => failures.push(format!("{tag}.waf = {other:?}: want finite positive")),
        }
        match num(row, "absorption_pct") {
            Some(x) if (0.0..=100.0).contains(&x) => {}
            other => failures.push(format!("{tag}.absorption_pct = {other:?}: want 0..=100")),
        }
        let slot = absorbed.entry(workload.to_string()).or_default();
        match mode {
            "durable" => slot.0 = num(row, "absorbed_overwrites"),
            "volatile" => slot.1 = num(row, "absorbed_overwrites"),
            _ => {}
        }
        // Conservation: the per-cause breakdowns must explain every page at
        // both boundaries, label for label.
        for (key, total_key) in [("media_by_cause", "media_pages"), ("host_by_cause", "host_pages")]
        {
            let Some(by_cause) = row.get(key).and_then(|v| v.as_object()) else {
                failures.push(format!("{tag}: {key} object missing"));
                continue;
            };
            let mut sum = 0.0;
            for cause in WriteCause::ALL {
                match by_cause.get(cause.label()).and_then(|v| v.as_f64()) {
                    Some(x) if x >= 0.0 && x.is_finite() => sum += x,
                    other => failures
                        .push(format!("{tag}.{key}.{} = {other:?}: want count", cause.label())),
                }
            }
            if by_cause.len() != WriteCause::ALL.len() {
                failures.push(format!(
                    "{tag}.{key}: {} entries, want exactly {}",
                    by_cause.len(),
                    WriteCause::ALL.len()
                ));
            }
            match num(row, total_key) {
                Some(total) if sum == total => {}
                total => failures.push(format!(
                    "{tag}: Σ {key} = {sum} does not equal {total_key} {total:?} — \
                     unattributed writes"
                )),
            }
        }
    }
    if workloads.len() < 3 {
        failures.push(format!("want ≥ 3 distinct workloads, got {workloads:?}"));
    }
    let mut any_absorbed = false;
    for (workload, (dur, vol)) in &absorbed {
        match (dur, vol) {
            (Some(d), Some(v)) => {
                if d >= &1.0 {
                    any_absorbed = true;
                }
                if d < v {
                    failures
                        .push(format!("{workload}: durable absorbed {d} < volatile absorbed {v}"));
                }
            }
            _ => failures.push(format!(
                "{workload}: need both durable and volatile rows (got durable {dur:?}, \
                 volatile {vol:?})"
            )),
        }
    }
    if !any_absorbed {
        failures.push("no durable row absorbed any overwrites".into());
    }
    failures
}

/// Validate one latency-anatomy segment table (`segments` object): every key
/// must be a known [`telemetry::SegKind`] label and every entry must carry
/// non-negative `count` / `total_ns` / `p50` / `p99` / `max` fields.
fn check_segment_table(tag: &str, segs: &Obj, failures: &mut Vec<String>) {
    let known: Vec<&str> = telemetry::SegKind::ALL.iter().map(|k| k.label()).collect();
    for (label, entry) in segs {
        if !known.contains(&label.as_str()) {
            failures.push(format!("{tag}.segments.{label}: unknown segment kind"));
            continue;
        }
        let Some(entry) = entry.as_object() else {
            failures.push(format!("{tag}.segments.{label}: not an object"));
            continue;
        };
        for key in ["count", "total_ns", "p50", "p99", "max"] {
            match entry.get(key).and_then(|v| v.as_f64()) {
                Some(x) if x >= 0.0 && x.is_finite() => {}
                other => failures.push(format!(
                    "{tag}.segments.{label}.{key} = {other:?}: want finite non-negative"
                )),
            }
        }
    }
}

/// Validate a serialized `BENCH_latency.json` document:
///
/// - parses as JSON, carries the [`LATENCY_SCHEMA`] tag;
/// - a non-empty `rows` array covering ≥ 3 distinct workloads, each present
///   in both a `durable` and a `volatile` row;
/// - every row has a positive commit-op `count`, ordered percentiles
///   (`min ≤ p50 ≤ p99 ≤ p999 ≤ max`), zero conservation `violations`, a
///   non-empty per-segment-kind table (known labels only), and a `tail`
///   object (slowest captured commit) whose breakdown is present;
/// - the paper's durability claim as a latency gate: durable-mode tails
///   contain **zero** flush-cache time (the write cache is power-loss-proof,
///   so commits never wait on FLUSH CACHE), while every volatile tail is
///   flush-dominated (`flush_frac ≥ 0.5`).
pub fn check_latency_report(doc: &str) -> Vec<String> {
    check_latency_report_with(doc, 3)
}

/// [`check_latency_report`] with a caller-chosen floor on distinct
/// workloads: the `tail` bin's mixed run emits two (reads and writes), the
/// full `latency` observatory emits three.
pub fn check_latency_report_with(doc: &str, min_workloads: usize) -> Vec<String> {
    let v = match top_object(doc, "BENCH_latency.json") {
        Ok(v) => v,
        Err(f) => return f,
    };
    let obj = v.as_object().expect("checked by top_object");
    let mut failures = Vec::new();
    check_tag(obj, LATENCY_SCHEMA, &mut failures);
    let Some(rows) = obj.get("rows").and_then(|r| r.as_array()) else {
        failures.push("rows array missing".into());
        return failures;
    };
    if rows.is_empty() {
        failures.push("rows array empty".into());
        return failures;
    }
    let mut workloads: BTreeMap<String, (bool, bool)> = BTreeMap::new();
    for (i, row) in rows.iter().enumerate() {
        let Some(row) = row.as_object() else {
            failures.push(format!("rows[{i}] is not an object"));
            continue;
        };
        let workload = row.get("workload").and_then(|v| v.as_str()).unwrap_or("?");
        let mode = row.get("mode").and_then(|v| v.as_str()).unwrap_or("?");
        let tag = format!("{workload}/{mode}");
        let slot = workloads.entry(workload.to_string()).or_default();
        match mode {
            "durable" => slot.0 = true,
            "volatile" => slot.1 = true,
            _ => failures.push(format!("{tag}: mode must be durable|volatile")),
        }
        for key in ["device", "commit_op"] {
            if row.get(key).and_then(|v| v.as_str()).is_none() {
                failures.push(format!("{tag}: {key} missing"));
            }
        }
        match num(row, "count") {
            Some(x) if x > 0.0 => {}
            other => failures.push(format!("{tag}.count = {other:?}: want positive")),
        }
        let pct: Vec<Option<f64>> =
            ["min", "p50", "p99", "p999", "max"].iter().map(|k| num(row, k)).collect();
        if pct.iter().any(|p| !matches!(p, Some(x) if x.is_finite() && *x >= 0.0)) {
            failures.push(format!("{tag}: min/p50/p99/p999/max must all be present: {pct:?}"));
        } else if pct.windows(2).any(|w| w[0] > w[1]) {
            failures.push(format!("{tag}: percentiles not monotone: {pct:?}"));
        }
        match num(row, "violations") {
            Some(0.0) => {}
            other => failures
                .push(format!("{tag}.violations = {other:?}: segment sums exceeded wall latency")),
        }
        match row.get("segments").and_then(|v| v.as_object()) {
            None => failures.push(format!("{tag}: segments object missing")),
            Some(segs) if segs.is_empty() => failures.push(format!("{tag}: segments object empty")),
            Some(segs) => check_segment_table(&tag, segs, &mut failures),
        }
        let Some(tail) = row.get("tail").and_then(|v| v.as_object()) else {
            failures.push(format!("{tag}: tail object missing"));
            continue;
        };
        match num(tail, "wall") {
            Some(x) if x > 0.0 => {}
            other => failures.push(format!("{tag}.tail.wall = {other:?}: want positive")),
        }
        if tail.get("segments").and_then(|v| v.as_object()).is_none() {
            failures.push(format!("{tag}.tail: segments breakdown missing"));
        }
        let flush_ns = num(tail, "flush_cache_ns");
        let flush_frac = num(tail, "flush_frac");
        match mode {
            "durable" => {
                // Durable cache: FLUSH CACHE is free, so the *slowest* commit
                // observed must contain zero flush time — and so must the
                // whole run (segment histogram absent or empty).
                match flush_ns {
                    Some(0.0) => {}
                    other => failures.push(format!(
                        "{tag}: durable tail has flush_cache time {other:?}, want 0"
                    )),
                }
                if let Some(segs) = row.get("segments").and_then(|v| v.as_object()) {
                    if let Some(fc) = segs.get("flush_cache").and_then(|v| v.as_object()) {
                        match fc.get("count").and_then(|v| v.as_f64()) {
                            Some(0.0) => {}
                            c => failures.push(format!(
                                "{tag}: durable run recorded {c:?} flush_cache segments, want 0"
                            )),
                        }
                    }
                }
            }
            "volatile" => match flush_frac {
                Some(f) if f >= 0.5 => {}
                other => failures.push(format!(
                    "{tag}: volatile tail flush_frac = {other:?}, want ≥ 0.5 (flush-dominated)"
                )),
            },
            _ => {}
        }
    }
    if workloads.len() < min_workloads {
        let names: Vec<_> = workloads.keys().collect();
        failures.push(format!("want ≥ {min_workloads} distinct workloads, got {names:?}"));
    }
    for (workload, (dur, vol)) in &workloads {
        if !(*dur && *vol) {
            failures.push(format!(
                "{workload}: need both durable and volatile rows (durable {dur}, volatile {vol})"
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn waf_row(workload: &str, mode: &str, host: u64, media: u64, absorbed: u64) -> String {
        // Attribute everything to host_data at the host boundary and split
        // media pages between host_data and gc_relocate.
        let gc = media / 4;
        let mut host_bc = String::new();
        let mut media_bc = String::new();
        for cause in WriteCause::ALL {
            if !host_bc.is_empty() {
                host_bc.push(',');
                media_bc.push(',');
            }
            let (h, m) = match cause {
                WriteCause::HostData => (host, media - gc),
                WriteCause::GcRelocate => (0, gc),
                _ => (0, 0),
            };
            host_bc.push_str(&format!("\"{}\":{h}", cause.label()));
            media_bc.push_str(&format!("\"{}\":{m}", cause.label()));
        }
        format!(
            "{{\"workload\":\"{workload}\",\"mode\":\"{mode}\",\"device\":\"durassd\",\
             \"host_pages\":{host},\"media_pages\":{media},\"waf\":{:.4},\
             \"absorbed_overwrites\":{absorbed},\"absorption_pct\":{:.2},\
             \"host_by_cause\":{{{host_bc}}},\"media_by_cause\":{{{media_bc}}}}}",
            media as f64 / host as f64,
            100.0 * absorbed as f64 / (host + absorbed) as f64,
        )
    }

    fn waf_doc(rows: &[String]) -> String {
        format!("{{\"schema\":\"{WAF_SCHEMA}\",\"rows\":[{}]}}", rows.join(","))
    }

    #[test]
    fn waf_report_validation_accepts_conserved_documents() {
        let doc = waf_doc(&[
            waf_row("fio", "durable", 1000, 1200, 500),
            waf_row("fio", "volatile", 1500, 1900, 0),
            waf_row("ycsb_a", "durable", 800, 1000, 60),
            waf_row("ycsb_a", "volatile", 800, 1100, 0),
            waf_row("tpcc", "durable", 600, 700, 40),
            waf_row("tpcc", "volatile", 600, 900, 0),
        ]);
        let fails = check_waf_report(&doc);
        assert!(fails.is_empty(), "{fails:?}");
    }

    #[test]
    fn waf_report_validation_rejects_violations() {
        // Not JSON / wrong tag.
        assert!(!check_waf_report("nope").is_empty());
        assert!(!check_waf_report("{\"schema\":\"other.v1\",\"rows\":[]}").is_empty());

        // A row whose per-cause counts do not sum to the total is the core
        // conservation gate.
        let mut leaky = waf_row("fio", "durable", 1000, 1200, 500);
        leaky = leaky.replace("\"media_pages\":1200", "\"media_pages\":1201");
        let doc = waf_doc(&[
            leaky,
            waf_row("fio", "volatile", 1500, 1900, 0),
            waf_row("ycsb_a", "durable", 800, 1000, 60),
            waf_row("ycsb_a", "volatile", 800, 1100, 0),
            waf_row("tpcc", "durable", 600, 700, 40),
            waf_row("tpcc", "volatile", 600, 900, 0),
        ]);
        let fails = check_waf_report(&doc);
        assert!(fails.iter().any(|f| f.contains("unattributed")), "{fails:?}");

        // Durable absorbing less than volatile contradicts the paper claim.
        let doc = waf_doc(&[
            waf_row("fio", "durable", 1000, 1200, 5),
            waf_row("fio", "volatile", 1500, 1900, 50),
            waf_row("ycsb_a", "durable", 800, 1000, 60),
            waf_row("ycsb_a", "volatile", 800, 1100, 0),
            waf_row("tpcc", "durable", 600, 700, 40),
            waf_row("tpcc", "volatile", 600, 900, 0),
        ]);
        let fails = check_waf_report(&doc);
        assert!(fails.iter().any(|f| f.contains("durable absorbed")), "{fails:?}");

        // Fewer than three workloads, or a missing mode twin.
        let doc = waf_doc(&[
            waf_row("fio", "durable", 1000, 1200, 500),
            waf_row("fio", "volatile", 1500, 1900, 0),
            waf_row("ycsb_a", "durable", 800, 1000, 60),
        ]);
        let fails = check_waf_report(&doc);
        assert!(fails.iter().any(|f| f.contains("distinct workloads")), "{fails:?}");
        assert!(fails.iter().any(|f| f.contains("both durable and volatile")), "{fails:?}");
    }

    fn seg_entry(count: u64, total: u64) -> String {
        format!(
            "{{\"count\":{count},\"total_ns\":{total},\"p50\":{p},\"p99\":{p},\"max\":{p}}}",
            p = if count == 0 { 0 } else { total / count.max(1) }
        )
    }

    fn latency_row(workload: &str, mode: &str) -> String {
        let durable = mode == "durable";
        let (flush_ns, flush_frac) = if durable { (0u64, 0.0) } else { (90_000u64, 0.9) };
        let mut segs = format!("\"wal_fsync\":{}", seg_entry(100, 5_000_000));
        if !durable {
            segs.push_str(&format!(",\"flush_cache\":{}", seg_entry(100, 9_000_000)));
        }
        format!(
            "{{\"workload\":\"{workload}\",\"mode\":\"{mode}\",\"device\":\"d\",\
             \"commit_op\":\"engine.commit\",\"count\":100,\"min\":10,\"p50\":50,\
             \"p99\":900,\"p999\":1000,\"max\":100000,\"violations\":0,\
             \"segments\":{{{segs}}},\
             \"tail\":{{\"wall\":100000,\"flush_cache_ns\":{flush_ns},\
             \"flush_frac\":{flush_frac:.2},\"segments\":{{\"wal_fsync\":10000}}}}}}"
        )
    }

    fn latency_doc(rows: &[String]) -> String {
        format!("{{\"schema\":\"{LATENCY_SCHEMA}\",\"rows\":[{}]}}", rows.join(","))
    }

    fn full_latency_doc() -> Vec<String> {
        ["fio", "ycsb_a", "tpcc"]
            .iter()
            .flat_map(|w| ["durable", "volatile"].iter().map(|m| latency_row(w, m)))
            .collect()
    }

    #[test]
    fn latency_report_validation_accepts_good_documents() {
        let doc = latency_doc(&full_latency_doc());
        let fails = check_latency_report(&doc);
        assert!(fails.is_empty(), "{fails:?}");
    }

    #[test]
    fn latency_report_validation_rejects_violations() {
        assert!(!check_latency_report("nope").is_empty());
        assert!(!check_latency_report("{\"schema\":\"other.v1\",\"rows\":[]}").is_empty());

        // A durable tail containing flush-cache time contradicts the paper.
        let mut rows = full_latency_doc();
        rows[0] = rows[0].replace("\"flush_cache_ns\":0", "\"flush_cache_ns\":5000");
        let fails = check_latency_report(&latency_doc(&rows));
        assert!(fails.iter().any(|f| f.contains("durable tail has flush_cache")), "{fails:?}");

        // A durable run recording any flush_cache segments fails too.
        let mut rows = full_latency_doc();
        let inject = format!("}},\"flush_cache\":{}}},\"tail\"", seg_entry(3, 1000));
        rows[0] = rows[0].replacen("}},\"tail\"", &inject, 1);
        let fails = check_latency_report(&latency_doc(&rows));
        assert!(fails.iter().any(|f| f.contains("flush_cache segments")), "{fails:?}");

        // A volatile tail that is not flush-dominated.
        let mut rows = full_latency_doc();
        rows[1] = rows[1].replace("\"flush_frac\":0.90", "\"flush_frac\":0.10");
        let fails = check_latency_report(&latency_doc(&rows));
        assert!(fails.iter().any(|f| f.contains("flush-dominated")), "{fails:?}");

        // Conservation violations gate the report outright.
        let mut rows = full_latency_doc();
        rows[2] = rows[2].replace("\"violations\":0", "\"violations\":2");
        let fails = check_latency_report(&latency_doc(&rows));
        assert!(fails.iter().any(|f| f.contains("exceeded wall")), "{fails:?}");

        // Unknown segment kinds are typos, not data.
        let mut rows = full_latency_doc();
        rows[3] = rows[3].replace("\"wal_fsync\":{\"count\"", "\"wal_fsyncc\":{\"count\"");
        let fails = check_latency_report(&latency_doc(&rows));
        assert!(fails.iter().any(|f| f.contains("unknown segment kind")), "{fails:?}");

        // Non-monotone percentiles.
        let mut rows = full_latency_doc();
        rows[4] = rows[4].replace("\"p999\":1000", "\"p999\":5");
        let fails = check_latency_report(&latency_doc(&rows));
        assert!(fails.iter().any(|f| f.contains("not monotone")), "{fails:?}");

        // Missing mode twin.
        let rows = full_latency_doc();
        let fails = check_latency_report(&latency_doc(&rows[..5]));
        assert!(fails.iter().any(|f| f.contains("both durable and volatile")), "{fails:?}");
    }

    fn sample_campaign() -> forensics::CampaignReport {
        use forensics::{
            reconcile, AckContract, CacheSlotSnap, CampaignReport, DevicePostmortem, DumpOutcome,
            Ledger, Probe, ProbeResult, RecoverySnap, UnitKind,
        };
        let l = Ledger::new(AckContract::VolatileAck);
        l.pend(UnitKind::RelstoreCommit, b"k0", Ledger::digest(b"v0"), 5);
        l.pend(UnitKind::RelstoreCommit, b"k1", Ledger::digest(b"v1"), 6);
        l.ack_all_pending(9, false);
        l.pend(UnitKind::RelstoreCommit, b"k2", Ledger::digest(b"v2"), 12);
        let pm = DevicePostmortem {
            device: "ssd".into(),
            protection: "volatile".into(),
            cut_at: 20,
            dirty_slots: vec![CacheSlotSnap { lpn: 3, draining: true, ackable_at: 8 }],
            discarded_dirty_slots: 1,
            channel_drain_positions: vec![0, 15],
            dump: Some(DumpOutcome { bytes: 4096, budget_bytes: 8192, within_budget: true }),
            unpersisted_map: vec![(3, None), (4, Some(9))],
            rolled_back_map_entries: 2,
            nand_shorn_pages: 1,
            aborted_inflight_writes: 1,
        };
        let rec = RecoverySnap {
            device: "ssd".into(),
            ready_at: 500,
            requeued_slots: 0,
            recovered_via_dump: false,
            scan_only: true,
        };
        let probes = vec![
            Probe::new(b"k0", ProbeResult::Value(Ledger::digest(b"v0"))),
            Probe::new(b"k1", ProbeResult::Missing),
            Probe::new(b"k2", ProbeResult::Missing),
        ];
        let row = reconcile(
            "engine SSD-A OFF/OFF",
            2,
            "after-commit",
            20,
            &l,
            &probes,
            vec![pm],
            vec![rec],
        );
        CampaignReport { seed: 7, keys: 3, cuts: 1, rows: vec![row] }
    }

    #[test]
    fn forensics_validation_accepts_real_reports() {
        let doc = sample_campaign().to_json();
        let fails = check_forensics_report(&doc);
        assert!(fails.is_empty(), "{fails:?}");
    }

    #[test]
    fn forensics_validation_rejects_malformed_documents() {
        assert!(!check_forensics_report("{").is_empty());
        assert!(!check_forensics_report("{\"schema\":\"other.v9\"}").is_empty());
        let doc = sample_campaign().to_json();
        // Corrupt a classification: must be rejected.
        let bad = doc.replace("\"acked-lost\"", "\"evaporated\"");
        let errs = check_forensics_report(&bad);
        assert!(
            errs.iter().any(|e| e.contains("classification") || e.contains("evaporated")),
            "{errs:?}"
        );
        // Strip the rows: must be rejected.
        let empty =
            "{\"schema\":\"durassd.forensics.v1\",\"seed\":1,\"keys\":1,\"cuts\":1,\"rows\":[]}";
        assert!(!check_forensics_report(empty).is_empty());
    }

    #[test]
    fn perf_report_validation() {
        let good = format!(
            "{{\"schema\":\"{PERF_SCHEMA}\",\"peak_rss_bytes\":1,\"scenarios\":[\
             {{\"name\":\"fio\",\"ops\":10,\"wall_ns\":20,\"wall_ops_per_sec\":5.0,\
             \"sim_ns\":30,\"sim_ops_per_sec\":7.0,\"allocs\":0,\"allocs_per_op\":0}}]}}"
        );
        assert!(check_perf_report(&good).is_empty(), "{:?}", check_perf_report(&good));
        let zero = good.replace("\"wall_ops_per_sec\":5.0", "\"wall_ops_per_sec\":0");
        assert!(check_perf_report(&zero).iter().any(|f| f.contains("wall_ops_per_sec")));
        assert!(!check_perf_report("{}").is_empty());
    }
}

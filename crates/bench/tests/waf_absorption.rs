//! End-to-end absorption contrast: the same overwrite-heavy fio workload on
//! the durable-cache deployment (DuraSSD, nobarrier) and the volatile
//! baseline (SSD-A, barriers + fsync-per-write). The paper's claim, stated
//! as assertions: the durable cache absorbs overwrites in DRAM, the
//! volatile cache — forced to drain on every fsync — absorbs none, and the
//! per-cause attribution conserves at both boundaries either way.

use bench::{durassd_bench, ssd_a_bench};
use durassd::Ssd;
use storage::device::WriteCause;
use storage::volume::Volume;
use workloads::fio;
use workloads::fio::FioSpec;

const OPS: u64 = 8_000;
const SPAN: u64 = 512;

fn run_fio(dev: Ssd, barriers: bool) -> Volume<Ssd> {
    let mut vol = Volume::new(dev, barriers);
    let spec = FioSpec::random_write_4k(SPAN, Some(1), OPS);
    fio::run(&mut vol, &spec, 0);
    vol
}

#[test]
fn durable_cache_absorbs_overwrites_volatile_does_not() {
    let durable = run_fio(durassd_bench(true), false);
    let volatile = run_fio(ssd_a_bench(true), true);

    let absorbed_durable = durable.device().absorbed_overwrites();
    let absorbed_volatile = volatile.device().absorbed_overwrites();
    assert!(
        absorbed_durable > 0,
        "durable nobarrier deployment must coalesce at least one overwrite"
    );
    assert_eq!(
        absorbed_volatile, 0,
        "an fsync per write drains the volatile cache before any overwrite can coalesce"
    );

    // The flush tax shows up as write amplification: the volatile device
    // pays for every fsync with mapping journals and forced drains.
    let ds = durable.device_stats();
    let vs = volatile.device_stats();
    assert_eq!(ds.pages_written, vs.pages_written, "same host workload on both devices");
    assert!(
        vs.media_pages_written > ds.media_pages_written,
        "barriers must cost media writes: volatile {} vs durable {}",
        vs.media_pages_written,
        ds.media_pages_written
    );
}

#[test]
fn fio_attribution_conserves_and_stays_host_tagged() {
    let vol = run_fio(durassd_bench(true), false);
    vol.device().check_invariants().expect("device invariants after workload");

    let s = vol.device_stats();
    let host_sum: u64 = s.pages_by_cause.iter().sum();
    let media_sum: u64 = s.media_pages_by_cause.iter().sum();
    assert_eq!(host_sum, s.pages_written);
    assert_eq!(media_sum, s.media_pages_written);
    // fio writes straight to the volume: every host page is HostData, and
    // the only other media traffic a clean run may add is device-internal.
    assert_eq!(s.pages_by_cause[WriteCause::HostData.index()], s.pages_written);
    for c in [WriteCause::WalAppend, WriteCause::PageImage, WriteCause::DocRewrite] {
        assert_eq!(s.media_pages_by_cause[c.index()], 0, "{} cannot appear in raw fio", c.label());
    }

    // The volume tracks the same attribution at the host boundary.
    let by_vol = vol.host_pages_by_cause();
    assert_eq!(by_vol[WriteCause::HostData.index()], s.pages_written);
}

//! Allocation-regression tests for the zero-copy page pipeline.
//!
//! These tests pin the heap behaviour of the hot paths with the counting
//! global allocator: once the device, its pools and the telemetry registry
//! are warm, cache-hit reads, steady-state drained writes and metric
//! recording must not allocate at all. The simulation is single-threaded
//! and fully deterministic, so an exact-zero assertion is stable — any new
//! per-op allocation on these paths fails the suite instead of silently
//! regressing `BENCH_perf.json`.
//!
//! Two subtleties make the assertions meaningful:
//!
//! 1. The allocation counter is process-wide, so all scenarios run inside
//!    one `#[test]` (the default harness runs tests concurrently, which
//!    would cross-pollute the counts).
//!
//! 2. "Steady state" means the NAND frontier has *wrapped*: erases feed
//!    freed pages back into the page pool and GC recycles blocks. On a
//!    cold multi-gigabyte device the frontier never wraps in a few tens of
//!    thousands of ops, so every program legitimately grows capacity (a
//!    fresh page per write is growth, not churn). We therefore measure on
//!    `SsdConfig::tiny_test()` (8 MB raw) whose frontier wraps within the
//!    warm-up, exercising cache drain, FTL program, GC and mapping persist
//!    with every pool at its high-water mark.

use durassd::{Ssd, SsdConfig};
use simkit::alloc::{alloc_count, CountingAlloc};
use simkit::dist::{rng, Rng};
use storage::volume::Volume;
use telemetry::Telemetry;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// Count allocations across `f`.
fn allocs_during(f: impl FnOnce()) -> u64 {
    let a0 = alloc_count();
    f();
    alloc_count() - a0
}

/// A tiny-geometry volume driven past its first frontier wrap: after
/// `warmup_ops` random writes (fsync every 32) every pool — page slab,
/// preimage vecs, ack heap, NAND page slab, FTL scratch — has reached its
/// steady-state capacity.
///
/// Pools grow exactly when a new all-time peak of in-flight work appears,
/// so the warm-up ends with a long fsync-free burst: 4096 back-to-back
/// writes stack up far more concurrent cache slots, drain refs and atomic
/// pre-images than the measured workload (fsync every 32) can ever reach,
/// pinning every high-water mark above the measurement window.
fn warm_volume(seed: u64, warmup_ops: u64) -> (Volume<Ssd>, u64, u64) {
    let mut dev = Ssd::new(SsdConfig::tiny_test());
    // Media-side peaks (live NAND pages, in-flight erases) are geometric,
    // not workload-driven; prewarm pins them up front (8 MB raw here).
    dev.prewarm();
    let mut vol = Volume::new(dev, true);
    let span = vol.capacity_pages() * 3 / 4;
    let data = vec![3u8; 4096];
    let mut r = rng(seed);
    let mut t = 0;
    for i in 0..warmup_ops {
        let lpn = r.gen_range(0..span);
        t = vol.write(lpn, &data, t).unwrap();
        if i % 32 == 31 {
            t = vol.fsync(t).unwrap();
        }
    }
    // High-water-mark burst: no barriers, maximal in-flight window.
    for _ in 0..4096u64 {
        let lpn = r.gen_range(0..span);
        t = vol.write(lpn, &data, t).unwrap();
    }
    t = vol.fsync(t).unwrap();
    // Settle back into the barriered rhythm the measurements use.
    for i in 0..512u64 {
        let lpn = r.gen_range(0..span);
        t = vol.write(lpn, &data, t).unwrap();
        if i % 32 == 31 {
            t = vol.fsync(t).unwrap();
        }
    }
    (vol, span, t)
}

fn steady_state_drained_writes() {
    let (mut vol, span, mut t) = warm_volume(0x5EED, 10_000);
    let mut r = rng(0xD81A);
    let data = vec![3u8; 4096];
    let allocs = allocs_during(|| {
        for i in 0..2_000u64 {
            let lpn = r.gen_range(0..span);
            t = vol.write(lpn, &data, t).unwrap();
            if i % 32 == 31 {
                t = vol.fsync(t).unwrap();
            }
        }
    });
    assert_eq!(
        allocs, 0,
        "steady-state cached writes + fsync (cache drain, FTL program, GC, \
         mapping persist) must be allocation-free"
    );
}

fn cache_hit_reads() {
    let (mut vol, _span, mut t) = warm_volume(0xCAFE, 10_000);
    let data = vec![7u8; 4096];
    let mut buf = vec![0u8; 4096];
    // A working set smaller than the 16-slot DRAM cache: these writes stay
    // resident, so subsequent reads are pure cache hits.
    for lpn in 0..8u64 {
        t = vol.write(lpn, &data, t).unwrap();
    }
    // Warm the read path (queue/scratch capacities).
    for lpn in 0..8u64 {
        t = vol.read(lpn, 1, &mut buf, t).unwrap();
    }
    let allocs = allocs_during(|| {
        for _ in 0..400 {
            for lpn in 0..8u64 {
                t = vol.read(lpn, 1, &mut buf, t).unwrap();
            }
        }
    });
    assert_eq!(allocs, 0, "steady-state cache-hit reads must be allocation-free");
    assert_eq!(buf, data, "reads still serve the cached bytes");
}

fn telemetry_recording() {
    let tel = Telemetry::new();
    // First samples intern the names.
    tel.record("op.latency", 10);
    tel.incr("op.count", 1);
    tel.set_gauge("op.gauge", 5);
    let allocs = allocs_during(|| {
        for i in 0..1_000u64 {
            tel.record("op.latency", i);
            tel.incr("op.count", 1);
            tel.set_gauge("op.gauge", i as i64);
        }
    });
    assert_eq!(allocs, 0, "metric recording must not allocate for known names");
}

fn disabled_tracing() {
    let tel = Telemetry::new();
    // Tracing never enabled: every trace call must early-out without
    // touching the heap (no interning, no ring work).
    let allocs = allocs_during(|| {
        for i in 0..1_000u64 {
            tel.trace_begin("dev", "op", i);
            tel.trace_instant("dev", "tick", i);
            tel.trace_end("dev", "op", i + 1);
        }
    });
    assert_eq!(allocs, 0, "disabled tracing must be free");
    assert!(!tel.tracing_enabled());
}

#[test]
fn hot_paths_are_allocation_free() {
    telemetry_recording();
    disabled_tracing();
    steady_state_drained_writes();
    cache_hit_reads();
}

//! Criterion microbenchmarks: wall-clock cost of the hot simulation paths.
//!
//! These measure the *simulator's* speed (how fast experiments run on your
//! machine), complementing the experiment binaries which measure *virtual*
//! device/database performance. Run with `cargo bench -p bench`.

use bench::{durassd_bench, hdd_bench};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use durassd::{Ssd, SsdConfig};
use relstore::{Engine, EngineConfig};
use storage::device::{BlockDevice, LOGICAL_PAGE};
use storage::volume::Volume;

fn bench_ssd_write(c: &mut Criterion) {
    let mut g = c.benchmark_group("ssd");
    g.throughput(Throughput::Elements(1));
    g.bench_function("cached_4k_write", |b| {
        let mut ssd = durassd_bench(true);
        let page = vec![7u8; LOGICAL_PAGE];
        let mut now = 0;
        let mut lpn = 0u64;
        let span = ssd.capacity_pages() / 2;
        b.iter(|| {
            lpn = (lpn + 7919) % span;
            now = ssd.write(lpn, &page, now).unwrap();
        });
    });
    g.bench_function("read_4k", |b| {
        let mut ssd = durassd_bench(true);
        let page = vec![7u8; LOGICAL_PAGE];
        let mut now = 0;
        for lpn in 0..4096u64 {
            now = ssd.write(lpn, &page, now).unwrap();
        }
        now = ssd.flush(now).unwrap();
        let mut buf = vec![0u8; LOGICAL_PAGE];
        let mut lpn = 0u64;
        b.iter(|| {
            lpn = (lpn + 613) % 4096;
            now = ssd.read(lpn, 1, &mut buf, now).unwrap();
        });
    });
    g.bench_function("flush_after_64_writes", |b| {
        let mut ssd = durassd_bench(true);
        let page = vec![7u8; LOGICAL_PAGE];
        let mut now = 0;
        let mut lpn = 0u64;
        b.iter(|| {
            for _ in 0..64 {
                lpn = (lpn + 7919) % 65536;
                now = ssd.write(lpn, &page, now).unwrap();
            }
            now = ssd.flush(now).unwrap();
        });
    });
    g.finish();
}

fn bench_hdd_write(c: &mut Criterion) {
    let mut g = c.benchmark_group("hdd");
    g.throughput(Throughput::Elements(1));
    g.bench_function("cached_4k_write", |b| {
        let mut hdd = hdd_bench(true);
        let page = vec![7u8; LOGICAL_PAGE];
        let mut now = 0;
        let mut lpn = 0u64;
        b.iter(|| {
            lpn = (lpn + 7919) % (1 << 20);
            now = hdd.write(lpn, &page, now).unwrap();
        });
    });
    g.finish();
}

fn bench_engine_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.throughput(Throughput::Elements(1));
    let mk = || {
        let cfg = EngineConfig {
            page_size: 4096,
            buffer_pool_bytes: 4 * 1024 * 1024,
            double_write: false,
            full_page_writes: false,
            barriers: false,
            o_dsync: false,
            data_pages: 64 * 1024,
            log_files: 2,
            log_file_blocks: 8192,
            dwb_pages: 64,
        };
        let data = Ssd::new(SsdConfig::durassd(16));
        let log = Ssd::new(SsdConfig::durassd(16));
        let (mut e, t0) = Engine::create(data, log, cfg, 0);
        let (tree, t1) = e.create_tree(t0);
        let mut now = e.checkpoint(t1);
        for i in 0..20_000u64 {
            now = e.put(tree, format!("key{i:08}").as_bytes(), &[b'v'; 100], now);
        }
        now = e.commit(now);
        (e, tree, now)
    };
    g.bench_function("put_commit", |b| {
        let (mut e, tree, mut now) = mk();
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % 20_000;
            now = e.put(tree, format!("key{i:08}").as_bytes(), &[b'w'; 100], now);
            now = e.commit(now);
        });
    });
    g.bench_function("get", |b| {
        let (mut e, tree, mut now) = mk();
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 613) % 20_000;
            let (v, t) = e.get(tree, format!("key{i:08}").as_bytes(), now);
            now = t;
            assert!(v.is_some());
        });
    });
    g.bench_function("scan_20", |b| {
        let (mut e, tree, mut now) = mk();
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 613) % 20_000;
            let (rows, t) = e.scan(tree, format!("key{i:08}").as_bytes(), 20, now);
            now = t;
            assert!(!rows.is_empty());
        });
    });
    g.finish();
}

fn bench_raw_volume(c: &mut Criterion) {
    let mut g = c.benchmark_group("volume");
    g.throughput(Throughput::Bytes(LOGICAL_PAGE as u64));
    g.bench_function("write_fsync_nobarrier", |b| {
        let mut vol = Volume::new(durassd_bench(true), false);
        let page = vec![7u8; LOGICAL_PAGE];
        let mut now = 0;
        let mut lpn = 0u64;
        b.iter(|| {
            lpn = (lpn + 7919) % 65536;
            now = vol.write(lpn, &page, now).unwrap();
            now = vol.fsync(now).unwrap();
        });
    });
    g.finish();
}

criterion_group!(benches, bench_ssd_write, bench_hdd_write, bench_engine_ops, bench_raw_volume);
criterion_main!(benches);

//! NAND flash array model.
//!
//! This is the raw-media substrate underneath the SSD firmware in the
//! `durassd` crate. It models the properties the paper's arguments rest on:
//!
//! * **Geometry and parallelism** (§2.3): channels × packages × chips ×
//!   planes. Cell operations (read/program/erase) occupy a *plane*; data
//!   transfers occupy the plane's *channel bus*. The product of planes is the
//!   device's theoretical parallelism (256 in the paper's example).
//! * **Erase-before-program**: pages within a block must be programmed
//!   sequentially and cannot be reprogrammed until the block is erased.
//! * **Shorn writes** (§2.1, §5.2): a program or erase in flight when power
//!   is cut leaves the page/block in a detectable corrupt state.
//! * **Wear**: per-block erase counts, so endurance effects (the paper's
//!   claim that avoiding redundant writes prolongs SSD life) are measurable.

pub mod array;
pub mod geometry;

pub use array::{NandArray, NandError, NandStats};
pub use geometry::{Geometry, Ppn};

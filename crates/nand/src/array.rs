//! The NAND array: state, timing and failure model.

use crate::geometry::{Geometry, Ppn};
use simkit::{BufPool, Nanos, PageBuf, Timeline};
use std::collections::HashMap;
use telemetry::Telemetry;

/// Errors raised by raw NAND operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NandError {
    /// Program targeted a page other than the block's next free page
    /// (NAND requires strictly sequential in-block programming).
    OutOfOrderProgram { block: u32, expected: u32, got: u32 },
    /// Program targeted a page in a block that is full.
    BlockFull { block: u32 },
    /// Read of a page that was never programmed (or was erased).
    Unwritten { ppn: Ppn },
    /// Read of a page damaged by a power cut mid-program.
    Shorn { ppn: Ppn },
    /// Block or page index beyond the geometry.
    OutOfRange,
    /// Buffer size does not match the physical page size.
    BadLength { expected: usize, got: usize },
}

impl std::fmt::Display for NandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NandError::OutOfOrderProgram { block, expected, got } => write!(
                f,
                "out-of-order program in block {block}: expected page {expected}, got {got}"
            ),
            NandError::BlockFull { block } => write!(f, "block {block} is full"),
            NandError::Unwritten { ppn } => write!(f, "read of unwritten page {ppn}"),
            NandError::Shorn { ppn } => write!(f, "read of shorn page {ppn}"),
            NandError::OutOfRange => write!(f, "address out of range"),
            NandError::BadLength { expected, got } => {
                write!(f, "buffer length {got}, physical page is {expected}")
            }
        }
    }
}

impl std::error::Error for NandError {}

/// Cumulative NAND statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NandStats {
    /// Page reads performed.
    pub reads: u64,
    /// Page programs performed.
    pub programs: u64,
    /// Block erases performed.
    pub erases: u64,
    /// Pages destroyed by power cuts mid-program.
    pub shorn_pages: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct BlockState {
    next_page: u32,
    erase_count: u32,
    /// Cumulative page programs issued to this block (wear metric; shorn
    /// programs still stressed the cells, so power cuts never roll it back).
    program_count: u32,
    /// An erase was in flight when power was cut; the block must be erased
    /// again before use.
    torn_erase: bool,
}

/// One programmed page. `data` is a leased slab buffer: erasing the block
/// (or dropping the array) returns it to the pool instead of freeing it, so
/// steady-state program/erase churn recycles a bounded set of page-sized
/// allocations.
#[derive(Debug, Clone)]
struct PageState {
    data: PageBuf,
    shorn: bool,
}

/// An erase whose completion lies in the future. The block's old contents
/// stay parked here until the erase completes (they drop back to the buffer
/// pool lazily) so that a power cut arriving *before the erase physically
/// starts* can restore the block unchanged — the cells were never touched.
/// A cut mid-erase drops the contents and marks the block torn.
struct EraseInFlight {
    block: u32,
    /// When the plane actually starts the erase pulse (`done - t_erase`);
    /// the issue time can be earlier if the command queued behind other
    /// plane work.
    start: Nanos,
    done: Nanos,
    saved_next: u32,
    saved_pages: Vec<(Ppn, PageState)>,
}

/// The flash array.
///
/// All operations take "now" and return the virtual completion time.
/// Contention is modelled with one [`Timeline`] per channel bus and one per
/// plane (cell operations occupy exactly one plane).
pub struct NandArray {
    geo: Geometry,
    blocks: Vec<BlockState>,
    pages: HashMap<Ppn, PageState>,
    channel_bus: Vec<Timeline>,
    planes: Vec<Timeline>,
    stats: NandStats,
    /// Programs/erases whose completion may still be in the future; purged
    /// lazily. Used to shear pages on power cuts.
    inflight_programs: Vec<(Ppn, Nanos)>,
    inflight_erases: Vec<EraseInFlight>,
    /// Recycled `saved_pages` vectors from retired [`EraseInFlight`]
    /// records, so steady-state erases park their contents without touching
    /// the allocator (high-water-mark discipline, like every other pool).
    erase_scratch: Vec<Vec<(Ppn, PageState)>>,
    /// Slab of physical-page buffers backing [`PageState::data`].
    page_pool: BufPool,
    /// Optional telemetry sink: media-level trace events are emitted here,
    /// at the source, under whatever trace-ID the host operation above us
    /// pushed — the bottom of the causal chain.
    tel: Option<Telemetry>,
    /// Queueing wait of the most recent read/program (completion minus
    /// issue minus pure service): the raw material for the latency-anatomy
    /// channel-wait attribution. Stamped by [`NandArray::read`] and
    /// [`NandArray::program`].
    last_wait: Nanos,
    /// Pure service time (cell op + bus transfer) of the most recent
    /// read/program.
    last_service: Nanos,
}

impl NandArray {
    /// A pristine (all-erased) array with the given geometry.
    pub fn new(geo: Geometry) -> Self {
        Self {
            blocks: vec![BlockState::default(); geo.blocks()],
            pages: HashMap::new(),
            channel_bus: vec![Timeline::new(); geo.channels],
            planes: vec![Timeline::new(); geo.planes()],
            geo,
            stats: NandStats::default(),
            inflight_programs: Vec::new(),
            inflight_erases: Vec::new(),
            erase_scratch: Vec::new(),
            page_pool: BufPool::new(geo.page_size),
            tel: None,
            last_wait: 0,
            last_service: 0,
        }
    }

    /// `(queue wait, service)` split of the most recent read or program:
    /// `wait + service == done - now` for that command, exactly. The wait
    /// is time spent queued behind other plane/bus work (including GC);
    /// the service is the command's own cell + bus time.
    pub fn last_split(&self) -> (Nanos, Nanos) {
        (self.last_wait, self.last_service)
    }

    /// Number of channel buses (gauge fan-out bound).
    pub fn channel_count(&self) -> usize {
        self.channel_bus.len()
    }

    /// Pending-work backlog of one channel bus at virtual time `t`, in
    /// nanoseconds (see [`Timeline::backlog_at`]).
    pub fn channel_backlog_at(&self, channel: usize, t: Nanos) -> Nanos {
        self.channel_bus[channel].backlog_at(t)
    }

    /// Disjoint busy intervals still open on one channel bus at `t` — the
    /// NCQ-style occupancy gauge (lower bound; back-to-back commands
    /// coalesce).
    pub fn channel_occupancy_at(&self, channel: usize, t: Nanos) -> usize {
        self.channel_bus[channel].intervals_after(t)
    }

    /// Attach a telemetry handle: every program/erase (and read) emits a
    /// trace span under the caller's current trace-ID.
    pub fn attach_telemetry(&mut self, tel: Telemetry) {
        self.tel = Some(tel);
    }

    /// Preallocate every structure to its geometric bound so that no later
    /// program/erase ever touches the heap.
    ///
    /// A real device has all of its media up front; the simulator stays
    /// lazy by default so a multi-gigabyte geometry costs memory only for
    /// pages actually written. Opting in trades resident memory (one buffer
    /// per *physical* page, plus the page map at full occupancy) for fully
    /// allocation-free operation — useful for allocation-regression tests
    /// and latency-jitter-sensitive runs on small geometries.
    pub fn prewarm(&mut self) {
        let total = self.geo.total_pages() as usize;
        // Live pages can never exceed the physical page count, so a free
        // list covering the gap means `program` always recycles.
        self.page_pool.reserve_free(total.saturating_sub(self.pages.len()));
        self.pages.reserve(total.saturating_sub(self.pages.len()));
        // At most one in-flight erase per block; programs are bounded by
        // the per-plane pipelining window, for which a block's worth of
        // pages per plane is a comfortable ceiling.
        let blocks = self.geo.blocks();
        let programs = self.geo.pages_per_block * self.geo.planes();
        self.inflight_erases.reserve(blocks.saturating_sub(self.inflight_erases.len()));
        self.inflight_programs.reserve(programs.saturating_sub(self.inflight_programs.len()));
        // One parked-contents vector per possible concurrent erase, each at
        // its full per-block capacity, so parking old contents never grows.
        let ppb = self.geo.pages_per_block;
        self.erase_scratch.reserve(blocks.saturating_sub(self.erase_scratch.len()));
        while self.erase_scratch.len() + self.inflight_erases.len() < blocks {
            self.erase_scratch.push(Vec::with_capacity(ppb));
        }
        for v in &mut self.erase_scratch {
            v.reserve(ppb); // scratch vecs are empty: ensures capacity >= ppb
        }
    }

    /// Emit a completed media-operation span (`B` at issue, `E` at the
    /// virtual completion time).
    fn trace_span(&self, name: &str, start: Nanos, done: Nanos) {
        if let Some(tel) = &self.tel {
            tel.trace_begin("nand", name, start);
            tel.trace_end("nand", name, done);
        }
    }

    /// The array's geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geo
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> NandStats {
        self.stats
    }

    /// Erase count of one block (wear-leveling instrumentation).
    pub fn erase_count(&self, block: u32) -> u32 {
        self.blocks[block as usize].erase_count
    }

    /// How many page programs this block has absorbed over its lifetime.
    pub fn program_count(&self, block: u32) -> u32 {
        self.blocks[block as usize].program_count
    }

    /// Next free page index in a block (`pages_per_block` when full).
    pub fn next_free_page(&self, block: u32) -> u32 {
        self.blocks[block as usize].next_page
    }

    /// Whether an interrupted erase left this block unusable until re-erased.
    pub fn has_torn_erase(&self, block: u32) -> bool {
        self.blocks[block as usize].torn_erase
    }

    /// Whether `ppn` currently holds fully programmed, readable data (no
    /// shear, not erased). Recovery code uses this to decide which mapping
    /// candidates an out-of-band scan could actually reconstruct.
    pub fn page_intact(&self, ppn: Ppn) -> bool {
        self.pages.get(&ppn).is_some_and(|p| !p.shorn)
    }

    fn purge_inflight(&mut self, now: Nanos) {
        self.inflight_programs.retain(|&(_, done)| done > now);
        // Manual sweep instead of `retain`: retired records hand their
        // (emptied) `saved_pages` allocation back to the scratch pool, and
        // the parked `PageState`s drop their buffers back to the page pool.
        let mut i = 0;
        while i < self.inflight_erases.len() {
            if self.inflight_erases[i].done > now {
                i += 1;
            } else {
                let mut e = self.inflight_erases.swap_remove(i);
                e.saved_pages.clear();
                self.erase_scratch.push(e.saved_pages);
            }
        }
    }

    /// Read one physical page. Completion = plane cell-read, then bus
    /// transfer out.
    pub fn read(&mut self, ppn: Ppn, buf: &mut [u8], now: Nanos) -> Result<Nanos, NandError> {
        if ppn >= self.geo.total_pages() {
            return Err(NandError::OutOfRange);
        }
        if buf.len() != self.geo.page_size {
            return Err(NandError::BadLength { expected: self.geo.page_size, got: buf.len() });
        }
        let (block, _) = self.geo.split_ppn(ppn);
        let plane = self.geo.plane_of_block(block);
        let channel = self.geo.channel_of_block(block);
        let cell_done = self.planes[plane].acquire(now, self.geo.t_read);
        let done = self.channel_bus[channel].acquire(cell_done, self.geo.bus_time(buf.len()));
        self.last_service = self.geo.t_read + self.geo.bus_time(buf.len());
        self.last_wait = (done - now).saturating_sub(self.last_service);
        self.stats.reads += 1;
        self.trace_span("nand.read", now, done);
        match self.pages.get(&ppn) {
            None => Err(NandError::Unwritten { ppn }),
            Some(p) if p.shorn => Err(NandError::Shorn { ppn }),
            Some(p) => {
                buf.copy_from_slice(&p.data);
                Ok(done)
            }
        }
    }

    /// Program one physical page. Pages within a block must be programmed in
    /// order. Completion = bus transfer in, then plane cell-program.
    pub fn program(&mut self, ppn: Ppn, data: &[u8], now: Nanos) -> Result<Nanos, NandError> {
        if ppn >= self.geo.total_pages() {
            return Err(NandError::OutOfRange);
        }
        if data.len() != self.geo.page_size {
            return Err(NandError::BadLength { expected: self.geo.page_size, got: data.len() });
        }
        self.purge_inflight(now);
        let (block, page) = self.geo.split_ppn(ppn);
        let st = &mut self.blocks[block as usize];
        if st.torn_erase {
            // Must erase again before programming.
            return Err(NandError::OutOfOrderProgram { block, expected: u32::MAX, got: page });
        }
        if st.next_page as usize >= self.geo.pages_per_block {
            return Err(NandError::BlockFull { block });
        }
        if page != st.next_page {
            return Err(NandError::OutOfOrderProgram { block, expected: st.next_page, got: page });
        }
        st.next_page += 1;
        st.program_count += 1;
        let plane = self.geo.plane_of_block(block);
        let channel = self.geo.channel_of_block(block);
        let xfer_done = self.channel_bus[channel].acquire(now, self.geo.bus_time(data.len()));
        let done = self.planes[plane].acquire(xfer_done, self.geo.t_program);
        self.last_service = self.geo.bus_time(data.len()) + self.geo.t_program;
        self.last_wait = (done - now).saturating_sub(self.last_service);
        // Reuse the target page's old buffer when overwriting after a shear
        // (normal programs never hit an occupied slot); otherwise lease a
        // buffer from the slab — erases return buffers there, so the pool
        // reaches a steady state sized by the live page count.
        match self.pages.get_mut(&ppn) {
            Some(p) => {
                p.data.copy_from_slice(data);
                p.shorn = false;
            }
            None => {
                self.pages.insert(
                    ppn,
                    PageState { data: self.page_pool.checkout_from(data), shorn: false },
                );
            }
        }
        self.inflight_programs.push((ppn, done));
        self.stats.programs += 1;
        self.trace_span("nand.program", now, done);
        Ok(done)
    }

    /// Erase a block: all its pages become unwritten and it may be
    /// programmed again from page 0.
    pub fn erase(&mut self, block: u32, now: Nanos) -> Result<Nanos, NandError> {
        if block as usize >= self.geo.blocks() {
            return Err(NandError::OutOfRange);
        }
        self.purge_inflight(now);
        let plane = self.geo.plane_of_block(block);
        let done = self.planes[plane].acquire(now, self.geo.t_erase);
        let st = &mut self.blocks[block as usize];
        let saved_next = st.next_page;
        st.next_page = 0;
        st.erase_count += 1;
        st.torn_erase = false;
        let first = self.geo.make_ppn(block, 0);
        // Park the old contents with the in-flight record instead of
        // dropping them: a power cut before the erase pulse starts restores
        // the block; otherwise they return to the pool when the record is
        // purged.
        let mut saved_pages = self.erase_scratch.pop().unwrap_or_default();
        for p in 0..self.geo.pages_per_block as u64 {
            if let Some(ps) = self.pages.remove(&(first + p)) {
                saved_pages.push((first + p, ps));
            }
        }
        self.inflight_erases.push(EraseInFlight {
            block,
            start: done - self.geo.t_erase,
            done,
            saved_next,
            saved_pages,
        });
        self.stats.erases += 1;
        self.trace_span("nand.erase", now, done);
        Ok(done)
    }

    /// Cut power at `now`: programs still in flight shear their target page,
    /// erases in flight leave the block needing a fresh erase. (NAND cells
    /// themselves are non-volatile, so nothing else is lost.)
    pub fn power_cut(&mut self, now: Nanos) {
        let shear: Vec<Ppn> = self
            .inflight_programs
            .iter()
            .filter(|&&(_, done)| done > now)
            .map(|&(ppn, _)| ppn)
            .collect();
        for ppn in shear {
            if let Some(p) = self.pages.get_mut(&ppn) {
                p.shorn = true;
                self.stats.shorn_pages += 1;
            }
        }
        for e in self.inflight_erases.drain(..) {
            if e.done <= now {
                continue; // completed: cells are stably erased
            }
            if now <= e.start {
                // The erase pulse never began (the command was queued or in
                // transfer): the cells are untouched — restore the block
                // exactly as it was, including its parked contents. Any
                // programs issued causally after this erase were sheared
                // above; the pre-erase data overwrites their page entries.
                let st = &mut self.blocks[e.block as usize];
                st.next_page = e.saved_next;
                st.erase_count = st.erase_count.saturating_sub(1);
                st.torn_erase = false;
                for (ppn, ps) in e.saved_pages {
                    self.pages.insert(ppn, ps);
                }
            } else {
                // Mid-pulse: the block is partially erased and must be
                // erased again before use; its old contents are gone.
                self.blocks[e.block as usize].torn_erase = true;
            }
        }
        self.inflight_programs.clear();
        // Whatever the controller had queued on buses/planes is abandoned.
        for t in &mut self.channel_bus {
            t.reset();
        }
        for t in &mut self.planes {
            t.reset();
        }
    }

    /// When a given plane becomes free (for backend idle checks).
    pub fn plane_busy_until(&self, plane: usize) -> Nanos {
        self.planes[plane].busy_until()
    }

    /// Inform the array that no future operation will be scheduled before
    /// `t` (host arrival watermark): old busy intervals can be dropped.
    pub fn purge_before(&mut self, t: Nanos) {
        for p in &mut self.planes {
            p.purge_before(t);
        }
        for c in &mut self.channel_bus {
            c.purge_before(t);
        }
    }

    /// Virtual time at which every queued plane/bus operation has drained.
    pub fn all_quiet(&self) -> Nanos {
        let p = self.planes.iter().map(Timeline::busy_until).max().unwrap_or(0);
        let c = self.channel_bus.iter().map(Timeline::busy_until).max().unwrap_or(0);
        p.max(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array() -> NandArray {
        NandArray::new(Geometry::tiny())
    }

    fn page(fill: u8) -> Vec<u8> {
        vec![fill; 8192]
    }

    #[test]
    fn program_then_read_round_trips() {
        let mut a = array();
        let done = a.program(0, &page(7), 0).unwrap();
        assert!(done >= 900_000);
        let mut buf = page(0);
        a.read(0, &mut buf, done).unwrap();
        assert_eq!(buf, page(7));
    }

    #[test]
    fn last_split_decomposes_command_latency_exactly() {
        let mut a = array();
        let g = *a.geometry();
        let d1 = a.program(0, &page(1), 0).unwrap();
        let (w1, s1) = a.last_split();
        assert_eq!(w1, 0, "idle array: pure service");
        assert_eq!(s1, g.bus_time(g.page_size) + g.t_program);
        assert_eq!(w1 + s1, d1);
        // Same plane, issued while the first program still runs: queued.
        let d2 = a.program(1, &page(2), 0).unwrap();
        let (w2, s2) = a.last_split();
        assert!(w2 > 0, "second program must wait behind the first");
        assert_eq!(w2 + s2, d2, "wait + service == done - now, exactly");
        // Reads split the same way.
        let d3 = a.read(0, &mut page(0), d2).unwrap();
        let (w3, s3) = a.last_split();
        assert_eq!(s3, g.t_read + g.bus_time(g.page_size));
        assert_eq!(w3 + s3, d3 - d2);
        // Channel gauges see the accepted work.
        assert!(a.channel_count() >= 1);
        assert_eq!(a.channel_backlog_at(0, d3), 0);
        assert!(a.channel_backlog_at(0, 0) > 0);
        assert!(a.channel_occupancy_at(0, 0) >= 1);
    }

    #[test]
    fn read_unwritten_fails() {
        let mut a = array();
        let mut buf = page(0);
        assert!(matches!(a.read(5, &mut buf, 0), Err(NandError::Unwritten { ppn: 5 })));
    }

    #[test]
    fn in_block_programs_must_be_sequential() {
        let mut a = array();
        a.program(0, &page(1), 0).unwrap();
        // Skipping page 1 is rejected.
        assert!(matches!(
            a.program(2, &page(2), 0),
            Err(NandError::OutOfOrderProgram { expected: 1, got: 2, .. })
        ));
        a.program(1, &page(2), 0).unwrap();
    }

    #[test]
    fn no_reprogram_without_erase() {
        let mut a = array();
        let g = *a.geometry();
        for p in 0..g.pages_per_block as u64 {
            a.program(p, &page(p as u8), 0).unwrap();
        }
        // Any further program to the full block is rejected.
        assert!(matches!(a.program(0, &page(9), 0), Err(NandError::BlockFull { block: 0 })));
        assert!(matches!(
            a.program(g.pages_per_block as u64 - 1, &page(9), 0),
            Err(NandError::BlockFull { block: 0 })
        ));
    }

    #[test]
    fn erase_frees_block_and_counts_wear() {
        let mut a = array();
        a.program(0, &page(1), 0).unwrap();
        let done = a.erase(0, 1_000_000).unwrap();
        assert!(done >= 4_000_000);
        assert_eq!(a.erase_count(0), 1);
        assert_eq!(a.next_free_page(0), 0);
        let mut buf = page(0);
        assert!(matches!(a.read(0, &mut buf, done), Err(NandError::Unwritten { .. })));
        // Programmable again from page 0.
        a.program(0, &page(2), done).unwrap();
    }

    #[test]
    fn parallel_blocks_use_different_planes() {
        let mut a = array();
        let g = *a.geometry();
        // Blocks 0 and 1 are on different planes and channels.
        let d0 = a.program(g.make_ppn(0, 0), &page(1), 0).unwrap();
        let d1 = a.program(g.make_ppn(1, 0), &page(2), 0).unwrap();
        // Full overlap: both finish around t_program + transfer, not 2x.
        assert!(d1 < d0 + g.t_program / 2, "no overlap: d0={d0} d1={d1}");
    }

    #[test]
    fn same_plane_blocks_serialise() {
        let mut a = array();
        let g = *a.geometry();
        let planes = g.planes() as u32;
        // Blocks 0 and `planes` are on the same plane.
        let d0 = a.program(g.make_ppn(0, 0), &page(1), 0).unwrap();
        let d1 = a.program(g.make_ppn(planes, 0), &page(2), 0).unwrap();
        assert!(d1 >= d0 + g.t_program, "same-plane ops must serialise");
    }

    #[test]
    fn power_cut_shears_inflight_program() {
        let mut a = array();
        let done = a.program(0, &page(1), 0).unwrap();
        a.power_cut(done / 2); // mid-program
        let mut buf = page(0);
        assert!(matches!(a.read(0, &mut buf, done), Err(NandError::Shorn { ppn: 0 })));
        assert_eq!(a.stats().shorn_pages, 1);
    }

    #[test]
    fn power_cut_after_completion_is_safe() {
        let mut a = array();
        let done = a.program(0, &page(1), 0).unwrap();
        a.power_cut(done); // exactly at completion: data is stable
        let mut buf = page(0);
        a.read(0, &mut buf, done).unwrap();
        assert_eq!(buf, page(1));
    }

    #[test]
    fn power_cut_before_erase_pulse_restores_the_block() {
        let mut a = array();
        let pdone = a.program(0, &page(7), 0).unwrap();
        let edone = a.erase(0, pdone).unwrap();
        // The erase pulse starts at `edone - t_erase`; cutting at or before
        // that instant means the cells were never touched.
        a.power_cut(edone - a.geometry().t_erase);
        assert!(!a.has_torn_erase(0), "un-started erase must not tear the block");
        assert_eq!(a.next_free_page(0), 1, "write cursor restored");
        let mut buf = page(0);
        a.read(0, &mut buf, edone).unwrap();
        assert_eq!(buf, page(7), "pre-erase contents restored");
    }

    #[test]
    fn torn_erase_blocks_until_reerased() {
        let mut a = array();
        a.program(0, &page(1), 0).unwrap();
        let done = a.erase(0, 2_000_000).unwrap();
        a.power_cut(done - 1);
        assert!(a.has_torn_erase(0));
        assert!(a.program(0, &page(2), done).is_err());
        let d2 = a.erase(0, done).unwrap();
        a.program(0, &page(2), d2).unwrap();
    }

    #[test]
    fn stats_accumulate() {
        let mut a = array();
        a.program(0, &page(1), 0).unwrap();
        let mut buf = page(0);
        let _ = a.read(0, &mut buf, 10_000_000);
        a.erase(1, 0).unwrap();
        let s = a.stats();
        assert_eq!((s.programs, s.reads, s.erases), (1, 1, 1));
    }

    mod proptests {
        use super::*;
        use simkit::dist::{rng, Rng};

        /// Model-based test: arbitrary interleavings of program/erase across
        /// blocks behave like a per-block append-log with erase reset.
        #[test]
        fn random_program_erase_matches_model() {
            let mut r = rng(0xA4D);
            for _ in 0..256 {
                let ops: Vec<(u32, bool, u8)> = (0..r.gen_range(1..300usize))
                    .map(|_| (r.gen_range(0..8u32), r.gen::<bool>(), r.gen::<u8>()))
                    .collect();
                let mut a = NandArray::new(Geometry::tiny());
                let g = *a.geometry();
                // Model: per block, a vec of programmed page contents.
                let mut model: Vec<Vec<u8>> = vec![Vec::new(); 8];
                let mut t = 0u64;
                for (block, is_erase, fill) in ops {
                    if is_erase {
                        t = a.erase(block, t).unwrap();
                        model[block as usize].clear();
                    } else if model[block as usize].len() < g.pages_per_block {
                        let page_idx = model[block as usize].len() as u32;
                        let ppn = g.make_ppn(block, page_idx);
                        t = a.program(ppn, &vec![fill; g.page_size], t).unwrap();
                        model[block as usize].push(fill);
                    } else {
                        // Full block: program must fail.
                        let ppn = g.make_ppn(block, 0);
                        assert!(a.program(ppn, &vec![fill; g.page_size], t).is_err());
                    }
                }
                // Read-back check, far enough in the future that all
                // programs are stable.
                t += 1_000_000_000;
                let mut buf = vec![0u8; g.page_size];
                for (b, pages) in model.iter().enumerate() {
                    for (i, fill) in pages.iter().enumerate() {
                        let ppn = g.make_ppn(b as u32, i as u32);
                        a.read(ppn, &mut buf, t).unwrap();
                        assert!(buf.iter().all(|x| x == fill));
                    }
                    // The next page is unwritten.
                    if pages.len() < g.pages_per_block {
                        let ppn = g.make_ppn(b as u32, pages.len() as u32);
                        let unwritten =
                            matches!(a.read(ppn, &mut buf, t), Err(NandError::Unwritten { .. }));
                        assert!(unwritten);
                    }
                }
            }
        }
    }
}

//! NAND geometry and physical addressing.

/// Physical page number: a linear index over all NAND pages in the array.
pub type Ppn = u64;

/// The shape and timing of a NAND array.
///
/// Blocks are striped across planes: global block `b` lives on plane
/// `b % planes()`, so consecutively allocated blocks land on different
/// channels and the FTL gets channel parallelism for free from sequential
/// block allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Independent channels (buses) between the controller and packages.
    pub channels: usize,
    /// Flash packages per channel.
    pub packages_per_channel: usize,
    /// Dies (chips) per package.
    pub chips_per_package: usize,
    /// Planes per chip; planes operate in parallel.
    pub planes_per_chip: usize,
    /// Erase blocks per plane.
    pub blocks_per_plane: usize,
    /// Pages per erase block.
    pub pages_per_block: usize,
    /// Physical page size in bytes (8KB for the paper's enterprise NAND).
    pub page_size: usize,
    /// Cell read time (ns).
    pub t_read: u64,
    /// Cell program time (ns).
    pub t_program: u64,
    /// Block erase time (ns).
    pub t_erase: u64,
    /// Channel bus bandwidth in bytes per microsecond (e.g. 200 MB/s = 200).
    pub bus_bytes_per_us: u64,
}

impl Geometry {
    /// The paper's example configuration (§2.3): 8 channels, 4 packages per
    /// channel, 4 chips per package, 2 planes per chip — 256-way parallel —
    /// with 8KB pages and MLC-class timings. The number of blocks is small
    /// here; experiments override `blocks_per_plane` to set capacity.
    pub fn paper_example(blocks_per_plane: usize) -> Self {
        Self {
            channels: 8,
            packages_per_channel: 4,
            chips_per_package: 4,
            planes_per_chip: 2,
            blocks_per_plane,
            pages_per_block: 128,
            page_size: 8192,
            t_read: 70_000,     // 70us
            t_program: 900_000, // 900us
            t_erase: 3_000_000, // 3ms
            bus_bytes_per_us: 200,
        }
    }

    /// A small geometry for unit tests: 2 channels × 1 × 1 × 2 planes.
    pub fn tiny() -> Self {
        Self {
            channels: 2,
            packages_per_channel: 1,
            chips_per_package: 1,
            planes_per_chip: 2,
            blocks_per_plane: 16,
            pages_per_block: 16,
            page_size: 8192,
            t_read: 70_000,
            t_program: 900_000,
            t_erase: 3_000_000,
            bus_bytes_per_us: 200,
        }
    }

    /// Total planes (the theoretical parallelism of §2.3).
    pub fn planes(&self) -> usize {
        self.channels * self.packages_per_channel * self.chips_per_package * self.planes_per_chip
    }

    /// Total erase blocks.
    pub fn blocks(&self) -> usize {
        self.planes() * self.blocks_per_plane
    }

    /// Total physical pages.
    pub fn total_pages(&self) -> u64 {
        self.blocks() as u64 * self.pages_per_block as u64
    }

    /// Raw capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_pages() * self.page_size as u64
    }

    /// The plane a block lives on.
    pub fn plane_of_block(&self, block: u32) -> usize {
        block as usize % self.planes()
    }

    /// The channel a block's plane hangs off.
    pub fn channel_of_block(&self, block: u32) -> usize {
        // Planes are numbered so that consecutive planes alternate channels.
        self.plane_of_block(block) % self.channels
    }

    /// Decompose a physical page number into (block, page-in-block).
    pub fn split_ppn(&self, ppn: Ppn) -> (u32, u32) {
        ((ppn / self.pages_per_block as u64) as u32, (ppn % self.pages_per_block as u64) as u32)
    }

    /// Compose a physical page number from block and page-in-block.
    pub fn make_ppn(&self, block: u32, page: u32) -> Ppn {
        debug_assert!((page as usize) < self.pages_per_block);
        block as u64 * self.pages_per_block as u64 + page as u64
    }

    /// Time to move `bytes` over one channel bus.
    pub fn bus_time(&self, bytes: usize) -> u64 {
        (bytes as u64 * 1_000).div_ceil(self.bus_bytes_per_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_parallelism_is_256() {
        let g = Geometry::paper_example(64);
        assert_eq!(g.planes(), 256);
        assert_eq!(g.blocks(), 256 * 64);
        assert_eq!(g.total_pages(), 256 * 64 * 128);
    }

    #[test]
    fn ppn_round_trips() {
        let g = Geometry::tiny();
        for block in [0u32, 1, 7, 31] {
            for page in [0u32, 1, 15] {
                let ppn = g.make_ppn(block, page);
                assert_eq!(g.split_ppn(ppn), (block, page));
            }
        }
    }

    #[test]
    fn blocks_stripe_across_planes_and_channels() {
        let g = Geometry::tiny(); // 4 planes, 2 channels
        assert_eq!(g.plane_of_block(0), 0);
        assert_eq!(g.plane_of_block(1), 1);
        assert_eq!(g.plane_of_block(4), 0);
        assert_eq!(g.channel_of_block(0), 0);
        assert_eq!(g.channel_of_block(1), 1);
        assert_eq!(g.channel_of_block(2), 0);
    }

    #[test]
    fn bus_time_scales_with_bytes() {
        let g = Geometry::tiny(); // 200 B/us
        assert_eq!(g.bus_time(8192), 8192 * 1000 / 200);
        assert_eq!(g.bus_time(0), 0);
        // Rounds up.
        assert_eq!(g.bus_time(1), 5);
    }

    #[test]
    fn capacity_bytes() {
        let g = Geometry::tiny();
        assert_eq!(g.capacity_bytes(), g.total_pages() * 8192);
    }
}

//! Magnetic disk drive model (the paper's Seagate Cheetah 15K.6 baseline).
//!
//! The experiments need exactly three things from the disk:
//!
//! 1. **Mechanical latency** — seek (distance-dependent) + rotational delay +
//!    transfer; this is why the disk's Table 1/2 numbers are two to three
//!    orders of magnitude below the SSDs'.
//! 2. **A small volatile write-back cache** (16MB on the Cheetah) whose
//!    benefit is limited: destaging is still mechanical, only elevator
//!    ordering of the queued write-backs shortens seeks (the paper notes the
//!    disk improves no more than ~7x, vs 13–68x for the SSDs).
//! 3. **Volatility**: a power cut discards cached writes that were already
//!    acknowledged — the reason write caches must be flushed on fsync.
//!
//! `fsync`/FLUSH CACHE on a real file system also commits file metadata
//! through the journal, which costs an additional mechanical operation even
//! when the cache is write-through; the model charges that inside `flush`
//! (paper Fig. 2 shows fsync carrying file metadata with it).

use forensics::{CacheSlotSnap, DevicePostmortem, Forensic, RecoverySnap};
use simkit::{Nanos, Timeline};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use storage::device::{
    check_io, BlockDevice, DevError, DevResult, DeviceStats, WriteCause, LOGICAL_PAGE,
};
use telemetry::{SegKind, Telemetry};

/// Tunable disk parameters. Defaults approximate a 15krpm enterprise drive.
#[derive(Debug, Clone, Copy)]
pub struct HddConfig {
    /// Capacity in 4KB logical pages.
    pub capacity_pages: u64,
    /// Write cache capacity in logical pages (16MB => 4096).
    pub cache_pages: usize,
    /// Whether the write-back cache is enabled ("Storage Cache ON/OFF").
    pub cache_enabled: bool,
    /// Minimum (track-to-track) seek in ns.
    pub min_seek: Nanos,
    /// Full-stroke seek span in ns; seek = min + span * sqrt(distance/capacity).
    pub seek_span: Nanos,
    /// Full platter rotation in ns (15krpm = 4ms).
    pub rotation: Nanos,
    /// Sustained media transfer in bytes per microsecond.
    pub transfer_bytes_per_us: u64,
    /// Fixed command overhead (controller + SATA) per host command.
    pub command_overhead: Nanos,
    /// Number of cached writes destaged in one elevator batch.
    pub destage_batch: usize,
    /// Seek charged per destage hop when the batch is elevator-sorted.
    pub destage_seek: Nanos,
    /// Extra journal-commit cost charged by a FLUSH (file metadata write).
    pub flush_journal_cost: Nanos,
}

impl Default for HddConfig {
    fn default() -> Self {
        Self {
            capacity_pages: 146 * 1024 * 1024 / 4, // 146GB in 4KB pages
            cache_pages: 4096,                     // 16MB
            cache_enabled: true,
            min_seek: 1_000_000,        // 1ms
            seek_span: 6_000_000,       // up to 7ms full stroke
            rotation: 4_000_000,        // 15krpm
            transfer_bytes_per_us: 150, // 150MB/s
            command_overhead: 100_000,  // 0.1ms
            destage_batch: 32,
            destage_seek: 2_000_000,       // short elevator hops
            flush_journal_cost: 8_000_000, // journal commit: ~2 mechanical ops
        }
    }
}

/// The disk model.
pub struct Hdd {
    cfg: HddConfig,
    /// Platter contents (sparse).
    platter: BTreeMap<u64, Box<[u8]>>,
    /// Volatile write cache: lpn -> data (sorted; the elevator destage
    /// iterates it in LBA order).
    cache: BTreeMap<u64, Box<[u8]>>,
    arm: Timeline,
    head_pos: u64,
    stats: DeviceStats,
    powered: bool,
    /// Writes acknowledged but lost by a power cut (for crash experiments).
    lost_acked_pages: u64,
    /// Completion times of scheduled destages whose cache slots are still
    /// occupied (a slot frees only when its destage completes).
    draining: BinaryHeap<Reverse<Nanos>>,
    /// Completion times of recent commands, for queue-depth estimation
    /// (deep queues let the drive's scheduler shorten seeks — NCQ/TCQ).
    inflight: Vec<Nanos>,
    /// FLUSH CACHE barrier: commands arriving mid-flush wait for it.
    barrier_until: Nanos,
    /// Provenance of subsequent host writes (see
    /// [`BlockDevice::set_write_cause`]).
    cur_cause: WriteCause,
    /// Optional telemetry sink (destage-batch durations, dirty gauge).
    tel: Option<Telemetry>,
    /// Postmortem captured by the most recent `power_cut`.
    postmortem: Option<DevicePostmortem>,
    /// Snapshot captured by the most recent `reboot`.
    recovery: Option<RecoverySnap>,
}

impl Hdd {
    /// A disk with the given configuration.
    pub fn new(cfg: HddConfig) -> Self {
        Self {
            cfg,
            platter: BTreeMap::new(),
            cache: BTreeMap::new(),
            arm: Timeline::new(),
            head_pos: 0,
            stats: DeviceStats::default(),
            powered: true,
            lost_acked_pages: 0,
            draining: BinaryHeap::new(),
            inflight: Vec::new(),
            barrier_until: 0,
            cur_cause: WriteCause::default(),
            tel: None,
            postmortem: None,
            recovery: None,
        }
    }

    /// Attach a telemetry sink: records destage-batch mechanical time
    /// (`hdd.destage`) and a dirty-page gauge (`hdd.cache_dirty`).
    pub fn attach_telemetry(&mut self, tel: Telemetry) {
        self.tel = Some(tel);
    }

    /// Estimated outstanding commands at `now` (for scheduler benefit).
    /// Also advances the arm's purge watermark.
    fn queue_depth(&mut self, now: Nanos) -> usize {
        self.inflight.retain(|&d| d > now);
        // Arrivals can regress slightly across interleaved clients: purge
        // with a margin.
        self.arm.purge_before(now.saturating_sub(1_000_000_000));
        self.inflight.len()
    }

    /// The active configuration.
    pub fn config(&self) -> &HddConfig {
        &self.cfg
    }

    /// Pages acknowledged to the host but destroyed by a power cut.
    pub fn lost_acked_pages(&self) -> u64 {
        self.lost_acked_pages
    }

    /// Dirty pages currently in the volatile cache.
    pub fn cached_dirty_pages(&self) -> usize {
        self.cache.len()
    }

    /// Mechanical service time for an access at `lpn` of `pages` pages,
    /// updating the head position.
    fn arm_service(&mut self, lpn: u64, pages: u32) -> Nanos {
        self.arm_service_depth(lpn, pages, 0)
    }

    /// Mechanical service time; with a deep command queue the drive's
    /// scheduler (NCQ) reorders requests, shortening the average seek.
    fn arm_service_depth(&mut self, lpn: u64, pages: u32, depth: usize) -> Nanos {
        let dist = lpn.abs_diff(self.head_pos);
        self.head_pos = lpn + pages as u64;
        let seek = if dist == 0 {
            // Same cylinder: settle only.
            self.cfg.min_seek / 4
        } else {
            let frac = dist as f64 / self.cfg.capacity_pages as f64;
            let full = self.cfg.min_seek + (self.cfg.seek_span as f64 * frac.sqrt()) as Nanos;
            if depth >= 8 {
                // Scheduler picks near requests: roughly 1/3 the seek and
                // less rotational loss.
                full / 3
            } else {
                full
            }
        };
        let rot = if dist == 0 {
            self.cfg.rotation / 8
        } else if depth >= 8 {
            self.cfg.rotation / 4
        } else {
            self.cfg.rotation / 2
        };
        let xfer = (pages as u64 * LOGICAL_PAGE as u64 * 1_000) / self.cfg.transfer_bytes_per_us;
        seek + rot + xfer
    }

    /// Destage one elevator batch from the cache to the platter (arm time).
    /// Elevator ordering only pays off with a deep queue; a near-empty
    /// cache destages at full mechanical cost.
    fn destage_batch(&mut self, now: Nanos) -> Nanos {
        let pending = self.cache.len();
        let n = self.cfg.destage_batch.min(pending);
        let elevator = pending >= 8;
        let mut done = now;
        let mut destaged = 0usize;
        while destaged < n && !self.cache.is_empty() {
            // Take a contiguous LBA run in one mechanical operation (a 16KB
            // host write destages as one op, not four).
            let (&lpn, _) = self.cache.iter().next().expect("non-empty");
            let mut run: Vec<(u64, Box<[u8]>)> = Vec::new();
            let mut next = lpn;
            while let Some(data) = self.cache.remove(&next) {
                run.push((next, data));
                next += 1;
                if run.len() >= 64 {
                    break;
                }
            }
            let pages = run.len() as u32;
            let service = if elevator {
                let xfer =
                    (pages as u64 * LOGICAL_PAGE as u64 * 1_000) / self.cfg.transfer_bytes_per_us;
                self.cfg.destage_seek + self.cfg.rotation / 8 + xfer
            } else {
                self.arm_service(lpn, pages)
            };
            done = self.arm.acquire(done, service);
            self.head_pos = lpn + pages as u64;
            for (l, data) in run {
                self.draining.push(Reverse(done));
                self.platter.insert(l, data);
                self.stats.media_pages_written += 1;
                // The elevator loses the original cause; platter writes out
                // of the cache are the disk's own destage traffic.
                self.stats.media_pages_by_cause[WriteCause::Destage.index()] += 1;
                destaged += 1;
            }
        }
        if let Some(tel) = &self.tel {
            tel.record("hdd.destage", done.saturating_sub(now));
            tel.set_gauge("hdd.cache_dirty", self.cache.len() as i64);
            if done > now {
                // Span only when the arm actually moved; zero-length
                // destages (empty cache) would just be trace noise.
                tel.trace_begin("hdd", "hdd.destage", now);
                tel.trace_end("hdd", "hdd.destage", done);
            }
        }
        done
    }

    /// Charge a latency-anatomy segment on the enclosing op frame, if any.
    fn seg(&self, kind: SegKind, ns: Nanos) {
        if ns == 0 {
            return;
        }
        if let Some(tel) = &self.tel {
            tel.seg(kind, ns);
        }
    }

    /// Drain the entire cache (FLUSH CACHE path).
    fn destage_all(&mut self, now: Nanos) -> Nanos {
        let mut done = now;
        while !self.cache.is_empty() {
            done = self.destage_batch(done);
        }
        done
    }
}

impl BlockDevice for Hdd {
    fn capacity_pages(&self) -> u64 {
        self.cfg.capacity_pages
    }

    fn read(&mut self, lpn: u64, pages: u32, buf: &mut [u8], now: Nanos) -> DevResult<Nanos> {
        if !self.powered {
            return Err(DevError::PoweredOff);
        }
        check_io(lpn, pages, buf.len(), self.cfg.capacity_pages)?;
        self.stats.reads += 1;
        let arrival = now;
        let now = now.max(self.barrier_until);
        self.seg(SegKind::FlushCache, now - arrival);
        // Serve from write cache when possible (all pages must be cached).
        let all_cached = self.cfg.cache_enabled
            && (0..pages as u64).all(|i| self.cache.contains_key(&(lpn + i)));
        let depth = self.queue_depth(now);
        let done = if all_cached {
            now + self.cfg.command_overhead
        } else {
            let service = self.arm_service_depth(lpn, pages, depth);
            let end = self.arm.acquire(now, service);
            self.seg(SegKind::NcqWait, end.saturating_sub(service).saturating_sub(now));
            self.seg(SegKind::MediaRead, service);
            end + self.cfg.command_overhead
        };
        self.inflight.push(done);
        for i in 0..pages as u64 {
            let off = i as usize * LOGICAL_PAGE;
            let src = self.cache.get(&(lpn + i)).or_else(|| self.platter.get(&(lpn + i)));
            match src {
                Some(d) => buf[off..off + LOGICAL_PAGE].copy_from_slice(d),
                None => buf[off..off + LOGICAL_PAGE].fill(0),
            }
        }
        Ok(done)
    }

    fn write(&mut self, lpn: u64, data: &[u8], now: Nanos) -> DevResult<Nanos> {
        if !self.powered {
            return Err(DevError::PoweredOff);
        }
        let pages = (data.len() / LOGICAL_PAGE) as u32;
        check_io(lpn, pages, data.len(), self.cfg.capacity_pages)?;
        self.stats.writes += 1;
        let arrival = now;
        let now = now.max(self.barrier_until);
        self.seg(SegKind::FlushCache, now - arrival);
        self.stats.pages_written += pages as u64;
        self.stats.pages_by_cause[self.cur_cause.index()] += pages as u64;
        if self.cfg.cache_enabled {
            self.arm.purge_before(now.saturating_sub(1_000_000_000));
            // Make room: a cache slot frees only when its destage completes,
            // so a full cache throttles the host to the destage rate.
            let mut t = now;
            loop {
                while let Some(&Reverse(d)) = self.draining.peek() {
                    if d <= t {
                        self.draining.pop();
                    } else {
                        break;
                    }
                }
                if self.cache.len() + self.draining.len() + pages as usize <= self.cfg.cache_pages {
                    break;
                }
                // Keep just enough destages in flight to free the slots we
                // need; over-scheduling would snowball the arm backlog.
                if !self.cache.is_empty() && self.draining.len() < pages as usize {
                    self.destage_batch(t);
                }
                match self.draining.peek() {
                    Some(&Reverse(d)) if d > t => t = d,
                    _ => break,
                }
            }
            // A full write cache throttles the host to the destage rate;
            // that admission stall is destage interference, not queueing.
            self.seg(SegKind::HddDestage, t - now);
            for i in 0..pages as u64 {
                let off = i as usize * LOGICAL_PAGE;
                self.cache.insert(lpn + i, data[off..off + LOGICAL_PAGE].into());
            }
            Ok(t + self.cfg.command_overhead)
        } else {
            let depth = self.queue_depth(now);
            let service = self.arm_service_depth(lpn, pages, depth);
            let end = self.arm.acquire(now, service);
            self.seg(SegKind::NcqWait, end.saturating_sub(service).saturating_sub(now));
            self.seg(SegKind::MediaProgram, service);
            let done = end + self.cfg.command_overhead;
            self.inflight.push(done);
            for i in 0..pages as u64 {
                let off = i as usize * LOGICAL_PAGE;
                self.platter.insert(lpn + i, data[off..off + LOGICAL_PAGE].into());
            }
            self.stats.media_pages_written += pages as u64;
            self.stats.media_pages_by_cause[self.cur_cause.index()] += pages as u64;
            Ok(done)
        }
    }

    fn flush(&mut self, now: Nanos) -> DevResult<Nanos> {
        if !self.powered {
            return Err(DevError::PoweredOff);
        }
        self.stats.flushes += 1;
        let arrival = now;
        let now = now.max(self.barrier_until);
        self.seg(SegKind::FlushCache, now - arrival);
        if let Some(tel) = &self.tel {
            tel.trace_begin("hdd", "flush_cache", now);
        }
        let drained = self.destage_all(now);
        self.seg(SegKind::HddDestage, drained - now);
        self.draining.clear();
        // Journal commit for file metadata rides on every fsync-driven flush.
        let done = self.arm.acquire(drained, self.cfg.flush_journal_cost);
        self.seg(SegKind::FlushCache, done - drained);
        let done = done + self.cfg.command_overhead;
        self.barrier_until = done;
        if let Some(tel) = &self.tel {
            tel.trace_end("hdd", "flush_cache", done);
        }
        Ok(done)
    }

    fn power_cut(&mut self, now: Nanos) {
        self.powered = false;
        if let Some(tel) = &self.tel {
            tel.trace_instant("hdd", "power_cut", now);
        }
        // Postmortem: the pages the volatile write cache is about to drop,
        // with their owner LBAs, captured before the cache is cleared.
        let lost = self.cache.len() as u64;
        self.postmortem = Some(DevicePostmortem {
            device: "hdd".into(),
            protection: "hdd-write-cache".into(),
            cut_at: now,
            dirty_slots: self
                .cache
                .keys()
                .map(|&lpn| CacheSlotSnap { lpn, draining: false, ackable_at: 0 })
                .collect(),
            discarded_dirty_slots: lost,
            ..Default::default()
        });
        self.recovery = None;
        self.lost_acked_pages += lost;
        self.cache.clear();
        self.arm.reset();
        self.draining.clear();
        self.inflight.clear();
        self.barrier_until = 0;
    }

    fn reboot(&mut self, now: Nanos) -> Nanos {
        self.powered = true;
        // Spin-up.
        let ready = now + 5_000_000_000;
        if let Some(tel) = &self.tel {
            tel.trace_begin("hdd", "postmortem_recovery", now);
            tel.trace_end("hdd", "postmortem_recovery", ready);
        }
        self.recovery = Some(RecoverySnap {
            device: "hdd".into(),
            ready_at: ready,
            requeued_slots: 0,
            recovered_via_dump: false,
            scan_only: true,
        });
        ready
    }

    fn is_powered(&self) -> bool {
        self.powered
    }

    fn set_write_cause(&mut self, cause: WriteCause) {
        self.cur_cause = cause;
    }

    fn stats(&self) -> DeviceStats {
        self.stats
    }
}

impl Forensic for Hdd {
    fn postmortem(&self) -> Option<&DevicePostmortem> {
        self.postmortem.as_ref()
    }

    fn take_postmortem(&mut self) -> Option<DevicePostmortem> {
        self.postmortem.take()
    }

    fn recovery_snap(&self) -> Option<&RecoverySnap> {
        self.recovery.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk(cache: bool) -> Hdd {
        let cfg =
            HddConfig { capacity_pages: 1 << 20, cache_enabled: cache, ..HddConfig::default() };
        Hdd::new(cfg)
    }

    fn page(fill: u8) -> Vec<u8> {
        vec![fill; LOGICAL_PAGE]
    }

    #[test]
    fn anatomy_attributes_hdd_ops_and_conserves() {
        let tel = Telemetry::new();
        tel.enable_anatomy(2);
        let mut d = disk(true);
        d.attach_telemetry(tel.clone());
        tel.begin_frame("w", 0);
        let t = d.write(0, &page(1), 0).unwrap();
        tel.end_frame("w", t);
        assert!(tel.last_breakdown().unwrap().is_conserved());
        // Flush: cache destage plus journal commit, fully attributed.
        tel.begin_frame("f", t);
        let t2 = d.flush(t).unwrap();
        tel.end_frame("f", t2);
        let bd = tel.last_breakdown().unwrap();
        assert!(bd.seg(SegKind::HddDestage) > 0, "destage span attributed");
        assert!(bd.seg(SegKind::FlushCache) > 0, "journal commit attributed");
        assert!(bd.is_conserved());
        // Write-through disk: mechanical service shows up as media program.
        let mut d2 = disk(false);
        d2.attach_telemetry(tel.clone());
        tel.begin_frame("w2", 0);
        let t = d2.write(0, &page(1), 0).unwrap();
        tel.end_frame("w2", t);
        let bd = tel.last_breakdown().unwrap();
        assert!(bd.seg(SegKind::MediaProgram) > 0);
        assert!(bd.is_conserved());
        assert_eq!(tel.anatomy_violations(), 0);
    }

    #[test]
    fn cached_write_acks_fast_uncached_is_mechanical() {
        let mut d = disk(true);
        let fast = d.write(100, &page(1), 0).unwrap();
        let mut d2 = disk(false);
        let slow = d2.write(100, &page(1), 0).unwrap();
        assert!(fast < slow / 10, "cache ack {fast} should be far below media {slow}");
    }

    #[test]
    fn read_round_trips_through_cache_and_platter() {
        let mut d = disk(true);
        d.write(7, &page(9), 0).unwrap();
        let mut buf = page(0);
        let t = d.read(7, 1, &mut buf, 1000).unwrap();
        assert_eq!(buf, page(9));
        let t = d.flush(t).unwrap();
        let mut buf2 = page(0);
        d.read(7, 1, &mut buf2, t).unwrap();
        assert_eq!(buf2, page(9));
    }

    #[test]
    fn unwritten_reads_zero() {
        let mut d = disk(true);
        let mut buf = page(0xff);
        d.read(42, 1, &mut buf, 0).unwrap();
        assert_eq!(buf, page(0));
    }

    #[test]
    fn flush_drains_cache() {
        let mut d = disk(true);
        for i in 0..10 {
            d.write(i * 100, &page(i as u8), 0).unwrap();
        }
        assert_eq!(d.cached_dirty_pages(), 10);
        d.flush(0).unwrap();
        assert_eq!(d.cached_dirty_pages(), 0);
        assert_eq!(d.stats().media_pages_written, 10);
    }

    #[test]
    fn sequential_writes_faster_than_random_without_cache() {
        let mut d = disk(false);
        let t_seq = {
            let mut now = 0;
            for i in 0..16u64 {
                now = d.write(i, &page(1), now).unwrap();
            }
            now
        };
        let mut d2 = disk(false);
        let t_rand = {
            let mut now = 0;
            for i in 0..16u64 {
                now = d2.write((i * 7919) % (1 << 20), &page(1), now).unwrap();
            }
            now
        };
        assert!(t_seq < t_rand / 2, "sequential {t_seq} vs random {t_rand}");
    }

    #[test]
    fn power_cut_loses_acked_cached_writes() {
        let mut d = disk(true);
        d.write(5, &page(3), 0).unwrap();
        d.power_cut(1000);
        assert_eq!(d.lost_acked_pages(), 1);
        let mut tmp = page(0);
        assert!(matches!(d.read(5, 1, &mut tmp, 2000), Err(DevError::PoweredOff)));
        let t = d.reboot(2000);
        let mut buf = page(7);
        d.read(5, 1, &mut buf, t).unwrap();
        // The write never reached the platter: old (zero) content.
        assert_eq!(buf, page(0));
    }

    #[test]
    fn write_through_survives_power_cut() {
        let mut d = disk(false);
        let t = d.write(5, &page(3), 0).unwrap();
        d.power_cut(t);
        let t2 = d.reboot(t);
        let mut buf = page(0);
        d.read(5, 1, &mut buf, t2).unwrap();
        assert_eq!(buf, page(3));
    }

    #[test]
    fn cache_full_blocks_until_destage() {
        let cfg = HddConfig {
            capacity_pages: 1 << 20,
            cache_pages: 8,
            destage_batch: 4,
            ..HddConfig::default()
        };
        let mut d = Hdd::new(cfg);
        let mut now = 0;
        for i in 0..8u64 {
            now = d.write(i * 1000, &page(1), now).unwrap();
        }
        // Cache now full; the 9th write must wait for a destage batch.
        let before = d.stats().media_pages_written;
        let t9 = d.write(9_000, &page(9), now).unwrap();
        assert!(d.stats().media_pages_written > before);
        assert!(t9 > now + 1_000_000, "9th write should pay mechanical time");
    }

    #[test]
    fn multi_page_write_is_one_command() {
        let mut d = disk(true);
        let data = vec![1u8; 4 * LOGICAL_PAGE];
        d.write(0, &data, 0).unwrap();
        assert_eq!(d.stats().writes, 1);
        assert_eq!(d.stats().pages_written, 4);
    }

    #[test]
    fn flush_acts_as_barrier_for_later_commands() {
        let mut d = disk(true);
        // Fill some cache, then flush; a read issued "during" the flush
        // (earlier virtual time than its completion) must wait it out.
        for i in 0..64u64 {
            d.write(i * 997, &page(1), 0).unwrap();
        }
        let flush_done = d.flush(1000).unwrap();
        let mut buf = page(0);
        let read_done = d.read(5, 1, &mut buf, flush_done / 2).unwrap();
        assert!(read_done >= flush_done, "reads must not overtake FLUSH CACHE");
    }

    #[test]
    fn discard_is_a_safe_noop() {
        let mut d = disk(true);
        let t = d.write(9, &page(3), 0).unwrap();
        let t2 = d.discard(9, 1, t).unwrap();
        let mut buf = page(0);
        d.read(9, 1, &mut buf, t2).unwrap();
        // Disks don't TRIM: the data stays.
        assert_eq!(buf, page(3));
    }

    #[test]
    fn deep_read_queue_gets_scheduler_benefit() {
        // 32 concurrent readers finish sooner per-op than one-at-a-time
        // readers over the same LBAs (NCQ-style reordering).
        use simkit::ClosedLoop;
        let spread = |jobs: usize| {
            let mut d = disk(false);
            let mut buf = page(0);
            let mut x = 1u64;
            let mut drv = ClosedLoop::new(jobs, 0);
            let rep = drv.run(256, |_, now| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                d.read((x >> 33) % (1 << 20), 1, &mut buf, now).unwrap()
            });
            rep.throughput()
        };
        let serial = spread(1);
        let queued = spread(32);
        assert!(queued > serial * 15. / 10., "deep queue should speed reads: {serial} vs {queued}");
    }
}

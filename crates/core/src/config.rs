//! SSD configuration and the paper's device profiles.

use nand::Geometry;
use simkit::Nanos;

/// How the DRAM write cache behaves when power is lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheProtection {
    /// Conventional SSD: the cache (and un-journalled mapping updates) are
    /// lost on a power cut; in-flight programs shear their pages.
    Volatile,
    /// DuraSSD: tantalum capacitors power the controller long enough to dump
    /// the cache and the modified mapping entries to the reserved dump
    /// blocks (§3.1, §3.4.1). Acknowledged writes always survive.
    CapacitorBacked,
}

/// Full device configuration.
///
/// The timing constants are calibration knobs; the three profile
/// constructors approximate the three SSDs of the paper's Table 1 and are
/// documented with the throughput shape they were tuned against.
#[derive(Debug, Clone, Copy)]
pub struct SsdConfig {
    /// NAND geometry underneath the FTL.
    pub geometry: Geometry,
    /// Exported capacity in 4KB logical pages. Must leave over-provisioning
    /// headroom below the physical capacity.
    pub logical_capacity_pages: u64,
    /// Whether the DRAM write cache is enabled ("Storage Cache ON/OFF").
    pub cache_enabled: bool,
    /// Write-cache capacity in 4KB slots.
    pub cache_slots: usize,
    /// Cache durability model.
    pub protection: CacheProtection,
    /// NCQ depth (SATA: 31–32). Informational: the closed-loop drivers
    /// bound outstanding commands; an explicit admission queue proved
    /// numerically unstable in the timeline model and is not enforced.
    pub ncq_depth: usize,
    /// DuraSSD's ordered NCQ variant (§3.3): command order is preserved so
    /// durability does not depend on flush-cache barriers.
    pub ordered_ncq: bool,
    /// Firmware + protocol overhead per host *write* command (ns).
    pub host_write_overhead: Nanos,
    /// Firmware + protocol overhead per host *read* command (ns).
    pub host_read_overhead: Nanos,
    /// SATA link bandwidth in bytes per microsecond (6Gbps ≈ 550).
    pub sata_bytes_per_us: u64,
    /// Fixed SATA bus occupancy per command besides data transfer (ns).
    pub sata_fixed: Nanos,
    /// Sustained backend (flusher→NAND) bandwidth cap in bytes per
    /// microsecond. Real controllers throttle concurrent programs for power
    /// and ECC-pipeline reasons; ~200MB/s matches the DuraSSD Table 2
    /// `nobarrier` row exactly (49k × 4KB ≈ 200MB/s).
    pub backend_bytes_per_us: u64,
    /// Firmware cost of a FLUSH CACHE besides draining the cache: mapping
    /// journal commit and metadata bookkeeping (ns).
    pub flush_fixed_cost: Nanos,
    /// Whether FLUSH CACHE also persists the mapping journal. Careful
    /// firmware does (SSD-A, DuraSSD); SSD-B journals lazily, which makes
    /// its flushes cheap — and is exactly the class of shortcut behind the
    /// power-fault anomalies of Zheng et al. (FAST 2013).
    pub persist_mapping_on_flush: bool,
    /// Background mapping-journal threshold: once this many mapping entries
    /// are modified, the firmware journals them to flash on its own (every
    /// FTL does this periodically, or a crash would lose the whole device).
    pub mapping_journal_threshold: usize,
    /// Free blocks per plane below which garbage collection kicks in.
    pub gc_free_threshold: usize,
    /// Blocks per plane reserved as the always-clean dump area (§3.4.1).
    pub dump_reserve_blocks: usize,
    /// How many bytes the capacitors can push to flash after a power cut.
    /// Zero for volatile devices.
    pub capacitor_energy_bytes: u64,
    /// Capacitor recharge time before recovery starts at reboot (§3.4.2).
    pub recharge_time: Nanos,
}

impl SsdConfig {
    fn base(blocks_per_plane: usize) -> Self {
        let geometry = Geometry::paper_example(blocks_per_plane);
        let physical_4k = geometry.capacity_bytes() / 4096;
        Self {
            geometry,
            // Export ~84% of raw capacity: the rest is over-provisioning
            // for GC plus the dump reserve.
            logical_capacity_pages: physical_4k * 84 / 100,
            cache_enabled: true,
            // The write buffer is a few MB of the 512MB DRAM (most of the
            // DRAM holds the mapping table, §3.1.2); 16MB here.
            cache_slots: 4096,
            protection: CacheProtection::Volatile,
            ncq_depth: 32,
            ordered_ncq: false,
            host_write_overhead: 55_000,
            host_read_overhead: 20_000,
            sata_bytes_per_us: 550,
            sata_fixed: 4_000,
            backend_bytes_per_us: 200,
            flush_fixed_cost: 2_500_000,
            persist_mapping_on_flush: true,
            mapping_journal_threshold: 1024,
            gc_free_threshold: 2,
            dump_reserve_blocks: 2,
            capacitor_energy_bytes: 0,
            recharge_time: 100_000_000, // 100ms
        }
    }

    /// The DuraSSD prototype: 512MB capacitor-backed cache, fast host path.
    /// Tuned against Table 1's DuraSSD rows (225 IOPS at fsync-every-write
    /// with barriers, ~15k IOPS with `nobarrier`).
    pub fn durassd(blocks_per_plane: usize) -> Self {
        Self {
            protection: CacheProtection::CapacitorBacked,
            ordered_ncq: true,
            host_write_overhead: 52_000,
            flush_fixed_cost: 3_000_000,
            // Enough to dump the cache high-water mark plus mapping delta.
            // The paper says "dozens of megabytes"; the flusher's flow
            // control keeps the dirty set under the water mark.
            capacitor_energy_bytes: 96 * 1024 * 1024,
            ..Self::base(blocks_per_plane)
        }
    }

    /// SSD-A: 512MB volatile cache; Table 1 shape 256 → 11.7k IOPS.
    pub fn ssd_a(blocks_per_plane: usize) -> Self {
        Self {
            host_write_overhead: 72_000,
            flush_fixed_cost: 2_500_000,
            ..Self::base(blocks_per_plane)
        }
    }

    /// SSD-B: 128MB volatile cache, cheaper flush firmware but slower host
    /// path; Table 1 shape 655 → 8.5k IOPS.
    pub fn ssd_b(blocks_per_plane: usize) -> Self {
        let mut cfg = Self {
            cache_slots: 1024, // 4MB write buffer of the 128MB DRAM
            host_write_overhead: 105_000,
            flush_fixed_cost: 600_000,
            persist_mapping_on_flush: false,
            ..Self::base(blocks_per_plane)
        };
        // SSD-B's flash programs faster than the paper-example MLC timing
        // (its cache-off numbers in Table 1 are ~2x SSD-A's).
        cfg.geometry.t_program = 600_000;
        cfg
    }

    /// A tiny configuration for unit tests: 2×1×1×2 geometry, small cache.
    pub fn tiny_test() -> Self {
        let geometry = Geometry::tiny(); // 4 planes × 16 blocks × 16 pages × 8KB
        let physical_4k = geometry.capacity_bytes() / 4096;
        Self {
            geometry,
            logical_capacity_pages: physical_4k / 2,
            cache_enabled: true,
            cache_slots: 16,
            protection: CacheProtection::CapacitorBacked,
            ncq_depth: 4,
            ordered_ncq: true,
            host_write_overhead: 50_000,
            host_read_overhead: 20_000,
            sata_bytes_per_us: 550,
            sata_fixed: 4_000,
            backend_bytes_per_us: 200,
            flush_fixed_cost: 1_000_000,
            persist_mapping_on_flush: true,
            mapping_journal_threshold: 64,
            gc_free_threshold: 2,
            dump_reserve_blocks: 1,
            capacitor_energy_bytes: 4 * 1024 * 1024,
            recharge_time: 1_000_000,
        }
    }

    /// Same tiny geometry but with a volatile cache (baseline behaviour).
    pub fn tiny_volatile() -> Self {
        Self {
            protection: CacheProtection::Volatile,
            ordered_ncq: false,
            capacitor_energy_bytes: 0,
            ..Self::tiny_test()
        }
    }

    /// Start a [`SsdConfigBuilder`] seeded from the generic volatile base
    /// profile at `blocks_per_plane`. Named profiles can be tweaked through
    /// [`SsdConfig::to_builder`] instead:
    ///
    /// ```
    /// use durassd::SsdConfig;
    /// let cfg = SsdConfig::builder(16).cache_slots(1024).build();
    /// let dura = SsdConfig::durassd(16).to_builder().cache_enabled(false).build();
    /// assert!(!dura.cache_enabled);
    /// ```
    pub fn builder(blocks_per_plane: usize) -> SsdConfigBuilder {
        SsdConfigBuilder { cfg: Self::base(blocks_per_plane) }
    }

    /// Re-open this config in a builder to tweak individual knobs.
    pub fn to_builder(self) -> SsdConfigBuilder {
        SsdConfigBuilder { cfg: self }
    }

    /// 4KB logical slots per physical NAND page (2 for 8KB NAND).
    pub fn slots_per_page(&self) -> usize {
        self.geometry.page_size / 4096
    }

    /// Check internal consistency, reporting the first violated constraint
    /// as an error. Includes the per-plane geometry headroom the FTL needs
    /// at construction — dump reserve, one meta block and one frontier per
    /// plane — so degenerate geometries fail here with a description
    /// instead of deep inside `Ftl::new`.
    pub fn try_validate(&self) -> Result<(), String> {
        if !self.geometry.page_size.is_multiple_of(4096) {
            return Err("NAND page must hold whole 4KB slots".into());
        }
        let physical_slots = self.geometry.total_pages() * self.slots_per_page() as u64;
        if self.logical_capacity_pages >= physical_slots {
            return Err(format!(
                "no over-provisioning: logical {} >= physical {}",
                self.logical_capacity_pages, physical_slots
            ));
        }
        // The FTL pops, per plane: `dump_reserve_blocks` dump blocks, one
        // meta block, one frontier block — in that order.
        let bpp = self.geometry.blocks_per_plane;
        if bpp < self.dump_reserve_blocks {
            return Err(format!(
                "plane too small for dump reserve: {bpp} blocks/plane < {} reserved",
                self.dump_reserve_blocks
            ));
        }
        if bpp < self.dump_reserve_blocks + 1 {
            return Err(format!(
                "plane too small for meta block: {bpp} blocks/plane leaves no room after {} \
                 dump blocks",
                self.dump_reserve_blocks
            ));
        }
        if bpp < self.dump_reserve_blocks + 2 {
            return Err(format!(
                "plane too small for frontier: {bpp} blocks/plane leaves no room after {} \
                 dump blocks and the meta block",
                self.dump_reserve_blocks
            ));
        }
        if self.dump_reserve_blocks + self.gc_free_threshold >= bpp {
            return Err(format!(
                "reserves exceed plane size: {} dump + {} GC headroom >= {bpp} blocks/plane",
                self.dump_reserve_blocks, self.gc_free_threshold
            ));
        }
        if self.protection == CacheProtection::CapacitorBacked && self.capacitor_energy_bytes == 0 {
            return Err("capacitor-backed cache needs energy".into());
        }
        if self.cache_slots as u64 >= self.logical_capacity_pages {
            return Err(format!(
                "write cache ({} slots) must be smaller than the exported capacity ({} pages)",
                self.cache_slots, self.logical_capacity_pages
            ));
        }
        Ok(())
    }

    /// Sanity-check internal consistency; called by `Ssd::new`.
    ///
    /// # Panics
    /// On the first violated constraint — see [`SsdConfig::try_validate`]
    /// for the non-panicking form.
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("invalid SsdConfig: {e}");
        }
    }
}

/// Step-by-step construction of an [`SsdConfig`] with validation at the
/// end. Obtained from [`SsdConfig::builder`] (generic volatile base) or
/// [`SsdConfig::to_builder`] (tweak a named profile); [`build`](Self::build)
/// runs [`SsdConfig::validate`] before handing the config out.
#[derive(Debug, Clone, Copy)]
pub struct SsdConfigBuilder {
    cfg: SsdConfig,
}

impl SsdConfigBuilder {
    /// Exported capacity in 4KB logical pages.
    pub fn logical_capacity_pages(mut self, pages: u64) -> Self {
        self.cfg.logical_capacity_pages = pages;
        self
    }

    /// Enable or disable the DRAM write cache ("Storage Cache ON/OFF").
    pub fn cache_enabled(mut self, on: bool) -> Self {
        self.cfg.cache_enabled = on;
        self
    }

    /// Write-cache capacity in 4KB slots.
    pub fn cache_slots(mut self, slots: usize) -> Self {
        self.cfg.cache_slots = slots;
        self
    }

    /// Cache durability model. Switching to
    /// [`CacheProtection::CapacitorBacked`] without also granting
    /// [`capacitor_energy_bytes`](Self::capacitor_energy_bytes) fails
    /// validation.
    pub fn protection(mut self, p: CacheProtection) -> Self {
        self.cfg.protection = p;
        self
    }

    /// DuraSSD's ordered NCQ variant (§3.3).
    pub fn ordered_ncq(mut self, on: bool) -> Self {
        self.cfg.ordered_ncq = on;
        self
    }

    /// Capacitor energy budget in bytes (0 for volatile devices).
    pub fn capacitor_energy_bytes(mut self, bytes: u64) -> Self {
        self.cfg.capacitor_energy_bytes = bytes;
        self
    }

    /// Firmware + protocol overhead per host write command (ns).
    pub fn host_write_overhead(mut self, ns: Nanos) -> Self {
        self.cfg.host_write_overhead = ns;
        self
    }

    /// Firmware + protocol overhead per host read command (ns).
    pub fn host_read_overhead(mut self, ns: Nanos) -> Self {
        self.cfg.host_read_overhead = ns;
        self
    }

    /// Fixed firmware cost of a FLUSH CACHE (ns).
    pub fn flush_fixed_cost(mut self, ns: Nanos) -> Self {
        self.cfg.flush_fixed_cost = ns;
        self
    }

    /// Whether FLUSH CACHE persists the mapping journal.
    pub fn persist_mapping_on_flush(mut self, on: bool) -> Self {
        self.cfg.persist_mapping_on_flush = on;
        self
    }

    /// Background mapping-journal threshold (modified entries).
    pub fn mapping_journal_threshold(mut self, entries: usize) -> Self {
        self.cfg.mapping_journal_threshold = entries;
        self
    }

    /// Free blocks per plane below which GC kicks in.
    pub fn gc_free_threshold(mut self, blocks: usize) -> Self {
        self.cfg.gc_free_threshold = blocks;
        self
    }

    /// Blocks per plane reserved as the always-clean dump area (§3.4.1).
    pub fn dump_reserve_blocks(mut self, blocks: usize) -> Self {
        self.cfg.dump_reserve_blocks = blocks;
        self
    }

    /// Capacitor recharge time before recovery starts at reboot (ns).
    pub fn recharge_time(mut self, ns: Nanos) -> Self {
        self.cfg.recharge_time = ns;
        self
    }

    /// Sustained backend bandwidth cap in bytes per microsecond.
    pub fn backend_bytes_per_us(mut self, bpu: u64) -> Self {
        self.cfg.backend_bytes_per_us = bpu;
        self
    }

    /// Blocks per plane in the NAND geometry (the degenerate-geometry
    /// validation cases need to shrink this below the FTL's reserves).
    pub fn blocks_per_plane(mut self, blocks: usize) -> Self {
        self.cfg.geometry.blocks_per_plane = blocks;
        self
    }

    /// Validate and produce the final [`SsdConfig`].
    ///
    /// # Panics
    /// If the configuration is inconsistent (page size not a 4KB multiple,
    /// no over-provisioning headroom, a plane too small for the FTL's dump/
    /// meta/frontier reserves, cache at least as large as the exported
    /// capacity, capacitor-backed cache without energy) — see
    /// [`SsdConfig::validate`]. Use [`try_build`](Self::try_build) for the
    /// non-panicking form.
    pub fn build(self) -> SsdConfig {
        self.cfg.validate();
        self.cfg
    }

    /// Validate and produce the final [`SsdConfig`], reporting the first
    /// violated constraint instead of panicking.
    pub fn try_build(self) -> Result<SsdConfig, String> {
        self.cfg.try_validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_validate() {
        SsdConfig::durassd(16).validate();
        SsdConfig::ssd_a(16).validate();
        SsdConfig::ssd_b(16).validate();
        SsdConfig::tiny_test().validate();
        SsdConfig::tiny_volatile().validate();
    }

    #[test]
    fn durassd_is_capacitor_backed_with_energy() {
        let c = SsdConfig::durassd(16);
        assert_eq!(c.protection, CacheProtection::CapacitorBacked);
        assert!(c.capacitor_energy_bytes > 0);
        assert!(c.ordered_ncq);
    }

    #[test]
    fn baselines_are_volatile() {
        assert_eq!(SsdConfig::ssd_a(16).protection, CacheProtection::Volatile);
        assert_eq!(SsdConfig::ssd_b(16).protection, CacheProtection::Volatile);
        assert!(SsdConfig::ssd_b(16).cache_slots < SsdConfig::ssd_a(16).cache_slots);
    }

    #[test]
    fn slots_per_page_is_two_for_8k_nand() {
        assert_eq!(SsdConfig::tiny_test().slots_per_page(), 2);
    }

    #[test]
    #[should_panic(expected = "over-provisioning")]
    fn overfull_logical_capacity_rejected() {
        let mut c = SsdConfig::tiny_test();
        c.logical_capacity_pages = u64::MAX;
        c.validate();
    }

    #[test]
    fn builder_tweaks_named_profile() {
        let cfg = SsdConfig::durassd(16).to_builder().cache_enabled(false).build();
        assert!(!cfg.cache_enabled);
        assert_eq!(cfg.protection, CacheProtection::CapacitorBacked);
        let base = SsdConfig::builder(16).cache_slots(512).build();
        assert_eq!(base.cache_slots, 512);
        assert_eq!(base.protection, CacheProtection::Volatile);
    }

    #[test]
    #[should_panic(expected = "needs energy")]
    fn builder_rejects_capacitor_cache_without_energy() {
        let _ = SsdConfig::builder(16).protection(CacheProtection::CapacitorBacked).build();
    }

    #[test]
    #[should_panic(expected = "smaller than the exported capacity")]
    fn builder_rejects_cache_larger_than_device() {
        let _ = SsdConfig::tiny_test().to_builder().cache_slots(1 << 20).build();
    }

    /// A tiny-geometry builder whose capacity/cache knobs are scaled down so
    /// the per-plane geometry checks are the first thing that can fail.
    fn small_plane_builder(bpp: usize) -> SsdConfigBuilder {
        SsdConfig::tiny_test()
            .to_builder()
            .blocks_per_plane(bpp)
            .logical_capacity_pages(8)
            .cache_slots(4)
            .gc_free_threshold(0)
    }

    #[test]
    fn geometry_without_room_for_dump_reserve_is_an_error() {
        let err = small_plane_builder(2).dump_reserve_blocks(3).try_build().unwrap_err();
        assert!(err.contains("plane too small for dump reserve"), "{err}");
    }

    #[test]
    fn geometry_without_room_for_meta_block_is_an_error() {
        let err = small_plane_builder(2).dump_reserve_blocks(2).try_build().unwrap_err();
        assert!(err.contains("plane too small for meta block"), "{err}");
    }

    #[test]
    fn geometry_without_room_for_frontier_is_an_error() {
        let err = small_plane_builder(3).dump_reserve_blocks(2).try_build().unwrap_err();
        assert!(err.contains("plane too small for frontier"), "{err}");
    }

    #[test]
    fn geometry_without_gc_headroom_is_an_error() {
        let err = small_plane_builder(4)
            .dump_reserve_blocks(2)
            .gc_free_threshold(2)
            .try_build()
            .unwrap_err();
        assert!(err.contains("reserves exceed plane size"), "{err}");
    }

    #[test]
    fn try_build_accepts_valid_configs() {
        let cfg = SsdConfig::tiny_test().to_builder().try_build().unwrap();
        assert_eq!(cfg.cache_slots, SsdConfig::tiny_test().cache_slots);
        assert!(SsdConfig::durassd(16).try_validate().is_ok());
    }
}

//! The SSD device: host interface, atomic writer, flusher, flush-cache
//! handling, power-off detection and the recovery manager (§3.2–§3.4).

use crate::cache::{CacheEntry, WriteCache};
use crate::config::{CacheProtection, SsdConfig};
use crate::error::Error;
use crate::ftl::{Ftl, SlotRead};
use forensics::{
    CacheSlotSnap, DeviceHealth, DevicePostmortem, DumpOutcome, EvidenceKind, Forensic, Ledger,
    RecoverySnap,
};
use nand::NandArray;
use simkit::{BufPool, Nanos, Timeline};
use std::collections::VecDeque;
use storage::device::{
    check_io, BlockDevice, DevError, DevResult, DeviceStats, WriteCause, LOGICAL_PAGE,
};
use telemetry::{SegKind, Telemetry};

/// SSD-specific statistics on top of the generic [`DeviceStats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SsdStats {
    /// Read commands that were served entirely from the write cache.
    pub cache_hit_reads: u64,
    /// 4KB slots acknowledged to the host and later destroyed by a power cut
    /// (volatile caches only; always zero on DuraSSD — that is the claim).
    pub lost_acked_slots: u64,
    /// Host reads that found a shorn/corrupt page after recovery.
    pub shorn_reads: u64,
    /// Host write commands whose data was discarded because power was cut
    /// before the transfer completed (correct atomic behaviour).
    pub aborted_inflight_writes: u64,
    /// Emergency capacitor dumps performed.
    pub dumps: u64,
    /// Bytes written by the largest emergency dump.
    pub max_dump_bytes: u64,
    /// Recovery runs at reboot.
    pub recoveries: u64,
    /// Emergency dumps that exceeded the capacitor energy budget and were
    /// abandoned (the device degraded to volatile behaviour for that cut).
    /// A mis-tuned budget is a reportable forensic finding, not an abort.
    pub dump_over_budget: u64,
    /// Blocks re-erased at reboot because a power cut tore their erase
    /// mid-flight (the block refuses programs until erased again).
    pub torn_erase_repairs: u64,
}

/// A record of a host write whose acknowledgement lies in the future; if
/// power is cut before `done`, the whole command is rolled back (atomic
/// writer, §3.2).
struct InflightWrite {
    done: Nanos,
    preimages: Vec<(u64, Option<CacheEntry>)>,
}

/// The simulated SSD. One type implements DuraSSD and both volatile
/// baselines; behaviour differences follow from [`SsdConfig`].
pub struct Ssd {
    cfg: SsdConfig,
    nand: NandArray,
    ftl: Ftl,
    cache: WriteCache,
    sata: Timeline,
    /// Backend dispatch pipeline: caps sustained media-write bandwidth.
    pipe: Timeline,
    stats: DeviceStats,
    xstats: SsdStats,
    powered: bool,
    emergency_flag: bool,
    /// FLUSH CACHE is a barrier: commands that arrive while a flush is in
    /// progress are held until it completes (paper Fig. 2 — "a database
    /// system is usually blocked while a fsync call is being processed").
    barrier_until: Nanos,
    /// Host writes whose acknowledgement may still be in the future, oldest
    /// completion first (acknowledgement times are near-monotone, so the
    /// deque retires from the front in O(retired) instead of a full scan
    /// per command).
    inflight: VecDeque<InflightWrite>,
    /// Recycled pre-image vectors: retired [`InflightWrite`]s hand their
    /// (emptied) allocation back so steady-state writes stay heap-free.
    preimage_pool: Vec<Vec<(u64, Option<CacheEntry>)>>,
    /// Slab of 4KB page buffers backing the write cache: host writes check
    /// out a lease, reclaim/discard returns it. Steady-state admission and
    /// drain perform zero heap allocations.
    page_pool: BufPool,
    /// Monotonically increasing arrival clock (the closed-loop driver feeds
    /// commands in virtual-time order; asserted in debug builds).
    last_arrival: Nanos,
    /// Provenance of subsequent host writes, declared by the volume via
    /// [`BlockDevice::set_write_cause`] (sticky until re-declared).
    cur_cause: WriteCause,
    /// Write counter used to throttle the O(blocks) valid-ratio gauge.
    gauge_tick: u32,
    /// Optional telemetry sink (cache-drain durations, occupancy gauge).
    tel: Option<Telemetry>,
    /// Optional durability ledger: records device-level acknowledgement
    /// evidence (atomic-write acks, FLUSH CACHE acks).
    ledger: Option<Ledger>,
    /// Postmortem captured by the most recent `power_cut`.
    postmortem: Option<DevicePostmortem>,
    /// Snapshot captured by the most recent `reboot`.
    recovery: Option<RecoverySnap>,
}

impl Ssd {
    /// Build a device from a configuration.
    pub fn new(cfg: SsdConfig) -> Self {
        cfg.validate();
        Self {
            nand: NandArray::new(cfg.geometry),
            ftl: Ftl::new(&cfg),
            cache: WriteCache::new(),
            sata: Timeline::new(),
            pipe: Timeline::new(),
            stats: DeviceStats::default(),
            xstats: SsdStats::default(),
            powered: true,
            emergency_flag: false,
            barrier_until: 0,
            inflight: VecDeque::new(),
            preimage_pool: Vec::new(),
            page_pool: BufPool::new(LOGICAL_PAGE),
            last_arrival: 0,
            cur_cause: WriteCause::default(),
            gauge_tick: 0,
            tel: None,
            ledger: None,
            postmortem: None,
            recovery: None,
            cfg,
        }
    }

    /// Attach a telemetry sink: the FTL records GC pauses and NAND
    /// program/erase latencies, the NAND array emits media-level trace
    /// spans, and the device itself records flush-queue drain time
    /// (`ssd.cache_drain`), the cache/flush trace spans, and the
    /// occupancy/capacitor gauges.
    pub fn attach_telemetry(&mut self, tel: Telemetry) {
        self.ftl.attach_telemetry(tel.clone());
        self.nand.attach_telemetry(tel.clone());
        self.tel = Some(tel);
    }

    /// Preallocate the NAND layer to its geometric bound (one buffer per
    /// physical page, page map at full occupancy, in-flight op vectors at
    /// their ceilings) so device operation never allocates for media state.
    ///
    /// Opt-in because it makes resident memory proportional to the *raw*
    /// device size rather than the written working set — cheap for test
    /// geometries, deliberate for multi-gigabyte ones. The host-side pools
    /// (cache slots, pre-image vectors) are workload-bounded and warm up on
    /// their own.
    pub fn prewarm(&mut self) {
        self.nand.prewarm();
    }

    /// Attach a durability ledger: every host write acknowledgement and
    /// FLUSH CACHE completion is recorded as aggregate evidence, tagged
    /// with the contract behind it (a FLUSH ack is a barrier ack; a plain
    /// write ack carries the device cache's own contract).
    pub fn attach_ledger(&mut self, ledger: Ledger) {
        self.ledger = Some(ledger);
    }

    /// The device configuration.
    pub fn config(&self) -> &SsdConfig {
        &self.cfg
    }

    /// SSD-specific statistics.
    pub fn ssd_stats(&self) -> SsdStats {
        self.xstats
    }

    /// FTL statistics (write amplification, GC work).
    pub fn ftl_stats(&self) -> crate::ftl::FtlStats {
        self.ftl.stats()
    }

    /// Dirty + draining slots currently in the write cache.
    pub fn cache_occupancy(&self) -> usize {
        self.cache.occupied()
    }

    /// Mapping entries modified since the last journal write (the crash
    /// loss window on a volatile device).
    pub fn unpersisted_mapping_entries(&self) -> usize {
        self.ftl.unpersisted_entries()
    }

    /// (min, max) block erase counts — the wear-leveling spread.
    pub fn wear_spread(&self) -> (u32, u32) {
        self.ftl.wear_spread(&self.nand)
    }

    /// Host page overwrites coalesced in the write cache — NAND programs
    /// the durable cache saved (the paper's absorption mechanism).
    pub fn absorbed_overwrites(&self) -> u64 {
        self.cache.coalesced_overwrites()
    }

    /// Per-block wear profile: `(erase_count, program_count)` for every
    /// physical block, in block order — the raw series behind the wear
    /// histograms the waf bench reports.
    pub fn wear_profile(&self) -> Vec<(u32, u32)> {
        (0..self.cfg.geometry.blocks() as u32)
            .map(|b| (self.nand.erase_count(b), self.nand.program_count(b)))
            .collect()
    }

    /// Busy-time accounting for saturation diagnosis:
    /// `(sata_busy, pipe_busy, nand_quiet_at)`.
    pub fn busy_times(&self) -> (Nanos, Nanos, Nanos) {
        (self.sata.busy_time(), self.pipe.busy_time(), self.nand.all_quiet())
    }

    fn note_arrival(&mut self, now: Nanos) {
        // Command arrival times are *mostly* nondecreasing (the closed-loop
        // driver dispatches clients in virtual-time order), but an engine
        // operation issues several commands at advancing internal times, so
        // the next client's commands can arrive slightly "in the past".
        // Track the high-water mark and purge with a safety margin.
        self.last_arrival = self.last_arrival.max(now);
        let watermark = self.last_arrival.saturating_sub(1_000_000_000);
        // Acked writes are now stable facts; free the bookkeeping. The
        // retired entries' pre-image vectors are recycled (and any pre-image
        // page buffers return to the pool as the entries drop).
        // Acknowledgement times are near-monotone (bounded NCQ reordering),
        // so retirement pops from the front until it meets a still-young
        // entry: O(retired) amortised, versus a full O(in-flight) scan per
        // command. A slightly out-of-order entry behind a younger head just
        // retires a few calls later — bookkeeping only, no observable
        // difference.
        while let Some(w) = self.inflight.front_mut() {
            if w.done > watermark {
                break;
            }
            let mut v = std::mem::take(&mut w.preimages);
            v.clear();
            // The pool's size is naturally bounded by the peak number of
            // simultaneously in-flight writes (the 1-second retirement
            // window), so no explicit cap is needed — capping below that
            // watermark would put an allocation back on every write.
            if v.capacity() > 0 {
                self.preimage_pool.push(v);
            }
            self.inflight.pop_front();
        }
        self.cache.reclaim(watermark.min(now));
        self.sata.purge_before(watermark);
        self.pipe.purge_before(watermark);
        self.nand.purge_before(watermark);
    }

    /// Pure host-interface service time for `bytes` (fixed command cost +
    /// transfer at the interface rate) — the `xfer` anatomy segment; any
    /// extra time [`Ssd::sata_transfer`] reports is NCQ queueing wait.
    fn sata_cost(&self, bytes: usize) -> Nanos {
        self.cfg.sata_fixed + (bytes as u64 * 1_000) / self.cfg.sata_bytes_per_us
    }

    /// SATA transfer of `bytes` starting no earlier than `now`.
    fn sata_transfer(&mut self, now: Nanos, bytes: usize) -> Nanos {
        let t = self.sata_cost(bytes);
        self.sata.acquire(now, t)
    }

    /// Charge a latency-anatomy segment for the in-progress host command
    /// (free no-op without telemetry or with anatomy disabled).
    fn seg(&self, kind: SegKind, ns: Nanos) {
        if ns == 0 {
            return;
        }
        if let Some(tel) = &self.tel {
            tel.seg(kind, ns);
        }
    }

    /// Split one completed SATA transfer into anatomy segments: queueing
    /// wait behind other interface traffic (`ncq_wait`) and the command's
    /// own transfer service (`xfer`).
    fn seg_sata(&self, issued: Nanos, done: Nanos, bytes: usize) {
        let service = self.sata_cost(bytes);
        self.seg(SegKind::NcqWait, done.saturating_sub(issued).saturating_sub(service));
        self.seg(SegKind::Xfer, service);
    }

    /// Drain one pair of dirty slots to NAND at `t`; returns the program's
    /// completion time, or `None` when the cache holds nothing dirty.
    ///
    /// Zero-copy: the popped entries' page data is borrowed from the cache
    /// slots in place and handed to the FTL as slices — no buffer leaves
    /// the cache until reclaim returns it to the pool.
    fn drain_pair(&mut self, t: Nanos) -> DevResult<Option<Nanos>> {
        const MAX_SPP: usize = 8;
        let spp = self.cfg.slots_per_page();
        debug_assert!(spp <= MAX_SPP, "slots_per_page exceeds drain batch capacity");
        let mut lpns = [0u64; MAX_SPP];
        let mut n = 0usize;
        while n < spp {
            match self.cache.pop_dirty(t) {
                Some(lpn) => {
                    lpns[n] = lpn;
                    n += 1;
                }
                None => break,
            }
        }
        if n == 0 {
            return Ok(None);
        }
        let bytes = n as u64 * LOGICAL_PAGE as u64;
        let grant = self.pipe.acquire(t, bytes * 1_000 / self.cfg.backend_bytes_per_us);
        const EMPTY: &[u8] = &[];
        let mut items: [(u64, &[u8]); MAX_SPP] = [(0, EMPTY); MAX_SPP];
        let mut causes = [WriteCause::HostData; MAX_SPP];
        for ((slot, cause), &lpn) in items.iter_mut().zip(causes.iter_mut()).zip(lpns[..n].iter()) {
            *cause = self.cache.cause_of(lpn);
            *slot = (lpn, self.cache.get(lpn).expect("popped entry is present"));
        }
        if let Some(tel) = &self.tel {
            tel.trace_begin("ssd", "ssd.cache_drain", t);
        }
        let done = self
            .ftl
            .program_slots_tagged(&mut self.nand, &items[..n], &causes[..n], grant)
            .map_err(Error::into_dev)?;
        if let Some(tel) = &self.tel {
            tel.trace_end("ssd", "ssd.cache_drain", done);
        }
        for &lpn in &lpns[..n] {
            self.cache.set_draining(lpn, done);
        }
        Ok(Some(done))
    }

    /// Background flusher: push dirty pairs to planes that are already idle
    /// (models the continuous FIFO flusher of §3.1.1 without an event loop).
    /// Also journals the mapping once enough entries piled up — every FTL
    /// does this periodically, bounding how much a power cut can take.
    fn opportunistic_drain(&mut self, now: Nanos) -> DevResult<()> {
        while self.cache.dirty() > 0
            && self.pipe.busy_until() <= now
            && self.ftl.next_plane_idle(&self.nand, now)
        {
            if self.drain_pair(now)?.is_none() {
                break;
            }
        }
        if self.ftl.unpersisted_entries() > self.cfg.mapping_journal_threshold {
            self.ftl.persist_mapping(&mut self.nand, now);
        }
        Ok(())
    }

    /// Synchronous full drain (FLUSH CACHE path): returns when every cached
    /// slot is on flash. Entries whose commands acknowledge slightly later
    /// (overlapping NCQ traffic) are waited for, conservatively.
    fn drain_all(&mut self, now: Nanos) -> DevResult<Nanos> {
        let mut t = now;
        let mut last = now;
        loop {
            if let Some(done) = self.drain_pair(t)? {
                last = last.max(done);
                continue;
            }
            if self.cache.dirty() > 0 {
                if let Some(a) = self.cache.next_ackable() {
                    if a > t {
                        t = a;
                        continue;
                    }
                }
            }
            break;
        }
        // Wait for everything already in flight too.
        if let Some(d) = self.cache.latest_drain_done() {
            last = last.max(d);
        }
        let last = last.max(t);
        self.cache.reclaim(last);
        Ok(last)
    }

    /// Write path with the cache enabled. Commands larger than half the
    /// cache stream through it in chunks, like any real write-back cache.
    fn write_cached(&mut self, lpn: u64, data: &[u8], now: Nanos) -> DevResult<Nanos> {
        let n = data.len() / LOGICAL_PAGE;
        let chunk_slots = (self.cfg.cache_slots / 2).max(1);
        if n > chunk_slots {
            let mut t = now;
            let mut done = now;
            for (i, chunk) in data.chunks(chunk_slots * LOGICAL_PAGE).enumerate() {
                done = self.write_cached(lpn + (i * chunk_slots) as u64, chunk, t)?;
                t = done;
            }
            return Ok(done);
        }
        let xfer_done = self.sata_transfer(now, data.len());
        self.seg_sata(now, xfer_done, data.len());
        // Flow control: when the cache is full, admission proceeds at the
        // backend drain rate. Schedule every needed drain immediately (the
        // dispatch pipe serialises them at the sustained media rate), then
        // wait for completions to free slots — the flusher and the host
        // overlap, as in the real firmware.
        let gc_before = self.ftl.gc_time();
        let mut t = xfer_done;
        let mut guard = 0u32;
        loop {
            // Fast path: occupied() bounds occupied_at() from above, so a
            // cache with raw headroom needs no completion-time accounting.
            if self.cache.occupied() + n <= self.cfg.cache_slots {
                break;
            }
            if self.cache.occupied_at(t) + n <= self.cfg.cache_slots {
                break;
            }
            guard += 1;
            assert!(guard < 10_000_000, "flow control cannot make progress");
            // Push drains without waiting: completions arrive pipelined.
            while self.cache.dirty() > 0 && self.cache.occupied_at(t) + n > self.cfg.cache_slots {
                if self.drain_pair(t)?.is_none() {
                    break;
                }
            }
            // Wait for the next drain completion to free a slot, or for an
            // ack-gated entry to become drainable.
            let mut wait = self.cache.earliest_drain_done();
            if wait.is_none_or(|d| d <= t) {
                match self.cache.next_ackable() {
                    Some(a) if a > t => wait = Some(a),
                    _ => {}
                }
            }
            match wait {
                Some(w) if w > t => t = w,
                _ => break,
            }
        }
        // Anatomy: the admission window is GC interference wherever the
        // drains that freed our slot were preempted by GC (measured before
        // the trailing opportunistic drain so background GC is never
        // charged to this command), and cache-full stall for the rest.
        let admit = t - xfer_done;
        let gc_delta = (self.ftl.gc_time() - gc_before).min(admit);
        self.seg(SegKind::GcWait, gc_delta);
        self.seg(SegKind::CacheAdmit, admit - gc_delta);
        // Atomic writer: stage the slots, remembering pre-images until the
        // command acknowledgement time passes; the flusher ignores the
        // entries until then.
        let done = t + self.cfg.host_write_overhead;
        let mut preimages = self.preimage_pool.pop().unwrap_or_default();
        preimages.reserve(n);
        for i in 0..n {
            let slot_lpn = lpn + i as u64;
            let chunk =
                self.page_pool.checkout_from(&data[i * LOGICAL_PAGE..(i + 1) * LOGICAL_PAGE]);
            let pre = self.cache.insert(slot_lpn, chunk, done, self.cur_cause);
            preimages.push((slot_lpn, pre));
        }
        self.inflight.push_back(InflightWrite { done, preimages });
        if let Some(tel) = &self.tel {
            tel.trace_instant("ssd", "ssd.cache_admit", done);
        }
        self.opportunistic_drain(now)?;
        Ok(done)
    }

    /// Write path with the cache disabled: program through to flash and
    /// journal the mapping before acknowledging.
    fn write_direct(&mut self, lpn: u64, data: &[u8], now: Nanos) -> DevResult<Nanos> {
        let n = data.len() / LOGICAL_PAGE;
        let xfer_done = self.sata_transfer(now, data.len());
        self.seg_sata(now, xfer_done, data.len());
        let spp = self.cfg.slots_per_page();
        let mut media_done = xfer_done;
        let mut idx = 0usize;
        // Anatomy: all chunks issue at `xfer_done` and overlap across
        // planes, so only the critical chunk (the one achieving
        // `media_done`) is attributed: its dispatch-pipe + NAND queueing
        // wait, the GC pause that preempted it, and its program service.
        let mut crit = None;
        while idx < n {
            let take = spp.min(n - idx);
            let items: Vec<(u64, &[u8])> = (0..take)
                .map(|k| {
                    let i = idx + k;
                    (lpn + i as u64, &data[i * LOGICAL_PAGE..(i + 1) * LOGICAL_PAGE])
                })
                .collect();
            let bytes = items.len() as u64 * LOGICAL_PAGE as u64;
            let grant = self.pipe.acquire(xfer_done, bytes * 1_000 / self.cfg.backend_bytes_per_us);
            let causes = [self.cur_cause; 16];
            let done = self
                .ftl
                .program_slots_tagged(&mut self.nand, &items, &causes[..items.len()], grant)
                .map_err(Error::into_dev)?;
            if done >= media_done {
                media_done = done;
                crit = Some((grant, self.ftl.last_gc_pause(), self.nand.last_split()));
            }
            idx += take;
        }
        if let Some((grant, gc_pause, (wait, service))) = crit {
            // wait + service == media_done - grant exactly; the GC pause is
            // part of the NAND queueing wait (the program queued behind the
            // GC work on its plane), split out as its own cause.
            let gc = gc_pause.min(wait);
            self.seg(SegKind::GcWait, gc);
            self.seg(SegKind::ChannelWait, (grant - xfer_done) + (wait - gc));
            self.seg(SegKind::MediaProgram, service);
        }
        // Without a durable cache to hold the mapping, careful firmware
        // journals it before completing the command (§2.3); lazy-journal
        // firmware (SSD-B) skips this and risks mapping loss.
        let meta_done = if self.cfg.persist_mapping_on_flush {
            self.ftl.persist_mapping(&mut self.nand, media_done)
        } else {
            media_done
        };
        self.seg(SegKind::MapPersist, meta_done - media_done);
        Ok(meta_done + self.cfg.host_write_overhead)
    }

    /// Capacitor dump at power-cut time (§3.4.1). The dump itself runs on
    /// backup power after host time stops, so it costs no virtual time; what
    /// matters is whether it *fits the energy budget*. When it does, the
    /// dumped state survives in the device (the cache/mapping structures
    /// stay intact). When it does not — a mis-tuned budget the flow control
    /// failed to bound — the capacitor dies mid-dump and the cut is recorded
    /// as a structured over-budget outcome instead of aborting the process;
    /// the caller then degrades the device to volatile behaviour.
    fn emergency_dump(&mut self, now: Nanos) -> DumpOutcome {
        // Only slots not yet on flash need dumping (dirty + still-draining);
        // completed-but-unreclaimed entries are already safe on media.
        let live_slots = self.cache.occupied_at(now) as u64;
        let bytes = live_slots * LOGICAL_PAGE as u64 + self.ftl.unpersisted_entries() as u64 * 8;
        let within_budget = bytes <= self.cfg.capacitor_energy_bytes;
        if within_budget {
            self.xstats.dumps += 1;
            self.xstats.max_dump_bytes = self.xstats.max_dump_bytes.max(bytes);
            self.emergency_flag = true;
        } else {
            self.xstats.dump_over_budget += 1;
        }
        DumpOutcome { bytes, budget_bytes: self.cfg.capacitor_energy_bytes, within_budget }
    }

    /// Structural audit across the whole device, for the simulation-test
    /// harness: delegates to [`Ftl::check_invariants`] and
    /// [`WriteCache::check_invariants`], then reconciles the page-pool
    /// lease accounting — every outstanding [`simkit::PageBuf`] must be
    /// held by exactly one cache slot or one in-flight pre-image.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.ftl.check_invariants(&self.nand).map_err(|e| format!("ftl: {e}"))?;
        self.cache.check_invariants().map_err(|e| format!("cache: {e}"))?;
        // Host-boundary provenance conservation: every page the host wrote
        // carries exactly one cause tag.
        let by_cause: u64 = self.stats.pages_by_cause.iter().sum();
        if by_cause != self.stats.pages_written {
            return Err(format!(
                "host write attribution leak: causes sum to {by_cause}, host wrote {} pages",
                self.stats.pages_written
            ));
        }
        let preimage_bufs: usize = self
            .inflight
            .iter()
            .map(|w| w.preimages.iter().filter(|(_, p)| p.is_some()).count())
            .sum();
        let expected = self.cache.occupied() + preimage_bufs;
        let outstanding = self.page_pool.outstanding();
        if outstanding != expected {
            return Err(format!(
                "page-pool accounting: {outstanding} leases outstanding, but cache holds {} \
                 slots and the atomic writer {preimage_bufs} pre-images",
                self.cache.occupied()
            ));
        }
        Ok(())
    }

    /// Refresh the device-state gauges the time-series sampler reads:
    /// cache occupancy, unpersisted mapping entries (GC-journal debt),
    /// GC pressure (free blocks, free-pool shortfall below the GC trigger,
    /// media valid ratio) and — on capacitor-backed devices — the remaining
    /// capacitor energy headroom in bytes.
    fn update_gauges(&mut self) {
        let Some(tel) = self.tel.clone() else {
            return;
        };
        let occ = self.cache.occupied() as i64;
        let unpersisted = self.ftl.unpersisted_entries() as i64;
        tel.set_gauge("ssd.cache_occupancy", occ);
        tel.set_gauge("ftl.unpersisted_map", unpersisted);
        tel.set_gauge("ftl.free_blocks", self.ftl.free_blocks() as i64);
        tel.set_gauge("ftl.gc_debt", self.ftl.gc_debt() as i64);
        // Queue-depth observability: the admission queue (dirty slots
        // waiting for the drain engine) and the host-interface NCQ backlog
        // (accepted-but-unfinished transfer time at the arrival watermark).
        tel.set_gauge("ssd.cache_dirty", self.cache.dirty() as i64);
        tel.set_gauge(
            "ssd.ncq_backlog_ns",
            self.sata.backlog_at(self.last_arrival).min(i64::MAX as u64) as i64,
        );
        // The valid ratio walks every block's counter; refresh it on a
        // stride so the write hot path stays O(1). Per-channel occupancy
        // shares the stride: its gauge names are formatted, so sampling
        // every command would put an allocation on the hot path.
        if self.gauge_tick.is_multiple_of(64) {
            let (live, total) = self.ftl.live_slots();
            if let Some(pm) = (live * 1000).checked_div(total) {
                tel.set_gauge("ftl.valid_ratio_pm", pm as i64);
            }
            for ch in 0..self.nand.channel_count() {
                let occ = self.nand.channel_occupancy_at(ch, self.last_arrival);
                tel.set_gauge(&format!("nand.ch{ch}.queue"), occ as i64);
            }
        }
        self.gauge_tick = self.gauge_tick.wrapping_add(1);
        if matches!(self.cfg.protection, CacheProtection::CapacitorBacked) {
            let live = occ * LOGICAL_PAGE as i64 + unpersisted * 8;
            tel.set_gauge("ssd.capacitor_reserve", self.cfg.capacitor_energy_bytes as i64 - live);
        }
    }
}

impl BlockDevice for Ssd {
    fn capacity_pages(&self) -> u64 {
        self.cfg.logical_capacity_pages
    }

    fn read(&mut self, lpn: u64, pages: u32, buf: &mut [u8], now: Nanos) -> DevResult<Nanos> {
        if !self.powered {
            return Err(DevError::PoweredOff);
        }
        check_io(lpn, pages, buf.len(), self.cfg.logical_capacity_pages)?;
        self.note_arrival(now);
        self.stats.reads += 1;
        let start = now.max(self.barrier_until);
        let mut media_done = start;
        let mut all_cached = true;
        // Anatomy: the page reads all issue at `start` and overlap across
        // planes, so only the *critical* read — the one that achieves
        // `media_done` — is attributed (summing the overlapped ones would
        // exceed wall time and break conservation).
        let mut crit_split = None;
        for i in 0..pages as u64 {
            let off = i as usize * LOGICAL_PAGE;
            let out = &mut buf[off..off + LOGICAL_PAGE];
            if let Some(cached) = self.cache.get(lpn + i) {
                out.copy_from_slice(cached);
                continue;
            }
            all_cached = false;
            match self
                .ftl
                .read_slot(&mut self.nand, lpn + i, out, start)
                .map_err(Error::into_dev)?
            {
                SlotRead::Ok(done) => {
                    if done >= media_done {
                        media_done = done;
                        crit_split = Some(self.nand.last_split());
                    }
                }
                SlotRead::Unmapped => {}
                SlotRead::Shorn => {
                    self.xstats.shorn_reads += 1;
                    return Err(DevError::ShornPage { lpn: lpn + i });
                }
            }
        }
        if all_cached {
            self.xstats.cache_hit_reads += 1;
        }
        self.seg(SegKind::FlushCache, start - now);
        if let Some((wait, service)) = crit_split {
            self.seg(SegKind::ChannelWait, wait);
            self.seg(SegKind::MediaRead, service);
        }
        let xfer_done = self.sata_transfer(media_done, buf.len());
        self.seg_sata(media_done, xfer_done, buf.len());
        let done = xfer_done + self.cfg.host_read_overhead;
        self.opportunistic_drain(now)?;
        Ok(done)
    }

    fn write(&mut self, lpn: u64, data: &[u8], now: Nanos) -> DevResult<Nanos> {
        if !self.powered {
            return Err(DevError::PoweredOff);
        }
        let pages = (data.len() / LOGICAL_PAGE) as u32;
        check_io(lpn, pages, data.len(), self.cfg.logical_capacity_pages)?;
        self.note_arrival(now);
        self.stats.writes += 1;
        self.stats.pages_written += pages as u64;
        self.stats.pages_by_cause[self.cur_cause.index()] += pages as u64;
        let start = now.max(self.barrier_until);
        // A pending write barrier delays admission: charge the wait to the
        // flush that caused it.
        self.seg(SegKind::FlushCache, start - now);
        let done = if self.cfg.cache_enabled {
            self.write_cached(lpn, data, start)?
        } else {
            self.write_direct(lpn, data, start)?
        };
        if let Some(ledger) = &self.ledger {
            // A plain write ack carries the device cache's own contract.
            ledger.evidence(EvidenceKind::AtomicWriteAck, lpn, done, false);
        }
        self.update_gauges();
        Ok(done)
    }

    fn flush(&mut self, now: Nanos) -> DevResult<Nanos> {
        if !self.powered {
            return Err(DevError::PoweredOff);
        }
        self.note_arrival(now);
        self.stats.flushes += 1;
        let start = now.max(self.barrier_until);
        if let Some(tel) = &self.tel {
            tel.set_gauge("ssd.cache_occupancy", self.cache.occupied() as i64);
            // The span every barrier pays and DuraSSD's nobarrier mount
            // never emits: the trace-level twin of the flush_cache stall.
            tel.trace_begin("ssd", "flush_cache", start);
        }
        let gc_before = self.ftl.gc_time();
        let drained = self.drain_all(start)?;
        if let Some(tel) = &self.tel {
            // The cache-flush-queue drain time: how long FLUSH CACHE spends
            // pushing dirty slots to flash (§3.3 — DuraSSD avoids this wait
            // entirely by running the database with barriers disabled).
            tel.record("ssd.cache_drain", drained.saturating_sub(start));
        }
        let persisted = if self.cfg.persist_mapping_on_flush {
            self.ftl.persist_mapping(&mut self.nand, drained)
        } else {
            drained
        };
        let done = persisted + self.cfg.flush_fixed_cost;
        // Anatomy: everything the barrier forces — the queue behind a prior
        // barrier, the drain itself, the barrier-triggered mapping persist,
        // the fixed command cost — is flush-cache time. Only GC interference
        // stolen from the drain keeps its own cause (it could have fired on
        // any path). Threshold-triggered journal commits on the *write* path
        // still charge map_persist; a persist the barrier demanded is part
        // of the drain. Segments sum to wall exactly.
        let drain_span = drained - start;
        let gc_delta = (self.ftl.gc_time() - gc_before).min(drain_span);
        self.seg(SegKind::GcWait, gc_delta);
        self.seg(
            SegKind::FlushCache,
            (start - now)
                + (drain_span - gc_delta)
                + (persisted - drained)
                + self.cfg.flush_fixed_cost,
        );
        self.barrier_until = done;
        if let Some(tel) = &self.tel {
            tel.trace_end("ssd", "flush_cache", done);
        }
        if let Some(ledger) = &self.ledger {
            // A FLUSH CACHE completion is by definition a barrier ack.
            ledger.evidence(EvidenceKind::DeviceFlush, self.stats.flushes, done, true);
        }
        self.update_gauges();
        Ok(done)
    }

    fn discard(&mut self, lpn: u64, pages: u32, now: Nanos) -> DevResult<Nanos> {
        if !self.powered {
            return Err(DevError::PoweredOff);
        }
        if pages == 0 || lpn + pages as u64 > self.cfg.logical_capacity_pages {
            return Err(DevError::OutOfRange {
                lpn,
                pages,
                capacity: self.cfg.logical_capacity_pages,
            });
        }
        self.note_arrival(now);
        // Drop cached copies and mappings; the command itself is cheap.
        for i in 0..pages as u64 {
            let l = lpn + i;
            self.cache.remove(l);
            self.ftl.trim(l);
        }
        // The TRIM also supersedes any pre-images the atomic writer holds
        // for these lpns: if power is cut before an in-flight write's ack,
        // its rollback must not resurrect data the host just discarded.
        // (Found by the simtest fuzzer, `--target dura --seed 3`, minimal
        // trace `w:8:4 tcw:11 r:11:3`.)
        let end = lpn + pages as u64;
        for w in &mut self.inflight {
            w.preimages.retain(|&(l, _)| l < lpn || l >= end);
        }
        Ok(now + self.cfg.host_write_overhead / 4)
    }

    fn power_cut(&mut self, now: Nanos) {
        if !self.powered {
            return;
        }
        // The simulation applies command effects eagerly, so a cut cannot
        // travel back before commands the device has already observed: clamp
        // to the arrival high-water mark. Commands *in flight* at that point
        // (acknowledgement in the future) are still rolled back below.
        let now = now.max(self.last_arrival);
        self.powered = false;
        self.barrier_until = 0;
        if let Some(tel) = &self.tel {
            tel.trace_instant("ssd", "power_cut", now);
        }
        // Postmortem: capture everything the cut is about to destroy —
        // per-channel drain positions and the un-journalled mapping delta
        // *before* the NAND array and FTL react to the cut.
        let mut pm = DevicePostmortem {
            device: "ssd".into(),
            protection: match self.cfg.protection {
                CacheProtection::Volatile => "volatile".into(),
                CacheProtection::CapacitorBacked => "capacitor-backed".into(),
            },
            cut_at: now,
            channel_drain_positions: (0..self.cfg.geometry.planes())
                .map(|p| self.nand.plane_busy_until(p))
                .collect(),
            unpersisted_map: self.ftl.unpersisted_delta(),
            ..Default::default()
        };
        // 1. In-flight NAND programs shear.
        let shorn_before = self.nand.stats().shorn_pages;
        self.nand.power_cut(now);
        pm.nand_shorn_pages = self.nand.stats().shorn_pages - shorn_before;
        // 2. Atomic writer: host commands whose acknowledgement had not been
        //    sent yet are rolled back entirely — the host must never observe
        //    a half-applied command (§3.2).
        let pending: Vec<InflightWrite> = self.inflight.drain(..).collect();
        for w in pending.into_iter().rev() {
            if w.done > now {
                self.xstats.aborted_inflight_writes += 1;
                pm.aborted_inflight_writes += 1;
                for (lpn, pre) in w.preimages.into_iter().rev() {
                    self.cache.rollback(lpn, pre);
                }
            }
        }
        // Snapshot the cache *after* the atomic-writer rollback: what is
        // left are the slots the host believes durable (plus drains whose
        // reclaim never came).
        pm.dirty_slots = self
            .cache
            .iter()
            .map(|(&lpn, e)| CacheSlotSnap {
                lpn,
                draining: e.draining_until.is_some(),
                ackable_at: e.ackable_at,
            })
            .collect();
        // The slot table iterates in hash order; sort so postmortem reports
        // are byte-identical run to run.
        pm.dirty_slots.sort_unstable_by_key(|s| s.lpn);
        match self.cfg.protection {
            CacheProtection::Volatile => {
                // 3a. Acked-but-cached data evaporates; un-journalled
                //     mapping updates roll back.
                pm.rolled_back_map_entries = pm.unpersisted_map.len() as u64;
                let lost = self.cache.discard_all();
                self.xstats.lost_acked_slots += lost as u64;
                pm.discarded_dirty_slots = lost as u64;
                self.ftl.rollback_unpersisted(&self.nand);
            }
            CacheProtection::CapacitorBacked => {
                // 3b. The power-off detector fires the dump (§3.4.1). An
                //     over-budget dump fails and the device degrades to
                //     volatile behaviour for this cut — recorded, not fatal.
                let outcome = self.emergency_dump(now);
                if !outcome.within_budget {
                    pm.rolled_back_map_entries = pm.unpersisted_map.len() as u64;
                    let lost = self.cache.discard_all();
                    self.xstats.lost_acked_slots += lost as u64;
                    pm.discarded_dirty_slots = lost as u64;
                    self.ftl.rollback_unpersisted(&self.nand);
                }
                pm.dump = Some(outcome);
            }
        }
        self.postmortem = Some(pm);
        self.recovery = None;
    }

    fn reboot(&mut self, now: Nanos) -> Nanos {
        if self.powered {
            return now;
        }
        self.powered = true;
        self.last_arrival = 0;
        if let Some(tel) = &self.tel {
            tel.trace_begin("ssd", "postmortem_recovery", now);
        }
        // Torn-erase sweep: a cut during an in-flight erase leaves the
        // block refusing programs until it is erased again — but the FTL
        // already recycled it. Repair before serving I/O; skipping this
        // made the next frontier program on the block fail with
        // `OutOfOrderProgram` (simtest fuzzer, `--target dura --seed 0`).
        let (repair_done, repaired) = self.ftl.repair_media_after_cut(&mut self.nand, now);
        self.xstats.torn_erase_repairs += repaired;
        let mut snap = RecoverySnap { device: "ssd".into(), ..Default::default() };
        let ready = match self.cfg.protection {
            CacheProtection::CapacitorBacked => {
                let mut t = now + self.cfg.recharge_time; // recharge first (§3.4.2)
                if self.emergency_flag {
                    self.xstats.recoveries += 1;
                    // Replay the dump: every slot that was in the cache is
                    // re-queued for the flusher (its pre-cut program may have
                    // sheared), and the mapping merge is charged as reads of
                    // the dump area.
                    let requeued = self.cache.requeue_draining();
                    let dump_bytes =
                        self.cache.occupied_bytes() + self.ftl.unpersisted_entries() as u64 * 8;
                    let read_time = self.cfg.geometry.bus_time(dump_bytes as usize)
                        + self.cfg.geometry.t_read * (requeued as u64 / 4 + 1);
                    t += read_time;
                    self.emergency_flag = false;
                    snap.requeued_slots = requeued as u64;
                    snap.recovered_via_dump = true;
                }
                self.last_arrival = t;
                t
            }
            CacheProtection::Volatile => {
                // Mapping was already rolled back to the journalled state at
                // cut time; charge a boot-time journal scan.
                self.xstats.recoveries += 1;
                snap.scan_only = true;
                let t = now + 50_000_000;
                self.last_arrival = t;
                t
            }
        };
        // The torn-block repair erases overlap the recharge/scan window but
        // may outlast it; the device is not ready until both finish.
        let ready = ready.max(repair_done);
        self.last_arrival = self.last_arrival.max(ready);
        snap.ready_at = ready;
        self.recovery = Some(snap);
        if let Some(tel) = &self.tel {
            tel.trace_end("ssd", "postmortem_recovery", ready);
        }
        ready
    }

    fn is_powered(&self) -> bool {
        self.powered
    }

    fn gc_time(&self) -> Nanos {
        self.ftl.gc_time()
    }

    fn set_write_cause(&mut self, cause: WriteCause) {
        self.cur_cause = cause;
    }

    fn stats(&self) -> DeviceStats {
        let f = self.ftl.stats();
        let n = self.nand.stats();
        let spp = self.cfg.slots_per_page() as u64;
        DeviceStats {
            media_pages_written: f.slots_programmed + f.meta_programs * spp,
            gc_erases: f.gc_erases,
            erases: n.erases,
            media_pages_by_cause: f.slots_by_cause,
            ..self.stats
        }
    }
}

impl Forensic for Ssd {
    fn postmortem(&self) -> Option<&DevicePostmortem> {
        self.postmortem.as_ref()
    }

    fn take_postmortem(&mut self) -> Option<DevicePostmortem> {
        self.postmortem.take()
    }

    fn recovery_snap(&self) -> Option<&RecoverySnap> {
        self.recovery.as_ref()
    }

    fn attach_ledger(&mut self, ledger: Ledger) {
        Ssd::attach_ledger(self, ledger);
    }

    fn health(&self) -> Option<DeviceHealth> {
        let d = self.stats();
        let (wear_min, wear_max) = self.wear_spread();
        Some(DeviceHealth {
            shorn_reads: self.xstats.shorn_reads,
            dumps: self.xstats.dumps,
            dump_over_budget: self.xstats.dump_over_budget,
            max_dump_bytes: self.xstats.max_dump_bytes,
            recoveries: self.xstats.recoveries,
            lost_acked_slots: self.xstats.lost_acked_slots,
            host_pages_written: d.pages_written,
            media_pages_written: d.media_pages_written,
            absorbed_overwrites: self.absorbed_overwrites(),
            wear_spread: wear_max - wear_min,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(fill: u8) -> Vec<u8> {
        vec![fill; LOGICAL_PAGE]
    }

    fn dura() -> Ssd {
        Ssd::new(SsdConfig::tiny_test())
    }

    fn volatile() -> Ssd {
        Ssd::new(SsdConfig::tiny_volatile())
    }

    #[test]
    fn write_read_round_trip_through_cache() {
        let mut d = dura();
        let t = d.write(3, &page(7), 0).unwrap();
        let mut buf = page(0);
        let t2 = d.read(3, 1, &mut buf, t).unwrap();
        assert_eq!(buf, page(7));
        assert!(t2 > t);
        assert_eq!(d.ssd_stats().cache_hit_reads, 1);
    }

    #[test]
    fn unwritten_reads_zero() {
        let mut d = dura();
        let mut buf = page(9);
        d.read(100, 1, &mut buf, 0).unwrap();
        assert_eq!(buf, page(0));
    }

    #[test]
    fn cached_ack_is_fast_direct_is_slow() {
        let mut fast = dura();
        let t_fast = fast.write(0, &page(1), 0).unwrap();
        let mut cfg = SsdConfig::tiny_test();
        cfg.cache_enabled = false;
        let mut slow = Ssd::new(cfg);
        let t_slow = slow.write(0, &page(1), 0).unwrap();
        assert!(
            t_fast * 5 < t_slow,
            "cache ack {t_fast} should be much faster than direct {t_slow}"
        );
    }

    #[test]
    fn flush_persists_everything_to_media() {
        let mut d = dura();
        let mut t = 0;
        for i in 0..8u64 {
            t = d.write(i, &page(i as u8), t).unwrap();
        }
        let t = d.flush(t).unwrap();
        assert_eq!(d.cache_occupancy(), 0);
        assert!(d.ftl_stats().slots_programmed >= 8);
        // Still readable from media.
        let mut buf = page(0);
        d.read(5, 1, &mut buf, t).unwrap();
        assert_eq!(buf, page(5));
    }

    #[test]
    fn durable_cache_survives_power_cut() {
        let mut d = dura();
        let t = d.write(3, &page(7), 0).unwrap();
        d.power_cut(t + 1); // acked, still in DRAM
        let t2 = d.reboot(t + 1_000_000);
        let mut buf = page(0);
        d.read(3, 1, &mut buf, t2).unwrap();
        assert_eq!(buf, page(7), "acked write must survive on DuraSSD");
        assert_eq!(d.ssd_stats().lost_acked_slots, 0);
        assert_eq!(d.ssd_stats().dumps, 1);
        assert_eq!(d.ssd_stats().recoveries, 1);
    }

    #[test]
    fn volatile_cache_loses_acked_write() {
        let mut d = volatile();
        let t = d.write(3, &page(7), 0).unwrap();
        d.power_cut(t + 1);
        let t2 = d.reboot(t + 1_000_000);
        let mut buf = page(9);
        d.read(3, 1, &mut buf, t2).unwrap();
        assert_eq!(buf, page(0), "acked write is gone on a volatile cache");
        assert_eq!(d.ssd_stats().lost_acked_slots, 1);
    }

    #[test]
    fn volatile_cache_keeps_flushed_write() {
        let mut d = volatile();
        let t = d.write(3, &page(7), 0).unwrap();
        let t = d.flush(t).unwrap();
        d.power_cut(t + 1);
        let t2 = d.reboot(t + 1_000_000);
        let mut buf = page(0);
        d.read(3, 1, &mut buf, t2).unwrap();
        assert_eq!(buf, page(7), "flushed write must survive everywhere");
    }

    #[test]
    fn inflight_write_is_atomically_discarded() {
        let mut d = dura();
        // Establish an old value and flush it down.
        let t = d.write(3, &page(1), 0).unwrap();
        let t = d.flush(t).unwrap();
        // New write; cut power before its ack time.
        let t2 = d.write(3, &page(2), t).unwrap();
        d.power_cut(t2 - 1);
        let t3 = d.reboot(t2 + 1_000_000);
        let mut buf = page(0);
        d.read(3, 1, &mut buf, t3).unwrap();
        assert_eq!(buf, page(1), "unacked write must fully roll back");
        assert_eq!(d.ssd_stats().aborted_inflight_writes, 1);
    }

    #[test]
    fn multi_page_write_is_atomic_under_cut() {
        let mut d = dura();
        let mut init = Vec::new();
        for i in 0..4u8 {
            init.extend_from_slice(&page(i + 10));
        }
        let t = d.write(0, &init, 0).unwrap();
        let t = d.flush(t).unwrap();
        let mut update = Vec::new();
        for i in 0..4u8 {
            update.extend_from_slice(&page(i + 20));
        }
        let t2 = d.write(0, &update, t).unwrap();
        d.power_cut(t2 - 1); // mid-command
        let t3 = d.reboot(t2 + 1_000_000);
        let mut buf = vec![0u8; 4 * LOGICAL_PAGE];
        d.read(0, 4, &mut buf, t3).unwrap();
        for i in 0..4usize {
            assert_eq!(
                buf[i * LOGICAL_PAGE],
                (i + 10) as u8,
                "page {i}: old value expected, no tearing"
            );
        }
    }

    #[test]
    fn sustained_writes_trigger_backpressure_and_gc() {
        let mut d = dura();
        let cap = d.capacity_pages();
        let mut t = 0;
        // Write far more than the raw device capacity with overwrites.
        for i in 0..(cap * 6) {
            t = d.write(i % cap, &page((i % 200) as u8), t).unwrap();
        }
        assert!(d.ftl_stats().gc_erases > 0, "GC must have run");
        // Everything still readable and consistent.
        let mut buf = page(0);
        let lpn = (cap * 6 - 1) % cap;
        d.read(lpn, 1, &mut buf, t).unwrap();
        assert_eq!(buf[0], ((cap * 6 - 1) % 200) as u8);
    }

    #[test]
    fn flush_of_clean_device_is_cheap_but_nonzero() {
        let mut d = dura();
        let t = d.flush(0).unwrap();
        assert!(t >= d.config().flush_fixed_cost);
        assert!(t < 100 * d.config().flush_fixed_cost);
    }

    #[test]
    fn out_of_range_io_rejected() {
        let mut d = dura();
        let cap = d.capacity_pages();
        assert!(matches!(d.write(cap, &page(1), 0), Err(DevError::OutOfRange { .. })));
        let mut buf = page(0);
        assert!(matches!(d.read(cap - 1, 2, &mut buf, 0), Err(DevError::OutOfRange { .. })));
    }

    #[test]
    fn powered_off_device_rejects_io() {
        let mut d = dura();
        d.power_cut(0);
        assert!(matches!(d.write(0, &page(1), 1), Err(DevError::PoweredOff)));
        let mut buf = page(0);
        assert!(matches!(d.read(0, 1, &mut buf, 1), Err(DevError::PoweredOff)));
        assert!(matches!(d.flush(1), Err(DevError::PoweredOff)));
    }

    #[test]
    fn write_amplification_visible_in_stats() {
        let mut d = dura();
        let mut t = 0;
        for i in 0..32u64 {
            t = d.write(i % 8, &page(i as u8), t).unwrap();
        }
        let t = d.flush(t).unwrap();
        let _ = t;
        let s = d.stats();
        assert_eq!(s.pages_written, 32);
        // Coalescing in the cache means fewer media writes than host writes.
        assert!(
            s.media_pages_written < 32 + 8,
            "coalescing should absorb rewrites: media={}",
            s.media_pages_written
        );
    }

    #[test]
    fn volatile_rollback_can_corrupt_unflushed_overwrites() {
        // The Zheng-style anomaly: overwrite an already-persisted page, GC
        // the old version away, then cut power before the mapping journal
        // catches up. The persisted mapping points into erased flash.
        let mut cfg = SsdConfig::tiny_volatile();
        cfg.cache_enabled = true;
        let mut d = Ssd::new(cfg);
        let cap = d.capacity_pages();
        let mut t = 0;
        for i in 0..cap {
            t = d.write(i, &page(1), t).unwrap();
        }
        t = d.flush(t).unwrap();
        // Heavy churn without any flush: GC erases blocks whose slots the
        // journalled mapping still references.
        for round in 0..6u64 {
            for i in 0..cap {
                t = d.write(i, &page(round as u8 + 2), t).unwrap();
            }
        }
        d.power_cut(t);
        let t2 = d.reboot(t + 1);
        let mut corrupt = 0;
        let mut stale = 0;
        let mut buf = page(0);
        for i in 0..cap {
            match d.read(i, 1, &mut buf, t2 + i) {
                Err(DevError::ShornPage { .. }) => corrupt += 1,
                Ok(_) if buf[0] != 7 => stale += 1,
                _ => {}
            }
        }
        assert!(
            corrupt + stale > 0,
            "a volatile device must exhibit lost/corrupt data in this scenario"
        );
    }

    #[test]
    fn discard_unmaps_and_reads_zero() {
        let mut d = dura();
        let t = d.write(3, &page(7), 0).unwrap();
        let t = d.flush(t).unwrap();
        let t2 = d.discard(3, 1, t).unwrap();
        let mut buf = page(9);
        d.read(3, 1, &mut buf, t2).unwrap();
        assert_eq!(buf, page(0), "trimmed page reads as zero");
        // And it stays zero across a power cycle.
        d.power_cut(t2 + 1);
        let t3 = d.reboot(t2 + 2);
        d.read(3, 1, &mut buf, t3).unwrap();
        assert_eq!(buf, page(0));
    }

    #[test]
    fn discard_of_cached_write_cancels_it() {
        let mut d = dura();
        let t = d.write(5, &page(1), 0).unwrap();
        let t2 = d.discard(5, 1, t).unwrap();
        let mut buf = page(9);
        d.read(5, 1, &mut buf, t2).unwrap();
        assert_eq!(buf, page(0));
    }

    /// Regression, found by the simtest fuzzer (`--target dura --seed 3`,
    /// minimal trace `w:8:4 tcw:11 r:11:3`): TRIM of a page whose latest
    /// write is still un-acked, followed by a power cut before the ack.
    /// The atomic writer's rollback restored the *pre-write* cache entry
    /// from the in-flight record's pre-image, resurrecting data the TRIM
    /// had already discarded — the read returned the old version instead
    /// of zeros. `discard` must purge pre-images of trimmed lpns from the
    /// in-flight records.
    #[test]
    fn trim_of_unacked_write_is_not_resurrected_by_cut_rollback() {
        let mut d = dura();
        // Acked baseline version on lpn 11.
        let t = d.write(11, &page(1), 0).unwrap();
        // New write (un-acked), TRIM while in flight, cut before the ack.
        let t2 = d.write(11, &page(2), t).unwrap();
        d.discard(11, 1, t).unwrap();
        d.power_cut(t2 - 1);
        let t3 = d.reboot(t2 + 1_000_000);
        d.check_invariants().unwrap();
        let mut buf = page(9);
        d.read(11, 1, &mut buf, t3).unwrap();
        assert_eq!(buf, page(0), "TRIM is the last surviving word on lpn 11");
    }

    /// Trim audit (durable path): a TRIM whose map change is still in the
    /// unpersisted delta must survive a power cut. The capacitor dump
    /// carries the delta across the cut, so the trimmed page stays zero
    /// after recovery — it must NOT be resurrected from the journalled
    /// (pre-trim) mapping.
    #[test]
    fn dura_unpersisted_trim_survives_power_cut() {
        let mut d = dura();
        let t = d.write(4, &page(3), 0).unwrap();
        let t = d.flush(t).unwrap(); // journals the mapping: lpn 4 -> media
        let t2 = d.discard(4, 1, t).unwrap(); // map change NOT yet journalled
        d.power_cut(t2 + 1);
        let t3 = d.reboot(t2 + 1_000_000);
        d.check_invariants().unwrap();
        let mut buf = page(9);
        d.read(4, 1, &mut buf, t3).unwrap();
        assert_eq!(buf, page(0), "capacitor dump must preserve the trim");
    }

    /// Trim audit (volatile path): an *unjournalled* TRIM is legitimately
    /// lost on power cut. Volatile recovery replays the journal plus an
    /// out-of-band scan, and the pre-trim copy is still physically intact
    /// on flash with a journalled mapping — so the old data resurrects.
    /// This mirrors real TRIM semantics: a discard is only durable once the
    /// mapping change reaches the journal (i.e. after a flush).
    #[test]
    fn volatile_unflushed_trim_resurrects_old_data_after_cut() {
        let mut d = volatile();
        let t = d.write(4, &page(3), 0).unwrap();
        let t = d.flush(t).unwrap(); // journals lpn 4 -> media copy
        let t2 = d.discard(4, 1, t).unwrap(); // trim never journalled
        d.power_cut(t2 + 1);
        let t3 = d.reboot(t2 + 1_000_000);
        d.check_invariants().unwrap();
        let mut buf = page(9);
        d.read(4, 1, &mut buf, t3).unwrap();
        assert_eq!(buf, page(3), "unjournalled trim rolls back to the journalled mapping");
    }

    /// Trim audit (volatile path): once the TRIM's map change has been
    /// journalled by a flush, it is strictly durable — the page stays zero
    /// across a power cut and the old copy must not resurrect.
    #[test]
    fn volatile_flushed_trim_stays_durable_across_cut() {
        let mut d = volatile();
        let t = d.write(4, &page(3), 0).unwrap();
        let t = d.flush(t).unwrap();
        let t = d.discard(4, 1, t).unwrap();
        let t2 = d.flush(t).unwrap(); // journals the trim
        d.power_cut(t2 + 1);
        let t3 = d.reboot(t2 + 1_000_000);
        d.check_invariants().unwrap();
        let mut buf = page(9);
        d.read(4, 1, &mut buf, t3).unwrap();
        assert_eq!(buf, page(0), "journalled trim is strictly durable");
    }

    /// Regression, found by the simtest fuzzer (`--target dura --seed 0`,
    /// minimal trace `g:42:45 g:162:57 cut cw:6:1 tcw:9 g:90:46 cw:11:4
    /// w:101:4`): a power cut landing while a GC erase is still in flight
    /// leaves the victim block *torn* (NAND refuses to program it until
    /// re-erased), but the FTL had already returned it to the free pool.
    /// The next time the block was handed out as a write frontier every
    /// program failed with `OutOfOrderProgram { expected: u32::MAX }`.
    /// Reboot must sweep for torn erases and re-erase before serving I/O.
    #[test]
    fn torn_gc_erase_is_repaired_on_reboot() {
        let mut d = dura();
        let cap = d.capacity_pages();
        let mut t = 0;
        let mut i = 0u64;
        // Cycle: churn until a fresh GC erase fires, then cut immediately —
        // the write ack precedes the erase completion by design, so the cut
        // lands inside the erase window and tears it. Repeat a few times to
        // hit several victims.
        for _ in 0..4 {
            let before = d.ftl_stats().gc_erases;
            while d.ftl_stats().gc_erases == before {
                t = d.write(i % cap, &page((i % 200) as u8), t).unwrap();
                i += 1;
            }
            d.power_cut(t);
            t = d.reboot(t + 1_000_000);
            d.check_invariants().unwrap();
        }
        // The torn victims re-enter service as frontiers under more churn:
        // with the bug this panicked inside the FTL's frontier program.
        for j in 0..cap * 3 {
            t = d.write(j % cap, &page((j % 199) as u8), t).unwrap();
        }
        d.check_invariants().unwrap();
    }

    #[test]
    fn provenance_conserved_under_gc_churn() {
        // Drive the device far past its raw capacity so GC relocations and
        // mapping journals pile up, then audit the conservation identity:
        // every media page carries exactly one cause tag.
        let mut d = dura();
        let cap = d.capacity_pages();
        let mut t = 0;
        for i in 0..(cap * 6) {
            t = d.write(i % cap, &page((i % 200) as u8), t).unwrap();
        }
        d.flush(t).unwrap();
        d.check_invariants().unwrap();
        let s = d.stats();
        assert!(s.gc_erases > 0, "churn past capacity must GC");
        assert!(s.media_pages_by_cause[WriteCause::GcRelocate.index()] > 0);
        assert!(s.media_pages_by_cause[WriteCause::MapPersist.index()] > 0);
        assert!(s.media_pages_by_cause[WriteCause::HostData.index()] > 0);
        let media_sum: u64 = s.media_pages_by_cause.iter().sum();
        assert_eq!(media_sum, s.media_pages_written, "media attribution must conserve");
        let host_sum: u64 = s.pages_by_cause.iter().sum();
        assert_eq!(host_sum, s.pages_written, "host attribution must conserve");
        // GC and mapping traffic is device-internal: it must never appear
        // at the host boundary.
        assert_eq!(s.pages_by_cause[WriteCause::GcRelocate.index()], 0);
        assert_eq!(s.pages_by_cause[WriteCause::MapPersist.index()], 0);
    }

    #[test]
    fn provenance_conserved_across_dump_and_recovery() {
        // A power cut with slots in flight fires the capacitor dump; the
        // reboot requeues those slots as EmergencyDump work. Conservation
        // must hold across the whole cut/recover/drain cycle.
        let mut d = dura();
        let mut t = 0;
        for i in 0..64u64 {
            t = d.write(i % 8, &page(i as u8), t).unwrap();
        }
        // Touch fresh LPNs once each so the cut lands with slots mid-drain:
        // the flusher marks them draining and nothing overwrites them back
        // to dirty before the lights go out.
        for lpn in 100..116u64 {
            t = d.write(lpn, &page(lpn as u8), t).unwrap();
        }
        d.power_cut(t);
        t = d.reboot(t + 1_000_000);
        t = d.flush(t).unwrap();
        d.check_invariants().unwrap();
        let s = d.stats();
        assert!(d.health().unwrap().dumps >= 1, "capacitor dump must have fired");
        assert!(
            s.media_pages_by_cause[WriteCause::EmergencyDump.index()] > 0,
            "requeued dump slots must be attributed to the dump replay"
        );
        let media_sum: u64 = s.media_pages_by_cause.iter().sum();
        assert_eq!(media_sum, s.media_pages_written, "conservation across cut + recovery");
        // Keep going after recovery: a second cycle must conserve too.
        for i in 0..128u64 {
            t = d.write(i % 16, &page((i + 3) as u8), t).unwrap();
        }
        d.power_cut(t);
        d.reboot(t + 1_000_000);
        d.check_invariants().unwrap();
        let s = d.stats();
        let media_sum: u64 = s.media_pages_by_cause.iter().sum();
        assert_eq!(media_sum, s.media_pages_written);
    }

    /// Run one device command inside an anatomy frame and assert the
    /// conservation identity on the resulting breakdown.
    fn framed(
        d: &mut Ssd,
        tel: &Telemetry,
        name: &str,
        now: Nanos,
        f: impl FnOnce(&mut Ssd, Nanos) -> DevResult<Nanos>,
    ) -> (Nanos, telemetry::OpBreakdown) {
        tel.begin_frame(name, now);
        let done = f(d, now).unwrap();
        tel.end_frame(name, done);
        let bd = tel.last_breakdown().expect("frame closed");
        assert_eq!(bd.wall, done - now, "{name}: wall is the op latency");
        assert!(bd.is_conserved(), "{name}: segments must sum to wall");
        assert_eq!(tel.anatomy_violations(), 0, "{name}: no over-attribution");
        (done, bd)
    }

    fn anatomy_dev(cfg: SsdConfig) -> (Ssd, Telemetry) {
        let mut d = Ssd::new(cfg);
        let tel = Telemetry::new();
        tel.enable_anatomy(4);
        d.attach_telemetry(tel.clone());
        (d, tel)
    }

    #[test]
    fn anatomy_conserves_across_command_mix() {
        let (mut d, tel) = anatomy_dev(SsdConfig::tiny_test());
        let cap = d.capacity_pages();
        let mut t = 0;
        for i in 0..(cap * 3) {
            let (done, _) = framed(&mut d, &tel, "dev.write", t, |d, now| {
                d.write(i % cap, &page(i as u8), now)
            });
            t = done;
            if i % 7 == 0 {
                let (done, _) = framed(&mut d, &tel, "dev.read", t, |d, now| {
                    let mut buf = page(0);
                    d.read(i % cap, 1, &mut buf, now)
                });
                t = done;
            }
            if i % 97 == 0 {
                let (done, _) = framed(&mut d, &tel, "dev.flush", t, |d, now| d.flush(now));
                t = done;
            }
        }
        let (_, _) = framed(&mut d, &tel, "dev.discard", t, |d, now| d.discard(0, 4, now));
        assert_eq!(tel.anatomy_violations(), 0);
        // The mix exercised the taxonomy: transfers on every command, media
        // reads on cache misses, programs via direct flush drains.
        assert!(tel.histogram("seg.xfer").unwrap().count() > 0);
        assert!(tel.histogram("seg.flush_cache").unwrap().count() > 0);
        d.check_invariants().unwrap();
    }

    #[test]
    fn durable_write_tail_has_no_flush_cache_segment() {
        // The paper's claim at device granularity: with the capacitor-backed
        // cache absorbing fsync, no write ever carries flush-cache time.
        let (mut d, tel) = anatomy_dev(SsdConfig::tiny_test());
        let mut t = 0;
        for i in 0..64u64 {
            let (done, bd) =
                framed(&mut d, &tel, "dev.write", t, |d, now| d.write(i % 16, &page(1), now));
            assert_eq!(bd.seg(SegKind::FlushCache), 0, "no barrier, no flush segment");
            t = done;
        }
        // A volatile deployment flushing between writes pays it on the very
        // next command (the barrier pushes admission out).
        let (mut v, vtel) = anatomy_dev(SsdConfig::tiny_volatile());
        let t1 = v.write(0, &page(1), 0).unwrap();
        let fl = v.flush(t1).unwrap();
        let (_, bd) =
            framed(&mut v, &vtel, "dev.write", fl - 1, |d, now| d.write(1, &page(2), now));
        assert!(bd.seg(SegKind::FlushCache) > 0, "barrier wait is flush-cache time");
    }

    #[test]
    fn flush_breakdown_is_fully_attributed() {
        let (mut d, tel) = anatomy_dev(SsdConfig::tiny_volatile());
        let mut t = 0;
        for i in 0..8u64 {
            t = d.write(i, &page(i as u8), t).unwrap();
        }
        let (_, bd) = framed(&mut d, &tel, "dev.flush", t, |d, now| d.flush(now));
        assert!(bd.seg(SegKind::FlushCache) > 0, "drain time is flush-cache");
        assert_eq!(
            bd.seg(SegKind::MapPersist),
            0,
            "the barrier-triggered mapping persist is part of the flush-cache cost"
        );
        assert_eq!(bd.seg(SegKind::Host), 0, "flush is attributed to the nanosecond");
    }

    #[test]
    fn gc_segment_appears_only_when_gc_preempted_the_op() {
        let (mut d, tel) = anatomy_dev(SsdConfig::tiny_test());
        let cap = d.capacity_pages();
        let mut t = 0;
        let mut gc_charged_ops = 0u64;
        for i in 0..(cap * 6) {
            let gc_before = d.ftl_stats().gc_ns;
            let (done, bd) = framed(&mut d, &tel, "dev.write", t, |d, now| {
                d.write(i % cap, &page(i as u8), now)
            });
            t = done;
            let gc_delta = d.ftl_stats().gc_ns - gc_before;
            if gc_delta == 0 {
                assert_eq!(
                    bd.seg(SegKind::GcWait),
                    0,
                    "op {i}: GC segment without any GC activity"
                );
            }
            if bd.seg(SegKind::GcWait) > 0 {
                assert!(gc_delta > 0, "op {i}: GC segment requires GC preemption");
                gc_charged_ops += 1;
            }
        }
        assert!(d.ftl_stats().gc_erases > 0, "workload must trigger GC");
        assert!(
            gc_charged_ops > 0,
            "sustained overwrite pressure must surface GC interference in some op"
        );
        // First write on a fresh device can never carry a GC segment.
        let (mut fresh, ftel) = anatomy_dev(SsdConfig::tiny_test());
        let (_, bd) = framed(&mut fresh, &ftel, "dev.write", 0, |d, now| d.write(0, &page(1), now));
        assert_eq!(bd.seg(SegKind::GcWait), 0);
    }

    #[test]
    fn littles_law_holds_on_the_host_interface() {
        // Utilization form of Little's law on the SATA link: the
        // time-average number of commands in service, L = busy_time / T,
        // equals λ·S̄ = (N/T)·(Σ service / N). Cross-multiplying, simkit's
        // Timeline busy-time accounting must equal the anatomy's `seg.xfer`
        // attribution *exactly* — two independent accountings of the same
        // nanoseconds.
        let (mut d, tel) = anatomy_dev(SsdConfig::tiny_test());
        let mut t = 0;
        let n = 200u64;
        for i in 0..n {
            let (done, _) =
                framed(&mut d, &tel, "dev.write", t, |d, now| d.write(i % 32, &page(1), now));
            t = done;
        }
        let xfer = tel.histogram("seg.xfer").unwrap();
        assert_eq!(xfer.count(), n);
        let (sata_busy, _, _) = d.busy_times();
        assert_eq!(
            xfer.sum(),
            sata_busy as u128,
            "anatomy transfer attribution must equal Timeline busy time"
        );
        // Closed loop at queue depth 1: no command ever queues behind
        // another on the interface, so the wait side of the split is zero...
        assert!(tel.histogram("seg.ncq_wait").is_none());
        // ...while a burst issued at one instant serialises: command k
        // waits behind k predecessors, and the measured waits match the
        // deterministic k·S (k-1)/2 total of a D/D/1 queue exactly.
        let (mut b, btel) = anatomy_dev(SsdConfig::tiny_test());
        let k = 8u64;
        let mut last = 0;
        for i in 0..k {
            btel.begin_frame("dev.write", 0);
            last = b.write(i, &page(1), 0).unwrap();
            btel.end_frame("dev.write", last);
        }
        let svc = (btel.histogram("seg.xfer").unwrap().sum() / k as u128) as u64;
        let waits = btel.histogram("seg.ncq_wait").unwrap();
        assert_eq!(waits.sum(), (svc * k * (k - 1) / 2) as u128, "D/D/1 burst queueing");
        assert_eq!(btel.anatomy_violations(), 0);
        // The admission/NCQ queue-depth gauges are live after the burst.
        assert!(btel.gauge("ssd.cache_dirty").is_some());
        assert!(btel.gauge("ssd.ncq_backlog_ns").is_some());
        assert!(btel.gauge("nand.ch0.queue").is_some());
        let _ = last;
    }

    #[test]
    fn wear_stays_bounded_under_skewed_churn() {
        // Hammer a handful of logical pages; wear-aware GC must spread the
        // erases rather than thrash a single block forever.
        let mut d = dura();
        let mut t = 0;
        for i in 0..6_000u64 {
            t = d.write(i % 8, &page(i as u8), t).unwrap();
        }
        let s = d.ftl_stats();
        assert!(s.gc_erases > 0, "churn must GC");
        let (min, max) = d.wear_spread();
        // Greedy GC with wear tie-breaking keeps the spread bounded: the
        // most-erased data block stays within a constant band of the total.
        assert!(max >= 1);
        assert!(
            (max - min) as u64 <= s.gc_erases,
            "wear spread {max}-{min} too wide for {} erases",
            s.gc_erases
        );
    }
}

//! Flash translation layer (§3.1.2).
//!
//! * **4KB mapping over 8KB NAND pages**: the mapping unit is a 4KB *slot*;
//!   each physical page holds `slots_per_page` (2) of them. Under write
//!   load the flusher finds slot pairs to combine into one program — the
//!   paper's answer to the physical/logical granularity disparity.
//! * **Per-plane write frontiers**: each plane fills its own active block, so
//!   consecutive flushes stripe across all planes and channels (the §2.3
//!   parallelism argument).
//! * **Garbage collection**: greedy min-valid victim per plane, triggered
//!   when a plane's free-block pool dips below a threshold.
//! * **Mapping journal**: modified mapping entries are tracked; volatile
//!   devices persist them on FLUSH (and lose un-journalled updates on power
//!   cuts), DuraSSD dumps them under capacitor power (§3.4.1).
//! * **Dump area**: a reserved set of always-clean blocks per plane so the
//!   power-failure dump never waits for an erase.

use crate::config::SsdConfig;
use nand::{NandArray, NandError};
use simkit::Nanos;
use telemetry::Telemetry;

/// Sentinel: logical page not mapped / slot not in use.
const NONE: u64 = u64::MAX;

/// What a block is currently used for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    /// In the plane's free pool.
    Free,
    /// The plane's active write frontier.
    Frontier,
    /// Full of data (GC candidate).
    Sealed,
    /// Mapping-journal block (cycled, never GC'd).
    Meta,
    /// Power-failure dump area (kept erased).
    Dump,
}

/// Outcome of a slot read.
#[derive(Debug, PartialEq, Eq)]
pub enum SlotRead {
    /// Data copied into the buffer; media access completed at the time.
    Ok(Nanos),
    /// Logical page never written: buffer zero-filled, no media access.
    Unmapped,
    /// The backing physical page is unreadable: either shorn by a power cut
    /// mid-program, or the mapping is corrupt (it points at erased flash —
    /// the "metadata corruption" failure mode Zheng et al. observed on
    /// volatile-cache SSDs after mapping rollback).
    Shorn,
}

/// FTL statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct FtlStats {
    /// Data-page programs issued (pairs count once).
    pub data_programs: u64,
    /// 4KB slots written to media (including GC relocations).
    pub slots_programmed: u64,
    /// Slots relocated by garbage collection.
    pub gc_relocated_slots: u64,
    /// Blocks erased by garbage collection.
    pub gc_erases: u64,
    /// Mapping-journal page programs.
    pub meta_programs: u64,
    /// Cumulative host-visible GC pause time (ns): how long foreground
    /// programs were delayed behind GC relocations and erases.
    pub gc_ns: Nanos,
}

/// The flash translation layer.
pub struct Ftl {
    spp: usize,
    map: Vec<u64>,
    rmap: Vec<u64>,
    valid: Vec<u32>,
    role: Vec<Role>,
    plane_free: Vec<Vec<u32>>,
    frontier: Vec<(u32, u32)>, // per plane: (block, next slot index within block)
    meta_block: Vec<u32>,      // per plane
    meta_next: Vec<u32>,       // next page within meta block
    dump_blocks: Vec<u32>,
    plane_cursor: usize,
    planes: usize,
    slots_per_block: u32,
    gc_threshold: usize,
    /// Flat unpersisted-map overlay, replacing a per-entry hash map: for
    /// every lpn whose mapping changed since the last persist,
    /// `up_mark[lpn] == up_epoch` and `up_old[lpn]` holds the value at the
    /// last persist. `up_list` records touched lpns in first-touch order;
    /// a persist advances the epoch instead of clearing the arrays, so the
    /// hot path is two dense-array accesses and zero allocations.
    up_old: Vec<u64>,
    up_mark: Vec<u32>,
    up_epoch: u32,
    up_list: Vec<u64>,
    /// Grow-once scratch page for frontier/meta programs (no `vec!` per
    /// program).
    page_scratch: Vec<u8>,
    /// Grow-once scratch page for slot/GC reads.
    read_scratch: Vec<u8>,
    /// GC relocation staging: survivor lpns and their 4KB slot data, flat.
    /// Reused across collections (grow-only).
    gc_lpns: Vec<u64>,
    gc_data: Vec<u8>,
    stats: FtlStats,
    tel: Option<Telemetry>,
}

impl Ftl {
    /// Build an FTL for the given config over a pristine NAND array.
    pub fn new(cfg: &SsdConfig) -> Self {
        let geo = cfg.geometry;
        let planes = geo.planes();
        let spp = cfg.slots_per_page();
        let total_blocks = geo.blocks();
        let total_slots = geo.total_pages() * spp as u64;
        let mut role = vec![Role::Free; total_blocks];
        let mut plane_free: Vec<Vec<u32>> = vec![Vec::new(); planes];
        // Blocks stripe across planes: block b is on plane b % planes.
        for b in (0..total_blocks as u32).rev() {
            plane_free[b as usize % planes].push(b);
        }
        // Reserve dump blocks and one meta block per plane, then open a
        // frontier per plane.
        let mut dump_blocks = Vec::new();
        let mut meta_block = Vec::with_capacity(planes);
        let mut frontier = Vec::with_capacity(planes);
        for free in plane_free.iter_mut() {
            for _ in 0..cfg.dump_reserve_blocks {
                let b = free.pop().expect("plane too small for dump reserve");
                role[b as usize] = Role::Dump;
                dump_blocks.push(b);
            }
            let m = free.pop().expect("plane too small for meta block");
            role[m as usize] = Role::Meta;
            meta_block.push(m);
            let f = free.pop().expect("plane too small for frontier");
            role[f as usize] = Role::Frontier;
            frontier.push((f, 0));
        }
        Self {
            spp,
            map: vec![NONE; cfg.logical_capacity_pages as usize],
            rmap: vec![NONE; total_slots as usize],
            valid: vec![0; total_blocks],
            role,
            plane_free,
            frontier,
            meta_next: vec![0; planes],
            meta_block,
            dump_blocks,
            plane_cursor: 0,
            planes,
            slots_per_block: (geo.pages_per_block * spp) as u32,
            gc_threshold: cfg.gc_free_threshold,
            up_old: vec![NONE; cfg.logical_capacity_pages as usize],
            up_mark: vec![0; cfg.logical_capacity_pages as usize],
            up_epoch: 1,
            up_list: Vec::new(),
            page_scratch: vec![0u8; geo.page_size],
            read_scratch: vec![0u8; geo.page_size],
            gc_lpns: Vec::new(),
            gc_data: Vec::new(),
            stats: FtlStats::default(),
            tel: None,
        }
    }

    /// Attach a telemetry handle: GC pauses are histogrammed under
    /// `ftl.gc_pause` and NAND program/erase service times under
    /// `nand.program` / `nand.erase`.
    pub fn attach_telemetry(&mut self, tel: Telemetry) {
        self.tel = Some(tel);
    }

    /// FTL statistics.
    pub fn stats(&self) -> FtlStats {
        self.stats
    }

    /// Cumulative host-visible GC pause time (ns).
    pub fn gc_time(&self) -> Nanos {
        self.stats.gc_ns
    }

    /// Number of mapping entries modified since the last persist.
    pub fn unpersisted_entries(&self) -> usize {
        self.up_list.len()
    }

    /// The un-journalled mapping delta, for the power-cut postmortem:
    /// `(lpn, old_slot)` pairs, `old_slot == None` when the page was mapped
    /// for the first time since the last persist. Sorted by LPN so reports
    /// are deterministic.
    pub fn unpersisted_delta(&self) -> Vec<(u64, Option<u64>)> {
        let mut v: Vec<(u64, Option<u64>)> = self
            .up_list
            .iter()
            .map(|&lpn| {
                let old = self.up_old[lpn as usize];
                (lpn, (old != NONE).then_some(old))
            })
            .collect();
        v.sort_unstable_by_key(|&(lpn, _)| lpn);
        v
    }

    /// The reserved dump blocks (used by the device's recovery manager).
    pub fn dump_blocks(&self) -> &[u32] {
        &self.dump_blocks
    }

    /// Current mapping of an lpn (testing / recovery).
    pub fn slot_of(&self, lpn: u64) -> Option<u64> {
        match self.map.get(lpn as usize) {
            Some(&s) if s != NONE => Some(s),
            _ => None,
        }
    }

    fn note_map_change(&mut self, lpn: u64, old: u64) {
        let i = lpn as usize;
        if self.up_mark[i] != self.up_epoch {
            self.up_mark[i] = self.up_epoch;
            self.up_old[i] = old;
            self.up_list.push(lpn);
        }
    }

    /// Forget the delta by advancing the epoch (the dense arrays are left
    /// in place; a u32 wrap resets the marks so stale epochs cannot alias).
    fn clear_unpersisted(&mut self) {
        self.up_list.clear();
        self.up_epoch = self.up_epoch.wrapping_add(1);
        if self.up_epoch == 0 {
            self.up_mark.fill(0);
            self.up_epoch = 1;
        }
    }

    fn invalidate(&mut self, slot: u64) {
        if slot == NONE {
            return;
        }
        let block = (slot / self.slots_per_block as u64) as usize;
        self.rmap[slot as usize] = NONE;
        self.valid[block] = self.valid[block].saturating_sub(1);
    }

    fn set_mapping(&mut self, lpn: u64, slot: u64) {
        let old = self.map[lpn as usize];
        self.note_map_change(lpn, old);
        self.invalidate(old);
        self.map[lpn as usize] = slot;
        self.rmap[slot as usize] = lpn;
        self.valid[(slot / self.slots_per_block as u64) as usize] += 1;
    }

    /// Advance the plane cursor and return the chosen plane.
    fn next_plane(&mut self) -> usize {
        let p = self.plane_cursor;
        self.plane_cursor = (self.plane_cursor + 1) % self.planes;
        p
    }

    /// Whether the next program on the round-robin plane could start at or
    /// before `now` (backend idle check for opportunistic draining).
    pub fn next_plane_idle(&self, nand: &NandArray, now: Nanos) -> bool {
        nand.plane_busy_until(self.plane_cursor) <= now
    }

    /// Program up to `spp` slots as one physical page on the next
    /// round-robin plane. Returns the NAND completion time.
    ///
    /// Triggers GC first if the target plane is short on free blocks.
    pub fn program_slots(
        &mut self,
        nand: &mut NandArray,
        items: &[(u64, &[u8])],
        now: Nanos,
    ) -> Nanos {
        assert!(!items.is_empty() && items.len() <= self.spp, "bad pair size");
        let plane = self.next_plane();
        let gc_end = self.maybe_gc(nand, plane, now);
        if gc_end > now {
            // The foreground program queues behind the GC work on this
            // plane: the whole episode is a host-visible GC pause, recorded
            // both as a histogram sample and as a trace span.
            let pause = gc_end - now;
            self.stats.gc_ns += pause;
            if let Some(tel) = &self.tel {
                tel.record("ftl.gc_pause", pause);
                tel.trace_begin("ftl", "ftl.gc", now);
                tel.trace_end("ftl", "ftl.gc", gc_end);
            }
        }
        let done = self.program_on_plane(nand, plane, items, now);
        if let Some(tel) = &self.tel {
            tel.record("nand.program", done.saturating_sub(now));
        }
        self.stats.data_programs += 1;
        self.stats.slots_programmed += items.len() as u64;
        done
    }

    /// Program `items` on a specific plane's frontier (shared by the host
    /// path and GC relocation).
    fn program_on_plane(
        &mut self,
        nand: &mut NandArray,
        plane: usize,
        items: &[(u64, &[u8])],
        now: Nanos,
    ) -> Nanos {
        let geo = *nand.geometry();
        let (block, page) = self.take_frontier_page(plane);
        let ppn = geo.make_ppn(block, page);
        // Stage the slots in the reusable page scratch (no per-program heap
        // allocation); the tail beyond the last slot must stay zeroed so the
        // programmed NAND bytes are identical to the old `vec![0u8; ..]` path.
        for (i, (lpn, data)) in items.iter().enumerate() {
            assert_eq!(data.len(), 4096, "slots are 4KB");
            self.page_scratch[i * 4096..(i + 1) * 4096].copy_from_slice(data);
            let slot = ppn * self.spp as u64 + i as u64;
            self.set_mapping(*lpn, slot);
        }
        if items.len() * 4096 < geo.page_size {
            self.page_scratch[items.len() * 4096..].fill(0);
        }
        nand.program(ppn, &self.page_scratch, now).expect("frontier program is always in order")
    }

    /// Hand out the frontier page of a plane, opening a new block as needed.
    fn take_frontier_page(&mut self, plane: usize) -> (u32, u32) {
        let (block, next) = self.frontier[plane];
        let pages_per_block = self.slots_per_block / self.spp as u32;
        if next < pages_per_block {
            self.frontier[plane].1 += 1;
            return (block, next);
        }
        // Frontier full: seal it and open a new one.
        self.role[block as usize] = Role::Sealed;
        let fresh =
            self.plane_free[plane].pop().expect("GC keeps at least one free block per plane");
        self.role[fresh as usize] = Role::Frontier;
        self.frontier[plane] = (fresh, 1);
        (fresh, 0)
    }

    /// Run GC on `plane` until its free pool is back above the threshold.
    /// Returns the virtual time at which the GC work completes (`now` when
    /// no GC ran).
    fn maybe_gc(&mut self, nand: &mut NandArray, plane: usize, now: Nanos) -> Nanos {
        let mut guard = 0;
        let mut t = now;
        while self.plane_free[plane].len() < self.gc_threshold {
            guard += 1;
            assert!(guard < 1024, "GC cannot make progress (device over-filled?)");
            let Some(victim) = self.pick_victim(nand, plane) else {
                // Nothing sealed to collect yet; rely on remaining frontier.
                return t;
            };
            t = self.collect(nand, plane, victim, t);
        }
        t
    }

    /// Victim selection: greedy by valid count, wear-aware tie-breaking.
    /// A block's score is its relocation cost (valid slots) plus a wear
    /// penalty, so hot low-valid blocks are preferred but worn blocks are
    /// spared — a simple cost-benefit wear-leveling policy.
    fn pick_victim(&self, nand: &NandArray, plane: usize) -> Option<u32> {
        let mut best: Option<(u32, u64)> = None;
        let mut b = plane as u32;
        while (b as usize) < self.role.len() {
            if self.role[b as usize] == Role::Sealed {
                let valid = self.valid[b as usize] as u64;
                let wear = nand.erase_count(b) as u64;
                let score = valid * 8 + wear;
                if best.is_none_or(|(_, bs)| score < bs) {
                    best = Some((b, score));
                }
            }
            b += self.planes as u32;
        }
        best.map(|(b, _)| b)
    }

    /// Spread of erase counts across all blocks (wear-leveling metric).
    pub fn wear_spread(&self, nand: &NandArray) -> (u32, u32) {
        let mut min = u32::MAX;
        let mut max = 0;
        for b in 0..self.role.len() as u32 {
            let e = nand.erase_count(b);
            min = min.min(e);
            max = max.max(e);
        }
        (min, max)
    }

    /// Relocate a victim block's valid slots and erase it. Returns the
    /// completion time of the final erase.
    fn collect(&mut self, nand: &mut NandArray, plane: usize, victim: u32, now: Nanos) -> Nanos {
        let geo = *nand.geometry();
        let pages_per_block = geo.pages_per_block as u32;
        // Stage survivors flat in the reusable GC scratch (parallel arrays:
        // lpn list + 4KB-per-slot data blob) — no per-slot `to_vec()`.
        let mut gc_lpns = std::mem::take(&mut self.gc_lpns);
        let mut gc_data = std::mem::take(&mut self.gc_data);
        gc_lpns.clear();
        gc_data.clear();
        let mut read_buf = std::mem::take(&mut self.read_scratch);
        let mut t = now;
        const MAX_SPP: usize = 16;
        assert!(self.spp <= MAX_SPP, "spp fits the stack staging arrays");
        for page in 0..pages_per_block {
            let ppn = geo.make_ppn(victim, page);
            let base_slot = ppn * self.spp as u64;
            let mut live = [0usize; MAX_SPP];
            let mut n_live = 0;
            for i in 0..self.spp {
                if self.rmap[(base_slot + i as u64) as usize] != NONE {
                    live[n_live] = i;
                    n_live += 1;
                }
            }
            if n_live == 0 {
                continue;
            }
            match nand.read(ppn, &mut read_buf, t) {
                Ok(done) => t = done,
                Err(NandError::Shorn { .. }) | Err(NandError::Unwritten { .. }) => {
                    // A shorn page can hold no valid mapping in a correctly
                    // recovered device; treat its slots as dead.
                    for &i in &live[..n_live] {
                        let s = base_slot + i as u64;
                        let lpn = self.rmap[s as usize];
                        if lpn != NONE {
                            // Defensive: drop the mapping rather than
                            // propagate garbage.
                            self.map[lpn as usize] = NONE;
                            self.invalidate(s);
                        }
                    }
                    continue;
                }
                Err(e) => panic!("GC read failed: {e}"),
            }
            for &i in &live[..n_live] {
                let lpn = self.rmap[(base_slot + i as u64) as usize];
                gc_lpns.push(lpn);
                gc_data.extend_from_slice(&read_buf[i * 4096..(i + 1) * 4096]);
            }
        }
        // Re-program the survivors in pairs on this plane.
        for (ci, chunk) in gc_lpns.chunks(self.spp).enumerate() {
            let mut items: [(u64, &[u8]); MAX_SPP] = [(0, &[]); MAX_SPP];
            let base = ci * self.spp;
            for (j, &lpn) in chunk.iter().enumerate() {
                let off = (base + j) * 4096;
                items[j] = (lpn, &gc_data[off..off + 4096]);
            }
            t = self.program_on_plane(nand, plane, &items[..chunk.len()], t);
            self.stats.gc_relocated_slots += chunk.len() as u64;
            self.stats.slots_programmed += chunk.len() as u64;
            self.stats.data_programs += 1;
        }
        self.read_scratch = read_buf;
        self.gc_lpns = gc_lpns;
        self.gc_data = gc_data;
        let end = nand.erase(victim, t).expect("victim block exists");
        if let Some(tel) = &self.tel {
            tel.record("nand.erase", end.saturating_sub(t));
        }
        self.stats.gc_erases += 1;
        self.role[victim as usize] = Role::Free;
        // After a mapping rollback the valid count can carry phantom
        // references (mapping corruption on volatile devices); erasing the
        // block resolves them to zero by definition.
        self.valid[victim as usize] = 0;
        self.plane_free[plane].push(victim);
        end
    }

    /// Read the slot of `lpn` into `buf` (4KB).
    pub fn read_slot(
        &mut self,
        nand: &mut NandArray,
        lpn: u64,
        buf: &mut [u8],
        now: Nanos,
    ) -> SlotRead {
        assert_eq!(buf.len(), 4096);
        let slot = self.map[lpn as usize];
        if slot == NONE {
            buf.fill(0);
            return SlotRead::Unmapped;
        }
        let ppn = slot / self.spp as u64;
        let idx = (slot % self.spp as u64) as usize;
        let mut page = std::mem::take(&mut self.read_scratch);
        let res = nand.read(ppn, &mut page, now);
        let out = match res {
            Ok(done) => {
                buf.copy_from_slice(&page[idx * 4096..(idx + 1) * 4096]);
                SlotRead::Ok(done)
            }
            // Shorn program, or mapping pointing at erased flash after a
            // rollback: both surface as unreadable data.
            Err(NandError::Shorn { .. }) | Err(NandError::Unwritten { .. }) => SlotRead::Shorn,
            Err(e) => panic!("read of mapped slot failed: {e}"),
        };
        self.read_scratch = page;
        out
    }

    /// Persist the mapping journal: programs `ceil(delta/entries_per_page)`
    /// metadata pages and clears the delta. Returns the completion time.
    pub fn persist_mapping(&mut self, nand: &mut NandArray, now: Nanos) -> Nanos {
        let geo = *nand.geometry();
        let entries_per_page = geo.page_size / 8; // (lpn, slot) pairs, 8B packed
        let pages = self.up_list.len().div_ceil(entries_per_page).max(1);
        if let Some(tel) = &self.tel {
            tel.trace_begin("ftl", "ftl.map_persist", now);
        }
        let mut t = now;
        for _ in 0..pages {
            t = self.program_meta_page(nand, t);
        }
        if let Some(tel) = &self.tel {
            tel.trace_end("ftl", "ftl.map_persist", t);
        }
        self.clear_unpersisted();
        t
    }

    /// One mapping-journal page program, cycling the per-plane meta block.
    fn program_meta_page(&mut self, nand: &mut NandArray, now: Nanos) -> Nanos {
        let geo = *nand.geometry();
        let plane = self.plane_cursor % self.planes;
        let block = self.meta_block[plane];
        if self.meta_next[plane] as usize >= geo.pages_per_block {
            let done = nand.erase(block, now).expect("meta block exists");
            self.meta_next[plane] = 0;
            return self.program_meta_page_at(nand, plane, done);
        }
        self.program_meta_page_at(nand, plane, now)
    }

    fn program_meta_page_at(&mut self, nand: &mut NandArray, plane: usize, now: Nanos) -> Nanos {
        let geo = *nand.geometry();
        let block = self.meta_block[plane];
        let page = self.meta_next[plane];
        self.meta_next[plane] += 1;
        let ppn = geo.make_ppn(block, page);
        self.page_scratch.fill(0);
        self.stats.meta_programs += 1;
        nand.program(ppn, &self.page_scratch, now).expect("meta frontier in order")
    }

    /// TRIM a logical page: drop its mapping so GC never relocates the
    /// stale data. Returns whether the page was mapped.
    pub fn trim(&mut self, lpn: u64) -> bool {
        let old = self.map[lpn as usize];
        if old == NONE {
            return false;
        }
        self.note_map_change(lpn, old);
        self.invalidate(old);
        self.map[lpn as usize] = NONE;
        true
    }

    /// Roll the mapping back to the last persisted state (volatile cache
    /// power cut): every un-journalled update reverts.
    pub fn rollback_unpersisted(&mut self) {
        let list = std::mem::take(&mut self.up_list);
        for &lpn in &list {
            let old_slot = self.up_old[lpn as usize];
            let cur = self.map[lpn as usize];
            if cur != NONE {
                self.invalidate(cur);
            }
            self.map[lpn as usize] = old_slot;
            if old_slot != NONE {
                // The old slot's physical data still exists (it was never
                // erased: GC erases only unmapped... see note below). Restore
                // reverse mapping defensively.
                self.rmap[old_slot as usize] = lpn;
                self.valid[(old_slot / self.slots_per_block as u64) as usize] += 1;
            }
        }
        self.up_list = list;
        self.clear_unpersisted();
    }

    /// Total free blocks (all planes) — test instrumentation.
    pub fn free_blocks(&self) -> usize {
        self.plane_free.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Ftl, NandArray) {
        let cfg = SsdConfig::tiny_test();
        let nand = NandArray::new(cfg.geometry);
        (Ftl::new(&cfg), nand)
    }

    fn slot_data(fill: u8) -> Vec<u8> {
        vec![fill; 4096]
    }

    #[test]
    fn write_then_read_round_trips() {
        let (mut ftl, mut nand) = setup();
        let d = slot_data(7);
        let done = ftl.program_slots(&mut nand, &[(3, &d)], 0);
        let mut buf = vec![0u8; 4096];
        assert!(matches!(ftl.read_slot(&mut nand, 3, &mut buf, done), SlotRead::Ok(_)));
        assert_eq!(buf, d);
    }

    #[test]
    fn unmapped_reads_zero() {
        let (mut ftl, mut nand) = setup();
        let mut buf = vec![1u8; 4096];
        assert_eq!(ftl.read_slot(&mut nand, 9, &mut buf, 0), SlotRead::Unmapped);
        assert_eq!(buf, vec![0u8; 4096]);
    }

    #[test]
    fn pair_program_shares_one_physical_page() {
        let (mut ftl, mut nand) = setup();
        let a = slot_data(1);
        let b = slot_data(2);
        ftl.program_slots(&mut nand, &[(10, &a), (11, &b)], 0);
        assert_eq!(ftl.stats().data_programs, 1);
        assert_eq!(ftl.stats().slots_programmed, 2);
        let (sa, sb) = (ftl.slot_of(10).unwrap(), ftl.slot_of(11).unwrap());
        assert_eq!(sa / 2, sb / 2, "both slots on the same NAND page");
        let mut buf = vec![0u8; 4096];
        ftl.read_slot(&mut nand, 11, &mut buf, 10_000_000);
        assert_eq!(buf, b);
    }

    #[test]
    fn overwrite_invalidates_old_slot() {
        let (mut ftl, mut nand) = setup();
        let a = slot_data(1);
        let b = slot_data(2);
        ftl.program_slots(&mut nand, &[(5, &a)], 0);
        let s1 = ftl.slot_of(5).unwrap();
        ftl.program_slots(&mut nand, &[(5, &b)], 1_000_000);
        let s2 = ftl.slot_of(5).unwrap();
        assert_ne!(s1, s2, "flash never overwrites in place");
        let mut buf = vec![0u8; 4096];
        ftl.read_slot(&mut nand, 5, &mut buf, 10_000_000);
        assert_eq!(buf, b);
    }

    #[test]
    fn programs_stripe_across_planes() {
        let (mut ftl, mut nand) = setup();
        let d = slot_data(1);
        // Four programs on a 4-plane device land on four different planes:
        // all four complete in roughly one program time.
        let mut last = 0;
        for i in 0..4 {
            last = ftl.program_slots(&mut nand, &[(i, &d)], 0);
        }
        let geo = *nand.geometry();
        assert!(last < 2 * geo.t_program, "four programs should overlap: {last}");
    }

    #[test]
    fn gc_reclaims_space_under_overwrite_churn() {
        let (mut ftl, mut nand) = setup();
        // Tiny device: hammer a small working set far beyond raw capacity.
        let mut t = 0;
        for round in 0..40u64 {
            for lpn in 0..32u64 {
                let d = slot_data((round % 251) as u8);
                t = ftl.program_slots(&mut nand, &[(lpn, &d), (lpn + 32, &d)], t);
            }
        }
        assert!(ftl.stats().gc_erases > 0, "churn must trigger GC");
        // All data still readable with the latest value.
        let mut buf = vec![0u8; 4096];
        for lpn in 0..32u64 {
            assert!(matches!(ftl.read_slot(&mut nand, lpn, &mut buf, t), SlotRead::Ok(_)));
            assert_eq!(buf[0], 39);
        }
        assert!(ftl.free_blocks() > 0);
    }

    #[test]
    fn mapping_persist_clears_delta_and_writes_meta() {
        let (mut ftl, mut nand) = setup();
        let d = slot_data(1);
        ftl.program_slots(&mut nand, &[(1, &d)], 0);
        ftl.program_slots(&mut nand, &[(2, &d)], 0);
        assert_eq!(ftl.unpersisted_entries(), 2);
        ftl.persist_mapping(&mut nand, 10_000_000);
        assert_eq!(ftl.unpersisted_entries(), 0);
        assert!(ftl.stats().meta_programs >= 1);
    }

    #[test]
    fn rollback_restores_pre_persist_mapping() {
        let (mut ftl, mut nand) = setup();
        let a = slot_data(1);
        let b = slot_data(2);
        ftl.program_slots(&mut nand, &[(5, &a)], 0);
        let t = ftl.persist_mapping(&mut nand, 5_000_000);
        let s_old = ftl.slot_of(5).unwrap();
        // Unpersisted overwrite...
        ftl.program_slots(&mut nand, &[(5, &b)], t);
        assert_ne!(ftl.slot_of(5).unwrap(), s_old);
        // ...vanishes at rollback: reads see the old value again.
        ftl.rollback_unpersisted();
        assert_eq!(ftl.slot_of(5).unwrap(), s_old);
        let mut buf = vec![0u8; 4096];
        ftl.read_slot(&mut nand, 5, &mut buf, 20_000_000);
        assert_eq!(buf, a);
    }

    #[test]
    fn rollback_of_fresh_write_unmaps() {
        let (mut ftl, mut nand) = setup();
        let d = slot_data(3);
        ftl.program_slots(&mut nand, &[(7, &d)], 0);
        ftl.rollback_unpersisted();
        assert_eq!(ftl.slot_of(7), None);
        let mut buf = vec![1u8; 4096];
        assert_eq!(ftl.read_slot(&mut nand, 7, &mut buf, 10_000_000), SlotRead::Unmapped);
    }

    #[test]
    fn dump_blocks_are_reserved_per_plane() {
        let cfg = SsdConfig::tiny_test();
        let ftl = Ftl::new(&cfg);
        assert_eq!(ftl.dump_blocks().len(), cfg.geometry.planes() * cfg.dump_reserve_blocks);
    }
}

//! Flash translation layer (§3.1.2).
//!
//! * **4KB mapping over 8KB NAND pages**: the mapping unit is a 4KB *slot*;
//!   each physical page holds `slots_per_page` (2) of them. Under write
//!   load the flusher finds slot pairs to combine into one program — the
//!   paper's answer to the physical/logical granularity disparity.
//! * **Per-plane write frontiers**: each plane fills its own active block, so
//!   consecutive flushes stripe across all planes and channels (the §2.3
//!   parallelism argument).
//! * **Garbage collection**: greedy min-valid victim per plane, triggered
//!   when a plane's free-block pool dips below a threshold.
//! * **Mapping journal**: modified mapping entries are tracked; volatile
//!   devices persist them on FLUSH (and lose un-journalled updates on power
//!   cuts), DuraSSD dumps them under capacitor power (§3.4.1).
//! * **Dump area**: a reserved set of always-clean blocks per plane so the
//!   power-failure dump never waits for an erase.

use crate::config::SsdConfig;
use crate::error::{Error, Result};
use nand::{NandArray, NandError};
use simkit::Nanos;
use storage::device::{CauseCounts, DevError, WriteCause};
use telemetry::Telemetry;

/// Sentinel: logical page not mapped / slot not in use.
const NONE: u64 = u64::MAX;

/// What a block is currently used for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    /// In the plane's free pool.
    Free,
    /// The plane's active write frontier.
    Frontier,
    /// Full of data (GC candidate).
    Sealed,
    /// Mapping-journal block (cycled, never GC'd).
    Meta,
    /// Power-failure dump area (kept erased).
    Dump,
}

/// Outcome of a slot read.
#[derive(Debug, PartialEq, Eq)]
pub enum SlotRead {
    /// Data copied into the buffer; media access completed at the time.
    Ok(Nanos),
    /// Logical page never written: buffer zero-filled, no media access.
    Unmapped,
    /// The backing physical page is unreadable: either shorn by a power cut
    /// mid-program, or the mapping is corrupt (it points at erased flash —
    /// the "metadata corruption" failure mode Zheng et al. observed on
    /// volatile-cache SSDs after mapping rollback).
    Shorn,
}

/// FTL statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct FtlStats {
    /// Data-page programs issued (pairs count once).
    pub data_programs: u64,
    /// 4KB slots written to media (including GC relocations).
    pub slots_programmed: u64,
    /// Slots relocated by garbage collection.
    pub gc_relocated_slots: u64,
    /// Blocks erased by garbage collection.
    pub gc_erases: u64,
    /// Mapping-journal page programs.
    pub meta_programs: u64,
    /// Cumulative host-visible GC pause time (ns): how long foreground
    /// programs were delayed behind GC relocations and erases.
    pub gc_ns: Nanos,
    /// 4KB media slots programmed per [`WriteCause`]. Conservation: the
    /// array sums to `slots_programmed + meta_programs * spp` (meta pages
    /// carry no data slots but stress the media all the same, so they are
    /// attributed to `MapPersist` at full page width).
    pub slots_by_cause: CauseCounts,
}

/// The flash translation layer.
pub struct Ftl {
    spp: usize,
    map: Vec<u64>,
    rmap: Vec<u64>,
    valid: Vec<u32>,
    role: Vec<Role>,
    plane_free: Vec<Vec<u32>>,
    frontier: Vec<(u32, u32)>, // per plane: (block, next slot index within block)
    meta_block: Vec<u32>,      // per plane
    meta_next: Vec<u32>,       // next page within meta block
    dump_blocks: Vec<u32>,
    plane_cursor: usize,
    planes: usize,
    slots_per_block: u32,
    gc_threshold: usize,
    /// Flat unpersisted-map overlay, replacing a per-entry hash map: for
    /// every lpn whose mapping changed since the last persist,
    /// `up_mark[lpn] == up_epoch` and `up_old[lpn]` holds the value at the
    /// last persist. `up_list` records touched lpns in first-touch order;
    /// a persist advances the epoch instead of clearing the arrays, so the
    /// hot path is two dense-array accesses and zero allocations.
    up_old: Vec<u64>,
    up_mark: Vec<u32>,
    up_epoch: u32,
    up_list: Vec<u64>,
    /// Grow-once scratch page for frontier/meta programs (no `vec!` per
    /// program).
    page_scratch: Vec<u8>,
    /// Grow-once scratch page for slot/GC reads.
    read_scratch: Vec<u8>,
    /// GC relocation staging: survivor lpns and their 4KB slot data, flat.
    /// Reused across collections (grow-only).
    gc_lpns: Vec<u64>,
    gc_data: Vec<u8>,
    stats: FtlStats,
    tel: Option<Telemetry>,
    /// GC pause of the most recent [`Ftl::program_slots_tagged`] call (0
    /// when no GC preempted it): the latency-anatomy `gc_wait` segment for
    /// the command that suffered it. Read together with
    /// `NandArray::last_split` for the same call's wait/service split.
    last_gc_pause: Nanos,
}

impl Ftl {
    /// Build an FTL for the given config over a pristine NAND array.
    pub fn new(cfg: &SsdConfig) -> Self {
        let geo = cfg.geometry;
        let planes = geo.planes();
        let spp = cfg.slots_per_page();
        let total_blocks = geo.blocks();
        let total_slots = geo.total_pages() * spp as u64;
        let mut role = vec![Role::Free; total_blocks];
        let mut plane_free: Vec<Vec<u32>> = vec![Vec::new(); planes];
        // Blocks stripe across planes: block b is on plane b % planes.
        for b in (0..total_blocks as u32).rev() {
            plane_free[b as usize % planes].push(b);
        }
        // Reserve dump blocks and one meta block per plane, then open a
        // frontier per plane.
        let mut dump_blocks = Vec::new();
        let mut meta_block = Vec::with_capacity(planes);
        let mut frontier = Vec::with_capacity(planes);
        for free in plane_free.iter_mut() {
            for _ in 0..cfg.dump_reserve_blocks {
                let b = free.pop().expect("plane too small for dump reserve");
                role[b as usize] = Role::Dump;
                dump_blocks.push(b);
            }
            let m = free.pop().expect("plane too small for meta block");
            role[m as usize] = Role::Meta;
            meta_block.push(m);
            let f = free.pop().expect("plane too small for frontier");
            role[f as usize] = Role::Frontier;
            frontier.push((f, 0));
        }
        Self {
            spp,
            map: vec![NONE; cfg.logical_capacity_pages as usize],
            rmap: vec![NONE; total_slots as usize],
            valid: vec![0; total_blocks],
            role,
            plane_free,
            frontier,
            meta_next: vec![0; planes],
            meta_block,
            dump_blocks,
            plane_cursor: 0,
            planes,
            slots_per_block: (geo.pages_per_block * spp) as u32,
            gc_threshold: cfg.gc_free_threshold,
            up_old: vec![NONE; cfg.logical_capacity_pages as usize],
            up_mark: vec![0; cfg.logical_capacity_pages as usize],
            up_epoch: 1,
            up_list: Vec::new(),
            page_scratch: vec![0u8; geo.page_size],
            read_scratch: vec![0u8; geo.page_size],
            gc_lpns: Vec::new(),
            gc_data: Vec::new(),
            stats: FtlStats::default(),
            tel: None,
            last_gc_pause: 0,
        }
    }

    /// Attach a telemetry handle: GC pauses are histogrammed under
    /// `ftl.gc_pause` and NAND program/erase service times under
    /// `nand.program` / `nand.erase`.
    pub fn attach_telemetry(&mut self, tel: Telemetry) {
        self.tel = Some(tel);
    }

    /// FTL statistics.
    pub fn stats(&self) -> FtlStats {
        self.stats
    }

    /// Cumulative host-visible GC pause time (ns).
    pub fn gc_time(&self) -> Nanos {
        self.stats.gc_ns
    }

    /// GC pause suffered by the most recent `program_slots*` call (0 when
    /// GC did not preempt it).
    pub fn last_gc_pause(&self) -> Nanos {
        self.last_gc_pause
    }

    /// Number of mapping entries modified since the last persist.
    pub fn unpersisted_entries(&self) -> usize {
        self.up_list.len()
    }

    /// The un-journalled mapping delta, for the power-cut postmortem:
    /// `(lpn, old_slot)` pairs, `old_slot == None` when the page was mapped
    /// for the first time since the last persist. Sorted by LPN so reports
    /// are deterministic.
    pub fn unpersisted_delta(&self) -> Vec<(u64, Option<u64>)> {
        let mut v: Vec<(u64, Option<u64>)> = self
            .up_list
            .iter()
            .map(|&lpn| {
                let old = self.up_old[lpn as usize];
                (lpn, (old != NONE).then_some(old))
            })
            .collect();
        v.sort_unstable_by_key(|&(lpn, _)| lpn);
        v
    }

    /// The reserved dump blocks (used by the device's recovery manager).
    pub fn dump_blocks(&self) -> &[u32] {
        &self.dump_blocks
    }

    /// Current mapping of an lpn (testing / recovery).
    pub fn slot_of(&self, lpn: u64) -> Option<u64> {
        match self.map.get(lpn as usize) {
            Some(&s) if s != NONE => Some(s),
            _ => None,
        }
    }

    fn note_map_change(&mut self, lpn: u64, old: u64) {
        let i = lpn as usize;
        if self.up_mark[i] != self.up_epoch {
            self.up_mark[i] = self.up_epoch;
            self.up_old[i] = old;
            self.up_list.push(lpn);
        }
    }

    /// Forget the delta by advancing the epoch (the dense arrays are left
    /// in place; a u32 wrap resets the marks so stale epochs cannot alias).
    fn clear_unpersisted(&mut self) {
        self.up_list.clear();
        self.up_epoch = self.up_epoch.wrapping_add(1);
        if self.up_epoch == 0 {
            self.up_mark.fill(0);
            self.up_epoch = 1;
        }
    }

    fn invalidate(&mut self, slot: u64) {
        if slot == NONE {
            return;
        }
        let block = (slot / self.slots_per_block as u64) as usize;
        self.rmap[slot as usize] = NONE;
        self.valid[block] = self.valid[block].saturating_sub(1);
    }

    fn set_mapping(&mut self, lpn: u64, slot: u64) {
        let old = self.map[lpn as usize];
        self.note_map_change(lpn, old);
        self.invalidate(old);
        // Evict a phantom owner. The slot being programmed sits on a freshly
        // erased frontier page, so any surviving reverse-map entry is stale —
        // it can only come from a mapping rollback that restored a pre-cut
        // owner whose block was recycled after the persist point. Leaving the
        // phantom's forward pointer in place breaks the map/rmap bijection on
        // the next audit (simtest fuzzer, `--target volatile --seed 12`).
        let phantom = self.rmap[slot as usize];
        if phantom != NONE {
            if self.map[phantom as usize] == slot {
                self.note_map_change(phantom, slot);
                self.map[phantom as usize] = NONE;
            }
            self.invalidate(slot);
        }
        self.map[lpn as usize] = slot;
        self.rmap[slot as usize] = lpn;
        self.valid[(slot / self.slots_per_block as u64) as usize] += 1;
    }

    /// Advance the plane cursor and return the chosen plane.
    fn next_plane(&mut self) -> usize {
        let p = self.plane_cursor;
        self.plane_cursor = (self.plane_cursor + 1) % self.planes;
        p
    }

    /// Whether the next program on the round-robin plane could start at or
    /// before `now` (backend idle check for opportunistic draining).
    pub fn next_plane_idle(&self, nand: &NandArray, now: Nanos) -> bool {
        nand.plane_busy_until(self.plane_cursor) <= now
    }

    /// Program up to `spp` slots as one physical page on the next
    /// round-robin plane. Returns the NAND completion time.
    ///
    /// Triggers GC first if the target plane is short on free blocks; a
    /// media failure inside GC propagates as [`Error`] instead of aborting
    /// the process.
    pub fn program_slots(
        &mut self,
        nand: &mut NandArray,
        items: &[(u64, &[u8])],
        now: Nanos,
    ) -> Result<Nanos> {
        const HOST: [WriteCause; 16] = [WriteCause::HostData; 16];
        self.program_slots_tagged(nand, items, &HOST[..items.len()], now)
    }

    /// [`Ftl::program_slots`] with a per-slot provenance tag: `causes[i]`
    /// says why slot `items[i]` is being written (a drained pair can mix
    /// causes, so the tag is slot-granular, not page-granular).
    pub fn program_slots_tagged(
        &mut self,
        nand: &mut NandArray,
        items: &[(u64, &[u8])],
        causes: &[WriteCause],
        now: Nanos,
    ) -> Result<Nanos> {
        assert!(!items.is_empty() && items.len() <= self.spp, "bad pair size");
        assert_eq!(items.len(), causes.len(), "one cause per slot");
        let plane = self.next_plane();
        let gc_end = self.maybe_gc(nand, plane, now)?;
        self.last_gc_pause = gc_end.saturating_sub(now);
        if gc_end > now {
            // The foreground program queues behind the GC work on this
            // plane: the whole episode is a host-visible GC pause, recorded
            // both as a histogram sample and as a trace span.
            let pause = gc_end - now;
            self.stats.gc_ns += pause;
            if let Some(tel) = &self.tel {
                tel.record("ftl.gc_pause", pause);
                tel.trace_begin("ftl", "ftl.gc", now);
                tel.trace_end("ftl", "ftl.gc", gc_end);
            }
        }
        let done = self.program_on_plane(nand, plane, items, now);
        if let Some(tel) = &self.tel {
            tel.record("nand.program", done.saturating_sub(now));
        }
        self.stats.data_programs += 1;
        self.stats.slots_programmed += items.len() as u64;
        for &c in causes {
            self.stats.slots_by_cause[c.index()] += 1;
        }
        Ok(done)
    }

    /// Program `items` on a specific plane's frontier (shared by the host
    /// path and GC relocation).
    fn program_on_plane(
        &mut self,
        nand: &mut NandArray,
        plane: usize,
        items: &[(u64, &[u8])],
        now: Nanos,
    ) -> Nanos {
        let geo = *nand.geometry();
        let (block, page) = self.take_frontier_page(plane);
        let ppn = geo.make_ppn(block, page);
        // Stage the slots in the reusable page scratch (no per-program heap
        // allocation); the tail beyond the last slot must stay zeroed so the
        // programmed NAND bytes are identical to the old `vec![0u8; ..]` path.
        for (i, (lpn, data)) in items.iter().enumerate() {
            assert_eq!(data.len(), 4096, "slots are 4KB");
            self.page_scratch[i * 4096..(i + 1) * 4096].copy_from_slice(data);
            let slot = ppn * self.spp as u64 + i as u64;
            self.set_mapping(*lpn, slot);
        }
        if items.len() * 4096 < geo.page_size {
            self.page_scratch[items.len() * 4096..].fill(0);
        }
        nand.program(ppn, &self.page_scratch, now).expect("frontier program is always in order")
    }

    /// Hand out the frontier page of a plane, opening a new block as needed.
    fn take_frontier_page(&mut self, plane: usize) -> (u32, u32) {
        let (block, next) = self.frontier[plane];
        let pages_per_block = self.slots_per_block / self.spp as u32;
        if next < pages_per_block {
            self.frontier[plane].1 += 1;
            return (block, next);
        }
        // Frontier full: seal it and open a new one.
        self.role[block as usize] = Role::Sealed;
        let fresh =
            self.plane_free[plane].pop().expect("GC keeps at least one free block per plane");
        self.role[fresh as usize] = Role::Frontier;
        self.frontier[plane] = (fresh, 1);
        (fresh, 0)
    }

    /// Run GC on `plane` until its free pool is back above the threshold.
    /// Returns the virtual time at which the GC work completes (`now` when
    /// no GC ran).
    fn maybe_gc(&mut self, nand: &mut NandArray, plane: usize, now: Nanos) -> Result<Nanos> {
        let mut guard = 0;
        let mut t = now;
        while self.plane_free[plane].len() < self.gc_threshold {
            guard += 1;
            assert!(guard < 1024, "GC cannot make progress (device over-filled?)");
            let Some(victim) = self.pick_victim(nand, plane) else {
                // Nothing sealed to collect yet; rely on remaining frontier.
                return Ok(t);
            };
            t = self.collect(nand, plane, victim, t)?;
        }
        Ok(t)
    }

    /// Victim selection: greedy by valid count, wear-aware tie-breaking.
    /// A block's score is its relocation cost (valid slots) plus a wear
    /// penalty, so hot low-valid blocks are preferred but worn blocks are
    /// spared — a simple cost-benefit wear-leveling policy.
    fn pick_victim(&self, nand: &NandArray, plane: usize) -> Option<u32> {
        let mut best: Option<(u32, u64)> = None;
        let mut b = plane as u32;
        while (b as usize) < self.role.len() {
            if self.role[b as usize] == Role::Sealed {
                let valid = self.valid[b as usize] as u64;
                let wear = nand.erase_count(b) as u64;
                let score = valid * 8 + wear;
                if best.is_none_or(|(_, bs)| score < bs) {
                    best = Some((b, score));
                }
            }
            b += self.planes as u32;
        }
        best.map(|(b, _)| b)
    }

    /// Spread of erase counts across all blocks (wear-leveling metric).
    pub fn wear_spread(&self, nand: &NandArray) -> (u32, u32) {
        let mut min = u32::MAX;
        let mut max = 0;
        for b in 0..self.role.len() as u32 {
            let e = nand.erase_count(b);
            min = min.min(e);
            max = max.max(e);
        }
        (min, max)
    }

    /// Relocate a victim block's valid slots and erase it. Returns the
    /// completion time of the final erase, or an [`Error`] if a victim page
    /// read fails for a reason other than shorn/unwritten media.
    fn collect(
        &mut self,
        nand: &mut NandArray,
        plane: usize,
        victim: u32,
        now: Nanos,
    ) -> Result<Nanos> {
        let geo = *nand.geometry();
        let pages_per_block = geo.pages_per_block as u32;
        // Stage survivors flat in the reusable GC scratch (parallel arrays:
        // lpn list + 4KB-per-slot data blob) — no per-slot `to_vec()`.
        let mut gc_lpns = std::mem::take(&mut self.gc_lpns);
        let mut gc_data = std::mem::take(&mut self.gc_data);
        gc_lpns.clear();
        gc_data.clear();
        let mut read_buf = std::mem::take(&mut self.read_scratch);
        let mut t = now;
        const MAX_SPP: usize = 16;
        assert!(self.spp <= MAX_SPP, "spp fits the stack staging arrays");
        for page in 0..pages_per_block {
            let ppn = geo.make_ppn(victim, page);
            let base_slot = ppn * self.spp as u64;
            let mut live = [0usize; MAX_SPP];
            let mut n_live = 0;
            for i in 0..self.spp {
                if self.rmap[(base_slot + i as u64) as usize] != NONE {
                    live[n_live] = i;
                    n_live += 1;
                }
            }
            if n_live == 0 {
                continue;
            }
            match nand.read(ppn, &mut read_buf, t) {
                Ok(done) => t = done,
                Err(NandError::Shorn { .. }) | Err(NandError::Unwritten { .. }) => {
                    // A shorn page can hold no valid mapping in a correctly
                    // recovered device; treat its slots as dead.
                    for &i in &live[..n_live] {
                        let s = base_slot + i as u64;
                        let lpn = self.rmap[s as usize];
                        if lpn != NONE {
                            // Defensive: drop the mapping rather than
                            // propagate garbage. The drop must enter the
                            // unpersisted delta like any other map change,
                            // or a later rollback resurrects the lpn into
                            // the erased victim block.
                            self.note_map_change(lpn, s);
                            self.map[lpn as usize] = NONE;
                            self.invalidate(s);
                        }
                    }
                    continue;
                }
                Err(e) => {
                    // Restore the scratch buffers before bailing so a failed
                    // collection does not leak the staging capacity.
                    self.read_scratch = read_buf;
                    self.gc_lpns = gc_lpns;
                    self.gc_data = gc_data;
                    return Err(Error::Dev(DevError::Media {
                        what: format!("GC read of block {victim} page {page} failed: {e}"),
                    }));
                }
            }
            for &i in &live[..n_live] {
                let lpn = self.rmap[(base_slot + i as u64) as usize];
                gc_lpns.push(lpn);
                gc_data.extend_from_slice(&read_buf[i * 4096..(i + 1) * 4096]);
            }
        }
        // Re-program the survivors in pairs on this plane.
        for (ci, chunk) in gc_lpns.chunks(self.spp).enumerate() {
            let mut items: [(u64, &[u8]); MAX_SPP] = [(0, &[]); MAX_SPP];
            let base = ci * self.spp;
            for (j, &lpn) in chunk.iter().enumerate() {
                let off = (base + j) * 4096;
                items[j] = (lpn, &gc_data[off..off + 4096]);
            }
            t = self.program_on_plane(nand, plane, &items[..chunk.len()], t);
            self.stats.gc_relocated_slots += chunk.len() as u64;
            self.stats.slots_programmed += chunk.len() as u64;
            self.stats.slots_by_cause[WriteCause::GcRelocate.index()] += chunk.len() as u64;
            self.stats.data_programs += 1;
        }
        self.read_scratch = read_buf;
        self.gc_lpns = gc_lpns;
        self.gc_data = gc_data;
        let end = nand.erase(victim, t).expect("victim block exists");
        if let Some(tel) = &self.tel {
            tel.record("nand.erase", end.saturating_sub(t));
        }
        self.stats.gc_erases += 1;
        self.role[victim as usize] = Role::Free;
        // After a mapping rollback the valid count can carry phantom
        // references (mapping corruption on volatile devices); erasing the
        // block resolves them to zero by definition.
        self.valid[victim as usize] = 0;
        self.plane_free[plane].push(victim);
        Ok(end)
    }

    /// Read the slot of `lpn` into `buf` (4KB). A media failure other than
    /// shorn/unwritten flash propagates as [`Error`] instead of aborting
    /// the process.
    pub fn read_slot(
        &mut self,
        nand: &mut NandArray,
        lpn: u64,
        buf: &mut [u8],
        now: Nanos,
    ) -> Result<SlotRead> {
        assert_eq!(buf.len(), 4096);
        let slot = self.map[lpn as usize];
        if slot == NONE {
            buf.fill(0);
            return Ok(SlotRead::Unmapped);
        }
        let ppn = slot / self.spp as u64;
        let idx = (slot % self.spp as u64) as usize;
        let mut page = std::mem::take(&mut self.read_scratch);
        let res = nand.read(ppn, &mut page, now);
        let out = match res {
            Ok(done) => {
                buf.copy_from_slice(&page[idx * 4096..(idx + 1) * 4096]);
                Ok(SlotRead::Ok(done))
            }
            // Shorn program, or mapping pointing at erased flash after a
            // rollback: both surface as unreadable data.
            Err(NandError::Shorn { .. }) | Err(NandError::Unwritten { .. }) => Ok(SlotRead::Shorn),
            Err(e) => Err(Error::Dev(DevError::Media {
                what: format!("read of mapped slot for lpn {lpn} failed: {e}"),
            })),
        };
        self.read_scratch = page;
        out
    }

    /// Persist the mapping journal: programs `ceil(delta/entries_per_page)`
    /// metadata pages and clears the delta. Returns the completion time.
    pub fn persist_mapping(&mut self, nand: &mut NandArray, now: Nanos) -> Nanos {
        let geo = *nand.geometry();
        let entries_per_page = geo.page_size / 8; // (lpn, slot) pairs, 8B packed
        let pages = self.up_list.len().div_ceil(entries_per_page).max(1);
        if let Some(tel) = &self.tel {
            tel.trace_begin("ftl", "ftl.map_persist", now);
        }
        let mut t = now;
        for _ in 0..pages {
            t = self.program_meta_page(nand, t);
        }
        if let Some(tel) = &self.tel {
            tel.trace_end("ftl", "ftl.map_persist", t);
        }
        self.clear_unpersisted();
        t
    }

    /// One mapping-journal page program, cycling the per-plane meta block.
    fn program_meta_page(&mut self, nand: &mut NandArray, now: Nanos) -> Nanos {
        let geo = *nand.geometry();
        let plane = self.plane_cursor % self.planes;
        let block = self.meta_block[plane];
        if self.meta_next[plane] as usize >= geo.pages_per_block {
            let done = nand.erase(block, now).expect("meta block exists");
            self.meta_next[plane] = 0;
            return self.program_meta_page_at(nand, plane, done);
        }
        self.program_meta_page_at(nand, plane, now)
    }

    fn program_meta_page_at(&mut self, nand: &mut NandArray, plane: usize, now: Nanos) -> Nanos {
        let geo = *nand.geometry();
        let block = self.meta_block[plane];
        let page = self.meta_next[plane];
        self.meta_next[plane] += 1;
        let ppn = geo.make_ppn(block, page);
        self.page_scratch.fill(0);
        self.stats.meta_programs += 1;
        // A meta page occupies the same media as spp data slots; attribute
        // it at full width so per-cause slots sum to total media pages.
        self.stats.slots_by_cause[WriteCause::MapPersist.index()] += self.spp as u64;
        nand.program(ppn, &self.page_scratch, now).expect("meta frontier in order")
    }

    /// TRIM a logical page: drop its mapping so GC never relocates the
    /// stale data. Returns whether the page was mapped.
    pub fn trim(&mut self, lpn: u64) -> bool {
        let old = self.map[lpn as usize];
        if old == NONE {
            return false;
        }
        self.note_map_change(lpn, old);
        self.invalidate(old);
        self.map[lpn as usize] = NONE;
        true
    }

    /// Reconstruct the mapping after a power cut on a volatile-cache
    /// device, modelling the journal-plus-out-of-band boot scan of a
    /// conventional SSD: the RAM mapping table is gone, the journal holds
    /// the last persisted state, and the boot scan walks pages programmed
    /// since then to find newer durable copies. For every lpn changed
    /// since the last persist the surviving mapping is therefore
    ///
    /// 1. its **current** slot, when that program physically completed
    ///    before the cut (the scan finds the newest intact copy);
    /// 2. else its **journalled** pre-persist slot, when that page still
    ///    exists (not sheared, its block not erased) and no newer copy
    ///    claimed the slot;
    /// 3. else unmapped.
    ///
    /// Call only after [`NandArray::power_cut`] has sheared in-flight
    /// programs and resolved in-flight erases, so "intact" reflects the
    /// post-cut media.
    ///
    /// Two-phase on purpose. A slot can appear as one lpn's *pre-persist*
    /// home and another lpn's *current* home in the same delta (host write
    /// moved A off slot S, GC later parked B on the recycled S). A single
    /// interleaved pass is order-dependent: restoring A's `rmap[S] = A`
    /// first and then detaching B (`invalidate(S)`) clobbers the restore
    /// and leaves `map[A] = S` with `rmap[S] = NONE`. Detach everything,
    /// then resolve — newest copies first, journal fallbacks second, so an
    /// out-of-date journal entry never steals a slot whose data now
    /// belongs to a newer lpn. (Both found by the simtest fuzzer:
    /// `--target volatile --seed 15` for the clobber, `--seed 9` for the
    /// journal pointing into a GC-erased block.)
    pub fn rollback_unpersisted(&mut self, nand: &NandArray) {
        let list = std::mem::take(&mut self.up_list);
        // Phase 1: detach every changed lpn's current mapping, remembering
        // it as the newest-copy candidate.
        let mut curs = std::mem::take(&mut self.gc_lpns); // reuse scratch
        curs.clear();
        for &lpn in &list {
            let cur = self.map[lpn as usize];
            curs.push(cur);
            if cur != NONE {
                self.invalidate(cur);
                self.map[lpn as usize] = NONE;
            }
        }
        // Phase 2a: newest durable copies win (the boot scan finds them).
        for (i, &lpn) in list.iter().enumerate() {
            let cur = curs[i];
            if cur != NONE && self.slot_intact(nand, cur) && self.rmap[cur as usize] == NONE {
                self.map[lpn as usize] = cur;
                self.rmap[cur as usize] = lpn;
                self.valid[(cur / self.slots_per_block as u64) as usize] += 1;
            }
        }
        // Phase 2b: fall back to the journalled home when it is still
        // physically readable and unclaimed.
        for &lpn in &list {
            if self.map[lpn as usize] != NONE {
                continue;
            }
            let old_slot = self.up_old[lpn as usize];
            if old_slot != NONE
                && self.slot_intact(nand, old_slot)
                && self.rmap[old_slot as usize] == NONE
            {
                self.map[lpn as usize] = old_slot;
                self.rmap[old_slot as usize] = lpn;
                self.valid[(old_slot / self.slots_per_block as u64) as usize] += 1;
            }
        }
        self.gc_lpns = curs;
        self.up_list = list;
        self.clear_unpersisted();
    }

    /// Whether the physical page holding `slot` still carries fully
    /// programmed data.
    fn slot_intact(&self, nand: &NandArray, slot: u64) -> bool {
        nand.page_intact(slot / self.spp as u64)
    }

    /// Reconcile the FTL's bookkeeping with the post-power-cut NAND state
    /// at reboot. Two kinds of damage need repair (both found by the
    /// simtest fuzzer, `--target dura --seed 0` and the torn-erase
    /// regression in `device.rs`):
    ///
    /// * **Torn erases** — a cut mid-erase leaves the block refusing
    ///   programs until erased again, but the FTL has already recycled it
    ///   (a GC victim re-enters the free pool, may even have reopened as a
    ///   write frontier with sheared programs on it). Every page resident
    ///   on a torn block was programmed after the erase was issued, so it
    ///   is shorn: drop its mappings (same policy as the shorn-read branch
    ///   of GC relocation), re-erase, and reset any frontier/meta cursor.
    ///
    /// * **Restored erases** — a cut *before* the erase pulse started
    ///   restores the block's old contents, so a block the FTL recycled as
    ///   free/frontier/meta suddenly has data on it again. If recovery
    ///   re-adopted mappings into it (journal fallback), seal it and let
    ///   GC reclaim it later; if it only holds garbage, erase it. Open
    ///   frontier/meta cursors resync to the NAND write position.
    ///
    /// Returns the completion time of the last repair erase and the number
    /// of blocks repaired.
    pub fn repair_media_after_cut(&mut self, nand: &mut NandArray, now: Nanos) -> (Nanos, u64) {
        let mut done = now;
        let mut repaired = 0u64;
        for b in 0..self.role.len() as u32 {
            let bi = b as usize;
            if nand.has_torn_erase(b) {
                // Drop every mapping into the block: its resident pages
                // are all shorn (programmed after the torn erase was
                // issued).
                let base = b as u64 * self.slots_per_block as u64;
                for s in base..base + self.slots_per_block as u64 {
                    let lpn = self.rmap[s as usize];
                    if lpn == NONE {
                        continue;
                    }
                    if self.map[lpn as usize] == s {
                        self.note_map_change(lpn, s);
                        self.map[lpn as usize] = NONE;
                    }
                    self.rmap[s as usize] = NONE;
                }
                self.valid[bi] = 0;
                let d = nand.erase(b, now).expect("re-erase of a torn block is always in range");
                done = done.max(d);
                repaired += 1;
                for f in self.frontier.iter_mut() {
                    if f.0 == b {
                        f.1 = 0;
                    }
                }
                for (plane, &m) in self.meta_block.iter().enumerate() {
                    if m == b {
                        self.meta_next[plane] = 0;
                    }
                }
                continue;
            }
            let nand_next = nand.next_free_page(b);
            match self.role[bi] {
                Role::Free if nand_next != 0 => {
                    // A restored erase re-filled a recycled block.
                    if self.valid[bi] == 0 {
                        // Garbage only: erase it back to a truly free state.
                        let d = nand.erase(b, now).expect("free block in range");
                        done = done.max(d);
                    } else {
                        // Recovery re-adopted data here: pull it out of the
                        // free pool and let GC reclaim it normally.
                        let plane = bi % self.planes;
                        self.plane_free[plane].retain(|&x| x != b);
                        self.role[bi] = Role::Sealed;
                    }
                    repaired += 1;
                }
                Role::Frontier => {
                    for f in self.frontier.iter_mut() {
                        if f.0 == b && f.1 != nand_next {
                            // Resync the cursor; a full block seals itself
                            // on the next program.
                            f.1 = nand_next;
                            repaired += 1;
                        }
                    }
                }
                Role::Meta => {
                    for (plane, &m) in self.meta_block.iter().enumerate() {
                        if m == b && self.meta_next[plane] != nand_next {
                            self.meta_next[plane] = nand_next;
                            repaired += 1;
                        }
                    }
                }
                _ => {}
            }
        }
        (done, repaired)
    }

    /// Total free blocks (all planes) — test instrumentation.
    pub fn free_blocks(&self) -> usize {
        self.plane_free.iter().map(Vec::len).sum()
    }

    /// GC pressure: how many free blocks each plane is short of its GC
    /// trigger threshold, summed across planes (0 = no pressure; every
    /// positive unit means the next program on that plane stalls behind a
    /// collection).
    pub fn gc_debt(&self) -> usize {
        self.plane_free.iter().map(|f| self.gc_threshold.saturating_sub(f.len())).sum()
    }

    /// `(live, total)` data-slot counts on media — the numerator and
    /// denominator of the device's valid ratio (GC efficiency gauge).
    /// O(blocks); callers refresh it on a stride, not per command.
    pub fn live_slots(&self) -> (u64, u64) {
        let live: u64 = self.valid.iter().map(|&v| v as u64).sum();
        (live, self.rmap.len() as u64)
    }

    /// Structural audit of the FTL's internal bookkeeping, for the
    /// simulation-test harness (cheap enough to run after every step on
    /// test geometries; debug builds of the device call it from
    /// [`crate::Ssd::check_invariants`]).
    ///
    /// Checked invariants:
    ///
    /// 1. **map → rmap**: every mapped lpn's slot points back at it;
    /// 2. **rmap → map**: every slot owner's forward mapping agrees;
    /// 3. **valid counts**: `valid[b]` equals the number of rmap entries in
    ///    block `b`, for every block;
    /// 4. **role partition**: the free pools hold exactly the `Free` blocks
    ///    of their plane (no duplicates), each plane's frontier/meta block
    ///    has the matching role, dump blocks keep the `Dump` role;
    /// 5. **meta/dump hygiene**: journal and dump blocks never hold data
    ///    slots (`valid == 0`, no rmap entries);
    /// 6. **frontier position**: the per-plane frontier cursor agrees with
    ///    the NAND array's next programmable page of that block;
    /// 7. **unpersisted overlay**: `up_list` has no duplicates, every listed
    ///    lpn is marked with the current epoch and lies inside the map;
    /// 8. **provenance conservation**: every NAND program is attributed to
    ///    exactly one [`WriteCause`] — `nand.programs` equals
    ///    `data_programs + meta_programs`, and the per-cause slot counters
    ///    sum to `slots_programmed + meta_programs * spp` with the GC and
    ///    mapping-journal causes matching their dedicated counters exactly.
    ///    (Program counters are never rolled back by a power cut — shorn
    ///    programs stressed the cells — so the identities hold across cuts.)
    pub fn check_invariants(&self, nand: &NandArray) -> std::result::Result<(), String> {
        // 8. Provenance conservation.
        let nand_programs = nand.stats().programs;
        let s = &self.stats;
        if nand_programs != s.data_programs + s.meta_programs {
            return Err(format!(
                "program attribution leak: NAND reports {nand_programs} programs, \
                 FTL accounts {} data + {} meta",
                s.data_programs, s.meta_programs
            ));
        }
        let by_cause: u64 = s.slots_by_cause.iter().sum();
        let expect = s.slots_programmed + s.meta_programs * self.spp as u64;
        if by_cause != expect {
            return Err(format!(
                "per-cause slot conservation broken: causes sum to {by_cause}, \
                 expected {expect} ({} data slots + {} meta pages x {} spp)",
                s.slots_programmed, s.meta_programs, self.spp
            ));
        }
        let gc = s.slots_by_cause[WriteCause::GcRelocate.index()];
        if gc != s.gc_relocated_slots {
            return Err(format!(
                "GC attribution drift: {gc} slots tagged GcRelocate, {} relocated",
                s.gc_relocated_slots
            ));
        }
        let mp = s.slots_by_cause[WriteCause::MapPersist.index()];
        if mp != s.meta_programs * self.spp as u64 {
            return Err(format!(
                "map-persist attribution drift: {mp} slots tagged MapPersist, \
                 {} meta programs x {} spp",
                s.meta_programs, self.spp
            ));
        }
        // 1. map → rmap.
        for (lpn, &slot) in self.map.iter().enumerate() {
            if slot == NONE {
                continue;
            }
            if slot as usize >= self.rmap.len() {
                return Err(format!("map[{lpn}] = {slot} beyond physical slots"));
            }
            let owner = self.rmap[slot as usize];
            if owner != lpn as u64 {
                return Err(format!(
                    "map/rmap bijection broken: map[{lpn}] = {slot} but rmap[{slot}] = {owner}"
                ));
            }
        }
        // 2. rmap → map, and 3. per-block valid counts.
        let mut counted = vec![0u32; self.valid.len()];
        for (slot, &lpn) in self.rmap.iter().enumerate() {
            if lpn == NONE {
                continue;
            }
            counted[slot / self.slots_per_block as usize] += 1;
            let fwd = self.map.get(lpn as usize).copied().unwrap_or(NONE);
            if fwd != slot as u64 {
                return Err(format!(
                    "rmap/map bijection broken: rmap[{slot}] = {lpn} but map[{lpn}] = {fwd}"
                ));
            }
        }
        for (b, (&have, &want)) in self.valid.iter().zip(counted.iter()).enumerate() {
            if have != want {
                return Err(format!(
                    "valid count drift on block {b}: valid[] = {have}, rmap says {want}"
                ));
            }
        }
        // 4. Role partition vs the free pools / frontier / meta / dump sets.
        let mut seen_free = vec![false; self.role.len()];
        for (plane, free) in self.plane_free.iter().enumerate() {
            for &b in free {
                let bi = b as usize;
                if bi % self.planes != plane {
                    return Err(format!("block {b} in free pool of wrong plane {plane}"));
                }
                if seen_free[bi] {
                    return Err(format!("block {b} appears twice in the free pools"));
                }
                seen_free[bi] = true;
                if self.role[bi] != Role::Free {
                    return Err(format!("free-pool block {b} has role {:?}", self.role[bi]));
                }
            }
        }
        for (bi, &role) in self.role.iter().enumerate() {
            if role == Role::Free && !seen_free[bi] {
                return Err(format!("block {bi} is Free but missing from its plane's pool"));
            }
        }
        for (plane, &(b, next)) in self.frontier.iter().enumerate() {
            if self.role[b as usize] != Role::Frontier {
                return Err(format!(
                    "frontier block {b} of plane {plane} has role {:?}",
                    self.role[b as usize]
                ));
            }
            // 6. The frontier cursor is in page units on the NAND side.
            let nand_next = nand.next_free_page(b);
            if nand_next != next {
                return Err(format!(
                    "frontier drift on plane {plane}: cursor at page {next}, NAND at {nand_next}"
                ));
            }
        }
        for (plane, &m) in self.meta_block.iter().enumerate() {
            if self.role[m as usize] != Role::Meta {
                return Err(format!(
                    "meta block {m} of plane {plane} has role {:?}",
                    self.role[m as usize]
                ));
            }
        }
        for &d in &self.dump_blocks {
            if self.role[d as usize] != Role::Dump {
                return Err(format!("dump block {d} has role {:?}", self.role[d as usize]));
            }
        }
        // 5. Meta/dump blocks never hold data slots.
        for (bi, &role) in self.role.iter().enumerate() {
            if matches!(role, Role::Meta | Role::Dump) && self.valid[bi] != 0 {
                return Err(format!("{role:?} block {bi} holds {} data slots", self.valid[bi]));
            }
        }
        // 7. Unpersisted overlay consistency.
        let mut listed = std::collections::HashSet::with_capacity(self.up_list.len());
        for &lpn in &self.up_list {
            if lpn as usize >= self.map.len() {
                return Err(format!("unpersisted lpn {lpn} outside the logical space"));
            }
            if !listed.insert(lpn) {
                return Err(format!("unpersisted lpn {lpn} listed twice"));
            }
            if self.up_mark[lpn as usize] != self.up_epoch {
                return Err(format!("unpersisted lpn {lpn} carries a stale epoch mark"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Ftl, NandArray) {
        let cfg = SsdConfig::tiny_test();
        let nand = NandArray::new(cfg.geometry);
        (Ftl::new(&cfg), nand)
    }

    fn slot_data(fill: u8) -> Vec<u8> {
        vec![fill; 4096]
    }

    #[test]
    fn write_then_read_round_trips() {
        let (mut ftl, mut nand) = setup();
        let d = slot_data(7);
        let done = ftl.program_slots(&mut nand, &[(3, &d)], 0).unwrap();
        let mut buf = vec![0u8; 4096];
        assert!(matches!(ftl.read_slot(&mut nand, 3, &mut buf, done).unwrap(), SlotRead::Ok(_)));
        assert_eq!(buf, d);
    }

    #[test]
    fn unmapped_reads_zero() {
        let (mut ftl, mut nand) = setup();
        let mut buf = vec![1u8; 4096];
        assert_eq!(ftl.read_slot(&mut nand, 9, &mut buf, 0).unwrap(), SlotRead::Unmapped);
        assert_eq!(buf, vec![0u8; 4096]);
    }

    #[test]
    fn pair_program_shares_one_physical_page() {
        let (mut ftl, mut nand) = setup();
        let a = slot_data(1);
        let b = slot_data(2);
        ftl.program_slots(&mut nand, &[(10, &a), (11, &b)], 0).unwrap();
        assert_eq!(ftl.stats().data_programs, 1);
        assert_eq!(ftl.stats().slots_programmed, 2);
        let (sa, sb) = (ftl.slot_of(10).unwrap(), ftl.slot_of(11).unwrap());
        assert_eq!(sa / 2, sb / 2, "both slots on the same NAND page");
        let mut buf = vec![0u8; 4096];
        ftl.read_slot(&mut nand, 11, &mut buf, 10_000_000).unwrap();
        assert_eq!(buf, b);
    }

    #[test]
    fn overwrite_invalidates_old_slot() {
        let (mut ftl, mut nand) = setup();
        let a = slot_data(1);
        let b = slot_data(2);
        ftl.program_slots(&mut nand, &[(5, &a)], 0).unwrap();
        let s1 = ftl.slot_of(5).unwrap();
        ftl.program_slots(&mut nand, &[(5, &b)], 1_000_000).unwrap();
        let s2 = ftl.slot_of(5).unwrap();
        assert_ne!(s1, s2, "flash never overwrites in place");
        let mut buf = vec![0u8; 4096];
        ftl.read_slot(&mut nand, 5, &mut buf, 10_000_000).unwrap();
        assert_eq!(buf, b);
    }

    #[test]
    fn programs_stripe_across_planes() {
        let (mut ftl, mut nand) = setup();
        let d = slot_data(1);
        // Four programs on a 4-plane device land on four different planes:
        // all four complete in roughly one program time.
        let mut last = 0;
        for i in 0..4 {
            last = ftl.program_slots(&mut nand, &[(i, &d)], 0).unwrap();
        }
        let geo = *nand.geometry();
        assert!(last < 2 * geo.t_program, "four programs should overlap: {last}");
    }

    #[test]
    fn gc_reclaims_space_under_overwrite_churn() {
        let (mut ftl, mut nand) = setup();
        // Tiny device: hammer a small working set far beyond raw capacity.
        let mut t = 0;
        for round in 0..40u64 {
            for lpn in 0..32u64 {
                let d = slot_data((round % 251) as u8);
                t = ftl.program_slots(&mut nand, &[(lpn, &d), (lpn + 32, &d)], t).unwrap();
            }
        }
        assert!(ftl.stats().gc_erases > 0, "churn must trigger GC");
        // All data still readable with the latest value.
        let mut buf = vec![0u8; 4096];
        for lpn in 0..32u64 {
            assert!(matches!(ftl.read_slot(&mut nand, lpn, &mut buf, t).unwrap(), SlotRead::Ok(_)));
            assert_eq!(buf[0], 39);
        }
        assert!(ftl.free_blocks() > 0);
    }

    #[test]
    fn mapping_persist_clears_delta_and_writes_meta() {
        let (mut ftl, mut nand) = setup();
        let d = slot_data(1);
        ftl.program_slots(&mut nand, &[(1, &d)], 0).unwrap();
        ftl.program_slots(&mut nand, &[(2, &d)], 0).unwrap();
        assert_eq!(ftl.unpersisted_entries(), 2);
        ftl.persist_mapping(&mut nand, 10_000_000);
        assert_eq!(ftl.unpersisted_entries(), 0);
        assert!(ftl.stats().meta_programs >= 1);
    }

    #[test]
    fn rollback_restores_pre_persist_mapping_when_new_copy_sheared() {
        let (mut ftl, mut nand) = setup();
        let a = slot_data(1);
        let b = slot_data(2);
        ftl.program_slots(&mut nand, &[(5, &a)], 0).unwrap();
        let t = ftl.persist_mapping(&mut nand, 5_000_000);
        let s_old = ftl.slot_of(5).unwrap();
        // Unpersisted overwrite whose program shears at the cut...
        let done = ftl.program_slots(&mut nand, &[(5, &b)], t).unwrap();
        assert_ne!(ftl.slot_of(5).unwrap(), s_old);
        nand.power_cut(done - 1);
        // ...so recovery falls back to the journalled home: reads see the
        // old value again.
        ftl.rollback_unpersisted(&nand);
        assert_eq!(ftl.slot_of(5).unwrap(), s_old);
        let mut buf = vec![0u8; 4096];
        ftl.read_slot(&mut nand, 5, &mut buf, 20_000_000).unwrap();
        assert_eq!(buf, a);
    }

    #[test]
    fn rollback_keeps_durable_unjournalled_copies() {
        // The boot scan finds copies that completed before the cut even if
        // the journal never recorded them: an acked-but-unjournalled write
        // survives (it may legitimately survive on real hardware too — the
        // oracle treats such lpns as fuzzy after a cut).
        let (mut ftl, mut nand) = setup();
        let b = slot_data(2);
        let done = ftl.program_slots(&mut nand, &[(5, &b)], 0).unwrap();
        let s_new = ftl.slot_of(5).unwrap();
        nand.power_cut(done); // exactly at completion: the program is stable
        ftl.rollback_unpersisted(&nand);
        assert_eq!(ftl.slot_of(5), Some(s_new));
        let mut buf = vec![0u8; 4096];
        ftl.read_slot(&mut nand, 5, &mut buf, 20_000_000).unwrap();
        assert_eq!(buf, b);
        ftl.check_invariants(&nand).unwrap();
    }

    #[test]
    fn rollback_of_sheared_fresh_write_unmaps() {
        let (mut ftl, mut nand) = setup();
        let d = slot_data(3);
        let done = ftl.program_slots(&mut nand, &[(7, &d)], 0).unwrap();
        nand.power_cut(done - 1);
        ftl.rollback_unpersisted(&nand);
        assert_eq!(ftl.slot_of(7), None);
        let mut buf = vec![1u8; 4096];
        assert_eq!(ftl.read_slot(&mut nand, 7, &mut buf, 10_000_000).unwrap(), SlotRead::Unmapped);
    }

    #[test]
    fn dump_blocks_are_reserved_per_plane() {
        let cfg = SsdConfig::tiny_test();
        let ftl = Ftl::new(&cfg);
        assert_eq!(ftl.dump_blocks().len(), cfg.geometry.planes() * cfg.dump_reserve_blocks);
    }

    /// Build the state both rollback regressions need: persist a mapping
    /// for lpns 0..64, trim them all (un-journalled — their home blocks go
    /// `valid == 0` and are prime GC victims), then churn a disjoint lpn
    /// range until GC has erased and recycled those blocks so fresh writes
    /// land on the trimmed lpns' pre-persist slots. First-touch order in
    /// the unpersisted delta now puts each trimmed lpn *before* the new
    /// occupant of its old slot — exactly the order the single-pass
    /// rollback clobbered. Returns the virtual time reached.
    fn churn_past_gc_then(f: impl FnOnce(&mut Ftl, &mut NandArray, Nanos)) {
        let (mut ftl, mut nand) = setup();
        let d = slot_data(7);
        let mut t = 0;
        for lpn in 0..64u64 {
            t = ftl.program_slots(&mut nand, &[(lpn, &d)], t).unwrap();
        }
        t = ftl.persist_mapping(&mut nand, t);
        for lpn in 0..64u64 {
            assert!(ftl.trim(lpn));
        }
        let before = ftl.stats().gc_erases;
        let mut guard = 0;
        while ftl.stats().gc_erases < before + 8 {
            for lpn in 200..264u64 {
                t = ftl.program_slots(&mut nand, &[(lpn, &d)], t).unwrap();
            }
            guard += 1;
            assert!(guard < 1024, "GC never triggered");
        }
        f(&mut ftl, &mut nand, t);
    }

    /// Regression (simtest fuzzer, `--target volatile --seed 15`): a slot
    /// can be one lpn's pre-persist home and another lpn's current home in
    /// the same unpersisted delta. The old single-pass rollback was
    /// order-dependent and left `map[a] = s` with `rmap[s] = NONE`; the
    /// trimmed lpns' journalled homes are also physically gone (their
    /// blocks were GC-erased), so resurrection must not happen either.
    #[test]
    fn rollback_after_gc_recycling_keeps_bijection() {
        churn_past_gc_then(|ftl, nand, _t| {
            ftl.rollback_unpersisted(nand);
            ftl.check_invariants(nand).expect("map/rmap bijection after rollback");
            // The churned lpns' newest copies are durable (no cut): kept.
            for lpn in 200..264u64 {
                assert!(ftl.slot_of(lpn).is_some(), "durable copy of lpn {lpn} kept");
            }
        });
    }

    /// Regression (simtest fuzzer, `--target volatile --seed 12`): a
    /// mapping rollback can restore an owner into a block that GC recycled
    /// after the persist point — including the currently *open* write
    /// frontier. The next program on such a slot must evict the phantom
    /// owner; leaving its forward pointer in place broke the map/rmap
    /// bijection. The test plants exactly the reverse-map state rollback
    /// phase 2 produces, on the slot the next plane-0 program will take.
    #[test]
    fn program_over_rolled_back_phantom_owner_evicts_it() {
        let (mut ftl, mut nand) = setup();
        let d = slot_data(9);
        let mut t = ftl.program_slots(&mut nand, &[(5, &d)], 0).unwrap();
        // The slot the next plane-0 frontier program will occupy.
        let (b, n) = ftl.frontier[0];
        let planted = nand.geometry().make_ppn(b, n) * ftl.spp as u64;
        // What rollback does when lpn 6's pre-persist home is that slot:
        ftl.map[6] = planted;
        ftl.rmap[planted as usize] = 6;
        ftl.valid[b as usize] += 1;
        // Round-robin the other planes, then land on the planted slot.
        for lpn in [7u64, 8, 9, 10] {
            t = ftl.program_slots(&mut nand, &[(lpn, &d)], t).unwrap();
        }
        assert_eq!(ftl.slot_of(10), Some(planted), "test drives the planted slot");
        assert_eq!(ftl.slot_of(6), None, "phantom owner must be evicted");
        ftl.check_invariants(&nand).expect("bijection after programming over a phantom");
    }

    /// Regression for the GC shorn-read branch: dropping a mapping during
    /// relocation must enter the unpersisted delta, or a later rollback
    /// resurrects the lpn into the erased victim block and breaks the
    /// bijection audit.
    #[test]
    fn gc_shorn_drop_is_recorded_in_unpersisted_delta() {
        let (mut ftl, mut nand) = setup();
        let d = slot_data(5);
        // Shear lpn 500's program mid-flight: its slot stays mapped but the
        // page refuses reads (this models a capacitor-backed device whose
        // pre-cut drain program tore).
        let done = ftl.program_slots(&mut nand, &[(500, &d)], 0).unwrap();
        nand.power_cut(done - 1);
        // The mapping to the shorn page is part of the journalled state.
        let mut t = ftl.persist_mapping(&mut nand, done);
        let shorn_slot = ftl.slot_of(500).unwrap();
        // Churn other lpns until GC collects the shorn page's block.
        let mut guard = 0;
        while ftl.slot_of(500) == Some(shorn_slot) {
            for lpn in 0..64u64 {
                t = ftl.program_slots(&mut nand, &[(lpn, &d)], t).unwrap();
            }
            guard += 1;
            assert!(guard < 256, "GC never collected the shorn block");
        }
        // The defensive drop must be in the delta like any map change...
        assert_eq!(ftl.slot_of(500), None, "shorn slot is dropped, not relocated");
        assert!(
            ftl.unpersisted_delta().iter().any(|&(lpn, old)| lpn == 500 && old == Some(shorn_slot)),
            "GC's defensive drop of lpn 500 must enter the unpersisted delta"
        );
        // ...so the post-rollback state passes the structural audit.
        ftl.rollback_unpersisted(&nand);
        ftl.check_invariants(&nand).expect("bijection after rollback over a GC shorn-drop");
    }
}

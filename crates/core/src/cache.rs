//! The DRAM write cache (§3.1.1).
//!
//! A FIFO of dirty 4KB slots with duplicate-write coalescing: when the host
//! overwrites a page that is still waiting in the cache, the old copy is
//! replaced in place — the paper notes this improves endurance because only
//! the latest version reaches flash.
//!
//! Entries move through three states:
//!
//! * **dirty** — waiting for the flusher;
//! * **draining** — a NAND program has been scheduled but has not completed;
//!   the DRAM slot is still occupied (and still dump-covered on power cut);
//! * gone — the program completed, the slot was reclaimed (lazy).

use simkit::Nanos;
use std::collections::{HashMap, VecDeque};

/// One cached 4KB slot.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// Page content (4KB).
    pub data: Box<[u8]>,
    /// When `Some(done)`, a NAND program for this entry completes at `done`;
    /// the slot is reclaimable after that time.
    pub draining_until: Option<Nanos>,
    /// The host command's acknowledgement time. The flusher must not pick
    /// the entry up earlier: an unacknowledged command has to remain fully
    /// discardable for the atomic writer (§3.2).
    pub ackable_at: Nanos,
    /// Generation tag matching this entry to its FIFO reference; entries
    /// removed (TRIM) or replaced leave stale references behind, which the
    /// flusher recognises by generation mismatch.
    gen: u64,
}

/// The write cache.
#[derive(Debug, Default)]
pub struct WriteCache {
    entries: HashMap<u64, CacheEntry>,
    /// FIFO of `(lpn, generation)` awaiting drain. May contain stale
    /// references; `pop_dirty` skips them by generation mismatch.
    fifo: VecDeque<(u64, u64)>,
    /// Number of entries not yet handed to the flusher (== live fifo refs).
    dirty: usize,
    next_gen: u64,
}

impl WriteCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total occupied slots (dirty + draining).
    pub fn occupied(&self) -> usize {
        self.entries.len()
    }

    /// Slots still occupied at time `t`: entries whose drain has not
    /// completed by then. Used for flow-control capacity checks *without*
    /// discarding entries — a completed-but-unreclaimed entry must survive
    /// in DRAM until the device knows no power cut can predate its program
    /// (see `Ssd::note_arrival`).
    pub fn occupied_at(&self, t: Nanos) -> usize {
        self.entries.values().filter(|e| e.draining_until.is_none_or(|done| done > t)).count()
    }

    /// Slots waiting for the flusher.
    pub fn dirty(&self) -> usize {
        self.dirty
    }

    /// Occupied bytes (what the capacitors must be able to dump).
    pub fn occupied_bytes(&self) -> u64 {
        self.entries.len() as u64 * 4096
    }

    /// Look up a slot (read hit path). Draining entries still hit.
    pub fn get(&self, lpn: u64) -> Option<&[u8]> {
        self.entries.get(&lpn).map(|e| &*e.data)
    }

    /// Insert or coalesce a host write whose command acknowledges at
    /// `ackable_at`. Returns the entry this write replaced, if any (the
    /// atomic writer keeps it as a pre-image while the command is in
    /// flight).
    pub fn insert(&mut self, lpn: u64, data: Box<[u8]>, ackable_at: Nanos) -> Option<CacheEntry> {
        // Coalescing with a still-dirty copy keeps its FIFO position (same
        // generation); otherwise the entry gets a fresh reference.
        let keep_gen = self.entries.get(&lpn).and_then(|e| {
            if e.draining_until.is_none() {
                Some(e.gen)
            } else {
                None
            }
        });
        let gen = keep_gen.unwrap_or_else(|| {
            self.next_gen += 1;
            self.next_gen
        });
        let prev =
            self.entries.insert(lpn, CacheEntry { data, draining_until: None, ackable_at, gen });
        if keep_gen.is_none() {
            self.fifo.push_back((lpn, gen));
            self.dirty += 1;
        }
        prev
    }

    /// Undo an in-flight host write at power-cut time: restore the
    /// pre-image (or remove the entry if the page was not cached before).
    pub fn rollback(&mut self, lpn: u64, pre: Option<CacheEntry>) {
        match pre {
            Some(e) => {
                let was_dirty =
                    self.entries.insert(lpn, e).is_none_or(|cur| cur.draining_until.is_none());
                // The rolled-back entry occupied a dirty FIFO slot that the
                // restored pre-image now owns; nothing to adjust unless the
                // new write had created the dirty ref itself.
                let _ = was_dirty;
            }
            None => {
                if let Some(e) = self.entries.remove(&lpn) {
                    if e.draining_until.is_none() {
                        self.dirty = self.dirty.saturating_sub(1);
                    }
                }
            }
        }
    }

    /// Take the oldest dirty entry whose command has acknowledged by `now`,
    /// marking it draining. Returns `(lpn, data)`; the completion time is
    /// set via [`WriteCache::set_draining`] once the program is scheduled.
    pub fn pop_dirty(&mut self, now: Nanos) -> Option<(u64, Box<[u8]>)> {
        while let Some(&(lpn, gen)) = self.fifo.front() {
            match self.entries.get_mut(&lpn) {
                Some(e) if e.gen == gen && e.draining_until.is_none() => {
                    if e.ackable_at > now {
                        // FIFO order tracks ack order; nothing older exists.
                        return None;
                    }
                    self.fifo.pop_front();
                    self.dirty -= 1;
                    return Some((lpn, e.data.clone()));
                }
                // Stale reference: removed, replaced or already draining.
                _ => {
                    self.fifo.pop_front();
                }
            }
        }
        None
    }

    /// Earliest time at which a currently-dirty entry becomes drainable, if
    /// any entry is still gated on its command acknowledgement.
    pub fn next_ackable(&self) -> Option<Nanos> {
        self.entries.values().filter(|e| e.draining_until.is_none()).map(|e| e.ackable_at).min()
    }

    /// Record the NAND completion time for an entry handed out by
    /// [`WriteCache::pop_dirty`].
    pub fn set_draining(&mut self, lpn: u64, done: Nanos) {
        if let Some(e) = self.entries.get_mut(&lpn) {
            e.draining_until = Some(done);
        }
    }

    /// Reclaim slots whose programs completed by `now`.
    pub fn reclaim(&mut self, now: Nanos) {
        self.entries.retain(|_, e| match e.draining_until {
            Some(done) => done > now,
            None => true,
        });
    }

    /// Earliest completion among draining entries (for flow-control waits).
    pub fn earliest_drain_done(&self) -> Option<Nanos> {
        self.entries.values().filter_map(|e| e.draining_until).min()
    }

    /// All occupied entries (dump path).
    pub fn iter(&self) -> impl Iterator<Item = (&u64, &CacheEntry)> {
        self.entries.iter()
    }

    /// Remove an entry outright (TRIM): whatever state it was in, it is
    /// gone and will not be flushed.
    pub fn remove(&mut self, lpn: u64) {
        if let Some(e) = self.entries.remove(&lpn) {
            if e.draining_until.is_none() {
                self.dirty = self.dirty.saturating_sub(1);
            }
        }
    }

    /// Re-mark every draining entry as dirty (recovery path: the NAND
    /// programs they were waiting on sheared when power was cut, so the
    /// dumped copies must be flushed again). Returns how many were requeued.
    pub fn requeue_draining(&mut self) -> usize {
        let mut n = 0;
        for (lpn, e) in self.entries.iter_mut() {
            if e.draining_until.take().is_some() {
                self.next_gen += 1;
                e.gen = self.next_gen;
                self.fifo.push_back((*lpn, e.gen));
                n += 1;
            }
        }
        self.dirty += n;
        n
    }

    /// Discard everything (volatile cache on power cut). Returns how many
    /// slots were lost.
    pub fn discard_all(&mut self) -> usize {
        let n = self.entries.len();
        self.entries.clear();
        self.fifo.clear();
        self.dirty = 0;
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(fill: u8) -> Box<[u8]> {
        vec![fill; 4096].into_boxed_slice()
    }

    #[test]
    fn insert_and_get() {
        let mut c = WriteCache::new();
        assert!(c.insert(5, data(1), 0).is_none());
        assert_eq!(c.get(5).unwrap()[0], 1);
        assert_eq!(c.occupied(), 1);
        assert_eq!(c.dirty(), 1);
    }

    #[test]
    fn coalescing_keeps_one_copy() {
        let mut c = WriteCache::new();
        c.insert(5, data(1), 0);
        let prev = c.insert(5, data(2), 0).unwrap();
        assert_eq!(prev.data[0], 1);
        assert_eq!(c.occupied(), 1);
        assert_eq!(c.dirty(), 1);
        assert_eq!(c.get(5).unwrap()[0], 2);
        // Only the latest version is handed to the flusher.
        let (lpn, d) = c.pop_dirty(u64::MAX).unwrap();
        assert_eq!((lpn, d[0]), (5, 2));
        assert!(c.pop_dirty(u64::MAX).is_none());
    }

    #[test]
    fn fifo_order_preserved() {
        let mut c = WriteCache::new();
        c.insert(1, data(1), 0);
        c.insert(2, data(2), 0);
        c.insert(3, data(3), 0);
        assert_eq!(c.pop_dirty(u64::MAX).unwrap().0, 1);
        assert_eq!(c.pop_dirty(u64::MAX).unwrap().0, 2);
        assert_eq!(c.pop_dirty(u64::MAX).unwrap().0, 3);
    }

    #[test]
    fn draining_entries_still_serve_reads_then_reclaim() {
        let mut c = WriteCache::new();
        c.insert(7, data(9), 0);
        let (lpn, _) = c.pop_dirty(u64::MAX).unwrap();
        c.set_draining(lpn, 1000);
        assert_eq!(c.get(7).unwrap()[0], 9);
        c.reclaim(999);
        assert!(c.get(7).is_some(), "not reclaimable before completion");
        c.reclaim(1000);
        assert!(c.get(7).is_none());
    }

    #[test]
    fn rewrite_of_draining_entry_requeues() {
        let mut c = WriteCache::new();
        c.insert(7, data(1), 0);
        let (lpn, _) = c.pop_dirty(u64::MAX).unwrap();
        c.set_draining(lpn, 1000);
        assert_eq!(c.dirty(), 0);
        // Host rewrites the page while the old version is still draining.
        c.insert(7, data(2), 0);
        assert_eq!(c.dirty(), 1);
        let (_, d) = c.pop_dirty(u64::MAX).unwrap();
        assert_eq!(d[0], 2);
    }

    #[test]
    fn rollback_restores_preimage() {
        let mut c = WriteCache::new();
        c.insert(7, data(1), 0);
        let pre = c.insert(7, data(2), 0);
        c.rollback(7, pre);
        assert_eq!(c.get(7).unwrap()[0], 1);
        // Rolling back a fresh insert removes it.
        let pre2 = c.insert(9, data(3), 0);
        c.rollback(9, pre2);
        assert!(c.get(9).is_none());
        assert_eq!(c.dirty(), 1); // only lpn 7 remains dirty
    }

    #[test]
    fn discard_all_clears_everything() {
        let mut c = WriteCache::new();
        c.insert(1, data(1), 0);
        c.insert(2, data(2), 0);
        assert_eq!(c.discard_all(), 2);
        assert_eq!(c.occupied(), 0);
        assert!(c.pop_dirty(u64::MAX).is_none());
    }

    #[test]
    fn earliest_drain_done() {
        let mut c = WriteCache::new();
        c.insert(1, data(1), 0);
        c.insert(2, data(2), 0);
        let (a, _) = c.pop_dirty(u64::MAX).unwrap();
        c.set_draining(a, 500);
        let (b, _) = c.pop_dirty(u64::MAX).unwrap();
        c.set_draining(b, 300);
        assert_eq!(c.earliest_drain_done(), Some(300));
    }

    #[test]
    fn unacked_entries_are_not_drainable() {
        let mut c = WriteCache::new();
        c.insert(1, data(1), 100); // acks at t=100
        assert!(c.pop_dirty(50).is_none(), "flusher must not see unacked data");
        assert_eq!(c.next_ackable(), Some(100));
        assert_eq!(c.pop_dirty(100).unwrap().0, 1);
    }

    #[test]
    fn ack_gate_blocks_younger_entries_behind_fifo_head() {
        let mut c = WriteCache::new();
        c.insert(1, data(1), 100);
        c.insert(2, data(2), 50);
        // FIFO head (lpn 1) not ackable at 60: drain stalls even though
        // lpn 2 acked earlier (ack order == FIFO order in the device).
        assert!(c.pop_dirty(60).is_none());
        assert_eq!(c.pop_dirty(100).unwrap().0, 1);
        assert_eq!(c.pop_dirty(100).unwrap().0, 2);
    }

    #[test]
    fn remove_clears_any_state() {
        let mut c = WriteCache::new();
        c.insert(1, data(1), 0);
        c.remove(1);
        assert!(c.get(1).is_none());
        assert_eq!(c.dirty(), 0);
        // Removing a draining entry.
        c.insert(2, data(2), 0);
        let (l, _) = c.pop_dirty(10).unwrap();
        c.set_draining(l, 100);
        c.remove(2);
        assert!(c.get(2).is_none());
        assert_eq!(c.occupied(), 0);
    }
}

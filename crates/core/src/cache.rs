//! The DRAM write cache (§3.1.1).
//!
//! A FIFO of dirty 4KB slots with duplicate-write coalescing: when the host
//! overwrites a page that is still waiting in the cache, the old copy is
//! replaced in place — the paper notes this improves endurance because only
//! the latest version reaches flash.
//!
//! Entries move through three states:
//!
//! * **dirty** — waiting for the flusher;
//! * **draining** — a NAND program has been scheduled but has not completed;
//!   the DRAM slot is still occupied (and still dump-covered on power cut);
//! * gone — the program completed, the slot was reclaimed (lazy).
//!
//! ## Zero-copy and complexity
//!
//! Slot contents live in [`PageBuf`] leases from the device's page pool, so
//! admission, drain and reclaim move *ownership*, never bytes: the flusher
//! borrows a popped slot's data in place ([`WriteCache::pop_dirty`] returns
//! the LPN; the caller reads via [`WriteCache::get`]) and the slot's buffer
//! returns to the pool when the entry is reclaimed. The hot-path queries the
//! device issues per host command are kept cheap with two side structures:
//!
//! * `draining_by_done` — drain completion times sorted ascending, so
//!   [`occupied_at`](WriteCache::occupied_at) is a binary search,
//!   [`earliest_drain_done`](WriteCache::earliest_drain_done) is a peek and
//!   [`reclaim`](WriteCache::reclaim) pops a prefix, instead of each being a
//!   full scan of the slot table;
//! * `ack_heap` — a lazy min-heap over command acknowledgement times, so
//!   [`next_ackable`](WriteCache::next_ackable) is an amortised peek.
//!
//! Both structures are bookkeeping only: every query returns exactly what
//! the scan-based implementation returned, so virtual-time results are
//! byte-identical.

use simkit::{Nanos, PageBuf};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use storage::device::WriteCause;

/// `draining_until` sentinel between `pop_dirty` and `set_draining`: the
/// entry has been handed to the flusher but its program completion time is
/// not known yet. Sentinel-marked entries count as occupied at every `t`
/// (like the real completion, which is always in the future) and are not in
/// `draining_by_done`.
const DRAIN_PENDING: Nanos = Nanos::MAX;

/// One cached 4KB slot.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// Page content (4KB), leased from the device's buffer pool.
    pub data: PageBuf,
    /// When `Some(done)`, a NAND program for this entry completes at `done`;
    /// the slot is reclaimable after that time.
    pub draining_until: Option<Nanos>,
    /// The host command's acknowledgement time. The flusher must not pick
    /// the entry up earlier: an unacknowledged command has to remain fully
    /// discardable for the atomic writer (§3.2).
    pub ackable_at: Nanos,
    /// Why this page was written (provenance carried from admission to the
    /// NAND program, since the drain happens long after the host command).
    pub cause: WriteCause,
    /// Generation tag matching this entry to its FIFO reference; entries
    /// removed (TRIM) or replaced leave stale references behind, which the
    /// flusher recognises by generation mismatch.
    gen: u64,
}

/// The write cache.
#[derive(Debug, Default)]
pub struct WriteCache {
    entries: HashMap<u64, CacheEntry>,
    /// FIFO of `(lpn, generation)` awaiting drain. May contain stale
    /// references; `pop_dirty` skips them by generation mismatch.
    fifo: VecDeque<(u64, u64)>,
    /// Number of entries not yet handed to the flusher (== live fifo refs).
    dirty: usize,
    next_gen: u64,
    /// `(done, lpn)` for every entry with a known drain completion time,
    /// sorted ascending by `done`. Exactly mirrors the entries whose
    /// `draining_until` is `Some(d)` with `d != DRAIN_PENDING`.
    draining_by_done: VecDeque<(Nanos, u64)>,
    /// Lazy min-heap of `(ackable_at, lpn, gen)` over dirty entries. May
    /// hold stale tuples (dead generation, changed ack time, drained);
    /// `next_ackable` pops them on sight.
    ack_heap: BinaryHeap<Reverse<(Nanos, u64, u64)>>,
    /// Overwrites coalesced onto a still-dirty slot: each one is a NAND
    /// program the durable cache saved (the paper's endurance argument,
    /// §3.1.1). Overwrites of *draining* slots don't count — their old copy
    /// already reached (or is reaching) flash.
    coalesced: u64,
}

impl WriteCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total occupied slots (dirty + draining).
    pub fn occupied(&self) -> usize {
        self.entries.len()
    }

    /// Slots still occupied at time `t`: entries whose drain has not
    /// completed by then. Used for flow-control capacity checks *without*
    /// discarding entries — a completed-but-unreclaimed entry must survive
    /// in DRAM until the device knows no power cut can predate its program
    /// (see `Ssd::note_arrival`).
    pub fn occupied_at(&self, t: Nanos) -> usize {
        let drained = self.draining_by_done.partition_point(|&(done, _)| done <= t);
        self.entries.len() - drained
    }

    /// Slots waiting for the flusher.
    pub fn dirty(&self) -> usize {
        self.dirty
    }

    /// Occupied bytes (what the capacitors must be able to dump).
    pub fn occupied_bytes(&self) -> u64 {
        self.entries.len() as u64 * 4096
    }

    /// Look up a slot (read hit path). Draining entries still hit. The
    /// caller copies into its own buffer — the cache never clones a page to
    /// serve a read.
    pub fn get(&self, lpn: u64) -> Option<&[u8]> {
        self.entries.get(&lpn).map(|e| &*e.data)
    }

    /// Provenance of a cached slot ([`WriteCause::HostData`] if absent —
    /// the flusher only asks for slots it just popped).
    pub fn cause_of(&self, lpn: u64) -> WriteCause {
        self.entries.get(&lpn).map(|e| e.cause).unwrap_or_default()
    }

    /// Overwrites coalesced onto still-dirty slots so far (NAND programs
    /// the cache absorbed).
    pub fn coalesced_overwrites(&self) -> u64 {
        self.coalesced
    }

    /// Remove the `(done, lpn)` reference from the sorted drain index.
    fn remove_drain_ref(&mut self, done: Nanos, lpn: u64) {
        if done == DRAIN_PENDING {
            return; // sentinel entries are not indexed
        }
        let mut i = self.draining_by_done.partition_point(|&(d, _)| d < done);
        while let Some(&(d, l)) = self.draining_by_done.get(i) {
            debug_assert!(d >= done);
            if d != done {
                break;
            }
            if l == lpn {
                self.draining_by_done.remove(i);
                return;
            }
            i += 1;
        }
        debug_assert!(false, "drain ref ({done}, {lpn}) missing from index");
    }

    /// Insert `(done, lpn)` into the sorted drain index (usually at the
    /// back: completions are handed out in near-ascending order).
    fn insert_drain_ref(&mut self, done: Nanos, lpn: u64) {
        let i = self.draining_by_done.partition_point(|&(d, _)| d <= done);
        if i == self.draining_by_done.len() {
            self.draining_by_done.push_back((done, lpn));
        } else {
            self.draining_by_done.insert(i, (done, lpn));
        }
    }

    /// Drop stale tuples so the heap stays proportional to the live set.
    fn maybe_shrink_ack_heap(&mut self) {
        if self.ack_heap.len() > 2 * self.entries.len() + 1024 {
            let mut heap = std::mem::take(&mut self.ack_heap);
            let drained: Vec<_> = heap.drain().collect();
            for Reverse((a, lpn, gen)) in drained {
                if let Some(e) = self.entries.get(&lpn) {
                    if e.gen == gen && e.draining_until.is_none() && e.ackable_at == a {
                        heap.push(Reverse((a, lpn, gen)));
                    }
                }
            }
            self.ack_heap = heap;
        }
    }

    /// Insert or coalesce a host write whose command acknowledges at
    /// `ackable_at`. Returns the entry this write replaced, if any (the
    /// atomic writer keeps it as a pre-image while the command is in
    /// flight).
    pub fn insert(
        &mut self,
        lpn: u64,
        data: PageBuf,
        ackable_at: Nanos,
        cause: WriteCause,
    ) -> Option<CacheEntry> {
        // Coalescing with a still-dirty copy keeps its FIFO position (same
        // generation); otherwise the entry gets a fresh reference.
        let keep_gen = self.entries.get(&lpn).and_then(|e| {
            if e.draining_until.is_none() {
                Some(e.gen)
            } else {
                None
            }
        });
        let gen = keep_gen.unwrap_or_else(|| {
            self.next_gen += 1;
            self.next_gen
        });
        if keep_gen.is_some() {
            self.coalesced += 1;
        }
        let prev = self
            .entries
            .insert(lpn, CacheEntry { data, draining_until: None, ackable_at, cause, gen });
        if let Some(p) = &prev {
            if let Some(d) = p.draining_until {
                // Replaced a draining entry: its completion no longer
                // matters for occupancy — the slot is re-occupied by the
                // new dirty copy.
                self.remove_drain_ref(d, lpn);
            }
        }
        if keep_gen.is_none() {
            self.fifo.push_back((lpn, gen));
            self.dirty += 1;
        }
        self.ack_heap.push(Reverse((ackable_at, lpn, gen)));
        self.maybe_shrink_ack_heap();
        prev
    }

    /// Undo an in-flight host write at power-cut time: restore the
    /// pre-image (or remove the entry if the page was not cached before).
    ///
    /// Runs in two stages so every combination of (current state,
    /// pre-image state) keeps the dirty counter and the side structures
    /// consistent — the original single-pass version over-counted `dirty`
    /// when the aborted write had replaced a *draining* entry (the fresh
    /// FIFO reference it minted was never retired) and under-counted it
    /// when the entry had been removed between the write and the cut
    /// (TRIM of an un-acked write). Found by the simtest fuzzer
    /// (`--target dura --seed 0`, minimal trace `w:12:4 w:21:2 cw:11:2`;
    /// the TRIM variant by seed 11, trace `w:14:4 tcw:17`).
    pub fn rollback(&mut self, lpn: u64, pre: Option<CacheEntry>) {
        // 1. Retire whatever currently occupies the slot (the state the
        //    rolled-back write left behind, if anything).
        if let Some(cur) = self.entries.remove(&lpn) {
            match cur.draining_until {
                None => self.dirty -= 1, // its FIFO ref goes stale
                Some(d) => self.remove_drain_ref(d, lpn),
            }
        }
        // 2. Restore the pre-image from scratch.
        let Some(mut e) = pre else { return };
        match e.draining_until {
            Some(d) => {
                if d != DRAIN_PENDING {
                    self.insert_drain_ref(d, lpn);
                }
                self.entries.insert(lpn, e);
            }
            None => {
                // A restored dirty entry needs a guaranteed-live FIFO slot
                // and ack tuple. Mint a fresh generation: any references the
                // aborted write (or the pre-image's former life) left in the
                // FIFO or the ack heap turn stale and are skipped lazily.
                self.next_gen += 1;
                e.gen = self.next_gen;
                self.fifo.push_back((lpn, e.gen));
                self.dirty += 1;
                self.ack_heap.push(Reverse((e.ackable_at, lpn, e.gen)));
                self.entries.insert(lpn, e);
            }
        }
    }

    /// Take the oldest dirty entry whose command has acknowledged by `now`,
    /// marking it drain-pending, and return its LPN. The caller reads the
    /// page data in place via [`WriteCache::get`] — nothing is copied — and
    /// records the program completion time with [`WriteCache::set_draining`]
    /// once the program is scheduled.
    pub fn pop_dirty(&mut self, now: Nanos) -> Option<u64> {
        while let Some(&(lpn, gen)) = self.fifo.front() {
            match self.entries.get_mut(&lpn) {
                Some(e) if e.gen == gen && e.draining_until.is_none() => {
                    if e.ackable_at > now {
                        // FIFO order tracks ack order; nothing older exists.
                        return None;
                    }
                    self.fifo.pop_front();
                    self.dirty -= 1;
                    e.draining_until = Some(DRAIN_PENDING);
                    return Some(lpn);
                }
                // Stale reference: removed, replaced or already draining.
                _ => {
                    self.fifo.pop_front();
                }
            }
        }
        None
    }

    /// Earliest time at which a currently-dirty entry becomes drainable, if
    /// any entry is still gated on its command acknowledgement.
    pub fn next_ackable(&mut self) -> Option<Nanos> {
        while let Some(&Reverse((a, lpn, gen))) = self.ack_heap.peek() {
            match self.entries.get(&lpn) {
                Some(e) if e.gen == gen && e.draining_until.is_none() && e.ackable_at == a => {
                    return Some(a);
                }
                _ => {
                    self.ack_heap.pop();
                }
            }
        }
        None
    }

    /// Record the NAND completion time for an entry handed out by
    /// [`WriteCache::pop_dirty`].
    pub fn set_draining(&mut self, lpn: u64, done: Nanos) {
        let Some(e) = self.entries.get_mut(&lpn) else { return };
        let old = e.draining_until.replace(done);
        match old {
            Some(o) if o == done => return, // already indexed at this time
            Some(o) if o != DRAIN_PENDING => self.remove_drain_ref(o, lpn),
            _ => {}
        }
        self.insert_drain_ref(done, lpn);
    }

    /// Reclaim slots whose programs completed by `now`. Their page buffers
    /// return to the pool as the entries drop.
    pub fn reclaim(&mut self, now: Nanos) {
        while let Some(&(done, lpn)) = self.draining_by_done.front() {
            if done > now {
                break;
            }
            self.draining_by_done.pop_front();
            let removed = self.entries.remove(&lpn);
            debug_assert!(
                removed.as_ref().is_some_and(|e| e.draining_until == Some(done)),
                "drain index out of sync for lpn {lpn}"
            );
        }
    }

    /// Earliest completion among draining entries (for flow-control waits).
    pub fn earliest_drain_done(&self) -> Option<Nanos> {
        self.draining_by_done.front().map(|&(done, _)| done)
    }

    /// Latest completion among draining entries (FLUSH CACHE waits for the
    /// entire in-flight set).
    pub fn latest_drain_done(&self) -> Option<Nanos> {
        self.draining_by_done.back().map(|&(done, _)| done)
    }

    /// All occupied entries (dump path).
    pub fn iter(&self) -> impl Iterator<Item = (&u64, &CacheEntry)> {
        self.entries.iter()
    }

    /// Remove an entry outright (TRIM): whatever state it was in, it is
    /// gone and will not be flushed.
    pub fn remove(&mut self, lpn: u64) {
        if let Some(e) = self.entries.remove(&lpn) {
            match e.draining_until {
                None => self.dirty = self.dirty.saturating_sub(1),
                Some(d) => self.remove_drain_ref(d, lpn),
            }
        }
    }

    /// Re-mark every draining entry as dirty (recovery path: the NAND
    /// programs they were waiting on sheared when power was cut, so the
    /// dumped copies must be flushed again). Returns how many were requeued.
    ///
    /// The requeue order is deterministic — drain-completion time first
    /// (mirroring the order the flusher issued the programs), lpn as the
    /// tie-break, schedule-pending entries last — because `entries` is a
    /// hash map whose iteration order varies per process, and recovery must
    /// replay identically for a fixed seed.
    pub fn requeue_draining(&mut self) -> usize {
        let mut order: Vec<(Nanos, u64)> = self
            .entries
            .iter()
            .filter_map(|(lpn, e)| e.draining_until.map(|d| (d, *lpn)))
            .collect();
        order.sort_unstable();
        let n = order.len();
        for (_, lpn) in order {
            let e = self.entries.get_mut(&lpn).expect("collected above");
            e.draining_until = None;
            // The re-program is recovery work, not host traffic: attribute
            // it to the dump replay, whatever originally wrote the page.
            e.cause = WriteCause::EmergencyDump;
            self.next_gen += 1;
            e.gen = self.next_gen;
            self.fifo.push_back((lpn, e.gen));
            self.ack_heap.push(Reverse((e.ackable_at, lpn, e.gen)));
        }
        self.draining_by_done.clear();
        self.dirty += n;
        n
    }

    /// Structural audit of the cache bookkeeping, for the simulation-test
    /// harness. Checked invariants:
    ///
    /// 1. **dirty count**: `dirty` equals both the number of entries with no
    ///    drain scheduled and the number of *live* FIFO references (entry
    ///    present, generation matches, not draining);
    /// 2. **FIFO coverage**: every dirty entry is reachable through exactly
    ///    one live FIFO reference (an unreferenced dirty entry would never
    ///    be flushed — a permanent slot leak);
    /// 3. **drain index**: `draining_by_done` is sorted ascending and is
    ///    exactly the multiset of `(done, lpn)` for entries draining at a
    ///    known completion time (sentinel-marked entries are not indexed).
    pub fn check_invariants(&self) -> Result<(), String> {
        // 1 + 2. Dirty entries vs live FIFO references.
        let mut live_refs: HashMap<u64, usize> = HashMap::new();
        for &(lpn, gen) in &self.fifo {
            if let Some(e) = self.entries.get(&lpn) {
                if e.gen == gen && e.draining_until.is_none() {
                    *live_refs.entry(lpn).or_insert(0) += 1;
                }
            }
        }
        let dirty_entries = self.entries.values().filter(|e| e.draining_until.is_none()).count();
        if dirty_entries != self.dirty {
            return Err(format!(
                "dirty count drift: counter = {}, entries say {dirty_entries}",
                self.dirty
            ));
        }
        let total_refs: usize = live_refs.values().sum();
        if total_refs != self.dirty {
            return Err(format!("dirty count {} != live fifo refs {total_refs}", self.dirty));
        }
        for (lpn, e) in &self.entries {
            if e.draining_until.is_none() {
                match live_refs.get(lpn) {
                    Some(1) => {}
                    Some(n) => return Err(format!("dirty lpn {lpn} has {n} live fifo refs")),
                    None => {
                        return Err(format!(
                            "dirty lpn {lpn} unreachable from the fifo (leaked slot)"
                        ))
                    }
                }
            }
        }
        // 3. Drain index mirrors the draining entries exactly.
        let mut want: Vec<(Nanos, u64)> = self
            .entries
            .iter()
            .filter_map(|(&lpn, e)| match e.draining_until {
                Some(d) if d != DRAIN_PENDING => Some((d, lpn)),
                _ => None,
            })
            .collect();
        want.sort_unstable();
        let mut have: Vec<(Nanos, u64)> = self.draining_by_done.iter().copied().collect();
        if have.windows(2).any(|w| w[0].0 > w[1].0) {
            return Err("draining_by_done not sorted by completion time".into());
        }
        have.sort_unstable();
        if have != want {
            return Err(format!(
                "drain index mismatch: index has {} refs, entries say {}",
                have.len(),
                want.len()
            ));
        }
        Ok(())
    }

    /// Discard everything (volatile cache on power cut). Returns how many
    /// slots were lost. The page buffers return to the pool immediately.
    pub fn discard_all(&mut self) -> usize {
        let n = self.entries.len();
        self.entries.clear();
        self.fifo.clear();
        self.draining_by_done.clear();
        self.ack_heap.clear();
        self.dirty = 0;
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::BufPool;

    fn pool() -> BufPool {
        BufPool::new(4096)
    }

    fn data(pool: &BufPool, fill: u8) -> PageBuf {
        let mut b = pool.checkout();
        b.fill(fill);
        b
    }

    #[test]
    fn insert_and_get() {
        let p = pool();
        let mut c = WriteCache::new();
        assert!(c.insert(5, data(&p, 1), 0, WriteCause::HostData).is_none());
        assert_eq!(c.get(5).unwrap()[0], 1);
        assert_eq!(c.occupied(), 1);
        assert_eq!(c.dirty(), 1);
    }

    #[test]
    fn coalescing_keeps_one_copy() {
        let p = pool();
        let mut c = WriteCache::new();
        c.insert(5, data(&p, 1), 0, WriteCause::HostData);
        let prev = c.insert(5, data(&p, 2), 0, WriteCause::HostData).unwrap();
        assert_eq!(prev.data[0], 1);
        assert_eq!(c.occupied(), 1);
        assert_eq!(c.dirty(), 1);
        assert_eq!(c.get(5).unwrap()[0], 2);
        // Only the latest version is handed to the flusher.
        let lpn = c.pop_dirty(u64::MAX).unwrap();
        assert_eq!(lpn, 5);
        assert_eq!(c.get(lpn).unwrap()[0], 2);
        assert!(c.pop_dirty(u64::MAX).is_none());
    }

    #[test]
    fn fifo_order_preserved() {
        let p = pool();
        let mut c = WriteCache::new();
        c.insert(1, data(&p, 1), 0, WriteCause::HostData);
        c.insert(2, data(&p, 2), 0, WriteCause::HostData);
        c.insert(3, data(&p, 3), 0, WriteCause::HostData);
        assert_eq!(c.pop_dirty(u64::MAX).unwrap(), 1);
        assert_eq!(c.pop_dirty(u64::MAX).unwrap(), 2);
        assert_eq!(c.pop_dirty(u64::MAX).unwrap(), 3);
    }

    #[test]
    fn pop_serves_data_in_place_without_copying() {
        let p = pool();
        let mut c = WriteCache::new();
        c.insert(7, data(&p, 9), 0, WriteCause::HostData);
        let before = p.checkouts();
        let lpn = c.pop_dirty(u64::MAX).unwrap();
        // The flusher reads the popped entry's bytes where they are: no
        // pool checkout (and no heap allocation) happened.
        assert_eq!(c.get(lpn).unwrap()[0], 9);
        assert_eq!(p.checkouts(), before);
    }

    #[test]
    fn draining_entries_still_serve_reads_then_reclaim() {
        let p = pool();
        let mut c = WriteCache::new();
        c.insert(7, data(&p, 9), 0, WriteCause::HostData);
        let lpn = c.pop_dirty(u64::MAX).unwrap();
        c.set_draining(lpn, 1000);
        assert_eq!(c.get(7).unwrap()[0], 9);
        c.reclaim(999);
        assert!(c.get(7).is_some(), "not reclaimable before completion");
        c.reclaim(1000);
        assert!(c.get(7).is_none());
        // The reclaimed entry's buffer went back to the pool.
        assert_eq!(p.outstanding(), 0);
    }

    #[test]
    fn rewrite_of_draining_entry_requeues() {
        let p = pool();
        let mut c = WriteCache::new();
        c.insert(7, data(&p, 1), 0, WriteCause::HostData);
        let lpn = c.pop_dirty(u64::MAX).unwrap();
        c.set_draining(lpn, 1000);
        assert_eq!(c.dirty(), 0);
        // Host rewrites the page while the old version is still draining.
        c.insert(7, data(&p, 2), 0, WriteCause::HostData);
        assert_eq!(c.dirty(), 1);
        let l = c.pop_dirty(u64::MAX).unwrap();
        assert_eq!(c.get(l).unwrap()[0], 2);
    }

    #[test]
    fn rollback_restores_preimage() {
        let p = pool();
        let mut c = WriteCache::new();
        c.insert(7, data(&p, 1), 0, WriteCause::HostData);
        let pre = c.insert(7, data(&p, 2), 0, WriteCause::HostData);
        c.rollback(7, pre);
        assert_eq!(c.get(7).unwrap()[0], 1);
        // Rolling back a fresh insert removes it.
        let pre2 = c.insert(9, data(&p, 3), 0, WriteCause::HostData);
        c.rollback(9, pre2);
        assert!(c.get(9).is_none());
        assert_eq!(c.dirty(), 1); // only lpn 7 remains dirty
    }

    #[test]
    fn rollback_of_draining_preimage_keeps_drain_index_consistent() {
        let p = pool();
        let mut c = WriteCache::new();
        c.insert(7, data(&p, 1), 0, WriteCause::HostData);
        let lpn = c.pop_dirty(u64::MAX).unwrap();
        c.set_draining(lpn, 1000);
        // Host overwrites the draining entry; the pre-image is the draining
        // copy.
        let pre = c.insert(7, data(&p, 2), 0, WriteCause::HostData);
        assert!(pre.as_ref().unwrap().draining_until.is_some());
        assert_eq!(c.earliest_drain_done(), None, "replaced drain no longer pending");
        c.rollback(7, pre);
        assert_eq!(c.earliest_drain_done(), Some(1000), "restored drain re-indexed");
        c.reclaim(1000);
        assert!(c.get(7).is_none());
    }

    #[test]
    fn discard_all_clears_everything() {
        let p = pool();
        let mut c = WriteCache::new();
        c.insert(1, data(&p, 1), 0, WriteCause::HostData);
        c.insert(2, data(&p, 2), 0, WriteCause::HostData);
        assert_eq!(c.discard_all(), 2);
        assert_eq!(c.occupied(), 0);
        assert!(c.pop_dirty(u64::MAX).is_none());
        assert_eq!(p.outstanding(), 0, "discarded buffers returned to pool");
    }

    #[test]
    fn earliest_and_latest_drain_done() {
        let p = pool();
        let mut c = WriteCache::new();
        c.insert(1, data(&p, 1), 0, WriteCause::HostData);
        c.insert(2, data(&p, 2), 0, WriteCause::HostData);
        let a = c.pop_dirty(u64::MAX).unwrap();
        c.set_draining(a, 500);
        let b = c.pop_dirty(u64::MAX).unwrap();
        c.set_draining(b, 300);
        assert_eq!(c.earliest_drain_done(), Some(300));
        assert_eq!(c.latest_drain_done(), Some(500));
    }

    #[test]
    fn occupied_at_counts_by_completion_time() {
        let p = pool();
        let mut c = WriteCache::new();
        for lpn in 0..4 {
            c.insert(lpn, data(&p, lpn as u8), 0, WriteCause::HostData);
        }
        for done in [100u64, 200, 300] {
            let l = c.pop_dirty(u64::MAX).unwrap();
            c.set_draining(l, done);
        }
        assert_eq!(c.occupied(), 4);
        assert_eq!(c.occupied_at(0), 4);
        assert_eq!(c.occupied_at(100), 3);
        assert_eq!(c.occupied_at(250), 2);
        assert_eq!(c.occupied_at(300), 1, "only the dirty entry remains");
    }

    #[test]
    fn unacked_entries_are_not_drainable() {
        let p = pool();
        let mut c = WriteCache::new();
        c.insert(1, data(&p, 1), 100, WriteCause::HostData); // acks at t=100
        assert!(c.pop_dirty(50).is_none(), "flusher must not see unacked data");
        assert_eq!(c.next_ackable(), Some(100));
        assert_eq!(c.pop_dirty(100).unwrap(), 1);
    }

    #[test]
    fn ack_gate_blocks_younger_entries_behind_fifo_head() {
        let p = pool();
        let mut c = WriteCache::new();
        c.insert(1, data(&p, 1), 100, WriteCause::HostData);
        c.insert(2, data(&p, 2), 50, WriteCause::HostData);
        // FIFO head (lpn 1) not ackable at 60: drain stalls even though
        // lpn 2 acked earlier (ack order == FIFO order in the device).
        assert!(c.pop_dirty(60).is_none());
        assert_eq!(c.pop_dirty(100).unwrap(), 1);
        assert_eq!(c.pop_dirty(100).unwrap(), 2);
    }

    #[test]
    fn next_ackable_tracks_coalesced_ack_times() {
        let p = pool();
        let mut c = WriteCache::new();
        c.insert(1, data(&p, 1), 100, WriteCause::HostData);
        // Coalescing moves the ack time later; the stale heap tuple must
        // not surface.
        c.insert(1, data(&p, 2), 400, WriteCause::HostData);
        assert_eq!(c.next_ackable(), Some(400));
        c.insert(2, data(&p, 3), 250, WriteCause::HostData);
        assert_eq!(c.next_ackable(), Some(250));
        // The FIFO head (lpn 1, acks at 400) gates the queue even though
        // lpn 2 acked earlier.
        assert!(c.pop_dirty(250).is_none());
        assert_eq!(c.pop_dirty(400).unwrap(), 1);
        assert_eq!(c.pop_dirty(400).unwrap(), 2);
    }

    #[test]
    fn remove_clears_any_state() {
        let p = pool();
        let mut c = WriteCache::new();
        c.insert(1, data(&p, 1), 0, WriteCause::HostData);
        c.remove(1);
        assert!(c.get(1).is_none());
        assert_eq!(c.dirty(), 0);
        // Removing a draining entry.
        c.insert(2, data(&p, 2), 0, WriteCause::HostData);
        let l = c.pop_dirty(10).unwrap();
        c.set_draining(l, 100);
        c.remove(2);
        assert!(c.get(2).is_none());
        assert_eq!(c.occupied(), 0);
        assert_eq!(c.earliest_drain_done(), None);
    }

    #[test]
    fn requeue_draining_restores_dirty_and_clears_index() {
        let p = pool();
        let mut c = WriteCache::new();
        c.insert(1, data(&p, 1), 0, WriteCause::HostData);
        c.insert(2, data(&p, 2), 0, WriteCause::HostData);
        for _ in 0..2 {
            let l = c.pop_dirty(u64::MAX).unwrap();
            c.set_draining(l, 900);
        }
        assert_eq!(c.requeue_draining(), 2);
        assert_eq!(c.dirty(), 2);
        assert_eq!(c.earliest_drain_done(), None);
        assert_eq!(c.pop_dirty(u64::MAX).unwrap(), 1);
        assert_eq!(c.pop_dirty(u64::MAX).unwrap(), 2);
    }

    #[test]
    fn ack_heap_shrinks_under_churn() {
        let p = pool();
        let mut c = WriteCache::new();
        // Hammer one LPN with coalescing writes: each insert pushes a heap
        // tuple but the live set stays size 1. The lazy shrink keeps the
        // heap bounded.
        for i in 0..100_000u64 {
            c.insert(1, data(&p, (i % 251) as u8), i, WriteCause::HostData);
        }
        assert!(c.ack_heap.len() <= 2 * c.entries.len() + 1024);
        assert_eq!(c.next_ackable(), Some(99_999));
    }

    /// Regression, found by the simtest fuzzer (`--target dura --seed 0`,
    /// minimal trace `w:12:4 w:21:2 cw:11:2`): a write replaces a
    /// *draining* entry (fresh generation, `dirty += 1`), then a power cut
    /// rolls the write back. The old single-pass rollback restored the
    /// draining pre-image without retiring the aborted write's dirty
    /// reference, leaving the dirty counter permanently one too high.
    #[test]
    fn rollback_over_draining_preimage_keeps_dirty_count() {
        let p = pool();
        let mut c = WriteCache::new();
        c.insert(5, data(&p, 1), 0, WriteCause::HostData);
        assert_eq!(c.pop_dirty(u64::MAX).unwrap(), 5);
        c.set_draining(5, 1_000);
        // New write coalesces onto the draining slot: pre-image is the
        // draining entry, the new copy is dirty.
        let pre = c.insert(5, data(&p, 2), 10, WriteCause::HostData);
        assert!(pre.as_ref().unwrap().draining_until.is_some());
        assert_eq!(c.dirty(), 1);
        // Power cut before the ack: roll the write back.
        c.rollback(5, pre);
        c.check_invariants().unwrap();
        assert_eq!(c.dirty(), 0, "restored pre-image is draining, not dirty");
        assert_eq!(c.occupied(), 1);
        assert_eq!(c.get(5).unwrap()[0], 1, "pre-image content restored");
        assert!(c.pop_dirty(u64::MAX).is_none(), "no live dirty refs remain");
    }

    /// Regression, found by the simtest fuzzer (`--target dura --seed 11`,
    /// minimal trace `w:14:4 tcw:17`): TRIM removes an un-acked write's
    /// entry, then the cut rolls the write back and must re-account the
    /// restored *dirty* pre-image — the old code under-counted `dirty`.
    #[test]
    fn rollback_after_trim_restores_dirty_accounting() {
        let p = pool();
        let mut c = WriteCache::new();
        c.insert(7, data(&p, 1), 0, WriteCause::HostData);
        // Overwrite while still dirty: coalesces, pre-image is dirty.
        let pre = c.insert(7, data(&p, 2), 10, WriteCause::HostData);
        assert!(pre.as_ref().unwrap().draining_until.is_none());
        // TRIM lands between the write and its ack.
        c.remove(7);
        assert_eq!(c.dirty(), 0);
        // Cut before the ack: restore the dirty pre-image.
        c.rollback(7, pre);
        c.check_invariants().unwrap();
        assert_eq!(c.dirty(), 1, "restored pre-image is dirty again");
        assert_eq!(c.get(7).unwrap()[0], 1);
        assert_eq!(c.pop_dirty(u64::MAX).unwrap(), 7, "flusher can still drain it");
    }

    /// Rollback with no pre-image (page was not cached before the write)
    /// retires the aborted entry whether it is dirty or draining.
    #[test]
    fn rollback_without_preimage_clears_the_slot() {
        let p = pool();
        let mut c = WriteCache::new();
        let pre = c.insert(9, data(&p, 3), 5, WriteCause::HostData);
        assert!(pre.is_none());
        c.rollback(9, pre);
        c.check_invariants().unwrap();
        assert_eq!(c.occupied(), 0);
        assert_eq!(c.dirty(), 0);
        assert!(c.get(9).is_none());
    }
}

//! DuraSSD: the paper's contribution — a flash SSD whose DRAM write cache is
//! made durable with tantalum capacitors, plus the firmware that exploits it.
//!
//! The crate implements a complete SSD firmware simulator on top of the raw
//! [`nand`] array:
//!
//! * [`config`] — device profiles: `DuraSSD` (capacitor-backed cache), and
//!   the volatile-cache baselines `SSD-A` / `SSD-B` from the paper's Table 1.
//! * [`ftl`] — flash translation layer with **4KB mapping over 8KB NAND
//!   pages** (§3.1.2), per-plane write frontiers, garbage collection with a
//!   reserved always-clean dump area (§3.4.1), and incremental mapping
//!   journaling.
//! * [`cache`] — the DRAM write cache: FIFO with duplicate-write coalescing
//!   (§3.1.1), flow control against the backend flusher.
//! * [`device`] — the [`Ssd`] device: host interface (SATA bus + NCQ),
//!   atomic writer (§3.2), flush-cache handling (§3.3), power-off detection
//!   with capacitor-powered dump, and the recovery manager (§3.4).
//!
//! The same [`Ssd`] type implements every SSD in the paper; profiles differ
//! in cache protection (volatile vs capacitor-backed), cache size and
//! interface timing. The durability consequences — what survives a power
//! cut — follow from the protection mode, not from special-cased logic.

pub mod cache;
pub mod config;
pub mod device;
pub mod error;
pub mod ftl;

pub use config::{CacheProtection, SsdConfig, SsdConfigBuilder};
pub use device::{Ssd, SsdStats};
pub use error::Error;
pub use ftl::Ftl;

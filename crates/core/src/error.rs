//! The workspace-wide error type.
//!
//! Before this module every layer invented its own failure enum —
//! `storage::device::DevError` for device-level I/O problems,
//! `relstore::RecoveryError` for engine recovery — and callers either
//! `unwrap`ped across the boundary or wrote ad-hoc conversions. [`Error`]
//! unifies them: device errors convert in via `From<DevError>`, the engine
//! recovery paths construct the recovery variants directly, and harnesses
//! can bubble a single type with `?`.

use storage::device::DevError;

/// Any error the simulated storage stack can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A device-level I/O error (out-of-range, powered off, shorn page…).
    Dev(DevError),
    /// Engine recovery found no valid catalog page: the database never
    /// checkpointed, or both catalog copies are corrupt.
    NoCatalog,
    /// Recovery failed for another reason; the string carries context.
    Recovery(String),
    /// The recovery scan hit a torn or garbage log record mid-log. The
    /// scan truncated at the tear (the valid prefix was replayed); this
    /// variant lets callers who demand a clean log distinguish "the tail
    /// was simply unwritten" from "a committed record was damaged".
    TornLog {
        /// LSN of the first unusable record.
        lsn: u64,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Dev(e) => write!(f, "device error: {e}"),
            Error::NoCatalog => write!(f, "no valid catalog page found"),
            Error::Recovery(why) => write!(f, "recovery failed: {why}"),
            Error::TornLog { lsn } => write!(f, "torn log record at lsn {lsn}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Dev(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DevError> for Error {
    fn from(e: DevError) -> Self {
        Error::Dev(e)
    }
}

impl Error {
    /// Collapse back into a device-level error at the [`BlockDevice`]
    /// boundary (`storage::device::BlockDevice` methods return
    /// `DevResult`): device variants pass through, anything else is
    /// reported as a media failure with its message preserved.
    ///
    /// [`BlockDevice`]: storage::device::BlockDevice
    pub fn into_dev(self) -> DevError {
        match self {
            Error::Dev(d) => d,
            other => DevError::Media { what: other.to_string() },
        }
    }
}

/// Result alias over the unified [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dev_errors_convert() {
        let e: Error = DevError::PoweredOff.into();
        assert_eq!(e, Error::Dev(DevError::PoweredOff));
        assert!(e.to_string().contains("powered off"));
    }

    #[test]
    fn display_covers_variants() {
        assert!(Error::NoCatalog.to_string().contains("catalog"));
        assert!(Error::Recovery("torn log".into()).to_string().contains("torn log"));
    }

    #[test]
    fn torn_log_reports_lsn() {
        let e = Error::TornLog { lsn: 4096 };
        assert!(e.to_string().contains("torn log record at lsn 4096"));
        assert_ne!(e, Error::TornLog { lsn: 4097 });
    }

    #[test]
    fn source_chains_to_dev_error() {
        use std::error::Error as _;
        let e = Error::from(DevError::ShornPage { lpn: 3 });
        assert!(e.source().is_some());
        assert!(Error::NoCatalog.source().is_none());
    }
}
